// Emits the RSL source of a generated N-channel dashboard (network
// `dash_gen`, see systems::generated_dash_source): N independent wheel-speed
// chains sharing one sampling timer. The family is the scaling axis for the
// parallel-verification benchmarks — cluster count grows linearly with N,
// the reachable state space multiplicatively — and the output feeds straight
// back into polisc:
//
//   gen_dash 3 > three.rsl
//   polisc three.rsl --network dash_gen --verify --verify-threads=4
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/systems.hpp"

int main(int argc, char** argv) {
  int channels = 0;
  std::string out_file;
  bool usage_error = argc < 2;
  for (int i = 1; i < argc && !usage_error; ++i) {
    const std::string a = argv[i];
    if (a == "--out") {
      if (i + 1 >= argc) {
        usage_error = true;
        break;
      }
      out_file = argv[++i];
    } else if (channels == 0 && !a.empty() && a[0] != '-') {
      channels = std::atoi(a.c_str());
      if (channels < 1) usage_error = true;
    } else {
      usage_error = true;
    }
  }
  if (usage_error || channels < 1) {
    std::cerr << "usage: gen_dash N [--out FILE]\n"
                 "  N      number of wheel-speed channels (>= 1)\n"
                 "  --out  write the RSL source to FILE instead of stdout\n";
    return 2;
  }
  const std::string src = polis::systems::generated_dash_source(channels);
  if (out_file.empty()) {
    std::cout << src;
    return 0;
  }
  std::ofstream out(out_file);
  if (!out) {
    std::cerr << "gen_dash: cannot open " << out_file << "\n";
    return 1;
  }
  out << src;
  return 0;
}
