// polisc — the command-line front door of the synthesis flow.
//
//   polisc input.rsl --list
//   polisc input.rsl --module simple --report
//   polisc input.rsl --network dash --out gen/ --policy prio --preemptive
//
// For a module: prints (or writes) the synthesized C and a cost report.
// For a network: synthesizes every instance, emits polis_rt.h, the
// generated RTOS translation unit and one C file per task, plus a report
// table — the complete §I-H flow as a tool.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/c_codegen.hpp"
#include "core/synthesis.hpp"
#include "estim/calibrate.hpp"
#include "frontend/parser.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "obs/series.hpp"
#include "rtos/codegen.hpp"
#include "rtos/rtos.hpp"
#include "rtos/sim_trace.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "rtos/vcd.hpp"
#include "sched/sched.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"
#include "util/rng.hpp"
#include "verif/verif.hpp"
#include "sgraph/io.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

struct Args {
  std::string input;
  bool list = false;
  std::string module;
  std::string network;
  std::string scheme = "sift";
  std::string target = "hc11";
  std::string policy = "rr";
  bool preemptive = false;
  bool polling = false;
  bool care = false;
  bool verify = false;
  long long verify_threads = 1;  // 0 = one worker per hardware thread
  bool opt_copyin = false;
  bool report = false;
  bool dot = false;
  long long simulate = 0;   // horizon in cycles; 0 = no simulation
  std::string vcd;
  std::string out_dir;
  std::string trace_file;    // Chrome trace-event JSON (--trace)
  bool metrics = false;      // write a final metrics snapshot
  std::string metrics_file;  // --metrics destination ("" = stderr)
  std::string metrics_out;       // streaming JSONL epochs (--metrics-out)
  long long metrics_interval_ms = 0;  // wall-clock sampler cadence; 0 = off
  std::string metrics_prom;  // Prometheus text exposition (--metrics-prom)
  // Resource governor (see util/governor.hpp): 0 = unlimited.
  long long deadline_ms = 0;
  unsigned long long max_nodes = 0;
  long long max_arena_mb = 0;
  std::string on_budget = "fail";  // fail | degrade
};

void usage() {
  std::cerr <<
      "usage: polisc <input.rsl> [options]\n"
      "  --list                 list modules and networks in the input\n"
      "  --module NAME          synthesize one module\n"
      "  --network NAME         synthesize a network (tasks + RTOS)\n"
      "  --scheme S             naive | sift (default) | sift-in | "
      "out-first | free\n"
      "  --care                 exploit the reachable care set (false paths)\n"
      "  --verify               symbolic reachability over the network:\n"
      "                         check the modules' assert clauses and the\n"
      "                         built-in lost-event property; with --care,\n"
      "                         feed the reached set into synthesis as a\n"
      "                         global don't-care set\n"
      "  --verify-threads N     image-computation workers for --verify:\n"
      "                         1 (default) runs serial, N shards the\n"
      "                         transition relation across N per-thread BDD\n"
      "                         managers (identical results, see DESIGN.md),\n"
      "                         0 uses one worker per hardware thread\n"
      "  --opt-copyin           data-flow copy-in optimization (§V-B)\n"
      "  --target T             hc11 (default) | risc32\n"
      "  --policy P             rr (default) | prio\n"
      "  --preemptive           preemptive scheduling\n"
      "  --polling              polled hw->sw event delivery\n"
      "  --report               print the cost/performance table\n"
      "  --simulate N           run the network for N cycles under the\n"
      "                         RTOS simulator with a periodic workload\n"
      "  --vcd FILE             write the simulation waveform as VCD\n"
      "  --dot                  also emit the s-graph in Graphviz form\n"
      "  --out DIR              write artifacts into DIR instead of stdout\n"
      "  --trace FILE           record spans across the whole run and write\n"
      "                         them as Chrome trace-event JSON (loadable in\n"
      "                         Perfetto / chrome://tracing); simulated-cycle\n"
      "                         lanes share the VCD timebase\n"
      "  --metrics [FILE]       write a JSON snapshot of all counters,\n"
      "                         gauges, histograms, quantiles and per-phase\n"
      "                         wall times at exit (to stderr without FILE)\n"
      "  --metrics-out FILE     stream metrics epochs to FILE as JSONL, one\n"
      "                         epoch per line, flushed per line (simulated-\n"
      "                         cycle epochs from the RTOS loop, per-layer\n"
      "                         epochs from --verify, wall epochs from\n"
      "                         --metrics-interval-ms)\n"
      "  --metrics-interval-ms N  sample a wall-clock metrics epoch every\n"
      "                         N ms on a background thread\n"
      "  --metrics-prom FILE    write the final snapshot in Prometheus text\n"
      "                         exposition format (the polisd /metrics body)\n"
      "  --deadline-ms N        wall-clock budget for the whole run\n"
      "  --max-nodes N          live BDD-node budget across the run\n"
      "  --max-arena-mb N       BDD arena cap in MiB\n"
      "  --on-budget M          what to do when a budget trips:\n"
      "                         fail (default) unwinds with exit code 4;\n"
      "                         degrade walks the degradation ladder and\n"
      "                         still emits correct (less optimized) code\n"
      "  (--trace=FILE / --metrics=FILE forms are also accepted)\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 parse error, 4 budget\n"
      "            exceeded, 5 cancelled, 6 internal invariant failure\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.input = argv[1];
  // Accept both "--opt value" and "--opt=value". Each token remembers the
  // argv spelling it came from so diagnostics can echo what the user typed
  // ("--trce=out.json", not a half of it), and whether it is the value half
  // of an "=" form (a flag that takes no value must reject that half, not
  // silently re-parse it as the next option).
  struct Token {
    std::string text;  // flag or value after "=" splitting
    std::string raw;   // the original argv element
    bool eq_value;     // true for the value half of an "--opt=value"
  };
  std::vector<Token> tokens;
  for (int i = 2; i < argc; ++i) {
    const std::string raw = argv[i];
    const size_t eq = raw.find('=');
    if (raw.rfind("--", 0) == 0 && eq != std::string::npos) {
      tokens.push_back(Token{raw.substr(0, eq), raw, false});
      tokens.push_back(Token{raw.substr(eq + 1), raw, true});
    } else {
      tokens.push_back(Token{raw, raw, false});
    }
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string a = tokens[i].text;
    auto value = [&]() -> std::string {
      if (i + 1 >= tokens.size())
        throw std::runtime_error("missing value for " + a);
      return tokens[++i].text;
    };
    // A boolean flag given in "--flag=value" form is an error, not a flag
    // set plus a stray token.
    auto no_value = [&]() -> bool {
      if (i + 1 < tokens.size() && tokens[i + 1].eq_value &&
          tokens[i + 1].raw == tokens[i].raw) {
        std::cerr << "polisc: option '" << a << "' does not take a value (got '"
                  << tokens[i].raw << "')\n";
        return false;
      }
      return true;
    };
    if (a == "--list") { if (!no_value()) return false; args.list = true; }
    else if (a == "--module") args.module = value();
    else if (a == "--network") args.network = value();
    else if (a == "--scheme") args.scheme = value();
    else if (a == "--target") args.target = value();
    else if (a == "--policy") args.policy = value();
    else if (a == "--preemptive") { if (!no_value()) return false; args.preemptive = true; }
    else if (a == "--polling") { if (!no_value()) return false; args.polling = true; }
    else if (a == "--care") { if (!no_value()) return false; args.care = true; }
    else if (a == "--verify") { if (!no_value()) return false; args.verify = true; }
    else if (a == "--verify-threads") args.verify_threads = std::stoll(value());
    else if (a == "--opt-copyin") { if (!no_value()) return false; args.opt_copyin = true; }
    else if (a == "--report") { if (!no_value()) return false; args.report = true; }
    else if (a == "--simulate") args.simulate = std::stoll(value());
    else if (a == "--vcd") args.vcd = value();
    else if (a == "--dot") { if (!no_value()) return false; args.dot = true; }
    else if (a == "--out") args.out_dir = value();
    else if (a == "--trace") args.trace_file = value();
    else if (a == "--metrics") {
      // Optional value: "--metrics=FILE" and "--metrics FILE" bind the file;
      // a following option (or nothing) leaves the snapshot on stderr.
      args.metrics = true;
      if (i + 1 < tokens.size() &&
          (tokens[i + 1].eq_value ? tokens[i + 1].raw == tokens[i].raw
                                  : tokens[i + 1].text.rfind("--", 0) != 0))
        args.metrics_file = value();
    }
    else if (a == "--metrics-out") args.metrics_out = value();
    else if (a == "--metrics-interval-ms")
      args.metrics_interval_ms = std::stoll(value());
    else if (a == "--metrics-prom") args.metrics_prom = value();
    else if (a == "--deadline-ms") args.deadline_ms = std::stoll(value());
    else if (a == "--max-nodes") args.max_nodes = std::stoull(value());
    else if (a == "--max-arena-mb") args.max_arena_mb = std::stoll(value());
    else if (a == "--on-budget") args.on_budget = value();
    else {
      std::cerr << "polisc: unknown option '" << tokens[i].raw << "'\n";
      return false;
    }
  }
  if (args.on_budget != "fail" && args.on_budget != "degrade") {
    std::cerr << "polisc: --on-budget must be 'fail' or 'degrade' (got '"
              << args.on_budget << "')\n";
    return false;
  }
  if (args.verify_threads < 0) {
    std::cerr << "polisc: --verify-threads must be >= 0 (got "
              << args.verify_threads << ")\n";
    return false;
  }
  if (args.deadline_ms < 0 || args.max_arena_mb < 0) {
    std::cerr << "polisc: budgets must be non-negative\n";
    return false;
  }
  if (args.metrics_interval_ms < 0) {
    std::cerr << "polisc: --metrics-interval-ms must be >= 0 (got "
              << args.metrics_interval_ms << ")\n";
    return false;
  }
  return true;
}

sgraph::OrderingScheme scheme_of(const std::string& name) {
  if (name == "naive") return sgraph::OrderingScheme::kNaive;
  if (name == "sift") return sgraph::OrderingScheme::kSiftOutputsAfterSupport;
  if (name == "sift-in") return sgraph::OrderingScheme::kSiftOutputsAfterInputs;
  if (name == "out-first") return sgraph::OrderingScheme::kOutputsBeforeInputs;
  if (name == "free") return sgraph::OrderingScheme::kFreeOrder;
  throw std::runtime_error("unknown scheme: " + name);
}

void write_artifact(const Args& args, const std::string& name,
                    const std::string& content) {
  if (args.out_dir.empty()) {
    std::cout << "// ===== " << name << " =====\n" << content << "\n";
    return;
  }
  std::filesystem::create_directories(args.out_dir);
  const std::string path = args.out_dir + "/" + name;
  // Temp-file + rename: an interrupted or budget-killed run never leaves a
  // truncated artifact behind.
  write_file_atomic(path, content);
  std::cout << "wrote " << path << "\n";
}

OnBudget budget_mode(const Args& args) {
  return args.on_budget == "degrade" ? OnBudget::kDegrade : OnBudget::kFail;
}

/// Prints the degradation-ladder rungs a synthesis run took; deterministic
/// for node/byte budgets, so degraded runs stay byte-for-byte comparable.
void report_degradations(const std::string& name, const SynthesisResult& r) {
  for (const std::string& d : r.degradations)
    std::cout << "degraded " << name << ": " << d << "\n";
  if (r.estimate_skipped)
    std::cout << "degraded " << name << ": estimates are placeholders\n";
}

SynthesisResult synthesize_one(std::shared_ptr<const cfsm::Cfsm> machine,
                               const Args& args,
                               const estim::CostModel& model,
                               const vm::TargetProfile& target,
                               const cfsm::CareFilter& care_filter = {}) {
  SynthesisOptions options;
  options.scheme = scheme_of(args.scheme);
  options.build.use_care_set = args.care;
  options.build.care_filter = care_filter;
  options.optimize_copy_in = args.opt_copyin;
  options.target = target;
  options.cost_model = &model;
  options.on_budget = budget_mode(args);
  return synthesize(std::move(machine), options);
}

/// Runs the symbolic engine over a network, prints the verdicts (assert
/// clauses + the built-in lost-event property) and a replay confirmation for
/// every counterexample. Returns the per-machine care filters (empty unless
/// the reached set is exact).
std::map<std::string, cfsm::CareFilter> run_verify(const cfsm::Network& net,
                                                   OnBudget on_budget,
                                                   int verify_threads) {
  verif::VerifyOptions options;
  options.reach.degrade_on_budget = on_budget == OnBudget::kDegrade;
  options.reach.num_threads = verify_threads;
  const verif::VerifyResult v = verif::verify_network(net, options);
  std::cout << "verify: " << v.reach.reached_states << " reachable states in "
            << v.reach.iterations << " iterations ("
            << (!v.reach.converged
                    ? "incomplete"
                    : v.reach.exact ? "exact" : "overapproximate")
            << "), "
            << v.clusters << " clusters / " << v.transitions
            << " transitions, peak " << v.reach.peak_live_nodes
            << " live nodes";
  if (v.reach.shards > 0)
    std::cout << ", " << v.reach.shards << " image shards";
  std::cout << "\n";
  for (const verif::CheckResult& r : v.assertions) {
    std::cout << "  assert " << r.property.name;
    if (r.property.line > 0) std::cout << " (line " << r.property.line << ")";
    std::cout << ": " << verif::to_string(r.verdict);
    if (r.verdict != verif::Verdict::kProved)
      std::cout << " — " << r.violating_states << " reachable violating state"
                << (r.violating_states == 1 ? "" : "s");
    if (r.cex) {
      const bool interp = verif::replay_counterexample(net, *r.cex, r.property);
      const bool on_rtos = verif::replay_on_rtos(net, *r.cex, r.property);
      std::cout << "; counterexample of " << r.cex->steps.size()
                << " steps (interpreter replay "
                << (interp ? "confirms" : "DIVERGES") << ", RTOS replay "
                << (on_rtos ? "confirms" : "diverges") << ")";
    }
    std::cout << "\n";
  }
  if (v.lost_events.possible) {
    for (const auto& [subject, states] : v.lost_events.offenders)
      std::cout << "  lost-event risk: a step of '" << subject
                << "' can overwrite a pending event (in " << states
                << " reachable states)\n";
  } else if (v.lost_events.sound) {
    std::cout << "  no reachable state can lose an event\n";
  } else {
    std::cout << "  no lost event found (exploration incomplete; "
                 "not a proof)\n";
  }
  return v.care_filters;
}

void add_report_row(Table& table, const std::string& name,
                    const SynthesisResult& r, const vm::TargetProfile& target) {
  const auto timing = vm::measure_timing(*r.compiled, target, *r.machine);
  table.add_row(
      {name, std::to_string(r.graph->num_reachable()),
       std::to_string(r.estimate.size_bytes), std::to_string(r.vm_size_bytes),
       std::to_string(r.estimate.min_cycles) + ".." +
           std::to_string(r.estimate.max_cycles),
       timing.has_value() ? std::to_string(timing->min_cycles) + ".." +
                                std::to_string(timing->max_cycles)
                          : "n/a",
       fixed(1000.0 * r.synthesis_seconds, 1)});
}

int run(const Args& args) {
  std::ifstream in(args.input);
  if (!in) {
    std::cerr << "polisc: cannot open " << args.input << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  // The parser polls the governor so hostile input cannot wedge the run past
  // the deadline. In degrade mode a deadline that expires mid-parse re-parses
  // ungoverned instead: parsing terminates on any finite input, and nothing
  // downstream can degrade without a parse tree.
  const frontend::ParsedFile file = [&] {
    const std::string source = buffer.str();
    if (budget_mode(args) != OnBudget::kDegrade) return frontend::parse(source);
    try {
      return frontend::parse(source);
    } catch (const BudgetExceeded&) {
      if (ResourceGovernor* gov = ResourceGovernor::current())
        gov->note_degradation("parse over deadline; ungoverned re-parse");
      std::cerr << "degraded frontend: parse over deadline; re-parsing"
                   " ungoverned\n";
      ResourceGovernor::Suspend suspend;
      return frontend::parse(source);
    }
  }();

  if (args.list) {
    std::cout << "modules:";
    for (const auto& [name, m] : file.modules)
      std::cout << ' ' << name << '(' << m->rules().size() << " rules)";
    std::cout << "\nnetworks:";
    for (const auto& [name, n] : file.networks)
      std::cout << ' ' << name << '(' << n->instances().size()
                << " instances)";
    std::cout << "\n";
    return 0;
  }

  const vm::TargetProfile target =
      args.target == "risc32" ? vm::risc32_like() : vm::hc11_like();
  // Calibration compiles sample programs through the governed BDD kernel, so
  // an expired deadline can trip inside it; the cost model is mandatory for
  // estimation, so degrade mode recalibrates ungoverned (it is small and
  // deterministic) instead of dropping the run.
  const estim::CostModel model = [&] {
    if (budget_mode(args) != OnBudget::kDegrade) return estim::calibrate(target);
    try {
      return estim::calibrate(target);
    } catch (const BudgetExceeded&) {
      if (ResourceGovernor* gov = ResourceGovernor::current())
        gov->note_degradation("calibration over budget; ungoverned rerun");
      std::cerr << "degraded calibration: over budget; rerunning ungoverned\n";
      ResourceGovernor::Suspend suspend;
      return estim::calibrate(target);
    }
  }();
  Table report({"task", "s-graph", "est bytes", "meas bytes", "est cycles",
                "meas cycles", "synth ms"});

  if (!args.module.empty()) {
    auto it = file.modules.find(args.module);
    if (it == file.modules.end()) {
      std::cerr << "polisc: no module named " << args.module << "\n";
      return 1;
    }
    const SynthesisResult r = synthesize_one(it->second, args, model, target);
    report_degradations(args.module, r);
    write_artifact(args, "cfsm_" + c_identifier(args.module) + ".c", r.c_code);
    if (args.dot) {
      std::ostringstream dot;
      sgraph::to_dot(*r.graph, dot);
      write_artifact(args, c_identifier(args.module) + ".dot", dot.str());
    }
    if (args.report) {
      add_report_row(report, args.module, r, target);
      report.print(std::cout);
    }
    return 0;
  }

  if (!args.network.empty()) {
    auto it = file.networks.find(args.network);
    if (it == file.networks.end()) {
      std::cerr << "polisc: no network named " << args.network << "\n";
      return 1;
    }
    const cfsm::Network& net = *it->second;

    std::map<std::string, cfsm::CareFilter> care_filters;
    if (args.verify)
      care_filters = run_verify(net, budget_mode(args),
                                static_cast<int>(args.verify_threads));

    rtos::RtosConfig config;
    if (args.policy == "prio")
      config.policy = rtos::RtosConfig::Policy::kStaticPriority;
    config.preemptive = args.preemptive;
    if (args.polling)
      config.delivery = rtos::RtosConfig::HwDelivery::kPolling;
    // ~50 simulated-cycle epochs over the horizon (same cadence as the
    // periodic workload below) — deterministic, so two identical runs emit
    // byte-identical "cycles" series.
    if (args.simulate > 0)
      config.metrics_epoch_cycles =
          std::max<long long>(args.simulate / 50, 1);

    write_artifact(args, "polis_rt.h", rtos::generate_rt_header(net));
    write_artifact(args, "polis_rtos.c", rtos::generate_rtos_c(net, config));

    // One fan-out over the distinct machines (instances sharing a machine
    // are synthesized once); verif care filters land on their machines via
    // care_filter_by_machine. The same results feed codegen, the report and
    // the simulator below.
    SynthesisOptions net_options;
    net_options.scheme = scheme_of(args.scheme);
    net_options.build.use_care_set = args.care;
    net_options.optimize_copy_in = args.opt_copyin;
    net_options.target = target;
    net_options.cost_model = &model;
    net_options.care_filter_by_machine = care_filters;
    net_options.on_budget = budget_mode(args);
    const NetworkSynthesis synth = synthesize_network(net, net_options);

    // Degradations are per distinct machine; report them once each.
    {
      std::set<std::string> seen;
      for (const cfsm::Instance& inst : net.instances()) {
        if (!seen.insert(inst.machine->name()).second) continue;
        report_degradations(inst.machine->name(),
                            synth.per_instance.at(inst.name));
      }
    }

    for (const cfsm::Instance& inst : net.instances()) {
      const SynthesisResult& r = synth.per_instance.at(inst.name);
      codegen::CCodegenOptions c_options;
      c_options.optimize_copy_in = args.opt_copyin;
      write_artifact(args, "cfsm_" + c_identifier(inst.name) + ".c",
                     codegen::generate_instance_c(*r.graph, inst, c_options));
      if (args.dot) {
        std::ostringstream dot;
        sgraph::to_dot(*r.graph, dot);
        write_artifact(args, c_identifier(inst.name) + ".dot", dot.str());
      }
      if (args.report) add_report_row(report, inst.name, r, target);
    }
    if (args.report) report.print(std::cout);

    if (args.simulate > 0) try {
      // §I-H step 4: static schedulability of the periodic workload the
      // simulator runs below — estimator WCETs against the source period.
      {
        const long long period = std::max<long long>(args.simulate / 50, 1);
        std::vector<sched::Task> taskset;
        for (const cfsm::Instance& inst : net.instances())
          taskset.push_back(
              {inst.name, static_cast<double>(synth.max_cycles.at(inst.name)),
               static_cast<double>(period), 0, 0});
        taskset = sched::rate_monotonic_order(std::move(taskset));
        const auto responses = sched::response_times(taskset);
        std::cout << "schedulability: utilization "
                  << fixed(100 * sched::utilization(taskset), 1)
                  << "% at period " << period << ", rate-monotonic "
                  << (responses.has_value() ? "feasible" : "INFEASIBLE")
                  << "\n";
      }

      config.collect_log = !args.vcd.empty() || !args.trace_file.empty();
      rtos::RtosSimulation sim(net, config);
      for (const cfsm::Instance& inst : net.instances()) {
        const SynthesisResult& r = synth.per_instance.at(inst.name);
        sim.set_task(inst.name,
                     rtos::vm_task(r.compiled, target, inst.machine));
      }
      // Periodic workload: every external input fires ~50 times over the
      // horizon, phases staggered, values random in the net's domain.
      Rng rng(1);
      std::vector<std::vector<rtos::ExternalEvent>> traces;
      long long phase = 0;
      const auto nets = net.nets();
      for (const std::string& in : net.external_inputs()) {
        rtos::PeriodicSource source;
        source.net = in;
        source.period = std::max<long long>(args.simulate / 50, 1);
        source.phase = phase;
        source.value_domain = nets.at(in).domain;
        traces.push_back(rtos::periodic_trace(source, args.simulate, &rng));
        phase += source.period / std::max<size_t>(
                     net.external_inputs().size(), 1);
      }
      const rtos::SimStats stats =
          sim.run(rtos::merge_traces(std::move(traces)));

      std::cout << "simulation: " << stats.end_time << " cycles, "
                << stats.reactions_run << " reactions ("
                << stats.empty_reactions << " empty), utilization "
                << fixed(100 * stats.utilization(), 1) << "%\n";
      std::map<std::string, int> counts;
      for (const rtos::ObservedEmission& e : stats.outputs) counts[e.net]++;
      for (const auto& [out, n] : counts)
        std::cout << "  output " << out << ": " << n << " emissions\n";
      for (const auto& [n, lost] : stats.lost_events)
        std::cout << "  lost on " << n << ": " << lost << "\n";
      if (!args.vcd.empty()) {
        std::ostringstream vcd;
        rtos::write_vcd(net, stats, vcd);
        write_file_atomic(args.vcd, vcd.str());
        std::cout << "wrote " << args.vcd << " (" << stats.log.size()
                  << " log events)\n";
      }
      // The simulated-cycle lanes of the trace: same clock as the VCD.
      if (!args.trace_file.empty()) rtos::record_sim_trace(net, stats);
    } catch (const BudgetExceeded& e) {
      // The simulation is advisory — the synthesized artifacts above are
      // already on disk — so in degrade mode a budget trip drops it rather
      // than the whole run. Cancellation still propagates.
      if (budget_mode(args) != OnBudget::kDegrade) throw;
      if (ResourceGovernor* gov = ResourceGovernor::current())
        gov->note_degradation("simulation dropped on budget");
      std::cerr << "degraded simulation: dropped on budget ("
                << BudgetExceeded::kind_name(e.kind()) << ")\n";
    }
    return 0;
  }

  std::cerr << "polisc: pass --list, --module or --network\n";
  return 1;
}

}  // namespace

// Writes the trace / metrics files requested on the command line. Runs even
// when the flow failed part-way: a trace of a failing run is exactly what
// one wants to look at.
void write_obs_outputs(const Args& args) {
  if (!args.trace_file.empty()) {
    try {
      std::ostringstream out;
      obs::TraceRecorder::global().write_chrome_json(out);
      polis::write_file_atomic(args.trace_file, out.str());
      std::cout << "wrote " << args.trace_file << " (Chrome trace)\n";
    } catch (const std::exception& e) {
      std::cerr << "polisc: cannot write " << args.trace_file << ": "
                << e.what() << "\n";
    }
  }
  if (args.metrics) {
    if (args.metrics_file.empty()) {
      // No file: the final snapshot goes to stderr, as it always has.
      obs::write_metrics_json(std::cerr);
    } else {
      try {
        std::ostringstream out;
        obs::write_metrics_json(out);
        polis::write_file_atomic(args.metrics_file, out.str());
        std::cout << "wrote " << args.metrics_file << " (metrics snapshot)\n";
      } catch (const std::exception& e) {
        std::cerr << "polisc: cannot write " << args.metrics_file << ": "
                  << e.what() << "\n";
      }
    }
  }
  if (!args.metrics_prom.empty()) {
    try {
      std::ostringstream out;
      obs::write_prometheus(out);
      polis::write_file_atomic(args.metrics_prom, out.str());
      std::cout << "wrote " << args.metrics_prom << " (Prometheus text)\n";
    } catch (const std::exception& e) {
      std::cerr << "polisc: cannot write " << args.metrics_prom << ": "
                << e.what() << "\n";
    }
  }
}

int main(int argc, char** argv) {
  using namespace polis;
  Args args;
  bool args_ok = false;
  try {
    args_ok = parse_args(argc, argv, args);
  } catch (const std::exception& e) {
    std::cerr << "polisc: " << e.what() << "\n";
    args_ok = false;
  }
  if (!args_ok) {
    usage();
    return kExitUsage;
  }
  if (!args.trace_file.empty()) {
    obs::TraceRecorder::global().set_enabled(true);
    obs::TraceRecorder::global().name_this_thread("polisc main");
  }

  // Streaming series: a JSONL sink and/or a wall-clock sampler turn the
  // recorder on; the rtos/verif probe sites then tick their own timebases.
  std::ofstream series_sink;
  if (!args.metrics_out.empty() || args.metrics_interval_ms > 0) {
#ifdef POLIS_OBS_DISABLED
    std::cerr << "polisc: streaming metrics unavailable (built with "
                 "POLIS_OBS=OFF); ignoring --metrics-out / "
                 "--metrics-interval-ms\n";
#else
    obs::SeriesRecorder& series = obs::SeriesRecorder::global();
    if (!args.metrics_out.empty()) {
      // The sink opens before run() creates --out, so an in---out path needs
      // its directory brought into existence here.
      const auto parent = std::filesystem::path(args.metrics_out).parent_path();
      if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
      }
      series_sink.open(args.metrics_out, std::ios::out | std::ios::trunc);
      if (!series_sink) {
        std::cerr << "polisc: cannot open " << args.metrics_out << "\n";
        return kExitError;
      }
      series.set_sink(&series_sink);
    }
    if (!args.trace_file.empty())
      series.set_trace_counters(&obs::TraceRecorder::global());
    series.set_enabled(true);
    if (args.metrics_interval_ms > 0)
      series.start_wall_sampler(args.metrics_interval_ms);
#endif
  }

  // One governor spans the whole run; every phase charges/polls it through
  // the thread-local ambient pointer (worker threads re-install it).
  GovernorLimits limits;
  limits.deadline_ms = args.deadline_ms;
  limits.max_nodes = args.max_nodes;
  limits.max_arena_bytes =
      static_cast<uint64_t>(args.max_arena_mb) * (uint64_t{1} << 20);
  ResourceGovernor governor(limits);
  std::optional<ResourceGovernor::Scope> scope;
  if (limits.any()) scope.emplace(&governor);

  const auto finish = [&] {
    if (limits.any()) governor.flush_stats_to_obs();
#ifndef POLIS_OBS_DISABLED
    // Stop the sampler and detach the sink before the stream closes; each
    // epoch line was already flushed, so even this running on an error path
    // leaves a complete JSONL file behind.
    obs::SeriesRecorder::global().stop_wall_sampler();
    obs::SeriesRecorder::global().set_sink(nullptr);
    obs::SeriesRecorder::global().set_enabled(false);
#endif
    write_obs_outputs(args);
  };
  try {
    const int rc = run(args);
    finish();
    return rc;
  } catch (const frontend::ParseError& e) {
    std::cerr << "polisc: " << args.input << ": " << e.what() << "\n";
    finish();
    return kExitParse;
  } catch (const Cancelled& e) {
    std::cerr << "polisc: " << e.what() << "\n";
    finish();
    return kExitCancelled;
  } catch (const BudgetExceeded& e) {
    std::cerr << "polisc: budget exceeded ("
              << BudgetExceeded::kind_name(e.kind()) << "): " << e.what()
              << "\n";
    finish();
    return kExitBudget;
  } catch (const CheckError& e) {
    std::cerr << "polisc: internal invariant failure: " << e.what() << "\n";
    finish();
    return kExitInternal;
  } catch (const std::exception& e) {
    std::cerr << "polisc: " << e.what() << "\n";
    finish();
    return kExitError;
  }
}
