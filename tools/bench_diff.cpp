// bench_diff — CI perf-regression gate over two BENCH_*.json reports
// (bench/report.hpp shape). Compares a baseline report against a current one
// and exits nonzero when a *gated* metric regressed past the threshold.
//
// Gating is direction-aware and noise-aware:
//   * higher-is-better:  *per_sec*, *_rate         (regression = drop)
//   * lower-is-better:   *seconds*, *_ms, *wall*   (regression = growth)
//   * everything else (counts, sizes, config echoes) is informational only —
//     a peak_nodes change is worth seeing but machines differ legitimately.
//   * sub-floor timings are never gated: a 0.2 ms microbench swinging 2x is
//     scheduler noise, not a regression. Rate metrics inherit the floor from
//     the entry's wall_seconds when present.
//
// Entries present in the baseline but missing from the current report fail
// the gate too — silently dropped coverage must not read as "no regressions".
//
// Usage:
//   bench_diff BASELINE.json CURRENT.json
//              [--threshold FRAC]            gate at |rel change| > FRAC (0.25)
//              [--noise-floor-seconds SEC]   skip timings under SEC (0.005)
//              [--list-all]                  print unchanged metrics too
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using polis::obs::json::Value;

struct Report {
  std::string bench;
  // entry name -> metric name -> value; numeric metrics only.
  std::map<std::string, std::map<std::string, double>> entries;
  std::map<std::string, double> phases;
};

[[noreturn]] void die(const std::string& msg) {
  std::cerr << "bench_diff: " << msg << "\n";
  std::exit(2);
}

Report load(const std::string& path) {
  std::ifstream is(path);
  if (!is) die("cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  Value doc;
  try {
    doc = polis::obs::json::parse(buf.str());
  } catch (const std::exception& e) {
    die(path + ": " + e.what());
  }
  if (!doc.is_object()) die(path + ": top level is not an object");
  Report r;
  if (const Value* b = doc.find("bench"); b && b->is_string()) r.bench = b->str;
  const Value* entries = doc.find("entries");
  if (!entries || !entries->is_array())
    die(path + ": missing \"entries\" array");
  for (const Value& e : entries->array) {
    const Value* name = e.find("name");
    const Value* metrics = e.find("metrics");
    if (!name || !name->is_string() || !metrics || !metrics->is_object())
      die(path + ": entry without name/metrics");
    auto& slot = r.entries[name->str];
    for (const auto& [key, v] : metrics->object)
      if (v.is_number()) slot[key] = v.number;
  }
  if (const Value* phases = doc.find("phases"); phases && phases->is_object())
    for (const auto& [key, v] : phases->object)
      if (v.is_number()) r.phases[key] = v.number;
  return r;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}
bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

enum class Direction { kHigherBetter, kLowerBetter, kNeutral };

Direction direction_of(const std::string& metric) {
  if (contains(metric, "per_sec") || ends_with(metric, "_rate"))
    return Direction::kHigherBetter;
  if (contains(metric, "seconds") || ends_with(metric, "_ms") ||
      contains(metric, "wall"))
    return Direction::kLowerBetter;
  return Direction::kNeutral;
}

/// Timing value in seconds for the noise-floor check, or -1 if `metric`
/// isn't a timing.
double as_seconds(const std::string& metric, double value) {
  if (contains(metric, "seconds")) return value;
  if (ends_with(metric, "_ms")) return value / 1000.0;
  return -1.0;
}

struct Options {
  double threshold = 0.25;
  double noise_floor_seconds = 0.005;
  bool list_all = false;
};

int run(const Report& base, const Report& cur, const Options& opt) {
  int regressions = 0;
  std::printf("%-44s %14s %14s %9s  %s\n", "entry.metric", "baseline",
              "current", "change", "verdict");
  for (const auto& [entry, base_metrics] : base.entries) {
    auto cur_it = cur.entries.find(entry);
    if (cur_it == cur.entries.end()) {
      std::printf("%-44s %14s %14s %9s  %s\n", entry.c_str(), "-", "-", "-",
                  "FAIL (entry missing from current report)");
      ++regressions;
      continue;
    }
    for (const auto& [metric, base_val] : base_metrics) {
      auto mv = cur_it->second.find(metric);
      if (mv == cur_it->second.end()) continue;
      const double cur_val = mv->second;
      const std::string label = entry + "." + metric;
      const double rel =
          base_val == 0.0 ? (cur_val == 0.0 ? 0.0 : HUGE_VAL)
                          : (cur_val - base_val) / std::fabs(base_val);
      const Direction dir = direction_of(metric);

      const char* verdict = "ok";
      bool show = opt.list_all;
      if (dir == Direction::kNeutral) {
        if (rel != 0.0) {
          verdict = "info (not gated)";
          show = true;
        }
      } else {
        // Noise floor: a timing metric is gated only when either side is at
        // least the floor; a rate metric defers to its entry's wall time.
        bool gated = true;
        const double base_s = as_seconds(metric, base_val);
        const double cur_s = as_seconds(metric, cur_val);
        if (base_s >= 0.0 &&
            base_s < opt.noise_floor_seconds &&
            cur_s < opt.noise_floor_seconds)
          gated = false;
        if (dir == Direction::kHigherBetter) {
          auto base_wall = base_metrics.find("wall_seconds");
          auto cur_wall = cur_it->second.find("wall_seconds");
          if (base_wall != base_metrics.end() &&
              cur_wall != cur_it->second.end() &&
              base_wall->second < opt.noise_floor_seconds &&
              cur_wall->second < opt.noise_floor_seconds)
            gated = false;
        }
        const bool regressed = dir == Direction::kHigherBetter
                                   ? rel < -opt.threshold
                                   : rel > opt.threshold;
        if (!gated) {
          if (regressed) {
            verdict = "skip (below noise floor)";
            show = true;
          }
        } else if (regressed) {
          verdict = "REGRESSION";
          show = true;
          ++regressions;
        } else if (std::fabs(rel) > opt.threshold) {
          verdict = "improved";
          show = true;
        }
      }
      if (show)
        std::printf("%-44s %14.6g %14.6g %+8.1f%%  %s\n", label.c_str(),
                    base_val, cur_val, rel * 100.0, verdict);
    }
  }
  for (const auto& [entry, metrics] : cur.entries) {
    (void)metrics;
    if (base.entries.find(entry) == base.entries.end())
      std::printf("%-44s %14s %14s %9s  %s\n", entry.c_str(), "-", "-", "-",
                  "new entry (not gated)");
  }
  // Phase wall-times are informational: sub-millisecond span totals swing
  // with machine load, and the gated wall_seconds already cover the benches.
  for (const auto& [phase, base_ms] : base.phases) {
    auto it = cur.phases.find(phase);
    if (it == cur.phases.end()) continue;
    const double rel =
        base_ms == 0.0 ? 0.0 : (it->second - base_ms) / base_ms;
    if (opt.list_all || std::fabs(rel) > opt.threshold)
      std::printf("%-44s %14.6g %14.6g %+8.1f%%  %s\n",
                  ("phase." + phase).c_str(), base_ms, it->second, rel * 100.0,
                  "info (not gated)");
  }
  if (regressions > 0) {
    std::printf("\n%d gated regression%s past %.0f%% threshold\n", regressions,
                regressions == 1 ? "" : "s", opt.threshold * 100.0);
    return 1;
  }
  std::printf("\nno gated regressions (threshold %.0f%%)\n",
              opt.threshold * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + a);
      return argv[++i];
    };
    if (a == "--threshold")
      opt.threshold = std::stod(value());
    else if (a == "--noise-floor-seconds")
      opt.noise_floor_seconds = std::stod(value());
    else if (a == "--list-all")
      opt.list_all = true;
    else if (!a.empty() && a[0] == '-')
      die("unknown option " + a +
          "\nusage: bench_diff BASELINE.json CURRENT.json [--threshold FRAC] "
          "[--noise-floor-seconds SEC] [--list-all]");
    else
      paths.push_back(a);
  }
  if (paths.size() != 2)
    die("expected exactly two report paths (baseline, current)");
  if (opt.threshold <= 0.0) die("--threshold must be positive");
  const Report base = load(paths[0]);
  const Report cur = load(paths[1]);
  if (!base.bench.empty() && !cur.bench.empty() && base.bench != cur.bench)
    std::cerr << "bench_diff: warning: comparing different benches (\""
              << base.bench << "\" vs \"" << cur.bench << "\")\n";
  return run(base, cur, opt);
}
