// Schema validator for the observability exports (`polisc --trace` /
// `--metrics`), run from ctest and the CI obs-smoke job right after a polisc
// invocation. Uses the layer's own strict JSON reader, so a file that loads
// here also loads in Perfetto / chrome://tracing (trace) and in any JSON
// consumer (metrics).
//
//   obs_check [--trace FILE [--require-span NAME]... [--require-nested]
//                           [--require-sim-lanes]]
//             [--metrics FILE [--require-metric NAME]...]
//             [--series FILE [--require-epochs N] [--require-clock NAME]]
//             [--prom FILE]
//
// --series validates a streaming JSONL export (`polisc --metrics-out`): every
// line must be a standalone JSON object with integral epoch/ts, a known
// clock, and well-formed counter/gauge/histogram-summary maps; epochs must
// count up per clock. --prom validates Prometheus text exposition line by
// line (TYPE comments, name charset, numeric values).
//
// Exit status 0 when every file parses and every requirement holds; 1 with
// one diagnostic per failure on stderr otherwise.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using polis::obs::json::Value;

int failures = 0;

void fail(const std::string& what) {
  std::cerr << "obs_check: " << what << "\n";
  ++failures;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    fail("cannot open " + path);
    return "";
  }
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

struct Event {
  std::string name;
  std::string ph;
  int pid = 0;
  std::int64_t tid = 0;
  std::int64_t ts = 0;
  std::int64_t dur = 0;
};

// --- Trace ------------------------------------------------------------------

std::vector<Event> check_trace_shape(const Value& doc) {
  std::vector<Event> events;
  if (!doc.is_object()) {
    fail("trace: top level is not an object");
    return events;
  }
  const Value* list = doc.find("traceEvents");
  if (list == nullptr || !list->is_array()) {
    fail("trace: missing traceEvents array");
    return events;
  }
  for (size_t i = 0; i < list->array.size(); ++i) {
    const Value& e = list->array[i];
    const std::string at = "trace: event #" + std::to_string(i);
    if (!e.is_object()) {
      fail(at + " is not an object");
      continue;
    }
    Event out;
    const Value* name = e.find("name");
    const Value* ph = e.find("ph");
    const Value* pid = e.find("pid");
    const Value* tid = e.find("tid");
    if (name == nullptr || !name->is_string()) fail(at + ": bad name");
    else out.name = name->str;
    if (pid == nullptr || !pid->is_number()) fail(at + ": bad pid");
    else out.pid = static_cast<int>(pid->number);
    if (tid == nullptr || !tid->is_number()) fail(at + ": bad tid");
    else out.tid = static_cast<std::int64_t>(tid->number);
    if (ph == nullptr || !ph->is_string() ||
        (ph->str != "X" && ph->str != "i" && ph->str != "M" &&
         ph->str != "C")) {
      fail(at + ": ph must be one of X/i/M/C");
      continue;
    }
    out.ph = ph->str;
    if (out.ph == "X" || out.ph == "i" || out.ph == "C") {
      const Value* ts = e.find("ts");
      if (ts == nullptr || !ts->is_number() || ts->number < 0)
        fail(at + ": X/i/C event needs a non-negative ts");
      else
        out.ts = static_cast<std::int64_t>(ts->number);
    }
    if (out.ph == "C" && e.find("args") == nullptr)
      fail(at + ": C event needs a counter value in args");
    if (out.ph == "X") {
      const Value* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0)
        fail(at + ": X event needs a non-negative dur");
      else
        out.dur = static_cast<std::int64_t>(dur->number);
    }
    events.push_back(std::move(out));
  }
  return events;
}

void require_span(const std::vector<Event>& events, const std::string& name) {
  for (const Event& e : events)
    if (e.ph == "X" && e.name == name) return;
  fail("trace: required span \"" + name + "\" not found");
}

// At least one span strictly inside another on the same lane — the signature
// of a stage breakdown rather than a flat event list.
void require_nested(const std::vector<Event>& events) {
  for (const Event& outer : events) {
    if (outer.ph != "X") continue;
    for (const Event& inner : events) {
      if (&inner == &outer || inner.ph != "X") continue;
      if (inner.pid == outer.pid && inner.tid == outer.tid &&
          inner.ts >= outer.ts &&
          inner.ts + inner.dur <= outer.ts + outer.dur &&
          inner.dur < outer.dur)
        return;
    }
  }
  fail("trace: no nested spans found");
}

// Simulated-cycle lanes (pid 2): at least one task span plus lane naming.
void require_sim_lanes(const std::vector<Event>& events) {
  bool span = false;
  bool named = false;
  for (const Event& e : events) {
    if (e.pid != 2) continue;
    if (e.ph == "X") span = true;
    if (e.ph == "M" && e.name == "thread_name") named = true;
  }
  if (!span) fail("trace: no spans on the simulated-cycle lanes (pid 2)");
  if (!named) fail("trace: simulated-cycle lanes are unnamed");
}

// --- Metrics ----------------------------------------------------------------

const Value* check_metrics_shape(const Value& doc) {
  if (!doc.is_object()) {
    fail("metrics: top level is not an object");
    return nullptr;
  }
  for (const char* section : {"counters", "gauges", "histograms", "derived"}) {
    const Value* v = doc.find(section);
    if (v == nullptr || !v->is_object())
      fail(std::string("metrics: missing \"") + section + "\" object");
  }
  const Value* counters = doc.find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, v] : counters->object)
      if (!v.is_number() || v.number < 0)
        fail("metrics: counter \"" + name + "\" is not a non-negative number");
  }
  const Value* hists = doc.find("histograms");
  if (hists != nullptr && hists->is_object()) {
    for (const auto& [name, h] : hists->object) {
      const std::string at = "metrics: histogram \"" + name + "\"";
      if (!h.is_object() || h.find("count") == nullptr ||
          h.find("sum") == nullptr) {
        fail(at + " lacks count/sum");
        continue;
      }
      const Value* buckets = h.find("buckets");
      if (buckets == nullptr || !buckets->is_array()) {
        fail(at + " lacks a buckets array");
        continue;
      }
      for (const Value& triple : buckets->array) {
        if (!triple.is_array() || triple.array.size() != 3 ||
            triple.array[0].number > triple.array[1].number ||
            triple.array[2].number <= 0)
          fail(at + " has a malformed [lo, hi, n] bucket");
      }
    }
  }
  return &doc;
}

void require_metric(const Value& doc, const std::string& name) {
  for (const char* section :
       {"counters", "gauges", "histograms", "derived", "quantiles", "phases"}) {
    const Value* s = doc.find(section);
    if (s != nullptr && s->is_object() && s->find(name) != nullptr) return;
  }
  fail("metrics: required metric \"" + name + "\" not found");
}

// --- Streaming series (JSONL) ------------------------------------------------

bool is_integer(const Value& v) {
  return v.is_number() && v.number == static_cast<double>(
                              static_cast<long long>(v.number));
}

// Validates one JSONL file; returns epochs seen per clock name.
std::map<std::string, std::int64_t> check_series(const std::string& path) {
  std::map<std::string, std::int64_t> per_clock;
  std::ifstream is(path);
  if (!is) {
    fail("cannot open " + path);
    return per_clock;
  }
  std::map<std::string, std::int64_t> last_epoch;
  std::string line;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string at = "series: " + path + ":" + std::to_string(lineno);
    Value doc;
    try {
      doc = polis::obs::json::parse(line);
    } catch (const polis::obs::json::ParseError& e) {
      fail(at + ": " + e.what());
      continue;
    }
    if (!doc.is_object()) {
      fail(at + ": line is not an object");
      continue;
    }
    const Value* epoch = doc.find("epoch");
    const Value* clock = doc.find("clock");
    const Value* ts = doc.find("ts");
    if (epoch == nullptr || !is_integer(*epoch) || epoch->number < 0) {
      fail(at + ": bad epoch");
      continue;
    }
    if (clock == nullptr || !clock->is_string() ||
        (clock->str != "wall" && clock->str != "cycles" &&
         clock->str != "layer")) {
      fail(at + ": clock must be wall/cycles/layer");
      continue;
    }
    if (ts == nullptr || !is_integer(*ts)) fail(at + ": bad ts");
    // Epochs must count up within each clock (ring eviction never reorders
    // the stream; a re-baseline restarts at 0).
    const auto it = last_epoch.find(clock->str);
    const std::int64_t e = static_cast<std::int64_t>(epoch->number);
    if (it != last_epoch.end() && e != it->second + 1 && e != 0)
      fail(at + ": epoch " + std::to_string(e) + " does not follow " +
           std::to_string(it->second));
    last_epoch[clock->str] = e;
    per_clock[clock->str]++;
    const Value* counters = doc.find("counters");
    if (counters == nullptr || !counters->is_object()) {
      fail(at + ": missing counters object");
    } else {
      for (const auto& [name, v] : counters->object)
        if (!is_integer(v) || v.number < 0)
          fail(at + ": counter \"" + name + "\" is not a non-negative int");
    }
    const Value* gauges = doc.find("gauges");
    if (gauges == nullptr || !gauges->is_object()) {
      fail(at + ": missing gauges object");
    } else {
      for (const auto& [name, v] : gauges->object)
        if (!is_integer(v)) fail(at + ": gauge \"" + name + "\" is not an int");
    }
    const Value* hists = doc.find("histograms");
    if (hists == nullptr || !hists->is_object()) {
      fail(at + ": missing histograms object");
    } else {
      for (const auto& [name, h] : hists->object) {
        if (!h.is_object()) {
          fail(at + ": histogram \"" + name + "\" is not an object");
          continue;
        }
        for (const char* field : {"count", "sum", "p50", "p90", "p99"}) {
          const Value* f = h.find(field);
          if (f == nullptr || !is_integer(*f) || f->number < 0)
            fail(at + ": histogram \"" + name + "\" lacks integral " + field);
        }
        const Value* p50 = h.find("p50");
        const Value* p99 = h.find("p99");
        if (p50 != nullptr && p99 != nullptr && p50->number > p99->number)
          fail(at + ": histogram \"" + name + "\" has p50 > p99");
      }
    }
  }
  return per_clock;
}

// --- Prometheus text exposition ----------------------------------------------

bool prom_name_ok(const std::string& s) {
  if (s.empty()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (i == 0 ? !alpha : !(alpha || (c >= '0' && c <= '9'))) return false;
  }
  return true;
}

bool number_ok(const std::string& s) {
  if (s.empty()) return false;
  try {
    size_t used = 0;
    (void)std::stod(s, &used);
    return used == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

void check_prometheus(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    fail("cannot open " + path);
    return;
  }
  std::string line;
  size_t lineno = 0;
  size_t samples = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string at = "prom: " + path + ":" + std::to_string(lineno);
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# TYPE <name> <counter|gauge|summary|histogram|untyped>" and
      // "# HELP <name> <text>" comments are meaningful.
      std::istringstream ls(line);
      std::string hash, kind, name, rest;
      ls >> hash >> kind >> name;
      if (kind == "TYPE") {
        ls >> rest;
        if (!prom_name_ok(name)) fail(at + ": bad metric name in TYPE");
        if (rest != "counter" && rest != "gauge" && rest != "summary" &&
            rest != "histogram" && rest != "untyped")
          fail(at + ": unknown TYPE \"" + rest + "\"");
      }
      continue;
    }
    // Sample line: name[{labels}] value [timestamp]
    const size_t sp = line.find(' ');
    if (sp == std::string::npos) {
      fail(at + ": no value on sample line");
      continue;
    }
    std::string name = line.substr(0, sp);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      if (name.back() != '}') {
        fail(at + ": unterminated label set");
        continue;
      }
      name = name.substr(0, brace);
    }
    if (!prom_name_ok(name)) {
      fail(at + ": bad metric name \"" + name + "\"");
      continue;
    }
    const std::string value = line.substr(sp + 1);
    if (!number_ok(value.substr(0, value.find(' '))))
      fail(at + ": bad sample value \"" + value + "\"");
    ++samples;
  }
  if (samples == 0) fail("prom: " + path + " contains no samples");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string trace_file;
  std::string metrics_file;
  std::string series_file;
  std::string prom_file;
  std::vector<std::string> spans;
  std::vector<std::string> metrics;
  bool want_nested = false;
  bool want_sim_lanes = false;
  std::int64_t require_epochs = 0;
  std::string require_clock;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "obs_check: " << a << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--trace") trace_file = value();
    else if (a == "--metrics") metrics_file = value();
    else if (a == "--series") series_file = value();
    else if (a == "--prom") prom_file = value();
    else if (a == "--require-span") spans.push_back(value());
    else if (a == "--require-metric") metrics.push_back(value());
    else if (a == "--require-nested") want_nested = true;
    else if (a == "--require-sim-lanes") want_sim_lanes = true;
    else if (a == "--require-epochs") require_epochs = std::stoll(value());
    else if (a == "--require-clock") require_clock = value();
    else {
      std::cerr << "obs_check: unknown argument " << a << "\n";
      return 2;
    }
  }
  if (trace_file.empty() && metrics_file.empty() && series_file.empty() &&
      prom_file.empty()) {
    std::cerr << "usage: obs_check [--trace FILE [--require-span NAME]... "
                 "[--require-nested] [--require-sim-lanes]] "
                 "[--metrics FILE [--require-metric NAME]...] "
                 "[--series FILE [--require-epochs N] [--require-clock NAME]] "
                 "[--prom FILE]\n";
    return 2;
  }

  if (!trace_file.empty()) {
    const std::string text = slurp(trace_file);
    if (!text.empty()) {
      try {
        const Value doc = polis::obs::json::parse(text);
        const std::vector<Event> events = check_trace_shape(doc);
        for (const std::string& s : spans) require_span(events, s);
        if (want_nested) require_nested(events);
        if (want_sim_lanes) require_sim_lanes(events);
        std::cout << "obs_check: " << trace_file << ": " << events.size()
                  << " events ok\n";
      } catch (const polis::obs::json::ParseError& e) {
        fail("trace: " + std::string(e.what()));
      }
    }
  }
  if (!metrics_file.empty()) {
    const std::string text = slurp(metrics_file);
    if (!text.empty()) {
      try {
        const Value doc = polis::obs::json::parse(text);
        if (check_metrics_shape(doc) != nullptr)
          for (const std::string& m : metrics) require_metric(doc, m);
        std::cout << "obs_check: " << metrics_file << ": ok\n";
      } catch (const polis::obs::json::ParseError& e) {
        fail("metrics: " + std::string(e.what()));
      }
    }
  }
  if (!series_file.empty()) {
    const std::map<std::string, std::int64_t> per_clock =
        check_series(series_file);
    std::int64_t total = 0;
    for (const auto& [clock, n] : per_clock) total += n;
    if (!require_clock.empty() && per_clock.count(require_clock) == 0)
      fail("series: no epochs on the \"" + require_clock + "\" clock");
    const std::int64_t counted = require_clock.empty()
                                     ? total
                                     : (per_clock.count(require_clock)
                                            ? per_clock.at(require_clock)
                                            : 0);
    if (require_epochs > 0 && counted < require_epochs)
      fail("series: " + std::to_string(counted) + " epochs < required " +
           std::to_string(require_epochs));
    if (failures == 0)
      std::cout << "obs_check: " << series_file << ": " << total
                << " epochs ok\n";
  }
  if (!prom_file.empty()) {
    check_prometheus(prom_file);
    if (failures == 0)
      std::cout << "obs_check: " << prom_file << ": ok\n";
  }
  return failures == 0 ? 0 : 1;
}
