// Schema validator for the observability exports (`polisc --trace` /
// `--metrics`), run from ctest and the CI obs-smoke job right after a polisc
// invocation. Uses the layer's own strict JSON reader, so a file that loads
// here also loads in Perfetto / chrome://tracing (trace) and in any JSON
// consumer (metrics).
//
//   obs_check [--trace FILE [--require-span NAME]... [--require-nested]
//                           [--require-sim-lanes]]
//             [--metrics FILE [--require-metric NAME]...]
//
// Exit status 0 when every file parses and every requirement holds; 1 with
// one diagnostic per failure on stderr otherwise.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using polis::obs::json::Value;

int failures = 0;

void fail(const std::string& what) {
  std::cerr << "obs_check: " << what << "\n";
  ++failures;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    fail("cannot open " + path);
    return "";
  }
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

struct Event {
  std::string name;
  std::string ph;
  int pid = 0;
  std::int64_t tid = 0;
  std::int64_t ts = 0;
  std::int64_t dur = 0;
};

// --- Trace ------------------------------------------------------------------

std::vector<Event> check_trace_shape(const Value& doc) {
  std::vector<Event> events;
  if (!doc.is_object()) {
    fail("trace: top level is not an object");
    return events;
  }
  const Value* list = doc.find("traceEvents");
  if (list == nullptr || !list->is_array()) {
    fail("trace: missing traceEvents array");
    return events;
  }
  for (size_t i = 0; i < list->array.size(); ++i) {
    const Value& e = list->array[i];
    const std::string at = "trace: event #" + std::to_string(i);
    if (!e.is_object()) {
      fail(at + " is not an object");
      continue;
    }
    Event out;
    const Value* name = e.find("name");
    const Value* ph = e.find("ph");
    const Value* pid = e.find("pid");
    const Value* tid = e.find("tid");
    if (name == nullptr || !name->is_string()) fail(at + ": bad name");
    else out.name = name->str;
    if (pid == nullptr || !pid->is_number()) fail(at + ": bad pid");
    else out.pid = static_cast<int>(pid->number);
    if (tid == nullptr || !tid->is_number()) fail(at + ": bad tid");
    else out.tid = static_cast<std::int64_t>(tid->number);
    if (ph == nullptr || !ph->is_string() ||
        (ph->str != "X" && ph->str != "i" && ph->str != "M")) {
      fail(at + ": ph must be one of X/i/M");
      continue;
    }
    out.ph = ph->str;
    if (out.ph == "X" || out.ph == "i") {
      const Value* ts = e.find("ts");
      if (ts == nullptr || !ts->is_number() || ts->number < 0)
        fail(at + ": X/i event needs a non-negative ts");
      else
        out.ts = static_cast<std::int64_t>(ts->number);
    }
    if (out.ph == "X") {
      const Value* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0)
        fail(at + ": X event needs a non-negative dur");
      else
        out.dur = static_cast<std::int64_t>(dur->number);
    }
    events.push_back(std::move(out));
  }
  return events;
}

void require_span(const std::vector<Event>& events, const std::string& name) {
  for (const Event& e : events)
    if (e.ph == "X" && e.name == name) return;
  fail("trace: required span \"" + name + "\" not found");
}

// At least one span strictly inside another on the same lane — the signature
// of a stage breakdown rather than a flat event list.
void require_nested(const std::vector<Event>& events) {
  for (const Event& outer : events) {
    if (outer.ph != "X") continue;
    for (const Event& inner : events) {
      if (&inner == &outer || inner.ph != "X") continue;
      if (inner.pid == outer.pid && inner.tid == outer.tid &&
          inner.ts >= outer.ts &&
          inner.ts + inner.dur <= outer.ts + outer.dur &&
          inner.dur < outer.dur)
        return;
    }
  }
  fail("trace: no nested spans found");
}

// Simulated-cycle lanes (pid 2): at least one task span plus lane naming.
void require_sim_lanes(const std::vector<Event>& events) {
  bool span = false;
  bool named = false;
  for (const Event& e : events) {
    if (e.pid != 2) continue;
    if (e.ph == "X") span = true;
    if (e.ph == "M" && e.name == "thread_name") named = true;
  }
  if (!span) fail("trace: no spans on the simulated-cycle lanes (pid 2)");
  if (!named) fail("trace: simulated-cycle lanes are unnamed");
}

// --- Metrics ----------------------------------------------------------------

const Value* check_metrics_shape(const Value& doc) {
  if (!doc.is_object()) {
    fail("metrics: top level is not an object");
    return nullptr;
  }
  for (const char* section : {"counters", "gauges", "histograms", "derived"}) {
    const Value* v = doc.find(section);
    if (v == nullptr || !v->is_object())
      fail(std::string("metrics: missing \"") + section + "\" object");
  }
  const Value* counters = doc.find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, v] : counters->object)
      if (!v.is_number() || v.number < 0)
        fail("metrics: counter \"" + name + "\" is not a non-negative number");
  }
  const Value* hists = doc.find("histograms");
  if (hists != nullptr && hists->is_object()) {
    for (const auto& [name, h] : hists->object) {
      const std::string at = "metrics: histogram \"" + name + "\"";
      if (!h.is_object() || h.find("count") == nullptr ||
          h.find("sum") == nullptr) {
        fail(at + " lacks count/sum");
        continue;
      }
      const Value* buckets = h.find("buckets");
      if (buckets == nullptr || !buckets->is_array()) {
        fail(at + " lacks a buckets array");
        continue;
      }
      for (const Value& triple : buckets->array) {
        if (!triple.is_array() || triple.array.size() != 3 ||
            triple.array[0].number > triple.array[1].number ||
            triple.array[2].number <= 0)
          fail(at + " has a malformed [lo, hi, n] bucket");
      }
    }
  }
  return &doc;
}

void require_metric(const Value& doc, const std::string& name) {
  for (const char* section :
       {"counters", "gauges", "histograms", "derived", "phases"}) {
    const Value* s = doc.find(section);
    if (s != nullptr && s->is_object() && s->find(name) != nullptr) return;
  }
  fail("metrics: required metric \"" + name + "\" not found");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string trace_file;
  std::string metrics_file;
  std::vector<std::string> spans;
  std::vector<std::string> metrics;
  bool want_nested = false;
  bool want_sim_lanes = false;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "obs_check: " << a << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--trace") trace_file = value();
    else if (a == "--metrics") metrics_file = value();
    else if (a == "--require-span") spans.push_back(value());
    else if (a == "--require-metric") metrics.push_back(value());
    else if (a == "--require-nested") want_nested = true;
    else if (a == "--require-sim-lanes") want_sim_lanes = true;
    else {
      std::cerr << "obs_check: unknown argument " << a << "\n";
      return 2;
    }
  }
  if (trace_file.empty() && metrics_file.empty()) {
    std::cerr << "usage: obs_check [--trace FILE [--require-span NAME]... "
                 "[--require-nested] [--require-sim-lanes]] "
                 "[--metrics FILE [--require-metric NAME]...]\n";
    return 2;
  }

  if (!trace_file.empty()) {
    const std::string text = slurp(trace_file);
    if (!text.empty()) {
      try {
        const Value doc = polis::obs::json::parse(text);
        const std::vector<Event> events = check_trace_shape(doc);
        for (const std::string& s : spans) require_span(events, s);
        if (want_nested) require_nested(events);
        if (want_sim_lanes) require_sim_lanes(events);
        std::cout << "obs_check: " << trace_file << ": " << events.size()
                  << " events ok\n";
      } catch (const polis::obs::json::ParseError& e) {
        fail("trace: " + std::string(e.what()));
      }
    }
  }
  if (!metrics_file.empty()) {
    const std::string text = slurp(metrics_file);
    if (!text.empty()) {
      try {
        const Value doc = polis::obs::json::parse(text);
        if (check_metrics_shape(doc) != nullptr)
          for (const std::string& m : metrics) require_metric(doc, m);
        std::cout << "obs_check: " << metrics_file << ": ok\n";
      } catch (const polis::obs::json::ParseError& e) {
        fail("metrics: " + std::string(e.what()));
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
