// The car dashboard controller (paper §V-A): synthesize every CFSM of the
// network, print the per-module synthesis summary, then run the whole
// network under the generated RTOS with VM-backed tasks and report what the
// driver would see.
#include <algorithm>
#include <iostream>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

int main() {
  using namespace polis;

  const auto network = systems::dash_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());

  std::cout << "Dashboard controller: " << network->instances().size()
            << " CFSMs, inputs:";
  for (const auto& in : network->external_inputs()) std::cout << ' ' << in;
  std::cout << ", outputs:";
  for (const auto& out : network->external_outputs()) std::cout << ' ' << out;
  std::cout << "\n\n";

  // --- Per-module synthesis ----------------------------------------------------
  Table table({"instance", "module", "s-graph", "code bytes", "min cyc",
               "max cyc"});
  rtos::RtosConfig config;  // round-robin, interrupts
  rtos::RtosSimulation sim(*network, config);
  long long total_bytes = 0;
  for (const cfsm::Instance& inst : network->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    const SynthesisResult r = synthesize(inst.machine, options);
    total_bytes += r.vm_size_bytes;
    table.add_row({inst.name, inst.machine->name(),
                   std::to_string(r.graph->num_reachable()),
                   std::to_string(r.vm_size_bytes),
                   std::to_string(r.estimate.min_cycles),
                   std::to_string(r.estimate.max_cycles)});
    sim.set_task(inst.name,
                 rtos::vm_task(r.compiled, vm::hc11_like(), inst.machine));
  }
  table.print(std::cout);
  std::cout << "total synthesized code: " << total_bytes << " bytes\n\n";

  // --- Drive it ------------------------------------------------------------------
  // A short trip: accelerating wheel pulses, steady engine, key on at start,
  // belt fastened late.
  Rng rng(2024);
  const long long horizon = 400'000;
  auto events = rtos::merge_traces({
      rtos::periodic_trace({"wheel_raw", 350, 0, 0.05, 1}, horizon, &rng),
      rtos::periodic_trace({"engine_raw", 600, 17, 0.05, 1}, horizon, &rng),
      rtos::periodic_trace({"timer", 5000, 100, 0.0, 1}, horizon),
      {{{20, "key_on", 0}, {120'000, "belt_on", 0}}},
  });
  std::cout << "simulating " << events.size()
            << " environment events under the generated RTOS (round-robin, "
               "interrupt delivery)...\n";
  const rtos::SimStats stats = sim.run(events);

  std::cout << "  simulated time      : " << stats.end_time << " cycles\n";
  std::cout << "  reactions executed  : " << stats.reactions_run << " ("
            << stats.empty_reactions << " empty)\n";
  std::cout << "  CPU utilization     : " << fixed(100 * stats.utilization(), 1)
            << "%\n";

  std::map<std::string, int> counts;
  for (const rtos::ObservedEmission& e : stats.outputs) counts[e.net]++;
  std::cout << "  outputs observed    :";
  for (const auto& [net, n] : counts) std::cout << ' ' << net << "=" << n;
  std::cout << "\n";
  for (const auto& [net, lat] : stats.input_to_output_latency) {
    const long long worst = *std::max_element(lat.begin(), lat.end());
    std::cout << "  worst latency to " << net << ": " << worst << " cycles\n";
  }
  for (const auto& [net, lost] : stats.lost_events)
    std::cout << "  lost events on " << net << ": " << lost
              << " (1-place buffers, §II-D)\n";

  const bool alarm = counts.count("alarm") != 0;
  std::cout << "\nThe seat-belt alarm " << (alarm ? "fired" : "did not fire")
            << " before the belt was fastened.\n";
  return 0;
}
