// Quickstart: the paper's Fig. 1 "module simple", end to end.
//
//   RSL source -> CFSM -> characteristic function (BDD) -> s-graph ->
//   C code + VM binary + cost/performance estimates.
//
// Build and run:  ./examples/quickstart
#include <iostream>

#include "core/synthesis.hpp"
#include "frontend/parser.hpp"
#include "sgraph/io.hpp"
#include "vm/machine.hpp"

int main() {
  using namespace polis;

  // The reactive behaviour of Fig. 1, in the RSL frontend language: await a
  // valued event c; when its value matches the counter, emit y and reset;
  // otherwise count up.
  const char* source = R"(
    module simple {
      input c : int[8];
      output y;
      state a : int[8] = 0;

      when present(c) && a == value(c) -> { a := 0; emit y; }
      when present(c) && a != value(c) -> { a := a + 1; }
    }
  )";
  std::cout << "--- RSL source ---" << source << "\n";

  const auto machine = frontend::parse_module(source);

  // Full synthesis with the paper's default ordering: constrained sifting,
  // every output after its own support (§III-B3b).
  const SynthesisResult result = synthesize(machine);

  std::cout << "--- s-graph (decision-graph form) ---\n";
  sgraph::to_text(*result.graph, std::cout);

  std::cout << "\n--- synthesized C ---\n" << result.c_code;

  std::cout << "\n--- cost/performance estimation (68HC11-like target) ---\n";
  std::cout << "  estimated code size : " << result.estimate.size_bytes
            << " bytes\n";
  std::cout << "  measured  code size : " << result.vm_size_bytes
            << " bytes (VM binary)\n";
  std::cout << "  estimated cycles    : [" << result.estimate.min_cycles
            << ", " << result.estimate.max_cycles << "]\n";
  const auto timing =
      vm::measure_timing(*result.compiled, vm::hc11_like(), *machine);
  std::cout << "  measured  cycles    : [" << timing->min_cycles << ", "
            << timing->max_cycles << "] over " << timing->cases
            << " exhaustive cases\n";

  // Execute a few reactions on the VM.
  std::cout << "\n--- running reactions on the VM target ---\n";
  auto state = machine->initial_state();
  const int inputs[] = {0, 1, 1, 2};
  for (int v : inputs) {
    cfsm::Snapshot snap;
    snap.present["c"] = true;
    snap.value["c"] = v;
    long long cycles = 0;
    const cfsm::Reaction r = vm::run_reaction(
        *result.compiled, vm::hc11_like(), *machine, snap, state, &cycles);
    std::cout << "  c=" << v << "  a: " << state.at("a") << " -> "
              << r.next_state.at("a")
              << (r.emissions.empty() ? "" : "   emit y") << "   (" << cycles
              << " cycles)\n";
    state = r.next_state;
  }
  return 0;
}
