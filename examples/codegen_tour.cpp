// A tour of the code generation back ends on one CFSM (the seat-belt
// alarm): the three ordering schemes of §III-B3, TEST-node collapsing, the
// two-level multiway jump, the Boolean-network (ESTEREL_OPT-style) form,
// and the emitted C for each — with sizes and timing side by side.
#include <iostream>

#include "baseline/boolnet.hpp"
#include "baseline/multiway.hpp"
#include "cfsm/reactive.hpp"
#include "codegen/c_codegen.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "estim/estimate.hpp"
#include "sgraph/build.hpp"
#include "sgraph/io.hpp"
#include "sgraph/optimize.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

int main() {
  using namespace polis;

  const auto belt = systems::dashboard_modules()[0];  // the seat-belt CFSM
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  const estim::EstimateContext ctx = estim::context_for(*belt);

  std::cout << "CFSM '" << belt->name() << "': " << belt->inputs().size()
            << " inputs, " << belt->outputs().size() << " outputs, "
            << belt->state().size() << " state variables, "
            << belt->rules().size() << " rules\n\n";

  Table table({"back end", "vertices", "code bytes", "min cyc", "max cyc"});

  auto row_for = [&](const char* name, cfsm::ReactiveFunction& rf,
                     const sgraph::Sgraph& g) {
    const vm::CompiledReaction cr = vm::compile(g, vm::SymbolInfo::from(*belt));
    const auto timing = vm::measure_timing(cr, vm::hc11_like(), *belt);
    (void)rf;
    table.add_row({name, std::to_string(g.num_reachable()),
                   std::to_string(cr.program.size_bytes(vm::hc11_like())),
                   std::to_string(timing->min_cycles),
                   std::to_string(timing->max_cycles)});
  };

  // Scheme (i) variants and the collapsing experiment.
  for (auto scheme : {sgraph::OrderingScheme::kNaive,
                      sgraph::OrderingScheme::kSiftOutputsAfterInputs,
                      sgraph::OrderingScheme::kSiftOutputsAfterSupport}) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*belt, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(rf, scheme);
    row_for(sgraph::to_string(scheme), rf, g);
    if (scheme == sgraph::OrderingScheme::kSiftOutputsAfterSupport) {
      const sgraph::Sgraph collapsed = sgraph::collapse_tests(g);
      row_for("  + collapsed TESTs", rf, collapsed);
    }
  }

  // §VI future work: the free-order (unordered) decision graph.
  {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*belt, mgr);
    const sgraph::Sgraph g =
        sgraph::build_sgraph(rf, sgraph::OrderingScheme::kFreeOrder);
    row_for("free-order (FBDD-style)", rf, g);
  }

  // Scheme (ii): outputs before inputs — TEST-free ITE chains.
  {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*belt, mgr);
    const sgraph::Sgraph g =
        sgraph::build_sgraph(rf, sgraph::OrderingScheme::kOutputsBeforeInputs);
    row_for("out-before-in (ITE chain)", rf, g);
  }

  // Two-level multiway jump (Table II's reference implementation).
  {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*belt, mgr);
    const auto mw = baseline::compile_multiway(rf);
    const auto timing = vm::measure_timing(mw->reaction, vm::hc11_like(), *belt);
    table.add_row({"two-level multiway jump",
                   std::to_string(mw->level1_entries) + " states",
                   std::to_string(mw->reaction.program.size_bytes(vm::hc11_like())),
                   std::to_string(timing->min_cycles),
                   std::to_string(timing->max_cycles)});
  }

  // Boolean network (ESTEREL_OPT analogue), estimated.
  {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*belt, mgr);
    const baseline::BoolnetProgram bn = baseline::build_boolnet(rf);
    const estim::Estimate e = baseline::estimate_boolnet(bn, model, ctx);
    table.add_row({"boolean network (est.)",
                   std::to_string(bn.steps.size()) + " temps",
                   std::to_string(e.size_bytes),
                   std::to_string(e.min_cycles),
                   std::to_string(e.max_cycles)});
  }

  table.print(std::cout);

  // Show the artifacts for the default scheme.
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*belt, mgr);
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  std::cout << "\n--- s-graph ---\n";
  sgraph::to_text(g, std::cout);
  std::cout << "\n--- synthesized C ---\n" << codegen::generate_c(g, *belt);
  std::cout << "\n--- Boolean-network form ---\n"
            << baseline::boolnet_to_c(baseline::build_boolnet(rf));
  return 0;
}
