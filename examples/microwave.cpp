// A microwave oven controller (the paper's motivating consumer-appliance
// domain, §I-A): synthesize the four CFSMs, run a cooking scenario under the
// generated RTOS with VM-backed tasks, and dump a VCD waveform of the
// schedule and the event traffic (viewable in GTKWave).
#include <fstream>
#include <iostream>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/vcd.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

int main(int argc, char** argv) {
  using namespace polis;
  const std::string vcd_path = argc > 1 ? argv[1] : "microwave.vcd";

  const auto net = systems::microwave_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());

  rtos::RtosConfig config;
  config.collect_log = true;  // for the VCD
  rtos::RtosSimulation sim(*net, config);

  Table table({"task", "module", "code bytes", "WCET (cycles)"});
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    options.optimize_copy_in = true;
    const SynthesisResult r = synthesize(inst.machine, options);
    table.add_row({inst.name, inst.machine->name(),
                   std::to_string(r.vm_size_bytes),
                   std::to_string(r.estimate.max_cycles)});
    sim.set_task(inst.name,
                 rtos::vm_task(r.compiled, vm::hc11_like(), inst.machine));
  }
  table.print(std::cout);

  // Scenario: the cook enters 3 minutes, starts, opens the door mid-cook,
  // closes it, restarts for the remaining time... then lets it finish.
  std::vector<rtos::ExternalEvent> events = {
      {1'000, "digit", 3},        // "3 minutes"
      {2'000, "start_btn", 0},    // go
      {10'000, "tick", 0},        // minute 1 elapses
      {15'000, "door_open", 0},   // peek at the food (heat must stop)
      {18'000, "door_closed", 0},
      {20'000, "digit", 2},       // re-enter 2 minutes
      {21'000, "start_btn", 0},
      {30'000, "tick", 0},
      {40'000, "tick", 0},        // done + beep here
  };
  const rtos::SimStats stats = sim.run(events);

  std::cout << "\nscenario timeline (external outputs):\n";
  for (const rtos::ObservedEmission& e : stats.outputs)
    std::cout << "  t=" << e.time << "  " << e.net << " = " << e.value
              << "  (from " << e.producer << ")\n";

  std::ofstream vcd(vcd_path);
  rtos::write_vcd(*net, stats, vcd);
  std::cout << "\nwrote waveform with " << stats.log.size() << " log events"
            << " to " << vcd_path << " (open with gtkwave)\n";
  return 0;
}
