// The shock absorber controller redesign (paper §V-B): synthesize the four
// CFSMs, generate the RTOS C code, account ROM/RAM, validate the real-time
// budget with classical scheduling analysis, and check the end-to-end
// latency in simulation — the reproduction of the paper's 12 µs story.
#include <algorithm>
#include <iostream>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/codegen.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "sched/sched.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

int main() {
  using namespace polis;

  const auto network = systems::shock_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  const vm::TargetProfile target = vm::hc11_like();

  // Control period and latency budget, in VM cycles (the analogue of the
  // paper's 12 µs I/O latency spec on the 68HC11).
  const long long kControlPeriod = 4000;
  const long long kLatencyBudget = 6000;

  rtos::RtosConfig config;
  config.policy = rtos::RtosConfig::Policy::kStaticPriority;
  config.preemptive = true;
  config.priority = {{"smp", 1}, {"law", 2}, {"act", 3}, {"wdg", 4}};
  rtos::RtosSimulation sim(*network, config);

  Table table({"task", "ROM bytes", "RAM bytes", "WCET (cycles)", "period"});
  long long rom = 0;
  long long ram = 0;
  std::vector<sched::Task> taskset;
  for (const cfsm::Instance& inst : network->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    const SynthesisResult r = synthesize(inst.machine, options);
    const long long task_ram =
        static_cast<long long>(r.compiled->program.slot_names.size()) *
        target.int_size;
    rom += r.vm_size_bytes;
    ram += task_ram;
    table.add_row({inst.name, std::to_string(r.vm_size_bytes),
                   std::to_string(task_ram),
                   std::to_string(r.estimate.max_cycles),
                   std::to_string(kControlPeriod)});
    taskset.push_back(sched::Task{inst.name,
                                  static_cast<double>(r.estimate.max_cycles),
                                  static_cast<double>(kControlPeriod), 0, 0});
    sim.set_task(inst.name, rtos::vm_task(r.compiled, target, inst.machine));
  }

  // RTOS footprint: per-task flag bytes plus the fixed scheduler core (we
  // charge a nominal constant for the generated scheduler loop).
  const long long rtos_ram = static_cast<long long>(
      network->instances().size() * network->nets().size() *
      (1 + target.int_size));
  const long long rtos_rom = 512;
  table.add_separator();
  table.add_row({"RTOS", std::to_string(rtos_rom), std::to_string(rtos_ram),
                 "-", "-"});
  table.print(std::cout);
  std::cout << "total ROM " << rom + rtos_rom << " bytes, total RAM "
            << ram + rtos_ram
            << " bytes (the paper's hand design used 32K ROM / 8K RAM)\n\n";

  // --- Schedulability (step 4 of the flow, [24]) ------------------------------
  std::cout << "schedulability from WCET estimates:\n";
  std::cout << "  utilization        : " << fixed(100 * sched::utilization(taskset), 1)
            << "%\n";
  std::cout << "  RM sufficient test : "
            << (sched::rm_utilization_test(taskset) ? "pass" : "inconclusive")
            << "\n";
  const auto response = sched::response_times(taskset);
  if (response) {
    std::cout << "  response times     :";
    for (size_t i = 0; i < taskset.size(); ++i)
      std::cout << ' ' << taskset[i].name << "=" << fixed((*response)[i], 0);
    std::cout << " (all within deadlines)\n";
  } else {
    std::cout << "  response times     : UNSCHEDULABLE\n";
  }

  // --- Simulation ------------------------------------------------------------------
  Rng rng(99);
  const long long horizon = 800'000;
  auto events = rtos::merge_traces({
      rtos::periodic_trace({"ctrl_tick", kControlPeriod, 0, 0.0, 1}, horizon),
      rtos::periodic_trace({"accel_in", 1300, 250, 0.15, 16}, horizon, &rng),
      {{{200'000, "mode_btn", 0}, {600'000, "mode_btn", 0}}},
  });
  const rtos::SimStats stats = sim.run(events);

  std::cout << "\nsimulation over " << stats.end_time << " cycles:\n";
  std::cout << "  reactions " << stats.reactions_run << ", utilization "
            << fixed(100 * stats.utilization(), 1) << "%\n";
  if (stats.input_to_output_latency.count("valve_out") != 0) {
    const auto& lat = stats.input_to_output_latency.at("valve_out");
    const long long worst = *std::max_element(lat.begin(), lat.end());
    long long sum = 0;
    for (long long v : lat) sum += v;
    std::cout << "  valve_out latency  : avg "
              << fixed(static_cast<double>(sum) / static_cast<double>(lat.size()), 0)
              << ", worst " << worst << " cycles (budget " << kLatencyBudget
              << ") -> " << (worst <= kLatencyBudget ? "MET" : "MISSED")
              << "\n";
  }
  for (const auto& [net, n] : stats.lost_events)
    std::cout << "  lost on " << net << ": " << n << "\n";

  // --- Generated RTOS C (the deployable artifact) --------------------------------
  std::cout << "\n--- generated polis_rt.h (excerpt) ---\n";
  const std::string header = rtos::generate_rt_header(*network);
  std::cout << header.substr(0, 400) << "...\n";
  std::cout << "\n--- generated scheduler (excerpt) ---\n";
  const std::string rtos_c = rtos::generate_rtos_c(*network, config);
  std::cout << rtos_c.substr(0, 600) << "...\n";
  return 0;
}
