// Table III (§V-A): comparison of POLIS-style per-CFSM software synthesis
// against ESTEREL-style whole-design compilation on the wheel-speed chain
// (dash_core):
//
//   * POLIS rows      — each CFSM synthesized separately (decision graph,
//                       constrained sift), executed as communicating tasks
//                       under the generated RTOS;
//   * SINGLE-FSM row  — the synchronous composition compiled as one machine
//                       (the ESTEREL v3/v5 explicit-FSM analogue);
//   * SINGLE-FSM_OPT  — the composed machine through the outputs-before-
//                       inputs Boolean-network scheme (the ESTEREL_OPT row).
//
// Expected shape (the paper's): the single FSM is much larger but processes
// a reaction chain faster (no internal communication); the Boolean-circuit
// variant does not pay off; whole-design synthesis takes far longer than
// per-CFSM synthesis.
#include <chrono>
#include <iostream>

#include "baseline/boolnet.hpp"
#include "baseline/compose.hpp"
#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

std::vector<rtos::ExternalEvent> workload() {
  // Dense enough to exercise the chain, sparse enough that neither
  // implementation saturates the CPU even with heavyweight context switches
  // (saturation would cap the cycle counts via lost events).
  Rng rng(7);
  return rtos::merge_traces({
      rtos::periodic_trace({"wheel_raw", 1600, 0, 0.1, 1}, 600'000, &rng),
      rtos::periodic_trace({"timer", 9000, 50, 0.0, 1}, 600'000),
  });
}

}  // namespace

int main() {
  const auto net = systems::dash_core_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());

  std::cout << "Table III — POLIS per-CFSM synthesis vs single-FSM "
               "compilation (dash_core wheel chain)\n";
  Table table(
      {"implementation", "code bytes", "sim busy cycles", "synth time (ms)"});

  // --- POLIS: per-CFSM tasks under the RTOS. -----------------------------------
  // The POLIS/single-FSM speed comparison hinges on the communication and
  // scheduling overhead (§I-H), so the simulation is swept over context-
  // switch costs from an optimistic chained dispatcher to a heavyweight
  // preemptive kernel.
  const long long kSwitchCosts[] = {40, 200, 400};
  long long polis_bytes = 0;
  double polis_synth_ms = 0;
  std::vector<std::shared_ptr<vm::CompiledReaction>> polis_tasks;
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    const SynthesisResult r = synthesize(inst.machine, options);
    polis_bytes += r.vm_size_bytes;
    polis_synth_ms += 1000.0 * r.synthesis_seconds;
    table.add_row({"POLIS " + inst.name, std::to_string(r.vm_size_bytes), "",
                   fixed(1000.0 * r.synthesis_seconds, 1)});
    polis_tasks.push_back(r.compiled);
  }
  table.add_separator();
  std::map<long long, long long> polis_cycles;
  for (long long cs : kSwitchCosts) {
    rtos::RtosConfig config;
    config.context_switch_cycles = cs;
    rtos::RtosSimulation polis_sim(*net, config);
    for (size_t i = 0; i < net->instances().size(); ++i)
      polis_sim.set_task(net->instances()[i].name,
                         rtos::vm_task(polis_tasks[i], vm::hc11_like(),
                                       net->instances()[i].machine));
    const rtos::SimStats stats = polis_sim.run(workload());
    polis_cycles[cs] = stats.busy_cycles + stats.overhead_cycles;
    table.add_row({"POLIS total (ctx switch " + std::to_string(cs) + ")",
                   std::to_string(polis_bytes),
                   std::to_string(polis_cycles[cs]), fixed(polis_synth_ms, 1)});
  }

  // --- SINGLE-FSM: synchronous composition, decision-graph back end. ------------
  const auto t0 = std::chrono::steady_clock::now();
  const auto composed = baseline::synchronous_compose(*net);
  const double compose_ms =
      1000.0 * std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  if (!composed) {
    std::cout << "composition failed (explosion limit)\n";
    return 1;
  }

  SynthesisOptions mono_options;
  mono_options.cost_model = &model;
  // The composed reactive function is large; single-pass sift on it is the
  // honest analogue of whole-design optimization.
  mono_options.scheme = sgraph::OrderingScheme::kNaive;
  const SynthesisResult mono = synthesize(composed->machine, mono_options);

  cfsm::Network mono_net("mono");
  mono_net.add_instance("whole", composed->machine);
  table.add_separator();
  std::map<long long, long long> mono_cycles;
  rtos::SimStats mono_stats;
  for (long long cs : kSwitchCosts) {
    rtos::RtosConfig config;
    config.context_switch_cycles = cs;
    rtos::RtosSimulation mono_sim(mono_net, config);
    mono_sim.set_task("whole", rtos::vm_task(mono.compiled, vm::hc11_like(),
                                             composed->machine));
    mono_stats = mono_sim.run(workload());
    mono_cycles[cs] = mono_stats.busy_cycles + mono_stats.overhead_cycles;
    table.add_row({"SINGLE-FSM, " + std::to_string(composed->reachable_states) +
                       " states (ctx switch " + std::to_string(cs) + ")",
                   std::to_string(mono.vm_size_bytes),
                   std::to_string(mono_cycles[cs]),
                   fixed(compose_ms + 1000.0 * mono.synthesis_seconds, 1)});
  }

  // --- SINGLE-FSM through the Boolean-network scheme (ESTEREL_OPT row). ---------
  {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*composed->machine, mgr);
    const auto t1 = std::chrono::steady_clock::now();
    const baseline::BoolnetProgram bn = baseline::build_boolnet(rf);
    const double bn_ms = 1000.0 * std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - t1)
                                      .count();
    const estim::Estimate e = baseline::estimate_boolnet(
        bn, model, estim::context_for(*composed->machine));
    // Every reaction costs between min and max; busy cycles estimated from
    // the reaction count of the mono run at the average cost.
    const long long est_busy =
        mono_stats.reactions_run * ((e.min_cycles + e.max_cycles) / 2);
    table.add_row({"SINGLE-FSM_OPT (boolnet)", std::to_string(e.size_bytes),
                   std::to_string(est_busy) + " (est)",
                   fixed(compose_ms + bn_ms, 1)});
  }

  table.print(std::cout);

  std::cout << "\nobserved: single FSM is "
            << fixed(static_cast<double>(mono.vm_size_bytes) /
                         static_cast<double>(polis_bytes),
                     1)
            << "x the POLIS code size. CPU-cycle ratio POLIS/single-FSM: ";
  for (long long cs : kSwitchCosts)
    std::cout << fixed(static_cast<double>(polis_cycles[cs]) /
                           static_cast<double>(mono_cycles[cs]),
                       2)
              << " (cs=" << cs << ") ";
  std::cout << "\n— as the communication/scheduling overhead grows, the "
               "single FSM's speed advantage appears while its code size "
               "stays an order of magnitude larger: the paper's size/speed "
               "tradeoff (§I-H, §II-A1).\n";
  return 0;
}
