// Machine-readable bench results: every bench harness that tracks the perf
// trajectory writes a BENCH_<NAME>.json next to its stdout tables, so a PR's
// effect on op/s, cache hit rates, peak node counts and wall time can be
// diffed mechanically run-over-run.
//
// Shape:
//   {
//     "bench": "bench_bdd",
//     "entries": [
//       { "name": "ite_heavy", "metrics": { "ops_per_sec": 123456.7, ... } },
//       ...
//     ],
//     "phases": { "bdd.sift": 12.5, ... }   // span wall-time totals, ms
//   }
//
// The optional "phases" section is the obs tracing layer's per-phase wall
// time breakdown: call `Report::capture_phases()` (typically once, at the
// end of main, with the recorder enabled for the whole run) and every named
// span's total duration lands in the report.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"

namespace polis::bench {

class Report {
 public:
  explicit Report(std::string bench_name) : bench_(std::move(bench_name)) {}

  class Entry {
   public:
    explicit Entry(std::string name) : name_(std::move(name)) {}

    Entry& metric(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      metrics_.emplace_back(key, std::string(buf));
      return *this;
    }
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    Entry& metric(const std::string& key, T value) {
      metrics_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Entry& text(const std::string& key, const std::string& value) {
      metrics_.emplace_back(key, "\"" + escaped(value) + "\"");
      return *this;
    }

   private:
    friend class Report;
    std::string name_;
    // Keys paired with already-JSON-rendered values, in insertion order.
    std::vector<std::pair<std::string, std::string>> metrics_;
  };

  /// Starts a new record; keep the reference only until the next `entry`.
  Entry& entry(std::string name) {
    entries_.emplace_back(std::move(name));
    return entries_.back();
  }

  /// Snapshots the recorder's per-span wall-time totals into the report's
  /// "phases" section (milliseconds by span name). No-op totals (recorder
  /// never enabled) leave the section out entirely.
  void capture_phases(
      const obs::TraceRecorder& recorder = obs::TraceRecorder::global()) {
    phases_ = recorder.span_totals_ms();
  }

  /// Folds the registry's histograms through the quantile sketch into one
  /// `series.<hist>` entry each (count/sum/p50/p90/p99) and records how many
  /// epochs each series timebase ticked, so bench_diff sees distributional
  /// shifts (a fatter latency tail) and coverage changes (fewer fixpoint
  /// layers), not just totals.
  void capture_series(
      const obs::MetricsRegistry& registry = obs::MetricsRegistry::global()) {
    const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
    for (const auto& [name, h] : snap.histograms) {
      if (h.count == 0) continue;
      const obs::QuantileSketch sk = obs::QuantileSketch::from_histogram(h);
      entry("series." + name)
          .metric("count", h.count)
          .metric("sum", h.sum)
          .metric("p50", sk.quantile(0.5))
          .metric("p90", sk.quantile(0.9))
          .metric("p99", sk.quantile(0.99));
    }
    const obs::SeriesRecorder& rec = obs::SeriesRecorder::global();
    entry("series.epochs")
        .metric("wall", rec.total_epochs(obs::Timebase::kWall))
        .metric("cycles", rec.total_epochs(obs::Timebase::kSim))
        .metric("layer", rec.total_epochs(obs::Timebase::kLayer));
  }

  /// Writes the report; complains on stderr (but does not throw) when the
  /// file cannot be opened, so benches still run in read-only sandboxes.
  void write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "report: cannot write " << path << "\n";
      return;
    }
    os << "{\n  \"bench\": \"" << escaped(bench_) << "\",\n  \"entries\": [";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      os << (i == 0 ? "" : ",") << "\n    { \"name\": \"" << escaped(e.name_)
         << "\", \"metrics\": { ";
      for (size_t m = 0; m < e.metrics_.size(); ++m) {
        os << (m == 0 ? "" : ", ") << "\"" << escaped(e.metrics_[m].first)
           << "\": " << e.metrics_[m].second;
      }
      os << " } }";
    }
    os << "\n  ]";
    if (!phases_.empty()) {
      os << ",\n  \"phases\": { ";
      bool first = true;
      for (const auto& [name, ms] : phases_) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", ms);
        os << (first ? "" : ", ") << "\"" << escaped(name) << "\": " << buf;
        first = false;
      }
      os << " }";
    }
    os << "\n}\n";
    std::cout << "wrote " << path << " (" << entries_.size() << " entries)\n";
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::string bench_;
  std::vector<Entry> entries_;
  std::map<std::string, double> phases_;
};

}  // namespace polis::bench
