// Synthesis-flow timing (the "time" column of Table III, and the paper's
// point that per-CFSM synthesis is fast): google-benchmark timings of each
// pipeline stage — characteristic function construction, constrained
// sifting, s-graph build, VM compilation, C generation, estimation — on the
// dashboard CFSMs.
#include <benchmark/benchmark.h>

#include "bdd/reorder.hpp"
#include "cfsm/reactive.hpp"
#include "codegen/c_codegen.hpp"
#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "sgraph/build.hpp"
#include "vm/compile.hpp"

namespace {

using namespace polis;

std::shared_ptr<const cfsm::Cfsm> module(size_t index) {
  static const auto modules = systems::dashboard_modules();
  return modules[index % modules.size()];
}

void BM_CharFunction(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*m, mgr);
    benchmark::DoNotOptimize(rf.chi().raw_index());
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_CharFunction)->DenseRange(0, 5);

void BM_ConstrainedSift(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*m, mgr);
    benchmark::DoNotOptimize(
        bdd::sift(mgr, rf.precedence_outputs_after_support()));
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_ConstrainedSift)->DenseRange(0, 5);

void BM_SgraphBuild(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*m, mgr);
  for (auto _ : state) {
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kCurrent);
    benchmark::DoNotOptimize(g.num_nodes());
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_SgraphBuild)->DenseRange(0, 5);

void BM_VmCompile(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  const vm::SymbolInfo syms = vm::SymbolInfo::from(*m);
  for (auto _ : state) {
    const vm::CompiledReaction cr = vm::compile(g, syms);
    benchmark::DoNotOptimize(cr.program.code.size());
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_VmCompile)->DenseRange(0, 5);

void BM_CGeneration(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  for (auto _ : state) {
    const std::string c = codegen::generate_c(g, *m);
    benchmark::DoNotOptimize(c.size());
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_CGeneration)->DenseRange(0, 5);

void BM_Estimation(benchmark::State& state) {
  static const estim::CostModel model = estim::calibrate(vm::hc11_like());
  const auto m = module(static_cast<size_t>(state.range(0)));
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  const estim::EstimateContext ctx = estim::context_for(*m);
  for (auto _ : state) {
    const estim::Estimate e = estim::estimate(g, model, ctx);
    benchmark::DoNotOptimize(e.size_bytes);
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_Estimation)->DenseRange(0, 5);

void BM_FullSynthesis(benchmark::State& state) {
  static const estim::CostModel model = estim::calibrate(vm::hc11_like());
  const auto m = module(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    SynthesisOptions options;
    options.cost_model = &model;
    const SynthesisResult r = synthesize(m, options);
    benchmark::DoNotOptimize(r.vm_size_bytes);
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_FullSynthesis)->DenseRange(0, 5);

}  // namespace

BENCHMARK_MAIN();
