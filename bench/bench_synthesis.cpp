// Synthesis-flow timing (the "time" column of Table III, and the paper's
// point that per-CFSM synthesis is fast): google-benchmark timings of each
// pipeline stage — characteristic function construction, constrained
// sifting, s-graph build, VM compilation, C generation, estimation — on the
// dashboard CFSMs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>

#include "bdd/reorder.hpp"
#include "cfsm/reactive.hpp"
#include "codegen/c_codegen.hpp"
#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "report.hpp"
#include "sgraph/build.hpp"
#include "util/thread_pool.hpp"
#include "vm/compile.hpp"

namespace {

using namespace polis;

std::shared_ptr<const cfsm::Cfsm> module(size_t index) {
  static const auto modules = systems::dashboard_modules();
  return modules[index % modules.size()];
}

void BM_CharFunction(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*m, mgr);
    benchmark::DoNotOptimize(rf.chi().raw_index());
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_CharFunction)->DenseRange(0, 5);

void BM_ConstrainedSift(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*m, mgr);
    benchmark::DoNotOptimize(
        bdd::sift(mgr, rf.precedence_outputs_after_support()));
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_ConstrainedSift)->DenseRange(0, 5);

void BM_SgraphBuild(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*m, mgr);
  for (auto _ : state) {
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kCurrent);
    benchmark::DoNotOptimize(g.num_nodes());
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_SgraphBuild)->DenseRange(0, 5);

void BM_VmCompile(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  const vm::SymbolInfo syms = vm::SymbolInfo::from(*m);
  for (auto _ : state) {
    const vm::CompiledReaction cr = vm::compile(g, syms);
    benchmark::DoNotOptimize(cr.program.code.size());
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_VmCompile)->DenseRange(0, 5);

void BM_CGeneration(benchmark::State& state) {
  const auto m = module(static_cast<size_t>(state.range(0)));
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  for (auto _ : state) {
    const std::string c = codegen::generate_c(g, *m);
    benchmark::DoNotOptimize(c.size());
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_CGeneration)->DenseRange(0, 5);

void BM_Estimation(benchmark::State& state) {
  static const estim::CostModel model = estim::calibrate(vm::hc11_like());
  const auto m = module(static_cast<size_t>(state.range(0)));
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  const estim::EstimateContext ctx = estim::context_for(*m);
  for (auto _ : state) {
    const estim::Estimate e = estim::estimate(g, model, ctx);
    benchmark::DoNotOptimize(e.size_bytes);
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_Estimation)->DenseRange(0, 5);

void BM_FullSynthesis(benchmark::State& state) {
  static const estim::CostModel model = estim::calibrate(vm::hc11_like());
  const auto m = module(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    SynthesisOptions options;
    options.cost_model = &model;
    const SynthesisResult r = synthesize(m, options);
    benchmark::DoNotOptimize(r.vm_size_bytes);
  }
  state.SetLabel(m->name());
}
BENCHMARK(BM_FullSynthesis)->DenseRange(0, 5);

bool same_program(const vm::Program& x, const vm::Program& y) {
  if (x.code.size() != y.code.size()) return false;
  for (size_t i = 0; i < x.code.size(); ++i) {
    const vm::Instr& p = x.code[i];
    const vm::Instr& q = y.code[i];
    if (p.op != q.op || p.a != q.a || p.b != q.b || p.c != q.c ||
        p.imm != q.imm || p.alu != q.alu || p.sym != q.sym)
      return false;
  }
  return true;
}

double best_of(int reps, const std::function<NetworkSynthesis()>& run) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const NetworkSynthesis out = run();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(out.per_instance.size());
    best = r == 0 ? secs : std::min(best, secs);
  }
  return best;
}

// Serial vs parallel network synthesis on the paper's systems; the parallel
// path is share-nothing per machine and must produce byte-identical output,
// so only wall time may differ. Written to BENCH_SYNTHESIS.json.
void write_synthesis_report() {
  bench::Report report("bench_synthesis");
  // Spans on for the report (off before the google-benchmark loops); totals
  // land in the report's "phases" section as the per-stage breakdown.
  obs::TraceRecorder::global().set_enabled(true);
  static const estim::CostModel model = estim::calibrate(vm::hc11_like());

  auto add = [&](const std::string& name,
                 const std::shared_ptr<cfsm::Network>& net) {
    SynthesisOptions serial;
    serial.cost_model = &model;
    serial.num_threads = 1;
    SynthesisOptions parallel = serial;
    // At least 4 workers even on small CI boxes, so the threaded path (and
    // not the serial fallback) is what gets timed and diffed.
    parallel.num_threads =
        static_cast<int>(std::max<size_t>(4, ThreadPool::default_threads()));

    const double serial_s =
        best_of(3, [&] { return synthesize_network(*net, serial); });
    const double parallel_s =
        best_of(3, [&] { return synthesize_network(*net, parallel); });

    // Cross-check determinism on the artifacts the flow ships.
    const NetworkSynthesis a = synthesize_network(*net, serial);
    const NetworkSynthesis b = synthesize_network(*net, parallel);
    bool identical = a.per_instance.size() == b.per_instance.size();
    for (const auto& [inst, ra] : a.per_instance) {
      const auto it = b.per_instance.find(inst);
      if (it == b.per_instance.end() ||
          ra.c_code != it->second.c_code ||
          ra.vm_size_bytes != it->second.vm_size_bytes ||
          !same_program(ra.compiled->program, it->second.compiled->program) ||
          ra.estimate.max_cycles != it->second.estimate.max_cycles) {
        identical = false;
      }
    }

    report.entry(name)
        .metric("instances", net->instances().size())
        .metric("serial_seconds", serial_s)
        .metric("parallel_seconds", parallel_s)
        .metric("speedup", parallel_s > 0 ? serial_s / parallel_s : 0.0)
        .metric("threads", parallel.num_threads)
        .metric("identical_output", identical ? 1 : 0);
    std::cout << name << ": serial " << serial_s << "s, parallel "
              << parallel_s << "s ("
              << (parallel_s > 0 ? serial_s / parallel_s : 0.0)
              << "x), outputs " << (identical ? "identical" : "DIVERGED")
              << "\n";
  };

  add("dash", systems::dash_network());
  add("shock", systems::shock_network());
  add("microwave", systems::microwave_network());
  report.capture_phases();
  obs::TraceRecorder::global().set_enabled(false);
  report.write("BENCH_SYNTHESIS.json");
}

}  // namespace

int main(int argc, char** argv) {
  write_synthesis_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
