// §V-B extension ablation: the copy-in data-flow optimization the paper
// announces as work in progress ("detect write-before-read cases that
// require such buffering, and reduce ROM and RAM, as well as CPU time").
// For each system CFSM: ROM bytes, RAM bytes (memory slots × int size) and
// max reaction cycles with full buffering vs hazard-only buffering.
#include <iostream>

#include "cfsm/reactive.hpp"
#include "core/systems.hpp"
#include "sgraph/build.hpp"
#include "sgraph/dataflow.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

int main() {
  using namespace polis;
  const vm::TargetProfile target = vm::hc11_like();

  std::cout << "Copy-in data-flow optimization (§V-B future work, "
               "implemented)\n";
  Table table({"CFSM", "buffered", "ROM full/opt", "RAM full/opt",
               "maxcyc full/opt"});

  long long rom_full = 0;
  long long rom_opt = 0;
  long long ram_full = 0;
  long long ram_opt = 0;

  auto modules = systems::dashboard_modules();
  for (const auto& m : systems::shock_modules()) modules.push_back(m);

  for (const auto& m : modules) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*m, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    const vm::SymbolInfo syms = vm::SymbolInfo::from(*m);

    const vm::CompiledReaction full = vm::compile(g, syms);
    vm::CompileOptions opt_options;
    opt_options.optimize_copy_in = true;
    const vm::CompiledReaction opt = vm::compile(g, syms, opt_options);

    const auto t_full = vm::measure_timing(full, target, *m, 1u << 20);
    const auto t_opt = vm::measure_timing(opt, target, *m, 1u << 20);

    const long long rf1 = full.program.size_bytes(target);
    const long long rf2 = opt.program.size_bytes(target);
    const long long ra1 =
        static_cast<long long>(full.program.slot_names.size()) * target.int_size;
    const long long ra2 =
        static_cast<long long>(opt.program.slot_names.size()) * target.int_size;
    rom_full += rf1;
    rom_opt += rf2;
    ram_full += ra1;
    ram_opt += ra2;

    table.add_row(
        {m->name(),
         std::to_string(opt.copy_in.size()) + "/" +
             std::to_string(full.copy_in.size()),
         std::to_string(rf1) + "/" + std::to_string(rf2),
         std::to_string(ra1) + "/" + std::to_string(ra2),
         std::to_string(t_full->max_cycles) + "/" +
             std::to_string(t_opt->max_cycles)});
  }
  table.add_separator();
  table.add_row({"TOTAL", "",
                 std::to_string(rom_full) + "/" + std::to_string(rom_opt),
                 std::to_string(ram_full) + "/" + std::to_string(ram_opt),
                 ""});
  table.print(std::cout);

  std::cout << "\nROM saved "
            << fixed(100.0 * (1.0 - static_cast<double>(rom_opt) /
                                        static_cast<double>(rom_full)),
                     1)
            << "%, RAM saved "
            << fixed(100.0 * (1.0 - static_cast<double>(ram_opt) /
                                        static_cast<double>(ram_full)),
                     1)
            << "% — behaviour verified unchanged by the test suite.\n";
  return 0;
}
