// Robustness study: the fault-injection harness on the dashboard network.
// Rows sweep the fault magnitude m (every probability in the plan scaled by
// m); columns report injected perturbations, §II-D buffer losses, the worst
// observed alarm latency against the estimator's PERT network bound, and
// the degradation-policy outcomes (deadline misses, watchdog/abort counts).
// The last line brackets the smallest magnitude that first violates the
// belt task's deadline — "how much fault does the synthesized system absorb
// before it stops meeting its constraints".
#include <algorithm>
#include <iostream>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/estimate.hpp"
#include "rtos/robust.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

std::vector<rtos::ExternalEvent> workload() {
  return rtos::merge_traces({
      rtos::periodic_trace({"wheel_raw", 600, 0, 0.0, 1}, 150'000),
      rtos::periodic_trace({"engine_raw", 900, 0, 0.0, 1}, 150'000),
      rtos::periodic_trace({"timer", 3000, 0, 0.0, 1}, 150'000),
      rtos::periodic_trace({"key_on", 15'000, 40, 0.0, 1}, 150'000),
  });
}

long long lost_total(const rtos::RobustnessReport& report) {
  long long n = 0;
  for (const auto& [net, c] : report.lost) n += c;
  return n;
}

}  // namespace

int main() {
  const auto net = systems::dash_network();

  // Synthesize every instance once (shared cost model); the VM backend
  // supplies measured per-reaction cycles, the estimator the WCET bound.
  const NetworkSynthesis ns = synthesize_network(*net);

  rtos::RtosConfig base;
  base.policy = rtos::RtosConfig::Policy::kStaticPriority;
  base.priority = {{"blt", 1}, {"deb", 5}, {"wcnt", 6}, {"spd", 7},
                   {"odo", 8}, {"ecnt", 6}, {"tach", 7}};
  rtos::DeadlineMonitor belt_deadline;
  belt_deadline.deadline_cycles = 20'000;
  base.deadline_monitors["blt"] = belt_deadline;
  base.watchdog.livelock_reactions = 100'000;

  // The full-magnitude plan; each row runs it scaled by m.
  rtos::FaultPlan plan;
  plan.seed = 2026;
  plan.drop_probability = 0.05;
  plan.delay_probability = 0.2;
  plan.max_delay = 2000;
  plan.duplicate_probability = 0.1;
  plan.spike_probability = 0.2;
  plan.spike_cycles = 400;
  plan.exec_jitter = 0.3;
  plan.stalls["blt"] = rtos::StallFault{0.2, 15'000};

  const std::map<std::string, long long> bounds =
      estim::network_latency_bounds(*net, ns.max_cycles,
                                    base.context_switch_cycles);

  const rtos::TaskBinder bind = [&](rtos::RtosSimulation& sim) {
    for (const cfsm::Instance& inst : net->instances())
      sim.set_task(inst.name,
                   rtos::vm_task(ns.per_instance.at(inst.name).compiled,
                                 vm::hc11_like(), inst.machine));
  };
  const std::vector<rtos::ExternalEvent> events = workload();

  std::cout << "Fault-magnitude sweep on the dashboard (robustness layer)\n";
  std::cout << "alarm PERT bound: " << bounds.at("alarm") << " cycles\n";
  Table table({"magnitude", "injected", "lost events", "alarm worst",
               "over bound", "deadline misses", "aborts"});

  for (const double m : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    rtos::RtosConfig config = base;
    config.faults = plan.scaled(m);
    rtos::FaultSweepOptions options;
    options.runs = 3;
    options.base_seed = 7;
    options.latency_bounds = bounds;
    const rtos::RobustnessReport report =
        rtos::sweep_faults(*net, config, bind, events, options);

    auto worst = report.fault_worst_latency.find("alarm");
    std::string over;
    for (const std::string& n : report.bound_violations_faulted)
      over += (over.empty() ? "" : " ") + n;
    table.add_row(
        {fixed(m, 2), std::to_string(report.faults_injected),
         std::to_string(lost_total(report)),
         worst == report.fault_worst_latency.end()
             ? "-"
             : std::to_string(worst->second),
         over.empty() ? "-" : over, std::to_string(report.deadline_misses),
         std::to_string(report.aborted_runs)});
  }
  table.print(std::cout);

  rtos::RtosConfig full = base;
  full.faults = plan;
  const double breaking =
      rtos::find_breaking_magnitude(*net, full, bind, events, 10);
  if (breaking < 0)
    std::cout << "\nno magnitude up to 1.0 violates the belt deadline\n";
  else
    std::cout << "\nsmallest deadline-violating fault magnitude: "
              << fixed(breaking, 1) << "\n";

  std::cout << "expected shape: losses and worst latency grow with the "
               "magnitude; the stall on the belt task pushes the alarm path "
               "over the estimator bound and into deadline misses at higher "
               "magnitudes.\n";
  return 0;
}
