// Table II (§V-A): effect of different TEST variable orderings on code
// size. Rows are the dashboard CFSMs plus the composed wheel chain (where
// ordering matters most); columns are:
//   * random order        — median over random total orders (the paper's
//                           "naive ordering" analogue: an order chosen with
//                           no insight);
//   * source order        — test/action discovery order;
//   * sift, out-after-in  — dynamic reordering, all outputs after all inputs;
//   * sift, out-after-own — the paper's default: each output after its own
//                           support (better sharing, smaller code);
//   * multiway reference  — the two-level multiway jump structure.
//
// The paper's expectation: the constrained-sift orders beat the naive one
// (and output-after-own-support beats output-after-all-inputs via sharing);
// timing stays approximately the same across decision-graph orderings since
// only the order of the tests changes.
#include <algorithm>
#include <iostream>

#include "baseline/compose.hpp"
#include "baseline/multiway.hpp"
#include "cfsm/reactive.hpp"
#include "core/systems.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

long long size_with_scheme(const cfsm::Cfsm& m, sgraph::OrderingScheme scheme,
                           long long* max_cycles = nullptr) {
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(rf, scheme);
  const vm::CompiledReaction cr = vm::compile(g, vm::SymbolInfo::from(m));
  if (max_cycles != nullptr) {
    const auto t = vm::measure_timing(cr, vm::hc11_like(), m, 1u << 20);
    *max_cycles = t ? t->max_cycles : -1;
  }
  return cr.program.size_bytes(vm::hc11_like());
}

long long median_random_order_size(const cfsm::Cfsm& m, int samples) {
  Rng rng(12345);
  std::vector<long long> sizes;
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  std::vector<int> vars;
  for (const cfsm::TestVariable& t : rf.tests()) vars.push_back(t.bdd_var);
  for (const cfsm::ActionVariable& a : rf.actions()) vars.push_back(a.bdd_var);
  for (int s = 0; s < samples; ++s) {
    std::shuffle(vars.begin(), vars.end(), rng.engine());
    const sgraph::Sgraph g = sgraph::build_sgraph_with_order(rf, vars);
    sizes.push_back(vm::compile(g, vm::SymbolInfo::from(m))
                        .program.size_bytes(vm::hc11_like()));
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes[sizes.size() / 2];
}

void add_row(Table& table, const std::string& name, const cfsm::Cfsm& m,
             long long* totals) {
  long long cyc_src = 0;
  long long cyc_sift = 0;
  const long long random_med = median_random_order_size(m, 9);
  const long long source = size_with_scheme(
      m, sgraph::OrderingScheme::kNaive, &cyc_src);
  const long long sift_in =
      size_with_scheme(m, sgraph::OrderingScheme::kSiftOutputsAfterInputs);
  const long long sift_own = size_with_scheme(
      m, sgraph::OrderingScheme::kSiftOutputsAfterSupport, &cyc_sift);

  long long multiway = -1;
  {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    const auto mw = baseline::compile_multiway(rf);
    if (mw) multiway = mw->reaction.program.size_bytes(vm::hc11_like());
  }

  totals[0] += random_med;
  totals[1] += source;
  totals[2] += sift_in;
  totals[3] += sift_own;
  if (multiway > 0) totals[4] += multiway;

  table.add_row({name, std::to_string(random_med), std::to_string(source),
                 std::to_string(sift_in), std::to_string(sift_own),
                 multiway > 0 ? std::to_string(multiway) : "n/a",
                 std::to_string(cyc_src), std::to_string(cyc_sift)});
}

}  // namespace

int main() {
  std::cout << "Table II — effect of TEST variable orderings on code size "
               "(bytes, hc11 target)\n";
  Table table({"CFSM", "random(med)", "source", "sift out>in",
               "sift out>own", "multiway", "maxcyc src", "maxcyc sift"});

  long long totals[5] = {0, 0, 0, 0, 0};
  for (const auto& m : systems::dashboard_modules())
    add_row(table, m->name(), *m, totals);

  // The composed wheel chain: larger reactive function, ordering matters.
  const auto composed = baseline::synchronous_compose(
      *systems::dash_core_network());
  if (composed) add_row(table, "dash_core (composed)", *composed->machine,
                        totals);

  table.add_separator();
  table.add_row({"TOTAL", std::to_string(totals[0]), std::to_string(totals[1]),
                 std::to_string(totals[2]), std::to_string(totals[3]),
                 std::to_string(totals[4]), "", ""});
  table.print(std::cout);

  std::cout << "\nexpected shape: random >= source >= sift variants; "
               "out-after-own-support <= out-after-all-inputs (sharing); "
               "timing approximately equal across decision-graph orders.\n";
  return 0;
}
