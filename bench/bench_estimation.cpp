// §III-C validation at scale: estimation accuracy and speed over a corpus
// of random CFSMs.
//
//   * accuracy  — distribution of size / max-cycle estimation error vs the
//                 VM measurement, and the bracket property
//                 min_est ≤ measured_min ≤ measured_max ≤ max_est (up to
//                 layout noise);
//   * speed     — the point of §III-C: estimation is a graph traversal,
//                 orders of magnitude cheaper than compile-and-measure.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>

#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "estim/calibrate.hpp"
#include "estim/estimate.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

int main() {
  using namespace polis;
  const estim::CostModel model = estim::calibrate(vm::hc11_like());

  const int kCorpus = 60;
  Rng rng(20240601);

  std::vector<double> size_errors;
  std::vector<double> time_errors;
  int bracket_ok = 0;
  double estimate_seconds = 0;
  double measure_seconds = 0;

  for (int i = 0; i < kCorpus; ++i) {
    cfsm::RandomCfsmOptions options;
    options.num_inputs = 2 + i % 3;
    options.num_rules = 3 + i % 4;
    const cfsm::Cfsm m = cfsm::random_cfsm(rng, options, "c" + std::to_string(i));
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    const vm::CompiledReaction cr = vm::compile(g, vm::SymbolInfo::from(m));

    const auto t0 = std::chrono::steady_clock::now();
    const estim::Estimate e = estim::estimate(g, model, estim::context_for(m));
    const auto t1 = std::chrono::steady_clock::now();
    const auto timing = vm::measure_timing(cr, vm::hc11_like(), m, 1u << 20);
    const auto t2 = std::chrono::steady_clock::now();
    estimate_seconds += std::chrono::duration<double>(t1 - t0).count();
    measure_seconds += std::chrono::duration<double>(t2 - t1).count();
    if (!timing) continue;

    const long long measured_size = cr.program.size_bytes(vm::hc11_like());
    size_errors.push_back(
        100.0 *
        std::abs(static_cast<double>(e.size_bytes - measured_size)) /
        static_cast<double>(measured_size));
    time_errors.push_back(
        100.0 *
        std::abs(static_cast<double>(e.max_cycles - timing->max_cycles)) /
        static_cast<double>(timing->max_cycles));
    const bool bracket = e.min_cycles <= timing->min_cycles + 4 &&
                         e.max_cycles >= timing->max_cycles - 4;
    if (bracket) ++bracket_ok;
  }

  auto stats_of = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const double mean =
        std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
    return std::tuple<double, double, double>(mean, v[v.size() / 2], v.back());
  };
  const auto [smean, smed, smax] = stats_of(size_errors);
  const auto [tmean, tmed, tmax] = stats_of(time_errors);

  std::cout << "Estimation accuracy over " << size_errors.size()
            << " random CFSMs (hc11 target)\n";
  Table table({"metric", "mean err%", "median err%", "max err%"});
  table.add_row({"code size", fixed(smean, 1), fixed(smed, 1), fixed(smax, 1)});
  table.add_row(
      {"max cycles", fixed(tmean, 1), fixed(tmed, 1), fixed(tmax, 1)});
  table.print(std::cout);

  std::cout << "bracket property (min_est <= measured <= max_est): "
            << bracket_ok << "/" << size_errors.size() << "\n";
  std::cout << "estimation time " << fixed(1e3 * estimate_seconds, 2)
            << " ms vs exhaustive measurement " << fixed(1e3 * measure_seconds, 2)
            << " ms ("
            << fixed(measure_seconds / std::max(estimate_seconds, 1e-9), 0)
            << "x) — estimation is a single graph traversal (§III-C).\n";
  return 0;
}
