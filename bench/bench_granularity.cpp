// §I-H ablation: the effect of CFSM granularity. "A growth of the
// synchronous islands (CFSMs) typically induces: an increase in code size,
// due to the more complex transition function; a reduction in execution
// time ... due to the reduction of communication and scheduling overhead."
//
// We merge the wheel chain at three granularities — every module separate,
// the front pair merged, the whole chain merged — and measure both code
// size and the total CPU cycles (busy + RTOS overhead) needed to process a
// common stimulus trace.
#include <algorithm>
#include <iostream>

#include "baseline/compose.hpp"
#include "core/synthesis.hpp"
#include "util/check.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

std::vector<rtos::ExternalEvent> workload() {
  // Tick-heavy: the timer triggers a three-reaction chain in the separate
  // configuration, which is where merging saves communication.
  Rng rng(5);
  return rtos::merge_traces({
      rtos::periodic_trace({"wheel_raw", 2000, 0, 0.1, 1}, 600'000, &rng),
      rtos::periodic_trace({"timer", 2500, 50, 0.0, 1}, 600'000),
  });
}

struct GranularityResult {
  long long bytes = 0;
  long long cycles = 0;
  int tasks = 0;
};

// Builds a network where `merged_prefix` of the chain is composed into one
// machine and the rest stay separate, then measures it. With
// `chain_tasks`, the separate tasks are chained (§IV-A) instead of merged.
GranularityResult run_configuration(int merged_prefix,
                                    const estim::CostModel& model,
                                    bool chain_tasks = false) {
  const auto full = systems::dash_core_network();
  const auto& instances = full->instances();

  cfsm::Network net("gran");
  if (merged_prefix >= 2) {
    cfsm::Network prefix("prefix");
    for (int i = 0; i < merged_prefix; ++i)
      prefix.add_instance(instances[static_cast<size_t>(i)].name,
                          instances[static_cast<size_t>(i)].machine,
                          instances[static_cast<size_t>(i)].bindings);
    const auto composed = baseline::synchronous_compose(prefix);
    POLIS_CHECK(composed.has_value());
    net.add_instance("merged", composed->machine);
  } else {
    net.add_instance(instances[0].name, instances[0].machine,
                     instances[0].bindings);
  }
  for (size_t i = std::max(merged_prefix, 1); i < instances.size(); ++i)
    net.add_instance(instances[i].name, instances[i].machine,
                     instances[i].bindings);

  rtos::RtosConfig rtos_config;
  rtos_config.context_switch_cycles = 300;  // a heavyweight kernel (§I-H)
  if (chain_tasks) {
    std::vector<std::string> chain;
    for (const cfsm::Instance& inst : net.instances())
      chain.push_back(inst.name);
    rtos_config.chains = {chain};
  }
  rtos::RtosSimulation sim(net, rtos_config);
  GranularityResult result;
  result.tasks = static_cast<int>(net.instances().size());
  for (const cfsm::Instance& inst : net.instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    options.scheme = inst.machine->rules().size() > 50
                         ? sgraph::OrderingScheme::kNaive
                         : sgraph::OrderingScheme::kSiftOutputsAfterSupport;
    const SynthesisResult r = synthesize(inst.machine, options);
    result.bytes += r.vm_size_bytes;
    sim.set_task(inst.name,
                 rtos::vm_task(r.compiled, vm::hc11_like(), inst.machine));
  }
  const rtos::SimStats stats = sim.run(workload());
  result.cycles = stats.busy_cycles + stats.overhead_cycles;
  return result;
}

}  // namespace

int main() {
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  std::cout << "Granularity ablation (§I-H): merging CFSMs of the wheel "
               "chain\n";
  Table table({"configuration", "tasks", "code bytes", "total CPU cycles"});

  const char* names[] = {"all separate (deb|wcnt|spd)",
                         "separate but RTOS-chained (§IV-A)",
                         "front pair merged (deb+wcnt | spd)",
                         "whole chain merged (deb+wcnt+spd)"};
  const int prefixes[] = {1, 1, 2, 3};
  const bool chained[] = {false, true, false, false};
  GranularityResult results[4];
  for (int i = 0; i < 4; ++i) {
    results[i] = run_configuration(prefixes[i], model, chained[i]);
    table.add_row({names[i], std::to_string(results[i].tasks),
                   std::to_string(results[i].bytes),
                   std::to_string(results[i].cycles)});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: code size grows with granularity while "
               "total CPU cycles shrink (less communication and scheduling "
               "overhead). Note the tradeoff is workload-dependent: when "
               "single-consumer events dominate, a merged machine pays its "
               "larger transition function on every event.\n";
  std::cout << "observed: size "
            << results[0].bytes << " -> " << results[3].bytes << " bytes, "
            << "cycles " << results[0].cycles << " -> " << results[3].cycles
            << "; chaining keeps the small code while cutting overhead to "
            << results[1].cycles << ".\n";
  return 0;
}
