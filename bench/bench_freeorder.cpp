// §VI future-work ablation, implemented: "the current code size
// minimization algorithm uses a single order for variables along all
// s-graph paths. While this is required in BDDs ... it is not clear whether
// it helps in the software synthesis case. We are thus planning to explore
// unordered variants of decision diagrams."
//
// This bench compares the constrained-sift ordered build against the
// free-order (FBDD-style) build — per-branch greedy variable choice,
// actions emitted as soon as they are forced — on the paper's systems, the
// composed wheel chain, and a random corpus.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "baseline/compose.hpp"
#include "bdd/reorder.hpp"
#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "core/systems.hpp"
#include "report.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// In-place swap-based sifting vs the rebuild-per-candidate reference, on the
// constrained-sift workload this bench exercises (outputs after support).
void report_sift_speed() {
  std::cout << "Sifting: in-place adjacent-level swaps vs rebuild reference\n";
  Table table({"CFSM", "vars", "fast size", "rebuild size", "swaps",
               "peak arena", "fast ms", "rebuild ms", "speedup"});
  bench::Report report("bench_freeorder");
  obs::TraceRecorder::global().set_enabled(true);

  double fast_total_ms = 0.0;
  double rebuild_total_ms = 0.0;
  constexpr int kReps = 3;  // best-of-3 to tame scheduler noise
  auto add = [&](const cfsm::Cfsm& m) {
    bdd::SiftTelemetry telemetry;
    size_t fast_size = 0;
    double fast_ms = 0.0;
    bdd::KernelStats stats;
    for (int rep = 0; rep < kReps; ++rep) {
      bdd::BddManager mgr;
      cfsm::ReactiveFunction rf(m, mgr);
      bdd::SiftOptions options;
      options.passes = 2;
      options.telemetry = &telemetry;
      mgr.reset_stats();
      const auto t0 = std::chrono::steady_clock::now();
      fast_size = bdd::sift(mgr, rf.precedence_outputs_after_support(), options);
      const double ms = ms_since(t0);
      fast_ms = rep == 0 ? ms : std::min(fast_ms, ms);
      stats = mgr.stats();
    }
    size_t rebuild_size = 0;
    double rebuild_ms = 0.0;
    int vars = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      bdd::BddManager mgr;
      cfsm::ReactiveFunction rf(m, mgr);
      vars = mgr.num_vars();
      bdd::SiftOptions options;
      options.passes = 2;
      const auto t0 = std::chrono::steady_clock::now();
      rebuild_size =
          bdd::sift_by_rebuild(mgr, rf.precedence_outputs_after_support(), options);
      const double ms = ms_since(t0);
      rebuild_ms = rep == 0 ? ms : std::min(rebuild_ms, ms);
    }
    fast_total_ms += fast_ms;
    rebuild_total_ms += rebuild_ms;
    report.entry(m.name())
        .metric("vars", vars)
        .metric("sifted_nodes", fast_size)
        .metric("swaps", telemetry.swaps)
        .metric("sift_ms", fast_ms)
        .metric("rebuild_ms", rebuild_ms)
        .metric("speedup", fast_ms > 0 ? rebuild_ms / fast_ms : 0.0)
        .metric("cache_hit_rate", stats.cache_hit_rate())
        .metric("peak_nodes", stats.peak_nodes)
        .metric("gc_runs", stats.gc_runs)
        .metric("nodes_reclaimed", stats.nodes_reclaimed);
    table.add_row({m.name(), std::to_string(vars), std::to_string(fast_size),
                   std::to_string(rebuild_size),
                   std::to_string(telemetry.swaps),
                   std::to_string(telemetry.peak_arena), fixed(fast_ms, 3),
                   fixed(rebuild_ms, 3),
                   fixed(fast_ms > 0 ? rebuild_ms / fast_ms : 0.0, 1) + "x"});
  };

  for (const auto& m : systems::dashboard_modules()) add(*m);
  for (const auto& m : systems::shock_modules()) add(*m);
  Rng rng(31);
  for (int i = 0; i < 4; ++i) {
    cfsm::RandomCfsmOptions options;
    options.num_inputs = 4 + i % 2;
    options.num_rules = 6 + i % 3;
    add(cfsm::random_cfsm(rng, options, "rand_sift" + std::to_string(i)));
  }
  for (int i = 0; i < 2; ++i) {
    cfsm::RandomCfsmOptions options;
    options.num_inputs = 6;
    options.num_rules = 10 + 2 * i;
    add(cfsm::random_cfsm(rng, options, "rand_big" + std::to_string(i)));
  }

  table.add_separator();
  table.add_row({"TOTAL", "", "", "", "", "", fixed(fast_total_ms, 3),
                 fixed(rebuild_total_ms, 3),
                 fixed(fast_total_ms > 0 ? rebuild_total_ms / fast_total_ms
                                         : 0.0,
                       1) +
                     "x"});
  report.entry("TOTAL")
      .metric("sift_ms", fast_total_ms)
      .metric("rebuild_ms", rebuild_total_ms)
      .metric("speedup",
              fast_total_ms > 0 ? rebuild_total_ms / fast_total_ms : 0.0);
  report.capture_phases();
  obs::TraceRecorder::global().set_enabled(false);
  report.write("BENCH_FREEORDER.json");
  table.print(std::cout);
  std::cout << "\n";
}

struct Row {
  long long ordered_bytes = 0;
  long long free_bytes = 0;
  long long ordered_maxcyc = 0;
  long long free_maxcyc = 0;
};

Row measure(const cfsm::Cfsm& m, bool with_timing) {
  Row row;
  {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    const vm::CompiledReaction cr = vm::compile(g, vm::SymbolInfo::from(m));
    row.ordered_bytes = cr.program.size_bytes(vm::hc11_like());
    if (with_timing) {
      const auto t = vm::measure_timing(cr, vm::hc11_like(), m, 1u << 18);
      row.ordered_maxcyc = t ? t->max_cycles : -1;
    }
  }
  {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    const sgraph::Sgraph g =
        sgraph::build_sgraph(rf, sgraph::OrderingScheme::kFreeOrder);
    const vm::CompiledReaction cr = vm::compile(g, vm::SymbolInfo::from(m));
    row.free_bytes = cr.program.size_bytes(vm::hc11_like());
    if (with_timing) {
      const auto t = vm::measure_timing(cr, vm::hc11_like(), m, 1u << 18);
      row.free_maxcyc = t ? t->max_cycles : -1;
    }
  }
  return row;
}

}  // namespace

int main() {
  report_sift_speed();

  std::cout << "Free-order (unordered) decision graphs vs constrained sift "
               "(§VI future work)\n";
  Table table({"CFSM", "sift bytes", "free bytes", "sift maxcyc",
               "free maxcyc"});

  int free_wins = 0;
  int ties = 0;
  int total = 0;
  long long sift_total = 0;
  long long free_total = 0;
  auto add = [&](const std::string& name, const cfsm::Cfsm& m,
                 bool with_timing) {
    const Row r = measure(m, with_timing);
    ++total;
    if (r.free_bytes < r.ordered_bytes) ++free_wins;
    if (r.free_bytes == r.ordered_bytes) ++ties;
    sift_total += r.ordered_bytes;
    free_total += r.free_bytes;
    table.add_row({name, std::to_string(r.ordered_bytes),
                   std::to_string(r.free_bytes),
                   with_timing ? std::to_string(r.ordered_maxcyc) : "-",
                   with_timing ? std::to_string(r.free_maxcyc) : "-"});
  };

  for (const auto& m : systems::dashboard_modules()) add(m->name(), *m, true);
  for (const auto& m : systems::shock_modules()) add(m->name(), *m, true);

  const auto composed =
      baseline::synchronous_compose(*systems::dash_core_network());
  if (composed)
    add("dash_core (composed)", *composed->machine, false);

  Rng rng(777);
  for (int i = 0; i < 10; ++i) {
    cfsm::RandomCfsmOptions options;
    options.num_inputs = 3 + i % 2;
    options.num_rules = 4 + i % 3;
    const cfsm::Cfsm m = cfsm::random_cfsm(rng, options, "rand" + std::to_string(i));
    add(m.name(), m, false);
  }

  table.add_separator();
  table.add_row({"TOTAL", std::to_string(sift_total),
                 std::to_string(free_total), "", ""});
  table.print(std::cout);
  std::cout << "\nfree-order smaller in " << free_wins << "/" << total
            << " machines, equal in " << ties
            << " — per-branch variable choice can beat any single global "
               "order, at the price of losing canonicity.\n";
  return 0;
}
