// Symbolic verification bench: reachability fixpoint telemetry per example
// network (reached states, iterations, peak live nodes, GC runs, transition
// relation size), the tentpole payoff — estimated code size of each machine
// with the *local* care set versus the *global* (reached-set) care filter
// fed back into s-graph synthesis — and the parallel-image scaling curve
// over the generated N-channel dashboard family (channels × threads).
#include <algorithm>
#include <chrono>
#include <iostream>

#include "report.hpp"
#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "util/table.hpp"
#include "verif/verif.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void run_network(const std::string& name, const cfsm::Network& net,
                 const estim::CostModel& model, Table& verify_table,
                 Table& care_table, bench::Report& report) {
  const auto t0 = std::chrono::steady_clock::now();
  const verif::VerifyResult v = verif::verify_network(net);
  const double verify_s = seconds_since(t0);

  int proved = 0, violated = 0, unknown = 0;
  for (const verif::CheckResult& r : v.assertions) {
    if (r.verdict == verif::Verdict::kProved) ++proved;
    else if (r.verdict == verif::Verdict::kViolated) ++violated;
    else ++unknown;
  }
  verify_table.add_row(
      {name, fixed(v.reach.reached_states, 0),
       std::to_string(v.reach.iterations),
       std::to_string(v.reach.peak_live_nodes),
       std::to_string(v.reach.gc_runs), std::to_string(v.transitions),
       std::to_string(proved) + "/" +
           std::to_string(v.assertions.size()),
       fixed(1000 * verify_s, 1)});

  auto& entry = report.entry(name);
  entry.metric("reached_states", v.reach.reached_states)
      .metric("iterations", v.reach.iterations)
      .metric("peak_live_nodes", v.reach.peak_live_nodes)
      .metric("reached_nodes", v.reach.reached_nodes)
      .metric("gc_runs", v.reach.gc_runs)
      .metric("exact", v.reach.exact ? 1 : 0)
      .metric("clusters", v.clusters)
      .metric("transitions", v.transitions)
      .metric("asserts_proved", proved)
      .metric("asserts_violated", violated)
      .metric("asserts_unknown", unknown)
      .metric("verify_ms", 1000 * verify_s);

  // Per-machine synthesis, local vs global care set.
  for (const cfsm::Instance& inst : net.instances()) {
    SynthesisOptions local;
    local.build.use_care_set = true;
    local.cost_model = &model;
    SynthesisOptions global = local;
    auto fit = v.care_filters.find(inst.machine->name());
    if (fit != v.care_filters.end()) global.build.care_filter = fit->second;

    const SynthesisResult with_local = synthesize(inst.machine, local);
    const SynthesisResult with_global = synthesize(inst.machine, global);
    care_table.add_row(
        {name + "." + inst.name,
         std::to_string(with_local.graph->num_reachable()),
         std::to_string(with_global.graph->num_reachable()),
         std::to_string(with_local.estimate.size_bytes),
         std::to_string(with_global.estimate.size_bytes),
         std::to_string(with_local.estimate.min_cycles) + ".." +
             std::to_string(with_local.estimate.max_cycles),
         std::to_string(with_global.estimate.min_cycles) + ".." +
             std::to_string(with_global.estimate.max_cycles)});

    auto& row = report.entry(name + "." + inst.name);
    row.metric("sgraph_local_care", with_local.graph->num_reachable())
        .metric("sgraph_global_care", with_global.graph->num_reachable())
        .metric("size_bytes_local_care", with_local.estimate.size_bytes)
        .metric("size_bytes_global_care", with_global.estimate.size_bytes)
        .metric("max_cycles_local_care", with_local.estimate.max_cycles)
        .metric("max_cycles_global_care", with_global.estimate.max_cycles);
  }
}

// Thread-count × channel-count sweep over the generated dashboard family
// (systems::generated_dash_network): the state space grows multiplicatively
// per channel while the cluster count grows linearly, so the family is the
// scaling axis for the sharded image computation. Each row re-verifies the
// same network serially (threads = 1, in-manager image) and sharded
// (threads > 1, per-worker managers); `speedup` is serial_ms / row_ms on the
// same channel count, `worker peak` the largest per-worker arena high-water
// mark. Care extraction is off — the sweep measures the fixpoint, not the
// downstream synthesis.
void run_scaling(bench::Report& report) {
  Table t({"channels", "threads", "reached", "iters", "shards", "verify ms",
           "speedup", "worker peak"});
  for (int channels = 1; channels <= 3; ++channels) {
    const auto net = systems::generated_dash_network(channels);
    double serial_ms = 0;
    for (const int threads : {1, 2, 4}) {
      verif::VerifyOptions opt;
      opt.extract_care = false;
      opt.reach.num_threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      const verif::VerifyResult v = verif::verify_network(*net, opt);
      const double ms = 1000 * seconds_since(t0);
      if (threads == 1) serial_ms = ms;
      const double speedup = ms > 0 ? serial_ms / ms : 0;
      std::size_t worker_peak = 0;
      for (const std::size_t p : v.reach.worker_peak_nodes)
        worker_peak = std::max(worker_peak, p);
      t.add_row({std::to_string(channels), std::to_string(threads),
                 fixed(v.reach.reached_states, 0),
                 std::to_string(v.reach.iterations),
                 std::to_string(v.reach.shards), fixed(ms, 1),
                 fixed(speedup, 2), std::to_string(worker_peak)});
      report.entry("dash_gen" + std::to_string(channels) + ".t" +
                   std::to_string(threads))
          .metric("channels", channels)
          .metric("threads", threads)
          .metric("reached_states", v.reach.reached_states)
          .metric("iterations", v.reach.iterations)
          .metric("shards", v.reach.shards)
          .metric("exact", v.reach.exact ? 1 : 0)
          .metric("verify_ms", ms)
          .metric("speedup_vs_serial", speedup)
          .metric("max_worker_peak_nodes", worker_peak)
          .metric("worker_gc_runs", v.reach.worker_gc_runs);
    }
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  bench::Report report("bench_verif");
  obs::TraceRecorder::global().set_enabled(true);
  // Layer epochs tick once per fixpoint BFS layer while the recorder is on,
  // so the report's series.* entries cover the verification runs below.
  obs::SeriesRecorder::global().set_enabled(true);

  std::cout << "Symbolic reachability & verification\n";
  Table verify_table({"network", "reached", "iters", "peak nodes", "gc",
                      "transitions", "asserts proved", "verify ms"});
  Table care_table({"task", "sgraph local", "sgraph global", "bytes local",
                    "bytes global", "cycles local", "cycles global"});

  run_network("meter", *systems::meter_network(), model, verify_table,
              care_table, report);
  run_network("dash_core", *systems::dash_core_network(), model, verify_table,
              care_table, report);
  run_network("microwave", *systems::microwave_network(), model, verify_table,
              care_table, report);

  verify_table.print(std::cout);
  std::cout << "\nCode size with local vs global (reached-set) care\n";
  care_table.print(std::cout);
  std::cout << "\nParallel image scaling (generated dash family)\n";
  run_scaling(report);
  report.capture_phases();
  report.capture_series();
  obs::SeriesRecorder::global().set_enabled(false);
  obs::TraceRecorder::global().set_enabled(false);
  report.write("BENCH_VERIF.json");
  std::cout << "\nwrote BENCH_VERIF.json\n";
  return 0;
}
