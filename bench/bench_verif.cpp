// Symbolic verification bench: reachability fixpoint telemetry per example
// network (reached states, iterations, peak live nodes, GC runs, transition
// relation size) and the tentpole payoff — estimated code size of each
// machine with the *local* care set versus the *global* (reached-set) care
// filter fed back into s-graph synthesis.
#include <chrono>
#include <iostream>

#include "report.hpp"
#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "util/table.hpp"
#include "verif/verif.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void run_network(const std::string& name, const cfsm::Network& net,
                 const estim::CostModel& model, Table& verify_table,
                 Table& care_table, bench::Report& report) {
  const auto t0 = std::chrono::steady_clock::now();
  const verif::VerifyResult v = verif::verify_network(net);
  const double verify_s = seconds_since(t0);

  int proved = 0, violated = 0, unknown = 0;
  for (const verif::CheckResult& r : v.assertions) {
    if (r.verdict == verif::Verdict::kProved) ++proved;
    else if (r.verdict == verif::Verdict::kViolated) ++violated;
    else ++unknown;
  }
  verify_table.add_row(
      {name, fixed(v.reach.reached_states, 0),
       std::to_string(v.reach.iterations),
       std::to_string(v.reach.peak_live_nodes),
       std::to_string(v.reach.gc_runs), std::to_string(v.transitions),
       std::to_string(proved) + "/" +
           std::to_string(v.assertions.size()),
       fixed(1000 * verify_s, 1)});

  auto& entry = report.entry(name);
  entry.metric("reached_states", v.reach.reached_states)
      .metric("iterations", v.reach.iterations)
      .metric("peak_live_nodes", v.reach.peak_live_nodes)
      .metric("reached_nodes", v.reach.reached_nodes)
      .metric("gc_runs", v.reach.gc_runs)
      .metric("exact", v.reach.exact ? 1 : 0)
      .metric("clusters", v.clusters)
      .metric("transitions", v.transitions)
      .metric("asserts_proved", proved)
      .metric("asserts_violated", violated)
      .metric("asserts_unknown", unknown)
      .metric("verify_ms", 1000 * verify_s);

  // Per-machine synthesis, local vs global care set.
  for (const cfsm::Instance& inst : net.instances()) {
    SynthesisOptions local;
    local.build.use_care_set = true;
    local.cost_model = &model;
    SynthesisOptions global = local;
    auto fit = v.care_filters.find(inst.machine->name());
    if (fit != v.care_filters.end()) global.build.care_filter = fit->second;

    const SynthesisResult with_local = synthesize(inst.machine, local);
    const SynthesisResult with_global = synthesize(inst.machine, global);
    care_table.add_row(
        {name + "." + inst.name,
         std::to_string(with_local.graph->num_reachable()),
         std::to_string(with_global.graph->num_reachable()),
         std::to_string(with_local.estimate.size_bytes),
         std::to_string(with_global.estimate.size_bytes),
         std::to_string(with_local.estimate.min_cycles) + ".." +
             std::to_string(with_local.estimate.max_cycles),
         std::to_string(with_global.estimate.min_cycles) + ".." +
             std::to_string(with_global.estimate.max_cycles)});

    auto& row = report.entry(name + "." + inst.name);
    row.metric("sgraph_local_care", with_local.graph->num_reachable())
        .metric("sgraph_global_care", with_global.graph->num_reachable())
        .metric("size_bytes_local_care", with_local.estimate.size_bytes)
        .metric("size_bytes_global_care", with_global.estimate.size_bytes)
        .metric("max_cycles_local_care", with_local.estimate.max_cycles)
        .metric("max_cycles_global_care", with_global.estimate.max_cycles);
  }
}

}  // namespace

int main() {
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  bench::Report report("bench_verif");
  obs::TraceRecorder::global().set_enabled(true);

  std::cout << "Symbolic reachability & verification\n";
  Table verify_table({"network", "reached", "iters", "peak nodes", "gc",
                      "transitions", "asserts proved", "verify ms"});
  Table care_table({"task", "sgraph local", "sgraph global", "bytes local",
                    "bytes global", "cycles local", "cycles global"});

  run_network("meter", *systems::meter_network(), model, verify_table,
              care_table, report);
  run_network("dash_core", *systems::dash_core_network(), model, verify_table,
              care_table, report);
  run_network("microwave", *systems::microwave_network(), model, verify_table,
              care_table, report);

  verify_table.print(std::cout);
  std::cout << "\nCode size with local vs global (reached-set) care\n";
  care_table.print(std::cout);
  report.capture_phases();
  obs::TraceRecorder::global().set_enabled(false);
  report.write("BENCH_VERIF.json");
  std::cout << "\nwrote BENCH_VERIF.json\n";
  return 0;
}
