// BDD substrate ablation (enables Table II): dynamic variable reordering by
// sifting (Rudell [31]) vs the initial order, on function families with a
// known ordering story, plus google-benchmark timings of the core BDD
// operations and of sifting itself.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bdd/bdd.hpp"
#include "bdd/reorder.hpp"
#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace polis;

// Σ x_i·y_i with x-block before y-block: exponential, interleaving: linear.
bdd::Bdd disjoint_ands(bdd::BddManager& mgr, int k) {
  bdd::Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));
  return f;
}

void report_sift_effect() {
  std::cout << "Sifting effect on BDD size (internal nodes)\n";
  Table table({"function", "vars", "initial", "sifted", "reduction", "swaps",
               "peak arena"});

  for (int k : {4, 6, 8, 10}) {
    bdd::BddManager mgr(2 * k);
    bdd::Bdd f = disjoint_ands(mgr, k);
    const size_t before = mgr.node_count(f);
    bdd::SiftTelemetry telemetry;
    bdd::SiftOptions options;
    options.passes = 2;
    options.telemetry = &telemetry;
    const size_t after = bdd::sift(mgr, options);
    table.add_row({"sum of x_i&y_i (k=" + std::to_string(k) + ")",
                   std::to_string(2 * k), std::to_string(before),
                   std::to_string(after),
                   fixed(100.0 * (1.0 - static_cast<double>(after) /
                                            static_cast<double>(before)),
                         1) + "%",
                   std::to_string(telemetry.swaps),
                   std::to_string(telemetry.peak_arena)});
  }

  // Random CFSM characteristic functions with the constrained sift used by
  // the synthesis flow.
  Rng rng(97);
  for (int i = 0; i < 4; ++i) {
    cfsm::RandomCfsmOptions options;
    options.num_inputs = 4;
    options.num_rules = 6;
    const cfsm::Cfsm m = cfsm::random_cfsm(rng, options, "chi" + std::to_string(i));
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    const size_t before = mgr.node_count(rf.chi());
    bdd::SiftTelemetry telemetry;
    bdd::SiftOptions sift_options;
    sift_options.telemetry = &telemetry;
    const size_t after =
        bdd::sift(mgr, rf.precedence_outputs_after_support(), sift_options);
    table.add_row({"CFSM χ #" + std::to_string(i),
                   std::to_string(mgr.num_vars()), std::to_string(before),
                   std::to_string(after),
                   fixed(100.0 * (1.0 - static_cast<double>(after) /
                                            static_cast<double>(before)),
                         1) + "%",
                   std::to_string(telemetry.swaps),
                   std::to_string(telemetry.peak_arena)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Fixed-size kernel workloads with wall time, op/s, cache hit rate and peak
// node counts from BddManager::stats(), written to BENCH_BDD.json so
// PR-over-PR kernel perf can be diffed mechanically.
void write_kernel_report() {
  bench::Report report("bench_bdd");
  // Span recording on only for the report workloads (off again before the
  // google-benchmark loops so tracing cannot skew their timings); the span
  // totals land in the report's "phases" section.
  obs::TraceRecorder::global().set_enabled(true);

  // ITE-heavy workload: random conjunction/disjunction churn over a rolling
  // window of functions — the access pattern the computed cache is built for.
  {
    const int n = 32;
    const size_t kIters = 200000;  // two ITEs per iteration
    bdd::BddManager mgr(n);
    // Workload generation is hoisted out of the timed region: three mt19937
    // draws per iteration cost as much as the kernel ops themselves, and
    // ops_per_sec is meant to track kernel throughput (it gates the CI
    // bench-smoke floor), not libstdc++ distribution overhead. Same seed,
    // same operand sequence as before — only the timer boundary moved.
    Rng rng(1);
    std::vector<std::uint8_t> picks;
    picks.reserve(3 * kIters);
    for (size_t it = 0; it < 3 * kIters; ++it) {
      picks.push_back(static_cast<std::uint8_t>(rng.uniform(0, n - 1)));
    }
    std::vector<bdd::Bdd> funcs;
    for (int i = 0; i < n; ++i) funcs.push_back(mgr.var(i));
    mgr.reset_stats();
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t it = 0; it < kIters; ++it) {
      const std::uint8_t* p = &picks[3 * it];
      bdd::Bdd f = funcs[p[0]] & funcs[p[1]];
      f = f | funcs[p[2]];
      benchmark::DoNotOptimize(f.raw_index());
      funcs.push_back(std::move(f));
      if (funcs.size() > 256) funcs.resize(static_cast<size_t>(n));
    }
    const double secs = seconds_since(t0);
    const bdd::KernelStats s = mgr.stats();
    report.entry("ite_heavy")
        .metric("vars", n)
        .metric("ite_ops", static_cast<std::uint64_t>(2 * kIters))
        .metric("wall_seconds", secs)
        .metric("ops_per_sec", secs > 0 ? 2.0 * static_cast<double>(kIters) / secs : 0.0)
        .metric("cache_hit_rate", s.cache_hit_rate())
        .metric("cache_lookups", s.cache_lookups)
        .metric("cache_evictions", s.cache_evictions)
        .metric("cache_capacity", s.cache_capacity)
        .metric("unique_hit_rate",
                s.unique_lookups > 0
                    ? static_cast<double>(s.unique_hits) /
                          static_cast<double>(s.unique_lookups)
                    : 0.0)
        .metric("peak_nodes", s.peak_nodes)
        .metric("nodes_recycled", s.nodes_recycled);
  }

  // Quantification over the disjoint-ands family (exercises the cube-based
  // exists path and its cache tag).
  {
    const int k = 8;
    bdd::BddManager mgr(2 * k);
    bdd::Bdd f = disjoint_ands(mgr, k);
    std::vector<int> vars{0, 2, 4, 6};
    mgr.reset_stats();
    const size_t kIters = 100000;
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t it = 0; it < kIters; ++it) {
      bdd::Bdd g = mgr.smooth(f, vars);
      benchmark::DoNotOptimize(g.raw_index());
    }
    const double secs = seconds_since(t0);
    const bdd::KernelStats s = mgr.stats();
    report.entry("smooth")
        .metric("vars", 2 * k)
        .metric("ops", kIters)
        .metric("wall_seconds", secs)
        .metric("ops_per_sec",
                secs > 0 ? static_cast<double>(kIters) / secs : 0.0)
        .metric("cache_hit_rate", s.cache_hit_rate())
        .metric("peak_nodes", s.peak_nodes);
  }

  // Sifting on the ordering-sensitive family: wall time of the in-place
  // swap path, plus what the kernel did underneath (GC runs, recycling).
  for (int k : {4, 6, 8}) {
    bdd::BddManager mgr(2 * k);
    bdd::Bdd f = disjoint_ands(mgr, k);
    const size_t before = mgr.node_count(f);
    mgr.reset_stats();
    bdd::SiftTelemetry telemetry;
    bdd::SiftOptions options;
    options.telemetry = &telemetry;
    const auto t0 = std::chrono::steady_clock::now();
    const size_t after = bdd::sift(mgr, options);
    const double secs = seconds_since(t0);
    const bdd::KernelStats s = mgr.stats();
    report.entry("sift_k" + std::to_string(k))
        .metric("vars", 2 * k)
        .metric("initial_nodes", before)
        .metric("sifted_nodes", after)
        .metric("swaps", telemetry.swaps)
        .metric("wall_seconds", secs)
        .metric("gc_runs", s.gc_runs)
        .metric("nodes_reclaimed", s.nodes_reclaimed)
        .metric("nodes_recycled", s.nodes_recycled)
        .metric("peak_nodes", s.peak_nodes);
  }

  report.capture_phases();
  obs::TraceRecorder::global().set_enabled(false);
  report.write("BENCH_BDD.json");
}

void BM_BddIte(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  bdd::BddManager mgr(n);
  Rng rng(1);
  std::vector<bdd::Bdd> funcs;
  for (int i = 0; i < n; ++i) funcs.push_back(mgr.var(i));
  for (auto _ : state) {
    bdd::Bdd f = funcs[static_cast<size_t>(rng.uniform(0, n - 1))] &
                 funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    f = f | funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    benchmark::DoNotOptimize(f.raw_index());
    funcs.push_back(std::move(f));
    if (funcs.size() > 256) funcs.resize(static_cast<size_t>(n));
  }
}
BENCHMARK(BM_BddIte)->Arg(8)->Arg(16)->Arg(32);

void BM_BddSmooth(benchmark::State& state) {
  const int k = 6;
  bdd::BddManager mgr(2 * k);
  bdd::Bdd f = disjoint_ands(mgr, k);
  std::vector<int> vars{0, 2, 4};
  for (auto _ : state) {
    bdd::Bdd g = mgr.smooth(f, vars);
    benchmark::DoNotOptimize(g.raw_index());
  }
}
BENCHMARK(BM_BddSmooth);

void BM_Sift(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    bdd::BddManager mgr(2 * k);
    bdd::Bdd f = disjoint_ands(mgr, k);
    state.ResumeTiming();
    benchmark::DoNotOptimize(bdd::sift(mgr));
  }
}
BENCHMARK(BM_Sift)->Arg(4)->Arg(6)->Arg(8);

// The pre-swap implementation (scratch-manager rebuild per candidate
// position), timed on the same workload so the speedup is visible in one
// run.
void BM_SiftRebuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    bdd::BddManager mgr(2 * k);
    bdd::Bdd f = disjoint_ands(mgr, k);
    state.ResumeTiming();
    benchmark::DoNotOptimize(bdd::sift_by_rebuild(mgr, {}));
  }
}
BENCHMARK(BM_SiftRebuild)->Arg(4)->Arg(6)->Arg(8);

void BM_CharacteristicFunction(benchmark::State& state) {
  Rng rng(11);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  for (auto _ : state) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    benchmark::DoNotOptimize(rf.chi().raw_index());
  }
}
BENCHMARK(BM_CharacteristicFunction);

}  // namespace

int main(int argc, char** argv) {
  report_sift_effect();
  write_kernel_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
