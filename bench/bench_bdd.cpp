// BDD substrate ablation (enables Table II): dynamic variable reordering by
// sifting (Rudell [31]) vs the initial order, on function families with a
// known ordering story, plus google-benchmark timings of the core BDD
// operations and of sifting itself.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bdd/bdd.hpp"
#include "bdd/reorder.hpp"
#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace polis;

// Σ x_i·y_i with x-block before y-block: exponential, interleaving: linear.
bdd::Bdd disjoint_ands(bdd::BddManager& mgr, int k) {
  bdd::Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));
  return f;
}

void report_sift_effect() {
  std::cout << "Sifting effect on BDD size (internal nodes)\n";
  Table table({"function", "vars", "initial", "sifted", "reduction", "swaps",
               "peak arena"});

  for (int k : {4, 6, 8, 10}) {
    bdd::BddManager mgr(2 * k);
    bdd::Bdd f = disjoint_ands(mgr, k);
    const size_t before = mgr.node_count(f);
    bdd::SiftTelemetry telemetry;
    bdd::SiftOptions options;
    options.passes = 2;
    options.telemetry = &telemetry;
    const size_t after = bdd::sift(mgr, options);
    table.add_row({"sum of x_i&y_i (k=" + std::to_string(k) + ")",
                   std::to_string(2 * k), std::to_string(before),
                   std::to_string(after),
                   fixed(100.0 * (1.0 - static_cast<double>(after) /
                                            static_cast<double>(before)),
                         1) + "%",
                   std::to_string(telemetry.swaps),
                   std::to_string(telemetry.peak_arena)});
  }

  // Random CFSM characteristic functions with the constrained sift used by
  // the synthesis flow.
  Rng rng(97);
  for (int i = 0; i < 4; ++i) {
    cfsm::RandomCfsmOptions options;
    options.num_inputs = 4;
    options.num_rules = 6;
    const cfsm::Cfsm m = cfsm::random_cfsm(rng, options, "chi" + std::to_string(i));
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    const size_t before = mgr.node_count(rf.chi());
    bdd::SiftTelemetry telemetry;
    bdd::SiftOptions sift_options;
    sift_options.telemetry = &telemetry;
    const size_t after =
        bdd::sift(mgr, rf.precedence_outputs_after_support(), sift_options);
    table.add_row({"CFSM χ #" + std::to_string(i),
                   std::to_string(mgr.num_vars()), std::to_string(before),
                   std::to_string(after),
                   fixed(100.0 * (1.0 - static_cast<double>(after) /
                                            static_cast<double>(before)),
                         1) + "%",
                   std::to_string(telemetry.swaps),
                   std::to_string(telemetry.peak_arena)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void BM_BddIte(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  bdd::BddManager mgr(n);
  Rng rng(1);
  std::vector<bdd::Bdd> funcs;
  for (int i = 0; i < n; ++i) funcs.push_back(mgr.var(i));
  for (auto _ : state) {
    bdd::Bdd f = funcs[static_cast<size_t>(rng.uniform(0, n - 1))] &
                 funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    f = f | funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    benchmark::DoNotOptimize(f.raw_index());
    funcs.push_back(std::move(f));
    if (funcs.size() > 256) funcs.resize(static_cast<size_t>(n));
  }
}
BENCHMARK(BM_BddIte)->Arg(8)->Arg(16)->Arg(32);

void BM_BddSmooth(benchmark::State& state) {
  const int k = 6;
  bdd::BddManager mgr(2 * k);
  bdd::Bdd f = disjoint_ands(mgr, k);
  std::vector<int> vars{0, 2, 4};
  for (auto _ : state) {
    bdd::Bdd g = mgr.smooth(f, vars);
    benchmark::DoNotOptimize(g.raw_index());
  }
}
BENCHMARK(BM_BddSmooth);

void BM_Sift(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    bdd::BddManager mgr(2 * k);
    bdd::Bdd f = disjoint_ands(mgr, k);
    state.ResumeTiming();
    benchmark::DoNotOptimize(bdd::sift(mgr));
  }
}
BENCHMARK(BM_Sift)->Arg(4)->Arg(6)->Arg(8);

// The pre-swap implementation (scratch-manager rebuild per candidate
// position), timed on the same workload so the speedup is visible in one
// run.
void BM_SiftRebuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    bdd::BddManager mgr(2 * k);
    bdd::Bdd f = disjoint_ands(mgr, k);
    state.ResumeTiming();
    benchmark::DoNotOptimize(bdd::sift_by_rebuild(mgr, {}));
  }
}
BENCHMARK(BM_SiftRebuild)->Arg(4)->Arg(6)->Arg(8);

void BM_CharacteristicFunction(benchmark::State& state) {
  Rng rng(11);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  for (auto _ : state) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    benchmark::DoNotOptimize(rf.chi().raw_index());
  }
}
BENCHMARK(BM_CharacteristicFunction);

}  // namespace

int main(int argc, char** argv) {
  report_sift_effect();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
