// §IV tradeoff study: scheduling policies and hw->sw event-input mechanisms
// of the generated RTOS, on the dashboard network with VM-backed tasks.
// Rows compare round-robin vs static priority (± preemption) and interrupt
// vs polling delivery: worst-case latency of the urgent output (the seat-
// belt alarm path), gauge-path latency, lost events, and CPU overhead —
// "in our approach one can easily experiment with tradeoffs" (§IV-E).
#include <algorithm>
#include <iostream>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

std::vector<rtos::ExternalEvent> workload() {
  // Phase-aligned periodic sources: bursts of simultaneous events create
  // the contention that separates the scheduling policies.
  return rtos::merge_traces({
      rtos::periodic_trace({"wheel_raw", 600, 0, 0.0, 1}, 300'000),
      rtos::periodic_trace({"engine_raw", 900, 0, 0.0, 1}, 300'000),
      rtos::periodic_trace({"timer", 3000, 0, 0.0, 1}, 300'000),
      rtos::periodic_trace({"key_on", 15'000, 40, 0.0, 1}, 300'000),
  });
}

long long worst(const rtos::SimStats& stats, const std::string& net) {
  auto it = stats.input_to_output_latency.find(net);
  if (it == stats.input_to_output_latency.end() || it->second.empty())
    return -1;
  return *std::max_element(it->second.begin(), it->second.end());
}

long long lost_total(const rtos::SimStats& stats) {
  long long n = 0;
  for (const auto& [net, c] : stats.lost_events) n += c;
  return n;
}

}  // namespace

int main() {
  const auto net = systems::dash_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());

  // Synthesize once; share the compiled reactions across configurations.
  std::map<std::string, std::shared_ptr<vm::CompiledReaction>> compiled;
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    compiled[inst.name] = synthesize(inst.machine, options).compiled;
  }

  struct Config {
    std::string name;
    rtos::RtosConfig rtos;
  };
  std::vector<Config> configs;
  {
    Config c;
    c.name = "round-robin / interrupt";
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "priority (belt high) / interrupt";
    c.rtos.policy = rtos::RtosConfig::Policy::kStaticPriority;
    c.rtos.priority = {{"blt", 1}, {"deb", 5}, {"wcnt", 6}, {"spd", 7},
                       {"odo", 8}, {"ecnt", 6}, {"tach", 7}};
    configs.push_back(c);
  }
  {
    Config c = configs.back();
    c.name = "priority + preemption / interrupt";
    c.rtos.preemptive = true;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "round-robin / polling@2000";
    c.rtos.delivery = rtos::RtosConfig::HwDelivery::kPolling;
    c.rtos.polling_period = 2000;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "round-robin / polling@8000";
    c.rtos.delivery = rtos::RtosConfig::HwDelivery::kPolling;
    c.rtos.polling_period = 8000;
    configs.push_back(c);
  }

  std::cout << "RTOS policy / event-delivery tradeoffs on the dashboard "
               "(§IV)\n";
  Table table({"configuration", "alarm worst", "speed_pwm worst",
               "lost events", "overhead cyc", "util%"});

  for (const Config& config : configs) {
    rtos::RtosSimulation sim(*net, config.rtos);
    for (const cfsm::Instance& inst : net->instances())
      sim.set_task(inst.name, rtos::vm_task(compiled.at(inst.name),
                                            vm::hc11_like(), inst.machine));
    const rtos::SimStats stats = sim.run(workload());
    table.add_row({config.name, std::to_string(worst(stats, "alarm")),
                   std::to_string(worst(stats, "speed_pwm")),
                   std::to_string(lost_total(stats)),
                   std::to_string(stats.overhead_cycles),
                   fixed(100 * stats.utilization(), 1)});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: priority+preemption minimises the urgent "
               "(alarm) latency; polling adds delivery latency growing with "
               "the polling period; interrupts cost per-event overhead.\n";
  return 0;
}
