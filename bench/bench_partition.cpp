// Hardware/software partitioning sweep — the co-design question POLIS was
// built to answer (§I-A: "most of the applications are implemented in a
// mixed configuration"). Each row moves one dashboard CFSM into hardware
// (instant reaction, zero CPU) and reports CPU utilization, total lost
// events and the worst latencies of the urgent (alarm) and throughput
// (speed gauge) paths, under a loaded workload where the software-only
// configuration saturates.
#include <algorithm>
#include <iostream>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

std::vector<rtos::ExternalEvent> workload() {
  // Heavy pulse traffic: the all-software configuration is near saturation.
  return rtos::merge_traces({
      rtos::periodic_trace({"wheel_raw", 260, 0, 0.0, 1}, 300'000),
      rtos::periodic_trace({"engine_raw", 340, 0, 0.0, 1}, 300'000),
      rtos::periodic_trace({"timer", 3000, 0, 0.0, 1}, 300'000),
      rtos::periodic_trace({"key_on", 15'000, 40, 0.0, 1}, 300'000),
  });
}

long long worst(const rtos::SimStats& stats, const std::string& net) {
  auto it = stats.input_to_output_latency.find(net);
  if (it == stats.input_to_output_latency.end() || it->second.empty())
    return -1;
  return *std::max_element(it->second.begin(), it->second.end());
}

}  // namespace

int main() {
  const auto net = systems::dash_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());

  std::map<std::string, std::shared_ptr<vm::CompiledReaction>> compiled;
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    compiled[inst.name] = synthesize(inst.machine, options).compiled;
  }

  std::cout << "Hardware/software partitioning sweep on the dashboard\n";
  Table table({"partition (hw side)", "CPU util%", "lost events",
               "alarm worst", "speed_pwm worst"});

  std::vector<std::set<std::string>> partitions = {
      {},                      // all software
      {"deb"},                 // debounce filter in hardware
      {"deb", "ecnt"},         // both high-rate front ends in hardware
      {"deb", "wcnt", "ecnt"}, // the whole counting layer in hardware
  };

  for (const std::set<std::string>& hw : partitions) {
    rtos::RtosConfig config;
    config.hardware_instances = hw;
    rtos::RtosSimulation sim(*net, config);
    for (const cfsm::Instance& inst : net->instances())
      sim.set_task(inst.name, rtos::vm_task(compiled.at(inst.name),
                                            vm::hc11_like(), inst.machine));
    const rtos::SimStats stats = sim.run(workload());

    std::string name = hw.empty() ? "none (all software)" : "";
    for (const std::string& h : hw) name += (name.empty() ? "" : "+") + h;
    long long lost = 0;
    for (const auto& [n, c] : stats.lost_events) {
      (void)n;
      lost += c;
    }
    table.add_row({name, fixed(100 * stats.utilization(), 1),
                   std::to_string(lost),
                   std::to_string(worst(stats, "alarm")),
                   std::to_string(worst(stats, "speed_pwm"))});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: moving the high-rate front-end CFSMs into "
               "hardware sheds CPU load, recovers lost events and shortens "
               "the software paths — the mixed implementation the paper's "
               "co-design flow targets.\n";
  return 0;
}
