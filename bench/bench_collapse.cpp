// §III-B3d ablation: optimization by collapsing TEST nodes. The paper's
// finding is negative — "in a series of experiments ... we never observed
// an improvement in the final running time or size of the generated code.
// As a result, we do not currently use TEST node collapsing." This bench
// reproduces the experiment over the dashboard CFSMs and a corpus of random
// machines and reports whether collapsing ever wins under the VM target.
#include <iostream>

#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "core/systems.hpp"
#include "sgraph/build.hpp"
#include "sgraph/optimize.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

using namespace polis;

struct Outcome {
  long long size_before, size_after;
  long long cyc_before, cyc_after;
};

Outcome measure(const cfsm::Cfsm& m) {
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  const sgraph::Sgraph c = sgraph::collapse_tests(g);

  const vm::CompiledReaction before = vm::compile(g, vm::SymbolInfo::from(m));
  const vm::CompiledReaction after = vm::compile(c, vm::SymbolInfo::from(m));
  Outcome o{};
  o.size_before = before.program.size_bytes(vm::hc11_like());
  o.size_after = after.program.size_bytes(vm::hc11_like());
  const auto tb = vm::measure_timing(before, vm::hc11_like(), m, 1u << 18);
  const auto ta = vm::measure_timing(after, vm::hc11_like(), m, 1u << 18);
  o.cyc_before = tb ? tb->max_cycles : -1;
  o.cyc_after = ta ? ta->max_cycles : -1;
  return o;
}

}  // namespace

int main() {
  std::cout << "TEST-node collapsing ablation (§III-B3d)\n";
  Table table({"CFSM", "size before", "size after", "maxcyc before",
               "maxcyc after", "size win?"});

  int wins = 0;
  int total = 0;
  auto add = [&](const std::string& name, const cfsm::Cfsm& m) {
    const Outcome o = measure(m);
    ++total;
    const bool win = o.size_after < o.size_before;
    if (win) ++wins;
    table.add_row({name, std::to_string(o.size_before),
                   std::to_string(o.size_after),
                   std::to_string(o.cyc_before), std::to_string(o.cyc_after),
                   win ? "yes" : "no"});
  };

  for (const auto& m : systems::dashboard_modules()) add(m->name(), *m);
  for (const auto& m : systems::shock_modules()) add(m->name(), *m);

  Rng rng(31415);
  for (int i = 0; i < 8; ++i) {
    const cfsm::Cfsm m = cfsm::random_cfsm(rng, {}, "rand" + std::to_string(i));
    add(m.name(), m);
  }

  table.print(std::cout);
  std::cout << "\ncollapsing reduced code size in " << wins << "/" << total
            << " machines — the paper reports it never produced an "
               "improvement and is therefore not used (§III-B3d).\n";
  return 0;
}
