// Table I (§V-A): results of the cost/performance estimation procedure on
// the dashboard CFSMs — estimated vs measured code size (bytes) and maximum
// clock cycles per transition, with the estimation error.
//
// The paper measured with the INTROL compiler + a 68HC11 cycle calculator;
// here "measured" is the cycle-counted VM binary (see DESIGN.md). Absolute
// numbers differ from the paper's testbed; the reproducible quantity is the
// estimation accuracy (the paper's errors are within a few percent).
#include <cstdio>
#include <iostream>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

namespace {

void run_for_target(const polis::vm::TargetProfile& target) {
  using namespace polis;
  const estim::CostModel model = estim::calibrate(target);

  std::cout << "\nTable I — cost/performance estimation vs measurement ("
            << target.name << " target)\n";
  Table table({"CFSM", "est size", "meas size", "err%", "est max cyc",
               "meas max cyc", "err%"});

  double worst_size_err = 0;
  double worst_time_err = 0;
  for (const auto& m : systems::dashboard_modules()) {
    SynthesisOptions options;
    options.target = target;
    options.cost_model = &model;
    const SynthesisResult r = synthesize(m, options);
    const auto timing = vm::measure_timing(*r.compiled, target, *m);

    const double size_err =
        100.0 * (static_cast<double>(r.estimate.size_bytes) -
                 static_cast<double>(r.vm_size_bytes)) /
        static_cast<double>(r.vm_size_bytes);
    const double time_err =
        100.0 * (static_cast<double>(r.estimate.max_cycles) -
                 static_cast<double>(timing->max_cycles)) /
        static_cast<double>(timing->max_cycles);
    worst_size_err = std::max(worst_size_err, std::abs(size_err));
    worst_time_err = std::max(worst_time_err, std::abs(time_err));

    table.add_row({m->name(), std::to_string(r.estimate.size_bytes),
                   std::to_string(r.vm_size_bytes), fixed(size_err, 1),
                   std::to_string(r.estimate.max_cycles),
                   std::to_string(timing->max_cycles), fixed(time_err, 1)});
  }
  table.print(std::cout);
  std::cout << "worst estimation error: size " << fixed(worst_size_err, 1)
            << "%, max cycles " << fixed(worst_time_err, 1) << "%\n";
}

}  // namespace

int main() {
  run_for_target(polis::vm::hc11_like());
  run_for_target(polis::vm::risc32_like());
  return 0;
}
