// §V-B: the shock absorber controller redesign. Reproduces the paper's
// reported quantities: synthesized ROM and RAM including the generated RTOS
// (the paper: 13,622 bytes ROM / 1,553 bytes RAM vs the 32K/8K hand design)
// and the I/O latency requirement check (the paper: a 12 µs spec met by
// both implementations). Our absolute numbers live on the VM target; the
// reproducible shape is "synthesized build is a small fraction of the
// hand-design budget and meets the latency spec with margin".
#include <algorithm>
#include <iostream>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/codegen.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "util/table.hpp"
#include "vm/machine.hpp"

int main() {
  using namespace polis;

  const auto net = systems::shock_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  const vm::TargetProfile target = vm::hc11_like();
  const long long kControlPeriod = 4000;
  const long long kLatencyBudget = 6000;  // cycles: the 12 µs-spec analogue

  std::cout << "Shock absorber controller (§V-B) — synthesized footprint and "
               "latency\n";

  rtos::RtosConfig config;
  config.policy = rtos::RtosConfig::Policy::kRoundRobin;  // as in the paper
  rtos::RtosSimulation sim(*net, config);

  Table table({"component", "ROM bytes", "RAM bytes"});
  long long rom = 0;
  long long ram = 0;
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    const SynthesisResult r = synthesize(inst.machine, options);
    const long long task_ram =
        static_cast<long long>(r.compiled->program.slot_names.size()) *
        target.int_size;
    rom += r.vm_size_bytes;
    ram += task_ram;
    table.add_row({inst.name, std::to_string(r.vm_size_bytes),
                   std::to_string(task_ram)});
    sim.set_task(inst.name, rtos::vm_task(r.compiled, target, inst.machine));
  }

  // Generated RTOS footprint: the scheduler core plus per-task flag arrays
  // (presence byte + value word per net per task, §IV-B).
  const long long rtos_ram = static_cast<long long>(
      net->instances().size() * net->nets().size() * (1 + target.int_size));
  const long long rtos_rom =
      static_cast<long long>(rtos::generate_rtos_c(*net, config).size() / 8);
  rom += rtos_rom;
  ram += rtos_ram;
  table.add_separator();
  table.add_row({"generated RTOS", std::to_string(rtos_rom),
                 std::to_string(rtos_ram)});
  table.add_row({"TOTAL", std::to_string(rom), std::to_string(ram)});
  table.print(std::cout);

  const long long hand_rom = 32 * 1024;
  const long long hand_ram = 8 * 1024;
  std::cout << "hand design budget: " << hand_rom << " ROM / " << hand_ram
            << " RAM -> synthesized uses "
            << fixed(100.0 * static_cast<double>(rom) / hand_rom, 1)
            << "% ROM, "
            << fixed(100.0 * static_cast<double>(ram) / hand_ram, 1)
            << "% RAM\n\n";

  // --- Latency check ------------------------------------------------------------
  Rng rng(99);
  const long long horizon = 1'000'000;
  auto events = rtos::merge_traces({
      rtos::periodic_trace({"ctrl_tick", kControlPeriod, 0, 0.0, 1}, horizon),
      rtos::periodic_trace({"accel_in", 1300, 250, 0.15, 16}, horizon, &rng),
      {{{250'000, "mode_btn", 0}, {700'000, "mode_btn", 0}}},
  });
  const rtos::SimStats stats = sim.run(events);

  Table lat_table({"output", "samples", "avg latency", "worst latency",
                   "budget", "verdict"});
  for (const auto& [out, lat] : stats.input_to_output_latency) {
    long long sum = 0;
    for (long long v : lat) sum += v;
    const long long worst = *std::max_element(lat.begin(), lat.end());
    lat_table.add_row(
        {out, std::to_string(lat.size()),
         fixed(static_cast<double>(sum) / static_cast<double>(lat.size()), 0),
         std::to_string(worst), std::to_string(kLatencyBudget),
         worst <= kLatencyBudget ? "MET" : "MISSED"});
  }
  lat_table.print(std::cout);
  std::cout << "CPU utilization " << fixed(100 * stats.utilization(), 1)
            << "%, " << stats.reactions_run << " reactions\n";
  return 0;
}
