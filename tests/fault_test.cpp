// The robustness layer: seeded fault injection, degradation policies
// (overflow / deadline / watchdog), the fault-space sweep, and the latency
// cross-check against the estimator's PERT bound.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "core/synthesis.hpp"
#include "estim/estimate.hpp"
#include "rtos/robust.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "rtos/vcd.hpp"
#include "sched/sched.hpp"

namespace polis::rtos {
namespace {

// Relay: forwards input event `i` to output `o` (pure).
std::shared_ptr<cfsm::Cfsm> relay(const std::string& name) {
  return std::make_shared<cfsm::Cfsm>(
      name, std::vector<cfsm::Signal>{{"i", 1}},
      std::vector<cfsm::Signal>{{"o", 1}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{cfsm::presence("i"), {cfsm::Emit{"o", nullptr}}, {}}});
}

// Valued relay: forwards value(i) to o, so overwrite-vs-dropnew is visible.
std::shared_ptr<cfsm::Cfsm> valued_relay(const std::string& name) {
  return std::make_shared<cfsm::Cfsm>(
      name, std::vector<cfsm::Signal>{{"i", 8}},
      std::vector<cfsm::Signal>{{"o", 8}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{cfsm::Rule{
          cfsm::presence("i"), {cfsm::Emit{"o", cfsm::value_of("i")}}, {}}});
}

// Counter: emits its state value and increments it, so a state reset by
// kFlushRestart is observable in the output stream.
std::shared_ptr<cfsm::Cfsm> counter(const std::string& name) {
  return std::make_shared<cfsm::Cfsm>(
      name, std::vector<cfsm::Signal>{{"i", 1}},
      std::vector<cfsm::Signal>{{"o", 8}},
      std::vector<cfsm::StateVar>{{"c", 8, 0}},
      std::vector<cfsm::Rule>{cfsm::Rule{
          cfsm::presence("i"),
          {cfsm::Emit{"o", expr::var("c")}},
          {cfsm::Assign{"c", expr::add(expr::var("c"), expr::constant(1))}}}});
}

std::string serialize(const std::vector<LogEvent>& log) {
  std::ostringstream os;
  for (const LogEvent& e : log)
    os << e.time << ' ' << static_cast<int>(e.kind) << ' ' << e.subject << ' '
       << e.value << '\n';
  return os.str();
}

// --- Fault injection ---------------------------------------------------------

TEST(Faults, EmptyPlanIsPaperExact) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.collect_log = true;
  EXPECT_TRUE(config.faults.empty());

  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run({{0, "in", 0}, {5000, "in", 0}});
  EXPECT_EQ(stats.injected.total(), 0);
  EXPECT_EQ(stats.outputs.size(), 2u);
  EXPECT_FALSE(stats.aborted);
  for (const LogEvent& e : stats.log)
    EXPECT_NE(e.kind, LogEvent::Kind::kFault);
}

TEST(Faults, SameSeedReplaysByteIdentically) {
  cfsm::Network net("n");
  net.add_instance("r", valued_relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.collect_log = true;
  config.faults.seed = 42;
  config.faults.drop_probability = 0.2;
  config.faults.delay_probability = 0.3;
  config.faults.max_delay = 400;
  config.faults.duplicate_probability = 0.2;
  config.faults.duplicate_gap = 700;
  config.faults.spike_probability = 0.3;
  config.faults.spike_cycles = 60;
  config.faults.exec_jitter = 0.25;
  config.faults.stalls["r"] = StallFault{0.5, 300};

  const auto events = burst_trace("in", 2000, 3, 50, 40'000, 8, nullptr);
  auto one = [&]() {
    RtosSimulation sim(net, config);
    sim.set_reference_task("r", 100);
    return sim.run(events);
  };
  const SimStats a = one();
  const SimStats b = one();
  EXPECT_GT(a.injected.total(), 0);
  EXPECT_EQ(serialize(a.log), serialize(b.log));
  EXPECT_EQ(a.injected.total(), b.injected.total());
  EXPECT_EQ(a.end_time, b.end_time);

  // A different seed perturbs differently.
  config.faults.seed = 43;
  const SimStats c = one();
  EXPECT_NE(serialize(a.log), serialize(c.log));
}

TEST(Faults, DropsSuppressDeliveries) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.faults.drop_probability = 1.0;
  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run({{0, "in", 0}, {5000, "in", 0}});
  EXPECT_EQ(stats.outputs.size(), 0u);
  EXPECT_EQ(stats.injected.drops, 2);
}

TEST(Faults, DuplicatesAddDeliveries) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.faults.duplicate_probability = 1.0;
  config.faults.duplicate_gap = 5000;  // wide enough to avoid overwrite
  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run({{0, "in", 0}, {20'000, "in", 0}});
  EXPECT_EQ(stats.outputs.size(), 4u);
  EXPECT_EQ(stats.injected.duplicates, 2);
}

TEST(Faults, DelaysAndSpikesPostponeDelivery) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  auto latency = [&](const FaultPlan& plan) {
    RtosConfig config;
    config.faults = plan;
    RtosSimulation sim(net, config);
    sim.set_reference_task("r", 100);
    return sim.run({{0, "in", 0}}).input_to_output_latency.at("out")[0];
  };
  const long long nominal = latency(FaultPlan{});

  FaultPlan delayed;
  delayed.delay_probability = 1.0;
  delayed.max_delay = 100;
  EXPECT_GT(latency(delayed), nominal);

  FaultPlan spiked;
  spiked.spike_probability = 1.0;
  spiked.spike_cycles = 500;
  EXPECT_GE(latency(spiked), nominal + 500);
}

TEST(Faults, JitterAndStallsBurnCycles) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  const std::vector<ExternalEvent> events = {
      {0, "in", 0}, {10'000, "in", 0}, {20'000, "in", 0}};
  auto run_with = [&](const FaultPlan& plan) {
    RtosConfig config;
    config.faults = plan;
    RtosSimulation sim(net, config);
    sim.set_reference_task("r", 1000);
    return sim.run(events);
  };
  const SimStats nominal = run_with(FaultPlan{});

  FaultPlan jittery;
  jittery.seed = 5;
  jittery.exec_jitter = 0.5;
  const SimStats jittered = run_with(jittery);
  EXPECT_GT(jittered.busy_cycles, nominal.busy_cycles);
  EXPECT_GT(jittered.injected.jittered, 0);

  FaultPlan stalling;
  stalling.stalls["r"] = StallFault{1.0, 2000};
  const SimStats stalled = run_with(stalling);
  EXPECT_EQ(stalled.injected.stalls, 3);
  EXPECT_GE(stalled.overhead_cycles, nominal.overhead_cycles + 3 * 2000);
  EXPECT_GE(stalled.input_to_output_latency.at("out")[0],
            nominal.input_to_output_latency.at("out")[0] + 2000);
}

TEST(Faults, FaultPulsesAppearInVcd) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.collect_log = true;
  config.faults.drop_probability = 1.0;
  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run({{10, "in", 0}});
  std::ostringstream os;
  write_vcd(net, stats, os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$scope module robustness $end"), std::string::npos);
  EXPECT_NE(vcd.find(" fault $end"), std::string::npos);
  EXPECT_NE(vcd.find(" deadline_miss $end"), std::string::npos);
}

// --- Overflow policies -------------------------------------------------------

// Two stimuli land in the same 1-place buffer while a long reaction of a
// higher-priority task holds the CPU; the surviving value tells the policy.
SimStats contended_run(OverflowPolicy policy) {
  cfsm::Network net("n");
  net.add_instance("busy", relay("rb"), {{"i", "trigger"}, {"o", "sink"}});
  net.add_instance("u", valued_relay("rv"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.policy = RtosConfig::Policy::kStaticPriority;
  config.priority = {{"busy", 1}, {"u", 2}};
  config.overflow_by_net["in"] = policy;
  RtosSimulation sim(net, config);
  sim.set_reference_task("busy", 10'000);
  sim.set_reference_task("u", 100);
  return sim.run({{0, "trigger", 0}, {100, "in", 1}, {200, "in", 2}});
}

TEST(Overflow, OverwriteKeepsNewest) {
  const SimStats stats = contended_run(OverflowPolicy::kOverwrite);
  EXPECT_EQ(stats.lost_events.at("in"), 1);
  ASSERT_EQ(stats.outputs.size(), 2u);  // sink + one out
  EXPECT_EQ(stats.outputs.back().net, "out");
  EXPECT_EQ(stats.outputs.back().value, 2);  // newest won
  EXPECT_FALSE(stats.aborted);
}

TEST(Overflow, DropNewKeepsOldest) {
  const SimStats stats = contended_run(OverflowPolicy::kDropNew);
  EXPECT_EQ(stats.lost_events.at("in"), 1);
  ASSERT_EQ(stats.outputs.size(), 2u);
  EXPECT_EQ(stats.outputs.back().value, 1);  // oldest survived
  EXPECT_FALSE(stats.aborted);
}

TEST(Overflow, AbortTerminatesWithDiagnostic) {
  const SimStats stats = contended_run(OverflowPolicy::kAbortWithDiagnostic);
  EXPECT_TRUE(stats.aborted);
  EXPECT_FALSE(stats.watchdog_fired);
  EXPECT_NE(stats.diagnostic.find("buffer overflow"), std::string::npos);
  EXPECT_NE(stats.diagnostic.find("in"), std::string::npos);
}

// --- Deadline monitors -------------------------------------------------------

TEST(Deadlines, CountRecordsMissesWithoutIntervening) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  DeadlineMonitor monitor;
  monitor.deadline_cycles = 500;  // reaction alone takes 1000
  config.deadline_monitors["r"] = monitor;
  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 1000);
  const SimStats stats = sim.run({{0, "in", 0}, {10'000, "in", 0}});
  EXPECT_EQ(stats.deadline_misses.at("r"), 2);
  EXPECT_EQ(stats.outputs.size(), 2u);  // kCount never drops work
  EXPECT_FALSE(stats.aborted);
}

TEST(Deadlines, FlushRestartResetsTaskState) {
  cfsm::Network net("n");
  net.add_instance("c", counter("cnt"), {{"i", "in"}, {"o", "out"}});
  const std::vector<ExternalEvent> events = {
      {0, "in", 0}, {10'000, "in", 0}, {20'000, "in", 0}};
  auto values_with = [&](bool monitored) {
    RtosConfig config;
    if (monitored) {
      DeadlineMonitor monitor;
      monitor.deadline_cycles = 1;  // every reaction misses
      monitor.action = DeadlineMonitor::MissAction::kFlushRestart;
      config.deadline_monitors["c"] = monitor;
    }
    RtosSimulation sim(net, config);
    sim.set_reference_task("c", 100);
    std::vector<std::int64_t> values;
    for (const ObservedEmission& e : sim.run(events).outputs)
      values.push_back(e.value);
    return values;
  };
  EXPECT_EQ(values_with(false), (std::vector<std::int64_t>{0, 1, 2}));
  // Every miss resets the counter to its initial state.
  EXPECT_EQ(values_with(true), (std::vector<std::int64_t>{0, 0, 0}));
}

TEST(Deadlines, DemoteReordersSubsequentScheduling) {
  cfsm::Network net("n");
  net.add_instance("a", relay("ra"), {{"i", "ia"}, {"o", "oa"}});
  net.add_instance("b", relay("rb"), {{"i", "ib"}, {"o", "ob"}});
  RtosConfig config;
  config.policy = RtosConfig::Policy::kStaticPriority;
  config.priority = {{"a", 1}, {"b", 2}};
  DeadlineMonitor monitor;
  monitor.deadline_cycles = 1;  // always missed
  monitor.action = DeadlineMonitor::MissAction::kDemote;
  monitor.demote_by = 10;  // 1 -> 11: now below b
  config.deadline_monitors["a"] = monitor;
  RtosSimulation sim(net, config);
  sim.set_reference_task("a", 100);
  sim.set_reference_task("b", 100);
  const SimStats stats = sim.run(
      {{0, "ia", 0}, {0, "ib", 0}, {10'000, "ia", 0}, {10'000, "ib", 0}});
  ASSERT_EQ(stats.outputs.size(), 4u);
  // First wave: a (priority 1) before b; after the miss demotes a to 11,
  // the second wave runs b first.
  EXPECT_EQ(stats.outputs[0].net, "oa");
  EXPECT_EQ(stats.outputs[1].net, "ob");
  EXPECT_EQ(stats.outputs[2].net, "ob");
  EXPECT_EQ(stats.outputs[3].net, "oa");

  // The demotion must not leak into a fresh run of the same simulation.
  const SimStats again = sim.run({{0, "ia", 0}, {0, "ib", 0}});
  ASSERT_EQ(again.outputs.size(), 2u);
  EXPECT_EQ(again.outputs[0].net, "oa");
}

// --- Watchdog ----------------------------------------------------------------

TEST(Watchdog, LivelockDetectedInEventCycle) {
  // a and b feed each other; one stimulus ping-pongs forever with no
  // external output.
  cfsm::Network net("cycle");
  net.add_instance("a", relay("ra"), {{"i", "x"}, {"o", "y"}});
  net.add_instance("b", relay("rb"), {{"i", "y"}, {"o", "x"}});
  RtosConfig config;
  config.watchdog.livelock_reactions = 50;
  RtosSimulation sim(net, config);
  sim.set_reference_task("a", 100);
  sim.set_reference_task("b", 100);
  const SimStats stats = sim.run({{0, "x", 0}});
  EXPECT_TRUE(stats.aborted);
  EXPECT_TRUE(stats.watchdog_fired);
  EXPECT_NE(stats.diagnostic.find("livelock"), std::string::npos);
  EXPECT_GT(stats.reactions_run, 50);
  EXPECT_LT(stats.reactions_run, 60);  // terminated promptly
}

TEST(Watchdog, StarvationDetectedUnderPriorityMonopoly) {
  cfsm::Network net("n");
  net.add_instance("hog", relay("rh"), {{"i", "t"}, {"o", "s"}});
  net.add_instance("starved", relay("rs"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.policy = RtosConfig::Policy::kStaticPriority;
  config.priority = {{"hog", 1}, {"starved", 2}};
  config.watchdog.starvation_cycles = 3000;
  RtosSimulation sim(net, config);
  sim.set_reference_task("hog", 300);  // always beats its 200-cycle period
  sim.set_reference_task("starved", 100);
  std::vector<ExternalEvent> events =
      periodic_trace(PeriodicSource{"t", 200, 0, 0.0, 1}, 20'000);
  events.push_back({50, "in", 0});
  const SimStats stats = sim.run(merge_traces({events}));
  EXPECT_TRUE(stats.aborted);
  EXPECT_TRUE(stats.watchdog_fired);
  EXPECT_NE(stats.diagnostic.find("starvation"), std::string::npos);
  EXPECT_NE(stats.diagnostic.find("starved"), std::string::npos);
}

// --- Sweep + estimator cross-check -------------------------------------------

TEST(Sweep, CrossChecksLatencyAgainstEstimatorBound) {
  cfsm::Network net("pipe");
  net.add_instance("a", relay("r1"), {{"i", "in"}, {"o", "mid"}});
  net.add_instance("b", relay("r2"), {{"i", "mid"}, {"o", "out"}});

  // Synthesize both stages once; the VM backend supplies measured per-
  // reaction cycles and the estimator the per-instance WCET bound.
  const NetworkSynthesis ns = synthesize_network(net);
  ASSERT_EQ(ns.per_instance.size(), 2u);
  ASSERT_GT(ns.max_cycles.at("a"), 0);

  RtosConfig config;
  config.faults.seed = 11;
  config.faults.delay_probability = 0.5;
  config.faults.max_delay = 200;
  config.faults.stalls["a"] = StallFault{1.0, 50'000};

  const TaskBinder bind = [&](RtosSimulation& sim) {
    for (const cfsm::Instance& inst : net.instances())
      sim.set_task(inst.name,
                   vm_task(ns.per_instance.at(inst.name).compiled,
                           vm::hc11_like(), inst.machine));
  };
  const std::vector<ExternalEvent> events = {
      {0, "in", 0}, {200'000, "in", 0}, {400'000, "in", 0}};

  FaultSweepOptions options;
  options.runs = 4;
  options.latency_bounds = estim::network_latency_bounds(
      net, ns.max_cycles, config.context_switch_cycles);
  ASSERT_EQ(options.latency_bounds.count("out"), 1u);
  ASSERT_GT(options.latency_bounds.at("out"), 0);

  const RobustnessReport report =
      sweep_faults(net, config, bind, events, options);
  EXPECT_EQ(report.fault_runs, 4);
  EXPECT_GT(report.faults_injected, 0);
  // The zero-fault worst case respects the PERT bound...
  ASSERT_EQ(report.baseline_worst_latency.count("out"), 1u);
  EXPECT_LE(report.baseline_worst_latency.at("out"),
            report.latency_bound.at("out"));
  EXPECT_TRUE(report.bound_violations_baseline.empty());
  // ...and the 50k-cycle stall pushes the faulted worst case over it.
  EXPECT_GT(report.fault_worst_latency.at("out"),
            report.latency_bound.at("out"));
  ASSERT_EQ(report.bound_violations_faulted.size(), 1u);
  EXPECT_EQ(report.bound_violations_faulted[0], "out");

  // The report is deterministic: same seeds, same bytes.
  const RobustnessReport replay =
      sweep_faults(net, config, bind, events, options);
  EXPECT_EQ(report.to_string(), replay.to_string());
}

TEST(Sweep, FindBreakingMagnitudeBracketsTheFailure) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  DeadlineMonitor monitor;
  monitor.deadline_cycles = 1000;
  config.deadline_monitors["r"] = monitor;
  config.faults.seed = 3;
  config.faults.stalls["r"] = StallFault{1.0, 5000};  // stall >> deadline

  const TaskBinder bind = [](RtosSimulation& sim) {
    sim.set_reference_task("r", 100);
  };
  const std::vector<ExternalEvent> events = {
      {0, "in", 0}, {50'000, "in", 0}, {100'000, "in", 0}};

  const double m = find_breaking_magnitude(net, config, bind, events, 10);
  EXPECT_GT(m, 0.0);  // at full magnitude the stall always fires
  EXPECT_LE(m, 1.0);

  // A plan with no perturbations never breaks.
  RtosConfig clean = config;
  clean.faults = FaultPlan{};
  EXPECT_EQ(find_breaking_magnitude(net, clean, bind, events, 5), -1.0);
}

// --- Burst trace + degraded-mode schedulability ------------------------------

TEST(Trace, BurstTraceProvokesBufferLoss) {
  const auto events = burst_trace("in", 1000, 3, 10, 3000);
  EXPECT_EQ(events.size(), 10u);  // 3+3+3 full bursts + 1 clipped at until
  for (size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].time, events[i - 1].time);
  EXPECT_EQ(events[1].time, 10);
  EXPECT_EQ(events[3].time, 1000);

  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosSimulation sim(net, RtosConfig{});
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run(events);
  // In each full burst the 2nd and 3rd events arrive inside the 140-cycle
  // reaction window; the 3rd overwrites the buffered 2nd (§II-D).
  EXPECT_EQ(stats.lost_events.at("in"), 3);
  EXPECT_EQ(stats.outputs.size(), 7u);
}

TEST(Sched, InflateForFaultsMatchesWorstDraw) {
  std::vector<sched::Task> tasks = {{"a", 400, 1000, 0, 0},
                                    {"b", 600, 2000, 0, 0}};
  EXPECT_TRUE(sched::rm_utilization_test(tasks));
  const auto degraded =
      sched::inflate_for_faults(tasks, 0.5, {{"a", 200}});
  EXPECT_DOUBLE_EQ(degraded[0].wcet, 400 * 1.5 + 200);
  EXPECT_DOUBLE_EQ(degraded[1].wcet, 600 * 1.5);
  // The degraded set no longer passes the Liu–Layland bound.
  EXPECT_FALSE(sched::rm_utilization_test(degraded));
}

// --- Estimator network bound -------------------------------------------------

TEST(Estim, NetworkLatencyBoundsTakeTheMaxPath) {
  auto join = std::make_shared<cfsm::Cfsm>(
      "join", std::vector<cfsm::Signal>{{"a", 1}, {"b", 1}},
      std::vector<cfsm::Signal>{{"o", 1}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{expr::land(cfsm::presence("a"), cfsm::presence("b")),
                     {cfsm::Emit{"o", nullptr}},
                     {}}});
  cfsm::Network net("diamond");
  net.add_instance("fastpath", relay("rf"), {{"i", "in"}, {"o", "m1"}});
  net.add_instance("slowpath", relay("rs"), {{"i", "in"}, {"o", "m2"}});
  net.add_instance("sink", join, {{"a", "m1"}, {"b", "m2"}, {"o", "out"}});
  const auto bounds = estim::network_latency_bounds(
      net, {{"fastpath", 100}, {"slowpath", 500}, {"sink", 100}}, 10);
  ASSERT_EQ(bounds.count("out"), 1u);
  // PERT: max(100+10, 500+10) + 100 + 10 through the slow branch.
  EXPECT_EQ(bounds.at("out"), 620);

  // A cyclic network has no DAG bound.
  cfsm::Network cyclic("cycle");
  cyclic.add_instance("a", relay("ra"), {{"i", "x"}, {"o", "y"}});
  cyclic.add_instance("b", relay("rb"), {{"i", "y"}, {"o", "x"}});
  EXPECT_TRUE(
      estim::network_latency_bounds(cyclic, {{"a", 1}, {"b", 1}}, 0).empty());
}

}  // namespace
}  // namespace polis::rtos
