// Resource governor: budgets, cancellation, recoverable unwinding, fault
// injection and atomic file writes. The central claims under test:
//
//   * a budget trip is a recoverable exception, not a fatal check — every
//     BddManager stays fully usable afterwards (live handles survive, new
//     operations work, GC runs);
//   * charges are exact: node/byte accounting refunds on GC and teardown, so
//     one governor can meter many manager lifetimes;
//   * injected allocation failures (the compiler-side FaultPlan mirror)
//     unwind leak- and corruption-free — this file doubles as the ASan/UBSan
//     fault-injection workload in CI;
//   * node-budget trips are operation-sequence deterministic.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "bdd/bdd.hpp"
#include "cfsm/cfsm.hpp"
#include "core/synthesis.hpp"
#include "util/atomic_file.hpp"
#include "util/governor.hpp"

namespace polis {
namespace {

// A function family with enough structure to allocate hundreds of nodes:
// pairwise ANDs of XOR chains over `vars` variables.
bdd::Bdd busy_function(bdd::BddManager& mgr, int vars) {
  bdd::Bdd acc = mgr.one();
  for (int i = 0; i + 1 < vars; i += 2) {
    bdd::Bdd chain = mgr.zero();
    for (int j = i; j < vars; ++j) chain = chain ^ mgr.var(j);
    acc = acc & (chain | (mgr.var(i) & mgr.var(i + 1)));
  }
  return acc;
}

TEST(Governor, NodeBudgetTripsAsRecoverableError) {
  GovernorLimits limits;
  limits.max_nodes = 64;
  ResourceGovernor gov(limits);
  ResourceGovernor::Scope scope(&gov);

  bdd::BddManager mgr(16);
  bdd::Bdd survivor = mgr.var(0) & mgr.var(1);
  bool tripped = false;
  try {
    busy_function(mgr, 16);
  } catch (const BudgetExceeded& e) {
    tripped = true;
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kNodes);
  }
  ASSERT_TRUE(tripped);
  EXPECT_GE(gov.budget_hits(), 1u);

  // The manager must be fully usable after the unwind: the live handle is
  // intact and both old and new operations work (ungoverned).
  {
    ResourceGovernor::Suspend suspend;
    EXPECT_FALSE(survivor.is_zero());
    EXPECT_TRUE((survivor & !mgr.var(0)).is_zero());
    mgr.garbage_collect();
    EXPECT_EQ((mgr.var(2) | !mgr.var(2)), mgr.one());
  }
}

TEST(Governor, ChargesRefundOnManagerTeardown) {
  GovernorLimits limits;
  limits.max_nodes = 1u << 20;
  ResourceGovernor gov(limits);
  ResourceGovernor::Scope scope(&gov);
  {
    bdd::BddManager mgr(12);
    bdd::Bdd keep = busy_function(mgr, 12);
    EXPECT_GT(gov.charged_nodes(), 0u);
    (void)keep;
  }
  // Everything the manager charged is refunded when it dies.
  EXPECT_EQ(gov.charged_nodes(), 0u);
}

TEST(Governor, GcRefundsCompactedNodes) {
  GovernorLimits limits;
  limits.max_nodes = 1u << 20;
  ResourceGovernor gov(limits);
  ResourceGovernor::Scope scope(&gov);
  bdd::BddManager mgr(12);
  { bdd::Bdd dead = busy_function(mgr, 12); }
  const uint64_t before = gov.charged_nodes();
  mgr.garbage_collect();
  EXPECT_LT(gov.charged_nodes(), before);
}

TEST(Governor, DeadlineTripsOnPoll) {
  GovernorLimits limits;
  limits.deadline_ms = 1;
  ResourceGovernor gov(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(gov.deadline_expired());
  EXPECT_THROW(gov.poll(), BudgetExceeded);
}

TEST(Governor, CancellationTripsOnPoll) {
  CancellationToken token;
  ResourceGovernor gov(GovernorLimits{}, token);
  gov.poll();  // not yet cancelled
  token.request_cancel();
  EXPECT_THROW(gov.poll(), Cancelled);
}

TEST(Governor, SuspendGatesThrowsButKeepsAccounting) {
  GovernorLimits limits;
  limits.max_nodes = 1;
  ResourceGovernor gov(limits);
  ResourceGovernor::Scope scope(&gov);
  {
    ResourceGovernor::Suspend suspend;
    gov.charge_arena(100, 0);  // over budget, but suspended: no throw
    gov.poll();
  }
  EXPECT_EQ(gov.charged_nodes(), 100u);  // charges recorded regardless
  EXPECT_TRUE(gov.nodes_over_budget());
  EXPECT_THROW(gov.charge_arena(1, 0), BudgetExceeded);
  gov.charge_arena(-101, 0);  // refunds never throw
  EXPECT_FALSE(gov.nodes_over_budget());
}

TEST(Governor, PollCurrentWithoutGovernorIsANoop) {
  for (int i = 0; i < 1024; ++i) ResourceGovernor::poll_current();
}

TEST(Governor, NodeBudgetTripIsDeterministic) {
  // Same operation sequence + same budget ⇒ the trip happens at the same
  // charge count. This is what makes degraded outputs byte-identical.
  const auto run = [] {
    GovernorLimits limits;
    limits.max_nodes = 80;
    ResourceGovernor gov(limits);
    ResourceGovernor::Scope scope(&gov);
    bdd::BddManager mgr(16);
    try {
      busy_function(mgr, 16);
    } catch (const BudgetExceeded&) {
    }
    return gov.charged_nodes();
  };
  EXPECT_EQ(run(), run());
}

TEST(Governor, InjectedAllocationFaultsUnwindCleanly) {
  // Deterministic single-failure windows swept across the first growth
  // decisions: every unwind must leave the manager consistent (checked by
  // continuing to operate on it; ASan checks the leak half in CI).
  for (uint64_t fail_after = 0; fail_after < 40; fail_after += 3) {
    ResourceGovernor gov{GovernorLimits{}};
    AllocFaultPlan plan;
    plan.fail_after = fail_after;
    plan.fail_first_n = 1;
    gov.set_alloc_fault_plan(plan);
    ResourceGovernor::Scope scope(&gov);

    bdd::BddManager mgr(14);
    bdd::Bdd partial;
    try {
      partial = busy_function(mgr, 14);
    } catch (const BudgetExceeded& e) {
      EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kAllocation);
    }
    // One failure was injected (or the workload finished first).
    EXPECT_LE(gov.alloc_faults_injected(), 1u);
    // The manager survived: finish the same workload fault-free.
    {
      ResourceGovernor::Suspend suspend;
      const bdd::Bdd full = busy_function(mgr, 14);
      EXPECT_FALSE(full.is_null());
      mgr.garbage_collect();
    }
  }
}

TEST(Governor, FaultStormStillCompletesUnderDegrade) {
  // A probabilistic "budget storm" into a full synthesize() run in degrade
  // mode: the ladder (ungoverned χ rebuild, s-graph retry, estimator skip)
  // must still produce code.
  const auto machine = std::make_shared<const cfsm::Cfsm>(
      "stormy", std::vector<cfsm::Signal>{{"a", 4}, {"b", 1}},
      std::vector<cfsm::Signal>{{"y", 4}},
      std::vector<cfsm::StateVar>{{"s", 4, 0}},
      std::vector<cfsm::Rule>{
          cfsm::Rule{expr::land(cfsm::presence("a"),
                                expr::eq(expr::var("s"), cfsm::value_of("a"))),
                     {cfsm::Emit{"y", expr::add(expr::var("s"),
                                                expr::constant(1))}},
                     {cfsm::Assign{"s", expr::constant(0)}}},
          cfsm::Rule{cfsm::presence("b"),
                     {},
                     {cfsm::Assign{"s", expr::add(expr::var("s"),
                                                  expr::constant(1))}}},
      });

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ResourceGovernor gov{GovernorLimits{}};
    AllocFaultPlan plan;
    plan.seed = seed;
    plan.probability = 0.05;
    gov.set_alloc_fault_plan(plan);
    ResourceGovernor::Scope scope(&gov);

    SynthesisOptions options;
    options.on_budget = OnBudget::kDegrade;
    const SynthesisResult r = synthesize(machine, options);
    EXPECT_FALSE(r.c_code.empty());
    EXPECT_FALSE(r.graph == nullptr);
  }
}

TEST(AtomicFile, WritesAndOverwrites) {
  const auto dir = std::filesystem::temp_directory_path() / "polis_atomic_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "artifact.c";
  write_file_atomic(path, "first\n");
  write_file_atomic(path, "second\n");
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "second\n");
  // No temp droppings left behind.
  size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicFile, FailureLeavesNoPartialFile) {
  const auto dir =
      std::filesystem::temp_directory_path() / "polis_atomic_missing" / "sub";
  // Parent directory does not exist: the write must throw and leave nothing.
  EXPECT_THROW(write_file_atomic(dir / "x.c", "data"), std::exception);
  EXPECT_FALSE(std::filesystem::exists(dir));
}

}  // namespace
}  // namespace polis
