// Determinism and governor contracts of the sharded image computation
// (ParallelImage): the parallel reachability engine must be OBSERVABLY
// IDENTICAL to the serial one — same reached set (as a function, compared by
// migrating both into a common manager; raw handles are not comparable
// across managers), same BFS layers, same iteration count, same verdicts and
// byte-identical counterexamples — at every thread count. Budget trips
// mid-parallel-fixpoint must recover through the same widen / kUnknown
// ladder as serial runs, and every node charged to the ambient governor by
// the per-worker managers must be refunded by teardown.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/systems.hpp"
#include "frontend/parser.hpp"
#include "util/governor.hpp"
#include "verif/verif.hpp"

namespace polis {
namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// One reachability run with everything the comparisons need kept alive
/// (the Bdd handles in `reach` reference `mgr`).
struct ReachRun {
  std::unique_ptr<bdd::BddManager> mgr;
  std::unique_ptr<verif::NetworkEncoding> enc;
  verif::TransitionSystem tr;
  verif::ReachResult reach;
};

ReachRun run_reach(const cfsm::Network& net, int threads) {
  ReachRun r;
  r.mgr = std::make_unique<bdd::BddManager>();
  r.enc = std::make_unique<verif::NetworkEncoding>(net, *r.mgr);
  r.tr = verif::build_transition_system(*r.enc);
  verif::ReachOptions opt;
  opt.num_threads = threads;
  r.reach = verif::reachable_states(r.tr, opt);
  return r;
}

// Serial (threads = 1, in-manager image) versus sharded (2 and 8 workers)
// over the example networks: the reached set and every BFS onion layer must
// be the same boolean function, and the fixpoint must take the same number
// of iterations. Function equality across managers is checked by copying
// both sides into a fresh common manager, where canonicity makes handle
// equality function equality.
TEST(ParallelReach, ThreadCountsAreFunctionIdentical) {
  const std::vector<std::shared_ptr<cfsm::Network>> nets = {
      frontend::parse(
          slurp(std::filesystem::path(POLIS_EXAMPLES_DIR) / "blinker.rsl"))
          .networks.at("blinker"),
      systems::meter_network(),
      systems::dash_core_network(),
      systems::microwave_network(),
  };
  for (const auto& net : nets) {
    SCOPED_TRACE(net->name());
    const ReachRun serial = run_reach(*net, 1);
    EXPECT_EQ(serial.reach.stats.shards, 0);
    ASSERT_TRUE(serial.reach.stats.exact);

    for (const int threads : {2, 8}) {
      SCOPED_TRACE(threads);
      const ReachRun par = run_reach(*net, threads);
      EXPECT_GT(par.reach.stats.shards, 0);
      EXPECT_LE(par.reach.stats.shards, threads);
      EXPECT_EQ(par.reach.stats.iterations, serial.reach.stats.iterations);
      EXPECT_EQ(par.reach.stats.reached_states,
                serial.reach.stats.reached_states);
      EXPECT_TRUE(par.reach.stats.exact);
      EXPECT_TRUE(par.reach.stats.converged);
      EXPECT_EQ(par.reach.stats.worker_peak_nodes.size(),
                static_cast<size_t>(par.reach.stats.shards));

      bdd::BddManager common(serial.mgr->num_vars());
      bdd::CopyCache from_serial, from_par;
      EXPECT_EQ(common.copy_across(serial.reach.reached, from_serial),
                common.copy_across(par.reach.reached, from_par));
      ASSERT_EQ(par.reach.layers.size(), serial.reach.layers.size());
      for (size_t i = 0; i < serial.reach.layers.size(); ++i) {
        EXPECT_EQ(common.copy_across(serial.reach.layers[i], from_serial),
                  common.copy_across(par.reach.layers[i], from_par))
            << "layer " << i;
      }
    }
  }
}

// The deliberately-violated seat-belt alarm from the check tests: verdicts,
// violating-state counts and the BFS-minimal counterexample trace must be
// byte-identical whatever the thread count, because counterexamples are
// extracted from the (identical) onion layers.
const char* kAlarmSource =
    "module alarmist {\n"
    "  input key_on;\n"
    "  input belt_on;\n"
    "  input tick;\n"
    "  output alarm;\n"
    "  state st : int[3] = 0;\n"
    "  state cnt : int[4] = 0;\n"
    "  assert st != 2;\n"
    "  when present(key_on)                      -> { st := 1; cnt := 0; }\n"
    "  when st == 1 && present(belt_on)          -> { st := 0; }\n"
    "  when st == 1 && present(tick) && cnt < 3  -> { cnt := cnt + 1; }\n"
    "  when st == 1 && present(tick) && cnt >= 3 -> { st := 2; emit alarm; }\n"
    "}\n"
    "network alarmnet { instance blt : alarmist; }\n";

TEST(ParallelReach, VerdictsAndCounterexamplesMatchSerial) {
  const frontend::ParsedFile file = frontend::parse(kAlarmSource);
  const cfsm::Network& net = *file.networks.at("alarmnet");

  verif::VerifyOptions serial_opt;
  serial_opt.reach.num_threads = 1;
  const verif::VerifyResult serial = verif::verify_network(net, serial_opt);
  ASSERT_EQ(serial.assertions.size(), 1u);
  ASSERT_EQ(serial.assertions[0].verdict, verif::Verdict::kViolated);
  ASSERT_TRUE(serial.assertions[0].cex.has_value());

  for (const int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    verif::VerifyOptions opt;
    opt.reach.num_threads = threads;
    const verif::VerifyResult par = verif::verify_network(net, opt);

    EXPECT_EQ(par.reach.reached_states, serial.reach.reached_states);
    EXPECT_EQ(par.reach.iterations, serial.reach.iterations);
    ASSERT_EQ(par.assertions.size(), serial.assertions.size());
    const verif::CheckResult& a = par.assertions[0];
    const verif::CheckResult& b = serial.assertions[0];
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.violating_states, b.violating_states);
    ASSERT_TRUE(a.cex.has_value());
    EXPECT_EQ(a.cex->initial, b.cex->initial);
    ASSERT_EQ(a.cex->steps.size(), b.cex->steps.size());
    for (size_t i = 0; i < a.cex->steps.size(); ++i) {
      EXPECT_EQ(a.cex->steps[i].kind, b.cex->steps[i].kind) << "step " << i;
      EXPECT_EQ(a.cex->steps[i].subject, b.cex->steps[i].subject)
          << "step " << i;
      EXPECT_EQ(a.cex->steps[i].value, b.cex->steps[i].value) << "step " << i;
      EXPECT_EQ(a.cex->steps[i].after, b.cex->steps[i].after) << "step " << i;
    }
    EXPECT_EQ(par.lost_events.possible, serial.lost_events.possible);
    EXPECT_EQ(par.lost_events.offenders, serial.lost_events.offenders);
  }
}

// A node budget that trips while the sharded fixpoint is in flight must
// recover through widening: the run completes converged-but-inexact (the
// reached set overapproximates), counts the recovery, and — the accounting
// half — every node/byte the per-worker managers charged to the ambient
// governor is refunded once the engine tears down. The final conservation
// check (charges return exactly to zero after the main manager dies) covers
// the workers too: any leaked worker charge would surface as a nonzero
// residue.
TEST(ParallelReach, GovernorTripMidFixpointWidensAndRefunds) {
  GovernorLimits limits;
  // Above the (deterministic) arena charge of building the microwave
  // transition relation (~1.09 M slots), below what the sharded fixpoint
  // adds on top — so the trip lands mid-fixpoint, not during setup.
  limits.max_nodes = 1'100'000;
  ResourceGovernor gov(limits);
  ResourceGovernor::Scope scope(&gov);
  ASSERT_EQ(gov.charged_nodes(), 0u);
  ASSERT_EQ(gov.charged_bytes(), 0u);

  {
    const std::shared_ptr<cfsm::Network> net = systems::microwave_network();
    bdd::BddManager mgr;
    verif::NetworkEncoding enc(*net, mgr);
    verif::TransitionSystem tr = verif::build_transition_system(enc);
    verif::ReachOptions opt;
    opt.num_threads = 4;
    opt.degrade_on_budget = true;
    const verif::ReachResult reach = verif::reachable_states(tr, opt);

    EXPECT_TRUE(reach.stats.converged);
    EXPECT_FALSE(reach.stats.exact);
    EXPECT_GT(reach.stats.budget_recoveries, 0);
    EXPECT_GT(reach.stats.widenings, 0);
    EXPECT_GT(gov.charged_nodes(), 0u);
    // Workers are gone by now; only the main manager's charges remain, and
    // the widened reached set must still contain every truly reachable
    // state (checked cheaply: it contains the initial set).
    const bdd::Bdd init = enc.initial_set();
    EXPECT_EQ((init & reach.reached), init);
  }
  EXPECT_EQ(gov.charged_nodes(), 0u);
  EXPECT_EQ(gov.charged_bytes(), 0u);
}

// Cancellation mid-parallel-run takes the other arm of the ladder: the
// fixpoint stops non-converged (an underapproximation), and downstream
// property checking degrades the verdict to kUnknown — never to a bogus
// kProved — exactly as in the serial engine.
TEST(ParallelReach, CancellationDegradesVerdictsToUnknown) {
  const frontend::ParsedFile file = frontend::parse(kAlarmSource);
  const cfsm::Network& net = *file.networks.at("alarmnet");

  CancellationToken token;
  ResourceGovernor gov{GovernorLimits{}, token};

  bdd::BddManager mgr;
  verif::NetworkEncoding enc(net, mgr);
  verif::TransitionSystem tr = verif::build_transition_system(enc);
  token.request_cancel();  // trip the first in-fixpoint poll

  verif::ReachOptions opt;
  opt.num_threads = 4;
  opt.degrade_on_budget = true;
  verif::ReachResult reach;
  {
    ResourceGovernor::Scope scope(&gov);
    reach = verif::reachable_states(tr, opt);
  }
  EXPECT_FALSE(reach.stats.converged);

  const auto results = verif::check_assertions(tr, reach);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].verdict, verif::Verdict::kUnknown);
  const verif::LostEventReport lost = verif::check_no_lost_events(tr, reach);
  EXPECT_FALSE(lost.sound);
}

}  // namespace
}  // namespace polis
