// Tests of the §V-B data-flow analysis (write-before-read hazard detection)
// and of the copy-in optimization it enables in the VM compiler and the C
// generator: behaviour must be unchanged, footprint must shrink.
#include <gtest/gtest.h>

#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "codegen/c_codegen.hpp"
#include "sgraph/build.hpp"
#include "sgraph/dataflow.hpp"
#include "util/rng.hpp"
#include "vm/machine.hpp"

namespace polis::sgraph {
namespace {

ActionOp store(const std::string& var, expr::ExprRef value) {
  ActionOp op;
  op.kind = ActionOp::Kind::kAssignVar;
  op.target = var;
  op.value = std::move(value);
  return op;
}

TEST(Dataflow, VarsReadAtCoversAllExpressionSlots) {
  Node test_node;
  test_node.kind = Kind::kTest;
  test_node.predicate = expr::eq(expr::var("a"), expr::var("b"));
  EXPECT_EQ(vars_read_at(test_node), (std::set<std::string>{"a", "b"}));

  Node assign_node;
  assign_node.kind = Kind::kAssign;
  assign_node.action = store("x", expr::add(expr::var("y"), expr::constant(1)));
  assign_node.condition = expr::var("c");
  EXPECT_EQ(vars_read_at(assign_node), (std::set<std::string>{"c", "y"}));
  EXPECT_EQ(var_written_at(assign_node), "x");

  Node begin_node;
  begin_node.kind = Kind::kBegin;
  EXPECT_TRUE(vars_read_at(begin_node).empty());
  EXPECT_TRUE(var_written_at(begin_node).empty());
}

TEST(Dataflow, NoHazardWhenReadsPrecedeWrites) {
  // TEST a -> ASSIGN a := 0: the only read is before the write.
  Sgraph g("t");
  const NodeId w = g.assign(store("a", expr::constant(0)), nullptr, g.end());
  g.set_entry(g.test(expr::var("a"), false, w, g.end()));
  EXPECT_TRUE(vars_needing_copy_in(g, {"a"}).empty());
}

TEST(Dataflow, SelfReferencingAssignmentIsSafe) {
  // a := a + 1 reads a in its own RHS, evaluated before the store.
  Sgraph g("t");
  g.set_entry(g.assign(store("a", expr::add(expr::var("a"), expr::constant(1))),
                       nullptr, g.end()));
  EXPECT_TRUE(vars_needing_copy_in(g, {"a"}).empty());
}

TEST(Dataflow, WriteThenReadIsAHazard) {
  // ASSIGN a := 0; then ASSIGN b := a  — b must see the PRE-state a, so a
  // needs buffering.
  Sgraph g("t");
  const NodeId rd = g.assign(store("b", expr::var("a")), nullptr, g.end());
  g.set_entry(g.assign(store("a", expr::constant(0)), nullptr, rd));
  EXPECT_EQ(vars_needing_copy_in(g, {"a", "b"}),
            std::set<std::string>{"a"});
}

TEST(Dataflow, HazardOnlyOnThePathContainingBoth) {
  // TEST c ? (a := 0 -> read a) : (read a only): hazard exists via the
  // true branch.
  Sgraph g("t");
  const NodeId rd = g.assign(store("b", expr::var("a")), nullptr, g.end());
  const NodeId wr = g.assign(store("a", expr::constant(0)), nullptr, rd);
  g.set_entry(g.test(expr::var("c"), false, wr, rd));
  EXPECT_EQ(vars_needing_copy_in(g, {"a"}), std::set<std::string>{"a"});

  // But if the write's continuation never reads a, no hazard: a := 0 on one
  // branch, b := a on the *other*.
  Sgraph h("t2");
  const NodeId rd2 = h.assign(store("b", expr::var("a")), nullptr, h.end());
  const NodeId wr2 = h.assign(store("a", expr::constant(0)), nullptr, h.end());
  h.set_entry(h.test(expr::var("c"), false, wr2, rd2));
  EXPECT_TRUE(vars_needing_copy_in(h, {"a"}).empty());
}

TEST(Dataflow, ConditionReadAfterWriteIsAHazard) {
  // ASSIGN a := 1; then conditional ASSIGN guarded by a.
  Sgraph g("t");
  const NodeId guarded =
      g.assign(store("b", expr::constant(1)), expr::var("a"), g.end());
  g.set_entry(g.assign(store("a", expr::constant(1)), nullptr, guarded));
  EXPECT_EQ(vars_needing_copy_in(g, {"a"}), std::set<std::string>{"a"});
}

// The optimization must never change behaviour (copy-in exists precisely to
// protect hazardous variables, which the analysis keeps buffered).
class CopyInOptimization : public ::testing::TestWithParam<int> {};

TEST_P(CopyInOptimization, BehaviourUnchangedFootprintSmaller) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 77);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const Sgraph g =
      build_sgraph(rf, OrderingScheme::kSiftOutputsAfterSupport);

  const vm::SymbolInfo syms = vm::SymbolInfo::from(m);
  const vm::CompiledReaction plain = vm::compile(g, syms);
  vm::CompileOptions optimized_options;
  optimized_options.optimize_copy_in = true;
  const vm::CompiledReaction optimized = vm::compile(g, syms, optimized_options);

  EXPECT_LE(optimized.copy_in.size(), plain.copy_in.size());
  EXPECT_LE(optimized.program.slot_names.size(),
            plain.program.slot_names.size());
  EXPECT_LE(optimized.program.size_bytes(vm::hc11_like()),
            plain.program.size_bytes(vm::hc11_like()));

  int bad = 0;
  cfsm::enumerate_concrete_space(
      m, 1u << 16,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        const cfsm::Reaction ref = m.react(snap, st);
        long long c1 = 0;
        long long c2 = 0;
        const cfsm::Reaction a =
            vm::run_reaction(plain, vm::hc11_like(), m, snap, st, &c1);
        const cfsm::Reaction b =
            vm::run_reaction(optimized, vm::hc11_like(), m, snap, st, &c2);
        auto sorted = [](std::vector<std::pair<std::string, std::int64_t>> v) {
          std::sort(v.begin(), v.end());
          return v;
        };
        if (!(ref.fired == a.fired && ref.fired == b.fired &&
              ref.next_state == a.next_state && ref.next_state == b.next_state &&
              sorted(ref.emissions) == sorted(a.emissions) &&
              sorted(ref.emissions) == sorted(b.emissions)))
          ++bad;
        EXPECT_LE(c2, c1);  // optimized never slower
      });
  EXPECT_EQ(bad, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyInOptimization, ::testing::Range(0, 12));

TEST(CopyInOptimizationC, GeneratedCDropsSafeCopyIns) {
  // Fig. 1 machine: 'a' is only read before its assignments on each path,
  // so the optimized C declares no a__in local.
  const cfsm::Cfsm m(
      "simple", {{"c", 4}}, {{"y", 1}}, {{"a", 4, 0}},
      {cfsm::Rule{expr::land(cfsm::presence("c"),
                             expr::eq(expr::var("a"), cfsm::value_of("c"))),
                  {cfsm::Emit{"y", nullptr}},
                  {cfsm::Assign{"a", expr::constant(0)}}},
       cfsm::Rule{expr::land(cfsm::presence("c"),
                             expr::ne(expr::var("a"), cfsm::value_of("c"))),
                  {},
                  {cfsm::Assign{"a", expr::add(expr::var("a"),
                                               expr::constant(1))}}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const Sgraph g = build_sgraph(rf, OrderingScheme::kSiftOutputsAfterSupport);

  const std::string plain = codegen::generate_c(g, m);
  EXPECT_NE(plain.find("a__in"), std::string::npos);

  codegen::CCodegenOptions options;
  options.optimize_copy_in = true;
  const std::string optimized = codegen::generate_c(g, m, options);
  EXPECT_EQ(optimized.find("a__in"), std::string::npos);
}

}  // namespace
}  // namespace polis::sgraph
