#include <gtest/gtest.h>

#include <sstream>

#include "cfsm/reactive.hpp"
#include "sgraph/build.hpp"
#include "sgraph/eval.hpp"
#include "sgraph/io.hpp"
#include "sgraph/optimize.hpp"
#include "sgraph/sgraph.hpp"
#include "util/check.hpp"

namespace polis::sgraph {
namespace {

ActionOp emit_op(const std::string& sig) {
  ActionOp op;
  op.kind = ActionOp::Kind::kEmitPure;
  op.target = sig;
  return op;
}

TEST(Sgraph, EmptyGraphIsBeginEnd) {
  Sgraph g("empty");
  EXPECT_EQ(g.entry(), g.end());
  EXPECT_EQ(g.num_reachable(), 2u);
  EXPECT_EQ(g.depth(), 1);
  EXPECT_EQ(g.num_tests(), 0u);
  EXPECT_EQ(g.num_assigns(), 0u);
}

TEST(Sgraph, TestInterning) {
  Sgraph g("t");
  const expr::ExprRef p = expr::var("x");
  const NodeId a1 = g.assign(emit_op("y"), nullptr, g.end());
  const NodeId t1 = g.test(p, false, a1, g.end());
  const NodeId t2 = g.test(p, false, a1, g.end());
  EXPECT_EQ(t1, t2);  // reduce: no isomorphic subgraphs
  // Same predicate, different children -> different vertex.
  const NodeId t3 = g.test(p, false, g.end(), a1);
  EXPECT_NE(t1, t3);
}

TEST(Sgraph, VacuousTestCollapses) {
  Sgraph g("t");
  const NodeId a = g.assign(emit_op("y"), nullptr, g.end());
  EXPECT_EQ(g.test(expr::var("x"), false, a, a), a);
}

TEST(Sgraph, AssignConditionFolding) {
  Sgraph g("t");
  // Constant-false condition collapses to next.
  EXPECT_EQ(g.assign(emit_op("y"), expr::constant(0), g.end()), g.end());
  // Constant-true condition becomes unconditional.
  const NodeId a = g.assign(emit_op("y"), expr::constant(1), g.end());
  EXPECT_EQ(g.node(a).condition, nullptr);
  // Interning of identical assigns.
  EXPECT_EQ(g.assign(emit_op("y"), nullptr, g.end()), a);
}

TEST(Sgraph, TopoOrderParentsFirst) {
  Sgraph g("t");
  const NodeId a = g.assign(emit_op("y"), nullptr, g.end());
  const NodeId t = g.test(expr::var("x"), false, a, g.end());
  g.set_entry(t);
  const std::vector<NodeId> order = g.topo_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), g.begin());
  EXPECT_EQ(order.back(), g.end());
  // t before a.
  size_t pt = 0;
  size_t pa = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == t) pt = i;
    if (order[i] == a) pa = i;
  }
  EXPECT_LT(pt, pa);
}

TEST(Sgraph, MustExecuteIntersectsBranches) {
  Sgraph g("t");
  // On both branches: consume; on one branch only: emit y.
  ActionOp consume;
  consume.kind = ActionOp::Kind::kConsume;
  const NodeId c_end = g.assign(consume, nullptr, g.end());
  const NodeId with_y = g.assign(emit_op("y"), nullptr, c_end);
  const NodeId t = g.test(expr::var("x"), false, with_y, c_end);
  g.set_entry(t);
  const auto must = g.must_execute_actions();
  EXPECT_EQ(must, std::vector<std::string>{"consume"});
}

TEST(Sgraph, ConditionalAssignNotMustExecute) {
  Sgraph g("t");
  const NodeId a = g.assign(emit_op("y"), expr::var("c"), g.end());
  g.set_entry(a);
  EXPECT_TRUE(g.must_execute_actions().empty());
}

TEST(SgraphEval, WalksAndExecutes) {
  Sgraph g("t");
  const NodeId a = g.assign(emit_op("y"), nullptr, g.end());
  const NodeId t = g.test(expr::var("x"), false, a, g.end());
  g.set_entry(t);

  const EvalResult hit = evaluate(g, [](const std::string&) { return 1; });
  ASSERT_EQ(hit.executed.size(), 1u);
  EXPECT_EQ(hit.executed[0].target, "y");
  EXPECT_EQ(hit.tests_evaluated, 1);

  const EvalResult miss = evaluate(g, [](const std::string&) { return 0; });
  EXPECT_TRUE(miss.executed.empty());
}

TEST(SgraphEval, ConditionalAssignRespectsCondition) {
  Sgraph g("t");
  const NodeId a = g.assign(emit_op("y"), expr::var("c"), g.end());
  g.set_entry(a);
  EXPECT_EQ(evaluate(g, [](const std::string&) { return 1; }).executed.size(),
            1u);
  EXPECT_EQ(evaluate(g, [](const std::string&) { return 0; }).executed.size(),
            0u);
}

TEST(Collapse, AndChainCollapses) {
  Sgraph g("t");
  const NodeId a = g.assign(emit_op("y"), nullptr, g.end());
  // if (p) { if (q) emit y; }  ->  if (p && q) emit y;
  const NodeId q = g.test(expr::var("q"), false, a, g.end());
  const NodeId p = g.test(expr::var("p"), false, q, g.end());
  g.set_entry(p);

  const Sgraph c = collapse_tests(g);
  EXPECT_EQ(c.num_tests(), 1u);
  // Semantics preserved over all four input combinations.
  for (int pq = 0; pq < 4; ++pq) {
    const expr::Env env = [pq](const std::string& n) -> std::int64_t {
      return n == "p" ? (pq & 1) : (pq >> 1);
    };
    EXPECT_EQ(evaluate(g, env).executed.size(),
              evaluate(c, env).executed.size())
        << "p=" << (pq & 1) << " q=" << (pq >> 1);
  }
}

TEST(Collapse, OrChainCollapses) {
  Sgraph g("t");
  const NodeId a = g.assign(emit_op("y"), nullptr, g.end());
  // if (p) goto A; else if (q) goto A;  ->  if (p || q) A
  const NodeId q = g.test(expr::var("q"), false, a, g.end());
  const NodeId p = g.test(expr::var("p"), false, a, q);
  g.set_entry(p);
  const Sgraph c = collapse_tests(g);
  EXPECT_EQ(c.num_tests(), 1u);
  for (int pq = 0; pq < 4; ++pq) {
    const expr::Env env = [pq](const std::string& n) -> std::int64_t {
      return n == "p" ? (pq & 1) : (pq >> 1);
    };
    EXPECT_EQ(evaluate(g, env).executed.size(),
              evaluate(c, env).executed.size());
  }
}

TEST(Collapse, SharedChildNotCollapsed) {
  Sgraph g("t");
  const NodeId a = g.assign(emit_op("y"), nullptr, g.end());
  const NodeId q = g.test(expr::var("q"), false, a, g.end());
  // q has two parents, so it is not a closed subgraph and must survive; the
  // r/p pair forms a legal OR chain (both true-edges reach q) and merges.
  const NodeId p1 = g.test(expr::var("p"), false, q, g.end());
  const NodeId p2 = g.test(expr::var("r"), false, q, p1);
  g.set_entry(p2);
  const Sgraph c = collapse_tests(g);
  EXPECT_EQ(c.num_tests(), 2u);
  // Semantics preserved over all eight input combinations.
  for (int m = 0; m < 8; ++m) {
    const expr::Env env = [m](const std::string& n) -> std::int64_t {
      if (n == "p") return m & 1;
      if (n == "q") return (m >> 1) & 1;
      return (m >> 2) & 1;
    };
    EXPECT_EQ(evaluate(g, env).executed.size(),
              evaluate(c, env).executed.size())
        << "minterm " << m;
  }
}

TEST(SgraphIo, TextAndDotRender) {
  Sgraph g("demo");
  const NodeId a = g.assign(emit_op("y"), nullptr, g.end());
  g.set_entry(g.test(expr::var("x"), true, a, g.end()));
  std::ostringstream text;
  to_text(g, text);
  EXPECT_NE(text.str().find("TEST x"), std::string::npos);
  EXPECT_NE(text.str().find("emit(y)"), std::string::npos);
  std::ostringstream dot;
  to_dot(g, dot);
  EXPECT_NE(dot.str().find("digraph"), std::string::npos);
  EXPECT_NE(dot.str().find("BEGIN"), std::string::npos);
}

TEST(SgraphBuild, OrderingSchemeNames) {
  EXPECT_STREQ(to_string(OrderingScheme::kNaive), "naive");
  EXPECT_STREQ(to_string(OrderingScheme::kOutputsBeforeInputs),
               "out-before-in");
  EXPECT_STREQ(to_string(OrderingScheme::kSiftOutputsAfterSupport),
               "sift-out-after-support");
}

TEST(SgraphBuild, OutputsBeforeInputsHasNoTests) {
  const cfsm::Cfsm m(
      "m", {{"c", 4}}, {{"y", 1}}, {{"a", 4, 0}},
      {cfsm::Rule{
          expr::land(cfsm::presence("c"),
                     expr::eq(expr::var("a"), cfsm::value_of("c"))),
          {cfsm::Emit{"y", nullptr}},
          {cfsm::Assign{"a", expr::constant(0)}}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const Sgraph g = build_sgraph(rf, OrderingScheme::kOutputsBeforeInputs);
  EXPECT_EQ(g.num_tests(), 0u);
  EXPECT_GT(g.num_assigns(), 0u);
  // Constant-time property: every path has the same vertex count.
  EXPECT_EQ(g.depth(), static_cast<int>(g.num_reachable()) - 1);
}

TEST(SgraphBuild, CareSetRemovesFalsePathTest) {
  // With independent abstraction, 'a == v_c' and 'a != v_c' are separate
  // tests and the graph re-tests the complement; the care set removes it.
  const cfsm::Cfsm m(
      "m", {{"c", 4}}, {{"y", 1}}, {{"a", 4, 0}},
      {cfsm::Rule{expr::land(cfsm::presence("c"),
                             expr::eq(expr::var("a"), cfsm::value_of("c"))),
                  {cfsm::Emit{"y", nullptr}},
                  {}},
       cfsm::Rule{expr::land(cfsm::presence("c"),
                             expr::ne(expr::var("a"), cfsm::value_of("c"))),
                  {},
                  {cfsm::Assign{"a", expr::add(expr::var("a"),
                                               expr::constant(1))}}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const Sgraph plain = build_sgraph(rf, OrderingScheme::kNaive);
  BuildOptions with_care;
  with_care.use_care_set = true;
  const Sgraph pruned = build_sgraph(rf, OrderingScheme::kNaive, with_care);
  EXPECT_LT(pruned.num_tests(), plain.num_tests());
}

TEST(SgraphBuild, RejectsIncompleteOrder) {
  const cfsm::Cfsm m("m", {{"c", 1}}, {{"y", 1}}, {},
                     {cfsm::Rule{cfsm::presence("c"),
                                 {cfsm::Emit{"y", nullptr}},
                                 {}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  EXPECT_THROW(build_sgraph_with_order(rf, {0}), CheckError);
  EXPECT_THROW(build_sgraph_with_order(rf, {0, 0, 0}), CheckError);
}

}  // namespace
}  // namespace polis::sgraph
