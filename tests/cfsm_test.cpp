#include <gtest/gtest.h>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "cfsm/random.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace polis::cfsm {
namespace {

Cfsm simple_machine(int dom = 4) {
  // Fig. 1 "module simple".
  return Cfsm(
      "simple", {{"c", dom}}, {{"y", 1}}, {{"a", dom, 0}},
      {
          Rule{expr::land(presence("c"),
                          expr::eq(expr::var("a"), value_of("c"))),
               {Emit{"y", nullptr}},
               {Assign{"a", expr::constant(0)}}},
          Rule{expr::land(presence("c"),
                          expr::ne(expr::var("a"), value_of("c"))),
               {},
               {Assign{"a", expr::add(expr::var("a"), expr::constant(1))}}},
      });
}

TEST(Cfsm, WrapToDomain) {
  EXPECT_EQ(wrap_to_domain(5, 4), 1);
  EXPECT_EQ(wrap_to_domain(-1, 4), 3);
  EXPECT_EQ(wrap_to_domain(3, 4), 3);
  EXPECT_EQ(wrap_to_domain(42, 1), 0);  // pure/degenerate domain
}

TEST(Cfsm, ReactMatchingRuleFires) {
  const Cfsm m = simple_machine();
  Snapshot snap;
  snap.present["c"] = true;
  snap.value["c"] = 0;
  const Reaction r = m.react(snap, {{"a", 0}});
  EXPECT_TRUE(r.fired);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "y");
  EXPECT_EQ(r.next_state.at("a"), 0);
}

TEST(Cfsm, ReactIncrementBranch) {
  const Cfsm m = simple_machine();
  Snapshot snap;
  snap.present["c"] = true;
  snap.value["c"] = 2;
  const Reaction r = m.react(snap, {{"a", 0}});
  EXPECT_TRUE(r.fired);
  EXPECT_TRUE(r.emissions.empty());
  EXPECT_EQ(r.next_state.at("a"), 1);
}

TEST(Cfsm, ReactNoEventNoRule) {
  const Cfsm m = simple_machine();
  const Reaction r = m.react({}, {{"a", 2}});
  EXPECT_FALSE(r.fired);
  EXPECT_TRUE(r.emissions.empty());
  EXPECT_EQ(r.next_state.at("a"), 2);  // state preserved
}

TEST(Cfsm, FirstMatchPriority) {
  // Two overlapping guards: the first rule must win.
  const Cfsm m("prio", {{"e", 1}}, {{"a", 1}, {"b", 1}}, {},
               {Rule{presence("e"), {Emit{"a", nullptr}}, {}},
                Rule{presence("e"), {Emit{"b", nullptr}}, {}}});
  Snapshot snap;
  snap.present["e"] = true;
  const Reaction r = m.react(snap, {});
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "a");
}

TEST(Cfsm, AssignmentsReadPreState) {
  // Both assignments read the pre-reaction value of a (synchronous).
  const Cfsm m("sync", {{"e", 1}}, {}, {{"a", 8, 1}, {"b", 8, 0}},
               {Rule{presence("e"),
                     {},
                     {Assign{"a", expr::add(expr::var("a"), expr::constant(1))},
                      Assign{"b", expr::var("a")}}}});
  Snapshot snap;
  snap.present["e"] = true;
  const Reaction r = m.react(snap, {{"a", 1}, {"b", 0}});
  EXPECT_EQ(r.next_state.at("a"), 2);
  EXPECT_EQ(r.next_state.at("b"), 1);  // pre-state a, not 2
}

TEST(Cfsm, EmissionValueWraps) {
  const Cfsm m("wrap", {{"e", 1}}, {{"o", 4}}, {{"a", 8, 7}},
               {Rule{presence("e"),
                     {Emit{"o", expr::add(expr::var("a"), expr::constant(1))}},
                     {}}});
  Snapshot snap;
  snap.present["e"] = true;
  const Reaction r = m.react(snap, {{"a", 7}});
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].second, 0);  // 8 mod 4
}

TEST(Cfsm, ValidationRejectsBadConstructs) {
  // Unknown output.
  EXPECT_THROW(Cfsm("x", {{"e", 1}}, {}, {},
                    {Rule{presence("e"), {Emit{"nope", nullptr}}, {}}}),
               CheckError);
  // Valued emit on a pure signal.
  EXPECT_THROW(Cfsm("x", {{"e", 1}}, {{"o", 1}}, {},
                    {Rule{presence("e"), {Emit{"o", expr::constant(1)}}, {}}}),
               CheckError);
  // Pure emit on a valued signal.
  EXPECT_THROW(Cfsm("x", {{"e", 1}}, {{"o", 4}}, {},
                    {Rule{presence("e"), {Emit{"o", nullptr}}, {}}}),
               CheckError);
  // Guard referencing an unknown variable.
  EXPECT_THROW(Cfsm("x", {{"e", 1}}, {}, {},
                    {Rule{expr::var("ghost"), {}, {}}}),
               CheckError);
  // Duplicate signal names.
  EXPECT_THROW(Cfsm("x", {{"e", 1}, {"e", 1}}, {}, {}, {}), CheckError);
  // Init out of domain.
  EXPECT_THROW(Cfsm("x", {{"e", 1}}, {}, {{"a", 4, 9}}, {}), CheckError);
}

TEST(Cfsm, EnumerateConcreteSpaceCountsExactly) {
  const Cfsm m = simple_machine(4);
  // Space: presence(2) * value(4) * state(4) = 32.
  int count = 0;
  EXPECT_TRUE(enumerate_concrete_space(
      m, 1000, [&](const Snapshot&, const std::map<std::string, std::int64_t>&) {
        ++count;
      }));
  EXPECT_EQ(count, 32);
  // Limit respected.
  EXPECT_FALSE(enumerate_concrete_space(
      m, 31, [&](const Snapshot&, const std::map<std::string, std::int64_t>&) {
        FAIL();
      }));
}

TEST(Network, NetClassification) {
  auto a = std::make_shared<Cfsm>(
      "prod", std::vector<Signal>{{"in", 1}}, std::vector<Signal>{{"mid", 1}},
      std::vector<StateVar>{},
      std::vector<Rule>{Rule{presence("in"), {Emit{"mid", nullptr}}, {}}});
  auto b = std::make_shared<Cfsm>(
      "cons", std::vector<Signal>{{"mid", 1}}, std::vector<Signal>{{"out", 1}},
      std::vector<StateVar>{},
      std::vector<Rule>{Rule{presence("mid"), {Emit{"out", nullptr}}, {}}});
  Network net("pair");
  net.add_instance("p", a);
  net.add_instance("c", b);
  EXPECT_EQ(net.external_inputs(), std::vector<std::string>{"in"});
  EXPECT_EQ(net.internal_nets(), std::vector<std::string>{"mid"});
  EXPECT_EQ(net.external_outputs(), std::vector<std::string>{"out"});
  EXPECT_EQ(net.topological_order(), (std::vector<std::string>{"p", "c"}));
}

TEST(Network, BindingsRenameNets) {
  auto a = std::make_shared<Cfsm>(
      "m", std::vector<Signal>{{"x", 1}}, std::vector<Signal>{{"y", 1}},
      std::vector<StateVar>{},
      std::vector<Rule>{Rule{presence("x"), {Emit{"y", nullptr}}, {}}});
  Network net("n");
  net.add_instance("u0", a, {{"x", "net_in"}, {"y", "net_out"}});
  EXPECT_EQ(net.external_inputs(), std::vector<std::string>{"net_in"});
  EXPECT_EQ(net.external_outputs(), std::vector<std::string>{"net_out"});
}

TEST(Network, CycleDetected) {
  auto a = std::make_shared<Cfsm>(
      "m1", std::vector<Signal>{{"i", 1}}, std::vector<Signal>{{"o", 1}},
      std::vector<StateVar>{},
      std::vector<Rule>{Rule{presence("i"), {Emit{"o", nullptr}}, {}}});
  Network net("loop");
  net.add_instance("u", a, {{"i", "w1"}, {"o", "w2"}});
  net.add_instance("v", a, {{"i", "w2"}, {"o", "w1"}});
  EXPECT_TRUE(net.topological_order().empty());
}

TEST(Network, DomainMismatchRejected) {
  auto p = std::make_shared<Cfsm>(
      "p", std::vector<Signal>{{"i", 1}}, std::vector<Signal>{{"o", 4}},
      std::vector<StateVar>{},
      std::vector<Rule>{
          Rule{presence("i"), {Emit{"o", expr::constant(1)}}, {}}});
  auto c = std::make_shared<Cfsm>(
      "c", std::vector<Signal>{{"o", 8}}, std::vector<Signal>{{"z", 1}},
      std::vector<StateVar>{},
      std::vector<Rule>{Rule{presence("o"), {Emit{"z", nullptr}}, {}}});
  Network net("bad");
  net.add_instance("a", p);
  net.add_instance("b", c);
  EXPECT_THROW(net.nets(), CheckError);
}

class RandomCfsmValid : public ::testing::TestWithParam<int> {};

TEST_P(RandomCfsmValid, GeneratedMachinesAreValidAndReact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Cfsm m = random_cfsm(rng);
  // Exhaustive reaction sweep must not throw and must stay in-domain.
  enumerate_concrete_space(
      m, 1u << 16,
      [&](const Snapshot& snap, const std::map<std::string, std::int64_t>& st) {
        const Reaction r = m.react(snap, st);
        for (const auto& [name, v] : r.next_state) {
          const StateVar* sv = m.find_state(name);
          ASSERT_NE(sv, nullptr);
          EXPECT_GE(v, 0);
          EXPECT_LT(v, sv->domain);
        }
        for (const auto& [sig, v] : r.emissions) {
          const Signal* s = m.find_output(sig);
          ASSERT_NE(s, nullptr);
          EXPECT_GE(v, 0);
          EXPECT_LT(v, std::max(1, s->domain));
        }
      });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCfsmValid, ::testing::Range(0, 15));

}  // namespace
}  // namespace polis::cfsm
