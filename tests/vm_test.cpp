#include <gtest/gtest.h>

#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "vm/compile.hpp"
#include "util/check.hpp"
#include "vm/machine.hpp"

namespace polis::vm {
namespace {

bool same_reaction(const cfsm::Reaction& a, const cfsm::Reaction& b) {
  auto sorted = [](std::vector<std::pair<std::string, std::int64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  return a.fired == b.fired && sorted(a.emissions) == sorted(b.emissions) &&
         a.next_state == b.next_state;
}

TEST(TargetProfile, AluCostsByOperator) {
  const TargetProfile p = hc11_like();
  EXPECT_EQ(p.alu_cycles(expr::Op::kAdd), p.cyc_alu);
  EXPECT_EQ(p.alu_cycles(expr::Op::kMul), p.cyc_mul);
  EXPECT_EQ(p.alu_cycles(expr::Op::kDiv), p.cyc_div);
  EXPECT_EQ(p.alu_cycles(expr::Op::kMod), p.cyc_div);
  EXPECT_GT(p.cyc_mul, p.cyc_alu);  // 8-bit CISC flavour
}

TEST(TargetProfile, EmitSizeIncludesValueExtra) {
  const TargetProfile p = hc11_like();
  Instr pure{Opcode::kEmit, 0, -1, 0, 0, expr::Op::kAdd, "y"};
  Instr valued{Opcode::kEmit, 0, 0, 0, 0, expr::Op::kAdd, "y"};
  EXPECT_EQ(p.instr_bytes(valued) - p.instr_bytes(pure), p.sz_emit_value_extra);
}

TEST(TargetProfile, ProfilesDiffer) {
  const TargetProfile hc = hc11_like();
  const TargetProfile rv = risc32_like();
  EXPECT_NE(hc.name, rv.name);
  EXPECT_LT(hc.sz_alu, rv.sz_alu);        // CISC encodes tighter
  EXPECT_GT(hc.cyc_detect, rv.cyc_detect);  // and runs slower
}

TEST(RoutineBuilder, SlotInterning) {
  cfsm::Cfsm m("m", {{"c", 4}}, {{"y", 1}}, {{"a", 4, 0}},
               {cfsm::Rule{cfsm::presence("c"), {cfsm::Emit{"y", nullptr}}, {}}});
  const SymbolInfo syms = SymbolInfo::from(m);
  RoutineBuilder b(syms, "t");
  const int s1 = b.slot("a");
  EXPECT_EQ(b.slot("a"), s1);
  EXPECT_NE(b.slot("v_c"), s1);
  const CompiledReaction r = b.finish();
  ASSERT_EQ(r.copy_in.size(), 1u);  // one state variable
  EXPECT_EQ(r.slot_wrap_domain.at(r.copy_in[0].first), 4);
}

TEST(SymbolInfo, FromMachine) {
  cfsm::Cfsm m("m", {{"c", 4}, {"p", 1}}, {{"y", 8}}, {{"a", 4, 0}},
               {cfsm::Rule{cfsm::presence("c"),
                           {cfsm::Emit{"y", expr::constant(1)}},
                           {}}});
  const SymbolInfo s = SymbolInfo::from(m);
  EXPECT_EQ(s.state_vars, std::set<std::string>{"a"});
  EXPECT_EQ(s.presence_to_signal.at("present_c"), "c");
  EXPECT_EQ(s.presence_to_signal.at("present_p"), "p");
  EXPECT_EQ(s.input_value_vars, std::set<std::string>{"v_c"});
  EXPECT_EQ(s.signal_domain.at("y"), 8);
}

TEST(Machine, StateWriteWrapsToDomain) {
  cfsm::Cfsm m("m", {{"e", 1}}, {}, {{"a", 4, 3}},
               {cfsm::Rule{cfsm::presence("e"),
                           {},
                           {cfsm::Assign{
                               "a", expr::add(expr::var("a"),
                                              expr::constant(3))}}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kNaive);
  const CompiledReaction cr = compile(g, SymbolInfo::from(m));
  cfsm::Snapshot snap;
  snap.present["e"] = true;
  const cfsm::Reaction r =
      run_reaction(cr, hc11_like(), m, snap, {{"a", 3}});
  EXPECT_EQ(r.next_state.at("a"), 2);  // (3+3) mod 4
}

TEST(Machine, CopyInGivesSynchronousSemantics) {
  // b := a and a := a+1 in the same reaction must both read pre-state a.
  cfsm::Cfsm m("m", {{"e", 1}}, {}, {{"a", 8, 1}, {"b", 8, 0}},
               {cfsm::Rule{cfsm::presence("e"),
                           {},
                           {cfsm::Assign{"a", expr::add(expr::var("a"),
                                                        expr::constant(1))},
                            cfsm::Assign{"b", expr::var("a")}}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kNaive);
  const CompiledReaction cr = compile(g, SymbolInfo::from(m));
  cfsm::Snapshot snap;
  snap.present["e"] = true;
  const cfsm::Reaction r =
      run_reaction(cr, hc11_like(), m, snap, {{"a", 5}, {"b", 0}});
  EXPECT_EQ(r.next_state.at("a"), 6);
  EXPECT_EQ(r.next_state.at("b"), 5);
}

TEST(Machine, CyclesPositiveAndDependOnPath) {
  cfsm::Cfsm m("m", {{"e", 1}}, {{"y", 1}}, {},
               {cfsm::Rule{cfsm::presence("e"), {cfsm::Emit{"y", nullptr}}, {}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kNaive);
  const CompiledReaction cr = compile(g, SymbolInfo::from(m));
  long long hit = 0;
  long long miss = 0;
  cfsm::Snapshot with;
  with.present["e"] = true;
  run_reaction(cr, hc11_like(), m, with, {}, &hit);
  run_reaction(cr, hc11_like(), m, {}, {}, &miss);
  EXPECT_GT(hit, miss);  // emission path costs more
  EXPECT_GT(miss, 0);
}

TEST(Machine, MeasureTimingBracketsSinglePaths) {
  cfsm::Cfsm m("m", {{"e", 1}}, {{"y", 1}}, {},
               {cfsm::Rule{cfsm::presence("e"), {cfsm::Emit{"y", nullptr}}, {}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kNaive);
  const CompiledReaction cr = compile(g, SymbolInfo::from(m));
  const auto t = measure_timing(cr, hc11_like(), m);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->cases, 2u);
  EXPECT_LT(t->min_cycles, t->max_cycles);
  // The limit is honoured.
  EXPECT_FALSE(measure_timing(cr, hc11_like(), m, 1).has_value());
}

TEST(Machine, ProgramSizePositiveAndProfileDependent) {
  cfsm::Cfsm m("m", {{"c", 4}}, {{"y", 4}}, {{"a", 4, 0}},
               {cfsm::Rule{cfsm::presence("c"),
                           {cfsm::Emit{"y", cfsm::value_of("c")}},
                           {cfsm::Assign{"a", cfsm::value_of("c")}}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kNaive);
  const CompiledReaction cr = compile(g, SymbolInfo::from(m));
  const long long hc = cr.program.size_bytes(hc11_like());
  const long long rv = cr.program.size_bytes(risc32_like());
  EXPECT_GT(hc, 0);
  EXPECT_GT(rv, hc);  // RISC32 fixed-width encodings are bigger
}

TEST(Machine, MovAndComputedJumpSemantics) {
  // Micro-program: r0 := 2 via kMov, dispatch through a 3-entry jump table,
  // land on the entry that emits "hit".
  CompiledReaction cr;
  cr.program.name = "micro";
  using I = Instr;
  cr.program.code = {
      I{Opcode::kLdi, 1, 0, 0, 2, expr::Op::kAdd, ""},   // r1 = 2
      I{Opcode::kMov, 0, 1, 0, 0, expr::Op::kAdd, ""},   // r0 = r1
      I{Opcode::kJmpInd, 0, 3, 0, 0, expr::Op::kAdd, ""},// pc = 3 + r0
      I{Opcode::kRet, 0, 0, 0, 0, expr::Op::kAdd, ""},   // entry 0
      I{Opcode::kRet, 0, 0, 0, 0, expr::Op::kAdd, ""},   // entry 1
      I{Opcode::kEmit, 0, -1, 0, 0, expr::Op::kAdd, "hit"},  // entry 2
      I{Opcode::kRet, 0, 0, 0, 0, expr::Op::kAdd, ""},
  };
  const RunResult r = run(cr, hc11_like(), {},
                          [](const std::string&) { return false; });
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "hit");
}

TEST(Machine, CorruptBytecodeTrapsWithDiagnostic) {
  // Every index an instruction carries — register, memory slot, jump
  // target — must be validated before use, so corrupt bytecode traps as a
  // CheckError naming the offending pc instead of scribbling memory.
  using I = Instr;
  auto run_prog = [](std::vector<I> code,
                     std::vector<std::string> slots = {}) {
    CompiledReaction cr;
    cr.program.name = "corrupt";
    cr.program.code = std::move(code);
    cr.program.slot_names = std::move(slots);
    return run(cr, hc11_like(), {},
               [](const std::string&) { return false; });
  };
  const I ret{Opcode::kRet, 0, 0, 0, 0, expr::Op::kAdd, ""};

  // kLd from a slot past the memory table.
  EXPECT_THROW(
      run_prog({I{Opcode::kLd, 0, 999, 0, 0, expr::Op::kAdd, ""}, ret}, {"x"}),
      CheckError);
  // kSt to a negative slot.
  EXPECT_THROW(
      run_prog({I{Opcode::kSt, -3, 0, 0, 0, expr::Op::kAdd, ""}, ret}, {"x"}),
      CheckError);
  // kAlu destination register out of the 64-register file.
  EXPECT_THROW(
      run_prog({I{Opcode::kAlu, 70, 0, 0, 0, expr::Op::kAdd, ""}, ret}),
      CheckError);
  // kJmp to a negative target.
  EXPECT_THROW(run_prog({I{Opcode::kJmp, 0, -5, 0, 0, expr::Op::kAdd, ""}}),
               CheckError);
  // kJmpInd dispatching past the end of the program.
  EXPECT_THROW(
      run_prog({I{Opcode::kLdi, 0, 0, 0, 100, expr::Op::kAdd, ""},
                I{Opcode::kJmpInd, 0, 2, 0, 0, expr::Op::kAdd, ""}, ret}),
      CheckError);
  // kBrz taken towards an out-of-range target.
  EXPECT_THROW(run_prog({I{Opcode::kBrz, 0, 77, 0, 0, expr::Op::kAdd, ""}}),
               CheckError);

  // The diagnostic names the faulting pc and the bad operand.
  try {
    run_prog({I{Opcode::kJmp, 0, 42, 0, 0, expr::Op::kAdd, ""}});
    FAIL() << "out-of-range jump must trap";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pc 0"), std::string::npos) << what;
    EXPECT_NE(what.find("42"), std::string::npos) << what;
  }

  // A well-formed program still runs to completion.
  const RunResult ok = run_prog({I{Opcode::kLdi, 0, 0, 0, 7, expr::Op::kAdd,
                                   ""},
                                 I{Opcode::kSt, 0, 0, 0, 0, expr::Op::kAdd,
                                   ""},
                                 ret},
                                {"x"});
  EXPECT_EQ(ok.memory_out.at("x"), 7);
}

TEST(Machine, RunawayProgramDetected) {
  CompiledReaction cr;
  cr.program.name = "loop";
  cr.program.code = {
      Instr{Opcode::kJmp, 0, 0, 0, 0, expr::Op::kAdd, ""},  // jump to self
  };
  EXPECT_THROW(run(cr, hc11_like(), {},
                   [](const std::string&) { return false; }),
               CheckError);
}

// Property: VM execution of the compiled s-graph matches the reference
// semantics exhaustively for random machines, across ordering schemes.
class VmEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(VmEquivalence, CompiledCodeMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 677 + 211);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  for (auto scheme : {sgraph::OrderingScheme::kNaive,
                      sgraph::OrderingScheme::kSiftOutputsAfterSupport,
                      sgraph::OrderingScheme::kOutputsBeforeInputs,
                      sgraph::OrderingScheme::kFreeOrder}) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(rf, scheme);
    const CompiledReaction cr = compile(g, SymbolInfo::from(m));
    int bad = 0;
    const bool complete = cfsm::enumerate_concrete_space(
        m, 1u << 16,
        [&](const cfsm::Snapshot& snap,
            const std::map<std::string, std::int64_t>& st) {
          const cfsm::Reaction ref = m.react(snap, st);
          const cfsm::Reaction got =
              run_reaction(cr, hc11_like(), m, snap, st);
          if (!same_reaction(ref, got)) ++bad;
        });
    ASSERT_TRUE(complete);
    EXPECT_EQ(bad, 0) << "scheme " << sgraph::to_string(scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmEquivalence, ::testing::Range(0, 12));

}  // namespace
}  // namespace polis::vm
