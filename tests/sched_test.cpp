#include <gtest/gtest.h>

#include "sched/sched.hpp"
#include "util/check.hpp"

namespace polis::sched {
namespace {

TEST(Sched, Utilization) {
  const std::vector<Task> tasks{{"a", 1, 4, 0, 0}, {"b", 2, 8, 0, 0}};
  EXPECT_DOUBLE_EQ(utilization(tasks), 0.5);
  EXPECT_THROW(utilization({{"x", 1, 0, 0, 0}}), CheckError);
}

TEST(Sched, LiuLaylandBound) {
  // Classic: U = 0.5 passes for any n; two tasks pass up to 2(√2−1)≈0.828.
  EXPECT_TRUE(rm_utilization_test({{"a", 1, 4, 0, 0}, {"b", 2, 8, 0, 0}}));
  EXPECT_TRUE(rm_utilization_test({{"a", 2, 5, 0, 0}, {"b", 2, 5, 0, 0}}));  // 0.8
  EXPECT_FALSE(rm_utilization_test({{"a", 3, 5, 0, 0}, {"b", 2, 8, 0, 0}}));  // 0.85
  EXPECT_TRUE(rm_utilization_test({}));
}

TEST(Sched, ResponseTimeAnalysisClassicSet) {
  // Textbook task set (highest priority first): C/T = 3/7, 3/12, 5/20.
  const std::vector<Task> tasks{
      {"t1", 3, 7, 0, 0}, {"t2", 3, 12, 0, 0}, {"t3", 5, 20, 0, 0}};
  const auto r = response_times(tasks);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ((*r)[0], 3);
  EXPECT_DOUBLE_EQ((*r)[1], 6);
  EXPECT_DOUBLE_EQ((*r)[2], 20);
}

TEST(Sched, ResponseTimeDetectsOverload) {
  const std::vector<Task> tasks{{"t1", 5, 8, 0, 0}, {"t2", 5, 10, 0, 0}};
  EXPECT_FALSE(response_times(tasks).has_value());
}

TEST(Sched, JitterExtendsResponse) {
  const std::vector<Task> base{{"t1", 3, 10, 0, 0}};
  const std::vector<Task> jittered{{"t1", 3, 10, 0, 4}};
  EXPECT_DOUBLE_EQ((*response_times(base))[0], 3);
  EXPECT_DOUBLE_EQ((*response_times(jittered))[0], 7);
}

TEST(Sched, RmSufficientButNotNecessary) {
  // U = 1.0 with harmonic periods: fails the LL bound but passes exact RTA.
  const std::vector<Task> tasks{{"t1", 2, 4, 0, 0}, {"t2", 4, 8, 0, 0}};
  EXPECT_FALSE(rm_utilization_test(tasks));
  EXPECT_TRUE(response_times(tasks).has_value());
}

TEST(Sched, EdfExactAtFullUtilization) {
  EXPECT_TRUE(edf_test({{"a", 2, 4, 0, 0}, {"b", 4, 8, 0, 0}}));   // U = 1
  EXPECT_FALSE(edf_test({{"a", 3, 4, 0, 0}, {"b", 4, 8, 0, 0}}));  // U > 1
  // Constrained deadline raises the density.
  EXPECT_FALSE(edf_test({{"a", 2, 4, 2, 0}, {"b", 4, 8, 0, 0}}));
}

TEST(Sched, Orderings) {
  std::vector<Task> tasks{{"slow", 1, 100, 0, 0},
                          {"fast", 1, 10, 0, 0},
                          {"tight", 1, 50, 5, 0}};
  const auto rm = rate_monotonic_order(tasks);
  EXPECT_EQ(rm[0].name, "fast");
  EXPECT_EQ(rm[2].name, "slow");
  const auto dm = deadline_monotonic_order(tasks);
  EXPECT_EQ(dm[0].name, "tight");  // deadline 5 beats period 10
  EXPECT_EQ(dm[1].name, "fast");
}

TEST(Sched, EffectiveDeadlineDefaultsToPeriod) {
  const Task t{"x", 1, 20, 0, 0};
  EXPECT_DOUBLE_EQ(t.effective_deadline(), 20);
  const Task u{"y", 1, 20, 7, 0};
  EXPECT_DOUBLE_EQ(u.effective_deadline(), 7);
}

}  // namespace
}  // namespace polis::sched
