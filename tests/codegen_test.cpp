#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cfsm/reactive.hpp"
#include "codegen/c_codegen.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "cfsm/random.hpp"
#include "vm/compile.hpp"
#include "vm/machine.hpp"

namespace polis::codegen {
namespace {

cfsm::Cfsm simple_machine() {
  return cfsm::Cfsm(
      "simple", {{"c", 4}}, {{"y", 1}}, {{"a", 4, 0}},
      {
          cfsm::Rule{expr::land(cfsm::presence("c"),
                                expr::eq(expr::var("a"), cfsm::value_of("c"))),
                     {cfsm::Emit{"y", nullptr}},
                     {cfsm::Assign{"a", expr::constant(0)}}},
          cfsm::Rule{expr::land(cfsm::presence("c"),
                                expr::ne(expr::var("a"), cfsm::value_of("c"))),
                     {},
                     {cfsm::Assign{"a", expr::add(expr::var("a"),
                                                  expr::constant(1))}}},
      });
}

sgraph::Sgraph build(const cfsm::Cfsm& m, bdd::BddManager& mgr) {
  static std::map<const cfsm::Cfsm*, int> dummy;
  cfsm::ReactiveFunction rf(m, mgr);
  return sgraph::build_sgraph(rf,
                              sgraph::OrderingScheme::kSiftOutputsAfterSupport);
}

TEST(CCodegen, RoutineShape) {
  const cfsm::Cfsm m = simple_machine();
  bdd::BddManager mgr;
  const sgraph::Sgraph g = build(m, mgr);
  const std::string c = generate_c(g, m);
  EXPECT_NE(c.find("#include \"polis_rt.h\""), std::string::npos);
  EXPECT_NE(c.find("void cfsm_simple(void)"), std::string::npos);
  EXPECT_NE(c.find("long a__in = a;"), std::string::npos);  // copy-in (§V-B)
  EXPECT_NE(c.find("polis_detect(SIG_c)"), std::string::npos);
  EXPECT_NE(c.find("polis_emit(SIG_y)"), std::string::npos);
  EXPECT_NE(c.find("polis_consume()"), std::string::npos);
  EXPECT_NE(c.find("goto L"), std::string::npos);  // unstructured style
}

TEST(CCodegen, ProvenanceComments) {
  const cfsm::Cfsm m = simple_machine();
  bdd::BddManager mgr;
  const sgraph::Sgraph g = build(m, mgr);
  CCodegenOptions options;
  options.provenance_comments = true;
  const std::string c = generate_c(g, m, options);
  EXPECT_NE(c.find("/* s-graph vertex"), std::string::npos);
}

TEST(CCodegen, StandaloneShape) {
  const cfsm::Cfsm m = simple_machine();
  bdd::BddManager mgr;
  const sgraph::Sgraph g = build(m, mgr);
  const std::string c = generate_standalone_c(g, m);
  EXPECT_NE(c.find("int main(int argc, char **argv)"), std::string::npos);
  EXPECT_NE(c.find("static void reaction(void)"), std::string::npos);
  EXPECT_NE(c.find("polis_wrap"), std::string::npos);
  EXPECT_NE(c.find("printf(\"fired %d\\n\""), std::string::npos);
}

// End-to-end: compile the emitted C with the host compiler and compare its
// observable behaviour against the reference semantics on the full space.
// Skipped when no host C compiler is available.
TEST(CCodegen, EmittedCMatchesReferenceEndToEnd) {
  if (std::system("cc --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no host C compiler";

  const cfsm::Cfsm m = simple_machine();
  bdd::BddManager mgr;
  const sgraph::Sgraph g = build(m, mgr);
  const std::string c = generate_standalone_c(g, m);

  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/polis_simple.c";
  const std::string bin = dir + "/polis_simple";
  {
    std::ofstream out(src);
    out << c;
  }
  ASSERT_EQ(std::system(("cc -O1 -o " + bin + " " + src).c_str()), 0)
      << "generated C failed to compile";

  int checked = 0;
  cfsm::enumerate_concrete_space(
      m, 1000,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        const cfsm::Reaction ref = m.react(snap, st);
        // argv: presence(c), v_c, a
        std::ostringstream cmd;
        cmd << bin << " " << (snap.is_present("c") ? 1 : 0) << " "
            << snap.value_of("c") << " " << st.at("a");
        FILE* pipe = popen(cmd.str().c_str(), "r");
        ASSERT_NE(pipe, nullptr);
        std::string output;
        char buf[256];
        while (fgets(buf, sizeof buf, pipe) != nullptr) output += buf;
        pclose(pipe);

        const bool emitted_y = output.find("emit \"y\"") != std::string::npos ||
                               output.find("emit y") != std::string::npos;
        EXPECT_EQ(emitted_y, !ref.emissions.empty()) << cmd.str() << "\n"
                                                     << output;
        const std::string fired = "fired " + std::to_string(ref.fired ? 1 : 0);
        EXPECT_NE(output.find(fired), std::string::npos) << output;
        const std::string state =
            "state a " + std::to_string(ref.next_state.at("a"));
        EXPECT_NE(output.find(state), std::string::npos) << output;
        ++checked;
      });
  EXPECT_EQ(checked, 32);
}

// Division and modulo by zero are total in the reference semantics
// (expr::apply_op defines x/0 == x%0 == 0). The VM inherits that through
// apply_op; the emitted C must carry an explicit guard so all three
// backends agree on every concrete case, including zero divisors.
TEST(CCodegen, DivModByZeroAgreesAcrossBackends) {
  const cfsm::Cfsm m(
      "ratio", {{"a", 3}, {"b", 3}}, {{"y", 3}}, {{"s", 3, 0}},
      {cfsm::Rule{
          expr::land(cfsm::presence("a"), cfsm::presence("b")),
          {cfsm::Emit{"y",
                      expr::div(cfsm::value_of("a"), cfsm::value_of("b"))}},
          {cfsm::Assign{"s",
                        expr::mod(cfsm::value_of("a"), cfsm::value_of("b"))}}}});
  bdd::BddManager mgr;
  const sgraph::Sgraph g = build(m, mgr);
  const vm::CompiledReaction cr = vm::compile(g, vm::SymbolInfo::from(m));

  // The emitted C carries the guard, not a raw division.
  const std::string c = generate_standalone_c(g, m);
  EXPECT_NE(c.find("== 0 ? 0 :"), std::string::npos);

  const bool have_cc = std::system("cc --version > /dev/null 2>&1") == 0;
  const std::string bin = ::testing::TempDir() + "/polis_ratio";
  if (have_cc) {
    const std::string src = bin + ".c";
    std::ofstream out(src);
    out << c;
    out.close();
    ASSERT_EQ(std::system(("cc -O1 -o " + bin + " " + src).c_str()), 0)
        << "generated C failed to compile";
  }

  int zero_divisor_cases = 0;
  const bool complete = cfsm::enumerate_concrete_space(
      m, 4096,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        const cfsm::Reaction ref = m.react(snap, st);
        // Interpreter vs VM.
        const cfsm::Reaction got =
            vm::run_reaction(cr, vm::hc11_like(), m, snap, st);
        EXPECT_EQ(ref.fired, got.fired);
        EXPECT_EQ(ref.emissions, got.emissions);
        EXPECT_EQ(ref.next_state, got.next_state);
        const bool zero_div = snap.is_present("a") && snap.is_present("b") &&
                              snap.value_of("b") == 0;
        if (zero_div) {
          ++zero_divisor_cases;
          if (ref.fired) {
            ASSERT_EQ(ref.emissions.size(), 1u);
            EXPECT_EQ(ref.emissions[0].second, 0);  // x/0 == 0
            EXPECT_EQ(ref.next_state.at("s"), 0);   // x%0 == 0
          }
        }
        if (!have_cc) return;
        // Interpreter vs generated C run by the host toolchain.
        // argv: presence(a), presence(b), v_a, v_b, s.
        std::ostringstream cmd;
        cmd << bin << " " << (snap.is_present("a") ? 1 : 0) << " "
            << (snap.is_present("b") ? 1 : 0) << " " << snap.value_of("a")
            << " " << snap.value_of("b") << " " << st.at("s");
        FILE* pipe = popen(cmd.str().c_str(), "r");
        ASSERT_NE(pipe, nullptr);
        std::string output;
        char buf[256];
        while (fgets(buf, sizeof buf, pipe) != nullptr) output += buf;
        pclose(pipe);
        if (ref.fired) {
          const std::string emit =
              "emit y " + std::to_string(ref.emissions[0].second);
          EXPECT_NE(output.find(emit), std::string::npos)
              << cmd.str() << "\n" << output;
        }
        const std::string state =
            "state s " + std::to_string(ref.next_state.at("s"));
        EXPECT_NE(output.find(state), std::string::npos)
            << cmd.str() << "\n" << output;
      });
  ASSERT_TRUE(complete);
  EXPECT_GT(zero_divisor_cases, 0);
}

TEST(CCodegen, RandomMachineCCompiles) {
  if (std::system("cc --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no host C compiler";
  Rng rng(404);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng, {}, "r404");
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kNaive);
  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/polis_rand.c";
  {
    std::ofstream out(src);
    out << generate_standalone_c(g, m);
  }
  EXPECT_EQ(std::system(("cc -O1 -fsyntax-only " + src).c_str()), 0);
}

}  // namespace
}  // namespace polis::codegen
