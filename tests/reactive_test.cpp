#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "util/rng.hpp"

namespace polis::cfsm {
namespace {

Cfsm simple_machine(int dom = 4) {
  return Cfsm(
      "simple", {{"c", dom}}, {{"y", 1}}, {{"a", dom, 0}},
      {
          Rule{expr::land(presence("c"),
                          expr::eq(expr::var("a"), value_of("c"))),
               {Emit{"y", nullptr}},
               {Assign{"a", expr::constant(0)}}},
          Rule{expr::land(presence("c"),
                          expr::ne(expr::var("a"), value_of("c"))),
               {},
               {Assign{"a", expr::add(expr::var("a"), expr::constant(1))}}},
      });
}

TEST(Reactive, TestAndActionVariables) {
  const Cfsm m = simple_machine();
  bdd::BddManager mgr;
  ReactiveFunction rf(m, mgr);
  // Tests: present_c, a == v_c, a != v_c  (three distinct atoms).
  EXPECT_EQ(rf.tests().size(), 3u);
  EXPECT_TRUE(rf.tests()[0].is_presence);
  // Actions: emit_y, a:=0, a:=a+1, consume.
  EXPECT_EQ(rf.actions().size(), 4u);
  EXPECT_EQ(rf.actions().back().kind, ActionVariable::Kind::kConsume);
  EXPECT_EQ(rf.consume_var(), rf.actions().back().bdd_var);
  // Role queries.
  for (const TestVariable& t : rf.tests()) {
    EXPECT_TRUE(rf.is_test_var(t.bdd_var));
    EXPECT_FALSE(rf.is_action_var(t.bdd_var));
    EXPECT_EQ(&rf.test_of(t.bdd_var), &t);
  }
  for (const ActionVariable& a : rf.actions()) {
    EXPECT_TRUE(rf.is_action_var(a.bdd_var));
    EXPECT_EQ(&rf.action_of(a.bdd_var), &a);
  }
}

TEST(Reactive, ChiIsDeterministicAndComplete) {
  const Cfsm m = simple_machine();
  bdd::BddManager mgr;
  ReactiveFunction rf(m, mgr);
  std::vector<int> action_vars;
  for (const ActionVariable& a : rf.actions()) action_vars.push_back(a.bdd_var);

  // Completeness: for every test valuation there exists an action valuation.
  EXPECT_TRUE(mgr.smooth(rf.chi(), action_vars).is_one());

  // Determinism: for each test valuation exactly one action valuation, i.e.
  // |χ| == 2^#tests.
  const int total_vars = static_cast<int>(rf.tests().size() + rf.actions().size());
  EXPECT_DOUBLE_EQ(
      mgr.sat_count(rf.chi(), total_vars),
      std::pow(2.0, static_cast<double>(rf.tests().size())));
}

TEST(Reactive, ChiAgreesWithReferenceSemantics) {
  const Cfsm m = simple_machine();
  bdd::BddManager mgr;
  ReactiveFunction rf(m, mgr);

  enumerate_concrete_space(
      m, 1u << 12,
      [&](const Snapshot& snap, const std::map<std::string, std::int64_t>& st) {
        const Reaction ref = m.react(snap, st);
        const std::vector<bool> tv = rf.test_valuation(snap, st);

        // Read each action's value from its output function and check the
        // decoded reaction matches the reference.
        std::vector<bool> av;
        for (const ActionVariable& a : rf.actions()) {
          const bdd::Bdd g = rf.output_function(a.bdd_var);
          av.push_back(mgr.eval(g, [&](int var) {
            for (size_t i = 0; i < rf.tests().size(); ++i)
              if (rf.tests()[i].bdd_var == var) return static_cast<bool>(tv[i]);
            return false;
          }));
        }
        const Reaction got = rf.decode_actions(av, snap, st);
        EXPECT_EQ(got.fired, ref.fired);
        EXPECT_EQ(got.next_state, ref.next_state);
        // Emissions as multisets (decode order may differ).
        auto sorted = [](std::vector<std::pair<std::string, std::int64_t>> v) {
          std::sort(v.begin(), v.end());
          return v;
        };
        EXPECT_EQ(sorted(got.emissions), sorted(ref.emissions));
      });
}

TEST(Reactive, PrecedencePairsPointInputToOutput) {
  const Cfsm m = simple_machine();
  bdd::BddManager mgr;
  ReactiveFunction rf(m, mgr);
  for (const auto& [above, below] : rf.precedence_outputs_after_support()) {
    EXPECT_TRUE(rf.is_test_var(above));
    EXPECT_TRUE(rf.is_action_var(below));
  }
  const auto all = rf.precedence_outputs_after_all_inputs();
  EXPECT_EQ(all.size(), rf.tests().size() * rf.actions().size());
  // after_support is a subset of after_all_inputs.
  EXPECT_LE(rf.precedence_outputs_after_support().size(), all.size());
}

TEST(Reactive, CareSetExcludesContradictoryValuations) {
  const Cfsm m = simple_machine();
  bdd::BddManager mgr;
  ReactiveFunction rf(m, mgr);
  auto care = rf.reachable_care_set();
  ASSERT_TRUE(care.has_value());
  // a == v_c and a != v_c cannot be simultaneously true: that valuation is
  // outside the care set.
  int eq_var = -1;
  int ne_var = -1;
  for (const TestVariable& t : rf.tests()) {
    if (t.predicate->op() == expr::Op::kEq) eq_var = t.bdd_var;
    if (t.predicate->op() == expr::Op::kNe) ne_var = t.bdd_var;
  }
  ASSERT_GE(eq_var, 0);
  ASSERT_GE(ne_var, 0);
  const bdd::Bdd both = mgr.var(eq_var) & mgr.var(ne_var);
  EXPECT_TRUE((*care & both).is_zero());
  const bdd::Bdd neither = mgr.nvar(eq_var) & mgr.nvar(ne_var);
  EXPECT_TRUE((*care & neither).is_zero());
  // The limit is honoured.
  EXPECT_FALSE(rf.reachable_care_set(4).has_value());
}

TEST(Reactive, ActionLabels) {
  const Cfsm m = simple_machine();
  bdd::BddManager mgr;
  ReactiveFunction rf(m, mgr);
  bool saw_emit = false;
  bool saw_assign = false;
  bool saw_consume = false;
  for (const ActionVariable& a : rf.actions()) {
    const std::string label = a.label();
    EXPECT_FALSE(label.empty());
    saw_emit = saw_emit || label.find("emit_y") != std::string::npos;
    saw_assign = saw_assign || label.find(":=") != std::string::npos;
    saw_consume = saw_consume || label == "consume";
  }
  EXPECT_TRUE(saw_emit);
  EXPECT_TRUE(saw_assign);
  EXPECT_TRUE(saw_consume);
}

// Property: determinism/completeness of χ for random machines.
class ReactiveProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReactiveProperty, ChiDeterministicCompleteForRandomMachines) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const Cfsm m = random_cfsm(rng);
  bdd::BddManager mgr;
  ReactiveFunction rf(m, mgr);
  std::vector<int> action_vars;
  for (const ActionVariable& a : rf.actions()) action_vars.push_back(a.bdd_var);
  EXPECT_TRUE(mgr.smooth(rf.chi(), action_vars).is_one());
  const int total = static_cast<int>(rf.tests().size() + rf.actions().size());
  EXPECT_DOUBLE_EQ(mgr.sat_count(rf.chi(), total),
                   std::pow(2.0, static_cast<double>(rf.tests().size())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReactiveProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace polis::cfsm
