#include <gtest/gtest.h>

#include <map>

#include "baseline/boolnet.hpp"
#include "baseline/compose.hpp"
#include "baseline/multiway.hpp"
#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "vm/machine.hpp"

namespace polis::baseline {
namespace {

bool same_reaction(const cfsm::Reaction& a, const cfsm::Reaction& b) {
  auto sorted = [](std::vector<std::pair<std::string, std::int64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  return a.fired == b.fired && sorted(a.emissions) == sorted(b.emissions) &&
         a.next_state == b.next_state;
}

// --- Multiway --------------------------------------------------------------------

class MultiwayEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MultiwayEquivalence, MatchesReferenceExhaustively) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 389 + 7);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const auto mw = compile_multiway(rf);
  ASSERT_TRUE(mw.has_value());
  int bad = 0;
  cfsm::enumerate_concrete_space(
      m, 1u << 16,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        const cfsm::Reaction ref = m.react(snap, st);
        const cfsm::Reaction got =
            vm::run_reaction(mw->reaction, vm::hc11_like(), m, snap, st);
        if (!same_reaction(ref, got)) ++bad;
      });
  EXPECT_EQ(bad, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiwayEquivalence, ::testing::Range(0, 10));

TEST(Multiway, LargerThanDecisionGraph) {
  // Table II's reference row: the two-level jump structure beats nothing —
  // it is bulkier than the optimized decision graph on every dashboard CFSM.
  for (const auto& m : systems::dashboard_modules()) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*m, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    const vm::CompiledReaction dg = vm::compile(g, vm::SymbolInfo::from(*m));
    const auto mw = compile_multiway(rf);
    ASSERT_TRUE(mw.has_value()) << m->name();
    EXPECT_GT(mw->reaction.program.size_bytes(vm::hc11_like()),
              dg.program.size_bytes(vm::hc11_like()))
        << m->name();
  }
}

TEST(Multiway, StructuralEstimateTracksMeasurement) {
  // The `a + b·i` multiway parameters (§III-C1) feed a structural size/time
  // estimate that must track the VM measurement of the jump-table code.
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  for (const auto& m : systems::dashboard_modules()) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*m, mgr);
    const auto mw = compile_multiway(rf);
    ASSERT_TRUE(mw.has_value()) << m->name();
    const estim::Estimate e =
        estimate_multiway(*mw, rf, model, estim::context_for(*m));
    const long long measured = mw->reaction.program.size_bytes(vm::hc11_like());
    EXPECT_NEAR(static_cast<double>(e.size_bytes),
                static_cast<double>(measured),
                0.15 * static_cast<double>(measured))
        << m->name();
    const auto timing =
        vm::measure_timing(mw->reaction, vm::hc11_like(), *m, 1u << 18);
    ASSERT_TRUE(timing.has_value());
    EXPECT_LE(e.min_cycles, e.max_cycles);
    // The dispatch spine dominates: the estimate lands in the right band.
    EXPECT_NEAR(static_cast<double>(e.max_cycles),
                static_cast<double>(timing->max_cycles),
                0.35 * static_cast<double>(timing->max_cycles))
        << m->name();
  }
}

TEST(Multiway, RespectsExplosionLimit) {
  Rng rng(3);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  EXPECT_FALSE(compile_multiway(rf, 1).has_value());
}

// --- Boolnet ---------------------------------------------------------------------

// Interprets a Boolnet program over a concrete snapshot/state.
cfsm::Reaction run_boolnet(const BoolnetProgram& program, const cfsm::Cfsm& m,
                           const cfsm::Snapshot& snap,
                           const std::map<std::string, std::int64_t>& st) {
  std::map<std::string, std::int64_t> temps;
  const expr::Env env = [&](const std::string& name) -> std::int64_t {
    auto t = temps.find(name);
    if (t != temps.end()) return t->second;
    for (const cfsm::Signal& s : m.inputs()) {
      if (name == cfsm::presence_name(s.name)) return snap.is_present(s.name);
      if (!s.is_pure() && name == cfsm::value_name(s.name))
        return snap.value_of(s.name);
    }
    return st.at(name);
  };
  for (const BoolnetStep& step : program.steps)
    temps[step.temp] = expr::evaluate(*step.value, env);

  cfsm::Reaction out;
  out.next_state = st;
  for (const auto& [op, guard] : program.actions) {
    if (guard != nullptr && expr::evaluate(*guard, env) == 0) continue;
    switch (op.kind) {
      case sgraph::ActionOp::Kind::kConsume:
        out.fired = true;
        break;
      case sgraph::ActionOp::Kind::kEmitPure:
        out.emissions.emplace_back(op.target, 0);
        break;
      case sgraph::ActionOp::Kind::kEmitValued:
        out.emissions.emplace_back(
            op.target,
            cfsm::wrap_to_domain(expr::evaluate(*op.value, env),
                                 m.find_output(op.target)->domain));
        break;
      case sgraph::ActionOp::Kind::kAssignVar:
        out.next_state[op.target] =
            cfsm::wrap_to_domain(expr::evaluate(*op.value, env),
                                 m.find_state(op.target)->domain);
        break;
    }
  }
  return out;
}

class BoolnetEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BoolnetEquivalence, MatchesReferenceExhaustively) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 523 + 19);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const BoolnetProgram program = build_boolnet(rf);
  int bad = 0;
  cfsm::enumerate_concrete_space(
      m, 1u << 16,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        const cfsm::Reaction ref = m.react(snap, st);
        const cfsm::Reaction got = run_boolnet(program, m, snap, st);
        if (!same_reaction(ref, got)) ++bad;
      });
  EXPECT_EQ(bad, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoolnetEquivalence, ::testing::Range(0, 10));

TEST(Boolnet, SharedNodesBecomeTemps) {
  // The belt CFSM's output functions share BDD structure.
  const auto modules = systems::dashboard_modules();
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*modules[0], mgr);  // belt
  const BoolnetProgram p = build_boolnet(rf);
  EXPECT_GT(p.shared_nodes, 0u);
  EXPECT_EQ(p.steps.size(), p.shared_nodes);
  const std::string c = boolnet_to_c(p);
  EXPECT_NE(c.find("__t0"), std::string::npos);
}

TEST(Boolnet, EstimateLargerThanDecisionGraph) {
  // The paper's finding: the outputs-before-inputs Boolean-network style
  // yields larger code than the BDD decision graph (§III-B3c, Table III).
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  for (const auto& m : systems::dashboard_modules()) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*m, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    const estim::Estimate dg = estim::estimate(g, model, estim::context_for(*m));
    const BoolnetProgram p = build_boolnet(rf);
    const estim::Estimate bn = estimate_boolnet(p, model, estim::context_for(*m));
    EXPECT_GE(bn.size_bytes, dg.size_bytes) << m->name();
    EXPECT_LE(bn.min_cycles, bn.max_cycles);
  }
}

// --- Synchronous composition ---------------------------------------------------

TEST(Compose, SimplePipelineSemantics) {
  // in -> inc -> double -> out, zero-delay within a tick.
  auto inc = std::make_shared<cfsm::Cfsm>(
      "inc", std::vector<cfsm::Signal>{{"x", 4}},
      std::vector<cfsm::Signal>{{"m", 4}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{cfsm::Rule{
          cfsm::presence("x"),
          {cfsm::Emit{"m", expr::add(cfsm::value_of("x"), expr::constant(1))}},
          {}}});
  auto dbl = std::make_shared<cfsm::Cfsm>(
      "dbl", std::vector<cfsm::Signal>{{"m", 4}},
      std::vector<cfsm::Signal>{{"y", 8}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{cfsm::Rule{
          cfsm::presence("m"),
          {cfsm::Emit{"y", expr::mul(cfsm::value_of("m"), expr::constant(2))}},
          {}}});
  cfsm::Network net("pipe");
  net.add_instance("a", inc);
  net.add_instance("b", dbl);

  const auto result = synchronous_compose(net);
  ASSERT_TRUE(result.has_value());
  const cfsm::Cfsm& c = *result->machine;
  EXPECT_EQ(c.inputs().size(), 1u);
  EXPECT_EQ(c.outputs().size(), 1u);

  cfsm::Snapshot snap;
  snap.present["x"] = true;
  snap.value["x"] = 2;
  const cfsm::Reaction r = c.react(snap, c.initial_state());
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "y");
  EXPECT_EQ(r.emissions[0].second, 6);  // (2+1)*2
}

TEST(Compose, StatefulChainMatchesManualTicks) {
  const auto net = systems::dash_core_network();
  const auto result = synchronous_compose(*net);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->reachable_states, 1u);
  EXPECT_GT(result->rules, result->reachable_states);

  // Drive the composed machine with a pulse/tick sequence and check the
  // wheel-speed chain behaviour: pulses are debounced, counted per window,
  // and reported once per change.
  const cfsm::Cfsm& c = *result->machine;
  auto state = c.initial_state();
  int pwm_count = 0;
  for (int step = 0; step < 40; ++step) {
    cfsm::Snapshot snap;
    snap.present["wheel_raw"] = true;       // pulse every step
    snap.present["timer"] = step % 8 == 7;  // tick every 8th
    const cfsm::Reaction r = c.react(snap, state);
    state = r.next_state;
    for (const auto& [net_name, v] : r.emissions) {
      (void)v;
      if (net_name == "speed_pwm") ++pwm_count;
    }
  }
  EXPECT_GT(pwm_count, 0);
}

TEST(Compose, RejectsCyclesAndRespectsLimit) {
  auto relay = std::make_shared<cfsm::Cfsm>(
      "relay", std::vector<cfsm::Signal>{{"i", 1}},
      std::vector<cfsm::Signal>{{"o", 1}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{cfsm::presence("i"), {cfsm::Emit{"o", nullptr}}, {}}});
  cfsm::Network loop("loop");
  loop.add_instance("u", relay, {{"i", "w1"}, {"o", "w2"}});
  loop.add_instance("v", relay, {{"i", "w2"}, {"o", "w1"}});
  EXPECT_FALSE(synchronous_compose(loop).has_value());

  ComposeOptions tiny;
  tiny.explosion_limit = 1;
  EXPECT_FALSE(synchronous_compose(*systems::dash_core_network(), tiny)
                   .has_value());
}

TEST(Compose, ComposedCodeLargerThanSumOfParts) {
  // Table III's shape: the explicit single FSM costs more bytes than the
  // per-CFSM POLIS synthesis of the same sub-network.
  const auto net = systems::dash_core_network();
  const auto composed = synchronous_compose(*net);
  ASSERT_TRUE(composed.has_value());

  long long parts = 0;
  for (const cfsm::Instance& inst : net->instances()) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*inst.machine, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    parts += vm::compile(g, vm::SymbolInfo::from(*inst.machine))
                 .program.size_bytes(vm::hc11_like());
  }

  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(*composed->machine, mgr);
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kNaive);
  const long long whole =
      vm::compile(g, vm::SymbolInfo::from(*composed->machine))
          .program.size_bytes(vm::hc11_like());
  EXPECT_GT(whole, parts);
}

}  // namespace
}  // namespace polis::baseline
