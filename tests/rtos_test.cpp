#include <gtest/gtest.h>

#include <sstream>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "rtos/codegen.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "rtos/vcd.hpp"
#include "util/rng.hpp"

namespace polis::rtos {
namespace {

// Relay: forwards input event `i` to output `o`.
std::shared_ptr<cfsm::Cfsm> relay(const std::string& name) {
  return std::make_shared<cfsm::Cfsm>(
      name, std::vector<cfsm::Signal>{{"i", 1}},
      std::vector<cfsm::Signal>{{"o", 1}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{cfsm::presence("i"), {cfsm::Emit{"o", nullptr}}, {}}});
}

TEST(Rtos, SingleRelayDeliversEndToEnd) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosSimulation sim(net, RtosConfig{});
  sim.set_reference_task("r", 100);

  const SimStats stats = sim.run({{0, "in", 0}, {5000, "in", 0}});
  ASSERT_EQ(stats.outputs.size(), 2u);
  EXPECT_EQ(stats.outputs[0].net, "out");
  EXPECT_EQ(stats.reactions_run, 2);
  EXPECT_EQ(stats.empty_reactions, 0);
  EXPECT_GT(stats.busy_cycles, 0);
  // Latency = reaction time + context switch.
  ASSERT_EQ(stats.input_to_output_latency.at("out").size(), 2u);
  EXPECT_GE(stats.input_to_output_latency.at("out")[0], 100);
}

TEST(Rtos, PipelineLatencyAccumulates) {
  cfsm::Network net("pipe");
  net.add_instance("a", relay("r1"), {{"i", "in"}, {"o", "mid"}});
  net.add_instance("b", relay("r2"), {{"i", "mid"}, {"o", "out"}});
  RtosSimulation sim(net, RtosConfig{});
  sim.set_reference_task("a", 100);
  sim.set_reference_task("b", 100);
  const SimStats stats = sim.run({{0, "in", 0}});
  ASSERT_EQ(stats.outputs.size(), 1u);
  EXPECT_GE(stats.input_to_output_latency.at("out")[0], 200);
}

TEST(Rtos, OverwriteLosesEvent) {
  // Two stimuli arrive while the single consumer is busy with a long
  // reaction of another task: the 1-place buffer overwrites.
  cfsm::Network net("n");
  net.add_instance("slow", relay("rs"), {{"i", "trigger"}, {"o", "sink1"}});
  net.add_instance("fast", relay("rf"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.policy = RtosConfig::Policy::kStaticPriority;
  config.priority = {{"slow", 1}, {"fast", 2}};
  RtosSimulation sim(net, config);
  sim.set_reference_task("slow", 10'000);
  sim.set_reference_task("fast", 100);
  // trigger at t=0 starts the long reaction; both "in" events arrive during
  // it and land in the same 1-place buffer.
  const SimStats stats =
      sim.run({{0, "trigger", 0}, {100, "in", 0}, {200, "in", 0}});
  EXPECT_EQ(stats.lost_events.at("in"), 1);
  EXPECT_EQ(stats.outputs.size(), 2u);  // sink1 + only one out
}

TEST(Rtos, LostEventCountsAtDeliverySite) {
  // Three stimuli land in the same 1-place buffer while a higher-priority
  // long reaction holds the CPU: exactly 2 of them are overwritten at the
  // delivery site (rtos.cpp's deliver_to_consumers), under both delivery
  // disciplines.
  cfsm::Network net("n");
  net.add_instance("busy", relay("rb"), {{"i", "trigger"}, {"o", "sink"}});
  net.add_instance("u", relay("ru"), {{"i", "a"}, {"o", "out"}});
  const std::vector<ExternalEvent> events = {
      {0, "trigger", 0}, {100, "a", 0}, {200, "a", 0}, {300, "a", 0}};

  auto run_with = [&](RtosConfig::HwDelivery delivery) {
    RtosConfig config;
    config.policy = RtosConfig::Policy::kStaticPriority;
    config.priority = {{"busy", 1}, {"u", 2}};
    config.delivery = delivery;
    config.polling_period = 2000;
    RtosSimulation sim(net, config);
    sim.set_reference_task("busy", 10'000);
    sim.set_reference_task("u", 100);
    return sim.run(events);
  };

  // Interrupt: all three "a" events are delivered while "busy" runs.
  const SimStats by_interrupt = run_with(RtosConfig::HwDelivery::kInterrupt);
  EXPECT_EQ(by_interrupt.lost_events.at("a"), 2);
  EXPECT_EQ(by_interrupt.outputs.size(), 2u);  // sink + a single out

  // Polling: all three collapse onto the same polling tick back to back.
  const SimStats by_polling = run_with(RtosConfig::HwDelivery::kPolling);
  EXPECT_EQ(by_polling.lost_events.at("a"), 2);
  EXPECT_EQ(by_polling.outputs.size(), 2u);
}

TEST(Rtos, LostEventCountsAtPreservedMergeSite) {
  // §IV-D: a non-firing reaction preserves its events; an arrival buffered
  // during that reaction collides with the preserved event at the merge in
  // run_task. Exactly 1 loss, under both delivery disciplines.
  auto both = std::make_shared<cfsm::Cfsm>(
      "both", std::vector<cfsm::Signal>{{"a", 1}, {"b", 1}},
      std::vector<cfsm::Signal>{{"o", 1}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{expr::land(cfsm::presence("a"), cfsm::presence("b")),
                     {cfsm::Emit{"o", nullptr}},
                     {}}});
  cfsm::Network net("n");
  net.add_instance("u", both);

  {
    // Interrupt: a@0 starts a 1000-cycle no-fire reaction; a@500 lands
    // mid-run, is buffered, and overwrites the preserved event afterwards.
    RtosSimulation sim(net, RtosConfig{});
    sim.set_reference_task("u", 1000);
    const SimStats stats = sim.run({{0, "a", 0}, {500, "a", 0}});
    EXPECT_EQ(stats.lost_events.at("a"), 1);
    EXPECT_EQ(stats.reactions_run, 2);   // the merged event re-enables u
    EXPECT_EQ(stats.empty_reactions, 2); // b never arrives
    EXPECT_TRUE(stats.outputs.empty());
  }
  {
    // Polling (period 2000): a@0 is seen at t=2000 and starts a 3000-cycle
    // reaction; a@2500 is seen at the t=4000 tick, inside that reaction.
    RtosConfig config;
    config.delivery = RtosConfig::HwDelivery::kPolling;
    config.polling_period = 2000;
    RtosSimulation sim(net, config);
    sim.set_reference_task("u", 3000);
    const SimStats stats = sim.run({{0, "a", 0}, {2500, "a", 0}});
    EXPECT_EQ(stats.lost_events.at("a"), 1);
    EXPECT_EQ(stats.reactions_run, 2);
    EXPECT_EQ(stats.empty_reactions, 2);
    EXPECT_TRUE(stats.outputs.empty());
  }
}

TEST(Rtos, EventsPreservedWhenNoRuleFires) {
  // A machine that only reacts when both a and b are present; a alone must
  // be preserved (§IV-D) and consumed once b arrives.
  auto both = std::make_shared<cfsm::Cfsm>(
      "both", std::vector<cfsm::Signal>{{"a", 1}, {"b", 1}},
      std::vector<cfsm::Signal>{{"o", 1}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{expr::land(cfsm::presence("a"), cfsm::presence("b")),
                     {cfsm::Emit{"o", nullptr}},
                     {}}});
  cfsm::Network net("n");
  net.add_instance("u", both);
  RtosSimulation sim(net, RtosConfig{});
  sim.set_reference_task("u", 50);
  const SimStats stats = sim.run({{0, "a", 0}, {10'000, "b", 0}});
  EXPECT_EQ(stats.reactions_run, 2);
  EXPECT_EQ(stats.empty_reactions, 1);  // the a-only execution
  ASSERT_EQ(stats.outputs.size(), 1u);  // fired when b arrived, a preserved
  EXPECT_EQ(stats.outputs[0].net, "o");
}

TEST(Rtos, SnapshotFrozenDuringExecution) {
  // §IV-D scenario: b arrives while the task is running; it must be seen in
  // a *later* snapshot, not merged into the active one.
  auto both = std::make_shared<cfsm::Cfsm>(
      "both", std::vector<cfsm::Signal>{{"a", 1}, {"b", 1}},
      std::vector<cfsm::Signal>{{"o", 1}, {"partial", 1}},
      std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{expr::land(cfsm::presence("a"), cfsm::presence("b")),
                     {cfsm::Emit{"o", nullptr}},
                     {}},
          cfsm::Rule{cfsm::presence("a"),
                     {cfsm::Emit{"partial", nullptr}},
                     {}}});
  cfsm::Network net("n");
  net.add_instance("u", both);
  RtosSimulation sim(net, RtosConfig{});
  sim.set_reference_task("u", 1000);
  // a at t=0 starts the reaction; b lands mid-execution (t=500).
  const SimStats stats = sim.run({{0, "a", 0}, {500, "b", 0}});
  // First reaction sees only a -> partial; second sees only b -> empty
  // (preserved); never the impossible {a,b} snapshot.
  ASSERT_GE(stats.outputs.size(), 1u);
  EXPECT_EQ(stats.outputs[0].net, "partial");
  for (const ObservedEmission& e : stats.outputs) EXPECT_NE(e.net, "o");
}

TEST(Rtos, RoundRobinIsFair) {
  cfsm::Network net("n");
  net.add_instance("a", relay("ra"), {{"i", "ia"}, {"o", "oa"}});
  net.add_instance("b", relay("rb"), {{"i", "ib"}, {"o", "ob"}});
  RtosSimulation sim(net, RtosConfig{});
  sim.set_reference_task("a", 100);
  sim.set_reference_task("b", 100);
  // Both enabled at t=0; round-robin runs a then b (declaration order).
  const SimStats stats = sim.run({{0, "ia", 0}, {0, "ib", 0}});
  ASSERT_EQ(stats.outputs.size(), 2u);
  EXPECT_EQ(stats.outputs[0].net, "oa");
  EXPECT_EQ(stats.outputs[1].net, "ob");
}

TEST(Rtos, StaticPriorityOrdersExecution) {
  cfsm::Network net("n");
  net.add_instance("a", relay("ra"), {{"i", "ia"}, {"o", "oa"}});
  net.add_instance("b", relay("rb"), {{"i", "ib"}, {"o", "ob"}});
  RtosConfig config;
  config.policy = RtosConfig::Policy::kStaticPriority;
  config.priority = {{"a", 10}, {"b", 1}};  // b higher priority
  RtosSimulation sim(net, config);
  sim.set_reference_task("a", 100);
  sim.set_reference_task("b", 100);
  const SimStats stats = sim.run({{0, "ia", 0}, {0, "ib", 0}});
  ASSERT_EQ(stats.outputs.size(), 2u);
  EXPECT_EQ(stats.outputs[0].net, "ob");  // b ran first
}

TEST(Rtos, PreemptionShortensHighPriorityLatency) {
  cfsm::Network net("n");
  net.add_instance("slow", relay("rs"), {{"i", "is"}, {"o", "os"}});
  net.add_instance("hot", relay("rh"), {{"i", "ih"}, {"o", "oh"}});

  auto run_with = [&](bool preemptive) {
    RtosConfig config;
    config.policy = RtosConfig::Policy::kStaticPriority;
    config.preemptive = preemptive;
    config.priority = {{"slow", 10}, {"hot", 1}};
    RtosSimulation sim(net, config);
    sim.set_reference_task("slow", 100'000);
    sim.set_reference_task("hot", 100);
    // slow starts at 0; the urgent event arrives mid-flight.
    const SimStats stats = sim.run({{0, "is", 0}, {1000, "ih", 0}});
    return stats.input_to_output_latency.at("oh")[0];
  };

  const long long np = run_with(false);
  const long long p = run_with(true);
  EXPECT_LT(p, np);
  EXPECT_LT(p, 10'000);    // served promptly under preemption
  EXPECT_GT(np, 90'000);   // had to wait for the slow reaction
}

TEST(Rtos, PollingDelaysDelivery) {
  cfsm::Network net("n");
  net.add_instance("r", relay("rr"), {{"i", "in"}, {"o", "out"}});

  auto latency_with = [&](RtosConfig::HwDelivery delivery) {
    RtosConfig config;
    config.delivery = delivery;
    config.polling_period = 5000;
    RtosSimulation sim(net, config);
    sim.set_reference_task("r", 100);
    const SimStats stats = sim.run({{1, "in", 0}});
    return stats.input_to_output_latency.at("out")[0];
  };

  const long long by_interrupt = latency_with(RtosConfig::HwDelivery::kInterrupt);
  const long long by_polling = latency_with(RtosConfig::HwDelivery::kPolling);
  EXPECT_GT(by_polling, by_interrupt);
  EXPECT_GE(by_polling, 4999);  // waited for the next polling tick
}

TEST(Rtos, ValuedEventsCarryValues) {
  auto scale = std::make_shared<cfsm::Cfsm>(
      "scale", std::vector<cfsm::Signal>{{"x", 8}},
      std::vector<cfsm::Signal>{{"y", 16}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{cfsm::Rule{
          cfsm::presence("x"),
          {cfsm::Emit{"y", expr::mul(cfsm::value_of("x"), expr::constant(2))}},
          {}}});
  cfsm::Network net("n");
  net.add_instance("s", scale);
  RtosSimulation sim(net, RtosConfig{});
  sim.set_reference_task("s", 10);
  const SimStats stats = sim.run({{0, "x", 5}});
  ASSERT_EQ(stats.outputs.size(), 1u);
  EXPECT_EQ(stats.outputs[0].value, 10);
}

TEST(Trace, PeriodicAndPoissonGenerators) {
  const auto periodic =
      periodic_trace(PeriodicSource{"t", 100, 0, 0.0, 1}, 1000);
  EXPECT_EQ(periodic.size(), 11u);
  EXPECT_EQ(periodic[3].time, 300);

  Rng rng(1);
  const auto poisson = poisson_trace("p", 50.0, 10'000, rng);
  EXPECT_GT(poisson.size(), 100u);  // mean gap 50 over 10k
  for (size_t i = 1; i < poisson.size(); ++i)
    EXPECT_GE(poisson[i].time, poisson[i - 1].time);

  const auto merged = merge_traces({periodic, poisson});
  EXPECT_EQ(merged.size(), periodic.size() + poisson.size());
  for (size_t i = 1; i < merged.size(); ++i)
    EXPECT_GE(merged[i].time, merged[i - 1].time);
}

TEST(Rtos, IsrExecutedEventsGetImmediateAttention) {
  // §IV-C: consumers of a designated event run inside the ISR, ahead of the
  // scheduling policy — even while a long unrelated reaction occupies the
  // CPU under a *non-preemptive* configuration.
  cfsm::Network net("n");
  net.add_instance("slow", relay("rs"), {{"i", "is"}, {"o", "os"}});
  net.add_instance("critical", relay("rc"), {{"i", "panic"}, {"o", "horn"}});

  auto latency_with = [&](bool isr_executed) {
    RtosConfig config;  // round-robin, non-preemptive
    if (isr_executed) config.isr_executed_events.insert("panic");
    RtosSimulation sim(net, config);
    sim.set_reference_task("slow", 100'000);
    sim.set_reference_task("critical", 100);
    const SimStats stats = sim.run({{0, "is", 0}, {1000, "panic", 0}});
    return stats.input_to_output_latency.at("horn")[0];
  };

  const long long normal = latency_with(false);
  const long long immediate = latency_with(true);
  EXPECT_GT(normal, 90'000);    // waited behind the long reaction
  EXPECT_LT(immediate, 1'000);  // served inside the ISR
}

TEST(Rtos, HardwareInstancesReactOffCpu) {
  // The co-design dimension: move the first pipeline stage to hardware.
  // It reacts instantly at delivery (1 cycle), occupies no CPU, and the
  // software stage still works — latency drops by one software reaction.
  cfsm::Network net("pipe");
  net.add_instance("front", relay("r1"), {{"i", "in"}, {"o", "mid"}});
  net.add_instance("back", relay("r2"), {{"i", "mid"}, {"o", "out"}});

  auto run_with = [&](bool front_in_hw) {
    RtosConfig config;
    if (front_in_hw) config.hardware_instances.insert("front");
    RtosSimulation sim(net, config);
    sim.set_reference_task("front", 5'000);  // expensive in software
    sim.set_reference_task("back", 100);
    return sim.run({{0, "in", 0}});
  };

  const SimStats sw = run_with(false);
  const SimStats hw = run_with(true);
  ASSERT_EQ(sw.outputs.size(), 1u);
  ASSERT_EQ(hw.outputs.size(), 1u);
  // The hw partition removes the front stage's CPU time entirely...
  EXPECT_LT(hw.busy_cycles, sw.busy_cycles - 4'000);
  // ...and the end-to-end latency collapses to the software tail.
  EXPECT_LT(hw.input_to_output_latency.at("out")[0],
            sw.input_to_output_latency.at("out")[0] - 4'000);
  EXPECT_EQ(hw.reactions_run, 2);  // the hw reaction is still counted
}

TEST(Rtos, HardwareChainCascadesInstantly) {
  // Two hw stages back to back: the whole chain completes in wall-clock
  // cycles without touching the scheduler.
  cfsm::Network net("hwpipe");
  net.add_instance("h1", relay("r1"), {{"i", "in"}, {"o", "mid"}});
  net.add_instance("h2", relay("r2"), {{"i", "mid"}, {"o", "out"}});
  RtosConfig config;
  config.hardware_instances = {"h1", "h2"};
  config.hw_reaction_cycles = 2;
  RtosSimulation sim(net, config);
  sim.set_reference_task("h1", 999'999);  // cycle cost ignored in hardware
  sim.set_reference_task("h2", 999'999);
  const SimStats stats = sim.run({{100, "in", 0}});
  ASSERT_EQ(stats.outputs.size(), 1u);
  EXPECT_EQ(stats.outputs[0].time, 104);  // 100 + 2 + 2
  EXPECT_EQ(stats.busy_cycles, 0);        // CPU never ran
}

TEST(Rtos, ChainingCutsSchedulingOverhead) {
  // §IV-A: chained executions bypass the RTOS. The two-stage pipeline's
  // end-to-end latency and total overhead drop when the stages are chained.
  cfsm::Network net("pipe");
  net.add_instance("a", relay("r1"), {{"i", "in"}, {"o", "mid"}});
  net.add_instance("b", relay("r2"), {{"i", "mid"}, {"o", "out"}});

  auto run_with = [&](bool chained) {
    RtosConfig config;
    config.context_switch_cycles = 500;
    if (chained) config.chains = {{"a", "b"}};
    RtosSimulation sim(net, config);
    sim.set_reference_task("a", 100);
    sim.set_reference_task("b", 100);
    return sim.run({{0, "in", 0}, {10'000, "in", 0}});
  };

  const SimStats plain = run_with(false);
  const SimStats chained = run_with(true);
  EXPECT_EQ(plain.outputs.size(), chained.outputs.size());
  EXPECT_LT(chained.overhead_cycles, plain.overhead_cycles);
  EXPECT_LT(chained.input_to_output_latency.at("out")[0],
            plain.input_to_output_latency.at("out")[0]);
  // The saving is roughly one context switch per chained hop.
  EXPECT_GE(plain.overhead_cycles - chained.overhead_cycles, 2 * 400);
}

TEST(Rtos, ChainOrderOnlyForwards) {
  // A chain {b, a} must not accelerate the a->b direction (only *later*
  // members run chained).
  cfsm::Network net("pipe");
  net.add_instance("a", relay("r1"), {{"i", "in"}, {"o", "mid"}});
  net.add_instance("b", relay("r2"), {{"i", "mid"}, {"o", "out"}});
  RtosConfig config;
  config.context_switch_cycles = 500;
  config.chains = {{"b", "a"}};  // wrong direction: no effect
  RtosSimulation sim(net, config);
  sim.set_reference_task("a", 100);
  sim.set_reference_task("b", 100);
  const SimStats stats = sim.run({{0, "in", 0}});
  ASSERT_EQ(stats.outputs.size(), 1u);
  // Two full context switches were paid.
  EXPECT_GE(stats.overhead_cycles, 1000);
}

TEST(Rtos, EventLogRecordsActivationsAndEmissions) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.collect_log = true;
  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run({{10, "in", 0}});
  ASSERT_FALSE(stats.log.empty());
  bool saw_start = false;
  bool saw_end = false;
  bool saw_emit = false;
  long long last_time = 0;
  for (const LogEvent& e : stats.log) {
    EXPECT_GE(e.time, last_time);  // time-ordered
    last_time = e.time;
    saw_start = saw_start || (e.kind == LogEvent::Kind::kTaskStart &&
                              e.subject == "r");
    saw_end = saw_end || (e.kind == LogEvent::Kind::kTaskEnd &&
                          e.subject == "r");
    saw_emit = saw_emit || (e.kind == LogEvent::Kind::kEmission &&
                            e.subject == "out");
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_emit);
  // Logging is off by default.
  RtosSimulation quiet(net, RtosConfig{});
  quiet.set_reference_task("r", 100);
  EXPECT_TRUE(quiet.run({{10, "in", 0}}).log.empty());
}

TEST(Rtos, VcdExportWellFormed) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  RtosConfig config;
  config.collect_log = true;
  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run({{10, "in", 0}, {500, "in", 0}});

  std::ostringstream os;
  write_vcd(net, stats, os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale 1us $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find(" r $end"), std::string::npos);    // task wire
  EXPECT_NE(vcd.find(" out $end"), std::string::npos);  // net wire
  // Timestamps present and the document ends with one.
  EXPECT_NE(vcd.find("\n#"), std::string::npos);
}

TEST(RtosCodegen, HeaderAndSchedulerShape) {
  cfsm::Network net("pair");
  net.add_instance("a", relay("r1"), {{"i", "in"}, {"o", "mid"}});
  net.add_instance("b", relay("r2"), {{"i", "mid"}, {"o", "out"}});

  const std::string header = generate_rt_header(net);
  EXPECT_NE(header.find("#define SIG_in"), std::string::npos);
  EXPECT_NE(header.find("#define SIG_mid"), std::string::npos);
  EXPECT_NE(header.find("int  polis_detect(int sig);"), std::string::npos);

  RtosConfig config;
  const std::string c = generate_rtos_c(net, config);
  EXPECT_NE(c.find("#define N_TASKS 2"), std::string::npos);
  EXPECT_NE(c.find("polis_scheduler_step"), std::string::npos);
  EXPECT_NE(c.find("sensitivity"), std::string::npos);
  // Task entry points are named after the *instances* so that several
  // instances of one module coexist.
  EXPECT_NE(c.find("cfsm_a"), std::string::npos);
  EXPECT_NE(c.find("cfsm_b"), std::string::npos);
  EXPECT_NE(c.find("polis_value"), std::string::npos);
  EXPECT_NE(c.find("polis_isr"), std::string::npos);  // interrupt delivery

  config.policy = RtosConfig::Policy::kStaticPriority;
  config.delivery = RtosConfig::HwDelivery::kPolling;
  const std::string c2 = generate_rtos_c(net, config);
  EXPECT_NE(c2.find("task_priority[t] < task_priority[best]"),
            std::string::npos);
  EXPECT_NE(c2.find("polis_poll"), std::string::npos);
}

}  // namespace
}  // namespace polis::rtos
