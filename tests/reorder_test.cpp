#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/reorder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace polis::bdd {
namespace {

TEST(Reorder, OrderRespectsPrecedence) {
  EXPECT_TRUE(order_respects({0, 1, 2}, {{0, 1}, {1, 2}}));
  EXPECT_FALSE(order_respects({1, 0, 2}, {{0, 1}}));
  EXPECT_TRUE(order_respects({2, 0, 1}, {}));
}

TEST(Sift, RecoversInterleavingForDisjointAnds) {
  // Classic: Σ x_i & y_i needs interleaved variables; sifting must find an
  // order close to the optimum starting from the bad separated one.
  const int k = 4;
  BddManager mgr(2 * k);
  Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));

  const size_t bad = mgr.node_count(f);
  std::vector<int> interleaved;
  for (int i = 0; i < k; ++i) {
    interleaved.push_back(i);
    interleaved.push_back(i + k);
  }
  const size_t optimal = mgr.size_under_order(interleaved);
  SiftOptions options;
  options.passes = 3;
  options.verify_with_oracle = true;  // every swap must match the rebuild
  const size_t sifted = sift(mgr, options);
  EXPECT_LT(sifted, bad);
  EXPECT_LE(sifted, optimal + 2);  // sifting should get essentially there
  EXPECT_EQ(sifted, mgr.size_under_order(mgr.current_order()));
  // Function unchanged.
  for (int m = 0; m < (1 << (2 * k)); ++m) {
    bool want = false;
    for (int i = 0; i < k; ++i)
      want = want || (((m >> i) & 1) && ((m >> (i + k)) & 1));
    EXPECT_EQ(mgr.eval(f, [m](int v) { return (m >> v) & 1; }), want);
  }
}

TEST(Sift, NeverIncreasesSize) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 6;
    BddManager mgr(n);
    // Random function of 3 products.
    Bdd f = mgr.zero();
    for (int t = 0; t < 3; ++t) {
      Bdd cube = mgr.one();
      for (int v = 0; v < n; ++v) {
        const auto c = rng.uniform(0, 2);
        if (c == 0) cube = cube & mgr.var(v);
        if (c == 1) cube = cube & mgr.nvar(v);
      }
      f = f | cube;
    }
    const size_t before = mgr.size_under_order(mgr.current_order());
    SiftOptions options;
    options.verify_with_oracle = true;
    const size_t after = sift(mgr, options);
    EXPECT_LE(after, before);
  }
}

TEST(Sift, RespectsPrecedenceConstraints) {
  const int k = 3;
  BddManager mgr(2 * k);
  Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));

  // Constrain all "x" vars (0..k-1) above all "y" vars (k..2k-1): sifting
  // then cannot interleave, so the separated order is already optimal-ish.
  std::vector<std::pair<int, int>> precedence;
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j) precedence.emplace_back(i, j + k);
  SiftOptions options;
  options.verify_with_oracle = true;
  sift(mgr, precedence, options);
  EXPECT_TRUE(order_respects(mgr.current_order(), precedence));
}

TEST(Sift, PrecedenceViolatingStartRejected) {
  BddManager mgr(2);
  Bdd f = mgr.var(0) & mgr.var(1);
  (void)f;
  mgr.set_order({1, 0});
  EXPECT_THROW(sift(mgr, {{0, 1}}), CheckError);
}

TEST(Sift, CyclicPrecedenceRejected) {
  BddManager mgr(3);
  Bdd f = mgr.var(0) & mgr.var(1);
  (void)f;
  // 0 above 1, 1 above 2, 2 above 0: no order can satisfy this; the sift
  // must fail loudly instead of silently clamping to an empty window.
  const std::vector<std::pair<int, int>> cyclic{{0, 1}, {1, 2}, {2, 0}};
  EXPECT_THROW(sift(mgr, cyclic), CheckError);
  EXPECT_THROW(sift_by_rebuild(mgr, cyclic), CheckError);
  // A self-pair is the smallest cycle.
  EXPECT_THROW(sift(mgr, {{1, 1}}), CheckError);
  // Out-of-range variables are also rejected.
  EXPECT_THROW(sift(mgr, {{0, 7}}), CheckError);
}

TEST(Sift, SingleVariableTrivial) {
  BddManager mgr(1);
  Bdd f = mgr.var(0);
  (void)f;
  EXPECT_NO_THROW(sift(mgr));
}

TEST(Sift, MaxVarsLimitsWork) {
  const int k = 4;
  BddManager mgr(2 * k);
  Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));
  SiftOptions options;
  options.max_vars = 2;
  const size_t before = mgr.node_count(f);
  const size_t after = sift(mgr, {}, options);
  EXPECT_LE(after, before);
}

TEST(Sift, FastPathMatchesRebuildReference) {
  // Build the same functions in two managers; the swap-based path and the
  // rebuild-per-candidate reference must land on the same final order and
  // size (same window, same tie-breaks).
  Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 7;
    std::vector<std::vector<int>> cubes;  // 0 = pos, 1 = neg, 2 = absent
    for (int t = 0; t < 4; ++t) {
      std::vector<int> cube;
      for (int v = 0; v < n; ++v) cube.push_back(rng.uniform(0, 2));
      cubes.push_back(cube);
    }
    const auto build = [&](BddManager& mgr) {
      Bdd f = mgr.zero();
      for (const auto& cube : cubes) {
        Bdd c = mgr.one();
        for (int v = 0; v < n; ++v) {
          if (cube[static_cast<size_t>(v)] == 0) c = c & mgr.var(v);
          if (cube[static_cast<size_t>(v)] == 1) c = c & mgr.nvar(v);
        }
        f = f | c;
      }
      return f;
    };
    const std::vector<std::pair<int, int>> precedence{{0, n - 1}, {1, n - 2}};

    BddManager fast_mgr(n);
    const Bdd fast_f = build(fast_mgr);
    (void)fast_f;
    SiftOptions options;
    options.passes = 2;
    options.verify_with_oracle = true;
    const size_t fast = sift(fast_mgr, precedence, options);

    BddManager ref_mgr(n);
    const Bdd ref_f = build(ref_mgr);
    (void)ref_f;
    SiftOptions ref_options;
    ref_options.passes = 2;
    const size_t ref = sift_by_rebuild(ref_mgr, precedence, ref_options);

    EXPECT_EQ(fast, ref) << "trial " << trial;
    EXPECT_EQ(fast_mgr.current_order(), ref_mgr.current_order())
        << "trial " << trial;
    EXPECT_EQ(fast, fast_mgr.size_under_order(fast_mgr.current_order()));
  }
}

TEST(Sift, TelemetryReportsWork) {
  const int k = 4;
  BddManager mgr(2 * k);
  Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));
  SiftTelemetry telemetry;
  SiftOptions options;
  options.passes = 3;
  options.telemetry = &telemetry;
  const size_t after = sift(mgr, options);
  EXPECT_GT(telemetry.swaps, 0u);
  EXPECT_GT(telemetry.size_evaluations, 0u);
  EXPECT_EQ(telemetry.final_size, after);
  EXPECT_LE(telemetry.final_size, telemetry.initial_size);
  EXPECT_GE(telemetry.peak_arena, telemetry.final_size);
  EXPECT_GT(telemetry.passes_run, 0);
  EXPECT_LE(telemetry.passes_run, options.passes);
  EXPECT_EQ(telemetry.pass_sizes.size(),
            static_cast<size_t>(telemetry.passes_run));
  EXPECT_EQ(telemetry.pass_sizes.back(), after);
}

// --- Property: sifting (with and without precedence) preserves function
// --- semantics and lands on an order that respects the constraints, with
// --- sizes identical to the rebuild oracle.
class SiftProperty : public ::testing::TestWithParam<int> {};

TEST_P(SiftProperty, PreservesSemanticsAndRespectsPrecedence) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6271 + 5);
  const int n = 4 + static_cast<int>(rng.uniform(0, 8));  // 4..12 vars
  BddManager mgr(n);

  // A few random functions built from random cubes, kept live together so
  // sifting optimises their shared arena.
  std::vector<Bdd> funcs;
  for (int fi = 0; fi < 3; ++fi) {
    Bdd f = mgr.zero();
    const int num_cubes = 2 + static_cast<int>(rng.uniform(0, 3));
    for (int t = 0; t < num_cubes; ++t) {
      Bdd cube = mgr.one();
      for (int v = 0; v < n; ++v) {
        const auto c = rng.uniform(0, 3);
        if (c == 0) cube = cube & mgr.var(v);
        if (c == 1) cube = cube & mgr.nvar(v);
      }
      f = f | cube;
    }
    funcs.push_back(f);
  }

  // Reference truth tables before reordering.
  std::vector<std::vector<bool>> tables;
  for (const Bdd& f : funcs) {
    std::vector<bool> t(static_cast<size_t>(1) << n);
    for (size_t m = 0; m < t.size(); ++m)
      t[m] = mgr.eval(f, [m](int v) { return (m >> v) & 1; });
    tables.push_back(std::move(t));
  }

  // Random acyclic precedence: pairs (a, b) with a before b in the initial
  // order are both acyclic and satisfied at the start.
  std::vector<std::pair<int, int>> precedence;
  const bool constrained = (GetParam() % 2) == 0;
  if (constrained) {
    for (int t = 0; t < n / 2; ++t) {
      const int a = static_cast<int>(rng.uniform(0, n - 2));
      const int b =
          a + 1 + static_cast<int>(rng.uniform(0, n - a - 2));
      precedence.emplace_back(a, b);
    }
  }

  SiftOptions options;
  options.passes = 2;
  options.verify_with_oracle = true;
  const size_t after = sift(mgr, precedence, options);

  EXPECT_TRUE(order_respects(mgr.current_order(), precedence));
  EXPECT_EQ(after, mgr.size_under_order(mgr.current_order()));
  for (size_t i = 0; i < funcs.size(); ++i) {
    for (size_t m = 0; m < tables[i].size(); ++m) {
      ASSERT_EQ(mgr.eval(funcs[i], [m](int v) { return (m >> v) & 1; }),
                tables[i][m])
          << "func " << i << " minterm " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiftProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace polis::bdd
