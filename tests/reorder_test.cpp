#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/reorder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace polis::bdd {
namespace {

TEST(Reorder, OrderRespectsPrecedence) {
  EXPECT_TRUE(order_respects({0, 1, 2}, {{0, 1}, {1, 2}}));
  EXPECT_FALSE(order_respects({1, 0, 2}, {{0, 1}}));
  EXPECT_TRUE(order_respects({2, 0, 1}, {}));
}

TEST(Sift, RecoversInterleavingForDisjointAnds) {
  // Classic: Σ x_i & y_i needs interleaved variables; sifting must find an
  // order close to the optimum starting from the bad separated one.
  const int k = 4;
  BddManager mgr(2 * k);
  Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));

  const size_t bad = mgr.node_count(f);
  std::vector<int> interleaved;
  for (int i = 0; i < k; ++i) {
    interleaved.push_back(i);
    interleaved.push_back(i + k);
  }
  const size_t optimal = mgr.size_under_order(interleaved);
  SiftOptions options;
  options.passes = 3;
  const size_t sifted = sift(mgr, options);
  EXPECT_LT(sifted, bad);
  EXPECT_LE(sifted, optimal + 2);  // sifting should get essentially there
  // Function unchanged.
  for (int m = 0; m < (1 << (2 * k)); ++m) {
    bool want = false;
    for (int i = 0; i < k; ++i)
      want = want || (((m >> i) & 1) && ((m >> (i + k)) & 1));
    EXPECT_EQ(mgr.eval(f, [m](int v) { return (m >> v) & 1; }), want);
  }
}

TEST(Sift, NeverIncreasesSize) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 6;
    BddManager mgr(n);
    // Random function of 3 products.
    Bdd f = mgr.zero();
    for (int t = 0; t < 3; ++t) {
      Bdd cube = mgr.one();
      for (int v = 0; v < n; ++v) {
        const auto c = rng.uniform(0, 2);
        if (c == 0) cube = cube & mgr.var(v);
        if (c == 1) cube = cube & mgr.nvar(v);
      }
      f = f | cube;
    }
    const size_t before = mgr.size_under_order(mgr.current_order());
    const size_t after = sift(mgr);
    EXPECT_LE(after, before);
  }
}

TEST(Sift, RespectsPrecedenceConstraints) {
  const int k = 3;
  BddManager mgr(2 * k);
  Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));

  // Constrain all "x" vars (0..k-1) above all "y" vars (k..2k-1): sifting
  // then cannot interleave, so the separated order is already optimal-ish.
  std::vector<std::pair<int, int>> precedence;
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j) precedence.emplace_back(i, j + k);
  sift(mgr, precedence);
  EXPECT_TRUE(order_respects(mgr.current_order(), precedence));
}

TEST(Sift, PrecedenceViolatingStartRejected) {
  BddManager mgr(2);
  Bdd f = mgr.var(0) & mgr.var(1);
  (void)f;
  mgr.set_order({1, 0});
  EXPECT_THROW(sift(mgr, {{0, 1}}), CheckError);
}

TEST(Sift, SingleVariableTrivial) {
  BddManager mgr(1);
  Bdd f = mgr.var(0);
  (void)f;
  EXPECT_NO_THROW(sift(mgr));
}

TEST(Sift, MaxVarsLimitsWork) {
  const int k = 4;
  BddManager mgr(2 * k);
  Bdd f = mgr.zero();
  for (int i = 0; i < k; ++i) f = f | (mgr.var(i) & mgr.var(i + k));
  SiftOptions options;
  options.max_vars = 2;
  const size_t before = mgr.node_count(f);
  const size_t after = sift(mgr, {}, options);
  EXPECT_LE(after, before);
}

}  // namespace
}  // namespace polis::bdd
