// Degradation determinism: the contract of `--on-budget=degrade`.
//
//   * Budgets that never trip must leave the output byte-identical to an
//     unbudgeted run (the governor's presence alone changes nothing).
//   * A node budget small enough to trip must still complete — and because
//     node/byte trips depend only on the operation sequence, two runs under
//     the same tiny budget must produce byte-identical degraded output.
//   * Under --on-budget=fail the same trip surfaces as BudgetExceeded.
//
// Eight golden configurations: the five example networks plus scheme /
// care-set / copy-in option variants. Everything runs serially
// (num_threads = 1) so governor charge order is deterministic.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "core/synthesis.hpp"
#include "frontend/parser.hpp"
#include "util/governor.hpp"
#include "verif/verif.hpp"

namespace polis {
namespace {

struct Config {
  const char* name;
  const char* file;
  const char* network;
  sgraph::OrderingScheme scheme;
  bool care;
  bool copyin;
};

const Config kConfigs[] = {
    {"blinker-sift", "blinker.rsl", "blinker",
     sgraph::OrderingScheme::kSiftOutputsAfterSupport, false, false},
    {"blinker-free", "blinker.rsl", "blinker",
     sgraph::OrderingScheme::kFreeOrder, false, false},
    {"dash-sift", "dashboard.rsl", "dash",
     sgraph::OrderingScheme::kSiftOutputsAfterSupport, false, false},
    {"dash-outfirst-copyin", "dashboard.rsl", "dash",
     sgraph::OrderingScheme::kOutputsBeforeInputs, false, true},
    {"meter-care", "meter.rsl", "meter",
     sgraph::OrderingScheme::kSiftOutputsAfterSupport, true, false},
    {"meter-naive", "meter.rsl", "meter", sgraph::OrderingScheme::kNaive,
     false, false},
    {"microwave-copyin", "microwave.rsl", "microwave",
     sgraph::OrderingScheme::kSiftOutputsAfterSupport, false, true},
    {"shock-sift", "shock_absorber.rsl", "shock",
     sgraph::OrderingScheme::kSiftOutputsAfterSupport, false, false},
};

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The byte-comparable output of one synthesis run: generated C per
/// instance, plus the s-graph size (a cheap structural fingerprint).
using Output = std::map<std::string, std::string>;

Output run_config(const Config& c, const GovernorLimits* limits,
                  OnBudget mode, size_t* degradations = nullptr) {
  const frontend::ParsedFile file = frontend::parse(
      slurp(std::filesystem::path(POLIS_EXAMPLES_DIR) / c.file));
  const cfsm::Network& net = *file.networks.at(c.network);

  std::optional<ResourceGovernor> gov;
  std::optional<ResourceGovernor::Scope> scope;
  if (limits != nullptr) {
    gov.emplace(*limits);
    scope.emplace(&*gov);
  }

  SynthesisOptions options;
  options.scheme = c.scheme;
  options.build.use_care_set = c.care;
  options.optimize_copy_in = c.copyin;
  options.on_budget = mode;
  options.num_threads = 1;
  const NetworkSynthesis synth = synthesize_network(net, options);

  Output out;
  for (const auto& [instance, r] : synth.per_instance) {
    out[instance] = r.c_code + "\n// sgraph-nodes: " +
                    std::to_string(r.graph->num_nodes());
    if (degradations != nullptr) *degradations += r.degradations.size();
  }
  return out;
}

TEST(Degradation, UnhitBudgetsMatchUnbudgetedGoldens) {
  GovernorLimits roomy;
  roomy.max_nodes = uint64_t{1} << 40;
  roomy.max_arena_bytes = uint64_t{1} << 44;
  for (const Config& c : kConfigs) {
    const Output golden = run_config(c, nullptr, OnBudget::kFail);
    size_t degradations = 0;
    const Output governed =
        run_config(c, &roomy, OnBudget::kDegrade, &degradations);
    EXPECT_EQ(golden, governed) << c.name;
    EXPECT_EQ(degradations, 0u) << c.name;
  }
}

TEST(Degradation, TinyNodeBudgetIsDeterministicAndCompletes) {
  GovernorLimits tiny;
  tiny.max_nodes = 400;
  size_t total_degradations = 0;
  for (const Config& c : kConfigs) {
    size_t d1 = 0;
    size_t d2 = 0;
    const Output first = run_config(c, &tiny, OnBudget::kDegrade, &d1);
    const Output second = run_config(c, &tiny, OnBudget::kDegrade, &d2);
    EXPECT_EQ(first, second) << c.name;
    EXPECT_EQ(d1, d2) << c.name;
    EXPECT_FALSE(first.empty()) << c.name;
    for (const auto& [instance, code] : first)
      EXPECT_FALSE(code.empty()) << c.name << "/" << instance;
    total_degradations += d1;
  }
  // At least one configuration must actually have walked the ladder,
  // otherwise this test is vacuous.
  EXPECT_GT(total_degradations, 0u);
}

TEST(Degradation, TinyByteBudgetIsDeterministicAndCompletes) {
  GovernorLimits tiny;
  tiny.max_arena_bytes = 64 * 1024;
  for (const Config& c : kConfigs) {
    const Output first = run_config(c, &tiny, OnBudget::kDegrade);
    const Output second = run_config(c, &tiny, OnBudget::kDegrade);
    EXPECT_EQ(first, second) << c.name;
  }
}

TEST(Degradation, FailModeSurfacesTheTrip) {
  GovernorLimits tiny;
  tiny.max_nodes = 50;  // trips during any realistic χ construction
  bool tripped = false;
  try {
    run_config(kConfigs[2], &tiny, OnBudget::kFail);  // dashboard
  } catch (const BudgetExceeded& e) {
    tripped = true;
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kNodes);
  }
  EXPECT_TRUE(tripped);
}

TEST(Degradation, VerificationDegradesToUnknownNotWrong) {
  // Tiny budget + degrade: the verifier must come back (no throw) and must
  // not claim kProved from a non-converged exploration.
  const frontend::ParsedFile file = frontend::parse(
      slurp(std::filesystem::path(POLIS_EXAMPLES_DIR) / "meter.rsl"));
  const cfsm::Network& net = *file.networks.at("meter");

  GovernorLimits tiny;
  tiny.max_nodes = 200;
  ResourceGovernor gov(tiny);
  ResourceGovernor::Scope scope(&gov);

  verif::VerifyOptions options;
  options.reach.degrade_on_budget = true;
  const verif::VerifyResult v = verif::verify_network(net, options);
  if (!v.reach.converged) {
    for (const verif::CheckResult& r : v.assertions)
      EXPECT_NE(r.verdict, verif::Verdict::kProved) << r.property.name;
    EXPECT_TRUE(v.care_filters.empty());
  }
  SUCCEED();
}

}  // namespace
}  // namespace polis
