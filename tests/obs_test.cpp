// Observability layer: histogram bucket geometry, cross-thread counter
// merging, gauge semantics, span nesting/armament, trace + metrics JSON
// validity (checked with the layer's own strict parser), and a concurrent
// stress that TSan can chew on (updates racing snapshots must be clean).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace polis::obs {
namespace {

// --- Histogram bucket geometry ----------------------------------------------

TEST(MetricsBuckets, LogLinearBoundariesAreExact) {
  // Values below 2^(kSubBits+1) = 16 land in their own bucket; above, each
  // octave splits into 8 linear sub-buckets.
  for (std::uint64_t v = 0; v < 16; ++v)
    EXPECT_EQ(MetricsRegistry::bucket_of(v), static_cast<int>(v)) << v;
  EXPECT_EQ(MetricsRegistry::bucket_of(16), 16);
  EXPECT_EQ(MetricsRegistry::bucket_of(17), 16);  // [16,17] share a bucket
  EXPECT_EQ(MetricsRegistry::bucket_of(18), 17);
  EXPECT_EQ(MetricsRegistry::bucket_of(31), 23);
  EXPECT_EQ(MetricsRegistry::bucket_of(32), 24);
  EXPECT_EQ(MetricsRegistry::bucket_of(1023), 63);   // [960,1023]
  EXPECT_EQ(MetricsRegistry::bucket_of(1024), 64);   // [1024,1151]
  EXPECT_EQ(MetricsRegistry::bucket_of(UINT64_MAX),
            MetricsRegistry::kBuckets - 1);
}

TEST(MetricsBuckets, RelativeErrorIsBounded) {
  // Midpoint error ≤ half the bucket width over the bucket's lower bound:
  // 1/(2 * 2^kSubBits) at worst, ~6%.
  for (int b = 16; b + 1 < MetricsRegistry::kBuckets; ++b) {
    const double lo = static_cast<double>(MetricsRegistry::bucket_lo(b));
    const double hi = static_cast<double>(MetricsRegistry::bucket_hi(b));
    EXPECT_LE((hi - lo) / 2.0 / lo, 1.0 / 16.0) << "bucket " << b;
  }
}

TEST(MetricsBuckets, LoHiRoundTripThroughBucketOf) {
  for (int b = 0; b < MetricsRegistry::kBuckets; ++b) {
    const std::uint64_t lo = MetricsRegistry::bucket_lo(b);
    const std::uint64_t hi = MetricsRegistry::bucket_hi(b);
    EXPECT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(MetricsRegistry::bucket_of(lo), b) << "bucket " << b;
    EXPECT_EQ(MetricsRegistry::bucket_of(hi), b) << "bucket " << b;
    if (b + 1 < MetricsRegistry::kBuckets) {
      EXPECT_EQ(MetricsRegistry::bucket_of(hi + 1), b + 1) << "bucket " << b;
    }
  }
  EXPECT_EQ(MetricsRegistry::bucket_hi(MetricsRegistry::kBuckets - 1),
            UINT64_MAX);
}

// --- Registry semantics ------------------------------------------------------

TEST(Metrics, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("c"), reg.counter("c"));
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
  EXPECT_EQ(reg.max_gauge("m"), reg.max_gauge("m"));
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
  EXPECT_NE(reg.counter("c"), reg.counter("c2"));
}

TEST(Metrics, CountersMergeAcrossThreads) {
  MetricsRegistry reg;
  const MetricsRegistry::Id id = reg.counter("t.count");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, id] {
      for (int i = 0; i < kPerThread; ++i) reg.add(id);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counters.at("t.count"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, GaugeLastWriteWinsMaxGaugeKeepsMax) {
  MetricsRegistry reg;
  const auto g = reg.gauge("g");
  const auto m = reg.max_gauge("m");
  reg.set(g, 5);
  reg.set(g, -3);  // later write wins, sign preserved
  reg.set(m, 7);
  reg.set(m, 4);  // lower write ignored
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.at("g"), -3);
  EXPECT_EQ(snap.gauges.at("m"), 7);
}

TEST(Metrics, HistogramCountsSumAndBucketPlacement) {
  MetricsRegistry reg;
  const auto h = reg.histogram("h");
  reg.observe(h, 0);
  reg.observe(h, 1);
  reg.observe(h, 6);
  reg.observe(h, 6);
  const auto view = reg.snapshot().histograms.at("h");
  EXPECT_EQ(view.count, 4u);
  EXPECT_EQ(view.sum, 13u);
  EXPECT_EQ(view.buckets[MetricsRegistry::bucket_of(0)], 1u);
  EXPECT_EQ(view.buckets[MetricsRegistry::bucket_of(1)], 1u);
  EXPECT_EQ(view.buckets[MetricsRegistry::bucket_of(6)], 2u);
}

TEST(Metrics, ResetZeroesValuesKeepsRegistrations) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  reg.add(c, 41);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);  // name survives, value cleared
  EXPECT_EQ(reg.counter("c"), c);
  reg.add(c);
  EXPECT_EQ(reg.snapshot().counters.at("c"), 1u);
}

TEST(Metrics, JsonSnapshotParsesAndDerivesRates) {
  MetricsRegistry reg;
  reg.add(reg.counter("bdd.cache_lookups"), 10);
  reg.add(reg.counter("bdd.cache_hits"), 5);
  reg.set(reg.max_gauge("bdd.peak_nodes"), 123);
  reg.observe(reg.histogram("h"), 12);
  std::ostringstream os;
  reg.write_json(os);

  const json::Value v = json::parse(os.str());
  ASSERT_TRUE(v.is_object());
  const json::Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* lookups = counters->find("bdd.cache_lookups");
  ASSERT_NE(lookups, nullptr);
  EXPECT_EQ(lookups->number, 10.0);
  const json::Value* derived = v.find("derived");
  ASSERT_NE(derived, nullptr);
  const json::Value* rate = derived->find("bdd.cache_hit_rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->number, 0.5);
  const json::Value* hists = v.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* h = hists->find("h");
  ASSERT_NE(h, nullptr);
  const json::Value* bucket_list = h->find("buckets");
  ASSERT_NE(bucket_list, nullptr);
  ASSERT_TRUE(bucket_list->is_array());
  ASSERT_EQ(bucket_list->array.size(), 1u);  // only non-empty buckets listed
  ASSERT_EQ(bucket_list->array[0].array.size(), 3u);  // [lo, hi, n]
  EXPECT_EQ(bucket_list->array[0].array[0].number, 12.0);  // 12 is exact
  EXPECT_EQ(bucket_list->array[0].array[1].number, 12.0);
  EXPECT_EQ(bucket_list->array[0].array[2].number, 1.0);
  const json::Value* avg = derived->find("h_avg");
  ASSERT_NE(avg, nullptr);
  EXPECT_DOUBLE_EQ(avg->number, 12.0);
}

// Satellite regression: derived averages must come from the exact per-shard
// sums merged through snapshot(), never from bucket midpoints. 1000 lands in
// bucket [960,1023] (midpoint 991), so a midpoint-based mean would read
// ~991 — the exact mean is 1000 even when observations span many threads.
TEST(Metrics, DerivedAverageUsesExactCrossThreadSums) {
  MetricsRegistry reg;
  const auto h = reg.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg, h] {
      for (int i = 0; i < kPerThread; ++i) reg.observe(h, 1000);
    });
  for (auto& t : threads) t.join();

  const auto view = reg.snapshot().histograms.at("lat");
  EXPECT_EQ(view.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(view.sum, static_cast<std::uint64_t>(kThreads) * kPerThread * 1000);

  std::ostringstream os;
  reg.write_json(os);
  const json::Value v = json::parse(os.str());
  const json::Value* derived = v.find("derived");
  ASSERT_NE(derived, nullptr);
  const json::Value* avg = derived->find("lat_avg");
  ASSERT_NE(avg, nullptr);
  EXPECT_DOUBLE_EQ(avg->number, 1000.0);  // not the 991.5 a midpoint gives
}

// The TSan target: readers (snapshot, write_json) racing writers of every
// metric kind must be data-race free, and the post-join snapshot must see
// every update (counts are never lost, only observed late).
TEST(Metrics, ConcurrentUpdatesRacingSnapshotsAreClean) {
  MetricsRegistry reg;
  const auto c = reg.counter("stress.count");
  const auto g = reg.gauge("stress.gauge");
  const auto m = reg.max_gauge("stress.max");
  const auto h = reg.histogram("stress.hist");

  constexpr int kWriters = 4;
  constexpr int kIters = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = reg.snapshot();
      // Monotonic counter: any mid-flight snapshot is a valid prefix.
      EXPECT_LE(snap.counters.at("stress.count"),
                static_cast<std::uint64_t>(kWriters) * kIters);
      std::ostringstream os;
      reg.write_json(os);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.add(c);
        reg.set(g, t * kIters + i);
        reg.set(m, t * kIters + i);
        reg.observe(h, static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("stress.count"),
            static_cast<std::uint64_t>(kWriters) * kIters);
  EXPECT_EQ(snap.gauges.at("stress.max"), kWriters * kIters - 1);
  EXPECT_EQ(snap.histograms.at("stress.hist").count,
            static_cast<std::uint64_t>(kWriters) * kIters);
}

// --- Span tracing ------------------------------------------------------------

// collect() always prepends naming metadata ('M'); the recorded payload is
// everything else.
std::vector<TraceEvent> payload(const TraceRecorder& rec) {
  std::vector<TraceEvent> all = rec.collect();
  std::vector<TraceEvent> out;
  for (TraceEvent& e : all)
    if (e.ph != 'M') out.push_back(std::move(e));
  return out;
}

TEST(Trace, DisabledRecorderSpansAreUnarmedAndRecordNothing) {
  TraceRecorder rec;  // disabled by default
  {
    Span s(rec, "never");
    EXPECT_FALSE(s.armed());
    s.arg("free", std::int64_t{1});  // must be a no-op, not a crash
  }
  EXPECT_TRUE(payload(rec).empty());
}

TEST(Trace, NestedSpansEncloseAndCarryArgs) {
  TraceRecorder rec;
  rec.set_enabled(true);
  {
    Span outer(rec, "outer", "test");
    EXPECT_TRUE(outer.armed());
    outer.arg("answer", std::int64_t{42});
    outer.arg("label", "hello");
    { Span inner(rec, "inner", "test"); }
  }
  rec.set_enabled(false);

  const std::vector<TraceEvent> events = rec.collect();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->ph, 'X');
  EXPECT_EQ(outer->pid, kPidPipeline);
  EXPECT_EQ(outer->tid, inner->tid);  // same thread, same lane
  // The inner span nests inside the outer one on the shared clock.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  ASSERT_EQ(outer->args.size(), 2u);
  EXPECT_EQ(outer->args[0].key, "answer");
  EXPECT_EQ(outer->args[0].value, "42");
  EXPECT_EQ(outer->args[1].value, "\"hello\"");  // pre-rendered JSON
}

TEST(Trace, MinSpanFloorDropsShortSpans) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_min_span_us(60'000'000);  // one minute: everything is "short"
  { Span s(rec, "dropped"); }
  EXPECT_TRUE(payload(rec).empty());
  rec.set_min_span_us(0);
  { Span s(rec, "kept"); }
  ASSERT_EQ(payload(rec).size(), 1u);
  EXPECT_EQ(payload(rec)[0].name, "kept");
}

TEST(Trace, ChromeJsonIsValidAndCarriesLaneMetadata) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.name_sim_lane(3, "task spd");
  { Span s(rec, "phase", "test"); }
  rec.set_enabled(false);

  std::ostringstream os;
  rec.write_chrome_json(os);
  const json::Value v = json::parse(os.str());
  const json::Value* trace_events = v.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());

  bool saw_span = false;
  bool saw_lane_name = false;
  for (const json::Value& e : trace_events->array) {
    ASSERT_TRUE(e.is_object());
    const json::Value* ph = e.find("ph");
    const json::Value* name = e.find("name");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph->str == "X" && name->str == "phase") saw_span = true;
    if (ph->str == "M" && name->str == "thread_name") {
      const json::Value* args = e.find("args");
      ASSERT_NE(args, nullptr);
      const json::Value* lane = args->find("name");
      if (lane != nullptr && lane->str == "task spd") saw_lane_name = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_lane_name);
}

TEST(Trace, SpanTotalsAggregateByName) {
  TraceRecorder rec;
  rec.set_enabled(true);
  auto complete = [&](const char* name, std::int64_t ts, std::int64_t dur) {
    TraceEvent e;
    e.name = name;
    e.ph = 'X';
    e.ts = ts;
    e.dur = dur;
    rec.record(std::move(e));
  };
  complete("a", 0, 1500);
  complete("a", 2000, 500);
  complete("b", 0, 250);
  rec.set_enabled(false);

  const auto totals = rec.span_totals_ms();
  EXPECT_DOUBLE_EQ(totals.at("a"), 2.0);
  EXPECT_DOUBLE_EQ(totals.at("b"), 0.25);
}

TEST(Trace, ClearDropsEventsKeepsLaneNames) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.name_sim_lane(1, "task deb");
  { Span s(rec, "gone"); }
  rec.clear();
  const auto events = rec.collect();
  for (const TraceEvent& e : events) EXPECT_EQ(e.ph, 'M');
  ASSERT_FALSE(events.empty());  // the lane name survived the clear
}

TEST(Obs, CombinedMetricsJsonIncludesPhases) {
  MetricsRegistry reg;
  reg.add(reg.counter("c"), 3);
  TraceRecorder rec;
  rec.set_enabled(true);
  {
    TraceEvent e;
    e.name = "phase.one";
    e.ph = 'X';
    e.dur = 4000;
    rec.record(std::move(e));
  }
  rec.set_enabled(false);

  std::ostringstream os;
  write_metrics_json(os, reg, &rec);
  const json::Value v = json::parse(os.str());
  const json::Value* phases = v.find("phases");
  ASSERT_NE(phases, nullptr);
  const json::Value* one = phases->find("phase.one");
  ASSERT_NE(one, nullptr);
  EXPECT_DOUBLE_EQ(one->number, 4.0);
  ASSERT_NE(v.find("counters"), nullptr);
}

// --- The strict JSON reader itself -------------------------------------------

TEST(Json, RejectsTrailingGarbageAndBadEscapes) {
  EXPECT_THROW(json::parse("{} x"), json::ParseError);
  EXPECT_THROW(json::parse("{\"a\": }"), json::ParseError);
  EXPECT_THROW(json::parse("\"\\q\""), json::ParseError);
  EXPECT_THROW(json::parse(""), json::ParseError);
}

TEST(Json, ParsesNestedStructuresAndEscapes) {
  const json::Value v =
      json::parse("{\"a\": [1, 2.5, true, null], \"s\": \"x\\n\\u0041\"}");
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 4u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_TRUE(a->array[2].boolean);
  EXPECT_TRUE(a->array[3].is_null());
  const json::Value* s = v.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->str, "x\nA");
}

}  // namespace
}  // namespace polis::obs
