// Deterministic mutation sweep over every example RSL source: truncations,
// token deletions and garbage injection. The contract under test is the
// robustness half of the error taxonomy — no input may crash the frontend,
// trip a fatal invariant check, or hang: every outcome is either a clean
// parse or a frontend::ParseError carrying a source line. The whole sweep
// runs under a governor deadline so a pathological mutant would surface as
// a bounded BudgetExceeded (also a failure here) instead of a wedged test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "util/governor.hpp"

namespace polis {
namespace {

std::vector<std::filesystem::path> example_sources() {
  std::vector<std::filesystem::path> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(POLIS_EXAMPLES_DIR)) {
    if (entry.path().extension() == ".rsl") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// splitmix64: the same deterministic generator family the fault plans use.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Parses one mutant and asserts the robustness contract. Returns the number
/// of mutants that produced a ParseError (so callers can sanity-check the
/// sweep actually exercised failure paths).
int check_mutant(const std::string& source, const std::string& what) {
  try {
    (void)frontend::parse(source);
    return 0;
  } catch (const frontend::ParseError& e) {
    EXPECT_GE(e.line(), 1) << what << ": ParseError without a line number: "
                           << e.what();
    return 1;
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": non-ParseError escaped the frontend: "
                  << e.what();
    return 0;
  }
}

TEST(ParserRobustness, TruncationsNeverCrash) {
  GovernorLimits limits;
  limits.deadline_ms = 60000;
  ResourceGovernor gov(limits);
  ResourceGovernor::Scope scope(&gov);

  int parse_errors = 0;
  for (const auto& path : example_sources()) {
    const std::string source = slurp(path);
    ASSERT_FALSE(source.empty()) << path;
    // ~48 evenly spaced cut points per file, plus the pathological 0/1-byte
    // prefixes.
    const size_t step = std::max<size_t>(source.size() / 48, 1);
    for (size_t cut = 0; cut < source.size(); cut += step) {
      parse_errors += check_mutant(
          source.substr(0, cut),
          path.filename().string() + " truncated at " + std::to_string(cut));
    }
  }
  EXPECT_GT(parse_errors, 0) << "sweep never reached a failure path";
}

TEST(ParserRobustness, TokenDeletionsNeverCrash) {
  GovernorLimits limits;
  limits.deadline_ms = 60000;
  ResourceGovernor gov(limits);
  ResourceGovernor::Scope scope(&gov);

  int parse_errors = 0;
  for (const auto& path : example_sources()) {
    const std::string source = slurp(path);
    // Whitespace-delimited tokens; deleting each one in turn hits missing
    // keywords, unbalanced braces, dangling operators, ...
    std::vector<std::pair<size_t, size_t>> tokens;  // (begin, length)
    size_t i = 0;
    while (i < source.size()) {
      while (i < source.size() &&
             std::isspace(static_cast<unsigned char>(source[i])))
        ++i;
      size_t j = i;
      while (j < source.size() &&
             !std::isspace(static_cast<unsigned char>(source[j])))
        ++j;
      if (j > i) tokens.emplace_back(i, j - i);
      i = j;
    }
    for (size_t t = 0; t < tokens.size(); ++t) {
      std::string mutant = source;
      mutant.erase(tokens[t].first, tokens[t].second);
      parse_errors += check_mutant(
          mutant, path.filename().string() + " minus token #" +
                      std::to_string(t));
    }
  }
  EXPECT_GT(parse_errors, 0);
}

TEST(ParserRobustness, GarbageInjectionNeverCrashes) {
  GovernorLimits limits;
  limits.deadline_ms = 60000;
  ResourceGovernor gov(limits);
  ResourceGovernor::Scope scope(&gov);

  // Pool of hostile bytes: operators, braces, control chars, high bytes,
  // digits long enough to overflow naive accumulators.
  const std::string pool = "{}()[];:=<>!&|%#\t\x01\x7f\xff 9999999999999999999";
  int parse_errors = 0;
  uint64_t rng = 0x706f6c6973ull;  // deterministic seed
  for (const auto& path : example_sources()) {
    const std::string source = slurp(path);
    for (int round = 0; round < 64; ++round) {
      std::string mutant = source;
      const int edits = 1 + static_cast<int>(mix(rng++) % 4);
      for (int e = 0; e < edits; ++e) {
        const size_t at = mix(rng++) % (mutant.size() + 1);
        const size_t len = 1 + mix(rng++) % 8;
        std::string chunk;
        for (size_t k = 0; k < len; ++k)
          chunk += pool[mix(rng++) % pool.size()];
        if (mix(rng++) % 2 == 0 && at < mutant.size()) {
          mutant.replace(at, std::min(len, mutant.size() - at), chunk);
        } else {
          mutant.insert(at, chunk);
        }
      }
      parse_errors += check_mutant(
          mutant, path.filename().string() + " garbage round " +
                      std::to_string(round));
    }
  }
  EXPECT_GT(parse_errors, 0);
}

}  // namespace
}  // namespace polis
