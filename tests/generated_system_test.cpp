// The ultimate integration check: the *generated artifacts* — reaction
// routines (codegen), runtime header and RTOS scheduler (rtos/codegen) —
// are compiled together with the host C compiler and executed, and the
// running system's observable behaviour is verified. This is the deployable
// output of the whole flow actually deployed (onto the host, §I-H step 5).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <filesystem>
#include <sstream>

#include "cfsm/reactive.hpp"
#include "codegen/c_codegen.hpp"
#include "frontend/parser.hpp"
#include "rtos/codegen.hpp"
#include "sgraph/build.hpp"

namespace polis {
namespace {

bool have_cc() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

std::string run_and_capture(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) output += buf;
  pclose(pipe);
  return output;
}

// Generates C for every instance of the network plus the RTOS, compiles it
// with `main_c` and returns the program's stdout.
std::string build_and_run(const cfsm::Network& net,
                          const rtos::RtosConfig& config,
                          const std::string& main_c,
                          const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/gen_" + tag;
  std::filesystem::create_directories(dir);
  write_file(dir + "/polis_rt.h", rtos::generate_rt_header(net));
  write_file(dir + "/polis_rtos.c", rtos::generate_rtos_c(net, config));

  std::string sources = dir + "/polis_rtos.c";
  for (const cfsm::Instance& inst : net.instances()) {
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(*inst.machine, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    const std::string file = dir + "/cfsm_" + inst.name + ".c";
    write_file(file, codegen::generate_instance_c(g, inst));
    sources += " " + file;
  }
  write_file(dir + "/main.c", main_c);
  sources += " " + dir + "/main.c";

  const std::string bin = dir + "/system";
  EXPECT_EQ(std::system(("cc -I" + dir + " -o " + bin + " " + sources +
                         " 2> " + dir + "/cc.log")
                            .c_str()),
            0)
      << run_and_capture("cat " + dir + "/cc.log");
  return run_and_capture(bin);
}

TEST(GeneratedSystem, BlinkAlternatesThroughGeneratedScheduler) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";

  const frontend::ParsedFile file = frontend::parse(R"(
    module blink {
      input tick;
      output led : int[2];
      state on : int[2] = 0;
      when present(tick) && on == 0 -> { on := 1; emit led(1); }
      when present(tick) && on == 1 -> { on := 0; emit led(0); }
    }
    network blinker {
      instance b : blink;
    }
  )");
  const auto net = file.networks.at("blinker");

  const std::string main_c = R"(
#include <stdio.h>
#include "polis_rt.h"
extern void polis_scheduler_step(void);
extern void polis_isr(int sig);
void polis_observe(int sig, long value) {
  (void)sig;
  printf("led %ld\n", value);
}
int main(void) {
  int i, k;
  for (i = 0; i < 6; ++i) {
    polis_isr(SIG_tick);
    for (k = 0; k < 4; ++k) polis_scheduler_step();
  }
  return 0;
}
)";
  const std::string out =
      build_and_run(*net, rtos::RtosConfig{}, main_c, "blink");
  EXPECT_EQ(out, "led 1\nled 0\nled 1\nled 0\nled 1\nled 0\n");
}

TEST(GeneratedSystem, PipelinePropagatesAndPreservesEvents) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";

  // stage1 doubles, stage2 adds the previous value — needs two reactions of
  // the chain; also exercises inter-task event flags in the generated RTOS.
  const frontend::ParsedFile file = frontend::parse(R"(
    module doubler {
      input x : int[8];
      output m : int[16];
      when present(x) -> { emit m(value(x) * 2); }
    }
    module accumulator {
      input m : int[16];
      output y : int[16];
      state acc : int[16] = 0;
      when present(m) -> { emit y(acc + value(m)); acc := value(m); }
    }
    network pipe {
      instance d : doubler;
      instance a : accumulator;
    }
  )");
  const auto net = file.networks.at("pipe");

  const std::string main_c = R"(
#include <stdio.h>
#include "polis_rt.h"
extern void polis_scheduler_step(void);
extern void polis_isr(int sig);
static long seen[8];
static int n_seen = 0;
void polis_observe(int sig, long value) {
  (void)sig;
  if (n_seen < 8) seen[n_seen++] = value;
}
static void inject(long v) {
  int k;
  polis_emit_value(SIG_x, v);
  for (k = 0; k < 4; ++k) polis_scheduler_step();
}
int main(void) {
  int i;
  inject(1);  /* m=2, y=0+2,  acc=2  */
  inject(3);  /* m=6, y=2+6,  acc=6  */
  inject(2);  /* m=4, y=6+4,  acc=4  */
  for (i = 0; i < n_seen; ++i) printf("y %ld\n", seen[i]);
  return 0;
}
)";
  const std::string out = build_and_run(*net, rtos::RtosConfig{}, main_c,
                                        "pipe");
  EXPECT_EQ(out, "y 2\ny 8\ny 10\n");
}

TEST(GeneratedSystem, PriorityPolicyCodeAlsoRuns) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";

  const frontend::ParsedFile file = frontend::parse(R"(
    module relay {
      input i;
      output o;
      when present(i) -> { emit o; }
    }
    network two {
      instance hi : relay (i = a_in, o = a_out);
      instance lo : relay (i = b_in, o = b_out);
    }
  )");
  const auto net = file.networks.at("two");

  rtos::RtosConfig config;
  config.policy = rtos::RtosConfig::Policy::kStaticPriority;
  config.priority = {{"hi", 1}, {"lo", 9}};

  // Enable both, run one scheduler step: only the high-priority relay fires.
  const std::string main_c = R"(
#include <stdio.h>
#include "polis_rt.h"
extern void polis_scheduler_step(void);
void polis_observe(int sig, long value) {
  (void)value;
  printf("out %d\n", sig);
}
int main(void) {
  polis_emit(SIG_a_in);
  polis_emit(SIG_b_in);
  polis_scheduler_step();
  printf("---\n");
  polis_scheduler_step();
  return 0;
}
)";
  const std::string out = build_and_run(*net, config, main_c, "prio");
  // a_out before the separator, b_out after it (ids are net-alphabetical:
  // a_in=0, a_out=1, b_in=2, b_out=3).
  EXPECT_EQ(out, "out 1\n---\nout 3\n");
}

}  // namespace
}  // namespace polis
