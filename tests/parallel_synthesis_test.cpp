// Parallel `synthesize_network` is share-nothing (one BddManager per
// distinct CFSM), so its artifacts — generated C, compiled VM programs,
// size/cycle estimates — must be byte-identical to the serial path on every
// system in the repository, at any thread count.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "obs/trace.hpp"

namespace polis {
namespace {

void expect_identical(const NetworkSynthesis& a, const NetworkSynthesis& b) {
  ASSERT_EQ(a.per_instance.size(), b.per_instance.size());
  for (const auto& [name, ra] : a.per_instance) {
    SCOPED_TRACE("instance " + name);
    const auto it = b.per_instance.find(name);
    ASSERT_NE(it, b.per_instance.end());
    const SynthesisResult& rb = it->second;

    EXPECT_EQ(ra.c_code, rb.c_code);
    EXPECT_EQ(ra.vm_size_bytes, rb.vm_size_bytes);
    EXPECT_EQ(ra.estimate.size_bytes, rb.estimate.size_bytes);
    EXPECT_EQ(ra.estimate.min_cycles, rb.estimate.min_cycles);
    EXPECT_EQ(ra.estimate.max_cycles, rb.estimate.max_cycles);

    const vm::Program& pa = ra.compiled->program;
    const vm::Program& pb = rb.compiled->program;
    ASSERT_EQ(pa.code.size(), pb.code.size());
    EXPECT_EQ(pa.slot_names, pb.slot_names);
    for (size_t i = 0; i < pa.code.size(); ++i) {
      SCOPED_TRACE("instr " + std::to_string(i));
      EXPECT_EQ(pa.code[i].op, pb.code[i].op);
      EXPECT_EQ(pa.code[i].a, pb.code[i].a);
      EXPECT_EQ(pa.code[i].b, pb.code[i].b);
      EXPECT_EQ(pa.code[i].c, pb.code[i].c);
      EXPECT_EQ(pa.code[i].imm, pb.code[i].imm);
      EXPECT_EQ(pa.code[i].alu, pb.code[i].alu);
      EXPECT_EQ(pa.code[i].sym, pb.code[i].sym);
    }
  }
  EXPECT_EQ(a.max_cycles, b.max_cycles);
}

void check_network(const std::shared_ptr<cfsm::Network>& net) {
  static const estim::CostModel model = estim::calibrate(vm::hc11_like());
  SynthesisOptions serial;
  serial.cost_model = &model;
  serial.num_threads = 1;

  const NetworkSynthesis base = synthesize_network(*net, serial);
  EXPECT_FALSE(base.per_instance.empty());

  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SynthesisOptions parallel = serial;
    parallel.num_threads = threads;
    expect_identical(base, synthesize_network(*net, parallel));
  }
}

TEST(ParallelSynthesis, DashboardIdenticalToSerial) {
  check_network(systems::dash_network());
}

TEST(ParallelSynthesis, ShockIdenticalToSerial) {
  check_network(systems::shock_network());
}

TEST(ParallelSynthesis, MicrowaveIdenticalToSerial) {
  check_network(systems::microwave_network());
}

TEST(ParallelSynthesis, DefaultThreadCountAlsoIdentical) {
  static const estim::CostModel model = estim::calibrate(vm::hc11_like());
  SynthesisOptions serial;
  serial.cost_model = &model;
  serial.num_threads = 1;
  SynthesisOptions defaulted = serial;
  defaulted.num_threads = 0;  // one thread per hardware core
  const auto net = systems::dash_network();
  expect_identical(synthesize_network(*net, serial),
                   synthesize_network(*net, defaulted));
}

// The observability layer's no-interference contract: span recording on or
// off must not change a single synthesized byte (tracing only watches the
// flow, it never participates in it), at any thread count.
TEST(ParallelSynthesis, TracingOnProducesIdenticalArtifacts) {
  static const estim::CostModel model = estim::calibrate(vm::hc11_like());
  const auto net = systems::dash_network();
  SynthesisOptions options;
  options.cost_model = &model;
  options.num_threads = 4;

  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.set_enabled(false);
  const NetworkSynthesis quiet = synthesize_network(*net, options);

  recorder.set_enabled(true);
  const NetworkSynthesis traced = synthesize_network(*net, options);
  recorder.set_enabled(false);

  // The traced run actually recorded the pipeline (worker lanes included) —
  // unless the instrumentation was compiled out entirely.
#ifndef POLIS_OBS_DISABLED
  bool saw_synthesis_span = false;
  for (const obs::TraceEvent& e : recorder.collect())
    if (e.ph == 'X' && e.name == "synthesize") saw_synthesis_span = true;
  EXPECT_TRUE(saw_synthesis_span);
#endif
  recorder.clear();

  // ...and changed nothing it observed.
  expect_identical(quiet, traced);
}

// A repeated-instance network synthesizes each distinct machine exactly
// once; both paths must agree on the shared result.
TEST(ParallelSynthesis, SharedMachinesSynthesizedOnce) {
  const auto net = systems::dash_network();
  SynthesisOptions options;
  options.num_threads = 4;
  const NetworkSynthesis out = synthesize_network(*net, options);
  std::map<const cfsm::Cfsm*, const SynthesisResult*> seen;
  for (const auto& [name, r] : out.per_instance) {
    const auto [it, fresh] = seen.emplace(r.machine.get(), &r);
    if (!fresh) {
      // Same machine → same synthesized artifacts (shared result slot).
      EXPECT_EQ(it->second->c_code, r.c_code);
      EXPECT_EQ(it->second->vm_size_bytes, r.vm_size_bytes);
    }
  }
}

}  // namespace
}  // namespace polis
