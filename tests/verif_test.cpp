// The symbolic verification engine (src/verif): the and_exists relational
// product against its smooth(f & g) definition, GC safety during the
// fixpoint, symbolic-vs-explicit cross-checks on every small example
// network, assertion checking with counterexample replay, and the
// reached-set care filter shrinking an s-graph beyond the local analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "frontend/parser.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "verif/care.hpp"
#include "verif/check.hpp"
#include "verif/encode.hpp"
#include "verif/enumerate.hpp"
#include "verif/reach.hpp"
#include "verif/transition.hpp"
#include "verif/verif.hpp"

namespace {

using namespace polis;
using bdd::Bdd;
using bdd::BddManager;

// --- and_exists -------------------------------------------------------------

TEST(AndExists, TerminalsAndIdentities) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0), b = mgr.var(1);
  EXPECT_EQ(mgr.and_exists(mgr.zero(), a, {0}), mgr.zero());
  EXPECT_EQ(mgr.and_exists(a, mgr.zero(), {1}), mgr.zero());
  EXPECT_EQ(mgr.and_exists(mgr.one(), mgr.one(), {0, 1}), mgr.one());
  // ∃a. a&b = b; ∃b. a&b = a; ∃{}. f&g = f&g.
  EXPECT_EQ(mgr.and_exists(a, b, {0}), b);
  EXPECT_EQ(mgr.and_exists(a, b, {1}), a);
  EXPECT_EQ(mgr.and_exists(a, b, {}), a & b);
  // One operand constant one: plain smoothing.
  EXPECT_EQ(mgr.and_exists(mgr.one(), a & b, {0}), b);
  // f == g collapses to smoothing of f.
  EXPECT_EQ(mgr.and_exists(a ^ b, a ^ b, {0}), mgr.one());
}

TEST(AndExists, MatchesSmoothOfConjunctionOnRandomFunctions) {
  constexpr int kVars = 10;
  BddManager mgr(kVars);
  Rng rng(20260806);
  auto random_fn = [&]() {
    Bdd f = rng.flip() ? mgr.var(static_cast<int>(rng.uniform(0, kVars - 1)))
                       : mgr.nvar(static_cast<int>(rng.uniform(0, kVars - 1)));
    for (int i = 0; i < 14; ++i) {
      const Bdd v = mgr.var(static_cast<int>(rng.uniform(0, kVars - 1)));
      switch (rng.uniform(0, 3)) {
        case 0: f = f & v; break;
        case 1: f = f | v; break;
        case 2: f = f ^ v; break;
        default: f = mgr.ite(v, f, !f); break;
      }
    }
    return f;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const Bdd f = random_fn();
    const Bdd g = random_fn();
    std::vector<int> vars;
    for (int v = 0; v < kVars; ++v)
      if (rng.flip(0.4)) vars.push_back(v);
    EXPECT_EQ(mgr.and_exists(f, g, vars), mgr.smooth(f & g, vars))
        << "trial " << trial;
  }
  const auto& stats = mgr.stats();
  EXPECT_GT(stats.and_exists_calls, 0u);
  EXPECT_GT(stats.and_exists_recursions, stats.and_exists_calls);
  EXPECT_GT(stats.and_exists_cache_hits, 0u);
}

// --- helpers ----------------------------------------------------------------

/// Sorted explicit mirror of a symbolic set (membership via eval).
bool contains(verif::NetworkEncoding& enc, const Bdd& set,
              const verif::GlobalState& s) {
  return enc.manager().eval(
      set, [&](int var) { return enc.state_bit(s, var); });
}

// --- symbolic vs explicit cross-check ---------------------------------------

void expect_symbolic_matches_explicit(const cfsm::Network& net) {
  const auto explicit_states = verif::enumerate_reachable_states(net);
  ASSERT_TRUE(explicit_states.has_value()) << net.name();

  BddManager mgr;
  verif::NetworkEncoding enc(net, mgr);
  verif::TransitionSystem tr = verif::build_transition_system(enc);
  const verif::ReachResult reach = verif::reachable_states(tr);

  EXPECT_TRUE(reach.stats.exact);
  EXPECT_DOUBLE_EQ(reach.stats.reached_states,
                   static_cast<double>(explicit_states->size()))
      << net.name();
  for (const verif::GlobalState& s : *explicit_states)
    EXPECT_TRUE(contains(enc, reach.reached, s)) << net.name();
  // The layers partition the reached set and sum to the same count.
  double layered = 0;
  for (const Bdd& layer : reach.layers)
    layered += mgr.sat_count(layer, enc.num_present_vars());
  EXPECT_DOUBLE_EQ(layered, reach.stats.reached_states);
}

TEST(Reachability, MatchesExplicitEnumerationOnBlinker) {
  const frontend::ParsedFile file =
      frontend::parse("module blink {\n"
                      "  input tick;\n"
                      "  output led : int[2];\n"
                      "  state on : int[2] = 0;\n"
                      "  when present(tick) && on == 0 -> { on := 1; emit led(1); }\n"
                      "  when present(tick) && on == 1 -> { on := 0; emit led(0); }\n"
                      "}\n"
                      "network blinker { instance b : blink; }\n");
  expect_symbolic_matches_explicit(*file.networks.at("blinker"));
}

TEST(Reachability, MatchesExplicitEnumerationOnMeter) {
  expect_symbolic_matches_explicit(*systems::meter_network());
}

TEST(Reachability, MatchesExplicitEnumerationOnDashCore) {
  expect_symbolic_matches_explicit(*systems::dash_core_network());
}

// --- GC safety during the fixpoint ------------------------------------------

TEST(Reachability, GcChurnLeavesReachedSetIdentical) {
  const auto net = systems::meter_network();
  const auto explicit_states = verif::enumerate_reachable_states(*net);
  ASSERT_TRUE(explicit_states.has_value());

  // Baseline: no collection at all.
  BddManager calm_mgr;
  verif::NetworkEncoding calm_enc(*net, calm_mgr);
  verif::TransitionSystem calm_tr = verif::build_transition_system(calm_enc);
  verif::ReachOptions calm_opts;
  calm_opts.gc_threshold = 0;
  const verif::ReachResult calm = verif::reachable_states(calm_tr, calm_opts);
  EXPECT_EQ(calm.stats.gc_runs, 0u);

  // Churn: an artificially tiny threshold forces a collection after every
  // iteration while frontier/reached/layer handles are live.
  BddManager churn_mgr;
  verif::NetworkEncoding churn_enc(*net, churn_mgr);
  verif::TransitionSystem churn_tr = verif::build_transition_system(churn_enc);
  verif::ReachOptions churn_opts;
  churn_opts.gc_threshold = 1;
  const verif::ReachResult churn =
      verif::reachable_states(churn_tr, churn_opts);
  EXPECT_GT(churn.stats.gc_runs, 0u);

  // Same fixpoint, bit for bit: same iteration count, same state count, and
  // the same membership answer on every explicitly-reached state.
  EXPECT_EQ(churn.stats.iterations, calm.stats.iterations);
  EXPECT_DOUBLE_EQ(churn.stats.reached_states, calm.stats.reached_states);
  EXPECT_EQ(churn.layers.size(), calm.layers.size());
  for (const verif::GlobalState& s : *explicit_states) {
    EXPECT_TRUE(contains(calm_enc, calm.reached, s));
    EXPECT_TRUE(contains(churn_enc, churn.reached, s));
  }
  for (size_t i = 0; i < churn.layers.size(); ++i)
    EXPECT_DOUBLE_EQ(
        churn_mgr.sat_count(churn.layers[i], churn_enc.num_present_vars()),
        calm_mgr.sat_count(calm.layers[i], calm_enc.num_present_vars()))
        << "layer " << i;
}

// --- frontend assert clause -------------------------------------------------

TEST(AssertClause, ParsesIntoMachineAssertions) {
  const auto m = frontend::parse_module(
      "module counter {\n"
      "  input tick;\n"
      "  state n : int[4] = 0;\n"
      "  assert n <= 3;\n"
      "  assert !(n == 2) || present(tick);\n"
      "  when present(tick) -> { n := n + 1; }\n"
      "}\n");
  ASSERT_EQ(m->assertions().size(), 2u);
  EXPECT_EQ(m->assertions()[0].line, 4);
  EXPECT_EQ(m->assertions()[1].line, 5);
}

TEST(AssertClause, UnknownVariableReportsTheAssertLine) {
  try {
    frontend::parse_module(
        "module counter {\n"
        "  input tick;\n"
        "  state n : int[4] = 0;\n"
        "  assert m <= 3;\n"
        "  when present(tick) -> { n := n + 1; }\n"
        "}\n");
    FAIL() << "expected ParseError";
  } catch (const frontend::ParseError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("'m'"), std::string::npos);
  }
}

TEST(AssertClause, MalformedAssertReportsItsLine) {
  try {
    frontend::parse_module(
        "module counter {\n"
        "  input tick;\n"
        "  state n : int[4] = 0;\n"
        "  assert n <=;\n"
        "  when present(tick) -> { n := n + 1; }\n"
        "}\n");
    FAIL() << "expected ParseError";
  } catch (const frontend::ParseError& e) {
    EXPECT_EQ(e.line(), 4);
  }
}

// --- property checking, counterexamples, replay ------------------------------

const char* kAlarmSource =
    "module alarmist {\n"
    "  input key_on;\n"
    "  input belt_on;\n"
    "  input tick;\n"
    "  output alarm;\n"
    "  state st : int[3] = 0;\n"
    "  state cnt : int[4] = 0;\n"
    "  assert st != 2;\n"  // deliberately violated: the alarm state
    "  when present(key_on)                      -> { st := 1; cnt := 0; }\n"
    "  when st == 1 && present(belt_on)          -> { st := 0; }\n"
    "  when st == 1 && present(tick) && cnt < 3  -> { cnt := cnt + 1; }\n"
    "  when st == 1 && present(tick) && cnt >= 3 -> { st := 2; emit alarm; }\n"
    "}\n"
    "network alarmnet { instance blt : alarmist; }\n";

TEST(Check, ViolatedAssertYieldsReplayableCounterexample) {
  const frontend::ParsedFile file = frontend::parse(kAlarmSource);
  const cfsm::Network& net = *file.networks.at("alarmnet");

  BddManager mgr;
  verif::NetworkEncoding enc(net, mgr);
  verif::TransitionSystem tr = verif::build_transition_system(enc);
  const verif::ReachResult reach = verif::reachable_states(tr);
  ASSERT_TRUE(reach.stats.exact);

  const auto results = verif::check_assertions(tr, reach);
  ASSERT_EQ(results.size(), 1u);
  const verif::CheckResult& r = results[0];
  EXPECT_EQ(r.verdict, verif::Verdict::kViolated);
  EXPECT_GT(r.violating_states, 0);
  ASSERT_TRUE(r.cex.has_value());

  // The trace ends in the violating state...
  const verif::GlobalState& final_state = r.cex->steps.back().after;
  EXPECT_EQ(final_state.state.at("blt").at("st"), 2);
  EXPECT_EQ(verif::eval_on_state(net, "blt", *r.property.expr, final_state), 0);
  // ...is BFS-minimal for this machine (key_on, fire, then 4x (tick, fire))
  EXPECT_EQ(r.cex->steps.size(), 10u);
  // ...and replays both through the exact interpreter and through the RTOS
  // simulator down to the violating state.
  EXPECT_TRUE(verif::replay_counterexample(net, *r.cex, r.property));
  EXPECT_TRUE(verif::replay_on_rtos(net, *r.cex, r.property));
}

TEST(Check, BeltInvariantProvedOnItsOwnNetwork) {
  // The shipped belt assertion (st == 2 implies a full count) holds.
  const frontend::ParsedFile file = systems::dashboard();
  cfsm::Network net("beltnet");
  net.add_instance("blt", file.modules.at("belt"));

  const verif::VerifyResult v = verif::verify_network(net);
  ASSERT_EQ(v.assertions.size(), 1u);
  EXPECT_EQ(v.assertions[0].verdict, verif::Verdict::kProved);
  EXPECT_TRUE(v.all_proved());
}

TEST(Check, LostEventRiskIsReported) {
  // Back-to-back deliveries on 'sensor' overwrite an undetected event, so
  // the built-in property must flag the environment cluster.
  const verif::VerifyResult v = verif::verify_network(*systems::meter_network());
  EXPECT_TRUE(v.lost_events.possible);
  bool sensor_flagged = false;
  for (const auto& [subject, states] : v.lost_events.offenders)
    if (subject == "sensor") sensor_flagged = states > 0;
  EXPECT_TRUE(sensor_flagged);
}

// --- global care feedback ----------------------------------------------------

TEST(Care, MeterAssertionNeedsTheWholeNetwork) {
  // Locally, the display can see level >= 4 (the net carries int[8]); only
  // network-level reachability proves the overload state dead.
  const auto net = systems::meter_network();
  const verif::VerifyResult v = verif::verify_network(*net);
  ASSERT_EQ(v.assertions.size(), 1u);
  EXPECT_EQ(v.assertions[0].verdict, verif::Verdict::kProved);
  ASSERT_TRUE(v.care_filters.count("display"));

  // The filter rejects the locally-plausible overload combinations: a
  // present level >= 4, or overload already latched.
  const cfsm::CareFilter& filter = v.care_filters.at("display");
  cfsm::Snapshot high;
  high.present["level"] = true;
  high.value["level"] = 5;
  EXPECT_FALSE(filter(high, {{"bars", 0}, {"overload", 0}}));
  EXPECT_FALSE(filter({}, {{"bars", 0}, {"overload", 1}}));
  cfsm::Snapshot low;
  low.present["level"] = true;
  low.value["level"] = 2;
  EXPECT_TRUE(filter(low, {{"bars", 0}, {"overload", 0}}));
}

TEST(Care, GlobalCareSetShrinksTheDisplaySgraph) {
  const auto net = systems::meter_network();
  const verif::VerifyResult v = verif::verify_network(*net);
  ASSERT_TRUE(v.care_filters.count("display"));

  SynthesisOptions local;
  local.build.use_care_set = true;
  SynthesisOptions global = local;
  global.build.care_filter = v.care_filters.at("display");

  const auto display = net->instance("d").machine;
  const SynthesisResult with_local = synthesize(display, local);
  const SynthesisResult with_global = synthesize(display, global);

  // The overload branch is dead under the global care set: strictly fewer
  // s-graph nodes and a strictly smaller estimated code size.
  EXPECT_LT(with_global.graph->num_reachable(),
            with_local.graph->num_reachable());
  EXPECT_LT(with_global.estimate.size_bytes, with_local.estimate.size_bytes);

  // Theorem-1 sanity on the cared combinations: the restricted s-graph still
  // computes the exact reaction everywhere the filter cares.
  const cfsm::CareFilter& filter = v.care_filters.at("display");
  const bool complete = cfsm::enumerate_concrete_space(
      *display, 1u << 12,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        if (!filter(snap, st)) return;
        const cfsm::Reaction expect = display->react(snap, st);
        const cfsm::Reaction got =
            sgraph::run_reaction(*with_global.graph, *display, snap, st);
        EXPECT_EQ(expect.fired, got.fired);
        EXPECT_EQ(expect.emissions, got.emissions);
        EXPECT_EQ(expect.next_state, got.next_state);
      });
  EXPECT_TRUE(complete);
}

TEST(Care, NetworkSynthesisRoutesFiltersByMachineName) {
  const auto net = systems::meter_network();
  const verif::VerifyResult v = verif::verify_network(*net);

  SynthesisOptions base;
  base.build.use_care_set = true;
  base.num_threads = 1;
  SynthesisOptions with_filters = base;
  with_filters.care_filter_by_machine = v.care_filters;

  const NetworkSynthesis plain = synthesize_network(*net, base);
  const NetworkSynthesis fed = synthesize_network(*net, with_filters);
  EXPECT_LT(fed.per_instance.at("d").graph->num_reachable(),
            plain.per_instance.at("d").graph->num_reachable());
  // The quantizer has no unreachable local combinations: unchanged.
  EXPECT_EQ(fed.per_instance.at("q").graph->num_reachable(),
            plain.per_instance.at("q").graph->num_reachable());
}

}  // namespace
