// The behavioural form of Theorem 1 (§III-B2): for any CFSM, the s-graph
// built from the BDD of its characteristic function computes exactly the
// CFSM's transition function — under *every* variable ordering scheme, and
// under arbitrary random interleavings of test and action variables.
#include <gtest/gtest.h>

#include <algorithm>

#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "sgraph/build.hpp"
#include "sgraph/optimize.hpp"
#include "util/rng.hpp"

namespace polis {
namespace {

bool same_reaction(const cfsm::Reaction& a, const cfsm::Reaction& b) {
  auto sorted = [](std::vector<std::pair<std::string, std::int64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  return a.fired == b.fired && sorted(a.emissions) == sorted(b.emissions) &&
         a.next_state == b.next_state;
}

void expect_equivalent(const cfsm::Cfsm& m, const sgraph::Sgraph& g,
                       const char* what) {
  int bad = 0;
  const bool complete = cfsm::enumerate_concrete_space(
      m, 1u << 16,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        const cfsm::Reaction ref = m.react(snap, st);
        const cfsm::Reaction got = sgraph::run_reaction(g, m, snap, st);
        if (!same_reaction(ref, got)) ++bad;
      });
  ASSERT_TRUE(complete) << "concrete space too large for exhaustive check";
  EXPECT_EQ(bad, 0) << what << " mismatches on " << m.name();
}

struct Theorem1Param {
  int seed;
  sgraph::OrderingScheme scheme;
};

class Theorem1Schemes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem1Schemes, SgraphComputesTransitionFunction) {
  const int seed = std::get<0>(GetParam());
  const auto scheme =
      static_cast<sgraph::OrderingScheme>(std::get<1>(GetParam()));
  Rng rng(static_cast<std::uint64_t>(seed) * 1237 + 11);
  cfsm::RandomCfsmOptions options;
  options.num_inputs = 2 + seed % 2;
  options.num_rules = 3 + seed % 3;
  const cfsm::Cfsm m = cfsm::random_cfsm(rng, options);

  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(rf, scheme);
  expect_equivalent(m, g, sgraph::to_string(scheme));

  // Collapsing TEST chains must not change the function either (§III-B3d).
  const sgraph::Sgraph collapsed = sgraph::collapse_tests(g);
  expect_equivalent(m, collapsed, "collapsed");
}

INSTANTIATE_TEST_SUITE_P(
    SeedsBySchemes, Theorem1Schemes,
    ::testing::Combine(
        ::testing::Range(0, 10),
        ::testing::Values(
            static_cast<int>(sgraph::OrderingScheme::kNaive),
            static_cast<int>(sgraph::OrderingScheme::kSiftOutputsAfterInputs),
            static_cast<int>(
                sgraph::OrderingScheme::kSiftOutputsAfterSupport),
            static_cast<int>(sgraph::OrderingScheme::kOutputsBeforeInputs),
            static_cast<int>(sgraph::OrderingScheme::kFreeOrder))));

// Arbitrary interleavings: Theorem 1 holds for any total order, including
// ones that put actions between the tests they depend on.
class Theorem1RandomOrders : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1RandomOrders, ArbitraryInterleavingsAreCorrect) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 3);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);

  std::vector<int> vars;
  for (const cfsm::TestVariable& t : rf.tests()) vars.push_back(t.bdd_var);
  for (const cfsm::ActionVariable& a : rf.actions()) vars.push_back(a.bdd_var);

  for (int round = 0; round < 3; ++round) {
    std::shuffle(vars.begin(), vars.end(), rng.engine());
    const sgraph::Sgraph g = sgraph::build_sgraph_with_order(rf, vars);
    expect_equivalent(m, g, "random order");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1RandomOrders, ::testing::Range(0, 12));

// With the care-set restriction (false-path removal) the function must be
// unchanged on all *reachable* combinations — which is exactly what the
// exhaustive concrete sweep exercises.
class Theorem1CareSet : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1CareSet, CareSetPreservesReachableBehaviour) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 577 + 29);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  sgraph::BuildOptions options;
  options.use_care_set = true;
  const sgraph::Sgraph g =
      sgraph::build_sgraph(rf, sgraph::OrderingScheme::kNaive, options);
  expect_equivalent(m, g, "care-set");
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1CareSet, ::testing::Range(0, 12));

}  // namespace
}  // namespace polis
