#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace polis {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(split(join(parts, ";"), ';'), parts);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a"), "a");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc_1"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Strings, CIdentifierMangling) {
  EXPECT_EQ(c_identifier("wheel-raw"), "wheel_raw");
  EXPECT_EQ(c_identifier("3abc"), "_3abc");
  EXPECT_TRUE(is_identifier(c_identifier("a b$c")));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-45678), "-45,678");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(3);
  const std::vector<int> p = rng.permutation(20);
  std::vector<bool> seen(20, false);
  for (int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 20);
    EXPECT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(POLIS_CHECK(false), CheckError);
  try {
    POLIS_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "bytes"});
  t.add_row({"belt", "1,234"});
  t.add_separator();
  t.add_row({"odometer", "56"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("belt"), std::string::npos);
  EXPECT_NE(out.find("1,234"), std::string::npos);
  EXPECT_NE(out.find("odometer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, Fixed) {
  EXPECT_EQ(fixed(1.2345, 2), "1.23");
  EXPECT_EQ(fixed(2.0, 1), "2.0");
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}

TEST(ThreadPool, DisjointSlotsNeedNoLocking) {
  // The synthesis fan-out pattern: each job writes only its own slot.
  ThreadPool pool(8);
  std::vector<int> slots(256, 0);
  for (size_t i = 0; i < slots.size(); ++i) {
    pool.submit([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  pool.wait_idle();
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, DestructorDrainsPendingQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: destruction must still run everything already queued.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> seen;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&seen, i] { seen.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(seen.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace polis
