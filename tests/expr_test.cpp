#include <gtest/gtest.h>

#include <map>

#include "expr/expr.hpp"
#include "util/rng.hpp"

namespace polis::expr {
namespace {

Env env_of(std::map<std::string, std::int64_t> m) {
  return [m = std::move(m)](const std::string& name) { return m.at(name); };
}

TEST(Expr, ConstantFolding) {
  EXPECT_EQ(add(constant(2), constant(3))->value(), 5);
  EXPECT_EQ(mul(constant(4), constant(5))->value(), 20);
  EXPECT_EQ(eq(constant(1), constant(1))->value(), 1);
  EXPECT_EQ(lnot(constant(0))->value(), 1);
  EXPECT_EQ(neg(constant(7))->value(), -7);
}

TEST(Expr, IdentityFolding) {
  const ExprRef x = var("x");
  EXPECT_EQ(add(x, constant(0)).get(), x.get());
  EXPECT_EQ(add(constant(0), x).get(), x.get());
  EXPECT_EQ(mul(x, constant(1)).get(), x.get());
  EXPECT_EQ(mul(x, constant(0))->value(), 0);
  EXPECT_EQ(land(x, constant(0))->value(), 0);
  EXPECT_EQ(lor(x, constant(1))->value(), 1);
  // Logical identity folds must preserve the 0/1 result: a non-Boolean
  // operand is normalised, a Boolean-valued one passes through untouched.
  const Env env = env_of({{"x", 3}});
  EXPECT_EQ(evaluate(*land(x, constant(1)), env), 1);
  EXPECT_EQ(evaluate(*lor(x, constant(0)), env), 1);
  const ExprRef cmp = eq(x, constant(3));
  EXPECT_EQ(land(cmp, constant(1)).get(), cmp.get());
  EXPECT_EQ(lor(cmp, constant(0)).get(), cmp.get());
}

TEST(Expr, SafeDivision) {
  const Env env = env_of({{"x", 5}});
  EXPECT_EQ(evaluate(*div(var("x"), constant(0)), env), 0);
  EXPECT_EQ(evaluate(*mod(var("x"), constant(0)), env), 0);
  EXPECT_EQ(evaluate(*div(var("x"), constant(2)), env), 2);
  EXPECT_EQ(apply_op(Op::kDiv, 7, 0), 0);
  EXPECT_EQ(apply_op(Op::kMod, 7, 0), 0);
}

TEST(Expr, EvaluateAllOperators) {
  const Env env = env_of({{"a", 6}, {"b", 3}});
  const ExprRef a = var("a");
  const ExprRef b = var("b");
  EXPECT_EQ(evaluate(*add(a, b), env), 9);
  EXPECT_EQ(evaluate(*sub(a, b), env), 3);
  EXPECT_EQ(evaluate(*mul(a, b), env), 18);
  EXPECT_EQ(evaluate(*div(a, b), env), 2);
  EXPECT_EQ(evaluate(*mod(a, b), env), 0);
  EXPECT_EQ(evaluate(*eq(a, b), env), 0);
  EXPECT_EQ(evaluate(*ne(a, b), env), 1);
  EXPECT_EQ(evaluate(*lt(b, a), env), 1);
  EXPECT_EQ(evaluate(*le(a, a), env), 1);
  EXPECT_EQ(evaluate(*gt(a, b), env), 1);
  EXPECT_EQ(evaluate(*ge(b, a), env), 0);
  EXPECT_EQ(evaluate(*land(a, b), env), 1);
  EXPECT_EQ(evaluate(*lor(constant(0), b), env), 1);
  EXPECT_EQ(evaluate(*lnot(a), env), 0);
  EXPECT_EQ(evaluate(*neg(a), env), -6);
  EXPECT_EQ(evaluate(*ite(eq(a, constant(6)), b, constant(99)), env), 3);
}

TEST(Expr, LogicalResultsAreZeroOne) {
  const Env env = env_of({{"a", 17}, {"b", -2}});
  EXPECT_EQ(evaluate(*land(var("a"), var("b")), env), 1);
  EXPECT_EQ(evaluate(*lor(var("a"), var("b")), env), 1);
  EXPECT_EQ(evaluate(*lnot(var("a")), env), 0);
}

TEST(Expr, ToCPrecedence) {
  const ExprRef e = mul(add(var("a"), var("b")), constant(2));
  EXPECT_EQ(to_c(*e), "(a + b) * 2");
  const ExprRef f = add(var("a"), mul(var("b"), constant(2)));
  EXPECT_EQ(to_c(*f), "a + b * 2");
  const ExprRef g = lnot(eq(var("a"), constant(0)));
  EXPECT_EQ(to_c(*g), "!(a == 0)");
  const ExprRef h = ite(var("c"), var("x"), var("y"));
  EXPECT_EQ(to_c(*h), "c ? x : y");
}

TEST(Expr, ToCSubtractionAssociativity) {
  // a - (b - c) must not print as a - b - c.
  const ExprRef e = sub(var("a"), sub(var("b"), var("c")));
  EXPECT_EQ(to_c(*e), "a - (b - c)");
  const ExprRef f = sub(sub(var("a"), var("b")), var("c"));
  EXPECT_EQ(to_c(*f), "a - b - c");
}

TEST(Expr, Support) {
  const ExprRef e = add(mul(var("a"), var("b")), ite(var("c"), var("a"),
                                                     constant(3)));
  const std::set<std::string> s = support(*e);
  EXPECT_EQ(s, (std::set<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(support(*constant(5)).empty());
}

TEST(Expr, StructuralEqualityAndHash) {
  const ExprRef a1 = add(var("x"), constant(1));
  const ExprRef a2 = add(var("x"), constant(1));
  const ExprRef b = add(var("x"), constant(2));
  EXPECT_TRUE(equal(*a1, *a2));
  EXPECT_FALSE(equal(*a1, *b));
  EXPECT_EQ(hash(*a1), hash(*a2));
}

TEST(Expr, OpCountAndHistogram) {
  const ExprRef e = add(mul(var("a"), var("b")), constant(1));
  EXPECT_EQ(op_count(*e), 2);
  const std::vector<int> h = op_histogram(*e);
  EXPECT_EQ(h[static_cast<size_t>(Op::kAdd)], 1);
  EXPECT_EQ(h[static_cast<size_t>(Op::kMul)], 1);
  EXPECT_EQ(h[static_cast<size_t>(Op::kVar)], 2);
  EXPECT_EQ(op_count(*var("v")), 0);
}

// Property: random expressions evaluate identically before and after a
// to_c print (printing must not depend on mutation) and equal() is reflexive.
class ExprProperty : public ::testing::TestWithParam<int> {};

ExprRef random_expr(Rng& rng, int depth) {
  if (depth == 0 || rng.flip(0.3)) {
    return rng.flip() ? constant(rng.uniform(-4, 4))
                      : var("v" + std::to_string(rng.uniform(0, 3)));
  }
  const ExprRef a = random_expr(rng, depth - 1);
  const ExprRef b = random_expr(rng, depth - 1);
  switch (rng.uniform(0, 7)) {
    case 0: return add(a, b);
    case 1: return sub(a, b);
    case 2: return mul(a, b);
    case 3: return div(a, b);
    case 4: return eq(a, b);
    case 5: return lt(a, b);
    case 6: return land(a, b);
    default: return ite(a, b, random_expr(rng, depth - 1));
  }
}

TEST_P(ExprProperty, EvaluationDeterministicAndEqualReflexive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const ExprRef e = random_expr(rng, 4);
  const Env env = env_of({{"v0", 1}, {"v1", -3}, {"v2", 0}, {"v3", 7}});
  const std::int64_t v1 = evaluate(*e, env);
  const std::string printed = to_c(*e);
  EXPECT_FALSE(printed.empty());
  EXPECT_EQ(evaluate(*e, env), v1);
  EXPECT_TRUE(equal(*e, *e));
  EXPECT_EQ(hash(*e), hash(*e));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace polis::expr
