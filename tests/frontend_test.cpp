#include <gtest/gtest.h>

#include "core/systems.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "util/check.hpp"

namespace polis::frontend {
namespace {

TEST(Lexer, TokenisesOperatorsAndComments) {
  const auto tokens = lex("a := b + 1; # comment\n-> && == <=");
  std::vector<Tok> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<Tok>{Tok::kIdent, Tok::kAssign, Tok::kIdent,
                              Tok::kPlus, Tok::kNumber, Tok::kSemi,
                              Tok::kArrow, Tok::kAndAnd, Tok::kEqEq, Tok::kLe,
                              Tok::kEof}));
}

TEST(Lexer, TracksLineNumbers) {
  const auto tokens = lex("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, RejectsUnknownCharacter) {
  EXPECT_THROW(lex("a @ b"), ParseError);
}

TEST(Parser, SimpleModule) {
  const auto m = parse_module(R"(
    module simple {
      input c : int[16];
      output y;
      state a : int[16] = 0;
      when present(c) && a == value(c) -> { a := 0; emit y; }
      when present(c) && a != value(c) -> { a := a + 1; }
    }
  )");
  EXPECT_EQ(m->name(), "simple");
  ASSERT_EQ(m->inputs().size(), 1u);
  EXPECT_EQ(m->inputs()[0].domain, 16);
  ASSERT_EQ(m->outputs().size(), 1u);
  EXPECT_TRUE(m->outputs()[0].is_pure());
  ASSERT_EQ(m->state().size(), 1u);
  EXPECT_EQ(m->rules().size(), 2u);

  // Behaviour check straight from the parsed machine.
  cfsm::Snapshot snap;
  snap.present["c"] = true;
  snap.value["c"] = 3;
  const cfsm::Reaction r = m->react(snap, {{"a", 3}});
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "y");
  EXPECT_EQ(r.next_state.at("a"), 0);
}

TEST(Parser, ValuedEmissionAndPrecedence) {
  const auto m = parse_module(R"(
    module math {
      input x : int[8];
      output y : int[8];
      when present(x) -> { emit y(value(x) * 2 + 1); }
    }
  )");
  cfsm::Snapshot snap;
  snap.present["x"] = true;
  snap.value["x"] = 3;
  const cfsm::Reaction r = m->react(snap, {});
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].second, 7);
}

TEST(Parser, UnaryAndParens) {
  const auto m = parse_module(R"(
    module u {
      input e;
      output y;
      state a : int[4] = 2;
      when !present(e) && (a >= 1) -> { emit y; }
    }
  )");
  // With e absent and a >= 1 the (negated, parenthesised) guard holds.
  EXPECT_TRUE(m->react({}, {{"a", 2}}).fired);
  // With e present the negation fails.
  cfsm::Snapshot snap;
  snap.present["e"] = true;
  EXPECT_FALSE(m->react(snap, {{"a", 2}}).fired);
  // With a == 0 the relational atom fails.
  EXPECT_FALSE(m->react({}, {{"a", 0}}).fired);
}

TEST(Parser, NetworkWithBindings) {
  const ParsedFile file = parse(R"(
    module relay {
      input i;
      output o;
      when present(i) -> { emit o; }
    }
    network two {
      instance a : relay (i = left, o = mid);
      instance b : relay (i = mid, o = right);
    }
  )");
  ASSERT_EQ(file.networks.size(), 1u);
  const auto net = file.networks.at("two");
  EXPECT_EQ(net->external_inputs(), std::vector<std::string>{"left"});
  EXPECT_EQ(net->internal_nets(), std::vector<std::string>{"mid"});
  EXPECT_EQ(net->external_outputs(), std::vector<std::string>{"right"});
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse("module m {\n  input c : int[1];\n}");
    FAIL() << "domain 1 must be rejected";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse("module m { junk }"), ParseError);
  EXPECT_THROW(parse("network n { instance a : nothing; }"), ParseError);
  EXPECT_THROW(parse("module m { input c; } module m { input d; }"),
               ParseError);
  // Semantic validation surfaces as ParseError too.
  EXPECT_THROW(parse("module m { input c; when present(ghost) -> { } }"),
               ParseError);
}

TEST(Parser, ParseModuleRequiresExactlyOne) {
  try {
    parse_module("module a { input i; }\nmodule b { input i; }");
    FAIL() << "two modules must be rejected";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);  // points at the second declaration
    EXPECT_NE(std::string(e.what()).find("'b'"), std::string::npos);
  }
  try {
    parse_module("");
    FAIL() << "zero modules must be rejected";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(std::string(e.what()).find("none"), std::string::npos);
  }
  // The declaration lines are recorded for every module.
  const ParsedFile file =
      parse("module a { input i; }\n\nmodule b { input i; }");
  EXPECT_EQ(file.module_lines.at("a"), 1);
  EXPECT_EQ(file.module_lines.at("b"), 3);
}

TEST(Systems, DashboardSourceParses) {
  const ParsedFile dash = systems::dashboard();
  EXPECT_EQ(dash.modules.size(), 6u);
  EXPECT_EQ(dash.networks.size(), 2u);
  EXPECT_EQ(dash.networks.at("dash")->instances().size(), 7u);
  EXPECT_FALSE(dash.networks.at("dash")->topological_order().empty());
}

TEST(Systems, ShockSourceParses) {
  const ParsedFile shock = systems::shock_absorber();
  EXPECT_EQ(shock.modules.size(), 4u);
  EXPECT_EQ(shock.networks.at("shock")->instances().size(), 4u);
  EXPECT_FALSE(shock.networks.at("shock")->topological_order().empty());
}

}  // namespace
}  // namespace polis::frontend
