// Scenario tests of the microwave oven system, at both levels: reference
// CFSM semantics driven by hand, and the whole network running under the
// RTOS simulator with synthesized VM tasks.
#include <gtest/gtest.h>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "vm/machine.hpp"

namespace polis::systems {
namespace {

cfsm::Snapshot present(std::initializer_list<const char*> sigs) {
  cfsm::Snapshot s;
  for (const char* sig : sigs) s.present[sig] = true;
  return s;
}

std::shared_ptr<const cfsm::Cfsm> module(const char* name) {
  return microwave().modules.at(name);
}

TEST(Microwave, KeypadAccumulatesAndFires) {
  const auto pad = module("keypad");
  auto st = pad->initial_state();
  cfsm::Snapshot d = present({"digit"});
  d.value["digit"] = 2;
  st = pad->react(d, st).next_state;
  d.value["digit"] = 3;
  st = pad->react(d, st).next_state;
  EXPECT_EQ(st.at("acc"), 5);

  const cfsm::Reaction go = pad->react(present({"start_btn"}), st);
  ASSERT_EQ(go.emissions.size(), 2u);
  // set_time carries the accumulated minutes; start is pure.
  std::map<std::string, std::int64_t> emitted(go.emissions.begin(),
                                              go.emissions.end());
  EXPECT_EQ(emitted.at("set_time"), 5);
  EXPECT_EQ(emitted.count("start"), 1u);
  EXPECT_EQ(go.next_state.at("acc"), 0);  // cleared after starting

  // Start with nothing entered: no reaction fires, events preserved.
  EXPECT_FALSE(pad->react(present({"start_btn"}), go.next_state).fired);
}

TEST(Microwave, ControllerInterlockAndCountdown) {
  const auto ctl = module("controller");
  auto st = ctl->initial_state();

  // Start a 2-minute cook.
  cfsm::Snapshot go = present({"set_time", "start"});
  go.value["set_time"] = 2;
  cfsm::Reaction r = ctl->react(go, st);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "heat_on");
  EXPECT_EQ(r.next_state.at("cooking"), 1);
  st = r.next_state;

  // First minute: silent countdown.
  r = ctl->react(present({"tick"}), st);
  EXPECT_TRUE(r.emissions.empty());
  EXPECT_EQ(r.next_state.at("remaining"), 1);
  st = r.next_state;

  // Last minute: heat off + done.
  r = ctl->react(present({"tick"}), st);
  ASSERT_EQ(r.emissions.size(), 2u);
  EXPECT_EQ(r.next_state.at("cooking"), 0);
  st = r.next_state;

  // Ticks while idle do nothing.
  EXPECT_FALSE(ctl->react(present({"tick"}), st).fired);
}

TEST(Microwave, OpeningDoorStopsHeat) {
  const auto ctl = module("controller");
  auto st = ctl->initial_state();
  cfsm::Snapshot go = present({"set_time", "start"});
  go.value["set_time"] = 3;
  st = ctl->react(go, st).next_state;

  const cfsm::Reaction open = ctl->react(present({"door_open"}), st);
  ASSERT_EQ(open.emissions.size(), 1u);
  EXPECT_EQ(open.emissions[0].first, "heat_off");
  EXPECT_EQ(open.next_state.at("cooking"), 0);
  EXPECT_EQ(open.next_state.at("door"), 0);

  // Cannot start with the door open.
  const cfsm::Reaction blocked = ctl->react(go, open.next_state);
  for (const auto& [sig, v] : blocked.emissions) {
    (void)v;
    EXPECT_NE(sig, "heat_on");
  }
}

TEST(Microwave, EndToEndScenarioUnderRtos) {
  const auto net = microwave_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  rtos::RtosSimulation sim(*net, rtos::RtosConfig{});
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    options.optimize_copy_in = true;
    const SynthesisResult r = synthesize(inst.machine, options);
    sim.set_task(inst.name,
                 rtos::vm_task(r.compiled, vm::hc11_like(), inst.machine));
  }

  const rtos::SimStats stats = sim.run({
      {1'000, "digit", 2},
      {2'000, "start_btn", 0},
      {10'000, "tick", 0},
      {20'000, "tick", 0},
      {30'000, "tick", 0},  // idle tick after completion
  });

  // Expected external outputs, in order: power=1, power=0 (at done), beep.
  std::vector<std::pair<std::string, std::int64_t>> seen;
  for (const rtos::ObservedEmission& e : stats.outputs)
    seen.emplace_back(e.net, e.value);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::int64_t>{"power", 1}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::int64_t>{"power", 0}));
  EXPECT_EQ(seen[2], (std::pair<std::string, std::int64_t>{"beep", 0}));
}

TEST(Microwave, DoorInterruptScenarioUnderRtos) {
  const auto net = microwave_network();
  const estim::CostModel model = estim::calibrate(vm::hc11_like());
  rtos::RtosSimulation sim(*net, rtos::RtosConfig{});
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model;
    const SynthesisResult r = synthesize(inst.machine, options);
    sim.set_task(inst.name,
                 rtos::vm_task(r.compiled, vm::hc11_like(), inst.machine));
  }

  const rtos::SimStats stats = sim.run({
      {1'000, "digit", 3},
      {2'000, "start_btn", 0},
      {10'000, "door_open", 0},   // heat must stop, no beep
      {20'000, "tick", 0},        // ignored: not cooking
      {30'000, "door_closed", 0},
  });

  std::vector<std::pair<std::string, std::int64_t>> seen;
  for (const rtos::ObservedEmission& e : stats.outputs)
    seen.emplace_back(e.net, e.value);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::int64_t>{"power", 1}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::int64_t>{"power", 0}));
}

TEST(Microwave, NetworkWellFormed) {
  const auto net = microwave_network();
  EXPECT_EQ(net->instances().size(), 4u);
  EXPECT_FALSE(net->topological_order().empty());
  EXPECT_EQ(microwave_modules().size(), 4u);
  const auto outs = net->external_outputs();
  EXPECT_NE(std::find(outs.begin(), outs.end(), "power"), outs.end());
  EXPECT_NE(std::find(outs.begin(), outs.end(), "beep"), outs.end());
}

}  // namespace
}  // namespace polis::systems
