// Behavioural tests of the reconstructed evaluation systems (§V): the
// dashboard chain and the shock absorber modules must do what the paper's
// prose says they do.
#include <gtest/gtest.h>

#include "core/systems.hpp"

namespace polis::systems {
namespace {

std::shared_ptr<const cfsm::Cfsm> module(const char* name) {
  const auto file = dashboard();
  auto it = file.modules.find(name);
  if (it != file.modules.end()) return it->second;
  const auto shock = shock_absorber();
  return shock.modules.at(name);
}

cfsm::Snapshot present(std::initializer_list<const char*> sigs) {
  cfsm::Snapshot s;
  for (const char* sig : sigs) s.present[sig] = true;
  return s;
}

TEST(Belt, AlarmAfterFourTicksWithoutBelt) {
  const auto belt = module("belt");
  auto st = belt->initial_state();
  // Key on.
  st = belt->react(present({"key_on"}), st).next_state;
  EXPECT_EQ(st.at("st"), 1);
  // Three ticks: still counting.
  for (int i = 0; i < 3; ++i) {
    const cfsm::Reaction r = belt->react(present({"tick"}), st);
    EXPECT_TRUE(r.emissions.empty());
    st = r.next_state;
  }
  // Fourth tick: alarm.
  const cfsm::Reaction r = belt->react(present({"tick"}), st);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "alarm");
  EXPECT_EQ(r.next_state.at("st"), 2);
}

TEST(Belt, FasteningBeltCancelsAlarm) {
  const auto belt = module("belt");
  auto st = belt->initial_state();
  st = belt->react(present({"key_on"}), st).next_state;
  st = belt->react(present({"tick"}), st).next_state;
  const cfsm::Reaction r = belt->react(present({"belt_on"}), st);
  EXPECT_EQ(r.next_state.at("st"), 0);  // back to idle
  // Ticks after fastening never alarm.
  auto st2 = r.next_state;
  for (int i = 0; i < 10; ++i) {
    const cfsm::Reaction t = belt->react(present({"tick"}), st2);
    EXPECT_TRUE(t.emissions.empty());
    st2 = t.next_state;
  }
}

TEST(Debounce, RequiresConsecutivePulses) {
  const auto deb = module("debounce");
  auto st = deb->initial_state();
  // First two raw pulses are swallowed.
  for (int i = 0; i < 2; ++i) {
    const cfsm::Reaction r = deb->react(present({"raw"}), st);
    EXPECT_TRUE(r.emissions.empty());
    st = r.next_state;
  }
  // Third consecutive pulse passes through.
  const cfsm::Reaction r = deb->react(present({"raw"}), st);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "clean");
  // A quiet tick resets the counter.
  auto st2 = deb->react(present({"tick"}), r.next_state).next_state;
  EXPECT_EQ(st2.at("cnt"), 0);
}

TEST(PulseCounter, CountsPerWindow) {
  const auto cnt = module("pulse_counter");
  auto st = cnt->initial_state();
  for (int i = 0; i < 5; ++i)
    st = cnt->react(present({"pulse"}), st).next_state;
  const cfsm::Reaction r = cnt->react(present({"tick"}), st);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "count");
  EXPECT_EQ(r.emissions[0].second, 5);
  EXPECT_EQ(r.next_state.at("n"), 0);  // window restarts
}

TEST(Speedometer, EmitsOnlyOnChange) {
  const auto spd = module("speedometer");
  auto st = spd->initial_state();
  cfsm::Snapshot snap = present({"count"});
  snap.value["count"] = 3;
  const cfsm::Reaction first = spd->react(snap, st);
  ASSERT_EQ(first.emissions.size(), 1u);
  EXPECT_EQ(first.emissions[0].second, 6);  // PWM = 2 * speed
  // Same value again: no emission, but still consumed.
  const cfsm::Reaction second = spd->react(snap, first.next_state);
  EXPECT_TRUE(second.emissions.empty());
  EXPECT_TRUE(second.fired);
}

TEST(Odometer, RollsOverEverySixteenPulses) {
  const auto odo = module("odometer");
  auto st = odo->initial_state();
  int rollovers = 0;
  for (int i = 0; i < 8; ++i) {
    cfsm::Snapshot snap = present({"count"});
    snap.value["count"] = 6;  // 8 * 6 = 48 = 3 * 16
    const cfsm::Reaction r = odo->react(snap, st);
    rollovers += static_cast<int>(r.emissions.size());
    st = r.next_state;
  }
  EXPECT_EQ(rollovers, 3);
  EXPECT_EQ(st.at("acc"), 0);
}

TEST(Tachometer, TracksPeak) {
  const auto tach = module("tachometer");
  auto st = tach->initial_state();
  cfsm::Snapshot snap = present({"rpm"});
  snap.value["rpm"] = 5;
  const cfsm::Reaction up = tach->react(snap, st);
  EXPECT_EQ(up.next_state.at("peak"), 5);
  ASSERT_EQ(up.emissions.size(), 1u);
  EXPECT_EQ(up.emissions[0].second, 11);  // 2*5+1
  snap.value["rpm"] = 3;
  const cfsm::Reaction down = tach->react(snap, up.next_state);
  EXPECT_EQ(down.next_state.at("peak"), 5);  // peak holds
  ASSERT_EQ(down.emissions.size(), 1u);
  EXPECT_EQ(down.emissions[0].second, 8);  // 3 + 5
}

TEST(Sampler, HoldsLastValueBetweenTicks) {
  const auto smp = module("sampler");
  auto st = smp->initial_state();
  cfsm::Snapshot acc = present({"accel"});
  acc.value["accel"] = 9;
  st = smp->react(acc, st).next_state;
  EXPECT_EQ(st.at("hold"), 9);
  // Tick without a fresh sample: emits the held value.
  const cfsm::Reaction r = smp->react(present({"tick"}), st);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].second, 9);
  // Tick with a fresh sample: emits the fresh one.
  cfsm::Snapshot both = present({"tick", "accel"});
  both.value["accel"] = 4;
  const cfsm::Reaction r2 = smp->react(both, st);
  ASSERT_EQ(r2.emissions.size(), 1u);
  EXPECT_EQ(r2.emissions[0].second, 4);
}

TEST(ControlLaw, ModeTogglesGain) {
  const auto law = module("control_law");
  auto st = law->initial_state();
  cfsm::Snapshot s = present({"sample"});
  s.value["sample"] = 8;
  const cfsm::Reaction comfort = law->react(s, st);
  ASSERT_EQ(comfort.emissions.size(), 1u);
  EXPECT_EQ(comfort.emissions[0].second, 1);  // (8+0)/8
  // Toggle to sport.
  st = law->react(present({"mode"}), st).next_state;
  EXPECT_EQ(st.at("sport"), 1);
  const cfsm::Reaction sport = law->react(s, st);
  ASSERT_EQ(sport.emissions.size(), 1u);
  EXPECT_EQ(sport.emissions[0].second, 4);  // (8+0)/4 + 2
}

TEST(Actuator, SlewLimited) {
  const auto act = module("actuator");
  auto st = act->initial_state();
  cfsm::Snapshot cmd = present({"damper"});
  cmd.value["damper"] = 3;
  // Needs three steps to reach the command.
  for (int i = 1; i <= 3; ++i) {
    const cfsm::Reaction r = act->react(cmd, st);
    ASSERT_EQ(r.emissions.size(), 1u) << "step " << i;
    EXPECT_EQ(r.emissions[0].second, i);
    st = r.next_state;
  }
  // At the target: no movement.
  const cfsm::Reaction hold = act->react(cmd, st);
  EXPECT_TRUE(hold.emissions.empty());
  EXPECT_TRUE(hold.fired);
}

TEST(Watchdog, FaultsAfterMissedSamples) {
  const auto wdg = module("watchdog");
  auto st = wdg->initial_state();
  st = wdg->react(present({"tick"}), st).next_state;
  st = wdg->react(present({"tick"}), st).next_state;
  const cfsm::Reaction r = wdg->react(present({"tick"}), st);
  ASSERT_EQ(r.emissions.size(), 1u);
  EXPECT_EQ(r.emissions[0].first, "fault");
  // A sample resets the miss counter.
  cfsm::Snapshot s = present({"sample"});
  s.value["sample"] = 0;
  EXPECT_EQ(wdg->react(s, r.next_state).next_state.at("miss"), 0);
}

TEST(Networks, WellFormed) {
  EXPECT_EQ(dashboard_modules().size(), 6u);
  EXPECT_EQ(shock_modules().size(), 4u);
  const auto dash = dash_network();
  EXPECT_EQ(dash->instances().size(), 7u);
  EXPECT_FALSE(dash->topological_order().empty());
  // Expected interface of the dashboard.
  const auto ins = dash->external_inputs();
  EXPECT_NE(std::find(ins.begin(), ins.end(), "wheel_raw"), ins.end());
  EXPECT_NE(std::find(ins.begin(), ins.end(), "key_on"), ins.end());
  const auto outs = dash->external_outputs();
  EXPECT_NE(std::find(outs.begin(), outs.end(), "speed_pwm"), outs.end());
  EXPECT_NE(std::find(outs.begin(), outs.end(), "alarm"), outs.end());
  const auto shock = shock_network();
  EXPECT_EQ(shock->instances().size(), 4u);
  EXPECT_FALSE(shock->topological_order().empty());
}

}  // namespace
}  // namespace polis::systems
