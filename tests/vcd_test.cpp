// Streaming VCD export: the abort regression (a run terminated by the
// watchdog or a degradation policy must still flush a loadable waveform),
// live-vs-post-hoc byte identity, and the shared timebase between the VCD
// document and the simulated-cycle trace lanes (`record_sim_trace`).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "obs/trace.hpp"
#include "rtos/rtos.hpp"
#include "rtos/sim_trace.hpp"
#include "rtos/vcd.hpp"

namespace polis::rtos {
namespace {

std::shared_ptr<cfsm::Cfsm> relay(const std::string& name) {
  return std::make_shared<cfsm::Cfsm>(
      name, std::vector<cfsm::Signal>{{"i", 1}},
      std::vector<cfsm::Signal>{{"o", 1}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{cfsm::presence("i"), {cfsm::Emit{"o", nullptr}}, {}}});
}

// Minimal structural read of a VCD document: wire-name → id from the
// declarations, then the ordered (time, change) list from the body.
struct ParsedVcd {
  std::map<std::string, std::string> wire_id;  // declared name -> id
  std::vector<std::pair<long long, std::string>> changes;
  long long final_time = -1;
};

ParsedVcd parse_vcd(const std::string& text) {
  ParsedVcd out;
  std::istringstream is(text);
  std::string line;
  bool in_body = false;
  long long now = -1;
  while (std::getline(is, line)) {
    if (!in_body) {
      // "$var wire 1 <id> <name> $end" / "$var integer 64 <id> <name> $end"
      if (line.rfind("$var ", 0) == 0) {
        std::istringstream ls(line);
        std::string var, kind, width, id, name;
        ls >> var >> kind >> width >> id >> name;
        out.wire_id[name] = id;
      }
      if (line == "$enddefinitions $end") in_body = true;
      continue;
    }
    if (line.empty() || line == "$dumpvars" || line == "$end") continue;
    if (line[0] == '#') {
      now = std::stoll(line.substr(1));
      out.final_time = now;
      continue;
    }
    // Initial values inside the $dumpvars block precede the first timestamp
    // and are not body changes.
    if (now >= 0) out.changes.emplace_back(now, line);
  }
  return out;
}

// The regression this file exists for: before the streaming writer, a run
// that aborted produced no waveform at all (the post-hoc export ran after a
// completed run only), and a naive streaming export would have left task
// wires stuck high with no final timestamp.
TEST(Vcd, AbortedRunStillFlushesLoadableWaveform) {
  // a and b feed each other; one stimulus ping-pongs until the watchdog
  // kills the run mid-flight.
  cfsm::Network net("cycle");
  net.add_instance("a", relay("ra"), {{"i", "x"}, {"o", "y"}});
  net.add_instance("b", relay("rb"), {{"i", "y"}, {"o", "x"}});

  std::ostringstream os;
  VcdWriter live(net, os);
  RtosConfig config;
  config.watchdog.livelock_reactions = 50;
  config.live_vcd = &live;  // no collect_log: streaming alone must suffice
  RtosSimulation sim(net, config);
  sim.set_reference_task("a", 100);
  sim.set_reference_task("b", 100);
  const SimStats stats = sim.run({{0, "x", 0}});
  ASSERT_TRUE(stats.aborted);
  ASSERT_TRUE(stats.watchdog_fired);
  EXPECT_TRUE(live.finished());  // run() flushed on the abort path

  const std::string text = os.str();
  ASSERT_FALSE(text.empty());
  const ParsedVcd vcd = parse_vcd(text);
  ASSERT_GT(vcd.wire_id.count("a"), 0u);
  ASSERT_GT(vcd.wire_id.count("b"), 0u);

  // Every task activation is closed: per task wire, #rises == #falls, and
  // the last change drives it low.
  for (const std::string task : {"a", "b"}) {
    const std::string& id = vcd.wire_id.at(task);
    int rises = 0, falls = 0;
    std::string last;
    for (const auto& [time, change] : vcd.changes) {
      if (change == "1" + id) { ++rises; last = change; }
      if (change == "0" + id) { ++falls; last = change; }
    }
    EXPECT_EQ(rises, falls) << "task " << task << " wire left open";
    if (!last.empty()) {
      EXPECT_EQ(last[0], '0') << "task " << task;
    }
  }
  // The document is closed with a final timestamp past the abort point.
  EXPECT_GE(vcd.final_time, stats.end_time);

  // Body is monotonic (VCD requirement) — the live writer sorted the
  // approximately-ordered event stream.
  long long prev = -1;
  std::istringstream is(text);
  std::string line;
  bool in_body = false;
  while (std::getline(is, line)) {
    if (line == "$enddefinitions $end") { in_body = true; continue; }
    if (!in_body || line.empty() || line[0] != '#') continue;
    const long long t = std::stoll(line.substr(1));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Vcd, LiveWriterMatchesPostHocExportByteForByte) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});

  std::ostringstream live_os;
  VcdWriter live(net, live_os);
  RtosConfig config;
  config.collect_log = true;
  config.live_vcd = &live;
  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run({{10, "in", 0}, {500, "in", 0}});
  ASSERT_FALSE(stats.aborted);
  ASSERT_TRUE(live.finished());

  std::ostringstream posthoc_os;
  write_vcd(net, stats, posthoc_os);
  EXPECT_EQ(live_os.str(), posthoc_os.str());
}

TEST(Vcd, FinishIsIdempotent) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  std::ostringstream os;
  VcdWriter writer(net, os);
  writer.finish(10);
  const std::string once = os.str();
  writer.finish(20);  // must not write a second body
  EXPECT_EQ(os.str(), once);
}

// One timebase across the two exports: a trace tick on the simulated-cycle
// lanes (pid kPidSim) equals a VCD timescale unit. Every task span recorded
// by record_sim_trace must line up with the 1/0 edges of that task's VCD
// wire at the same integer times.
TEST(Vcd, SimTraceAndVcdShareOneTimebase) {
  cfsm::Network net("n");
  net.add_instance("r", relay("relay"), {{"i", "in"}, {"o", "out"}});
  std::ostringstream vcd_os;
  VcdWriter live(net, vcd_os);
  RtosConfig config;
  config.collect_log = true;
  config.live_vcd = &live;
  RtosSimulation sim(net, config);
  sim.set_reference_task("r", 100);
  const SimStats stats = sim.run({{10, "in", 0}, {500, "in", 0}});

  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  record_sim_trace(net, stats, recorder);
  recorder.set_enabled(false);

  const ParsedVcd vcd = parse_vcd(vcd_os.str());
  const std::string& id = vcd.wire_id.at("r");
  std::set<long long> rise_times, fall_times;
  for (const auto& [time, change] : vcd.changes) {
    if (change == "1" + id) rise_times.insert(time);
    if (change == "0" + id) fall_times.insert(time);
  }
  ASSERT_FALSE(rise_times.empty());

  int task_spans = 0;
  for (const obs::TraceEvent& e : recorder.collect()) {
    if (e.pid != obs::kPidSim || e.ph != 'X') continue;
    ++task_spans;
    EXPECT_EQ(rise_times.count(e.ts), 1u)
        << "span start " << e.ts << " has no VCD rise";
    EXPECT_EQ(fall_times.count(e.ts + e.dur), 1u)
        << "span end " << e.ts + e.dur << " has no VCD fall";
  }
  EXPECT_EQ(task_spans, static_cast<int>(rise_times.size()));
}

}  // namespace
}  // namespace polis::rtos
