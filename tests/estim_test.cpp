#include <gtest/gtest.h>

#include <cmath>

#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "estim/calibrate.hpp"
#include "estim/estimate.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "vm/machine.hpp"

namespace polis::estim {
namespace {

const CostModel& model_hc11() {
  static const CostModel m = calibrate(vm::hc11_like());
  return m;
}

TEST(Calibrate, ParametersArePositiveAndOrdered) {
  const CostModel& m = model_hc11();
  EXPECT_EQ(m.target_name, "hc11");
  EXPECT_GT(m.cyc_func_enter, 0);
  EXPECT_GT(m.cyc_func_return, 0);
  EXPECT_GT(m.cyc_copy_in_per_var, 0);
  EXPECT_GT(m.cyc_test_presence, 0);
  EXPECT_GT(m.cyc_leaf, 0);
  EXPECT_GT(m.cyc_op_mul, m.cyc_op_alu);  // library MUL costs more than ADD
  EXPECT_GT(m.cyc_op_div, m.cyc_op_mul);
  EXPECT_GT(m.cyc_assign_emit, 0);
  EXPECT_GT(m.cyc_consume, 0);
  EXPECT_GT(m.sz_branch, 0);
  EXPECT_GT(m.sz_goto, 0);
  EXPECT_GT(m.sz_leaf, 0);
  // Taken branch (else edge) costs more than the fall-through on this CISC.
  EXPECT_GT(m.cyc_test_edge_false, m.cyc_test_edge_true);
  EXPECT_GT(m.goto_fraction, 0.0);
  EXPECT_LT(m.goto_fraction, 1.0);
  EXPECT_GE(m.inverted_branch_fraction, 0.0);
  EXPECT_LE(m.inverted_branch_fraction, 1.0);
}

TEST(Calibrate, MatchesProfileGroundTruth) {
  // The micro-benchmark method must recover the per-style VM costs exactly
  // (the paper's calibration measures, it does not read the datasheet).
  const vm::TargetProfile p = vm::hc11_like();
  const CostModel& m = model_hc11();
  EXPECT_DOUBLE_EQ(m.cyc_test_presence, p.cyc_detect);
  EXPECT_DOUBLE_EQ(m.cyc_assign_emit, p.cyc_emit);
  EXPECT_DOUBLE_EQ(m.cyc_assign_store, p.cyc_st);
  EXPECT_DOUBLE_EQ(m.cyc_consume, p.cyc_consume);
  EXPECT_DOUBLE_EQ(m.cyc_op_mul, p.cyc_mul);
  EXPECT_DOUBLE_EQ(m.cyc_goto, p.cyc_jmp);
  EXPECT_DOUBLE_EQ(m.cyc_test_edge_false, p.cyc_branch_taken);
  EXPECT_DOUBLE_EQ(m.cyc_test_edge_true, p.cyc_branch_fall);
  EXPECT_DOUBLE_EQ(m.sz_assign_emit, p.sz_emit);
  EXPECT_DOUBLE_EQ(m.sz_branch, p.sz_branch);
}

TEST(Estimate, ContextForMachine) {
  cfsm::Cfsm m("m", {{"c", 4}, {"p", 1}}, {{"y", 1}}, {{"a", 4, 0}, {"b", 2, 0}},
               {cfsm::Rule{cfsm::presence("c"), {cfsm::Emit{"y", nullptr}}, {}}});
  const EstimateContext ctx = context_for(m);
  EXPECT_EQ(ctx.num_state_vars, 2);
  EXPECT_EQ(ctx.presence_vars,
            (std::set<std::string>{"present_c", "present_p"}));
}

TEST(Estimate, ExprCostsScaleWithOperators) {
  const CostModel& m = model_hc11();
  EstimateContext ctx;
  const expr::ExprRef small = expr::var("a");
  const expr::ExprRef big =
      expr::mul(expr::add(expr::var("a"), expr::var("b")), expr::var("c"));
  EXPECT_LT(expr_cycles(*small, m, ctx), expr_cycles(*big, m, ctx));
  EXPECT_LT(expr_bytes(*small, m, ctx), expr_bytes(*big, m, ctx));
  // Division dominates.
  const expr::ExprRef divide = expr::div(expr::var("a"), expr::var("b"));
  const expr::ExprRef addition = expr::add(expr::var("a"), expr::var("b"));
  EXPECT_GT(expr_cycles(*divide, m, ctx), expr_cycles(*addition, m, ctx));
}

TEST(Estimate, PresenceLeafCostsDetectCall) {
  const CostModel& m = model_hc11();
  EstimateContext ctx;
  ctx.presence_vars.insert("present_c");
  const expr::ExprRef presence = expr::var("present_c");
  const expr::ExprRef plain = expr::var("a");
  EXPECT_DOUBLE_EQ(expr_cycles(*presence, m, ctx), m.cyc_test_presence);
  EXPECT_DOUBLE_EQ(expr_cycles(*plain, m, ctx), m.cyc_leaf);
  EXPECT_DOUBLE_EQ(expr_bytes(*presence, m, ctx), m.sz_test_presence);
}

TEST(Estimate, MinNeverExceedsMax) {
  Rng rng(5);
  const CostModel& model = model_hc11();
  for (int i = 0; i < 10; ++i) {
    const cfsm::Cfsm m = cfsm::random_cfsm(rng);
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(m, mgr);
    const sgraph::Sgraph g =
        sgraph::build_sgraph(rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    const Estimate e = estimate(g, model, context_for(m));
    EXPECT_GT(e.size_bytes, 0);
    EXPECT_GT(e.min_cycles, 0);
    EXPECT_LE(e.min_cycles, e.max_cycles);
  }
}

// Bound validity on random machines: the static min/max path analysis must
// bracket every measured execution (up to small layout noise); the max may
// be loose when the longest static path is a false path — exactly the
// phenomenon §III-C discusses — but never wildly so.
class EstimationBounds : public ::testing::TestWithParam<int> {};

TEST_P(EstimationBounds, StaticPathsBracketMeasuredCycles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const cfsm::Cfsm m = cfsm::random_cfsm(rng);
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
  const vm::CompiledReaction cr = vm::compile(g, vm::SymbolInfo::from(m));
  const Estimate e = estimate(g, model_hc11(), context_for(m));

  const long long measured_size = cr.program.size_bytes(vm::hc11_like());
  const auto timing = vm::measure_timing(cr, vm::hc11_like(), m, 1u << 18);
  ASSERT_TRUE(timing.has_value());

  const double size_err =
      std::abs(static_cast<double>(e.size_bytes - measured_size)) /
      static_cast<double>(measured_size);
  EXPECT_LT(size_err, 0.20) << "est " << e.size_bytes << " vs measured "
                            << measured_size;

  // min path is a valid lower bound, max path a valid upper bound.
  EXPECT_LE(e.min_cycles,
            timing->min_cycles + static_cast<long long>(
                                     0.2 * static_cast<double>(timing->min_cycles) + 8));
  EXPECT_GE(e.max_cycles,
            timing->max_cycles - static_cast<long long>(
                                     0.2 * static_cast<double>(timing->max_cycles) + 8));
  // ... and the WCET over-approximation stays within a small constant factor.
  EXPECT_LE(e.max_cycles, 3 * timing->max_cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimationBounds, ::testing::Range(0, 15));

// The headline property behind Table I: on the paper's control-clean
// dashboard-style CFSMs the estimates track the measurement tightly.
TEST(EstimationAccuracy, TightOnFigOneStyleMachine) {
  const cfsm::Cfsm m(
      "simple", {{"c", 8}}, {{"y", 1}}, {{"a", 8, 0}},
      {cfsm::Rule{expr::land(cfsm::presence("c"),
                             expr::eq(expr::var("a"), cfsm::value_of("c"))),
                  {cfsm::Emit{"y", nullptr}},
                  {cfsm::Assign{"a", expr::constant(0)}}},
       cfsm::Rule{expr::land(cfsm::presence("c"),
                             expr::ne(expr::var("a"), cfsm::value_of("c"))),
                  {},
                  {cfsm::Assign{"a", expr::add(expr::var("a"),
                                               expr::constant(1))}}}});
  bdd::BddManager mgr;
  cfsm::ReactiveFunction rf(m, mgr);
  sgraph::BuildOptions build;
  build.use_care_set = true;  // remove the false paths (§III-C)
  const sgraph::Sgraph g = sgraph::build_sgraph(
      rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport, build);
  const vm::CompiledReaction cr = vm::compile(g, vm::SymbolInfo::from(m));
  const Estimate e = estimate(g, model_hc11(), context_for(m));

  const long long measured_size = cr.program.size_bytes(vm::hc11_like());
  const auto timing = vm::measure_timing(cr, vm::hc11_like(), m);
  ASSERT_TRUE(timing.has_value());
  EXPECT_NEAR(static_cast<double>(e.size_bytes),
              static_cast<double>(measured_size),
              0.15 * static_cast<double>(measured_size));
  EXPECT_NEAR(static_cast<double>(e.max_cycles),
              static_cast<double>(timing->max_cycles),
              0.15 * static_cast<double>(timing->max_cycles));
  EXPECT_NEAR(static_cast<double>(e.min_cycles),
              static_cast<double>(timing->min_cycles),
              0.15 * static_cast<double>(timing->min_cycles));
}

}  // namespace
}  // namespace polis::estim
