// Kernel-level stress tests for the CUDD-style BddManager internals:
// randomized operation interleavings checked against truth tables and the
// rebuild sifting oracle, handle churn through compaction and reordering,
// complement-edge canonical-form invariants, and the computed-cache
// contracts (key normalization under complementation, resize policy across
// GC boundaries, stats counters).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/reorder.hpp"
#include "util/rng.hpp"

namespace polis::bdd {
namespace {

using Table = std::vector<bool>;

Table table_of(BddManager& mgr, const Bdd& f, int n) {
  Table t(static_cast<size_t>(1) << n);
  for (size_t m = 0; m < t.size(); ++m) {
    t[m] = mgr.eval(f, [m](int v) { return (m >> v) & 1; });
  }
  return t;
}

// Interleaves every kernel operation — ITE, complement, cofactor,
// quantification, composition, restrict, GC, in-place sifting (against the
// rebuild oracle) and order resets — over a rolling pool of functions whose
// truth tables are maintained independently. Any canonicity bug, stale cache
// entry, or botched swap/compaction shows up as a truth-table mismatch.
TEST(BddKernel, RandomizedStressVsTruthTables) {
  const int n = 8;
  const size_t kTable = static_cast<size_t>(1) << n;
  BddManager mgr(n);
  Rng rng(1234);

  std::vector<std::pair<Bdd, Table>> pool;
  for (int v = 0; v < n; ++v) {
    Table t(kTable);
    for (size_t m = 0; m < kTable; ++m) t[m] = (m >> v) & 1;
    pool.emplace_back(mgr.var(v), std::move(t));
  }

  auto pick = [&] {
    return static_cast<size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1));
  };
  auto verify_pool = [&] {
    for (const auto& [f, t] : pool) EXPECT_EQ(table_of(mgr, f, n), t);
  };

  for (int it = 0; it < 400; ++it) {
    const int dice = static_cast<int>(rng.uniform(0, 99));
    if (dice < 30) {
      const auto [f, tf] = pool[pick()];
      const auto [g, tg] = pool[pick()];
      const auto [h, th] = pool[pick()];
      const Bdd r = mgr.ite(f, g, h);
      Table want(kTable);
      for (size_t m = 0; m < kTable; ++m) want[m] = tf[m] ? tg[m] : th[m];
      EXPECT_EQ(table_of(mgr, r, n), want);
      pool.emplace_back(r, std::move(want));
    } else if (dice < 42) {
      const auto [f, tf] = pool[pick()];
      const Bdd r = !f;
      Table want(kTable);
      for (size_t m = 0; m < kTable; ++m) want[m] = !tf[m];
      EXPECT_EQ(table_of(mgr, r, n), want);
      pool.emplace_back(r, std::move(want));
    } else if (dice < 52) {
      const auto [f, tf] = pool[pick()];
      const int v = static_cast<int>(rng.uniform(0, n - 1));
      const bool val = rng.flip();
      const Bdd r = mgr.cofactor(f, v, val);
      Table want(kTable);
      for (size_t m = 0; m < kTable; ++m) {
        const size_t fixed =
            (m & ~(static_cast<size_t>(1) << v)) |
            (static_cast<size_t>(val) << v);
        want[m] = tf[fixed];
      }
      EXPECT_EQ(table_of(mgr, r, n), want);
      pool.emplace_back(r, std::move(want));
    } else if (dice < 66) {
      // smooth (∃) or forall (∀) over a small random variable subset.
      const auto [f, tf] = pool[pick()];
      const bool exist = dice < 60;
      std::vector<int> vars;
      for (int v = 0; v < n; ++v)
        if (rng.flip(0.25)) vars.push_back(v);
      if (vars.empty()) vars.push_back(static_cast<int>(rng.uniform(0, n - 1)));
      const Bdd r = exist ? mgr.smooth(f, vars) : mgr.forall(f, vars);
      Table want(kTable);
      for (size_t m = 0; m < kTable; ++m) {
        bool acc = !exist;
        for (size_t combo = 0; combo < (static_cast<size_t>(1) << vars.size());
             ++combo) {
          size_t point = m;
          for (size_t i = 0; i < vars.size(); ++i) {
            point &= ~(static_cast<size_t>(1) << vars[i]);
            point |= ((combo >> i) & 1) << vars[i];
          }
          acc = exist ? (acc || tf[point]) : (acc && tf[point]);
        }
        want[m] = acc;
      }
      EXPECT_EQ(table_of(mgr, r, n), want);
      pool.emplace_back(r, std::move(want));
    } else if (dice < 74) {
      const auto [f, tf] = pool[pick()];
      const auto [g, tg] = pool[pick()];
      const int v = static_cast<int>(rng.uniform(0, n - 1));
      const Bdd r = mgr.compose(f, v, g);
      Table want(kTable);
      for (size_t m = 0; m < kTable; ++m) {
        const size_t point =
            (m & ~(static_cast<size_t>(1) << v)) |
            (static_cast<size_t>(tg[m]) << v);
        want[m] = tf[point];
      }
      EXPECT_EQ(table_of(mgr, r, n), want);
      pool.emplace_back(r, std::move(want));
    } else if (dice < 80) {
      // restrict only promises agreement on the care set; table it
      // afterwards so it can live in the pool.
      const auto [f, tf] = pool[pick()];
      const auto [care, tcare] = pool[pick()];
      const Bdd r = mgr.restrict(f, care);
      Table got = table_of(mgr, r, n);
      for (size_t m = 0; m < kTable; ++m) {
        if (tcare[m]) {
          EXPECT_EQ(got[m], tf[m]) << "minterm " << m;
        }
      }
      pool.emplace_back(r, std::move(got));
    } else if (dice < 86) {
      mgr.prune_dead_nodes();
    } else if (dice < 90) {
      mgr.garbage_collect();
    } else if (dice < 95) {
      SiftOptions options;
      options.verify_with_oracle = true;  // every swap vs sift_by_rebuild
      sift(mgr, options);
    } else {
      mgr.set_order(rng.permutation(n));
    }

    // Churn handles: drop random non-variable entries once the pool is full,
    // creating garbage mid-stream.
    while (pool.size() > 24) {
      const size_t victim = static_cast<size_t>(
          rng.uniform(n, static_cast<std::int64_t>(pool.size()) - 1));
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    if (it % 64 == 63) verify_pool();
  }

  mgr.garbage_collect();
  verify_pool();
  const KernelStats s = mgr.stats();
  EXPECT_GT(s.cache_lookups, 0u);
  EXPECT_GT(s.cache_hits, 0u);
  EXPECT_GE(s.peak_nodes, mgr.live_node_count());
}

// Thousands of live handles surviving prune, compaction, sifting and order
// resets: every handle must keep denoting its function, and copies must stay
// identical to their originals.
TEST(BddKernel, HandleChurnThroughCompactionAndReorder) {
  const int n = 12;
  BddManager mgr(n);
  Rng rng(77);

  // Each handle is a product of 4 literals; remember the literals so the
  // function can be spot-checked without a full truth table.
  struct Product {
    Bdd f;
    std::vector<std::pair<int, bool>> literals;  // (var, positive)
  };
  std::vector<Product> handles;
  handles.reserve(3000);
  for (int i = 0; i < 3000; ++i) {
    Product p;
    p.f = mgr.one();
    for (int l = 0; l < 4; ++l) {
      const int v = static_cast<int>(rng.uniform(0, n - 1));
      const bool positive = rng.flip();
      p.literals.emplace_back(v, positive);
      p.f = p.f & (positive ? mgr.var(v) : !mgr.var(v));
    }
    handles.push_back(std::move(p));
  }

  auto verify = [&] {
    for (const Product& p : handles) {
      // On the satisfying assignment the product is true...
      std::vector<int> want(static_cast<size_t>(n), -1);
      bool consistent = true;
      for (const auto& [v, positive] : p.literals) {
        const int bit = positive ? 1 : 0;
        if (want[static_cast<size_t>(v)] == (1 - bit)) consistent = false;
        want[static_cast<size_t>(v)] = bit;
      }
      const bool sat = mgr.eval(p.f, [&](int v) {
        return want[static_cast<size_t>(v)] == 1;
      });
      EXPECT_EQ(sat, consistent);
      // ...and false when the first literal is flipped.
      if (consistent) {
        const int flip_var = p.literals[0].first;
        EXPECT_FALSE(mgr.eval(p.f, [&](int v) {
          const int bit = want[static_cast<size_t>(v)];
          return v == flip_var ? bit != 1 : bit == 1;
        }));
      }
    }
  };

  const Bdd pinned = handles[0].f;  // a copy that must track its original

  verify();
  // Drop a random half → garbage; prune in place.
  for (size_t i = handles.size(); i-- > 0;) {
    if (rng.flip()) handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(i));
  }
  mgr.prune_dead_nodes();
  verify();

  const size_t live = mgr.live_node_count();
  mgr.garbage_collect();  // compaction must not change the live set
  EXPECT_EQ(mgr.live_node_count(), live);
  // live_node_count counts subfunctions (phase pairs); each live physical
  // node contributes one or two of them, and after a compaction the table
  // holds exactly the live physical nodes.
  EXPECT_GE(mgr.live_node_count(), mgr.table_node_count());
  EXPECT_LE(mgr.live_node_count(), 2 * mgr.table_node_count());
  EXPECT_EQ(mgr.arena_size(), mgr.table_node_count() + 1);  // + terminal
  EXPECT_TRUE(mgr.check_canonical_form());
  verify();

  sift(mgr);
  verify();

  std::vector<int> order = mgr.current_order();
  std::reverse(order.begin(), order.end());
  mgr.set_order(order);
  verify();

  // Second churn round through compaction.
  for (size_t i = handles.size(); i-- > 1;) {
    if (rng.flip()) handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(i));
  }
  mgr.garbage_collect();
  verify();
  EXPECT_EQ(pinned, handles[0].f);
}

// Under complement edges NOT is a pointer flip: no recursion, no cache
// traffic, no new nodes, and the involution is handle-identical.
TEST(BddKernel, ComplementIsFreePointerFlip) {
  BddManager mgr(6);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) ^ mgr.var(3)) |
                (mgr.var(4) & !mgr.var(5));

  mgr.reset_stats();
  const Bdd g = !f;
  const KernelStats after = mgr.stats();
  EXPECT_EQ(after.cache_lookups, 0u);
  EXPECT_EQ(after.cache_inserts, 0u);
  EXPECT_EQ(after.unique_lookups, 0u);
  EXPECT_EQ(after.nodes_created, 0u);

  // The complement is the same node through a tagged edge...
  EXPECT_EQ(g.raw_index(), f.raw_index() ^ 1u);
  EXPECT_NE(g.is_complemented(), f.is_complemented());
  // ...and negating twice restores the original handle bit-for-bit.
  EXPECT_EQ(!g, f);
  EXPECT_EQ((!g).raw_index(), f.raw_index());

  // It is still a genuine complement as a function.
  EXPECT_TRUE((f & g).is_zero());
  EXPECT_TRUE((f | g).is_one());
}

// The canonical-form invariant: no stored then-edge is ever complemented,
// at rest and through every mutation path (apply, sifting, pruning,
// compaction, order replacement).
TEST(BddKernel, ComplementEdgeCanonicalFormInvariants) {
  const int n = 8;
  BddManager mgr(n);
  Rng rng(99);

  std::vector<Bdd> pool;
  for (int v = 0; v < n; ++v) pool.push_back(mgr.var(v));
  auto pick = [&] {
    return pool[static_cast<size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  // Via the public API: a regular handle's stored children are what high()
  // and low() return, so the canonical form says high() of a regular handle
  // is never complemented.
  auto check_regular_then_edges = [&](const Bdd& root) {
    std::vector<Bdd> stack{root};
    while (!stack.empty()) {
      Bdd f = stack.back();
      stack.pop_back();
      if (f.is_constant()) continue;
      const Bdd reg = f.is_complemented() ? !f : f;
      EXPECT_FALSE(reg.high().is_complemented())
          << "complemented then-edge stored at node " << reg.raw_index();
      stack.push_back(reg.high());
      stack.push_back(reg.low());
    }
  };

  for (int it = 0; it < 200; ++it) {
    const int dice = static_cast<int>(rng.uniform(0, 9));
    Bdd r;
    switch (dice) {
      case 0: r = pick() & pick(); break;
      case 1: r = pick() | pick(); break;
      case 2: r = pick() ^ pick(); break;
      case 3: r = !pick(); break;
      case 4: r = mgr.ite(pick(), pick(), pick()); break;
      case 5: r = mgr.smooth(pick(), {static_cast<int>(rng.uniform(0, n - 1))});
              break;
      case 6: r = mgr.restrict(pick(), pick()); break;
      case 7: mgr.prune_dead_nodes(); r = pick(); break;
      case 8: mgr.garbage_collect(); r = pick(); break;
      default: sift(mgr); r = pick(); break;
    }
    // bnot(bnot(f)) is handle-identical for every pool member.
    EXPECT_EQ(!!r, r);
    pool.push_back(r);
    while (pool.size() > 24) {
      pool.erase(pool.begin() +
                 static_cast<std::ptrdiff_t>(rng.uniform(
                     n, static_cast<std::int64_t>(pool.size()) - 1)));
    }
    if (it % 16 == 15) {
      EXPECT_TRUE(mgr.check_canonical_form());
      for (const Bdd& f : pool) check_regular_then_edges(f);
    }
  }
  mgr.garbage_collect();
  EXPECT_TRUE(mgr.check_canonical_form());
  for (const Bdd& f : pool) check_regular_then_edges(f);
}

// Cache-key normalization under complementation must agree with plain
// (un-complemented) evaluation: the algebraic identities that share one
// cache entry across a complementation orbit have to hold handle-for-handle.
TEST(BddKernel, CacheKeyNormalizationAgreesWithEvaluation) {
  const int n = 6;
  BddManager mgr(n);
  Rng rng(4242);

  std::vector<Bdd> pool;
  for (int v = 0; v < n; ++v) pool.push_back(mgr.var(v));
  auto pick = [&] {
    return pool[static_cast<size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };
  for (int it = 0; it < 150; ++it) {
    const Bdd f = pick();
    const Bdd g = pick();
    const Bdd h = pick();
    // De Morgan / complement identities, all handle-identical because
    // canonicity makes equal functions equal handles.
    EXPECT_EQ(!(f & g), (!f) | (!g));
    EXPECT_EQ(!(f | g), (!f) & (!g));
    // XOR's orbit: one cache entry serves all four phase combinations.
    EXPECT_EQ(f ^ g, !f ^ !g);
    EXPECT_EQ(!(f ^ g), !f ^ g);
    EXPECT_EQ(!(f ^ g), f ^ !g);
    // ITE normalization identities.
    EXPECT_EQ(mgr.ite(f, g, h), mgr.ite(!f, h, g));
    EXPECT_EQ(mgr.ite(f, g, h), !mgr.ite(f, !g, !h));
    // And against brute-force evaluation on a few random points.
    for (int p = 0; p < 8; ++p) {
      const std::uint64_t m = static_cast<std::uint64_t>(
          rng.uniform(0, (std::int64_t{1} << n) - 1));
      auto assign = [m](int v) { return (m >> v) & 1; };
      EXPECT_EQ(mgr.eval(!f, assign), !mgr.eval(f, assign));
      EXPECT_EQ(mgr.eval(f ^ g, assign),
                mgr.eval(f, assign) != mgr.eval(g, assign));
      EXPECT_EQ(mgr.eval(f & g, assign),
                mgr.eval(f, assign) && mgr.eval(g, assign));
    }
    pool.push_back(mgr.ite(f, g, h));
    pool.push_back(f ^ g);
    while (pool.size() > 20) {
      pool.erase(pool.begin() +
                 static_cast<std::ptrdiff_t>(rng.uniform(
                     n, static_cast<std::int64_t>(pool.size()) - 1)));
    }
  }
}

// Regression for the adaptive-resize window: a garbage collection clears
// the computed cache, and the hits earned against the discarded entries
// must not justify doubling the now-empty cache.
TEST(BddKernel, CacheResizeWindowRestartsAcrossGcBoundary) {
  const int n = 14;
  BddManager mgr(n);
  Rng rng(31);
  std::vector<Bdd> funcs;
  for (int v = 0; v < n; ++v) funcs.push_back(mgr.var(v));

  // Warm the cache with a workload that earns a healthy hit rate.
  for (int i = 0; i < 3000; ++i) {
    Bdd f = funcs[static_cast<size_t>(rng.uniform(0, n - 1))] &
            funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    f = f ^ funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    funcs.push_back(std::move(f));
    if (funcs.size() > 48) funcs.resize(static_cast<size_t>(n));
  }
  ASSERT_GT(mgr.stats().cache_hits, 0u);

  funcs.resize(static_cast<size_t>(n));
  const std::uint64_t resizes_before = mgr.stats().cache_resizes;
  const size_t capacity_before = mgr.stats().cache_capacity;
  mgr.garbage_collect();  // clears the cache → must restart the window
  EXPECT_EQ(mgr.stats().cache_resizes, resizes_before);
  EXPECT_EQ(mgr.stats().cache_capacity, capacity_before);

  // A handful of post-GC operations cannot legitimately double the cache:
  // the fresh window has seen almost no lookups, whatever the pre-GC
  // counters accumulated.
  for (int v = 0; v + 1 < n; ++v) {
    const Bdd f = funcs[static_cast<size_t>(v)] &
                  funcs[static_cast<size_t>(v + 1)];
    ASSERT_FALSE(f.is_null());
  }
  EXPECT_EQ(mgr.stats().cache_resizes, resizes_before);
  EXPECT_EQ(mgr.stats().cache_capacity, capacity_before);

  // The policy still works after the boundary: sustained pressure with a
  // real hit rate may grow the cache again, and the capacity invariants
  // hold either way.
  for (int i = 0; i < 20000; ++i) {
    Bdd f = funcs[static_cast<size_t>(rng.uniform(0, n - 1))] &
            funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    f = f | funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    f = f ^ funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    funcs.push_back(std::move(f));
    if (funcs.size() > 64) funcs.resize(static_cast<size_t>(n));
  }
  const KernelStats s = mgr.stats();
  EXPECT_GE(s.cache_resizes, resizes_before);
  EXPECT_EQ(s.cache_capacity & (s.cache_capacity - 1), 0u);
}

TEST(BddKernel, CacheStatsAndFreeListRecycling) {
  const int n = 16;
  BddManager mgr(n);
  Rng rng(5);
  std::vector<Bdd> funcs;
  for (int v = 0; v < n; ++v) funcs.push_back(mgr.var(v));
  for (int i = 0; i < 4000; ++i) {
    Bdd f = funcs[static_cast<size_t>(rng.uniform(0, n - 1))] &
            funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    f = f | funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    funcs.push_back(std::move(f));
    if (funcs.size() > 64) funcs.resize(static_cast<size_t>(n));
  }

  const KernelStats s = mgr.stats();
  EXPECT_GT(s.cache_lookups, 0u);
  EXPECT_GT(s.cache_hit_rate(), 0.0);
  EXPECT_LE(s.cache_hit_rate(), 1.0);
  // Direct-mapped cache stays a power of two through resizes.
  EXPECT_NE(s.cache_capacity, 0u);
  EXPECT_EQ(s.cache_capacity & (s.cache_capacity - 1), 0u);
  EXPECT_GE(s.peak_nodes, mgr.live_node_count());

  // Dropping the intermediates and pruning feeds the free list; subsequent
  // allocation must recycle slots instead of growing the arena.
  funcs.resize(static_cast<size_t>(n));
  mgr.prune_dead_nodes();
  const size_t arena = mgr.arena_size();
  for (int i = 0; i < 200; ++i) {
    Bdd f = funcs[static_cast<size_t>(rng.uniform(0, n - 1))] &
            funcs[static_cast<size_t>(rng.uniform(0, n - 1))];
    funcs.push_back(std::move(f));
  }
  EXPECT_GT(mgr.stats().nodes_recycled, 0u);
  EXPECT_LE(mgr.arena_size(), arena);
}

// Cross-manager migration: random DAGs built in one manager must copy into a
// fresh manager function-identically (truth tables), preserve the
// complement-edge canonical form, respect complement commutation
// (copy(!f) == !copy(f)) and round-trip back to yet another manager. Raw
// handle values are NOT comparable across managers — only evaluation and
// within-one-manager handle equality are.
TEST(BddKernel, CopyAcrossRoundTripsRandomDags) {
  const int n = 8;
  BddManager src(n), dst(n), back(n);
  Rng rng(77);

  std::vector<Bdd> pool;
  for (int v = 0; v < n; ++v) pool.push_back(src.var(v));
  for (int i = 0; i < 120; ++i) {
    const auto pick = [&] {
      return pool[static_cast<size_t>(
          rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    Bdd f = src.ite(pick(), pick(), pick());
    if (rng.flip()) f = !f;
    pool.push_back(std::move(f));
  }

  CopyCache fwd, rev;
  for (const Bdd& f : pool) {
    const Bdd g = dst.copy_across(f, fwd);
    EXPECT_EQ(table_of(src, f, n), table_of(dst, g, n));
    // Complement edges commute with the copy: migrating the negation must
    // yield exactly the complemented destination handle, not a new node.
    const Bdd gn = dst.copy_across(!f, fwd);
    EXPECT_EQ(gn, !g);
    // Round-trip through a third manager is still the same function.
    const Bdd h = back.copy_across(g, rev);
    EXPECT_EQ(table_of(back, h, n), table_of(src, f, n));
  }
  // The migrated arena obeys the same regular-then-edge invariant as one
  // grown natively.
  EXPECT_TRUE(dst.check_canonical_form());
  EXPECT_TRUE(back.check_canonical_form());
  EXPECT_GT(dst.stats().copy_across_calls, 0u);
  EXPECT_GT(dst.stats().copy_nodes, 0u);
}

// The translation cache memoises by source node: re-copying a function (or a
// superset sharing its subgraph) must hit the cache instead of re-walking,
// and structural changes in the source (GC/prune/reorder bump the structure
// epoch) or rebinding the cache to a different pair must discard it.
TEST(BddKernel, CopyAcrossCacheReuseAndInvalidation) {
  const int n = 10;
  BddManager src(n), dst(n);
  Bdd f = src.var(0);
  for (int v = 1; v < n; ++v)
    f = (v & 1) ? (f & src.var(v)) : (f ^ src.var(v));

  CopyCache cache;
  const Bdd g1 = dst.copy_across(f, cache);
  const std::uint64_t nodes_after_first = dst.stats().copy_nodes;
  const std::uint64_t hits_after_first = dst.stats().copy_cache_hits;
  EXPECT_GT(cache.size(), 0u);

  // Second copy of the identical function: pure cache hit, zero new walks.
  const Bdd g2 = dst.copy_across(f, cache);
  EXPECT_EQ(g1, g2);  // same manager, so handle equality == function equality
  EXPECT_EQ(dst.stats().copy_nodes, nodes_after_first);
  EXPECT_GT(dst.stats().copy_cache_hits, hits_after_first);

  // A superset reuses the shared subgraph through the cache.
  const Bdd wider = f | (src.var(0) & src.var(1));
  const std::uint64_t hits_before_wider = dst.stats().copy_cache_hits;
  dst.copy_across(wider, cache);
  EXPECT_GT(dst.stats().copy_cache_hits, hits_before_wider);

  // Structural churn in the source invalidates: handles survive the prune
  // but slot indices may not, so the epoch bump must reset the cache.
  const std::uint64_t epoch_before = src.structure_epoch();
  { Bdd dead = f & src.var(2); (void)dead; }
  src.prune_dead_nodes();
  EXPECT_GT(src.structure_epoch(), epoch_before);
  const std::uint64_t resets_before = dst.stats().copy_cache_resets;
  const Bdd g3 = dst.copy_across(f, cache);
  EXPECT_EQ(g1, g3);
  EXPECT_GT(dst.stats().copy_cache_resets, resets_before);

  // Rebinding the same cache object to a different source also resets.
  BddManager other(n);
  const Bdd k = other.var(3) & other.var(4);
  const std::uint64_t resets_before_rebind = dst.stats().copy_cache_resets;
  dst.copy_across(k, cache);
  EXPECT_GT(dst.stats().copy_cache_resets, resets_before_rebind);
}

// rename() is simultaneous substitution: swapping a variable pair in one
// call must match the truth-table permutation (the sequential compose chain
// would get pairwise swaps wrong), and renaming across managers composes
// with copy_across — the reachability engine leans on both.
TEST(BddKernel, RenameIsSimultaneousSubstitution) {
  const int n = 6;
  BddManager mgr(n);
  Rng rng(99);
  const int map = mgr.register_rename({{0, 1}, {1, 0}, {2, 3}, {3, 2}});
  for (int i = 0; i < 40; ++i) {
    Bdd f = mgr.var(static_cast<int>(rng.uniform(0, n - 1)));
    for (int j = 0; j < 6; ++j) {
      const Bdd g = mgr.var(static_cast<int>(rng.uniform(0, n - 1)));
      f = (j & 1) ? (f ^ g) : mgr.ite(f, g, !g);
    }
    const Bdd r = mgr.rename(f, map);
    const Table tf = table_of(mgr, f, n);
    Table want(tf.size());
    for (size_t m = 0; m < tf.size(); ++m) {
      // Point m evaluated on r = f evaluated with x0<->x1, x2<->x3 swapped.
      size_t p = m & ~size_t{0xF};
      p |= ((m >> 1) & 1) << 0 | ((m >> 0) & 1) << 1;
      p |= ((m >> 3) & 1) << 2 | ((m >> 2) & 1) << 3;
      want[m] = tf[p];
    }
    EXPECT_EQ(table_of(mgr, r, n), want);
  }
  EXPECT_GT(mgr.stats().rename_calls, 0u);
}

}  // namespace
}  // namespace polis::bdd
