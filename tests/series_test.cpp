#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "obs/metrics.hpp"
#include "obs/series.hpp"
#include "rtos/rtos.hpp"

namespace polis::obs {
namespace {

// Deterministic value stream for sketch tests (splitmix64).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(SeriesRing, WrapAroundKeepsMemoryBounded) {
  MetricsRegistry reg;
  const MetricsRegistry::Id ticks = reg.counter("ticks");
  SeriesRecorder rec;
  rec.set_enabled(true);
  rec.set_capacity(64);

  constexpr std::uint64_t kEpochs = 1'000'000;
  for (std::uint64_t i = 0; i < kEpochs; ++i) {
    reg.add(ticks, 1);
    rec.tick_epoch(Timebase::kSim, static_cast<std::int64_t>(i), reg);
  }

  EXPECT_EQ(rec.total_epochs(Timebase::kSim), kEpochs);
  const std::vector<EpochSample> ring = rec.samples(Timebase::kSim);
  ASSERT_EQ(ring.size(), 64u);  // ring bound held through ~15k wraps
  // Oldest surviving epoch is kEpochs - capacity; newest is the last tick.
  EXPECT_EQ(ring.front().epoch, kEpochs - 64);
  EXPECT_EQ(ring.back().epoch, kEpochs - 1);
  EXPECT_EQ(ring.back().ts, static_cast<std::int64_t>(kEpochs - 1));
  // Every epoch saw exactly one counter increment.
  for (const EpochSample& s : ring)
    EXPECT_EQ(s.counter_deltas.at("ticks"), 1u);
}

TEST(Series, CounterDeltasAndRatesMatchHandComputed) {
  MetricsRegistry reg;
  const MetricsRegistry::Id work = reg.counter("work");
  const MetricsRegistry::Id depth = reg.gauge("depth");
  SeriesRecorder rec;
  rec.set_enabled(true);
  rec.begin_series(Timebase::kSim, reg);

  reg.add(work, 5);
  reg.set(depth, 3);
  rec.tick_epoch(Timebase::kSim, 100, reg);
  reg.add(work, 20);
  reg.set(depth, 7);
  rec.tick_epoch(Timebase::kSim, 300, reg);
  rec.tick_epoch(Timebase::kSim, 400, reg);  // idle epoch: no delta

  const std::vector<EpochSample> s = rec.samples(Timebase::kSim);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].counter_deltas.at("work"), 5u);
  EXPECT_EQ(s[0].gauges.at("depth"), 3);
  EXPECT_EQ(s[1].counter_deltas.at("work"), 20u);
  EXPECT_EQ(s[1].gauges.at("depth"), 7);
  // Deltas store changed counters only.
  EXPECT_EQ(s[2].counter_deltas.count("work"), 0u);

  // rate = delta / (ts_cur - ts_prev), in per-clock-unit terms.
  EXPECT_DOUBLE_EQ(counter_rate(s[0], s[1], "work"), 20.0 / 200.0);
  EXPECT_DOUBLE_EQ(counter_rate(s[1], s[2], "work"), 0.0);
}

TEST(Series, BaselineExcludesPriorHistory) {
  MetricsRegistry reg;
  const MetricsRegistry::Id work = reg.counter("work");
  SeriesRecorder rec;
  rec.set_enabled(true);

  reg.add(work, 1000);  // "pipeline phase" work before the series starts
  rec.begin_series(Timebase::kSim, reg);
  reg.add(work, 7);
  rec.tick_epoch(Timebase::kSim, 1, reg);

  const std::vector<EpochSample> s = rec.samples(Timebase::kSim);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].epoch, 0u);
  EXPECT_EQ(s[0].counter_deltas.at("work"), 7u);
}

TEST(QuantileSketch, MergeIsAssociativeAndCommutative) {
  QuantileSketch a, b, c;
  for (int i = 0; i < 3000; ++i) a.observe(mix(i) % 100'000);
  for (int i = 0; i < 2000; ++i) b.observe(mix(i + 7777) % 1'000);
  for (int i = 0; i < 500; ++i) c.observe(mix(i + 12345));  // full-range

  auto merged = [](const QuantileSketch& x, const QuantileSketch& y) {
    QuantileSketch m = x;
    m.merge(y);
    return m;
  };
  const QuantileSketch ab_c = merged(merged(a, b), c);
  const QuantileSketch a_bc = merged(a, merged(b, c));
  const QuantileSketch ba_c = merged(merged(b, a), c);

  auto expect_same = [](const QuantileSketch& x, const QuantileSketch& y) {
    EXPECT_EQ(x.count(), y.count());
    EXPECT_EQ(x.sum(), y.sum());
    EXPECT_EQ(x.min(), y.min());
    EXPECT_EQ(x.max(), y.max());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
      EXPECT_EQ(x.quantile(q), y.quantile(q)) << "q=" << q;
  };
  expect_same(ab_c, a_bc);
  expect_same(ab_c, ba_c);
  EXPECT_EQ(ab_c.count(), 5500u);
}

TEST(QuantileSketch, QuantilesTrackExactSortedReference) {
  std::vector<std::uint64_t> values;
  QuantileSketch sketch;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = mix(i) % 5'000'000;
    values.push_back(v);
    sketch.observe(v);
  }
  std::sort(values.begin(), values.end());

  for (double q : {0.5, 0.9, 0.99}) {
    // Nearest-rank reference: ceil(q * N)-th smallest (1-based).
    std::size_t rank = static_cast<std::size_t>(q * values.size());
    if (static_cast<double>(rank) < q * values.size()) ++rank;
    const std::uint64_t exact = values[rank == 0 ? 0 : rank - 1];
    const std::uint64_t est = sketch.quantile(q);
    // The estimate lands in the exact value's bucket; the bucket's width is
    // at most lo/8, so the midpoint is within 1/8 relative of any member.
    const double rel =
        std::fabs(static_cast<double>(est) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LE(rel, 0.125) << "q=" << q << " exact=" << exact
                          << " est=" << est;
  }
  // Extremes clamp into the observed range and stay within the min/max
  // value's own bucket.
  const std::uint64_t lo = values.front();
  const std::uint64_t hi = values.back();
  EXPECT_GE(sketch.quantile(0.0), lo);
  EXPECT_LE(sketch.quantile(0.0),
            MetricsRegistry::bucket_hi(MetricsRegistry::bucket_of(lo)));
  EXPECT_LE(sketch.quantile(1.0), hi);
  EXPECT_GE(sketch.quantile(1.0),
            MetricsRegistry::bucket_lo(MetricsRegistry::bucket_of(hi)));
}

TEST(QuantileSketch, FromHistogramMatchesDirectObservation) {
  MetricsRegistry reg;
  const MetricsRegistry::Id lat = reg.histogram("lat");
  QuantileSketch direct;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = mix(i) % 100'000;
    reg.observe(lat, v);
    direct.observe(v);
  }
  const QuantileSketch from_hist =
      QuantileSketch::from_histogram(reg.snapshot().histograms.at("lat"));
  EXPECT_EQ(from_hist.count(), direct.count());
  EXPECT_EQ(from_hist.sum(), direct.sum());
  // The bucket populations transfer losslessly; only min/max widen to bucket
  // bounds, so a quantile may clamp differently within its bucket but must
  // land in the same bucket.
  for (double q : {0.5, 0.9, 0.99})
    EXPECT_EQ(MetricsRegistry::bucket_of(from_hist.quantile(q)),
              MetricsRegistry::bucket_of(direct.quantile(q)))
        << "q=" << q;
}

// TSan target: epoch ticks serialize on the recorder mutex while registry
// writers stay on their lock-free shard path; the combination must be free
// of data races and torn reads.
TEST(Series, TickRacesHotPathWritersCleanly) {
  MetricsRegistry reg;
  const MetricsRegistry::Id hits = reg.counter("hits");
  const MetricsRegistry::Id level = reg.gauge("level");
  const MetricsRegistry::Id lat = reg.histogram("lat");
  SeriesRecorder rec;
  rec.set_enabled(true);
  rec.set_capacity(128);

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 50'000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        reg.add(hits, 1);
        reg.set(level, i);
        reg.observe(lat, mix(w * kOpsPerWriter + i) % 10'000);
      }
    });
  for (int e = 0; e < 2000; ++e)
    rec.tick_epoch(Timebase::kWall, e, reg);
  for (std::thread& t : writers) t.join();
  rec.tick_epoch(Timebase::kWall, 2000, reg);

  // After the final tick the cumulative deltas add up to every write.
  const std::vector<EpochSample> ring = rec.samples(Timebase::kWall);
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().hists.at("lat").count,
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

// The acceptance property behind `--metrics-out`: two identical simulations
// emit byte-identical simulated-cycle series. Uses the global recorder (the
// one the RTOS loop ticks) with the registry reset before each run so the
// cumulative histogram summaries restart from the same state a fresh process
// would have. The simulator's tick sites are compiled out under
// POLIS_OBS=OFF, so the property only exists in instrumented builds.
#ifndef POLIS_OBS_DISABLED
std::shared_ptr<cfsm::Cfsm> relay(const std::string& name) {
  return std::make_shared<cfsm::Cfsm>(
      name, std::vector<cfsm::Signal>{{"i", 1}},
      std::vector<cfsm::Signal>{{"o", 1}}, std::vector<cfsm::StateVar>{},
      std::vector<cfsm::Rule>{
          cfsm::Rule{cfsm::presence("i"), {cfsm::Emit{"o", nullptr}}, {}}});
}

TEST(Series, SimTimebaseSeriesIsByteIdenticalAcrossRuns) {
  auto run_once = [] {
    MetricsRegistry::global().reset();
    std::ostringstream sink;
    SeriesRecorder& rec = SeriesRecorder::global();
    rec.set_sink(&sink);
    rec.set_enabled(true);

    cfsm::Network net("pipe");
    net.add_instance("a", relay("r1"), {{"i", "in"}, {"o", "mid"}});
    net.add_instance("b", relay("r2"), {{"i", "mid"}, {"o", "out"}});
    rtos::RtosConfig config;
    config.metrics_epoch_cycles = 500;
    rtos::RtosSimulation sim(net, config);
    sim.set_reference_task("a", 100);
    sim.set_reference_task("b", 100);
    std::vector<rtos::ExternalEvent> events;
    for (long long t = 0; t < 10'000; t += 700) events.push_back({t, "in", 0});
    sim.run(events, 20'000);

    rec.set_enabled(false);
    rec.set_sink(nullptr);
    return sink.str();
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // All lines are simulated-cycle epochs and there are enough of them to be
  // a real series, not a single end-of-run snapshot.
  int lines = 0;
  std::istringstream is(first);
  std::string line;
  while (std::getline(is, line)) {
    EXPECT_NE(line.find("\"clock\":\"cycles\""), std::string::npos) << line;
    ++lines;
  }
  EXPECT_GE(lines, 10);
}
#endif  // POLIS_OBS_DISABLED

TEST(Series, JsonlLineIsStrictJsonWithIntegralFields) {
  MetricsRegistry reg;
  const MetricsRegistry::Id work = reg.counter("work");
  const MetricsRegistry::Id lat = reg.histogram("lat");
  SeriesRecorder rec;
  std::ostringstream sink;
  rec.set_sink(&sink);
  rec.set_enabled(true);
  rec.begin_series(Timebase::kLayer, reg);
  reg.add(work, 3);
  reg.observe(lat, 12);
  rec.tick_epoch(Timebase::kLayer, 1, reg);
  rec.set_sink(nullptr);

  const std::string line = sink.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line, "{\"epoch\":0,\"clock\":\"layer\",\"ts\":1,"
                  "\"counters\":{\"work\":3},\"gauges\":{},"
                  "\"histograms\":{\"lat\":{\"count\":1,\"sum\":12,"
                  "\"p50\":12,\"p90\":12,\"p99\":12}}}\n");
}

}  // namespace
}  // namespace polis::obs
