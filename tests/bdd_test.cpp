#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace polis::bdd {
namespace {

// Brute-force reference: a truth table over n variables.
using Table = std::vector<bool>;

Table table_of(BddManager& mgr, const Bdd& f, int n) {
  Table t(static_cast<size_t>(1) << n);
  for (size_t m = 0; m < t.size(); ++m) {
    t[m] = mgr.eval(f, [m](int v) { return (m >> v) & 1; });
  }
  return t;
}

TEST(Bdd, ConstantsAndVariables) {
  BddManager mgr(3);
  EXPECT_TRUE(mgr.one().is_one());
  EXPECT_TRUE(mgr.zero().is_zero());
  const Bdd x = mgr.var(0);
  EXPECT_FALSE(x.is_constant());
  EXPECT_EQ(x.top_var(), 0);
  EXPECT_TRUE(x.high().is_one());
  EXPECT_TRUE(x.low().is_zero());
  const Bdd nx = mgr.nvar(0);
  EXPECT_TRUE(nx.high().is_zero());
  EXPECT_TRUE((x | nx).is_one());
  EXPECT_TRUE((x & nx).is_zero());
}

TEST(Bdd, CanonicityTwoConstructionsOneNode) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  // a&b built two different ways must be the same node.
  const Bdd f1 = a & b;
  const Bdd f2 = !(((!a)) | ((!b)));  // De Morgan
  EXPECT_EQ(f1, f2);
  const Bdd g1 = a ^ b;
  const Bdd g2 = (a & (!b)) | ((!a) & b);
  EXPECT_EQ(g1, g2);
}

TEST(Bdd, IteBasicIdentities) {
  BddManager mgr(3);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_EQ(mgr.ite(mgr.one(), a, b), a);
  EXPECT_EQ(mgr.ite(mgr.zero(), a, b), b);
  EXPECT_EQ(mgr.ite(a, mgr.one(), mgr.zero()), a);
  EXPECT_EQ(mgr.ite(a, b, b), b);
  EXPECT_EQ(mgr.implies(a, a), mgr.one());
}

TEST(Bdd, CofactorShannon) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);
  const Bdd f = (a & b) | ((!a) & c);
  EXPECT_EQ(mgr.cofactor(f, 0, true), b);
  EXPECT_EQ(mgr.cofactor(f, 0, false), c);
  // Shannon: f == ite(x, f|x=1, f|x=0).
  const Bdd g = mgr.ite(a, mgr.cofactor(f, 0, true), mgr.cofactor(f, 0, false));
  EXPECT_EQ(f, g);
  // Cofactor by a variable not in the support is the identity.
  EXPECT_EQ(mgr.cofactor(f, 3, true), f);
}

TEST(Bdd, SmoothAndForall) {
  BddManager mgr(3);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd f = a & b;
  EXPECT_EQ(mgr.smooth(f, {0}), b);       // ∃a. a&b = b
  EXPECT_EQ(mgr.forall(f, {0}), mgr.zero());  // ∀a. a&b = 0
  const Bdd g = a | b;
  EXPECT_EQ(mgr.smooth(g, {0}), mgr.one());
  EXPECT_EQ(mgr.forall(g, {0}), b);
  EXPECT_EQ(mgr.smooth(f, {0, 1}), mgr.one());
  EXPECT_EQ(mgr.smooth(f, {}), f);
}

TEST(Bdd, ComposeSubstitutes) {
  BddManager mgr(3);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);
  const Bdd f = a ^ b;
  EXPECT_EQ(mgr.compose(f, 0, c), c ^ b);
  EXPECT_EQ(mgr.compose(f, 0, b), mgr.zero());  // b^b
  EXPECT_EQ(mgr.compose(f, 2, c), f);           // var not in support
}

TEST(Bdd, SupportExact) {
  BddManager mgr(5);
  const Bdd f = (mgr.var(0) & mgr.var(3)) | mgr.var(4);
  EXPECT_EQ(mgr.support(f), (std::set<int>{0, 3, 4}));
  // A cancelled variable must not appear in the support.
  const Bdd g = (mgr.var(1) & mgr.var(2)) | ((!mgr.var(1)) & mgr.var(2));
  EXPECT_EQ(mgr.support(g), (std::set<int>{2}));
  EXPECT_TRUE(mgr.support(mgr.one()).empty());
}

TEST(Bdd, SatCount) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_DOUBLE_EQ(mgr.sat_count(a, 4), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(a & b, 4), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(a | b, 4), 12.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(a ^ b, 4), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.one(), 4), 16.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.zero(), 4), 0.0);
}

// Cross-check sat_count against explicit enumeration: every minterm of a
// batch of random functions is evaluated and counted by hand.
TEST(Bdd, SatCountMatchesExplicitEnumeration) {
  const int n = 7;
  BddManager mgr(n);
  Rng rng(2024);
  std::vector<Bdd> pool;
  for (int v = 0; v < n; ++v) pool.push_back(mgr.var(v));
  auto pick = [&] {
    return pool[static_cast<size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };
  for (int it = 0; it < 60; ++it) {
    Bdd f;
    switch (rng.uniform(0, 3)) {
      case 0: f = pick() & pick(); break;
      case 1: f = pick() | pick(); break;
      case 2: f = pick() ^ pick(); break;
      default: f = !pick(); break;
    }
    double want = 0.0;
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
      if (mgr.eval(f, [m](int v) { return (m >> v) & 1; })) want += 1.0;
    }
    EXPECT_DOUBLE_EQ(mgr.sat_count(f, n), want);
    // Complement closure: the counts of f and ¬f partition the space.
    EXPECT_DOUBLE_EQ(mgr.sat_count(!f, n), std::ldexp(1.0, n) - want);
    pool.push_back(f);
    if (pool.size() > 16) pool.resize(static_cast<size_t>(n));
  }
}

// Wide synthetic net where the old fraction-times-scale formulation
// diverges: with over 1024 variables the 2^nvars scale factor overflows to
// infinity, so every count — even a count of one — came back inf/nan. The
// ldexp formulation scales by exact powers of two between node levels and
// only converts to the full-space magnitude at the end, so any count that
// fits in a double is exact. (Counts genuinely above DBL_MAX, like the
// complement of a near-empty function, still saturate to inf — that is a
// property of the return type, not of the algorithm.)
TEST(Bdd, SatCountExactOnWideEncodings) {
  const int n = 1060;  // beyond double's 2^1024 overflow threshold
  BddManager mgr(n);

  // AND of all 1060 variables: exactly one satisfying assignment. The old
  // path computed frac * 2^1060 = (subnormal) * inf here.
  Bdd chain = mgr.one();
  for (int v = 0; v < n; ++v) chain = chain & mgr.var(v);
  const double cnt = mgr.sat_count(chain, n);
  EXPECT_TRUE(std::isfinite(cnt));
  EXPECT_DOUBLE_EQ(cnt, 1.0);

  // AND of the first 1050 variables, 10 left free: exactly 2^10 minterms.
  Bdd most = mgr.one();
  for (int v = 0; v < n - 10; ++v) most = most & mgr.var(v);
  EXPECT_DOUBLE_EQ(mgr.sat_count(most, n), 1024.0);

  // Mixed structure with a non-power-of-two count: fix 1050 vars, leave 8
  // free, and require v1058 ∨ v1059 → 3 · 2^8 = 768 minterms.
  const Bdd f = most & (mgr.var(n - 2) | mgr.var(n - 1));
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, n), 768.0);

  // Complement closure still holds where both sides are representable:
  // counting over a narrow slice of the wide manager stays exact.
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.zero(), n), 0.0);
}

TEST(Bdd, OneSatYieldsSatisfyingCube) {
  BddManager mgr(4);
  const Bdd f = (mgr.var(0) & (!mgr.var(2))) | (mgr.var(1) & mgr.var(3));
  const auto cube = mgr.one_sat(f);
  // Extend the cube to a full assignment (others false) and check.
  std::vector<bool> assign(4, false);
  for (const auto& [v, val] : cube) assign[static_cast<size_t>(v)] = val;
  EXPECT_TRUE(mgr.eval(f, [&](int v) { return assign[static_cast<size_t>(v)]; }));
}

TEST(Bdd, RestrictAgreesOnCareSet) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);
  const Bdd f = (a & b) | ((!a) & c);
  const Bdd care = a;  // only the a=1 half matters
  const Bdd r = mgr.restrict(f, care);
  // Wherever care holds, restrict(f) == f.
  for (int m = 0; m < 16; ++m) {
    const auto assign = [m](int v) { return ((m >> v) & 1) != 0; };
    if (!mgr.eval(care, assign)) continue;
    EXPECT_EQ(mgr.eval(r, assign), mgr.eval(f, assign)) << "minterm " << m;
  }
  // Under care = a, f collapses to b (sibling substitution drops c).
  EXPECT_EQ(r, b);
}

TEST(Bdd, RestrictNeverGrowsOnTheseExamples) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    BddManager mgr(6);
    Bdd f = mgr.zero();
    Bdd care = mgr.zero();
    for (int t = 0; t < 3; ++t) {
      Bdd cube = mgr.one();
      Bdd care_cube = mgr.one();
      for (int v = 0; v < 6; ++v) {
        const auto choice = rng.uniform(0, 2);
        if (choice == 0) cube = cube & mgr.var(v);
        if (choice == 1) cube = cube & mgr.nvar(v);
        const auto cchoice = rng.uniform(0, 2);
        if (cchoice == 0) care_cube = care_cube & mgr.var(v);
        if (cchoice == 1) care_cube = care_cube & mgr.nvar(v);
      }
      f = f | cube;
      care = care | care_cube;
    }
    const Bdd r = mgr.restrict(f, care);
    EXPECT_LE(mgr.node_count(r), mgr.node_count(f));
    // Agreement on the care set.
    EXPECT_TRUE(((r ^ f) & care).is_zero());
  }
}

TEST(Bdd, RestrictTrivialCases) {
  BddManager mgr(2);
  const Bdd f = mgr.var(0) & mgr.var(1);
  EXPECT_EQ(mgr.restrict(f, mgr.one()), f);
  EXPECT_TRUE(mgr.restrict(f, mgr.zero()).is_zero());
  EXPECT_EQ(mgr.restrict(mgr.one(), mgr.var(0)), mgr.one());
}

TEST(Bdd, NodeCountSharing) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd f = a & b;
  const Bdd g = a | b;
  // Terminals excluded: f and g are two internal nodes each, sharing the
  // (b ? 1 : 0) node, so counting both roots together gives three.
  EXPECT_EQ(mgr.node_count(f), 2u);
  EXPECT_EQ(mgr.node_count(g), 2u);
  const size_t together = mgr.node_count(std::vector<Bdd>{f, g});
  EXPECT_EQ(together, 3u);
  EXPECT_LE(together, mgr.node_count(f) + mgr.node_count(g));
  EXPECT_GE(together, mgr.node_count(f));
}

TEST(Bdd, NodeCountExcludesTerminals) {
  BddManager mgr(3);
  // Constants reach only terminal nodes: the internal count is zero.
  EXPECT_EQ(mgr.node_count(mgr.one()), 0u);
  EXPECT_EQ(mgr.node_count(mgr.zero()), 0u);
  EXPECT_EQ(mgr.node_count(mgr.var(0)), 1u);
  // The count agrees with the per-variable profile, so the sifting size
  // metric and its variable-ordering heuristic see the same quantity.
  const Bdd f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  size_t profile_total = 0;
  for (const size_t c : mgr.var_node_profile()) profile_total += c;
  EXPECT_EQ(mgr.node_count(f), profile_total);
  EXPECT_EQ(mgr.size_under_order(mgr.current_order()), profile_total);
}

TEST(Bdd, NullHandleOperatorsFailLoudly) {
  Bdd a;
  Bdd b;
  EXPECT_THROW(a & b, CheckError);
  EXPECT_THROW(a | b, CheckError);
  EXPECT_THROW(a ^ b, CheckError);
  EXPECT_THROW(!a, CheckError);
  // Mixing a live handle with a null one must fail on either side.
  BddManager mgr(1);
  const Bdd x = mgr.var(0);
  EXPECT_THROW(x & a, CheckError);
  EXPECT_THROW(a & x, CheckError);
  // Handles nulled by manager destruction fail the same way.
  Bdd survivor;
  {
    BddManager scoped(1);
    survivor = scoped.var(0);
  }
  EXPECT_THROW(!survivor, CheckError);
}

TEST(Bdd, SwapAdjacentLevelsPreservesFunctionsAndCanonicity) {
  BddManager mgr(4);
  const Bdd f = (mgr.var(0) & mgr.var(2)) | (mgr.var(1) & mgr.var(3));
  const Bdd g = mgr.var(0) ^ mgr.var(3);
  const Table ft = table_of(mgr, f, 4);
  const Table gt = table_of(mgr, g, 4);

  mgr.swap_adjacent_levels(0);
  EXPECT_EQ(mgr.var_at_level(0), 1);
  EXPECT_EQ(mgr.var_at_level(1), 0);
  EXPECT_EQ(mgr.level_of(0), 1);

  for (const int level : {1, 2, 0, 2, 1, 0}) {
    mgr.swap_adjacent_levels(level);
    EXPECT_EQ(table_of(mgr, f, 4), ft);
    EXPECT_EQ(table_of(mgr, g, 4), gt);
    // The in-place arena stays reduced: the live count equals a clean
    // rebuild under the same order.
    EXPECT_EQ(mgr.node_count(std::vector<Bdd>{f, g}),
              mgr.size_under_order(mgr.current_order()));
  }

  // The unique table stays coherent after swaps: new operations still
  // hash-cons against the rewritten nodes.
  const Bdd h1 = (mgr.var(0) & mgr.var(2)) | (mgr.var(1) & mgr.var(3));
  EXPECT_EQ(h1, f);
  EXPECT_THROW(mgr.swap_adjacent_levels(3), CheckError);
  EXPECT_THROW(mgr.swap_adjacent_levels(-1), CheckError);
}

TEST(Bdd, SetOrderPreservesSemantics) {
  BddManager mgr(4);
  Bdd f = (mgr.var(0) & mgr.var(2)) | (mgr.var(1) & mgr.var(3));
  const Table before = table_of(mgr, f, 4);
  mgr.set_order({3, 1, 2, 0});
  EXPECT_EQ(table_of(mgr, f, 4), before);
  EXPECT_EQ(mgr.level_of(3), 0);
  EXPECT_EQ(mgr.var_at_level(0), 3);
  mgr.set_order({0, 1, 2, 3});
  EXPECT_EQ(table_of(mgr, f, 4), before);
}

TEST(Bdd, InterleavedOrderSmallerForDisjointAnds) {
  // (x0&y0) | (x1&y1) | (x2&y2): interleaved order is linear, separated
  // order is exponential — the classic ordering example.
  BddManager mgr(6);  // x0..x2 = 0..2, y0..y2 = 3..5
  Bdd f = mgr.zero();
  for (int i = 0; i < 3; ++i) f = f | (mgr.var(i) & mgr.var(i + 3));
  const size_t separated = mgr.size_under_order({0, 1, 2, 3, 4, 5});
  const size_t interleaved = mgr.size_under_order({0, 3, 1, 4, 2, 5});
  EXPECT_LT(interleaved, separated);
}

TEST(Bdd, GarbageCollectKeepsLiveHandles) {
  BddManager mgr(4);
  Bdd keep = mgr.var(0) & mgr.var(1);
  {
    Bdd dead = mgr.var(2) ^ mgr.var(3);
    (void)dead;
  }
  const Table before = table_of(mgr, keep, 4);
  const size_t arena_before = mgr.arena_size();
  mgr.garbage_collect();
  EXPECT_LE(mgr.arena_size(), arena_before);
  EXPECT_EQ(table_of(mgr, keep, 4), before);
}

TEST(Bdd, HandleCopySemantics) {
  BddManager mgr(2);
  Bdd a = mgr.var(0);
  Bdd b = a;  // copy
  EXPECT_EQ(a, b);
  Bdd c = std::move(b);
  EXPECT_TRUE(b.is_null());
  EXPECT_EQ(c, a);
  c = a;
  c = c;  // self-assignment is a no-op
  EXPECT_EQ(c, a);
}

TEST(Bdd, ManagerDestructionNullsHandles) {
  Bdd survivor;
  {
    BddManager mgr(2);
    survivor = mgr.var(0);
    EXPECT_FALSE(survivor.is_null());
  }
  EXPECT_TRUE(survivor.is_null());
}

TEST(Bdd, VarNodeProfileCountsPerLevel) {
  BddManager mgr(3);
  Bdd f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  const std::vector<size_t> profile = mgr.var_node_profile();
  EXPECT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0], 1u);
  EXPECT_GE(profile[1], 1u);
  EXPECT_GE(profile[2], 1u);
}

TEST(BddIo, ToExprMatchesFunction) {
  BddManager mgr(3);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | ((!mgr.var(0)) & mgr.var(2));
  const expr::ExprRef e = to_expr(f, [](int v) {
    return expr::var("x" + std::to_string(v));
  });
  for (int m = 0; m < 8; ++m) {
    const bool want = mgr.eval(f, [m](int v) { return (m >> v) & 1; });
    const std::int64_t got = expr::evaluate(
        *e, [m](const std::string& n) -> std::int64_t {
          const int v = n[1] - '0';
          return (m >> v) & 1;
        });
    EXPECT_EQ(got != 0, want) << "minterm " << m;
  }
}

TEST(BddIo, StatsString) {
  BddManager mgr(3);
  const Bdd f = mgr.var(0) & mgr.var(2);
  const std::string st = stats(mgr, f);
  EXPECT_NE(st.find("nodes="), std::string::npos);
  EXPECT_NE(st.find("vars=2"), std::string::npos);
}

TEST(BddIo, DotOutputWellFormed) {
  BddManager mgr(2);
  const Bdd f = mgr.var(0) & mgr.var(1);
  std::ostringstream os;
  to_dot({f}, {"f"}, os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0"), std::string::npos);
}

TEST(BddIo, WriteReadRoundTripSameManager) {
  BddManager mgr(4);
  std::vector<Bdd> roots;
  roots.push_back((mgr.var(0) & mgr.var(1)) | ((!mgr.var(2)) & mgr.var(3)));
  roots.push_back(!roots[0]);  // complemented root: ref low bit set
  roots.push_back(mgr.var(1) ^ mgr.var(3));
  roots.push_back(mgr.zero());
  roots.push_back(mgr.one());
  std::ostringstream os;
  write_bdds(roots, {"f", "nf", "x", "zero", "one"}, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("polis-bdd 1"), std::string::npos);

  std::istringstream is(text);
  std::vector<std::string> names;
  const std::vector<Bdd> back = read_bdds(mgr, is, &names);
  ASSERT_EQ(back.size(), roots.size());
  EXPECT_EQ(names, (std::vector<std::string>{"f", "nf", "x", "zero", "one"}));
  for (size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(back[i], roots[i]) << "root " << i;
  }
  // No new variables were created by the read.
  EXPECT_EQ(mgr.num_vars(), 4);

  // Determinism: re-serializing the read-back roots is byte-identical.
  std::ostringstream os2;
  write_bdds(back, names, os2);
  EXPECT_EQ(os2.str(), text);
}

TEST(BddIo, WriteReadRoundTripFreshManagerMatchesTruthTable) {
  BddManager mgr(3);
  const Bdd f = (mgr.var(0) ^ mgr.var(1)) | (!mgr.var(2));
  std::ostringstream os;
  write_bdds({f, !f}, {"f", "nf"}, os);

  BddManager fresh;
  std::istringstream is(os.str());
  const std::vector<Bdd> back = read_bdds(fresh, is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(fresh.num_vars(), 3);
  EXPECT_EQ(back[1], !back[0]);
  for (int m = 0; m < 8; ++m) {
    const bool want = mgr.eval(f, [m](int v) { return (m >> v) & 1; });
    const bool got = fresh.eval(back[0], [m](int v) { return (m >> v) & 1; });
    EXPECT_EQ(got, want) << "minterm " << m;
  }
}

TEST(BddIo, ReadRejectsMalformedInput) {
  BddManager mgr(2);
  {
    std::istringstream is("not-a-bdd 1\n");
    EXPECT_THROW(read_bdds(mgr, is), CheckError);
  }
  {
    // Complemented then-edge (hi ref with low bit set) violates the
    // canonical-form invariant the reader enforces.
    std::istringstream is(
        "polis-bdd 1\nvars 1\nv0\nnodes 1\n0 1 3\nroots 1\nf 2\n");
    EXPECT_THROW(read_bdds(mgr, is), CheckError);
  }
  {
    // Forward reference to a serial that has not been defined yet.
    std::istringstream is(
        "polis-bdd 1\nvars 1\nv0\nnodes 1\n0 9 0\nroots 1\nf 2\n");
    EXPECT_THROW(read_bdds(mgr, is), CheckError);
  }
}

// --- Property: random operation DAGs match brute-force truth tables, under
// --- the initial order and after random reorderings.
class BddProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddProperty, RandomDagMatchesTruthTableAcrossOrders) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = 2 + static_cast<int>(rng.uniform(0, 6));  // up to 8 vars
  BddManager mgr(n);

  // Reference truth tables maintained alongside the BDDs.
  std::vector<Bdd> funcs;
  std::vector<Table> tables;
  for (int v = 0; v < n; ++v) {
    funcs.push_back(mgr.var(v));
    tables.push_back(table_of(mgr, funcs.back(), n));
  }
  for (int step = 0; step < 30; ++step) {
    const size_t i = static_cast<size_t>(rng.uniform(0, static_cast<int>(funcs.size()) - 1));
    const size_t j = static_cast<size_t>(rng.uniform(0, static_cast<int>(funcs.size()) - 1));
    Bdd f;
    Table t(static_cast<size_t>(1) << n);
    switch (rng.uniform(0, 4)) {
      case 0:
        f = funcs[i] & funcs[j];
        for (size_t m = 0; m < t.size(); ++m) t[m] = tables[i][m] && tables[j][m];
        break;
      case 1:
        f = funcs[i] | funcs[j];
        for (size_t m = 0; m < t.size(); ++m) t[m] = tables[i][m] || tables[j][m];
        break;
      case 2:
        f = funcs[i] ^ funcs[j];
        for (size_t m = 0; m < t.size(); ++m) t[m] = tables[i][m] != tables[j][m];
        break;
      case 3:
        f = !funcs[i];
        for (size_t m = 0; m < t.size(); ++m) t[m] = !tables[i][m];
        break;
      default: {
        const size_t k = static_cast<size_t>(rng.uniform(0, static_cast<int>(funcs.size()) - 1));
        f = mgr.ite(funcs[i], funcs[j], funcs[k]);
        for (size_t m = 0; m < t.size(); ++m)
          t[m] = tables[i][m] ? tables[j][m] : tables[k][m];
        break;
      }
    }
    funcs.push_back(f);
    tables.push_back(t);
  }

  for (size_t i = 0; i < funcs.size(); ++i)
    ASSERT_EQ(table_of(mgr, funcs[i], n), tables[i]) << "func " << i;

  // Reorder randomly twice; all functions must still match.
  for (int round = 0; round < 2; ++round) {
    mgr.set_order(rng.permutation(n));
    for (size_t i = 0; i < funcs.size(); ++i)
      ASSERT_EQ(table_of(mgr, funcs[i], n), tables[i])
          << "after reorder, func " << i;
  }

  // Quantification spot-checks against the tables.
  const Bdd f = funcs.back();
  const Table& tf = tables.back();
  const int qv = static_cast<int>(rng.uniform(0, n - 1));
  const Bdd ex = mgr.smooth(f, {qv});
  const Bdd all = mgr.forall(f, {qv});
  for (size_t m = 0; m < tf.size(); ++m) {
    const size_t m0 = m & ~(static_cast<size_t>(1) << qv);
    const size_t m1 = m | (static_cast<size_t>(1) << qv);
    const bool want_ex = tf[m0] || tf[m1];
    const bool want_all = tf[m0] && tf[m1];
    EXPECT_EQ(mgr.eval(ex, [m](int v) { return (m >> v) & 1; }), want_ex);
    EXPECT_EQ(mgr.eval(all, [m](int v) { return (m >> v) & 1; }), want_all);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace polis::bdd
