// Cross-module integration: the full synthesis pipeline on the paper's
// systems, and the synthesized code running as tasks under the generated
// RTOS simulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/synthesis.hpp"
#include "core/systems.hpp"
#include "estim/calibrate.hpp"
#include "rtos/rtos.hpp"
#include "rtos/tasks.hpp"
#include "rtos/trace.hpp"
#include "sched/sched.hpp"
#include "vm/machine.hpp"

namespace polis {
namespace {

const estim::CostModel& model() {
  static const estim::CostModel m = estim::calibrate(vm::hc11_like());
  return m;
}

TEST(Pipeline, SynthesizeAllDashboardModules) {
  for (const auto& m : systems::dashboard_modules()) {
    SynthesisOptions options;
    options.cost_model = &model();
    const SynthesisResult r = synthesize(m, options);
    EXPECT_GT(r.graph->num_reachable(), 2u) << m->name();
    EXPECT_GT(r.vm_size_bytes, 0) << m->name();
    EXPECT_GT(r.estimate.size_bytes, 0) << m->name();
    EXPECT_LE(r.estimate.min_cycles, r.estimate.max_cycles) << m->name();
    EXPECT_NE(r.c_code.find("void cfsm_"), std::string::npos) << m->name();
    EXPECT_GE(r.synthesis_seconds, 0.0);

    // Exhaustivethree-way equivalence: reference == s-graph == VM.
    int bad = 0;
    cfsm::enumerate_concrete_space(
        *m, 1u << 18,
        [&](const cfsm::Snapshot& snap,
            const std::map<std::string, std::int64_t>& st) {
          const cfsm::Reaction ref = m->react(snap, st);
          const cfsm::Reaction via_graph =
              sgraph::run_reaction(*r.graph, *m, snap, st);
          const cfsm::Reaction via_vm =
              vm::run_reaction(*r.compiled, vm::hc11_like(), *m, snap, st);
          auto sorted = [](std::vector<std::pair<std::string, std::int64_t>> v) {
            std::sort(v.begin(), v.end());
            return v;
          };
          const bool ok =
              ref.fired == via_graph.fired && ref.fired == via_vm.fired &&
              ref.next_state == via_graph.next_state &&
              ref.next_state == via_vm.next_state &&
              sorted(ref.emissions) == sorted(via_graph.emissions) &&
              sorted(ref.emissions) == sorted(via_vm.emissions);
          if (!ok) ++bad;
        });
    EXPECT_EQ(bad, 0) << m->name();
  }
}

TEST(Pipeline, DashNetworkRunsUnderRtosWithVmTasks) {
  const auto net = systems::dash_network();
  rtos::RtosConfig config;
  rtos::RtosSimulation sim(*net, config);

  // Synthesize every instance and install it as a VM-backed task.
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model();
    const SynthesisResult r = synthesize(inst.machine, options);
    sim.set_task(inst.name,
                 rtos::vm_task(r.compiled, vm::hc11_like(), inst.machine));
  }

  // Drive it: wheel pulses every 400 cycles, engine pulses every 700,
  // window timer every 4000, driver turns the key and never fastens.
  Rng rng(42);
  auto events = rtos::merge_traces({
      rtos::periodic_trace({"wheel_raw", 400, 0, 0.0, 1}, 100'000),
      rtos::periodic_trace({"engine_raw", 700, 0, 0.0, 1}, 100'000),
      rtos::periodic_trace({"timer", 4000, 100, 0.0, 1}, 100'000),
      {{{50, "key_on", 0}}},
  });
  const rtos::SimStats stats = sim.run(events);

  EXPECT_GT(stats.reactions_run, 100);
  EXPECT_GT(stats.busy_cycles, 0);
  // The gauges were driven and the seat-belt alarm fired.
  bool saw_pwm = false;
  bool saw_alarm = false;
  bool saw_rpm = false;
  for (const rtos::ObservedEmission& e : stats.outputs) {
    saw_pwm = saw_pwm || e.net == "speed_pwm";
    saw_rpm = saw_rpm || e.net == "rpm_pwm";
    saw_alarm = saw_alarm || e.net == "alarm";
  }
  EXPECT_TRUE(saw_pwm);
  EXPECT_TRUE(saw_rpm);
  EXPECT_TRUE(saw_alarm);
  EXPECT_LT(stats.utilization(), 1.0);
}

TEST(Pipeline, ShockNetworkMeetsLatencyUnderPriorityScheduling) {
  const auto net = systems::shock_network();
  rtos::RtosConfig config;
  config.policy = rtos::RtosConfig::Policy::kStaticPriority;
  config.preemptive = true;
  config.priority = {{"smp", 1}, {"law", 2}, {"act", 3}, {"wdg", 4}};
  rtos::RtosSimulation sim(*net, config);

  std::vector<sched::Task> taskset;
  for (const cfsm::Instance& inst : net->instances()) {
    SynthesisOptions options;
    options.cost_model = &model();
    const SynthesisResult r = synthesize(inst.machine, options);
    sim.set_task(inst.name,
                 rtos::vm_task(r.compiled, vm::hc11_like(), inst.machine));
    taskset.push_back(sched::Task{
        inst.name, static_cast<double>(r.estimate.max_cycles), 4000, 0, 0});
  }

  // Schedulability from the WCET estimates (step 4 of the flow).
  EXPECT_LT(sched::utilization(taskset), 1.0);
  EXPECT_TRUE(sched::response_times(taskset).has_value());

  Rng rng(7);
  auto events = rtos::merge_traces({
      rtos::periodic_trace({"ctrl_tick", 4000, 0, 0.0, 1}, 200'000),
      rtos::periodic_trace({"accel_in", 1500, 300, 0.1, 16}, 200'000, &rng),
      {{{90'000, "mode_btn", 0}}},
  });
  const rtos::SimStats stats = sim.run(events);

  ASSERT_TRUE(stats.input_to_output_latency.count("valve_out"));
  const auto& lat = stats.input_to_output_latency.at("valve_out");
  ASSERT_FALSE(lat.empty());
  const long long worst = *std::max_element(lat.begin(), lat.end());
  // The paper's shock absorber met a 12 µs I/O latency spec; our analogue
  // budget in VM cycles for the sample→valve chain:
  EXPECT_LT(worst, 6000);
  EXPECT_EQ(stats.lost_events.count("damper_cmd"), 0u);
}

TEST(Pipeline, RamFootprintAccounting) {
  // §V-B reports RAM as well as ROM: slots (state + shadows + input values)
  // times the integer size, per task.
  long long ram = 0;
  for (const auto& m : systems::shock_modules()) {
    SynthesisOptions options;
    options.cost_model = &model();
    const SynthesisResult r = synthesize(m, options);
    ram += static_cast<long long>(r.compiled->program.slot_names.size()) *
           vm::hc11_like().int_size;
  }
  EXPECT_GT(ram, 0);
  EXPECT_LT(ram, 4096);  // far below the hand design's 8K RAM (§V-B)
}

}  // namespace
}  // namespace polis
