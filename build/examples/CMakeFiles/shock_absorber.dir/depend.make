# Empty dependencies file for shock_absorber.
# This may be replaced when dependencies are built.
