file(REMOVE_RECURSE
  "CMakeFiles/shock_absorber.dir/shock_absorber.cpp.o"
  "CMakeFiles/shock_absorber.dir/shock_absorber.cpp.o.d"
  "shock_absorber"
  "shock_absorber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shock_absorber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
