# Empty dependencies file for microwave.
# This may be replaced when dependencies are built.
