
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/microwave.cpp" "examples/CMakeFiles/microwave.dir/microwave.cpp.o" "gcc" "examples/CMakeFiles/microwave.dir/microwave.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/polis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/polis_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/polis_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/polis_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/polis_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/estim/CMakeFiles/polis_estim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/polis_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sgraph/CMakeFiles/polis_sgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/polis_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/cfsm/CMakeFiles/polis_cfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/polis_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/polis_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/polis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
