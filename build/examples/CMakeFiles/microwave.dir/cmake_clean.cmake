file(REMOVE_RECURSE
  "CMakeFiles/microwave.dir/microwave.cpp.o"
  "CMakeFiles/microwave.dir/microwave.cpp.o.d"
  "microwave"
  "microwave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
