file(REMOVE_RECURSE
  "CMakeFiles/cfsm_test.dir/cfsm_test.cpp.o"
  "CMakeFiles/cfsm_test.dir/cfsm_test.cpp.o.d"
  "cfsm_test"
  "cfsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
