file(REMOVE_RECURSE
  "CMakeFiles/microwave_test.dir/microwave_test.cpp.o"
  "CMakeFiles/microwave_test.dir/microwave_test.cpp.o.d"
  "microwave_test"
  "microwave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microwave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
