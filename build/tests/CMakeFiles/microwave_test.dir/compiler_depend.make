# Empty compiler generated dependencies file for microwave_test.
# This may be replaced when dependencies are built.
