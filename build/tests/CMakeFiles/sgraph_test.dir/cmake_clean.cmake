file(REMOVE_RECURSE
  "CMakeFiles/sgraph_test.dir/sgraph_test.cpp.o"
  "CMakeFiles/sgraph_test.dir/sgraph_test.cpp.o.d"
  "sgraph_test"
  "sgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
