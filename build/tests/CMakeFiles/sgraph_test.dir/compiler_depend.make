# Empty compiler generated dependencies file for sgraph_test.
# This may be replaced when dependencies are built.
