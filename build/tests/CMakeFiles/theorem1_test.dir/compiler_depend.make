# Empty compiler generated dependencies file for theorem1_test.
# This may be replaced when dependencies are built.
