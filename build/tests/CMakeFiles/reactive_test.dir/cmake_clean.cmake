file(REMOVE_RECURSE
  "CMakeFiles/reactive_test.dir/reactive_test.cpp.o"
  "CMakeFiles/reactive_test.dir/reactive_test.cpp.o.d"
  "reactive_test"
  "reactive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
