file(REMOVE_RECURSE
  "CMakeFiles/estim_test.dir/estim_test.cpp.o"
  "CMakeFiles/estim_test.dir/estim_test.cpp.o.d"
  "estim_test"
  "estim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
