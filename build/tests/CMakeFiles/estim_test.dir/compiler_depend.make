# Empty compiler generated dependencies file for estim_test.
# This may be replaced when dependencies are built.
