# Empty dependencies file for generated_system_test.
# This may be replaced when dependencies are built.
