file(REMOVE_RECURSE
  "CMakeFiles/generated_system_test.dir/generated_system_test.cpp.o"
  "CMakeFiles/generated_system_test.dir/generated_system_test.cpp.o.d"
  "generated_system_test"
  "generated_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
