file(REMOVE_RECURSE
  "CMakeFiles/polisc.dir/polisc.cpp.o"
  "CMakeFiles/polisc.dir/polisc.cpp.o.d"
  "polisc"
  "polisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
