# Empty dependencies file for polisc.
# This may be replaced when dependencies are built.
