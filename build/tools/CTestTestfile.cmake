# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(polisc_list "/root/repo/build/tools/polisc" "/root/repo/examples/rsl/blinker.rsl" "--list")
set_tests_properties(polisc_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(polisc_module_report "/root/repo/build/tools/polisc" "/root/repo/examples/rsl/blinker.rsl" "--module" "blink" "--report" "--opt-copyin" "--scheme" "free")
set_tests_properties(polisc_module_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(polisc_network_out "/root/repo/build/tools/polisc" "/root/repo/examples/rsl/microwave.rsl" "--network" "microwave" "--out" "/root/repo/build/polisc_gen" "--policy" "prio" "--report")
set_tests_properties(polisc_network_out PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(polisc_dashboard "/root/repo/build/tools/polisc" "/root/repo/examples/rsl/dashboard.rsl" "--network" "dash" "--out" "/root/repo/build/polisc_dash")
set_tests_properties(polisc_dashboard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(polisc_rejects_bad_module "/root/repo/build/tools/polisc" "/root/repo/examples/rsl/blinker.rsl" "--module" "nope")
set_tests_properties(polisc_rejects_bad_module PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(polisc_simulate "/root/repo/build/tools/polisc" "/root/repo/examples/rsl/dashboard.rsl" "--network" "dash" "--out" "/root/repo/build/polisc_sim" "--simulate" "100000" "--vcd" "/root/repo/build/polisc_sim/dash.vcd")
set_tests_properties(polisc_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
