/* Synthesized reaction routine for instance 'pad' of CFSM 'keypad'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long pad__acc = 0;

void cfsm_pad(void) {
  long pad__acc__in = pad__acc;
  if (!(polis_detect(SIG_digit))) goto L12;
  goto L3;
L12:
  if (!(polis_detect(SIG_clear))) goto L11;
  goto L5;
L11:
  if (!(polis_detect(SIG_start_btn))) goto L0;
  if (!(pad__acc__in > 0)) goto L0;
  polis_consume();
  pad__acc = polis_wrap(0, 16);
  polis_emit_value(SIG_set_time, polis_wrap(pad__acc__in, 16));
  polis_emit(SIG_start);
  goto L0;
L5:
  polis_consume();
  pad__acc = polis_wrap(0, 16);
  goto L0;
L3:
  pad__acc = polis_wrap(pad__acc__in + polis_value(SIG_digit), 16);
  polis_consume();
L0:
  return;
}
