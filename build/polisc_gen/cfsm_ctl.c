/* Synthesized reaction routine for instance 'ctl' of CFSM 'controller'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long ctl__cooking = 0;
static long ctl__remaining = 0;
static long ctl__door = 1;

void cfsm_ctl(void) {
  long ctl__cooking__in = ctl__cooking;
  long ctl__remaining__in = ctl__remaining;
  long ctl__door__in = ctl__door;
  if (!(polis_detect(SIG_door_open))) goto L26;
  goto L7;
L26:
  if (!(polis_detect(SIG_door_closed))) goto L25;
  goto L8;
L25:
  if (!(polis_detect(SIG_set_time))) goto L24;
  goto L14;
L24:
  if (!(ctl__cooking__in == 1)) goto L0;
  if (!(polis_detect(SIG_tick))) goto L0;
  if (!(ctl__remaining__in > 1)) goto L21;
  goto L15;
L21:
  if (!(ctl__remaining__in == 1)) goto L0;
  polis_consume();
  polis_emit(SIG_heat_off);
  ctl__cooking = polis_wrap(0, 2);
  polis_emit(SIG_done);
  ctl__remaining = polis_wrap(0, 16);
  goto L0;
L15:
  ctl__remaining = polis_wrap(ctl__remaining__in - 1, 16);
  goto L5;
L14:
  ctl__remaining = polis_wrap(polis_value(SIG_set_time), 16);
  if (!(polis_detect(SIG_start))) goto L5;
  if (!(ctl__door__in == 1)) goto L5;
  polis_consume();
  polis_emit(SIG_heat_on);
  ctl__cooking = polis_wrap(1, 2);
  goto L0;
L8:
  ctl__door = polis_wrap(1, 2);
  goto L5;
L7:
  ctl__door = polis_wrap(0, 2);
  if (!(ctl__cooking__in == 1)) goto L5;
  goto L4;
L5:
  polis_consume();
  goto L0;
L4:
  polis_consume();
  polis_emit(SIG_heat_off);
  ctl__cooking = polis_wrap(0, 2);
L0:
  return;
}
