/* Synthesized reaction routine for instance 'mag' of CFSM 'magnetron'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long mag__on = 0;

void cfsm_mag(void) {
  long mag__on__in = mag__on;
  if (!(polis_detect(SIG_heat_off))) goto L8;
  goto L4;
L8:
  if (!(polis_detect(SIG_heat_on))) goto L0;
  polis_consume();
  polis_emit_value(SIG_power, polis_wrap(1, 2));
  mag__on = polis_wrap(1, 2);
  goto L0;
L4:
  mag__on = polis_wrap(0, 2);
  polis_emit_value(SIG_power, polis_wrap(0, 2));
  polis_consume();
L0:
  return;
}
