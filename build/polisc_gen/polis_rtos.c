/* Generated RTOS for network 'microwave' (§IV).
 * Policy: static priority, non-preemptive; hw->sw delivery: interrupt. */
#include "polis_rt.h"

#define N_TASKS 4
#define N_NETS  13

extern void cfsm_pad(void);
extern void cfsm_ctl(void);
extern void cfsm_mag(void);
extern void cfsm_bell(void);

static void (*const task_entry[N_TASKS])(void) = {
  cfsm_pad, /* keypad */
  cfsm_ctl, /* controller */
  cfsm_mag, /* magnetron */
  cfsm_bell, /* beeper */
};
static const int task_priority[N_TASKS] = { 100, 100, 100, 100 };

/* Per-task private event flags (1-place buffers, §IV-B), plus a
 * pending buffer that freezes the running task's snapshot: events
 * arriving (e.g. from an ISR) while a task reads its flags are
 * deferred to its next execution (§IV-D). */
static int  flag_present[N_TASKS][N_NETS];
static long flag_value[N_TASKS][N_NETS];
static int  pending_present[N_TASKS][N_NETS];
static long pending_value[N_TASKS][N_NETS];
static int  task_enabled[N_TASKS];
static int  current_task = -1;
static int  current_consumed = 0;

static const int sensitivity[N_NETS][N_TASKS + 1] = {
  { -1 }, /* beep */
  { 0, -1 }, /* clear */
  { 0, -1 }, /* digit */
  { 3, -1 }, /* done */
  { 1, -1 }, /* door_closed */
  { 1, -1 }, /* door_open */
  { 2, -1 }, /* heat_off */
  { 2, -1 }, /* heat_on */
  { -1 }, /* power */
  { 1, -1 }, /* set_time */
  { 1, -1 }, /* start */
  { 0, -1 }, /* start_btn */
  { 1, -1 }, /* tick */
};

long polis_wrap(long value, long domain) {
  long m;
  if (domain <= 1) return 0;
  m = value % domain;
  return m < 0 ? m + domain : m;
}

int polis_detect(int sig) { return flag_present[current_task][sig]; }

long polis_value(int sig) { return flag_value[current_task][sig]; }

void polis_consume(void) { current_consumed = 1; }

void polis_emit_value(int sig, long value) {
  const int *t = sensitivity[sig];
  if (*t < 0) { polis_observe(sig, value); return; }  /* external output */
  for (; *t >= 0; ++t) {
    if (*t == current_task) {   /* snapshot frozen: defer (§IV-D) */
      pending_value[*t][sig] = value;
      pending_present[*t][sig] = 1;
    } else {
      flag_value[*t][sig] = value;  /* value before presence (§II-D) */
      flag_present[*t][sig] = 1;
      task_enabled[*t] = 1;
    }
  }
}

void polis_emit(int sig) { polis_emit_value(sig, 0); }

static void run_task(int t) {
  int s;
  current_task = t;
  current_consumed = 0;
  task_enabled[t] = 0;          /* enablement is edge-triggered (§IV-A) */
  task_entry[t]();
  if (current_consumed) {       /* §IV-D: consume only if a rule fired */
    for (s = 0; s < N_NETS; ++s) flag_present[t][s] = 0;
  }
  current_task = -1;
  for (s = 0; s < N_NETS; ++s) {  /* merge the deferred arrivals */
    if (!pending_present[t][s]) continue;
    flag_present[t][s] = 1;       /* overwrites a preserved event */
    flag_value[t][s] = pending_value[t][s];
    pending_present[t][s] = 0;
    task_enabled[t] = 1;
  }
}

void polis_scheduler_step(void) {
  int t, best = -1;
  for (t = 0; t < N_TASKS; ++t) {
    if (!task_enabled[t]) continue;
    if (best < 0 || task_priority[t] < task_priority[best]) best = t;
  }
  if (best >= 0) run_task(best);
}

/* Interrupt service routine for hw-CFSM events: by default an ISR contains
 * only the emission (§IV-C); critical events may run their consumers inside
 * the ISR via polis_scheduler_step(). */
void polis_isr(int sig) { polis_emit(sig); }
