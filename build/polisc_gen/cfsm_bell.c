/* Synthesized reaction routine for instance 'bell' of CFSM 'beeper'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"


void cfsm_bell(void) {
  if (!(polis_detect(SIG_done))) goto L0;
  polis_emit(SIG_beep);
  polis_consume();
L0:
  return;
}
