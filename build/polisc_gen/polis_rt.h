/* polis_rt.h — generated RTOS interface for network 'microwave'. */
#ifndef POLIS_RT_H
#define POLIS_RT_H

#define SIG_beep 0
#define SIG_clear 1
#define SIG_digit 2
#define SIG_done 3
#define SIG_door_closed 4
#define SIG_door_open 5
#define SIG_heat_off 6
#define SIG_heat_on 7
#define SIG_power 8
#define SIG_set_time 9
#define SIG_start 10
#define SIG_start_btn 11
#define SIG_tick 12

long polis_wrap(long value, long domain);
int  polis_detect(int sig);
void polis_emit(int sig);
void polis_emit_value(int sig, long value);
void polis_consume(void);
long polis_value(int sig);
/* Provided by the environment: called for emissions on nets with
 * no software consumer (the system's external outputs). */
void polis_observe(int sig, long value);

#endif /* POLIS_RT_H */
