# Empty dependencies file for polis_cfsm.
# This may be replaced when dependencies are built.
