file(REMOVE_RECURSE
  "libpolis_cfsm.a"
)
