file(REMOVE_RECURSE
  "CMakeFiles/polis_cfsm.dir/cfsm.cpp.o"
  "CMakeFiles/polis_cfsm.dir/cfsm.cpp.o.d"
  "CMakeFiles/polis_cfsm.dir/network.cpp.o"
  "CMakeFiles/polis_cfsm.dir/network.cpp.o.d"
  "CMakeFiles/polis_cfsm.dir/random.cpp.o"
  "CMakeFiles/polis_cfsm.dir/random.cpp.o.d"
  "CMakeFiles/polis_cfsm.dir/reactive.cpp.o"
  "CMakeFiles/polis_cfsm.dir/reactive.cpp.o.d"
  "libpolis_cfsm.a"
  "libpolis_cfsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_cfsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
