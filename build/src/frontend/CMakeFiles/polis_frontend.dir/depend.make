# Empty dependencies file for polis_frontend.
# This may be replaced when dependencies are built.
