file(REMOVE_RECURSE
  "libpolis_frontend.a"
)
