file(REMOVE_RECURSE
  "CMakeFiles/polis_frontend.dir/lexer.cpp.o"
  "CMakeFiles/polis_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/polis_frontend.dir/parser.cpp.o"
  "CMakeFiles/polis_frontend.dir/parser.cpp.o.d"
  "libpolis_frontend.a"
  "libpolis_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
