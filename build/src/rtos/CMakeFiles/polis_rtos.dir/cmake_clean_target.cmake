file(REMOVE_RECURSE
  "libpolis_rtos.a"
)
