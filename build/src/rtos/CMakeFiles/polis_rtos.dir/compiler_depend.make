# Empty compiler generated dependencies file for polis_rtos.
# This may be replaced when dependencies are built.
