file(REMOVE_RECURSE
  "CMakeFiles/polis_rtos.dir/codegen.cpp.o"
  "CMakeFiles/polis_rtos.dir/codegen.cpp.o.d"
  "CMakeFiles/polis_rtos.dir/rtos.cpp.o"
  "CMakeFiles/polis_rtos.dir/rtos.cpp.o.d"
  "CMakeFiles/polis_rtos.dir/tasks.cpp.o"
  "CMakeFiles/polis_rtos.dir/tasks.cpp.o.d"
  "CMakeFiles/polis_rtos.dir/trace.cpp.o"
  "CMakeFiles/polis_rtos.dir/trace.cpp.o.d"
  "CMakeFiles/polis_rtos.dir/vcd.cpp.o"
  "CMakeFiles/polis_rtos.dir/vcd.cpp.o.d"
  "libpolis_rtos.a"
  "libpolis_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
