file(REMOVE_RECURSE
  "libpolis_bdd.a"
)
