file(REMOVE_RECURSE
  "CMakeFiles/polis_bdd.dir/bdd.cpp.o"
  "CMakeFiles/polis_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/polis_bdd.dir/io.cpp.o"
  "CMakeFiles/polis_bdd.dir/io.cpp.o.d"
  "CMakeFiles/polis_bdd.dir/reorder.cpp.o"
  "CMakeFiles/polis_bdd.dir/reorder.cpp.o.d"
  "libpolis_bdd.a"
  "libpolis_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
