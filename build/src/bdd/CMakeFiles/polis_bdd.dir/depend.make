# Empty dependencies file for polis_bdd.
# This may be replaced when dependencies are built.
