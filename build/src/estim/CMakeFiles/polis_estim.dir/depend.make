# Empty dependencies file for polis_estim.
# This may be replaced when dependencies are built.
