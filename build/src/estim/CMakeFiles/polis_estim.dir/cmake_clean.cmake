file(REMOVE_RECURSE
  "CMakeFiles/polis_estim.dir/calibrate.cpp.o"
  "CMakeFiles/polis_estim.dir/calibrate.cpp.o.d"
  "CMakeFiles/polis_estim.dir/estimate.cpp.o"
  "CMakeFiles/polis_estim.dir/estimate.cpp.o.d"
  "libpolis_estim.a"
  "libpolis_estim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_estim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
