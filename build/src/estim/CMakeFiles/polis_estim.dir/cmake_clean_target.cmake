file(REMOVE_RECURSE
  "libpolis_estim.a"
)
