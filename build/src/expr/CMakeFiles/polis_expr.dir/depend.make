# Empty dependencies file for polis_expr.
# This may be replaced when dependencies are built.
