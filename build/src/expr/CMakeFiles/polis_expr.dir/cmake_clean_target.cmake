file(REMOVE_RECURSE
  "libpolis_expr.a"
)
