file(REMOVE_RECURSE
  "CMakeFiles/polis_expr.dir/expr.cpp.o"
  "CMakeFiles/polis_expr.dir/expr.cpp.o.d"
  "libpolis_expr.a"
  "libpolis_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
