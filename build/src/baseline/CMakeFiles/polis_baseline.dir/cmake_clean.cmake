file(REMOVE_RECURSE
  "CMakeFiles/polis_baseline.dir/boolnet.cpp.o"
  "CMakeFiles/polis_baseline.dir/boolnet.cpp.o.d"
  "CMakeFiles/polis_baseline.dir/compose.cpp.o"
  "CMakeFiles/polis_baseline.dir/compose.cpp.o.d"
  "CMakeFiles/polis_baseline.dir/multiway.cpp.o"
  "CMakeFiles/polis_baseline.dir/multiway.cpp.o.d"
  "libpolis_baseline.a"
  "libpolis_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
