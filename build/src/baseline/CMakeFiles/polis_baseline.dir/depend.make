# Empty dependencies file for polis_baseline.
# This may be replaced when dependencies are built.
