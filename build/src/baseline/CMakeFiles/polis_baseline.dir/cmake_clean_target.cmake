file(REMOVE_RECURSE
  "libpolis_baseline.a"
)
