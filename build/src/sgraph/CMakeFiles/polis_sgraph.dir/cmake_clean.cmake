file(REMOVE_RECURSE
  "CMakeFiles/polis_sgraph.dir/build.cpp.o"
  "CMakeFiles/polis_sgraph.dir/build.cpp.o.d"
  "CMakeFiles/polis_sgraph.dir/dataflow.cpp.o"
  "CMakeFiles/polis_sgraph.dir/dataflow.cpp.o.d"
  "CMakeFiles/polis_sgraph.dir/eval.cpp.o"
  "CMakeFiles/polis_sgraph.dir/eval.cpp.o.d"
  "CMakeFiles/polis_sgraph.dir/io.cpp.o"
  "CMakeFiles/polis_sgraph.dir/io.cpp.o.d"
  "CMakeFiles/polis_sgraph.dir/optimize.cpp.o"
  "CMakeFiles/polis_sgraph.dir/optimize.cpp.o.d"
  "CMakeFiles/polis_sgraph.dir/sgraph.cpp.o"
  "CMakeFiles/polis_sgraph.dir/sgraph.cpp.o.d"
  "libpolis_sgraph.a"
  "libpolis_sgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_sgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
