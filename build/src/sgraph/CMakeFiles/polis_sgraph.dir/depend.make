# Empty dependencies file for polis_sgraph.
# This may be replaced when dependencies are built.
