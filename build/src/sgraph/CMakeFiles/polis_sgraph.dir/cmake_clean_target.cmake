file(REMOVE_RECURSE
  "libpolis_sgraph.a"
)
