
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgraph/build.cpp" "src/sgraph/CMakeFiles/polis_sgraph.dir/build.cpp.o" "gcc" "src/sgraph/CMakeFiles/polis_sgraph.dir/build.cpp.o.d"
  "/root/repo/src/sgraph/dataflow.cpp" "src/sgraph/CMakeFiles/polis_sgraph.dir/dataflow.cpp.o" "gcc" "src/sgraph/CMakeFiles/polis_sgraph.dir/dataflow.cpp.o.d"
  "/root/repo/src/sgraph/eval.cpp" "src/sgraph/CMakeFiles/polis_sgraph.dir/eval.cpp.o" "gcc" "src/sgraph/CMakeFiles/polis_sgraph.dir/eval.cpp.o.d"
  "/root/repo/src/sgraph/io.cpp" "src/sgraph/CMakeFiles/polis_sgraph.dir/io.cpp.o" "gcc" "src/sgraph/CMakeFiles/polis_sgraph.dir/io.cpp.o.d"
  "/root/repo/src/sgraph/optimize.cpp" "src/sgraph/CMakeFiles/polis_sgraph.dir/optimize.cpp.o" "gcc" "src/sgraph/CMakeFiles/polis_sgraph.dir/optimize.cpp.o.d"
  "/root/repo/src/sgraph/sgraph.cpp" "src/sgraph/CMakeFiles/polis_sgraph.dir/sgraph.cpp.o" "gcc" "src/sgraph/CMakeFiles/polis_sgraph.dir/sgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfsm/CMakeFiles/polis_cfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/polis_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/polis_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/polis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
