# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("expr")
subdirs("bdd")
subdirs("cfsm")
subdirs("frontend")
subdirs("sgraph")
subdirs("vm")
subdirs("estim")
subdirs("codegen")
subdirs("rtos")
subdirs("sched")
subdirs("baseline")
subdirs("core")
