file(REMOVE_RECURSE
  "libpolis_vm.a"
)
