# Empty dependencies file for polis_vm.
# This may be replaced when dependencies are built.
