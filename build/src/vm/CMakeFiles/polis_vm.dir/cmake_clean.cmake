file(REMOVE_RECURSE
  "CMakeFiles/polis_vm.dir/compile.cpp.o"
  "CMakeFiles/polis_vm.dir/compile.cpp.o.d"
  "CMakeFiles/polis_vm.dir/isa.cpp.o"
  "CMakeFiles/polis_vm.dir/isa.cpp.o.d"
  "CMakeFiles/polis_vm.dir/machine.cpp.o"
  "CMakeFiles/polis_vm.dir/machine.cpp.o.d"
  "libpolis_vm.a"
  "libpolis_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
