
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/compile.cpp" "src/vm/CMakeFiles/polis_vm.dir/compile.cpp.o" "gcc" "src/vm/CMakeFiles/polis_vm.dir/compile.cpp.o.d"
  "/root/repo/src/vm/isa.cpp" "src/vm/CMakeFiles/polis_vm.dir/isa.cpp.o" "gcc" "src/vm/CMakeFiles/polis_vm.dir/isa.cpp.o.d"
  "/root/repo/src/vm/machine.cpp" "src/vm/CMakeFiles/polis_vm.dir/machine.cpp.o" "gcc" "src/vm/CMakeFiles/polis_vm.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sgraph/CMakeFiles/polis_sgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/cfsm/CMakeFiles/polis_cfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/polis_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/polis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/polis_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
