# Empty dependencies file for polis_sched.
# This may be replaced when dependencies are built.
