file(REMOVE_RECURSE
  "CMakeFiles/polis_sched.dir/sched.cpp.o"
  "CMakeFiles/polis_sched.dir/sched.cpp.o.d"
  "libpolis_sched.a"
  "libpolis_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
