file(REMOVE_RECURSE
  "libpolis_sched.a"
)
