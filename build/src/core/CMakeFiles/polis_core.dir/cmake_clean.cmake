file(REMOVE_RECURSE
  "CMakeFiles/polis_core.dir/synthesis.cpp.o"
  "CMakeFiles/polis_core.dir/synthesis.cpp.o.d"
  "CMakeFiles/polis_core.dir/systems.cpp.o"
  "CMakeFiles/polis_core.dir/systems.cpp.o.d"
  "libpolis_core.a"
  "libpolis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
