# Empty compiler generated dependencies file for polis_core.
# This may be replaced when dependencies are built.
