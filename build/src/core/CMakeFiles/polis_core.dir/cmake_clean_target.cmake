file(REMOVE_RECURSE
  "libpolis_core.a"
)
