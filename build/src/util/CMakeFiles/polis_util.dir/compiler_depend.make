# Empty compiler generated dependencies file for polis_util.
# This may be replaced when dependencies are built.
