file(REMOVE_RECURSE
  "CMakeFiles/polis_util.dir/rng.cpp.o"
  "CMakeFiles/polis_util.dir/rng.cpp.o.d"
  "CMakeFiles/polis_util.dir/strings.cpp.o"
  "CMakeFiles/polis_util.dir/strings.cpp.o.d"
  "CMakeFiles/polis_util.dir/table.cpp.o"
  "CMakeFiles/polis_util.dir/table.cpp.o.d"
  "libpolis_util.a"
  "libpolis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
