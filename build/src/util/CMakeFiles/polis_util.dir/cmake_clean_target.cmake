file(REMOVE_RECURSE
  "libpolis_util.a"
)
