file(REMOVE_RECURSE
  "CMakeFiles/polis_codegen.dir/c_codegen.cpp.o"
  "CMakeFiles/polis_codegen.dir/c_codegen.cpp.o.d"
  "libpolis_codegen.a"
  "libpolis_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polis_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
