# Empty dependencies file for polis_codegen.
# This may be replaced when dependencies are built.
