file(REMOVE_RECURSE
  "libpolis_codegen.a"
)
