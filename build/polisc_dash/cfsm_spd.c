/* Synthesized reaction routine for instance 'spd' of CFSM 'speedometer'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long spd__last = 0;

void cfsm_spd(void) {
  long spd__last__in = spd__last;
  if (!(polis_detect(SIG_wheel_count))) goto L0;
  if (!(polis_value(SIG_wheel_count) != spd__last__in)) goto L6;
  goto L4;
L6:
  if (!(polis_value(SIG_wheel_count) == spd__last__in)) goto L0;
  polis_consume();
  goto L0;
L4:
  polis_consume();
  polis_emit_value(SIG_speed_pwm, polis_wrap(polis_value(SIG_wheel_count) * 2, 16));
  spd__last = polis_wrap(polis_value(SIG_wheel_count), 8);
L0:
  return;
}
