/* Synthesized reaction routine for instance 'odo' of CFSM 'odometer'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long odo__acc = 0;

void cfsm_odo(void) {
  long odo__acc__in = odo__acc;
  if (!(polis_detect(SIG_wheel_count))) goto L0;
  if (!(odo__acc__in + polis_value(SIG_wheel_count) >= 16)) goto L6;
  goto L4;
L6:
  if (!(odo__acc__in + polis_value(SIG_wheel_count) < 16)) goto L0;
  odo__acc = polis_wrap(odo__acc__in + polis_value(SIG_wheel_count), 16);
  goto L2;
L4:
  polis_emit(SIG_odo_inc);
  odo__acc = polis_wrap(odo__acc__in + polis_value(SIG_wheel_count) - 16, 16);
L2:
  polis_consume();
L0:
  return;
}
