/* Synthesized reaction routine for instance 'blt' of CFSM 'belt'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long blt__st = 0;
static long blt__cnt = 0;

void cfsm_blt(void) {
  long blt__st__in = blt__st;
  long blt__cnt__in = blt__cnt;
  if (!(polis_detect(SIG_key_on))) goto L15;
  goto L4;
L15:
  if (!(blt__st__in == 1)) goto L0;
  if (!(polis_detect(SIG_belt_on))) goto L13;
  goto L5;
L13:
  if (!(polis_detect(SIG_timer))) goto L0;
  if (!(blt__cnt__in < 3)) goto L11;
  goto L7;
L11:
  if (!(blt__cnt__in >= 3)) goto L0;
  polis_consume();
  polis_emit(SIG_alarm);
  blt__st = polis_wrap(2, 3);
  goto L0;
L7:
  polis_consume();
  blt__cnt = polis_wrap(blt__cnt__in + 1, 4);
  goto L0;
L5:
  blt__st = polis_wrap(0, 3);
  goto L2;
L4:
  blt__cnt = polis_wrap(0, 4);
  blt__st = polis_wrap(1, 3);
L2:
  polis_consume();
L0:
  return;
}
