/* polis_rt.h — generated RTOS interface for network 'dash'. */
#ifndef POLIS_RT_H
#define POLIS_RT_H

#define SIG_alarm 0
#define SIG_belt_on 1
#define SIG_engine_count 2
#define SIG_engine_raw 3
#define SIG_key_on 4
#define SIG_odo_inc 5
#define SIG_rpm_pwm 6
#define SIG_speed_pwm 7
#define SIG_timer 8
#define SIG_wheel_clean 9
#define SIG_wheel_count 10
#define SIG_wheel_raw 11

long polis_wrap(long value, long domain);
int  polis_detect(int sig);
void polis_emit(int sig);
void polis_emit_value(int sig, long value);
void polis_consume(void);
long polis_value(int sig);
/* Provided by the environment: called for emissions on nets with
 * no software consumer (the system's external outputs). */
void polis_observe(int sig, long value);

#endif /* POLIS_RT_H */
