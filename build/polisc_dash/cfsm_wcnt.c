/* Synthesized reaction routine for instance 'wcnt' of CFSM 'pulse_counter'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long wcnt__n = 0;

void cfsm_wcnt(void) {
  long wcnt__n__in = wcnt__n;
  if (!(polis_detect(SIG_timer))) goto L6;
  goto L4;
L6:
  if (!(polis_detect(SIG_wheel_clean))) goto L0;
  wcnt__n = polis_wrap(wcnt__n__in + 1, 8);
  goto L2;
L4:
  wcnt__n = polis_wrap(0, 8);
  polis_emit_value(SIG_wheel_count, polis_wrap(wcnt__n__in, 8));
L2:
  polis_consume();
L0:
  return;
}
