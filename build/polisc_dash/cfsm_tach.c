/* Synthesized reaction routine for instance 'tach' of CFSM 'tachometer'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long tach__peak = 0;

void cfsm_tach(void) {
  long tach__peak__in = tach__peak;
  if (!(polis_detect(SIG_engine_count))) goto L0;
  if (!(polis_value(SIG_engine_count) > tach__peak__in)) goto L6;
  goto L4;
L6:
  if (!(polis_value(SIG_engine_count) <= tach__peak__in)) goto L0;
  polis_emit_value(SIG_rpm_pwm, polis_wrap(polis_value(SIG_engine_count) + tach__peak__in, 16));
  goto L2;
L4:
  polis_emit_value(SIG_rpm_pwm, polis_wrap(polis_value(SIG_engine_count) * 2 + 1, 16));
  tach__peak = polis_wrap(polis_value(SIG_engine_count), 8);
L2:
  polis_consume();
L0:
  return;
}
