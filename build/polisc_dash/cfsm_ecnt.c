/* Synthesized reaction routine for instance 'ecnt' of CFSM 'pulse_counter'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long ecnt__n = 0;

void cfsm_ecnt(void) {
  long ecnt__n__in = ecnt__n;
  if (!(polis_detect(SIG_timer))) goto L6;
  goto L4;
L6:
  if (!(polis_detect(SIG_engine_raw))) goto L0;
  ecnt__n = polis_wrap(ecnt__n__in + 1, 8);
  goto L2;
L4:
  ecnt__n = polis_wrap(0, 8);
  polis_emit_value(SIG_engine_count, polis_wrap(ecnt__n__in, 8));
L2:
  polis_consume();
L0:
  return;
}
