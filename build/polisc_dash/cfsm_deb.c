/* Synthesized reaction routine for instance 'deb' of CFSM 'debounce'.
 * Ports are bound to nets; state lives in instance-prefixed globals. Do not edit. */
#include "polis_rt.h"

static long deb__cnt = 0;

void cfsm_deb(void) {
  long deb__cnt__in = deb__cnt;
  if (!(polis_detect(SIG_wheel_raw))) goto L11;
  goto L8;
L11:
  if (!(polis_detect(SIG_timer))) goto L0;
  polis_consume();
  deb__cnt = polis_wrap(0, 4);
  goto L0;
L8:
  if (!(deb__cnt__in < 2)) goto L7;
  goto L3;
L7:
  if (!(deb__cnt__in >= 2)) goto L0;
  polis_consume();
  polis_emit(SIG_wheel_clean);
  deb__cnt = polis_wrap(3, 4);
  goto L0;
L3:
  deb__cnt = polis_wrap(deb__cnt__in + 1, 4);
  polis_consume();
L0:
  return;
}
