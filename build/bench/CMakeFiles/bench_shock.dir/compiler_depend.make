# Empty compiler generated dependencies file for bench_shock.
# This may be replaced when dependencies are built.
