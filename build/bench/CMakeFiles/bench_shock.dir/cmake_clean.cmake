file(REMOVE_RECURSE
  "CMakeFiles/bench_shock.dir/bench_shock.cpp.o"
  "CMakeFiles/bench_shock.dir/bench_shock.cpp.o.d"
  "bench_shock"
  "bench_shock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
