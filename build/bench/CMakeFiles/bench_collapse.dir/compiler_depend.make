# Empty compiler generated dependencies file for bench_collapse.
# This may be replaced when dependencies are built.
