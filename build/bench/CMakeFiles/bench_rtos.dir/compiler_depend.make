# Empty compiler generated dependencies file for bench_rtos.
# This may be replaced when dependencies are built.
