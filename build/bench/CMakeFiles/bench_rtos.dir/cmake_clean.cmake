file(REMOVE_RECURSE
  "CMakeFiles/bench_rtos.dir/bench_rtos.cpp.o"
  "CMakeFiles/bench_rtos.dir/bench_rtos.cpp.o.d"
  "bench_rtos"
  "bench_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
