# Empty compiler generated dependencies file for bench_freeorder.
# This may be replaced when dependencies are built.
