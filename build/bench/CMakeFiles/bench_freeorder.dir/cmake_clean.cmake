file(REMOVE_RECURSE
  "CMakeFiles/bench_freeorder.dir/bench_freeorder.cpp.o"
  "CMakeFiles/bench_freeorder.dir/bench_freeorder.cpp.o.d"
  "bench_freeorder"
  "bench_freeorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freeorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
