# Empty compiler generated dependencies file for bench_copyin.
# This may be replaced when dependencies are built.
