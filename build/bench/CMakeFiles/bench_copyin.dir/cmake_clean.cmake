file(REMOVE_RECURSE
  "CMakeFiles/bench_copyin.dir/bench_copyin.cpp.o"
  "CMakeFiles/bench_copyin.dir/bench_copyin.cpp.o.d"
  "bench_copyin"
  "bench_copyin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_copyin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
