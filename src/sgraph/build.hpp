// Initial s-graph construction from the characteristic function of a CFSM's
// reactive function (§III-B2, Theorem 1), under a chosen variable-ordering
// scheme (§III-B3):
//
//   * kNaive                   — discovery order, all tests before actions;
//   * kSiftOutputsAfterInputs  — sift constrained so all outputs stay below
//                                all inputs (first scheme of Table II);
//   * kSiftOutputsAfterSupport — sift constrained so each output stays below
//                                its own support: the paper's default, better
//                                sharing (second scheme of Table II);
//   * kOutputsBeforeInputs     — all outputs above all inputs: a TEST-free
//                                chain of ASSIGNs labelled with nested-ITE
//                                functions (the ESTEREL-v5-style scheme,
//                                §III-B3c) with identical execution time on
//                                every path;
//   * kCurrent                 — whatever order the manager currently holds.
//
// The construction recursively Shannon-cofactors χ by test variables
// (creating TEST vertices) and extracts assignment functions for action
// variables (creating ASSIGN vertices), memoised so the result is reduced:
// with the outputs-after-support order its structure corresponds exactly to
// the BDD of the reactive function (§III-B3b).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bdd/reorder.hpp"
#include "cfsm/reactive.hpp"
#include "sgraph/sgraph.hpp"

namespace polis::sgraph {

enum class OrderingScheme {
  kNaive,
  kSiftOutputsAfterInputs,
  kSiftOutputsAfterSupport,
  kOutputsBeforeInputs,
  kCurrent,
  /// §VI future work, implemented: an *unordered* decision graph. Instead
  /// of one global variable order, each branch greedily picks the test that
  /// most shrinks its residual function (an FBDD-style construction), and
  /// actions are emitted as soon as they become constant. Canonicity is
  /// lost (less sharing is guaranteed), but paths can be shorter.
  kFreeOrder,
};

const char* to_string(OrderingScheme scheme);

struct BuildOptions {
  /// Restrict χ to the reachable care set before building, removing false
  /// paths (§III-C). Falls back to no restriction if the concrete space is
  /// larger than `care_enum_limit`.
  bool use_care_set = false;
  std::uint64_t care_enum_limit = 1u << 22;
  /// Optional *global* care filter (network-level reachability from
  /// verif::care_filters_by_machine): concrete combinations it rejects are
  /// added to the don't cares. Only consulted when `use_care_set` is set.
  cfsm::CareFilter care_filter;
  /// Sifting passes for the sift-based schemes.
  int sift_passes = 1;
  /// If >0, only the fattest `sift_max_vars` variables are sifted per pass.
  int sift_max_vars = 0;
  /// Optional sink for sift telemetry (swaps, peak arena, per-pass sizes);
  /// filled only by the sift-based schemes.
  bdd::SiftTelemetry* sift_telemetry = nullptr;
  /// Degrade instead of failing when the ambient ResourceGovernor trips
  /// during construction: the care-set restriction falls back to the raw
  /// characteristic function, and a budget hit mid-build garbage-collects
  /// and retries once with the governor suspended, so the build always
  /// completes (from whatever variable order is current). Cancellation
  /// still propagates — it is a request to stop, not to degrade. When
  /// false, governor errors propagate.
  bool degrade_on_budget = false;
};

/// Builds the s-graph for `rf` under `scheme`. Sift-based schemes reorder
/// rf's manager in place (the manager must contain only rf's variables).
Sgraph build_sgraph(cfsm::ReactiveFunction& rf, OrderingScheme scheme,
                    const BuildOptions& options = {});

/// Builds under an explicit total order of rf's BDD variables (top first).
Sgraph build_sgraph_with_order(cfsm::ReactiveFunction& rf,
                               const std::vector<int>& order,
                               const BuildOptions& options = {});

/// Executes one reaction through the s-graph (procedure `evaluate`, §III-A)
/// and decodes the executed actions against the machine's interface. This is
/// the reference path used to prove Theorem 1 behaviourally in the tests.
cfsm::Reaction run_reaction(const Sgraph& graph, const cfsm::Cfsm& machine,
                            const cfsm::Snapshot& snapshot,
                            const std::map<std::string, std::int64_t>& state);

}  // namespace polis::sgraph
