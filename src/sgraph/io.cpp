#include "sgraph/io.hpp"

#include <ostream>

#include "expr/expr.hpp"

namespace polis::sgraph {

void to_dot(const Sgraph& graph, std::ostream& os) {
  os << "digraph sgraph {\n  rankdir=TB;\n";
  for (NodeId id : graph.topo_order()) {
    const Node& n = graph.node(id);
    switch (n.kind) {
      case Kind::kBegin:
        os << "  n" << id << " [label=\"BEGIN\", shape=circle];\n";
        os << "  n" << id << " -> n" << n.next << ";\n";
        break;
      case Kind::kEnd:
        os << "  n" << id << " [label=\"END\", shape=doublecircle];\n";
        break;
      case Kind::kTest:
        os << "  n" << id << " [label=\"" << expr::to_c(*n.predicate)
           << "\", shape=diamond];\n";
        os << "  n" << id << " -> n" << n.when_true << " [label=\"1\"];\n";
        os << "  n" << id << " -> n" << n.when_false
           << " [label=\"0\", style=dashed];\n";
        break;
      case Kind::kAssign:
        os << "  n" << id << " [label=\"" << n.action.label();
        if (n.condition != nullptr)
          os << " if " << expr::to_c(*n.condition);
        os << "\", shape=box];\n";
        os << "  n" << id << " -> n" << n.next << ";\n";
        break;
    }
  }
  os << "}\n";
}

void to_text(const Sgraph& graph, std::ostream& os) {
  os << "s-graph " << graph.name() << " (" << graph.num_reachable()
     << " vertices, depth " << graph.depth() << ")\n";
  for (NodeId id : graph.topo_order()) {
    const Node& n = graph.node(id);
    os << "  [" << id << "] ";
    switch (n.kind) {
      case Kind::kBegin:
        os << "BEGIN -> " << n.next;
        break;
      case Kind::kEnd:
        os << "END";
        break;
      case Kind::kTest:
        os << "TEST " << expr::to_c(*n.predicate) << " ? " << n.when_true
           << " : " << n.when_false;
        break;
      case Kind::kAssign:
        os << "ASSIGN " << n.action.label();
        if (n.condition != nullptr)
          os << " if " << expr::to_c(*n.condition);
        os << " -> " << n.next;
        break;
    }
    os << "\n";
  }
}

}  // namespace polis::sgraph
