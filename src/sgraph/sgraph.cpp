#include "sgraph/sgraph.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace polis::sgraph {

std::string ActionOp::label() const {
  switch (kind) {
    case Kind::kEmitPure: return "emit(" + target + ")";
    case Kind::kEmitValued:
      return "emit(" + target + ", " + expr::to_c(*value) + ")";
    case Kind::kAssignVar: return target + " := " + expr::to_c(*value);
    case Kind::kConsume: return "consume";
  }
  return "?";
}

bool ActionOp::operator==(const ActionOp& o) const {
  if (kind != o.kind || target != o.target) return false;
  if ((value == nullptr) != (o.value == nullptr)) return false;
  return value == nullptr || expr::equal(*value, *o.value);
}

namespace {

size_t mix(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

size_t hash_action(const ActionOp& a) {
  size_t h = std::hash<int>()(static_cast<int>(a.kind));
  h = mix(h, std::hash<std::string>()(a.target));
  if (a.value != nullptr) h = mix(h, expr::hash(*a.value));
  return h;
}

}  // namespace

Sgraph::Sgraph(std::string name) : name_(std::move(name)) {
  nodes_.resize(2);
  nodes_[kEndId].kind = Kind::kEnd;
  nodes_[kBeginId].kind = Kind::kBegin;
  nodes_[kBeginId].next = kEndId;
}

NodeId Sgraph::test(expr::ExprRef predicate, bool presence_test,
                    NodeId when_true, NodeId when_false) {
  POLIS_CHECK(predicate != nullptr);
  POLIS_CHECK(when_true < nodes_.size() && when_false < nodes_.size());
  if (when_true == when_false) return when_true;  // vacuous decision

  size_t key = mix(expr::hash(*predicate),
                   mix(std::hash<NodeId>()(when_true),
                       std::hash<NodeId>()(when_false) * 3));
  auto [lo, hi] = test_intern_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    const Node& n = nodes_[it->second];
    if (n.when_true == when_true && n.when_false == when_false &&
        n.presence_test == presence_test && expr::equal(*n.predicate, *predicate))
      return it->second;
  }
  Node n;
  n.kind = Kind::kTest;
  n.predicate = std::move(predicate);
  n.presence_test = presence_test;
  n.when_true = when_true;
  n.when_false = when_false;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  test_intern_.emplace(key, id);
  return id;
}

NodeId Sgraph::assign(ActionOp action, expr::ExprRef condition, NodeId next) {
  POLIS_CHECK(next < nodes_.size());
  if (condition != nullptr && condition->op() == expr::Op::kConst) {
    if (condition->value() == 0) return next;  // never executes
    condition = nullptr;                       // always executes
  }

  size_t key = mix(hash_action(action),
                   mix(condition == nullptr ? 0 : expr::hash(*condition),
                       std::hash<NodeId>()(next)));
  auto [lo, hi] = assign_intern_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    const Node& n = nodes_[it->second];
    const bool cond_match =
        (n.condition == nullptr) == (condition == nullptr) &&
        (n.condition == nullptr || expr::equal(*n.condition, *condition));
    if (n.next == next && cond_match && n.action == action) return it->second;
  }
  Node n;
  n.kind = Kind::kAssign;
  n.action = std::move(action);
  n.condition = std::move(condition);
  n.next = next;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  assign_intern_.emplace(key, id);
  return id;
}

void Sgraph::set_entry(NodeId entry) {
  POLIS_CHECK(entry < nodes_.size());
  nodes_[kBeginId].next = entry;
}

size_t Sgraph::num_tests() const {
  size_t n = 0;
  for (NodeId id : topo_order())
    if (nodes_[id].kind == Kind::kTest) ++n;
  return n;
}

size_t Sgraph::num_assigns() const {
  size_t n = 0;
  for (NodeId id : topo_order())
    if (nodes_[id].kind == Kind::kAssign) ++n;
  return n;
}

std::vector<NodeId> Sgraph::children(NodeId id) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case Kind::kBegin:
    case Kind::kAssign: return {n.next};
    case Kind::kTest: return {n.when_true, n.when_false};
    case Kind::kEnd: return {};
  }
  return {};
}

std::vector<NodeId> Sgraph::topo_order() const {
  // DFS post-order reversed = topological (parents first).
  std::vector<NodeId> order;
  std::vector<char> state(nodes_.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::pair<NodeId, size_t>> stack{{kBeginId, 0}};
  state[kBeginId] = 1;
  while (!stack.empty()) {
    auto& [id, child_idx] = stack.back();
    const std::vector<NodeId> kids = children(id);
    if (child_idx < kids.size()) {
      const NodeId k = kids[child_idx++];
      if (state[k] == 0) {
        state[k] = 1;
        stack.emplace_back(k, 0);
      } else {
        POLIS_CHECK_MSG(state[k] == 2, "cycle in s-graph");
      }
    } else {
      state[id] = 2;
      order.push_back(id);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

int Sgraph::depth() const {
  const std::vector<NodeId> order = topo_order();
  std::vector<int> dist(nodes_.size(), -1);
  dist[kBeginId] = 0;
  int best = 0;
  for (NodeId id : order) {
    if (dist[id] < 0) continue;
    for (NodeId k : children(id)) {
      dist[k] = std::max(dist[k], dist[id] + 1);
      best = std::max(best, dist[k]);
    }
  }
  return best;
}

std::vector<std::string> Sgraph::must_execute_actions() const {
  // Bottom-up over the DAG: the set of unconditional action labels executed
  // on every path from a vertex to END.
  const std::vector<NodeId> order = topo_order();
  std::vector<std::set<std::string>> must(nodes_.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    const Node& n = nodes_[id];
    switch (n.kind) {
      case Kind::kEnd: break;
      case Kind::kBegin: must[id] = must[n.next]; break;
      case Kind::kAssign:
        must[id] = must[n.next];
        if (n.condition == nullptr) must[id].insert(n.action.label());
        break;
      case Kind::kTest: {
        const std::set<std::string>& a = must[n.when_true];
        const std::set<std::string>& b = must[n.when_false];
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::inserter(must[id], must[id].begin()));
        break;
      }
    }
  }
  return std::vector<std::string>(must[kBeginId].begin(), must[kBeginId].end());
}

}  // namespace polis::sgraph
