#include "sgraph/optimize.hpp"

#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace polis::sgraph {

Sgraph collapse_tests(const Sgraph& graph) {
  OBS_SPAN(span, "sgraph.collapse_tests", "sgraph");
  if (span.armed()) {
    span.arg("machine", graph.name());
    span.arg("nodes_before", graph.num_nodes());
  }
  // Parent counts decide closedness: a TEST child may be absorbed only when
  // the absorbing vertex is its sole parent.
  std::vector<int> parents(graph.num_nodes(), 0);
  for (NodeId id : graph.topo_order())
    for (NodeId k : graph.children(id)) parents[k]++;

  Sgraph out(graph.name());
  std::unordered_map<NodeId, NodeId> memo;

  auto rebuild = [&](NodeId id, auto&& self) -> NodeId {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const Node& n = graph.node(id);
    NodeId result = out.end();
    switch (n.kind) {
      case Kind::kEnd:
        result = out.end();
        break;
      case Kind::kBegin:
        result = self(n.next, self);
        break;
      case Kind::kAssign:
        result = out.assign(n.action, n.condition, self(n.next, self));
        break;
      case Kind::kTest: {
        expr::ExprRef p = n.predicate;
        bool presence = n.presence_test;
        NodeId t = n.when_true;
        NodeId f = n.when_false;
        bool changed = true;
        while (changed) {
          changed = false;
          const Node& tn = graph.node(t);
          if (tn.kind == Kind::kTest && parents[t] == 1 &&
              tn.when_false == f) {
            p = expr::land(p, tn.predicate);
            t = tn.when_true;
            presence = false;
            changed = true;
            continue;
          }
          const Node& fn = graph.node(f);
          if (fn.kind == Kind::kTest && parents[f] == 1 &&
              fn.when_true == t) {
            p = expr::lor(p, fn.predicate);
            f = fn.when_false;
            presence = false;
            changed = true;
          }
        }
        result = out.test(p, presence, self(t, self), self(f, self));
        break;
      }
    }
    memo.emplace(id, result);
    return result;
  };

  out.set_entry(rebuild(graph.node(graph.begin()).next, rebuild));
  if (span.armed()) span.arg("nodes_after", out.num_nodes());
  return out;
}

}  // namespace polis::sgraph
