#include "sgraph/eval.hpp"

#include "util/check.hpp"

namespace polis::sgraph {

EvalResult evaluate(const Sgraph& graph, const expr::Env& env) {
  EvalResult result;
  NodeId id = graph.begin();
  while (true) {
    const Node& n = graph.node(id);
    result.vertices_visited++;
    switch (n.kind) {
      case Kind::kEnd:
        return result;
      case Kind::kBegin:
        id = n.next;
        break;
      case Kind::kTest:
        result.tests_evaluated++;
        id = expr::evaluate(*n.predicate, env) != 0 ? n.when_true
                                                    : n.when_false;
        break;
      case Kind::kAssign: {
        const bool fire =
            n.condition == nullptr || expr::evaluate(*n.condition, env) != 0;
        if (fire) result.executed.push_back(n.action);
        id = n.next;
        break;
      }
    }
  }
}

}  // namespace polis::sgraph
