#include "sgraph/build.hpp"

#include <set>
#include <unordered_map>

#include "bdd/io.hpp"
#include "bdd/reorder.hpp"
#include "obs/obs.hpp"
#include "sgraph/eval.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"

namespace polis::sgraph {

const char* to_string(OrderingScheme scheme) {
  switch (scheme) {
    case OrderingScheme::kNaive: return "naive";
    case OrderingScheme::kSiftOutputsAfterInputs: return "sift-out-after-in";
    case OrderingScheme::kSiftOutputsAfterSupport:
      return "sift-out-after-support";
    case OrderingScheme::kOutputsBeforeInputs: return "out-before-in";
    case OrderingScheme::kCurrent: return "current";
    case OrderingScheme::kFreeOrder: return "free-order";
  }
  return "?";
}

namespace {

ActionOp to_action_op(const cfsm::ReactiveFunction& rf,
                      const cfsm::ActionVariable& av) {
  ActionOp op;
  switch (av.kind) {
    case cfsm::ActionVariable::Kind::kConsume:
      op.kind = ActionOp::Kind::kConsume;
      break;
    case cfsm::ActionVariable::Kind::kAssignState:
      op.kind = ActionOp::Kind::kAssignVar;
      op.target = av.target;
      op.value = av.value;
      break;
    case cfsm::ActionVariable::Kind::kEmit: {
      const cfsm::Signal* sig = rf.machine().find_output(av.target);
      POLIS_CHECK(sig != nullptr);
      op.kind = sig->is_pure() ? ActionOp::Kind::kEmitPure
                               : ActionOp::Kind::kEmitValued;
      op.target = av.target;
      op.value = av.value;
      break;
    }
  }
  return op;
}

class Builder {
 public:
  Builder(cfsm::ReactiveFunction& rf, const std::vector<int>& order)
      : rf_(rf), mgr_(rf.manager()), order_(order),
        graph_(rf.machine().name()) {
    for (const cfsm::ActionVariable& a : rf.actions())
      other_actions_of_[a.bdd_var] = [&] {
        std::vector<int> others;
        for (const cfsm::ActionVariable& b : rf.actions())
          if (b.bdd_var != a.bdd_var) others.push_back(b.bdd_var);
        return others;
      }();
  }

  Sgraph run(const bdd::Bdd& chi) {
    graph_.set_entry(rec(0, chi));
    return std::move(graph_);
  }

 private:
  // The recursive `build` of §III-B2, memoised on (level, χ-cofactor) so the
  // result is reduced exactly like the underlying BDD.
  NodeId rec(size_t level, const bdd::Bdd& f) {
    ResourceGovernor::poll_current();
    if (level == order_.size()) return graph_.end();
    if (f.is_zero()) return graph_.end();  // unconstrained: nothing to do

    const std::uint64_t key =
        (static_cast<std::uint64_t>(level) << 32) | f.raw_index();
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    live_.push_back(f);  // keep cofactors alive so raw indices stay meaningful

    const int v = order_[level];
    NodeId result;
    if (rf_.is_test_var(v)) {
      const bdd::Bdd f1 = mgr_.cofactor(f, v, true);
      const bdd::Bdd f0 = mgr_.cofactor(f, v, false);
      if (f1 == f0) {
        result = rec(level + 1, f1);  // f does not depend on this test
      } else {
        const cfsm::TestVariable& t = rf_.test_of(v);
        const NodeId when_true = rec(level + 1, f1);
        const NodeId when_false = rec(level + 1, f0);
        result = graph_.test(t.predicate, t.is_presence, when_true, when_false);
      }
    } else {
      // Action variable z. Over the remaining variables, z may be 0 exactly
      // where a0 holds and may be 1 exactly where a1 holds (§III-B2's
      // flexibility conditions). We pick the assignment function a = ¬a0:
      // 1 wherever z is forced to 1 (or the input combination is
      // unreachable), 0 wherever "no action" is allowed — the cheapest
      // completion of the don't cares.
      const bdd::Bdd f1 = mgr_.cofactor(f, v, true);
      const bdd::Bdd f0 = mgr_.cofactor(f, v, false);
      if (f1 == f0) {
        result = rec(level + 1, f1);  // pure don't care: no assignment
      } else {
        const std::vector<int>& others = other_actions_of_.at(v);
        const bdd::Bdd smoothed = mgr_.smooth(f, others);
        const bdd::Bdd a0 = mgr_.cofactor(smoothed, v, false);
        const bdd::Bdd a = !a0;
        // Continuation: χ with z resolved to a(x).
        const bdd::Bdd fnext = (f1 & a) | (f0 & !a);
        const NodeId next = rec(level + 1, fnext);
        const ActionOp op = to_action_op(rf_, rf_.action_of(v));
        if (a.is_one()) {
          result = graph_.assign(op, nullptr, next);
        } else if (a.is_zero()) {
          result = next;
        } else {
          const expr::ExprRef cond = bdd::to_expr(a, [this](int var) {
            return rf_.test_of(var).predicate;
          });
          result = graph_.assign(op, cond, next);
        }
      }
    }
    memo_.emplace(key, result);
    return result;
  }

  cfsm::ReactiveFunction& rf_;
  bdd::BddManager& mgr_;
  const std::vector<int>& order_;
  Sgraph graph_;
  std::unordered_map<std::uint64_t, NodeId> memo_;
  std::unordered_map<int, std::vector<int>> other_actions_of_;
  std::vector<bdd::Bdd> live_;
};

// The free-order ("unordered decision diagram", §VI) builder: no global
// variable order. At each vertex, every action variable whose value has
// become constant is emitted immediately and removed from χ; then the test
// variable whose Shannon split minimises the residual BDD sizes is chosen
// locally for that branch.
class FreeOrderBuilder {
 public:
  FreeOrderBuilder(cfsm::ReactiveFunction& rf)
      : rf_(rf), mgr_(rf.manager()), graph_(rf.machine().name()) {}

  Sgraph run(const bdd::Bdd& chi) {
    graph_.set_entry(rec(chi));
    return std::move(graph_);
  }

 private:
  NodeId rec(const bdd::Bdd& f_in) {
    ResourceGovernor::poll_current();
    auto it = memo_.find(f_in.raw_index());
    if (it != memo_.end()) return it->second;
    live_.push_back(f_in);

    bdd::Bdd f = f_in;
    // Phase 1: emit every action whose value is already forced, until the
    // set stabilises (emitting one action can force another).
    std::vector<ActionOp> emitted;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const cfsm::ActionVariable& av : rf_.actions()) {
        const bdd::Bdd f1 = mgr_.cofactor(f, av.bdd_var, true);
        const bdd::Bdd f0 = mgr_.cofactor(f, av.bdd_var, false);
        if (f1 == f0) continue;  // not (or no longer) constrained
        std::vector<int> others;
        for (const cfsm::ActionVariable& b : rf_.actions())
          if (b.bdd_var != av.bdd_var) others.push_back(b.bdd_var);
        const bdd::Bdd a0 =
            mgr_.cofactor(mgr_.smooth(f, others), av.bdd_var, false);
        const bdd::Bdd a = !a0;
        if (a.is_one()) {
          emitted.push_back(to_action_op(rf_, av));
          f = f1;
          changed = true;
        } else if (a.is_zero()) {
          f = f0;
          changed = true;
        }
        // Non-constant: decided further down, after more tests.
      }
    }

    // Phase 2: pick the locally best remaining test variable.
    int best_var = -1;
    size_t best_score = 0;
    bdd::Bdd best_f1;
    bdd::Bdd best_f0;
    for (int v : mgr_.support(f)) {
      if (!rf_.is_test_var(v)) continue;
      const bdd::Bdd f1 = mgr_.cofactor(f, v, true);
      const bdd::Bdd f0 = mgr_.cofactor(f, v, false);
      const size_t score =
          mgr_.node_count(f1) + mgr_.node_count(f0);
      if (best_var < 0 || score < best_score ||
          (score == best_score && v < best_var)) {
        best_var = v;
        best_score = score;
        best_f1 = f1;
        best_f0 = f0;
      }
    }

    NodeId tail;
    if (best_var < 0) {
      // No test left: all actions were resolved in phase 1.
      tail = graph_.end();
    } else {
      const cfsm::TestVariable& t = rf_.test_of(best_var);
      const NodeId when_true = rec(best_f1);
      const NodeId when_false = rec(best_f0);
      tail = graph_.test(t.predicate, t.is_presence, when_true, when_false);
    }
    for (auto op = emitted.rbegin(); op != emitted.rend(); ++op)
      tail = graph_.assign(*op, nullptr, tail);

    memo_.emplace(f_in.raw_index(), tail);
    return tail;
  }

  cfsm::ReactiveFunction& rf_;
  bdd::BddManager& mgr_;
  Sgraph graph_;
  std::unordered_map<std::uint32_t, NodeId> memo_;
  std::vector<bdd::Bdd> live_;
};

bdd::Bdd restricted_chi(cfsm::ReactiveFunction& rf,
                        const BuildOptions& options) {
  bdd::Bdd chi = rf.chi();
  if (!options.use_care_set) return chi;
  try {
    if (auto care = rf.reachable_care_set(options.care_enum_limit,
                                          options.care_filter);
        care && !care->is_zero()) {
      // Coudert–Madre restrict: minimise χ using the unreachable test
      // valuations (false paths, §III-C) as don't cares.
      chi = rf.manager().restrict(chi, *care);
    }
  } catch (const BudgetExceeded&) {
    // The restriction is an optimisation: dropping it only costs code size.
    if (!options.degrade_on_budget) throw;
    if (ResourceGovernor* gov = ResourceGovernor::current())
      gov->note_degradation("care-set restriction over budget; raw chi");
  }
  return chi;
}

/// Runs `fn` (a complete s-graph construction) under the degradation ladder:
/// a budget trip discards the partial build (releasing its cofactor roots),
/// garbage-collects, and retries once with the governor suspended so the
/// build is guaranteed to complete. Deterministic for node/byte budgets: the
/// retry starts from the same χ and order. Cancelled is not caught.
template <typename Fn>
Sgraph build_degradable(bdd::BddManager& mgr, bool degrade, Fn&& fn) {
  if (!degrade) return fn();
  try {
    return fn();
  } catch (const BudgetExceeded&) {
    if (ResourceGovernor* gov = ResourceGovernor::current())
      gov->note_degradation("s-graph build over budget; ungoverned retry");
    ResourceGovernor::Suspend suspend;
    mgr.garbage_collect();
    return fn();
  }
}

}  // namespace

Sgraph build_sgraph_with_order(cfsm::ReactiveFunction& rf,
                               const std::vector<int>& order,
                               const BuildOptions& options) {
  // The order must cover every test and action variable exactly once.
  POLIS_CHECK_MSG(order.size() == rf.tests().size() + rf.actions().size(),
                  "order must cover all test and action variables");
  std::set<int> seen;
  for (int v : order) {
    POLIS_CHECK_MSG(rf.is_test_var(v) || rf.is_action_var(v),
                    "variable " << v << " is not part of this CFSM");
    POLIS_CHECK_MSG(seen.insert(v).second, "duplicate variable " << v);
  }
  return build_degradable(rf.manager(), options.degrade_on_budget, [&] {
    const bdd::Bdd chi = restricted_chi(rf, options);
    Builder builder(rf, order);
    return builder.run(chi);
  });
}

Sgraph build_sgraph(cfsm::ReactiveFunction& rf, OrderingScheme scheme,
                    const BuildOptions& options) {
  OBS_SPAN(span, "sgraph.build", "sgraph");
  if (span.armed()) {
    span.arg("machine", rf.machine().name());
    span.arg("scheme", to_string(scheme));
  }
  // One sample per built graph: the size distribution across machines.
  const auto publish = [&](const Sgraph& g) {
    static const auto nodes_hist =
        obs::MetricsRegistry::global().histogram("sgraph.nodes");
    obs::MetricsRegistry::global().observe(nodes_hist, g.num_nodes());
    if (span.armed()) span.arg("nodes", g.num_nodes());
  };

  bdd::BddManager& mgr = rf.manager();
  std::vector<int> order;

  if (scheme == OrderingScheme::kFreeOrder) {
    Sgraph graph =
        build_degradable(mgr, options.degrade_on_budget, [&] {
          const bdd::Bdd chi = restricted_chi(rf, options);
          FreeOrderBuilder builder(rf);
          return builder.run(chi);
        });
    publish(graph);
    return graph;
  }

  switch (scheme) {
    case OrderingScheme::kNaive: {
      for (const cfsm::TestVariable& t : rf.tests())
        order.push_back(t.bdd_var);
      for (const cfsm::ActionVariable& a : rf.actions())
        order.push_back(a.bdd_var);
      break;
    }
    case OrderingScheme::kOutputsBeforeInputs: {
      for (const cfsm::ActionVariable& a : rf.actions())
        order.push_back(a.bdd_var);
      for (const cfsm::TestVariable& t : rf.tests())
        order.push_back(t.bdd_var);
      break;
    }
    case OrderingScheme::kCurrent: {
      order = mgr.current_order();
      break;
    }
    case OrderingScheme::kFreeOrder:
      break;  // handled above
    case OrderingScheme::kSiftOutputsAfterInputs:
    case OrderingScheme::kSiftOutputsAfterSupport: {
      POLIS_CHECK_MSG(
          mgr.num_vars() ==
              static_cast<int>(rf.tests().size() + rf.actions().size()),
          "sift-based schemes need a manager dedicated to this CFSM");
      // Start from the naive order (legal for both constraint sets).
      std::vector<int> start;
      for (const cfsm::TestVariable& t : rf.tests())
        start.push_back(t.bdd_var);
      for (const cfsm::ActionVariable& a : rf.actions())
        start.push_back(a.bdd_var);
      mgr.set_order(start);
      // The ordering step is an optimisation: support-precedence extraction
      // (smooth/cofactor of χ) and sifting both allocate nodes and can trip
      // the budget. In degrade mode keep whatever order exists at the trip —
      // the naive start, or the best order a partially-run sift settled on.
      try {
        const auto precedence =
            scheme == OrderingScheme::kSiftOutputsAfterInputs
                ? rf.precedence_outputs_after_all_inputs()
                : rf.precedence_outputs_after_support();
        bdd::SiftOptions sift_options;
        sift_options.passes = options.sift_passes;
        sift_options.max_vars = options.sift_max_vars;
        sift_options.telemetry = options.sift_telemetry;
        bdd::sift(mgr, precedence, sift_options);
      } catch (const BudgetExceeded&) {
        if (!options.degrade_on_budget) throw;
        if (ResourceGovernor* gov = ResourceGovernor::current())
          gov->note_degradation("sift ordering over budget; current order kept");
      }
      order = mgr.current_order();
      break;
    }
  }
  Sgraph graph = build_sgraph_with_order(rf, order, options);
  publish(graph);
  return graph;
}

cfsm::Reaction run_reaction(const Sgraph& graph, const cfsm::Cfsm& machine,
                            const cfsm::Snapshot& snapshot,
                            const std::map<std::string, std::int64_t>& state) {
  const expr::Env env = [&](const std::string& name) -> std::int64_t {
    for (const cfsm::Signal& s : machine.inputs()) {
      if (name == cfsm::presence_name(s.name))
        return snapshot.is_present(s.name);
      if (!s.is_pure() && name == cfsm::value_name(s.name))
        return snapshot.value_of(s.name);
    }
    auto it = state.find(name);
    POLIS_CHECK_MSG(it != state.end(),
                    machine.name() << ": unbound variable " << name);
    return it->second;
  };

  const EvalResult eval = evaluate(graph, env);
  cfsm::Reaction out;
  out.next_state = state;
  for (const ActionOp& op : eval.executed) {
    switch (op.kind) {
      case ActionOp::Kind::kConsume:
        out.fired = true;
        break;
      case ActionOp::Kind::kEmitPure:
        out.emissions.emplace_back(op.target, 0);
        break;
      case ActionOp::Kind::kEmitValued: {
        const cfsm::Signal* sig = machine.find_output(op.target);
        POLIS_CHECK(sig != nullptr);
        out.emissions.emplace_back(
            op.target,
            cfsm::wrap_to_domain(expr::evaluate(*op.value, env), sig->domain));
        break;
      }
      case ActionOp::Kind::kAssignVar: {
        const cfsm::StateVar* sv = machine.find_state(op.target);
        POLIS_CHECK(sv != nullptr);
        out.next_state[op.target] =
            cfsm::wrap_to_domain(expr::evaluate(*op.value, env), sv->domain);
        break;
      }
    }
  }
  return out;
}

}  // namespace polis::sgraph
