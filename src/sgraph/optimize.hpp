// Optimization by collapsing TEST nodes (§III-B3d).
//
// A closed subgraph of TEST vertices (every incoming edge from one parent)
// can be replaced by a single TEST labelled with a compound predicate.
// We implement the two binary-TEST closed shapes:
//
//     TEST p ─T→ TEST q ─T→ a            TEST (p && q) ─T→ a
//        │F        │F           ==>           │F
//        └────→────┴──→ b                     └──→ b
//
// and the dual OR shape on the false branch. The paper reports that this
// never improved final code (§III-B3d) — bench/bench_collapse reproduces
// that negative result under our cost model.
#pragma once

#include "sgraph/sgraph.hpp"

namespace polis::sgraph {

/// Returns a new s-graph with maximal AND/OR chains of closed TEST vertices
/// collapsed into single compound TESTs.
Sgraph collapse_tests(const Sgraph& graph);

}  // namespace polis::sgraph
