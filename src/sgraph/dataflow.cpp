#include "sgraph/dataflow.hpp"

#include <map>
#include <vector>

#include "expr/expr.hpp"

namespace polis::sgraph {

std::set<std::string> vars_read_at(const Node& node) {
  std::set<std::string> reads;
  auto collect = [&reads](const expr::ExprRef& e) {
    if (e == nullptr) return;
    for (const std::string& v : expr::support(*e)) reads.insert(v);
  };
  switch (node.kind) {
    case Kind::kTest:
      collect(node.predicate);
      break;
    case Kind::kAssign:
      collect(node.condition);
      collect(node.action.value);
      break;
    case Kind::kBegin:
    case Kind::kEnd:
      break;
  }
  return reads;
}

std::string var_written_at(const Node& node) {
  if (node.kind == Kind::kAssign &&
      node.action.kind == ActionOp::Kind::kAssignVar)
    return node.action.target;
  return {};
}

std::set<std::string> vars_needing_copy_in(
    const Sgraph& graph, const std::set<std::string>& candidates) {
  // reads_below[n] = variables read at any vertex strictly reachable from n
  // (excluding n itself). Computed bottom-up over the DAG.
  const std::vector<NodeId> order = graph.topo_order();
  std::map<NodeId, std::set<std::string>> reads_below;

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    std::set<std::string>& below = reads_below[id];
    for (NodeId child : graph.children(id)) {
      const std::set<std::string> child_reads = vars_read_at(graph.node(child));
      below.insert(child_reads.begin(), child_reads.end());
      const std::set<std::string>& grand = reads_below[child];
      below.insert(grand.begin(), grand.end());
    }
  }

  std::set<std::string> hazards;
  for (NodeId id : order) {
    const std::string written = var_written_at(graph.node(id));
    if (written.empty() || candidates.count(written) == 0) continue;
    if (reads_below[id].count(written) != 0) hazards.insert(written);
  }
  return hazards;
}

}  // namespace polis::sgraph
