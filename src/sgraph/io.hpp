// Inspection output for s-graphs: Graphviz dot and a compact text listing
// (one line per vertex, in topological order), used by the examples and for
// debugging synthesis results.
#pragma once

#include <iosfwd>

#include "sgraph/sgraph.hpp"

namespace polis::sgraph {

void to_dot(const Sgraph& graph, std::ostream& os);
void to_text(const Sgraph& graph, std::ostream& os);

}  // namespace polis::sgraph
