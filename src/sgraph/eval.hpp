// Interpretation of an s-graph: the paper's procedures `evaluate` and
// `eval_step` (§III-A). All input temporaries (presence flags, event values,
// state variables) are supplied through the environment, mirroring the
// copy-in that the generated routine performs on entry.
#pragma once

#include <vector>

#include "expr/expr.hpp"
#include "sgraph/sgraph.hpp"

namespace polis::sgraph {

struct EvalResult {
  /// Actions executed, in visit order (conditional ASSIGNs whose condition
  /// evaluated false are not included).
  std::vector<ActionOp> executed;
  int vertices_visited = 0;
  int tests_evaluated = 0;
};

/// Walks BEGIN→END once, evaluating TEST predicates and ASSIGN conditions
/// under `env`.
EvalResult evaluate(const Sgraph& graph, const expr::Env& env);

}  // namespace polis::sgraph
