// The s-graph ("software graph", §III-A, Definition 1): a single-source,
// single-sink DAG with BEGIN, END, TEST and ASSIGN vertices, used as the
// intermediate representation between a CFSM transition function and the
// generated C / assembly code.
//
// TEST vertices carry a concrete predicate (a presence-flag check — which
// becomes an RTOS call — or a data predicate). ASSIGN vertices carry an
// action (event emission, state-variable assignment, or the implicit
// "consume" notification to the RTOS), optionally guarded by a condition
// expression: `z := f(x...)` with non-constant f (ordering schemes ii/iii of
// §III-B3) is realised as "execute the action iff f evaluates to 1".
//
// The graph is hash-consed at construction ("reduce" of §III-B2): two
// requests for structurally identical vertices return the same vertex, so no
// isomorphic subgraphs exist — mirroring BDD reduction.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.hpp"

namespace polis::sgraph {

using NodeId = std::uint32_t;

enum class Kind { kBegin, kEnd, kTest, kAssign };

/// The concrete effect of an ASSIGN vertex.
struct ActionOp {
  enum class Kind { kEmitPure, kEmitValued, kAssignVar, kConsume };
  Kind kind = Kind::kConsume;
  std::string target;       // signal / state variable ("" for kConsume)
  expr::ExprRef value;      // emission value or assigned expression

  std::string label() const;
  bool operator==(const ActionOp& o) const;
};

struct Node {
  Kind kind = Kind::kEnd;
  // TEST
  expr::ExprRef predicate;       // non-null iff kTest
  bool presence_test = false;    // presence-flag test => RTOS call
  NodeId when_true = 0;
  NodeId when_false = 0;
  // BEGIN / ASSIGN
  NodeId next = 0;
  // ASSIGN
  ActionOp action;
  expr::ExprRef condition;       // null => unconditional
};

class Sgraph {
 public:
  explicit Sgraph(std::string name);

  const std::string& name() const { return name_; }
  NodeId begin() const { return kBeginId; }
  NodeId end() const { return kEndId; }

  /// Interned TEST vertex. Returns `when_true` directly when both branches
  /// coincide (no decision left to make).
  NodeId test(expr::ExprRef predicate, bool presence_test, NodeId when_true,
              NodeId when_false);

  /// Interned ASSIGN vertex. A constant-false condition collapses to `next`;
  /// a constant-true condition becomes unconditional.
  NodeId assign(ActionOp action, expr::ExprRef condition, NodeId next);

  /// Sets the BEGIN vertex's successor (the graph entry).
  void set_entry(NodeId entry);
  NodeId entry() const { return nodes_[kBeginId].next; }

  const Node& node(NodeId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_tests() const;
  size_t num_assigns() const;

  /// Vertices reachable from BEGIN, parents before children (BEGIN first).
  std::vector<NodeId> topo_order() const;
  /// Number of reachable vertices (interning may have created orphans).
  size_t num_reachable() const { return topo_order().size(); }

  /// Longest path length in edges from BEGIN to END.
  int depth() const;

  /// Successors of a vertex (1 for BEGIN/ASSIGN, 2 for TEST, 0 for END).
  std::vector<NodeId> children(NodeId id) const;

  /// Actions guaranteed to execute unconditionally on *every* BEGIN→END
  /// path, as labels — the "must-assign" analysis behind the functionality
  /// check of Definition 2.
  std::vector<std::string> must_execute_actions() const;

 private:
  static constexpr NodeId kEndId = 0;
  static constexpr NodeId kBeginId = 1;

  std::string name_;
  std::vector<Node> nodes_;
  std::unordered_multimap<size_t, NodeId> test_intern_;
  std::unordered_multimap<size_t, NodeId> assign_intern_;
};

}  // namespace polis::sgraph
