// Data-flow analysis on the s-graph: which state variables actually need
// the copy-in buffering?
//
// §V-B: "The increase in ROM and RAM size is due mostly to the fact that
// all variables used by an s-graph are copied upon entry ... We are working
// on a data flow analysis step that will allow us to detect
// write-before-read cases that require such buffering, and reduce ROM and
// RAM, as well as CPU time, when no such buffering is needed."
//
// This module implements that step. A variable needs buffering iff some
// BEGIN→END path contains a write to it at one vertex followed by a read of
// it at a *later* vertex (reads inside the writing statement itself — the
// assigned expression and the guarding condition — evaluate before the
// store and are safe). Variables without such a write-before-read hazard
// can be read directly from their live location.
#pragma once

#include <set>
#include <string>

#include "sgraph/sgraph.hpp"

namespace polis::sgraph {

/// Variable names read by a vertex (predicate, condition, value expression).
std::set<std::string> vars_read_at(const Node& node);

/// Variable name written by a vertex (empty if none). Only kAssignVar
/// writes a variable; emissions go to the RTOS.
std::string var_written_at(const Node& node);

/// State variables (restricted to `candidates`) with a write-before-read
/// hazard, i.e. the ones that still require copy-in buffering.
std::set<std::string> vars_needing_copy_in(
    const Sgraph& graph, const std::set<std::string>& candidates);

}  // namespace polis::sgraph
