#include "verif/care.hpp"

#include <memory>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cfsm/network.hpp"

namespace polis::verif {

namespace {

/// Packs one local combination into a mixed-radix key. Both sides of the
/// filter (construction below, query at synthesis time) see combinations
/// through `enumerate_concrete_space`, so the packing only has to be a
/// deterministic function of (snapshot, state) over the machine interface.
std::uint64_t combo_key(const cfsm::Cfsm& machine, const cfsm::Snapshot& snap,
                        const std::map<std::string, std::int64_t>& state) {
  std::uint64_t key = 0;
  for (const cfsm::Signal& in : machine.inputs()) {
    key = key * 2 + (snap.is_present(in.name) ? 1u : 0u);
    if (!in.is_pure()) {
      const auto domain = static_cast<std::uint64_t>(in.domain);
      const auto v = static_cast<std::uint64_t>(snap.value_of(in.name));
      key = key * domain + v % domain;
    }
  }
  for (const cfsm::StateVar& sv : machine.state()) {
    const auto domain = static_cast<std::uint64_t>(sv.domain);
    const auto v = static_cast<std::uint64_t>(state.at(sv.name));
    key = key * domain + v % domain;
  }
  return key;
}

}  // namespace

std::map<std::string, cfsm::CareFilter> care_filters_by_machine(
    NetworkEncoding& enc, const bdd::Bdd& reached, std::uint64_t enum_limit) {
  bdd::BddManager& mgr = enc.manager();
  const cfsm::Network& network = enc.network();
  const std::vector<int> all_present = enc.present_vars();

  std::map<std::string, std::vector<const cfsm::Instance*>> by_machine;
  for (const cfsm::Instance& inst : network.instances())
    by_machine[inst.machine->name()].push_back(&inst);

  std::map<std::string, cfsm::CareFilter> out;
  for (const auto& [machine_name, insts] : by_machine) {
    const std::shared_ptr<const cfsm::Cfsm> machine = insts.front()->machine;
    auto cared = std::make_shared<std::unordered_set<std::uint64_t>>();
    bool complete = true;
    for (const cfsm::Instance* inst : insts) {
      // Project the reached set onto this instance's bits.
      const std::vector<int> mine = enc.instance_present_vars(inst->name);
      const std::set<int> mine_set(mine.begin(), mine.end());
      std::vector<int> others;
      for (int v : all_present)
        if (mine_set.count(v) == 0) others.push_back(v);
      bdd::Bdd proj = mgr.smooth(reached, others);

      complete = cfsm::enumerate_concrete_space(
          *machine, enum_limit,
          [&](const cfsm::Snapshot& snap,
              const std::map<std::string, std::int64_t>& st) {
            // Bit pattern of the combination; non-canonical combinations
            // (absent but stale nonzero value) never occur in the reached
            // set and fail the membership test by themselves.
            std::map<int, bool> bits;
            for (const StateSlot& slot : enc.state_slots()) {
              if (slot.instance != inst->name) continue;
              const std::int64_t v = st.at(slot.var);
              for (size_t b = 0; b < slot.bits.size(); ++b)
                bits[slot.bits[b].present] = ((v >> b) & 1) != 0;
            }
            for (const BufferSlot& slot : enc.buffer_slots()) {
              if (slot.instance != inst->name) continue;
              bits[slot.presence.present] = snap.is_present(slot.port);
              const std::int64_t v = snap.value_of(slot.port);
              for (size_t b = 0; b < slot.value_bits.size(); ++b)
                bits[slot.value_bits[b].present] = ((v >> b) & 1) != 0;
            }
            const bool member = mgr.eval(proj, [&](int var) {
              auto it = bits.find(var);
              return it != bits.end() && it->second;
            });
            if (member) cared->insert(combo_key(*machine, snap, st));
          });
      if (!complete) break;
    }
    if (!complete) continue;  // too big: leave synthesis on the local care set

    out.emplace(machine_name,
                [machine, cared](const cfsm::Snapshot& snap,
                                 const std::map<std::string, std::int64_t>& st) {
                  return cared->count(combo_key(*machine, snap, st)) != 0;
                });
  }
  return out;
}

}  // namespace polis::verif
