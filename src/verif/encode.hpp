// Boolean encoding of the global state of a CFSM network for symbolic
// reachability (the VIS-style verification backend of the paper's flow,
// §I-H step 2).
//
// Global state = every instance's state-variable valuation plus, for every
// *consumer port*, the 1-place event buffer in front of it (a presence flag
// and, for valued nets, a buffered value). Each state bit gets a
// present/next variable pair, interleaved in creation order and grouped by
// instance so that related bits stay adjacent in the BDD order.
//
// Canonical-form invariant: an absent buffer stores value 0. The initial
// state and every transition written by `build_transition_system` maintain
// it (consuming a buffer clears its value bits), so the reached set never
// carries "stale value" garbage and `sat_count` over the present variables
// is exactly the number of distinct observable global states.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"

namespace polis::verif {

/// Bits needed to encode 0..domain-1 (0 for presence-only domains).
int bits_for_domain(int domain);

/// One state bit: its present-state and next-state BDD variables.
struct VarPair {
  int present = -1;
  int next = -1;
};

/// One instance state variable, encoded LSB-first.
struct StateSlot {
  std::string instance;
  std::string var;
  int domain = 2;
  std::int64_t init = 0;
  std::vector<VarPair> bits;
};

/// The 1-place event buffer in front of one consumer port.
struct BufferSlot {
  std::string instance;  // consumer instance
  std::string port;      // consumer's formal input port
  std::string net;       // net the port is bound to
  int domain = 1;
  VarPair presence;
  std::vector<VarPair> value_bits;  // empty for pure nets
};

/// A concrete global network state (the explicit-state mirror of one
/// minterm over the present variables).
struct GlobalState {
  struct Buffer {
    bool present = false;
    std::int64_t value = 0;
    bool operator==(const Buffer& o) const {
      return present == o.present && value == o.value;
    }
    bool operator<(const Buffer& o) const {
      return present != o.present ? present < o.present : value < o.value;
    }
  };
  /// instance -> state var -> value.
  std::map<std::string, std::map<std::string, std::int64_t>> state;
  /// instance -> consumer port -> buffer.
  std::map<std::string, std::map<std::string, Buffer>> buffers;

  bool operator==(const GlobalState& o) const {
    return state == o.state && buffers == o.buffers;
  }
  bool operator<(const GlobalState& o) const {
    return state != o.state ? state < o.state : buffers < o.buffers;
  }
};

/// Owns the variable layout of one network over one BddManager. The manager
/// must be fresh (the encoding creates its variables).
class NetworkEncoding {
 public:
  NetworkEncoding(const cfsm::Network& network, bdd::BddManager& mgr);

  const cfsm::Network& network() const { return *network_; }
  bdd::BddManager& manager() const { return *mgr_; }

  const std::vector<StateSlot>& state_slots() const { return state_slots_; }
  const std::vector<BufferSlot>& buffer_slots() const { return buffer_slots_; }
  const BufferSlot& buffer_slot(const std::string& instance,
                                const std::string& port) const;

  /// All present-state variables, creation order.
  std::vector<int> present_vars() const;
  int num_present_vars() const { return num_present_vars_; }
  /// Present-state variables belonging to one instance (its state bits and
  /// its consumer-port buffer bits).
  std::vector<int> instance_present_vars(const std::string& instance) const;

  GlobalState initial_state() const;
  /// Singleton BDD of the initial state (all buffers empty).
  bdd::Bdd initial_set();

  /// Positive/negative literal of one bit, present or next column.
  bdd::Bdd literal(const VarPair& bit, bool value, bool next_column);
  /// Cube asserting `bits` encode `value` (LSB-first binary).
  bdd::Bdd value_cube(const std::vector<VarPair>& bits, std::int64_t value,
                      bool next_column);
  /// Full present-column cube of one concrete global state.
  bdd::Bdd state_cube(const GlobalState& s);

  /// Cube over one instance's present variables matching a concrete local
  /// (snapshot, state) combination; zero() for non-canonical combinations
  /// (an absent valued port paired with a nonzero stale value).
  bdd::Bdd local_combo_cube(const std::string& instance,
                            const cfsm::Snapshot& snapshot,
                            const std::map<std::string, std::int64_t>& state);

  /// Decodes a (possibly partial) assignment over the present variables into
  /// a concrete state; unassigned bits default to 0 (sound for cubes from
  /// one_sat: every completion satisfies the function).
  GlobalState decode(const std::vector<std::pair<int, bool>>& assignment) const;

  /// Value of the bit whose present-column variable is `present_var` in a
  /// concrete state (used to build per-cluster cubes during counterexample
  /// extraction).
  bool state_bit(const GlobalState& s, int present_var) const;

 private:
  const cfsm::Network* network_;
  bdd::BddManager* mgr_;
  std::vector<StateSlot> state_slots_;
  std::vector<BufferSlot> buffer_slots_;
  std::map<std::pair<std::string, std::string>, size_t> buffer_index_;
  /// present var -> (slot index into state_slots_ or buffer_slots_, bit
  /// position; bit -1 = a buffer presence flag).
  struct BitLocation {
    bool in_state = false;
    size_t slot = 0;
    int bit = 0;
  };
  std::map<int, BitLocation> bit_of_;
  int num_present_vars_ = 0;
};

}  // namespace polis::verif
