// Partitioned transition relation of a CFSM network (the paper's handoff to
// a BDD-based verification backend, §I-H step 2).
//
// The relation is *disjunctively* partitioned: one cluster per machine
// instance (an atomic reaction: consume the input buffers, update state,
// deliver emissions into consumer buffers) plus one cluster per external
// input net (the environment delivering an event into every consumer
// buffer). Each cluster constrains only its fixed `modified` set of bits and
// carries frame conditions (next == present) for modified bits a particular
// transition leaves alone; all other bits are untouched by construction, so
// image computation quantifies only the cluster's own present bits — the
// early-quantification schedule falls out of the partitioning.
//
// Interleaving semantics: one cluster step at a time. Non-firing reactions
// and all-absent snapshots are stutter steps and are not encoded (they do
// not change the global state). Lost-event risk (an emission or delivery
// overwriting a still-undetected buffered event) is recorded per cluster as
// a present-state set, feeding the built-in "no event is ever lost" check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "verif/encode.hpp"

namespace polis::verif {

struct Cluster {
  enum class Kind { kMachineStep, kEnvEvent };
  Kind kind = Kind::kMachineStep;
  /// Instance name (kMachineStep) or external input net name (kEnvEvent).
  std::string subject;
  /// Transition relation over this cluster's present + next bits (plus
  /// guard conditions on other instances' present bits — none today).
  bdd::Bdd relation;
  /// Bits this cluster may change.
  std::vector<VarPair> modified;
  /// Present-column variables of `modified` (the image quantification cube).
  std::vector<int> quantify_present;
  /// Next-column variables of `modified` (the preimage quantification cube).
  std::vector<int> quantify_next;
  /// Present states in which taking this step overwrites a still-pending
  /// event in some target buffer (1-place buffer overflow, §II-D).
  bdd::Bdd overwrite_risk;
  /// Concrete transitions encoded (enumeration telemetry).
  std::uint64_t transitions = 0;
  /// Rename-map id (on the encoding's manager) relabelling this cluster's
  /// next bits to their present twins — the image's final substitution.
  int rename_map = -1;
};

struct TransitionSystem {
  NetworkEncoding* enc = nullptr;  // non-owning; outlives the system
  std::vector<Cluster> clusters;
};

struct TransitionOptions {
  /// Per-machine concrete-space enumeration cap; building the relation for a
  /// machine above the cap throws (the symbolic backend is exact or absent,
  /// never silently partial).
  std::uint64_t enum_limit = 1u << 20;
};

TransitionSystem build_transition_system(NetworkEncoding& enc,
                                         const TransitionOptions& options = {});

/// Registers the next→present relabel of `modified` on `mgr` and returns
/// the map id. Used once per cluster at build time, and again by the
/// parallel reachability engine for each worker manager's cluster copies.
int register_next_to_present(bdd::BddManager& mgr,
                             const std::vector<VarPair>& modified);

/// Forward image of `from` under one cluster: rename-free result over the
/// present variables (and_exists over the modified present bits, then a
/// single-pass next → present relabel).
bdd::Bdd image_one(const TransitionSystem& tr, const Cluster& cluster,
                   const bdd::Bdd& from);

/// Forward image under the whole partitioned relation (union of clusters).
bdd::Bdd image(const TransitionSystem& tr, const bdd::Bdd& from);

}  // namespace polis::verif
