// One-call façade over the symbolic verification engine: encode the
// network, build the partitioned transition relation, run the reachability
// fixpoint, check every `assert` property plus the built-in lost-event
// property, and distill the reached set into per-machine care filters for
// s-graph synthesis. The BDD manager lives and dies inside the call; the
// result carries only plain data (and self-contained filters).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cfsm/network.hpp"
#include "cfsm/reactive.hpp"
#include "verif/check.hpp"
#include "verif/reach.hpp"
#include "verif/transition.hpp"

namespace polis::verif {

struct VerifyOptions {
  TransitionOptions transition;
  ReachOptions reach;
  /// Local-enumeration cap for properties and care-filter extraction.
  std::uint64_t enum_limit = 1u << 20;
  /// Check the built-in "no event is ever lost" property.
  bool check_lost_events = true;
  /// Extract per-machine care filters from the reached set.
  bool extract_care = true;
};

struct VerifyResult {
  ReachStats reach;
  std::uint64_t clusters = 0;
  std::uint64_t transitions = 0;  // concrete transitions encoded
  std::vector<CheckResult> assertions;
  LostEventReport lost_events;
  /// Feed into core::SynthesisOptions::care_filter_by_machine. Empty for
  /// machines whose local space exceeded the limit, or after widening
  /// (an overapproximate reached set would admit unreachable combos but
  /// we keep the guarantee that filters are exact).
  std::map<std::string, cfsm::CareFilter> care_filters;

  bool all_proved() const {
    for (const CheckResult& r : assertions)
      if (r.verdict != Verdict::kProved) return false;
    return true;
  }
};

VerifyResult verify_network(const cfsm::Network& network,
                            const VerifyOptions& options = {});

}  // namespace polis::verif
