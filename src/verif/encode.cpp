#include "verif/encode.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace polis::verif {

int bits_for_domain(int domain) {
  int bits = 0;
  while ((1 << bits) < domain) ++bits;
  return bits;
}

NetworkEncoding::NetworkEncoding(const cfsm::Network& network,
                                 bdd::BddManager& mgr)
    : network_(&network), mgr_(&mgr) {
  POLIS_CHECK_MSG(mgr.num_vars() == 0,
                  "NetworkEncoding needs a fresh BddManager");
  auto new_pair = [&](const std::string& name) {
    VarPair p;
    p.present = mgr_->new_var(name);
    p.next = mgr_->new_var(name + "'");
    ++num_present_vars_;
    return p;
  };
  // Group each instance's bits together (state first, then its input
  // buffers) so intra-machine correlations stay local in the order.
  for (const cfsm::Instance& inst : network.instances()) {
    for (const cfsm::StateVar& v : inst.machine->state()) {
      StateSlot slot;
      slot.instance = inst.name;
      slot.var = v.name;
      slot.domain = v.domain;
      slot.init = v.init;
      const int nbits = std::max(1, bits_for_domain(v.domain));
      for (int b = 0; b < nbits; ++b)
        slot.bits.push_back(
            new_pair(inst.name + "." + v.name + "[" + std::to_string(b) + "]"));
      state_slots_.push_back(std::move(slot));
    }
    for (const cfsm::Signal& in : inst.machine->inputs()) {
      BufferSlot slot;
      slot.instance = inst.name;
      slot.port = in.name;
      slot.net = inst.net_of(in.name);
      slot.domain = in.domain;
      slot.presence = new_pair(inst.name + "." + in.name + ".p");
      for (int b = 0; b < bits_for_domain(in.domain); ++b)
        slot.value_bits.push_back(
            new_pair(inst.name + "." + in.name + "[" + std::to_string(b) + "]"));
      buffer_index_.emplace(std::make_pair(inst.name, in.name),
                            buffer_slots_.size());
      buffer_slots_.push_back(std::move(slot));
    }
  }
  for (size_t i = 0; i < state_slots_.size(); ++i)
    for (size_t b = 0; b < state_slots_[i].bits.size(); ++b)
      bit_of_[state_slots_[i].bits[b].present] =
          BitLocation{true, i, static_cast<int>(b)};
  for (size_t i = 0; i < buffer_slots_.size(); ++i) {
    bit_of_[buffer_slots_[i].presence.present] = BitLocation{false, i, -1};
    for (size_t b = 0; b < buffer_slots_[i].value_bits.size(); ++b)
      bit_of_[buffer_slots_[i].value_bits[b].present] =
          BitLocation{false, i, static_cast<int>(b)};
  }
}

const BufferSlot& NetworkEncoding::buffer_slot(const std::string& instance,
                                               const std::string& port) const {
  auto it = buffer_index_.find(std::make_pair(instance, port));
  POLIS_CHECK_MSG(it != buffer_index_.end(),
                  "no buffer for " << instance << "." << port);
  return buffer_slots_[it->second];
}

std::vector<int> NetworkEncoding::present_vars() const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(num_present_vars_));
  for (const StateSlot& s : state_slots_)
    for (const VarPair& b : s.bits) out.push_back(b.present);
  for (const BufferSlot& s : buffer_slots_) {
    out.push_back(s.presence.present);
    for (const VarPair& b : s.value_bits) out.push_back(b.present);
  }
  return out;
}

std::vector<int> NetworkEncoding::instance_present_vars(
    const std::string& instance) const {
  std::vector<int> out;
  for (const StateSlot& s : state_slots_)
    if (s.instance == instance)
      for (const VarPair& b : s.bits) out.push_back(b.present);
  for (const BufferSlot& s : buffer_slots_) {
    if (s.instance != instance) continue;
    out.push_back(s.presence.present);
    for (const VarPair& b : s.value_bits) out.push_back(b.present);
  }
  return out;
}

GlobalState NetworkEncoding::initial_state() const {
  GlobalState s;
  for (const StateSlot& slot : state_slots_)
    s.state[slot.instance][slot.var] = slot.init;
  for (const BufferSlot& slot : buffer_slots_)
    s.buffers[slot.instance][slot.port] = GlobalState::Buffer{};
  return s;
}

bdd::Bdd NetworkEncoding::initial_set() { return state_cube(initial_state()); }

bdd::Bdd NetworkEncoding::literal(const VarPair& bit, bool value,
                                  bool next_column) {
  const int v = next_column ? bit.next : bit.present;
  return value ? mgr_->var(v) : mgr_->nvar(v);
}

bdd::Bdd NetworkEncoding::value_cube(const std::vector<VarPair>& bits,
                                     std::int64_t value, bool next_column) {
  bdd::Bdd cube = mgr_->one();
  for (size_t b = 0; b < bits.size(); ++b)
    cube = cube & literal(bits[b], ((value >> b) & 1) != 0, next_column);
  return cube;
}

bdd::Bdd NetworkEncoding::state_cube(const GlobalState& s) {
  bdd::Bdd cube = mgr_->one();
  for (const StateSlot& slot : state_slots_) {
    const auto& vars = s.state.at(slot.instance);
    cube = cube & value_cube(slot.bits, vars.at(slot.var), /*next=*/false);
  }
  for (const BufferSlot& slot : buffer_slots_) {
    const GlobalState::Buffer& buf = s.buffers.at(slot.instance).at(slot.port);
    cube = cube & literal(slot.presence, buf.present, /*next=*/false);
    cube = cube & value_cube(slot.value_bits, buf.value, /*next=*/false);
  }
  return cube;
}

bdd::Bdd NetworkEncoding::local_combo_cube(
    const std::string& instance, const cfsm::Snapshot& snapshot,
    const std::map<std::string, std::int64_t>& state) {
  bdd::Bdd cube = mgr_->one();
  for (const StateSlot& slot : state_slots_) {
    if (slot.instance != instance) continue;
    cube = cube & value_cube(slot.bits, state.at(slot.var), /*next=*/false);
  }
  for (const BufferSlot& slot : buffer_slots_) {
    if (slot.instance != instance) continue;
    const bool present = snapshot.is_present(slot.port);
    const std::int64_t value = snapshot.value_of(slot.port);
    if (!present && value != 0) return mgr_->zero();  // non-canonical
    cube = cube & literal(slot.presence, present, /*next=*/false);
    cube = cube & value_cube(slot.value_bits, value, /*next=*/false);
  }
  return cube;
}

GlobalState NetworkEncoding::decode(
    const std::vector<std::pair<int, bool>>& assignment) const {
  std::unordered_map<int, bool> bit;
  for (const auto& [var, value] : assignment) bit.emplace(var, value);
  auto value_of = [&](const std::vector<VarPair>& bits) {
    std::int64_t v = 0;
    for (size_t b = 0; b < bits.size(); ++b) {
      auto it = bit.find(bits[b].present);
      if (it != bit.end() && it->second) v |= std::int64_t{1} << b;
    }
    return v;
  };
  GlobalState s;
  for (const StateSlot& slot : state_slots_)
    s.state[slot.instance][slot.var] = value_of(slot.bits);
  for (const BufferSlot& slot : buffer_slots_) {
    GlobalState::Buffer buf;
    auto it = bit.find(slot.presence.present);
    buf.present = it != bit.end() && it->second;
    buf.value = value_of(slot.value_bits);
    s.buffers[slot.instance][slot.port] = buf;
  }
  return s;
}

bool NetworkEncoding::state_bit(const GlobalState& s, int present_var) const {
  auto it = bit_of_.find(present_var);
  POLIS_CHECK_MSG(it != bit_of_.end(),
                  "not a present-state variable: " << present_var);
  const BitLocation& loc = it->second;
  if (loc.in_state) {
    const StateSlot& slot = state_slots_[loc.slot];
    const std::int64_t v = s.state.at(slot.instance).at(slot.var);
    return ((v >> loc.bit) & 1) != 0;
  }
  const BufferSlot& slot = buffer_slots_[loc.slot];
  const GlobalState::Buffer& buf = s.buffers.at(slot.instance).at(slot.port);
  if (loc.bit < 0) return buf.present;
  return ((buf.value >> loc.bit) & 1) != 0;
}

}  // namespace polis::verif
