// Invariant / safety-property checking against the reached set, with
// counterexample-trace extraction and concrete replay.
//
// Properties are written in the existing expr language over one module's
// inputs and state (the `assert` clause of the frontend), read at global
// states with the usual convention: `present_x` is the buffer presence
// flag, `v_x` the buffered value (0 when absent), state vars their value.
// A violated property yields a BFS-minimal input trace (environment
// deliveries + machine steps) that is replayed two ways: through the
// explicit-state interpreter (exact) and through the RTOS simulator (the
// generated-software view), confirming the violating state concretely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cfsm/network.hpp"
#include "expr/expr.hpp"
#include "verif/enumerate.hpp"
#include "verif/reach.hpp"
#include "verif/transition.hpp"

namespace polis::verif {

/// One safety property, scoped to an instance (its machine's variable
/// naming applies).
struct Property {
  std::string name;
  std::string instance;
  expr::ExprRef expr;
  int line = 0;  // source line of the assert clause, 0 if programmatic
};

/// The `assert` clauses of every instance's machine, one property per
/// (instance, assertion) pair.
std::vector<Property> assertion_properties(const cfsm::Network& network);

/// Evaluates `e` on the instance-local view of a global state.
std::int64_t eval_on_state(const cfsm::Network& network,
                           const std::string& instance, const expr::Expr& e,
                           const GlobalState& s);

/// One step of a counterexample trace.
struct TraceStep {
  Cluster::Kind kind = Cluster::Kind::kEnvEvent;
  std::string subject;      // net (kEnvEvent) or instance (kMachineStep)
  std::int64_t value = 0;   // delivered value (kEnvEvent only)
  GlobalState after;
};

struct Counterexample {
  std::string property;
  GlobalState initial;
  std::vector<TraceStep> steps;  // initial --steps--> violating state
};

enum class Verdict { kProved, kViolated, kUnknown };
const char* to_string(Verdict v);

struct CheckResult {
  Property property;
  Verdict verdict = Verdict::kUnknown;
  double violating_states = 0;  // sat_count of reached ∧ ¬property
  std::optional<Counterexample> cex;  // kViolated with exact layers only
};

/// Checks one property against a reachability result. `enum_limit` caps the
/// instance-local enumeration used to encode the property.
CheckResult check_property(const TransitionSystem& tr, const ReachResult& reach,
                           const Property& property,
                           std::uint64_t enum_limit = 1u << 20);

std::vector<CheckResult> check_assertions(const TransitionSystem& tr,
                                          const ReachResult& reach,
                                          std::uint64_t enum_limit = 1u << 20);

/// Built-in property: no reachable state lets a step overwrite a pending
/// event (1-place buffer overflow, "events are never lost").
struct LostEventReport {
  bool possible = false;
  /// Cluster subjects (instances / env nets) that can overwrite, with the
  /// number of reachable states in which they do.
  std::vector<std::pair<std::string, double>> offenders;
  /// False when the reachability run did not converge (deadline/cancel/
  /// iteration cap): `possible == false` then means "not found in the states
  /// explored", not "cannot happen".
  bool sound = true;
};
LostEventReport check_no_lost_events(const TransitionSystem& tr,
                                     const ReachResult& reach);

/// Replays a counterexample through the explicit-state interpreter: checks
/// every step reproduces the recorded successor state and that the final
/// state violates the property. Returns true when fully confirmed.
bool replay_counterexample(const cfsm::Network& network,
                           const Counterexample& cex, const Property& property);

/// Replays the counterexample's environment deliveries through the RTOS
/// simulator (reference tasks, events `spacing` cycles apart) and watches
/// the property instance via the task probes. Returns true iff some
/// dispatch or completion of that instance observes the violation.
bool replay_on_rtos(const cfsm::Network& network, const Counterexample& cex,
                    const Property& property, long long spacing = 100000);

}  // namespace polis::verif
