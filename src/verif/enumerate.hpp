// Explicit-state BFS over the same GALS transition system the symbolic
// engine encodes (atomic machine reactions + environment deliveries into
// 1-place buffers, stutter steps skipped). The oracle for cross-checking
// symbolic reachability on small networks, and the concrete replayer for
// counterexample traces.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cfsm/network.hpp"
#include "verif/encode.hpp"

namespace polis::verif {

/// The initial global state: machine initial valuations, all buffers empty.
GlobalState initial_global_state(const cfsm::Network& network);

/// All successors of `s` under one-step interleaving: every external input
/// net delivering each of its values, and every enabled instance firing.
/// Non-firing (stutter) reactions produce no successor.
std::vector<GlobalState> successor_states(const cfsm::Network& network,
                                          const GlobalState& s);

/// Applies one environment delivery of `value` on `net` in place.
void apply_env_event(const cfsm::Network& network, const std::string& net,
                     std::int64_t value, GlobalState& s);

/// Fires one atomic reaction of `instance` in place; returns false (leaving
/// `s` unchanged) if the instance is not enabled or the reaction stutters.
bool apply_machine_step(const cfsm::Network& network,
                        const std::string& instance, GlobalState& s);

/// BFS from the initial state; nullopt once more than `limit` distinct
/// states have been discovered.
std::optional<std::vector<GlobalState>> enumerate_reachable_states(
    const cfsm::Network& network, std::uint64_t limit = 1u << 20);

}  // namespace polis::verif
