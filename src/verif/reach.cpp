#include "verif/reach.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>

#include "obs/obs.hpp"
#include "obs/series.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"
#include "util/thread_pool.hpp"
#include "verif/par_image.hpp"

namespace polis::verif {

namespace {

// Mirrors a finished fixpoint into the global registry (once per run — the
// per-iteration loop below publishes nothing, only optional spans).
void publish_reach_stats(const ReachStats& s) {
  struct Ids {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::MetricsRegistry::Id runs = reg.counter("reach.runs");
    obs::MetricsRegistry::Id iters = reg.counter("reach.iterations");
    obs::MetricsRegistry::Id gcs = reg.counter("reach.gc_runs");
    obs::MetricsRegistry::Id widenings = reg.counter("reach.widenings");
    obs::MetricsRegistry::Id recoveries = reg.counter("reach.budget_recoveries");
    obs::MetricsRegistry::Id inexact = reg.counter("reach.inexact_runs");
    obs::MetricsRegistry::Id unconverged = reg.counter("reach.unconverged_runs");
    obs::MetricsRegistry::Id peak = reg.max_gauge("reach.peak_live_nodes");
    obs::MetricsRegistry::Id depth = reg.histogram("reach.fixpoint_depth");
  };
  static const Ids ids;
  obs::MetricsRegistry& reg = ids.reg;
  reg.add(ids.runs, 1);
  reg.add(ids.iters, static_cast<std::uint64_t>(s.iterations));
  reg.add(ids.gcs, s.gc_runs);
  reg.add(ids.widenings, static_cast<std::uint64_t>(s.widenings));
  reg.add(ids.recoveries, static_cast<std::uint64_t>(s.budget_recoveries));
  if (!s.exact) reg.add(ids.inexact, 1);
  if (!s.converged) reg.add(ids.unconverged, 1);
  reg.set(ids.peak, static_cast<std::int64_t>(s.peak_live_nodes));
  reg.observe(ids.depth, static_cast<std::uint64_t>(s.iterations));
  if (s.shards > 0) {
    struct ParIds {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
      obs::MetricsRegistry::Id shards = reg.max_gauge("reach.shards");
      obs::MetricsRegistry::Id worker_peak =
          reg.max_gauge("reach.worker_peak_nodes");
      obs::MetricsRegistry::Id worker_gcs = reg.counter("reach.worker_gc_runs");
    };
    static const ParIds par_ids;
    reg.set(par_ids.shards, s.shards);
    for (const std::size_t peak : s.worker_peak_nodes)
      reg.set(par_ids.worker_peak, static_cast<std::int64_t>(peak));
    reg.add(par_ids.worker_gcs, s.worker_gc_runs);
  }
}

/// Budget exceeded: existentially smooth the present variable contributing
/// the most live nodes out of `reached`. Monotone (only enlarges the set),
/// so the fixpoint still terminates — just on an overapproximation.
bdd::Bdd widen(NetworkEncoding& enc, const bdd::Bdd& reached) {
  bdd::BddManager& mgr = enc.manager();
  const std::vector<size_t> profile = mgr.var_node_profile();
  const std::set<int> support = mgr.support(reached);
  int fattest = -1;
  size_t best = 0;
  for (int v : enc.present_vars()) {
    if (support.count(v) == 0) continue;
    const size_t weight = profile[static_cast<size_t>(v)];
    if (fattest < 0 || weight > best) {
      fattest = v;
      best = weight;
    }
  }
  if (fattest < 0) return reached;  // nothing left to smooth
  return mgr.smooth(reached, {fattest});
}

}  // namespace

ReachResult reachable_states(const TransitionSystem& tr,
                             const ReachOptions& options) {
  POLIS_CHECK(tr.enc != nullptr);
  NetworkEncoding& enc = *tr.enc;
  bdd::BddManager& mgr = enc.manager();

  OBS_SPAN(span, "verif.reach", "verif");

  ReachResult result;
  {
    // The initial set is tiny but its kernel ops still hit the amortized
    // governor poll: in degrade mode a pre-cancelled / past-deadline run
    // must reach the loop head (which stops honestly) instead of throwing
    // from setup.
    std::optional<ResourceGovernor::Suspend> setup_guard;
    if (options.degrade_on_budget) setup_guard.emplace();
    result.reached = enc.initial_set();
  }
  bdd::Bdd frontier = result.reached;
  if (options.keep_layers) result.layers.push_back(frontier);
  result.stats.peak_live_nodes = mgr.live_node_count();

  // Parallel image engine: sharded per-cluster images on private worker
  // managers, merged deterministically back here (see par_image.hpp). The
  // merged image is the same canonical BDD the serial path computes, so
  // everything downstream — layers, verdicts, counterexamples — is
  // bit-identical at every thread count.
  // Degradation ladder: in `degrade_on_budget` mode a governor node/byte/
  // allocation trip mid-image falls back to the same widening the static
  // node_budget uses (the set only grows, so an empty bad-intersection still
  // proves safety); a deadline or cancellation ends the run honestly
  // non-converged (the reached set UNDERapproximates — `converged` gates
  // every kProved downstream). Without the flag governor errors propagate.
  ResourceGovernor* const gov = ResourceGovernor::current();

  const int threads =
      options.num_threads == 0
          ? static_cast<int>(ThreadPool::default_threads())
          : options.num_threads;
  std::unique_ptr<ParallelImage> par;
  if (threads > 1 && tr.clusters.size() > 1) {
    if (!options.degrade_on_budget) {
      par = std::make_unique<ParallelImage>(tr, threads);
    } else {
      // Worker setup migrates the whole relation into per-worker managers —
      // a real allocation that can trip an already-tight budget or land
      // after a cancellation. Degrade to the serial image path (which has
      // its own recovery ladder below) instead of failing the run; the
      // loop head re-checks deadline/cancel before the first image.
      try {
        par = std::make_unique<ParallelImage>(tr, threads);
      } catch (const RecoverableError&) {
        if (gov != nullptr)
          gov->note_degradation("parallel image setup over budget; serial");
      }
    }
  }
  const auto step_image = [&](const bdd::Bdd& from) {
    return par != nullptr ? par->image(from) : image(tr, from);
  };
  const auto stop_unconverged = [&result]() {
    result.stats.exact = false;
    result.stats.converged = false;
    result.layers.clear();
  };

  while (!frontier.is_zero()) {
    if (options.max_iterations > 0 &&
        result.stats.iterations >= options.max_iterations) {
      stop_unconverged();
      break;
    }
    if (gov != nullptr) {
      if (!options.degrade_on_budget) {
        gov->poll();  // fail mode: throws past deadline / on cancel
      } else if (gov->deadline_expired() || gov->cancel_requested()) {
        gov->note_degradation("verif fixpoint stopped at deadline/cancel");
        stop_unconverged();
        break;
      }
    }
    ++result.stats.iterations;

    // One span per BFS onion layer; node counts are only computed when the
    // recorder is armed (node_count walks the BDD).
    OBS_SPAN(layer_span, "reach.layer", "verif");
    if (layer_span.armed()) {
      layer_span.arg("iteration", result.stats.iterations);
      layer_span.arg("frontier_nodes", mgr.node_count(frontier));
    }

    if (options.degrade_on_budget) {
      bool recovered = false;
      try {
        const bdd::Bdd img = step_image(frontier);
        frontier = img & !result.reached;
        result.reached = result.reached | frontier;
      } catch (const Cancelled&) {
        if (gov != nullptr)
          gov->note_degradation("verif fixpoint cancelled mid-image");
        stop_unconverged();
        break;
      } catch (const BudgetExceeded& e) {
        if (e.kind() == BudgetExceeded::Kind::kDeadline) {
          if (gov != nullptr)
            gov->note_degradation("verif fixpoint stopped at deadline");
          stop_unconverged();
          break;
        }
        // Node/byte/allocation pressure: widen under governor suspension
        // (the recovery itself must not re-trip), reclaim memory, restart
        // the frontier from the enlarged set.
        ResourceGovernor::Suspend suspend;
        ++result.stats.budget_recoveries;
        if (gov != nullptr)
          gov->note_degradation("verif image over budget; widening");
        const bdd::Bdd widened = widen(enc, result.reached);
        if (widened == result.reached) {
          // Nothing left to smooth: the abstraction cannot get coarser, so
          // stop with an honest non-verdict instead of spinning.
          stop_unconverged();
          break;
        }
        result.reached = widened;
        frontier = result.reached;
        result.layers.clear();
        result.stats.exact = false;
        ++result.stats.widenings;
        mgr.garbage_collect();
        ++result.stats.gc_runs;
        // The trip may have left worker arenas bloated mid-image; collect
        // them all before retrying on the widened set.
        if (par != nullptr)
          result.stats.worker_gc_runs += par->collect_garbage(1);
        recovered = true;
      }
      if (recovered) continue;
    } else {
      const bdd::Bdd img = step_image(frontier);
      frontier = img & !result.reached;
      result.reached = result.reached | frontier;
    }
    if (options.keep_layers && !frontier.is_zero())
      result.layers.push_back(frontier);

    if (options.node_budget > 0 &&
        mgr.node_count(result.reached) > options.node_budget) {
      result.reached = widen(enc, result.reached);
      // The overapproximated set has no meaningful BFS structure: restart
      // the frontier from the whole set and drop the layers.
      frontier = result.reached;
      result.layers.clear();
      result.stats.exact = false;
      ++result.stats.widenings;
    }

    result.stats.peak_live_nodes =
        std::max(result.stats.peak_live_nodes, mgr.live_node_count());
    if (options.gc_threshold > 0 &&
        mgr.table_node_count() > options.gc_threshold) {
      // The frontier/reached/layer handles are registered roots: collection
      // compacts the arena and retargets them in place.
      mgr.garbage_collect();
      ++result.stats.gc_runs;
    }
    if (par != nullptr)
      result.stats.worker_gc_runs += par->collect_garbage(options.gc_threshold);
    if (layer_span.armed())
      layer_span.arg("reached_nodes", mgr.node_count(result.reached));

#ifndef POLIS_OBS_DISABLED
    if (obs::SeriesRecorder::global().enabled()) {
      // Per-layer telemetry for the layer-timebase series: current BDD set
      // sizes as gauges (node_count walks the BDD, so only behind the gate)
      // and the kernel counters drained so each layer's deltas carry the
      // apply/cache activity of that image step. Deterministic: driven only
      // by BFS state, never by the clock.
      struct LayerIds {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
        obs::MetricsRegistry::Id frontier = reg.gauge("reach.frontier_nodes");
        obs::MetricsRegistry::Id reached = reg.gauge("reach.reached_nodes");
      };
      static const LayerIds layer_ids;
      layer_ids.reg.set(layer_ids.frontier,
                        static_cast<std::int64_t>(mgr.node_count(frontier)));
      layer_ids.reg.set(layer_ids.reached,
                        static_cast<std::int64_t>(
                            mgr.node_count(result.reached)));
      mgr.flush_stats_to_obs();
      OBS_TICK_EPOCH(obs::Timebase::kLayer, result.stats.iterations);
    }
#endif
  }

  if (par != nullptr) {
    result.stats.shards = par->shards();
    for (const ParallelImage::WorkerStats& w : par->worker_stats())
      result.stats.worker_peak_nodes.push_back(w.peak_nodes);
  }

  {
    // Final bookkeeping must complete even when the loop stopped on a
    // deadline/cancel trip — the partial result is the whole point of
    // degrading (same rationale as the setup guard above).
    std::optional<ResourceGovernor::Suspend> teardown_guard;
    if (options.degrade_on_budget) teardown_guard.emplace();
    result.stats.reached_nodes = mgr.node_count(result.reached);
    result.stats.reached_states =
        mgr.sat_count(result.reached, enc.num_present_vars());
  }
  if (span.armed()) {
    span.arg("iterations", result.stats.iterations);
    span.arg("reached_nodes", result.stats.reached_nodes);
    span.arg("reached_states", result.stats.reached_states);
    span.arg("exact", result.stats.exact);
  }
  publish_reach_stats(result.stats);
  return result;
}

}  // namespace polis::verif
