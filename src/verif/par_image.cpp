#include "verif/par_image.hpp"

#include <algorithm>
#include <exception>
#include <numeric>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"

namespace polis::verif {

ParallelImage::ParallelImage(const TransitionSystem& tr, int num_threads)
    : tr_(&tr) {
  POLIS_CHECK(tr.enc != nullptr);
  POLIS_CHECK_MSG(num_threads >= 1, "ParallelImage needs >= 1 thread");
  bdd::BddManager& main = tr.enc->manager();
  const size_t n_clusters = tr.clusters.size();
  const size_t n_shards =
      std::min(static_cast<size_t>(num_threads), std::max<size_t>(n_clusters, 1));

  OBS_SPAN(span, "reach.shard_setup", "verif");

  // LPT schedule: heaviest cluster first onto the least-loaded shard, with
  // relation node count as the weight. Ties break on the lower shard index
  // and clusters keep ascending original order within a shard, so the
  // assignment — and everything downstream of it — is deterministic.
  std::vector<size_t> by_weight(n_clusters);
  std::iota(by_weight.begin(), by_weight.end(), size_t{0});
  std::vector<size_t> weight(n_clusters);
  for (size_t i = 0; i < n_clusters; ++i)
    weight[i] = main.node_count(tr.clusters[i].relation);
  std::stable_sort(by_weight.begin(), by_weight.end(),
                   [&](size_t a, size_t b) { return weight[a] > weight[b]; });
  std::vector<std::vector<size_t>> assignment(n_shards);
  std::vector<size_t> load(n_shards, 0);
  for (const size_t ci : by_weight) {
    const size_t s = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[s].push_back(ci);
    load[s] += weight[ci];
  }
  for (auto& shard : assignment) std::sort(shard.begin(), shard.end());

  // One private manager per shard, mirroring the main manager's variables
  // and order (copy_across requires the orders to be identical). Cluster
  // relations are migrated once, at setup; the per-step traffic is only
  // the frontier in and the partial image out.
  const std::vector<int> order = main.current_order();
  for (size_t s = 0; s < n_shards; ++s) {
    auto w = std::make_unique<Worker>();
    w->mgr = std::make_unique<bdd::BddManager>(main.num_vars());
    for (int v = 0; v < main.num_vars(); ++v)
      w->mgr->set_var_name(v, main.var_name(v));
    if (w->mgr->current_order() != order) w->mgr->set_order(order);
    bdd::CopyCache setup_cache;
    for (const size_t ci : assignment[s]) {
      const Cluster& c = tr.clusters[ci];
      ShardCluster sc;
      sc.relation = w->mgr->copy_across(c.relation, setup_cache);
      sc.quantify_present = c.quantify_present;
      sc.rename_map = register_next_to_present(*w->mgr, c.modified);
      w->clusters.push_back(std::move(sc));
      w->relation_nodes += weight[ci];
    }
    w->partial = w->mgr->zero();
    w->peak_nodes = w->mgr->arena_size();
    workers_.push_back(std::move(w));
  }
  pool_ = std::make_unique<ThreadPool>(n_shards);
  if (span.armed()) {
    span.arg("shards", n_shards);
    span.arg("clusters", n_clusters);
  }
}

ParallelImage::~ParallelImage() {
  // Workers are idle (every `image` call ends in wait_idle); the managers
  // are destroyed here on the caller's thread, under its governor scope,
  // refunding every outstanding node/byte charge.
  pool_.reset();
  workers_.clear();
}

bdd::Bdd ParallelImage::image(const bdd::Bdd& from) {
  bdd::BddManager& main = tr_->enc->manager();
  ResourceGovernor* const gov = ResourceGovernor::current();
  std::vector<std::exception_ptr> errors(workers_.size());

  for (size_t s = 0; s < workers_.size(); ++s) {
    pool_->submit([this, s, &from, &errors, gov] {
      obs::TraceRecorder::global().name_this_thread(
          "verify worker #" + std::to_string(s));
      ResourceGovernor::Scope scope(gov);
      try {
        OBS_SPAN(shard_span, "reach.shard", "verif");
        Worker& w = *workers_[s];
        // Pure concurrent read of the main arena: the main thread is
        // parked in wait_idle and mutates nothing until the barrier.
        const bdd::Bdd local_from = w.mgr->copy_across(from, w.to_worker);
        bdd::Bdd img = w.mgr->zero();
        for (const ShardCluster& c : w.clusters) {
          bdd::Bdd ci =
              w.mgr->and_exists(local_from, c.relation, c.quantify_present);
          img = img | w.mgr->rename(ci, c.rename_map);
        }
        w.partial = std::move(img);
        w.peak_nodes = std::max(w.peak_nodes, w.mgr->arena_size());
        if (shard_span.armed()) {
          shard_span.arg("shard", s);
          shard_span.arg("partial_nodes", w.mgr->node_count(w.partial));
        }
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  pool_->wait_idle();

  for (size_t s = 0; s < workers_.size(); ++s) {
    if (!errors[s]) continue;
    // Release every completed partial before unwinding so a recovery GC
    // (widening) sees no stale roots pinning last step's images.
    for (auto& w : workers_) w->partial = w->mgr->zero();
    // Ascending shard order: with several trips in one step the surfaced
    // error is the lowest shard's, independent of finish order.
    std::rethrow_exception(errors[s]);
  }

  // Deterministic merge on the main manager, ascending shard order. The
  // result is the canonical union — identical to the serial image — and
  // the fixed order keeps allocation patterns reproducible.
  bdd::Bdd img = main.zero();
  for (auto& w : workers_) {
    img = img | main.copy_across(w->partial, w->from_worker);
    w->partial = w->mgr->zero();  // drop the worker-side root
  }
  return img;
}

std::uint64_t ParallelImage::collect_garbage(std::size_t threshold) {
  std::uint64_t runs = 0;
  for (auto& w : workers_) {
    if (threshold > 0 && w->mgr->table_node_count() > threshold) {
      // Bumps the worker's structure epoch, so the main-side from_worker
      // translation cache self-invalidates on its next use.
      w->mgr->garbage_collect();
      ++runs;
    }
  }
  return runs;
}

std::vector<ParallelImage::WorkerStats> ParallelImage::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerStats s;
    s.clusters = w->clusters.size();
    s.relation_nodes = w->relation_nodes;
    s.peak_nodes = std::max(w->peak_nodes, w->mgr->arena_size());
    s.copy_cache_hits = w->mgr->stats().copy_cache_hits;
    out.push_back(s);
  }
  return out;
}

}  // namespace polis::verif
