#include "verif/check.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "rtos/rtos.hpp"
#include "util/check.hpp"

namespace polis::verif {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kProved: return "proved";
    case Verdict::kViolated: return "violated";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

std::vector<Property> assertion_properties(const cfsm::Network& network) {
  std::vector<Property> out;
  for (const cfsm::Instance& inst : network.instances()) {
    int n = 0;
    for (const cfsm::Assertion& a : inst.machine->assertions()) {
      Property p;
      p.name = inst.name + ".assert" + std::to_string(n++);
      p.instance = inst.name;
      p.expr = a.expr;
      p.line = a.line;
      out.push_back(std::move(p));
    }
  }
  return out;
}

namespace {

/// Env over one instance's local view: presence/value of each input port and
/// the state variables, everything else 0.
expr::Env local_env(const cfsm::Cfsm& machine, const cfsm::Snapshot& snap,
                    const std::map<std::string, std::int64_t>& state) {
  std::map<std::string, std::int64_t> vars;
  for (const cfsm::Signal& in : machine.inputs()) {
    const bool present = snap.is_present(in.name);
    vars[cfsm::presence_name(in.name)] = present ? 1 : 0;
    if (!in.is_pure())
      vars[cfsm::value_name(in.name)] = present ? snap.value_of(in.name) : 0;
  }
  for (const auto& [name, value] : state) vars[name] = value;
  return [vars = std::move(vars)](const std::string& name) -> std::int64_t {
    auto it = vars.find(name);
    return it == vars.end() ? 0 : it->second;
  };
}

cfsm::Snapshot snapshot_of(const cfsm::Cfsm& machine,
                           const std::map<std::string, GlobalState::Buffer>&
                               buffers) {
  cfsm::Snapshot snap;
  for (const cfsm::Signal& in : machine.inputs()) {
    auto it = buffers.find(in.name);
    if (it == buffers.end() || !it->second.present) continue;
    snap.present[in.name] = true;
    if (!in.is_pure()) snap.value[in.name] = it->second.value;
  }
  return snap;
}

/// BDD over the instance's present variables of all local combinations that
/// violate the property (expr evaluates to 0).
bdd::Bdd violating_set(NetworkEncoding& enc, const Property& property,
                       std::uint64_t enum_limit) {
  const cfsm::Instance& inst = enc.network().instance(property.instance);
  const cfsm::Cfsm& machine = *inst.machine;
  bdd::BddManager& mgr = enc.manager();
  bdd::Bdd bad = mgr.zero();
  const bool complete = cfsm::enumerate_concrete_space(
      machine, enum_limit,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        for (const cfsm::Signal& in : machine.inputs())
          if (!snap.is_present(in.name) && snap.value_of(in.name) != 0)
            return;  // non-canonical, never reachable by construction
        if (expr::evaluate(*property.expr, local_env(machine, snap, st)) != 0)
          return;
        bad = bad | enc.local_combo_cube(property.instance, snap, st);
      });
  POLIS_CHECK_MSG(complete, "property '" << property.name
                                         << "' needs more than " << enum_limit
                                         << " local combinations");
  return bad;
}

/// Delivered value of an env step, read off the post-delivery state.
std::int64_t env_value_of(const cfsm::Network& network, const std::string& net,
                          const GlobalState& after) {
  const std::map<std::string, cfsm::Net> nets = network.nets();
  const cfsm::Net& n = nets.at(net);
  POLIS_CHECK_MSG(!n.consumers.empty(), "net " << net << " has no consumers");
  const auto& [ci, cp] = n.consumers.front();
  return after.buffers.at(ci).at(cp).value;
}

/// Backwards trace extraction over the kept BFS layers: the violating state
/// sits in the minimal layer k, and by construction every state of layer i+1
/// has a predecessor in layer i under some single cluster.
Counterexample extract_counterexample(const TransitionSystem& tr,
                                      const ReachResult& reach,
                                      const Property& property,
                                      const bdd::Bdd& bad) {
  NetworkEncoding& enc = *tr.enc;
  bdd::BddManager& mgr = enc.manager();
  size_t k = 0;
  while (k < reach.layers.size() && (reach.layers[k] & bad).is_zero()) ++k;
  POLIS_CHECK_MSG(k < reach.layers.size(), "bad state not on any layer");

  // Zero-completion decoding is sound: every completion of a one_sat cube
  // satisfies the set, and the canonical-form invariant holds on all layers.
  GlobalState cur = enc.decode(mgr.one_sat(reach.layers[k] & bad));

  Counterexample cex;
  cex.property = property.name;
  std::vector<TraceStep> steps;  // built back-to-front
  const std::vector<int> all_present = enc.present_vars();
  for (size_t i = k; i-- > 0;) {
    bool found = false;
    for (const Cluster& c : tr.clusters) {
      // cur restricted to this cluster's next column...
      bdd::Bdd next_cube = mgr.one();
      for (const VarPair& b : c.modified)
        next_cube = next_cube & (enc.state_bit(cur, b.present)
                                     ? mgr.var(b.next)
                                     : mgr.nvar(b.next));
      // ...and its untouched bits pinned in the present column.
      const std::set<int> touched(c.quantify_present.begin(),
                                  c.quantify_present.end());
      bdd::Bdd frame = mgr.one();
      for (int v : all_present) {
        if (touched.count(v) != 0) continue;
        frame = frame & (enc.state_bit(cur, v) ? mgr.var(v) : mgr.nvar(v));
      }
      const bdd::Bdd pred = reach.layers[i] & frame &
                            mgr.and_exists(c.relation, next_cube,
                                           c.quantify_next);
      if (pred.is_zero()) continue;
      TraceStep step;
      step.kind = c.kind;
      step.subject = c.subject;
      if (c.kind == Cluster::Kind::kEnvEvent)
        step.value = env_value_of(enc.network(), c.subject, cur);
      step.after = cur;
      steps.push_back(std::move(step));
      cur = enc.decode(mgr.one_sat(pred));
      found = true;
      break;
    }
    POLIS_CHECK_MSG(found, "no predecessor cluster at layer " << i + 1);
  }
  cex.initial = cur;
  std::reverse(steps.begin(), steps.end());
  cex.steps = std::move(steps);
  return cex;
}

}  // namespace

std::int64_t eval_on_state(const cfsm::Network& network,
                           const std::string& instance, const expr::Expr& e,
                           const GlobalState& s) {
  const cfsm::Cfsm& machine = *network.instance(instance).machine;
  const cfsm::Snapshot snap = snapshot_of(machine, s.buffers.at(instance));
  return expr::evaluate(e, local_env(machine, snap, s.state.at(instance)));
}

CheckResult check_property(const TransitionSystem& tr, const ReachResult& reach,
                           const Property& property,
                           std::uint64_t enum_limit) {
  NetworkEncoding& enc = *tr.enc;
  bdd::BddManager& mgr = enc.manager();
  CheckResult result;
  result.property = property;
  const bdd::Bdd bad =
      reach.reached & violating_set(enc, property, enum_limit);
  if (bad.is_zero()) {
    // Sound when `reached` covers every reachable state — exact, or widened
    // to an overapproximation. A non-converged run (iteration cap, deadline,
    // cancellation) UNDERapproximates: the empty intersection proves
    // nothing, so stay honestly unknown.
    result.verdict =
        reach.stats.converged ? Verdict::kProved : Verdict::kUnknown;
    return result;
  }
  result.violating_states = mgr.sat_count(bad, enc.num_present_vars());
  if (!reach.stats.exact || reach.layers.empty()) {
    result.verdict = Verdict::kUnknown;
    return result;
  }
  result.verdict = Verdict::kViolated;
  result.cex = extract_counterexample(tr, reach, property, bad);
  return result;
}

std::vector<CheckResult> check_assertions(const TransitionSystem& tr,
                                          const ReachResult& reach,
                                          std::uint64_t enum_limit) {
  std::vector<CheckResult> out;
  for (const Property& p : assertion_properties(tr.enc->network()))
    out.push_back(check_property(tr, reach, p, enum_limit));
  return out;
}

LostEventReport check_no_lost_events(const TransitionSystem& tr,
                                     const ReachResult& reach) {
  NetworkEncoding& enc = *tr.enc;
  bdd::BddManager& mgr = enc.manager();
  LostEventReport report;
  report.sound = reach.stats.converged;
  for (const Cluster& c : tr.clusters) {
    const bdd::Bdd risky = reach.reached & c.overwrite_risk;
    if (risky.is_zero()) continue;
    report.possible = true;
    report.offenders.emplace_back(
        c.subject, mgr.sat_count(risky, enc.num_present_vars()));
  }
  return report;
}

bool replay_counterexample(const cfsm::Network& network,
                           const Counterexample& cex,
                           const Property& property) {
  GlobalState s = initial_global_state(network);
  if (!(s == cex.initial)) return false;
  for (const TraceStep& step : cex.steps) {
    if (step.kind == Cluster::Kind::kEnvEvent) {
      apply_env_event(network, step.subject, step.value, s);
    } else if (!apply_machine_step(network, step.subject, s)) {
      return false;
    }
    if (!(s == step.after)) return false;
  }
  return eval_on_state(network, property.instance, *property.expr, s) == 0;
}

bool replay_on_rtos(const cfsm::Network& network, const Counterexample& cex,
                    const Property& property, long long spacing) {
  const cfsm::Cfsm& machine = *network.instance(property.instance).machine;
  // Input-free properties can also be judged at task completion, where only
  // the state survives; snapshot-reading ones only at dispatch.
  bool state_only = true;
  const std::set<std::string> used = expr::support(*property.expr);
  for (const cfsm::Signal& in : machine.inputs())
    if (used.count(cfsm::presence_name(in.name)) != 0 ||
        used.count(cfsm::value_name(in.name)) != 0)
      state_only = false;

  bool violated = false;
  rtos::RtosConfig config;
  config.on_task_start = [&](const std::string& task, long long,
                             const cfsm::Snapshot& snap,
                             const std::map<std::string, std::int64_t>& st) {
    if (task != property.instance || violated) return;
    violated = expr::evaluate(*property.expr, local_env(machine, snap, st)) == 0;
  };
  config.on_task_end = [&](const std::string& task, long long,
                           const std::map<std::string, std::int64_t>& st) {
    if (task != property.instance || violated || !state_only) return;
    violated =
        expr::evaluate(*property.expr, local_env(machine, {}, st)) == 0;
  };

  rtos::RtosSimulation sim(network, config);
  for (const cfsm::Instance& inst : network.instances())
    sim.set_reference_task(inst.name, /*cycles=*/10);

  // Drive only the environment deliveries; the scheduler runs the machine
  // steps. Spacing the stimuli far apart lets the network quiesce between
  // deliveries, matching the interleaved one-step-at-a-time semantics.
  std::vector<rtos::ExternalEvent> events;
  long long t = spacing;
  for (const TraceStep& step : cex.steps) {
    if (step.kind != Cluster::Kind::kEnvEvent) continue;
    events.push_back(rtos::ExternalEvent{t, step.subject, step.value});
    t += spacing;
  }
  sim.run(events, /*horizon=*/t + spacing);
  return violated;
}

}  // namespace polis::verif
