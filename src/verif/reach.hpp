// BDD reachability fixpoint over the partitioned transition relation:
// forward image iteration with frontier-vs-accumulated sets, per-iteration
// telemetry, in-fixpoint garbage collection, and a node budget that degrades
// gracefully to an overapproximation (existentially smoothing the fattest
// state bits) instead of failing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "verif/transition.hpp"

namespace polis::verif {

struct ReachOptions {
  /// Cap on the node count of the reached set; exceeding it triggers
  /// widening (overapproximation, `exact` turns false). 0 = unlimited.
  std::size_t node_budget = 0;
  /// Run BddManager::garbage_collect between iterations once the unique
  /// table holds more than this many nodes. 0 = never collect. The default
  /// is deliberately generous (8 Mi nodes ≈ 128 MiB of arena): every
  /// collection also clears the computed cache, and long fixpoints live on
  /// inter-iteration cache reuse — on full dash, collecting at 4 Mi nodes
  /// instead of 8 Mi makes the run 4.5× slower. Memory-bounded runs should
  /// cap via the governor's byte budget, not a tight GC threshold.
  std::size_t gc_threshold = std::size_t{8} << 20;
  /// Image-computation workers. 1 = serial (in the main manager);
  /// N > 1 shards the transition-relation clusters across N private
  /// per-thread managers (see ParallelImage) — bit-identical results, the
  /// partial images are merged deterministically on the main manager.
  /// 0 = one worker per hardware thread.
  int num_threads = 1;
  /// Iteration cap; exceeding it stops with `exact == false`. 0 = none.
  int max_iterations = 0;
  /// Keep the BFS onion layers (needed for counterexample extraction).
  bool keep_layers = true;
  /// Degrade instead of failing when the ambient ResourceGovernor trips
  /// mid-fixpoint: a node/byte/allocation budget hit falls back to widening
  /// (overapproximation, like `node_budget`); a deadline or cancellation
  /// stops the iteration with `converged == false` (underapproximation —
  /// verdicts become kUnknown). When false, governor errors propagate and
  /// fail the run.
  bool degrade_on_budget = false;
};

struct ReachStats {
  int iterations = 0;
  std::size_t peak_live_nodes = 0;  // max live BDD nodes over the fixpoint
  std::size_t reached_nodes = 0;    // node count of the final reached set
  double reached_states = 0;        // sat_count over the present variables
  std::uint64_t gc_runs = 0;        // in-fixpoint garbage collections
  int widenings = 0;                // budget-triggered overapproximations
  int budget_recoveries = 0;        // governor trips recovered by widening
  int shards = 0;                   // image workers (0 = serial path)
  /// Per-worker high-water arena sizes (parallel path only; index = shard).
  std::vector<std::size_t> worker_peak_nodes;
  std::uint64_t worker_gc_runs = 0;  // collections across worker managers
  bool exact = true;
  /// True iff the fixpoint ran until the frontier emptied. A widened run is
  /// converged-but-inexact: `reached` OVERapproximates, so an empty bad
  /// intersection still proves safety. A non-converged run (iteration cap,
  /// deadline, cancellation) leaves an UNDERapproximation — nothing can be
  /// proved from it, only found (verdicts degrade to kUnknown).
  bool converged = true;
};

struct ReachResult {
  bdd::Bdd reached;
  /// layers[k] = states first reached after exactly k steps (layers[0] is
  /// the initial state). Empty when not kept or after widening.
  std::vector<bdd::Bdd> layers;
  ReachStats stats;
};

ReachResult reachable_states(const TransitionSystem& tr,
                             const ReachOptions& options = {});

}  // namespace polis::verif
