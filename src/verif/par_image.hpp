// Sharded image computation for the reachability fixpoint: the disjunctive
// transition-relation clusters are distributed across pool workers, each
// owning a private BddManager with translated copies of its clusters, so a
// fixpoint step computes per-cluster images concurrently and merges the
// partial frontiers back on the main manager.
//
// Concurrency model: share-nothing managers, serialized handoff. During a
// step the main thread blocks in `wait_idle` and performs no BDD work, so
// every worker may read the main arena concurrently (`copy_across` of the
// frontier is a pure read of the source); between steps only the main
// thread touches the worker managers (merge, garbage collection,
// teardown). The thread pool's queue mutex provides the happens-before
// edges in both directions.
//
// Determinism: BDD canonicity makes the merged image independent of merge
// structure — equal functions have equal handles per manager, so the union
// of the partial images is the same canonical BDD the serial `image`
// computes, in the same manager, whatever the thread count. The merge
// still runs in ascending shard order so node allocation (and therefore
// arena layout, GC timing and obs counters) is reproducible run to run.
//
// Budgets: workers install the caller's ambient ResourceGovernor, so node
// and byte budgets stay global across all worker managers. A worker trip
// surfaces at the step barrier (after `wait_idle`) and rethrows on the
// main thread in ascending shard order, where the fixpoint's widen /
// kUnknown ladder handles it exactly as in the serial path. Worker
// managers are created and destroyed on the caller's thread under its
// governor scope, so every charge is refunded on teardown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/bdd.hpp"
#include "util/thread_pool.hpp"
#include "verif/transition.hpp"

namespace polis::verif {

class ParallelImage {
 public:
  /// Shards `tr`'s clusters across `min(num_threads, clusters)` workers
  /// (LPT on relation node counts, so one fat cluster does not serialize
  /// the step) and copies each worker's clusters into its private manager.
  /// `num_threads` must be >= 1; pass the effective thread count, not 0.
  ParallelImage(const TransitionSystem& tr, int num_threads);
  ~ParallelImage();

  ParallelImage(const ParallelImage&) = delete;
  ParallelImage& operator=(const ParallelImage&) = delete;

  /// Forward image of `from` (a BDD on the main manager) under the whole
  /// partitioned relation, returned on the main manager. Equal to
  /// `verif::image(tr, from)` as a function — and therefore as a handle.
  bdd::Bdd image(const bdd::Bdd& from);

  /// Collects any worker manager whose unique table exceeds `threshold`
  /// nodes. Main-thread only, between steps. Returns collections run.
  std::uint64_t collect_garbage(std::size_t threshold);

  int shards() const { return static_cast<int>(workers_.size()); }

  struct WorkerStats {
    std::size_t clusters = 0;          // clusters assigned by the schedule
    std::size_t relation_nodes = 0;    // schedule weight (sum of relations)
    std::size_t peak_nodes = 0;        // high-water arena of the worker
    std::uint64_t copy_cache_hits = 0; // frontier translations reused
  };
  std::vector<WorkerStats> worker_stats() const;

 private:
  struct ShardCluster {
    bdd::Bdd relation;                 // on the worker manager
    std::vector<int> quantify_present;
    int rename_map = -1;               // registered on the worker manager
  };
  struct Worker {
    std::unique_ptr<bdd::BddManager> mgr;
    std::vector<ShardCluster> clusters;
    bdd::CopyCache to_worker;    // main frontier -> worker manager
    bdd::CopyCache from_worker;  // worker partial image -> main manager
    bdd::Bdd partial;            // this step's partial image (worker side)
    std::size_t relation_nodes = 0;
    std::size_t peak_nodes = 0;
  };

  const TransitionSystem* tr_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace polis::verif
