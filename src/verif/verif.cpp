#include "verif/verif.hpp"

#include "bdd/bdd.hpp"
#include "obs/obs.hpp"
#include "verif/care.hpp"
#include "verif/encode.hpp"

namespace polis::verif {

VerifyResult verify_network(const cfsm::Network& network,
                            const VerifyOptions& options) {
  OBS_SPAN(span, "verify_network", "verif");
  if (span.armed()) span.arg("network", network.name());

  bdd::BddManager mgr;
  NetworkEncoding enc(network, mgr);
  TransitionSystem tr = build_transition_system(enc, options.transition);
  const ReachResult reach = reachable_states(tr, options.reach);

  VerifyResult result;
  result.reach = reach.stats;
  result.clusters = tr.clusters.size();
  for (const Cluster& c : tr.clusters) result.transitions += c.transitions;
  {
    OBS_SPAN(stage, "verif.check_assertions", "verif");
    result.assertions = check_assertions(tr, reach, options.enum_limit);
  }
  if (options.check_lost_events) {
    OBS_SPAN(stage, "verif.check_lost_events", "verif");
    result.lost_events = check_no_lost_events(tr, reach);
  }
  // Care filters come only from an *exact* reached set: an overapproximation
  // would be sound too (a superset of care is just less effective), but
  // keeping them exact makes the reported code-size win reproducible.
  if (options.extract_care && reach.stats.exact) {
    OBS_SPAN(stage, "verif.extract_care", "verif");
    result.care_filters =
        care_filters_by_machine(enc, reach.reached, options.enum_limit);
  }
  if (span.armed()) {
    span.arg("clusters", result.clusters);
    span.arg("transitions", result.transitions);
  }
  return result;
}

}  // namespace polis::verif
