#include "verif/verif.hpp"

#include "bdd/bdd.hpp"
#include "obs/obs.hpp"
#include "util/governor.hpp"
#include "verif/care.hpp"
#include "verif/encode.hpp"

namespace polis::verif {

VerifyResult verify_network(const cfsm::Network& network,
                            const VerifyOptions& options) {
  OBS_SPAN(span, "verify_network", "verif");
  if (span.armed()) span.arg("network", network.name());

  try {
    bdd::BddManager mgr;
    NetworkEncoding enc(network, mgr);
    TransitionSystem tr = build_transition_system(enc, options.transition);
    const ReachResult reach = reachable_states(tr, options.reach);

    VerifyResult result;
    result.reach = reach.stats;
    result.clusters = tr.clusters.size();
    for (const Cluster& c : tr.clusters) result.transitions += c.transitions;
    {
      OBS_SPAN(stage, "verif.check_assertions", "verif");
      result.assertions = check_assertions(tr, reach, options.enum_limit);
    }
    if (options.check_lost_events) {
      OBS_SPAN(stage, "verif.check_lost_events", "verif");
      result.lost_events = check_no_lost_events(tr, reach);
    }
    // Care filters come only from an *exact* reached set: an
    // overapproximation would be sound too (a superset of care is just less
    // effective), but keeping them exact makes the reported code-size win
    // reproducible. (An underapproximation would be UNSOUND — excluded but
    // reachable combos would miscompile — which is why `exact` is cleared on
    // every non-converged path.)
    if (options.extract_care && reach.stats.exact) {
      OBS_SPAN(stage, "verif.extract_care", "verif");
      result.care_filters =
          care_filters_by_machine(enc, reach.reached, options.enum_limit);
    }
    if (span.armed()) {
      span.arg("clusters", result.clusters);
      span.arg("transitions", result.transitions);
    }
    return result;
  } catch (const RecoverableError&) {
    // The fixpoint degrades internally; a budget blown while *encoding* the
    // network or checking properties cannot. Under degrade mode that still
    // must not fail the run: report every property honestly unknown.
    if (!options.reach.degrade_on_budget) throw;
    if (ResourceGovernor* gov = ResourceGovernor::current())
      gov->note_degradation("verification abandoned on budget; unknown");
    VerifyResult fallback;
    fallback.reach.exact = false;
    fallback.reach.converged = false;
    for (const Property& p : assertion_properties(network)) {
      CheckResult r;
      r.property = p;
      r.verdict = Verdict::kUnknown;
      fallback.assertions.push_back(std::move(r));
    }
    fallback.lost_events.sound = false;
    return fallback;
  }
}

}  // namespace polis::verif
