// Global don't-cares from symbolic reachability (the tentpole feedback
// loop): the reached set projected onto each machine's local view becomes a
// `cfsm::CareFilter`, so s-graph synthesis restricts its characteristic
// function to combinations the *network* can actually reach — strictly
// stronger than the per-CFSM local analysis whenever the environment or the
// upstream machines can never produce some input/state combination.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "bdd/bdd.hpp"
#include "cfsm/reactive.hpp"
#include "verif/encode.hpp"

namespace polis::verif {

/// Builds one care filter per machine *name* (keys match
/// `core::SynthesisOptions::care_filter_by_machine`): a local (snapshot,
/// state) combination is cared about iff some instance of that machine can
/// observe it in some reachable global state. Machines whose local concrete
/// space exceeds `enum_limit` are skipped (no filter — synthesis falls back
/// to the local care set). Filters are self-contained and thread-safe.
std::map<std::string, cfsm::CareFilter> care_filters_by_machine(
    NetworkEncoding& enc, const bdd::Bdd& reached,
    std::uint64_t enum_limit = 1u << 20);

}  // namespace polis::verif
