#include "verif/enumerate.hpp"

#include <deque>
#include <map>
#include <set>
#include <string>

#include "util/check.hpp"

namespace polis::verif {

GlobalState initial_global_state(const cfsm::Network& network) {
  GlobalState s;
  for (const cfsm::Instance& inst : network.instances()) {
    s.state[inst.name] = inst.machine->initial_state();
    for (const cfsm::Signal& in : inst.machine->inputs())
      s.buffers[inst.name][in.name] = GlobalState::Buffer{};
  }
  return s;
}

namespace {

/// Delivers `value` into every consumer buffer of `net` (1-place overwrite).
void deliver(const cfsm::Net& net, std::int64_t value, GlobalState& s) {
  for (const auto& [ci, cp] : net.consumers)
    s.buffers.at(ci).at(cp) = GlobalState::Buffer{true, value};
}

}  // namespace

void apply_env_event(const cfsm::Network& network, const std::string& net,
                     std::int64_t value, GlobalState& s) {
  const std::map<std::string, cfsm::Net> nets = network.nets();
  auto nit = nets.find(net);
  POLIS_CHECK_MSG(nit != nets.end(), "unknown net " << net);
  deliver(nit->second, value, s);
}

bool apply_machine_step(const cfsm::Network& network,
                        const std::string& instance, GlobalState& s) {
  const std::map<std::string, cfsm::Net> nets = network.nets();
  const cfsm::Instance& inst = network.instance(instance);
  const auto& bufs = s.buffers.at(inst.name);
  cfsm::Snapshot snap;
  bool any_present = false;
  for (const auto& [port, buf] : bufs) {
    if (!buf.present) continue;
    any_present = true;
    snap.present[port] = true;
    const cfsm::Signal* in = inst.machine->find_input(port);
    if (in != nullptr && !in->is_pure()) snap.value[port] = buf.value;
  }
  if (!any_present) return false;
  const cfsm::Reaction reaction =
      inst.machine->react(snap, s.state.at(inst.name));
  if (!reaction.fired) return false;  // stutter: events preserved, no change
  s.state[inst.name] = reaction.next_state;
  for (auto& [port, buf] : s.buffers.at(inst.name))
    buf = GlobalState::Buffer{};  // snapshot consumed
  for (const auto& [sig, value] : reaction.emissions) {
    auto nit = nets.find(inst.net_of(sig));
    if (nit != nets.end()) deliver(nit->second, value, s);
  }
  return true;
}

std::vector<GlobalState> successor_states(const cfsm::Network& network,
                                          const GlobalState& s) {
  const std::map<std::string, cfsm::Net> nets = network.nets();
  std::vector<GlobalState> out;

  // Environment: one delivery on one external input net.
  for (const std::string& net_name : network.external_inputs()) {
    const cfsm::Net& net = nets.at(net_name);
    const int values = net.domain <= 1 ? 1 : net.domain;
    for (int v = 0; v < values; ++v) {
      GlobalState next = s;
      deliver(net, v, next);
      out.push_back(std::move(next));
    }
  }

  // Machines: one enabled instance fires atomically.
  for (const cfsm::Instance& inst : network.instances()) {
    GlobalState next = s;
    if (apply_machine_step(network, inst.name, next))
      out.push_back(std::move(next));
  }
  return out;
}

std::optional<std::vector<GlobalState>> enumerate_reachable_states(
    const cfsm::Network& network, std::uint64_t limit) {
  std::set<GlobalState> seen;
  std::deque<GlobalState> queue;
  const GlobalState init = initial_global_state(network);
  seen.insert(init);
  queue.push_back(init);
  while (!queue.empty()) {
    const GlobalState s = std::move(queue.front());
    queue.pop_front();
    for (GlobalState& next : successor_states(network, s)) {
      if (!seen.insert(next).second) continue;
      if (seen.size() > limit) return std::nullopt;
      queue.push_back(std::move(next));
    }
  }
  return std::vector<GlobalState>(seen.begin(), seen.end());
}

}  // namespace polis::verif
