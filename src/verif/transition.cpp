#include "verif/transition.hpp"

#include <map>
#include <set>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace polis::verif {

namespace {

/// XNOR frame condition: every bit of the slot keeps its value.
bdd::Bdd frame_bits(bdd::BddManager& mgr, const std::vector<VarPair>& bits) {
  bdd::Bdd frame = mgr.one();
  for (const VarPair& b : bits)
    frame = frame & !(mgr.var(b.next) ^ mgr.var(b.present));
  return frame;
}

}  // namespace

TransitionSystem build_transition_system(NetworkEncoding& enc,
                                         const TransitionOptions& options) {
  OBS_SPAN(span, "verif.build_transition_system", "verif");
  bdd::BddManager& mgr = enc.manager();
  const cfsm::Network& network = enc.network();
  const std::map<std::string, cfsm::Net> nets = network.nets();

  TransitionSystem tr;
  tr.enc = &enc;

  auto append_bits = [](Cluster& c, std::set<int>& seen,
                        const std::vector<VarPair>& bits) {
    for (const VarPair& b : bits) {
      if (!seen.insert(b.present).second) continue;
      c.modified.push_back(b);
      c.quantify_present.push_back(b.present);
      c.quantify_next.push_back(b.next);
    }
  };

  // --- One cluster per machine instance (an atomic reaction) ---------------
  for (const cfsm::Instance& inst : network.instances()) {
    const cfsm::Cfsm& machine = *inst.machine;
    Cluster c;
    c.kind = Cluster::Kind::kMachineStep;
    c.subject = inst.name;
    c.relation = mgr.zero();
    c.overwrite_risk = mgr.zero();

    // Modified set: own state bits, own input buffers (consumed), and the
    // consumer buffers of every net this instance can emit to.
    std::set<int> seen;
    std::vector<const BufferSlot*> modified_buffers;
    for (const StateSlot& s : enc.state_slots())
      if (s.instance == inst.name) append_bits(c, seen, s.bits);
    auto add_buffer = [&](const BufferSlot& slot) {
      const size_t before = seen.size();
      std::vector<VarPair> bits;
      bits.push_back(slot.presence);
      bits.insert(bits.end(), slot.value_bits.begin(), slot.value_bits.end());
      append_bits(c, seen, bits);
      if (seen.size() != before) modified_buffers.push_back(&slot);
    };
    for (const cfsm::Signal& in : machine.inputs())
      add_buffer(enc.buffer_slot(inst.name, in.name));
    for (const cfsm::Signal& out : machine.outputs()) {
      auto nit = nets.find(inst.net_of(out.name));
      if (nit == nets.end()) continue;
      for (const auto& [ci, cp] : nit->second.consumers)
        add_buffer(enc.buffer_slot(ci, cp));
    }

    // Per-slot frame conditions, built once and reused across combos.
    std::map<const BufferSlot*, bdd::Bdd> frames;
    for (const BufferSlot* slot : modified_buffers) {
      std::vector<VarPair> bits;
      bits.push_back(slot->presence);
      bits.insert(bits.end(), slot->value_bits.begin(),
                  slot->value_bits.end());
      frames.emplace(slot, frame_bits(mgr, bits));
    }

    const bool complete = cfsm::enumerate_concrete_space(
        machine, options.enum_limit,
        [&](const cfsm::Snapshot& snap,
            const std::map<std::string, std::int64_t>& st) {
          // Only enabled (some event pending), canonical combinations step.
          bool any_present = false;
          for (const cfsm::Signal& in : machine.inputs()) {
            if (snap.is_present(in.name)) any_present = true;
            else if (snap.value_of(in.name) != 0) return;  // non-canonical
          }
          if (!any_present) return;
          const cfsm::Reaction reaction = machine.react(snap, st);
          if (!reaction.fired) return;  // stutter: events preserved
          ++c.transitions;

          const bdd::Bdd guard = enc.local_combo_cube(inst.name, snap, st);
          bdd::Bdd t = guard;
          for (const StateSlot& s : enc.state_slots())
            if (s.instance == inst.name)
              t = t & enc.value_cube(s.bits, reaction.next_state.at(s.var),
                                     /*next=*/true);

          // Buffer effects: consuming clears the own input buffers; each
          // emission then overwrites its consumers (in emission order, as the
          // RTOS delivers), including a self-loop back into an own port.
          std::map<const BufferSlot*, GlobalState::Buffer> buffer_next;
          for (const cfsm::Signal& in : machine.inputs())
            buffer_next[&enc.buffer_slot(inst.name, in.name)] =
                GlobalState::Buffer{};
          bdd::Bdd risk = mgr.zero();
          for (const auto& [sig, value] : reaction.emissions) {
            auto nit = nets.find(inst.net_of(sig));
            if (nit == nets.end()) continue;
            for (const auto& [ci, cp] : nit->second.consumers) {
              const BufferSlot& slot = enc.buffer_slot(ci, cp);
              // A pending event in our own input buffer is part of the
              // snapshot this step consumes — overwriting it loses nothing.
              if (ci != inst.name)
                risk = risk | mgr.var(slot.presence.present);
              buffer_next[&slot] = GlobalState::Buffer{true, value};
            }
          }
          for (const auto& [slot, buf] : buffer_next) {
            t = t & enc.literal(slot->presence, buf.present, /*next=*/true);
            t = t & enc.value_cube(slot->value_bits, buf.value, /*next=*/true);
          }
          for (const BufferSlot* slot : modified_buffers)
            if (buffer_next.count(slot) == 0) t = t & frames.at(slot);

          c.relation = c.relation | t;
          if (!risk.is_zero()) c.overwrite_risk = c.overwrite_risk | (guard & risk);
        });
    POLIS_CHECK_MSG(complete, "transition relation for machine '"
                                  << machine.name()
                                  << "' exceeds the enumeration limit");
    tr.clusters.push_back(std::move(c));
  }

  // --- One cluster per external input net (environment delivery) ----------
  for (const std::string& net_name : network.external_inputs()) {
    const cfsm::Net& net = nets.at(net_name);
    Cluster c;
    c.kind = Cluster::Kind::kEnvEvent;
    c.subject = net_name;
    c.relation = mgr.zero();
    c.overwrite_risk = mgr.zero();

    std::set<int> seen;
    std::vector<const BufferSlot*> targets;
    for (const auto& [ci, cp] : net.consumers) {
      const BufferSlot& slot = enc.buffer_slot(ci, cp);
      std::vector<VarPair> bits;
      bits.push_back(slot.presence);
      bits.insert(bits.end(), slot.value_bits.begin(), slot.value_bits.end());
      append_bits(c, seen, bits);
      targets.push_back(&slot);
      c.overwrite_risk = c.overwrite_risk | mgr.var(slot.presence.present);
    }

    const int values = net.domain <= 1 ? 1 : net.domain;
    for (int v = 0; v < values; ++v) {
      bdd::Bdd t = mgr.one();
      for (const BufferSlot* slot : targets) {
        t = t & enc.literal(slot->presence, true, /*next=*/true);
        t = t & enc.value_cube(slot->value_bits, v, /*next=*/true);
      }
      c.relation = c.relation | t;
      ++c.transitions;
    }
    tr.clusters.push_back(std::move(c));
  }
  for (Cluster& c : tr.clusters)
    c.rename_map = register_next_to_present(mgr, c.modified);
  if (span.armed()) {
    span.arg("clusters", tr.clusters.size());
    std::uint64_t transitions = 0;
    for (const Cluster& c : tr.clusters)
      transitions += static_cast<std::uint64_t>(c.transitions);
    span.arg("transitions", transitions);
  }
  return tr;
}

int register_next_to_present(bdd::BddManager& mgr,
                             const std::vector<VarPair>& modified) {
  std::vector<std::pair<int, int>> map;
  map.reserve(modified.size());
  for (const VarPair& b : modified) map.emplace_back(b.next, b.present);
  return mgr.register_rename(map);
}

bdd::Bdd image_one(const TransitionSystem& tr, const Cluster& cluster,
                   const bdd::Bdd& from) {
  bdd::BddManager& mgr = tr.enc->manager();
  // Early quantification: only this cluster's present bits are conjoined
  // away; unmodified bits pass through untouched.
  bdd::Bdd img =
      mgr.and_exists(from, cluster.relation, cluster.quantify_present);
  // After quantification the present twins are gone from the support, and
  // the interleaved order keeps each next bit directly below its present
  // twin — the relabel is a pure structural pass (see BddManager::rename).
  return mgr.rename(img, cluster.rename_map);
}

bdd::Bdd image(const TransitionSystem& tr, const bdd::Bdd& from) {
  bdd::BddManager& mgr = tr.enc->manager();
  bdd::Bdd img = mgr.zero();
  for (const Cluster& c : tr.clusters) img = img | image_one(tr, c, from);
  return img;
}

}  // namespace polis::verif
