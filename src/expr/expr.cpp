#include "expr/expr.hpp"

#include <array>
#include <sstream>

#include "util/check.hpp"

namespace polis::expr {

std::int64_t apply_op(Op op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDiv: return b == 0 ? 0 : a / b;
    case Op::kMod: return b == 0 ? 0 : a % b;
    case Op::kEq: return a == b;
    case Op::kNe: return a != b;
    case Op::kLt: return a < b;
    case Op::kLe: return a <= b;
    case Op::kGt: return a > b;
    case Op::kGe: return a >= b;
    case Op::kAnd: return (a != 0 && b != 0) ? 1 : 0;
    case Op::kOr: return (a != 0 || b != 0) ? 1 : 0;
    default: POLIS_CHECK_MSG(false, "not a binary op"); return 0;
  }
}

namespace {

bool is_const(const ExprRef& e, std::int64_t v) {
  return e->op() == Op::kConst && e->value() == v;
}

std::int64_t apply_binary(Op op, std::int64_t a, std::int64_t b) {
  return apply_op(op, a, b);
}

}  // namespace

ExprRef Expr::make_const(std::int64_t v) {
  return ExprRef(new Expr(Op::kConst, v, {}, {}));
}

ExprRef Expr::make_var(std::string name) {
  POLIS_CHECK(!name.empty());
  return ExprRef(new Expr(Op::kVar, 0, std::move(name), {}));
}

ExprRef Expr::make(Op op, std::vector<ExprRef> args) {
  for (const ExprRef& a : args) POLIS_CHECK(a != nullptr);
  return ExprRef(new Expr(op, 0, {}, std::move(args)));
}

ExprRef constant(std::int64_t v) { return Expr::make_const(v); }
ExprRef var(std::string name) { return Expr::make_var(std::move(name)); }

ExprRef neg(ExprRef a) {
  if (a->op() == Op::kConst) return constant(-a->value());
  return Expr::make(Op::kNeg, {std::move(a)});
}

ExprRef lnot(ExprRef a) {
  if (a->op() == Op::kConst) return constant(a->value() == 0 ? 1 : 0);
  return Expr::make(Op::kNot, {std::move(a)});
}

namespace {

// True when the expression can only evaluate to 0 or 1.
bool is_boolean_valued(const ExprRef& e) {
  switch (e->op()) {
    case Op::kConst:
      return e->value() == 0 || e->value() == 1;
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kAnd:
    case Op::kOr:
    case Op::kNot:
      return true;
    default:
      return false;
  }
}

// 0/1-normalised view of `e` (logical operators must return 0/1 even when
// an identity fold would otherwise pass an arbitrary integer through).
ExprRef as_boolean(ExprRef e) {
  if (is_boolean_valued(e)) return e;
  if (e->op() == Op::kConst) return constant(e->value() != 0 ? 1 : 0);
  return Expr::make(Op::kNe, {std::move(e), constant(0)});
}

ExprRef binary(Op op, ExprRef a, ExprRef b) {
  if (a->op() == Op::kConst && b->op() == Op::kConst)
    return constant(apply_binary(op, a->value(), b->value()));
  // A few cheap identities; anything deeper is the BDD layer's job.
  switch (op) {
    case Op::kAdd:
      if (is_const(a, 0)) return b;
      if (is_const(b, 0)) return a;
      break;
    case Op::kSub:
      if (is_const(b, 0)) return a;
      break;
    case Op::kMul:
      if (is_const(a, 1)) return b;
      if (is_const(b, 1)) return a;
      if (is_const(a, 0) || is_const(b, 0)) return constant(0);
      break;
    case Op::kAnd:
      if (is_const(a, 1)) return as_boolean(b);
      if (is_const(b, 1)) return as_boolean(a);
      if (is_const(a, 0) || is_const(b, 0)) return constant(0);
      break;
    case Op::kOr:
      if (is_const(a, 0)) return as_boolean(b);
      if (is_const(b, 0)) return as_boolean(a);
      if (is_const(a, 1) || is_const(b, 1)) return constant(1);
      break;
    default:
      break;
  }
  return Expr::make(op, {std::move(a), std::move(b)});
}

}  // namespace

ExprRef add(ExprRef a, ExprRef b) { return binary(Op::kAdd, a, b); }
ExprRef sub(ExprRef a, ExprRef b) { return binary(Op::kSub, a, b); }
ExprRef mul(ExprRef a, ExprRef b) { return binary(Op::kMul, a, b); }
ExprRef div(ExprRef a, ExprRef b) { return binary(Op::kDiv, a, b); }
ExprRef mod(ExprRef a, ExprRef b) { return binary(Op::kMod, a, b); }
ExprRef eq(ExprRef a, ExprRef b) { return binary(Op::kEq, a, b); }
ExprRef ne(ExprRef a, ExprRef b) { return binary(Op::kNe, a, b); }
ExprRef lt(ExprRef a, ExprRef b) { return binary(Op::kLt, a, b); }
ExprRef le(ExprRef a, ExprRef b) { return binary(Op::kLe, a, b); }
ExprRef gt(ExprRef a, ExprRef b) { return binary(Op::kGt, a, b); }
ExprRef ge(ExprRef a, ExprRef b) { return binary(Op::kGe, a, b); }
ExprRef land(ExprRef a, ExprRef b) { return binary(Op::kAnd, a, b); }
ExprRef lor(ExprRef a, ExprRef b) { return binary(Op::kOr, a, b); }

ExprRef ite(ExprRef c, ExprRef t, ExprRef e) {
  if (c->op() == Op::kConst) return c->value() != 0 ? t : e;
  return Expr::make(Op::kIte, {std::move(c), std::move(t), std::move(e)});
}

std::int64_t evaluate(const Expr& e, const Env& env) {
  switch (e.op()) {
    case Op::kConst: return e.value();
    case Op::kVar: return env(e.name());
    case Op::kNeg: return -evaluate(*e.args()[0], env);
    case Op::kNot: return evaluate(*e.args()[0], env) == 0 ? 1 : 0;
    case Op::kIte:
      return evaluate(*e.args()[0], env) != 0 ? evaluate(*e.args()[1], env)
                                              : evaluate(*e.args()[2], env);
    case Op::kAnd:  // short-circuit like the generated C does
      return (evaluate(*e.args()[0], env) != 0 &&
              evaluate(*e.args()[1], env) != 0)
                 ? 1
                 : 0;
    case Op::kOr:
      return (evaluate(*e.args()[0], env) != 0 ||
              evaluate(*e.args()[1], env) != 0)
                 ? 1
                 : 0;
    default:
      return apply_binary(e.op(), evaluate(*e.args()[0], env),
                          evaluate(*e.args()[1], env));
  }
}

namespace {

void collect_support(const Expr& e, std::set<std::string>& out) {
  if (e.op() == Op::kVar) {
    out.insert(e.name());
    return;
  }
  for (const ExprRef& a : e.args()) collect_support(*a, out);
}

// C operator precedence (higher binds tighter).
int precedence(Op op) {
  switch (op) {
    case Op::kConst:
    case Op::kVar: return 100;
    case Op::kNeg:
    case Op::kNot: return 90;
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod: return 80;
    case Op::kAdd:
    case Op::kSub: return 70;
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: return 60;
    case Op::kEq:
    case Op::kNe: return 50;
    case Op::kAnd: return 40;
    case Op::kOr: return 30;
    case Op::kIte: return 20;
  }
  return 0;
}

const char* symbol(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kAnd: return "&&";
    case Op::kOr: return "||";
    default: return "?";
  }
}

void print_c(const Expr& e, int parent_prec, std::ostream& os) {
  const int prec = precedence(e.op());
  const bool paren = prec < parent_prec;
  if (paren) os << '(';
  switch (e.op()) {
    case Op::kConst: os << e.value(); break;
    case Op::kVar: os << e.name(); break;
    case Op::kNeg:
      os << '-';
      print_c(*e.args()[0], 91, os);
      break;
    case Op::kNot:
      os << '!';
      print_c(*e.args()[0], 91, os);
      break;
    case Op::kIte:
      print_c(*e.args()[0], 21, os);
      os << " ? ";
      print_c(*e.args()[1], 21, os);
      os << " : ";
      print_c(*e.args()[2], 20, os);
      break;
    case Op::kDiv:
    case Op::kMod: {
      const Expr& den = *e.args()[1];
      if (den.op() == Op::kConst) {
        if (den.value() == 0) {
          os << '0';  // apply_op and the VM define x/0 == x%0 == 0
        } else {
          print_c(*e.args()[0], prec, os);
          os << ' ' << symbol(e.op()) << ' ';
          print_c(den, prec + 1, os);
        }
        break;
      }
      // Runtime guard matching apply_op and the VM: x/0 == x%0 == 0.
      // Operands of generated C are pure reads, so printing the divisor
      // twice is sound. Always parenthesized: the ternary binds looser
      // than the division this node claims via `prec`.
      os << '(';
      print_c(den, 51, os);
      os << " == 0 ? 0 : ";
      print_c(*e.args()[0], prec, os);
      os << ' ' << symbol(e.op()) << ' ';
      print_c(den, prec + 1, os);
      os << ')';
      break;
    }
    default:
      print_c(*e.args()[0], prec, os);
      os << ' ' << symbol(e.op()) << ' ';
      print_c(*e.args()[1], prec + 1, os);
      break;
  }
  if (paren) os << ')';
}

}  // namespace

std::set<std::string> support(const Expr& e) {
  std::set<std::string> out;
  collect_support(e, out);
  return out;
}

std::string to_c(const Expr& e) {
  std::ostringstream os;
  print_c(e, 0, os);
  return os.str();
}

bool equal(const Expr& a, const Expr& b) {
  if (&a == &b) return true;
  if (a.op() != b.op()) return false;
  switch (a.op()) {
    case Op::kConst: return a.value() == b.value();
    case Op::kVar: return a.name() == b.name();
    default:
      if (a.args().size() != b.args().size()) return false;
      for (size_t i = 0; i < a.args().size(); ++i)
        if (!equal(*a.args()[i], *b.args()[i])) return false;
      return true;
  }
}

size_t hash(const Expr& e) {
  size_t h = std::hash<int>()(static_cast<int>(e.op()));
  auto mix = [&h](size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  switch (e.op()) {
    case Op::kConst: mix(std::hash<std::int64_t>()(e.value())); break;
    case Op::kVar: mix(std::hash<std::string>()(e.name())); break;
    default:
      for (const ExprRef& a : e.args()) mix(hash(*a));
      break;
  }
  return h;
}

std::vector<int> op_histogram(const Expr& e) {
  std::vector<int> hist(static_cast<size_t>(Op::kIte) + 1, 0);
  auto walk = [&hist](const Expr& n, auto&& self) -> void {
    hist[static_cast<size_t>(n.op())]++;
    for (const ExprRef& a : n.args()) self(*a, self);
  };
  walk(e, walk);
  return hist;
}

int op_count(const Expr& e) {
  if (e.op() == Op::kConst || e.op() == Op::kVar) return 0;
  int n = 1;
  for (const ExprRef& a : e.args()) n += op_count(*a);
  return n;
}

}  // namespace polis::expr
