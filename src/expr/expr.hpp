// Side-effect-free arithmetic/relational/Boolean expression trees.
//
// These are the labels of s-graph TEST and ASSIGN vertices (paper §III-A):
// TEST vertices carry a predicate, ASSIGN vertices carry a value expression.
// The paper assumes expressions have no side effects so synthesis may reorder
// them freely; the only partial operation, division, is "implemented safely"
// (§III-B1) — here division/modulo by zero evaluates to 0.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace polis::expr {

enum class Op {
  kConst,  // integer literal
  kVar,    // named variable
  kNeg,    // unary minus
  kNot,    // logical negation (result 0/1)
  kAdd,
  kSub,
  kMul,
  kDiv,  // safe: x / 0 == 0
  kMod,  // safe: x % 0 == 0
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,  // logical
  kOr,   // logical
  kIte,  // if-then-else over integer values
};

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Immutable expression node. Build via the factory functions below.
class Expr {
 public:
  Op op() const { return op_; }
  std::int64_t value() const { return value_; }     // kConst only
  const std::string& name() const { return name_; } // kVar only
  const std::vector<ExprRef>& args() const { return args_; }

  static ExprRef make_const(std::int64_t v);
  static ExprRef make_var(std::string name);
  static ExprRef make(Op op, std::vector<ExprRef> args);

 private:
  Expr(Op op, std::int64_t value, std::string name, std::vector<ExprRef> args)
      : op_(op), value_(value), name_(std::move(name)),
        args_(std::move(args)) {}

  Op op_;
  std::int64_t value_ = 0;
  std::string name_;
  std::vector<ExprRef> args_;
};

// --- Factories (with local constant folding) --------------------------------

ExprRef constant(std::int64_t v);
ExprRef var(std::string name);
ExprRef neg(ExprRef a);
ExprRef lnot(ExprRef a);
ExprRef add(ExprRef a, ExprRef b);
ExprRef sub(ExprRef a, ExprRef b);
ExprRef mul(ExprRef a, ExprRef b);
ExprRef div(ExprRef a, ExprRef b);
ExprRef mod(ExprRef a, ExprRef b);
ExprRef eq(ExprRef a, ExprRef b);
ExprRef ne(ExprRef a, ExprRef b);
ExprRef lt(ExprRef a, ExprRef b);
ExprRef le(ExprRef a, ExprRef b);
ExprRef gt(ExprRef a, ExprRef b);
ExprRef ge(ExprRef a, ExprRef b);
ExprRef land(ExprRef a, ExprRef b);
ExprRef lor(ExprRef a, ExprRef b);
ExprRef ite(ExprRef c, ExprRef t, ExprRef e);

// --- Queries -----------------------------------------------------------------

/// Environment mapping variable names to integer values.
using Env = std::function<std::int64_t(const std::string&)>;

/// Applies a binary operator to concrete values (division/modulo by zero
/// yield 0; logical operators return 0/1). Shared with the VM's ALU.
std::int64_t apply_op(Op op, std::int64_t a, std::int64_t b);

/// Evaluates `e` under `env`. Logical/relational results are 0 or 1.
std::int64_t evaluate(const Expr& e, const Env& env);

/// Set of variable names `e` depends on.
std::set<std::string> support(const Expr& e);

/// Renders as a C expression (parenthesised by precedence).
std::string to_c(const Expr& e);

/// Structural equality.
bool equal(const Expr& a, const Expr& b);

/// Structural hash (consistent with equal()).
size_t hash(const Expr& e);

/// Number of operator nodes of each kind, for cost estimation. Indexed by
/// static_cast<size_t>(Op).
std::vector<int> op_histogram(const Expr& e);

/// Total number of operator nodes (excluding leaves).
int op_count(const Expr& e);

}  // namespace polis::expr
