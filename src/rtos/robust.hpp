// Robustness evaluation of a synthesized system: sweep the fault space (N
// seeded runs of one simulation under a scaled FaultPlan), aggregate
// per-net loss rates and worst observed latencies, and cross-check the
// zero-fault worst case against the §III-C/§V PERT max-path bound from the
// estimator (estim::network_latency_bounds). This is the pre-deployment
// check the paper's estimation layer exists for, extended from "does the
// nominal run meet its constraints" to "how much fault does it absorb
// before it stops meeting them".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rtos/rtos.hpp"

namespace polis::rtos {

struct RobustnessReport {
  int fault_runs = 0;
  long long faults_injected = 0;  // perturbations applied across all runs
  // Per net, summed over the fault runs.
  std::map<std::string, long long> emitted;
  std::map<std::string, long long> lost;
  // Worst observed input->output latency per external-output net.
  std::map<std::string, long long> baseline_worst_latency;  // zero faults
  std::map<std::string, long long> fault_worst_latency;     // under faults
  // §V cross-check (only for nets with a bound provided).
  std::map<std::string, long long> latency_bound;
  std::vector<std::string> bound_violations_baseline;  // nets over bound
  std::vector<std::string> bound_violations_faulted;   // pushed over by faults
  long long deadline_misses = 0;
  int aborted_runs = 0;
  int watchdog_fires = 0;

  /// Lost-event fraction for one net (0 when it never carried an event).
  double lost_rate(const std::string& net) const;

  /// Deterministic, byte-stable rendering (asserted identical across runs
  /// with the same seed).
  std::string to_string() const;
};

struct FaultSweepOptions {
  int runs = 8;                  // seeded fault runs (seeds base_seed + i)
  std::uint64_t base_seed = 1;
  long long horizon = 100'000'000;
  /// PERT max-path bound per external-output net, e.g. from
  /// estim::network_latency_bounds(); empty disables the cross-check.
  std::map<std::string, long long> latency_bounds;
};

/// Registers every task implementation on a freshly built simulation.
using TaskBinder = std::function<void(RtosSimulation&)>;

/// Runs one zero-fault baseline plus `options.runs` seeded fault runs of
/// `config` (whose FaultPlan supplies the perturbations) and aggregates.
RobustnessReport sweep_faults(const cfsm::Network& network,
                              const RtosConfig& config,
                              const TaskBinder& bind_tasks,
                              const std::vector<ExternalEvent>& events,
                              const FaultSweepOptions& options = {});

/// Smallest fault magnitude that first violates a deadline: scans
/// m = 1/steps, 2/steps, …, 1, running once per step with
/// `config.faults.scaled(m)`, and returns the first m producing a deadline
/// miss or an aborted run; -1 when even the full plan stays clean.
double find_breaking_magnitude(const cfsm::Network& network,
                               const RtosConfig& config,
                               const TaskBinder& bind_tasks,
                               const std::vector<ExternalEvent>& events,
                               int steps = 20,
                               long long horizon = 100'000'000);

}  // namespace polis::rtos
