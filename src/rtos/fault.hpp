// Deterministic fault injection and graceful-degradation policies for the
// generated RTOS — the robustness layer over the paper's §II-D/§IV
// semantics.
//
// A FaultPlan perturbs one simulation run: environment events can be
// dropped, delayed or duplicated (§IV-C delivery stress), ISR/polling
// overheads spiked, reaction execution times jittered by a bounded factor
// (§III-C estimation stress), and designated tasks stalled at dispatch
// (§IV-A scheduling stress). Every perturbation is drawn from one stream
// seeded by FaultPlan::seed, in a fixed order (per external event in input
// order, then per dispatch in simulation order), so any failing trace
// replays byte-identically from its seed.
//
// The degradation policies replace the paper's single hard-wired behaviour
// (silent 1-place-buffer overwrite) with per-net overflow policies,
// per-task deadline monitors, and a global watchdog that turns livelock or
// starvation into a diagnostic instead of an endless spin. With an empty
// plan and all policies at their defaults the simulation is exactly the
// paper's.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace polis::rtos {

/// What to do when an event lands on a 1-place buffer that already holds an
/// undetected event (§II-D). The paper's semantics is kOverwrite.
enum class OverflowPolicy {
  kOverwrite,            // paper default: newest wins, old event lost
  kDropNew,              // oldest wins, new event lost
  kAbortWithDiagnostic,  // terminate the run with a diagnostic
};

/// Per-task deadline monitor: a reaction completing more than
/// `deadline_cycles` after the earliest event that enabled it is a miss.
struct DeadlineMonitor {
  enum class MissAction {
    kCount,         // record the miss only
    kFlushRestart,  // also drop all pending inputs and reset the task state
    kDemote,        // also lower the task's priority by demote_by
  };
  long long deadline_cycles = 0;  // 0 disables the monitor
  MissAction action = MissAction::kCount;
  int demote_by = 10;  // for kDemote (larger value = lower priority)
};

/// Global watchdog; a limit of 0 disables that check.
struct WatchdogConfig {
  /// Livelock: abort after this many reactions with no external output.
  long long livelock_reactions = 0;
  /// Starvation: abort when a runnable task waits longer than this without
  /// being dispatched.
  long long starvation_cycles = 0;

  bool enabled() const {
    return livelock_reactions > 0 || starvation_cycles > 0;
  }
};

/// Stalling fault for one designated task: with `probability`, an
/// activation is preceded by `cycles` of dispatch stall (charged as CPU
/// overhead, so it delays everything behind it).
struct StallFault {
  double probability = 1.0;
  long long cycles = 0;
};

/// A seeded, replayable perturbation of one simulation run.
struct FaultPlan {
  std::uint64_t seed = 1;

  // --- Environment-event faults (drawn per external event, input order) ---
  double drop_probability = 0.0;       // event never delivered
  double delay_probability = 0.0;      // event late by U[1, max_delay]
  long long max_delay = 0;
  double duplicate_probability = 0.0;  // event re-emitted duplicate_gap later
  long long duplicate_gap = 1;
  /// ISR / polling-routine overhead spike: the delivery is `spike_cycles`
  /// late and the spike is charged as overhead.
  double spike_probability = 0.0;
  long long spike_cycles = 0;

  // --- Execution-time faults (drawn per dispatch, simulation order) -------
  /// Reaction cycles grow by up to this bounded factor: c *= 1 + U[0, j].
  double exec_jitter = 0.0;
  /// Task name -> stall fault applied at its dispatches.
  std::map<std::string, StallFault> stalls;

  /// True when the plan perturbs nothing (the paper-faithful default).
  bool empty() const {
    return drop_probability <= 0 && delay_probability <= 0 &&
           duplicate_probability <= 0 && spike_probability <= 0 &&
           exec_jitter <= 0 && stalls.empty();
  }

  /// The plan with every probability and the jitter factor scaled by `m`
  /// (clamped to [0, 1]); magnitudes in cycles are unchanged. Used to find
  /// the smallest fault magnitude that first violates a deadline.
  FaultPlan scaled(double m) const {
    auto clamp01 = [](double p) { return p < 0 ? 0.0 : (p > 1 ? 1.0 : p); };
    FaultPlan out = *this;
    out.drop_probability = clamp01(drop_probability * m);
    out.delay_probability = clamp01(delay_probability * m);
    out.duplicate_probability = clamp01(duplicate_probability * m);
    out.spike_probability = clamp01(spike_probability * m);
    out.exec_jitter = exec_jitter * m;
    for (auto& [task, stall] : out.stalls)
      stall.probability = clamp01(stall.probability * m);
    return out;
  }
};

/// What a run actually injected (for reports and determinism checks).
struct FaultCounts {
  long long drops = 0;
  long long delays = 0;
  long long duplicates = 0;
  long long spikes = 0;
  long long stalls = 0;
  long long jittered = 0;

  long long total() const {
    return drops + delays + duplicates + spikes + stalls + jittered;
  }
};

}  // namespace polis::rtos
