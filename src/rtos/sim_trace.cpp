#include "rtos/sim_trace.hpp"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace polis::rtos {

void record_sim_trace(const cfsm::Network& network, const SimStats& stats,
                      obs::TraceRecorder& recorder) {
  if (!recorder.enabled()) return;

  // Lane layout: one lane per task (declaration order, tids from 1), plus a
  // trailing "events" lane for net emissions and injected faults.
  std::map<std::string, std::uint32_t> lane_of;
  std::uint32_t next_tid = 1;
  for (const cfsm::Instance& inst : network.instances()) {
    lane_of[inst.name] = next_tid;
    recorder.name_sim_lane(next_tid, "task " + inst.name);
    ++next_tid;
  }
  const std::uint32_t events_lane = next_tid;
  recorder.name_sim_lane(events_lane, "events");

  const auto complete = [&](std::uint32_t tid, std::string name,
                            const char* cat, long long ts, long long dur,
                            std::vector<obs::TraceArg> args = {}) {
    obs::TraceEvent e;
    e.name = std::move(name);
    e.cat = cat;
    e.ph = 'X';
    e.ts = ts;
    e.dur = dur;
    e.pid = obs::kPidSim;
    e.tid = tid;
    e.args = std::move(args);
    recorder.record(std::move(e));
  };
  const auto instant = [&](std::uint32_t tid, std::string name,
                           const char* cat, long long ts,
                           std::vector<obs::TraceArg> args = {}) {
    obs::TraceEvent e;
    e.name = std::move(name);
    e.cat = cat;
    e.ph = 'i';
    e.ts = ts;
    e.pid = obs::kPidSim;
    e.tid = tid;
    e.args = std::move(args);
    recorder.record(std::move(e));
  };

  // A task runs at most one reaction at a time (snapshot freezing), so one
  // open slot per task suffices; -1 = no reaction in flight.
  std::map<std::string, long long> open_since;
  for (const LogEvent& e : stats.log) {
    switch (e.kind) {
      case LogEvent::Kind::kTaskStart:
        open_since[e.subject] = e.time;
        break;
      case LogEvent::Kind::kTaskEnd: {
        auto it = open_since.find(e.subject);
        if (it == open_since.end()) break;  // end without start: skip
        auto lane = lane_of.find(e.subject);
        if (lane != lane_of.end())
          complete(lane->second, e.subject, "rtos", it->second,
                   e.time - it->second);
        open_since.erase(it);
        break;
      }
      case LogEvent::Kind::kEmission:
        instant(events_lane, "emit " + e.subject, "net", e.time,
                {{"value", std::to_string(e.value)}});
        break;
      case LogEvent::Kind::kDelivery:
        break;  // mirrors emissions; omitted, as in the VCD export
      case LogEvent::Kind::kFault:
        instant(events_lane, "fault: " + e.subject, "fault", e.time,
                {{"magnitude", std::to_string(e.value)}});
        break;
      case LogEvent::Kind::kDeadlineMiss: {
        auto lane = lane_of.find(e.subject);
        instant(lane != lane_of.end() ? lane->second : events_lane,
                "deadline miss", "fault", e.time,
                {{"response_cycles", std::to_string(e.value)}});
        break;
      }
    }
  }

  // Reactions the abort cut short never logged kTaskEnd: close their spans
  // at the end of simulated time so every lane terminates cleanly.
  for (const auto& [task, since] : open_since) {
    auto lane = lane_of.find(task);
    if (lane == lane_of.end()) continue;
    complete(lane->second, task, "rtos", since, stats.end_time - since,
             {{"aborted", "true"}});
  }
}

}  // namespace polis::rtos
