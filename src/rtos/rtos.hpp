// The automatically generated RTOS (§IV) and a cycle-level discrete-event
// simulation of a network of sw-CFSMs running under it on one processor.
//
// Responsibilities reproduced from the paper:
//   * scheduling of sw-CFSMs (round-robin or static priority, with or
//     without preemption, §IV-A);
//   * event emission/detection between sw-CFSMs via per-task private flags
//     with one-place buffers — re-emission before detection overwrites and
//     loses the event (§II-D, §IV-B);
//   * delivery of environment ("hw-CFSM") events by interrupt (immediate,
//     with ISR overhead) or by polling (delayed to the next polling tick,
//     §IV-C);
//   * snapshot consistency: a task's input flags are frozen when it starts
//     reading them; events arriving during its execution are buffered and
//     merged afterwards, so no impossible event combination is ever observed
//     (§IV-D); a reaction that fires no rule preserves its input events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "rtos/fault.hpp"

namespace polis::rtos {

class VcdWriter;

struct RtosConfig {
  enum class Policy { kRoundRobin, kStaticPriority };
  Policy policy = Policy::kRoundRobin;
  bool preemptive = false;
  long long context_switch_cycles = 40;

  enum class HwDelivery { kInterrupt, kPolling };
  HwDelivery delivery = HwDelivery::kInterrupt;
  long long isr_overhead_cycles = 25;
  long long polling_period = 2000;
  long long polling_routine_cycles = 60;

  /// Static priorities (lower value = higher priority). Instances absent
  /// from the map default to priority 100, ties broken by declaration order.
  std::map<std::string, int> priority;

  /// Record a full event log in SimStats::log (task activations, event
  /// emissions and deliveries) for inspection / VCD export.
  bool collect_log = false;

  /// Streaming VCD export: every log event is forwarded to this writer as
  /// it happens, and `VcdWriter::finish(end_time)` runs when the simulation
  /// ends — including the abort path (degradation policies, watchdog), so a
  /// terminated run still produces a loadable waveform. Independent of
  /// `collect_log`. The writer must outlive `run()`; null = disabled.
  VcdWriter* live_vcd = nullptr;

  /// §IV-C: "the user has the option to specify that for designated events,
  /// all sw-CFSMs sensitive to that event are also to be executed inside
  /// the ISR. In this way, the most critical tasks can be given immediate
  /// attention." External events on these nets run their consumers
  /// immediately at delivery time, ahead of any scheduling policy.
  std::set<std::string> isr_executed_events;

  /// §IV-A: "the user can also instruct the system to bypass the RTOS and
  /// chain certain executions of CFSMs into a single task, thus reducing
  /// scheduling and communication overhead." When a task in a chain
  /// completes and its emissions enable a *later* member of the same chain,
  /// that member runs immediately, paying `chain_link_cycles` instead of a
  /// full context switch.
  std::vector<std::vector<std::string>> chains;
  long long chain_link_cycles = 5;

  /// Hardware/software partitioning (the co-design dimension, §I-A/§IV-C):
  /// instances in this set are hw-CFSMs — they react immediately at event
  /// delivery, take `hw_reaction_cycles` of wall-clock (not CPU) time, and
  /// never occupy the processor or the scheduler.
  std::set<std::string> hardware_instances;
  long long hw_reaction_cycles = 1;

  /// Robustness layer (all defaults preserve the paper's exact semantics).
  /// Seeded fault injection; a plan with `empty() == true` is a no-op.
  FaultPlan faults;
  /// 1-place buffer overflow policy: per-net override, else the default.
  OverflowPolicy overflow_default = OverflowPolicy::kOverwrite;
  std::map<std::string, OverflowPolicy> overflow_by_net;
  /// Per-task deadline monitors, by instance name.
  std::map<std::string, DeadlineMonitor> deadline_monitors;
  /// Livelock/starvation watchdog; disabled by default.
  WatchdogConfig watchdog;

  /// Streaming telemetry: when > 0 (and series recording is enabled), the
  /// simulator publishes SimStats deltas into the metrics registry and ticks
  /// one simulated-cycle epoch every `metrics_epoch_cycles` cycles. Epochs
  /// are driven purely by deterministic simulation state, so the resulting
  /// JSONL series is byte-identical across identical runs. 0 = end-of-run
  /// publishing only (the historical behavior).
  long long metrics_epoch_cycles = 0;

  /// Observability probes, e.g. for confirming a verif counterexample by
  /// replay. `on_task_start` fires at every dispatch with the frozen input
  /// snapshot and the pre-reaction state; `on_task_end` fires at completion
  /// with the post-reaction state. Hardware instances fire both around their
  /// immediate reaction. Null = disabled; probes take no simulated time.
  std::function<void(const std::string& task, long long time,
                     const cfsm::Snapshot& snapshot,
                     const std::map<std::string, std::int64_t>& state)>
      on_task_start;
  std::function<void(const std::string& task, long long time,
                     const std::map<std::string, std::int64_t>& state)>
      on_task_end;
};

/// One entry of the simulation event log.
struct LogEvent {
  enum class Kind {
    kTaskStart,
    kTaskEnd,
    kEmission,
    kDelivery,
    kFault,         // an injected perturbation ("drop net", "stall task", …)
    kDeadlineMiss,  // subject = task, value = observed response time
  };
  long long time = 0;
  Kind kind = Kind::kEmission;
  std::string subject;      // task name or net name
  std::int64_t value = 0;   // event value (emission/delivery)
};

/// One external stimulus to an input net of the network.
struct ExternalEvent {
  long long time = 0;
  std::string net;
  std::int64_t value = 0;
};

/// Executes one reaction of one task; must fill `cycles` with the execution
/// time of that reaction in CPU cycles.
using ReactFn = std::function<cfsm::Reaction(
    const cfsm::Snapshot& snapshot,
    const std::map<std::string, std::int64_t>& state, long long* cycles)>;

struct ObservedEmission {
  long long time = 0;  // completion time of the emitting reaction
  std::string net;
  std::int64_t value = 0;
  std::string producer;  // instance name ("env" for external stimuli)
};

struct SimStats {
  long long end_time = 0;
  long long busy_cycles = 0;          // CPU time in reactions
  long long overhead_cycles = 0;      // scheduler/ISR/polling/context switches
  long long reactions_run = 0;
  long long empty_reactions = 0;      // executed but no rule fired
  std::map<std::string, long long> lost_events;   // net -> overwritten count
  std::map<std::string, long long> emitted_events;  // net -> emission count
  std::vector<ObservedEmission> outputs;          // external outputs
  std::vector<LogEvent> log;                      // when collect_log is set
  /// Latency samples per external-output net: time from the environment
  /// stimulus that triggered the causal chain to the output emission.
  std::map<std::string, std::vector<long long>> input_to_output_latency;
  /// Robustness layer outcomes.
  FaultCounts injected;                           // perturbations applied
  std::map<std::string, long long> deadline_misses;  // task -> miss count
  bool aborted = false;         // a policy or the watchdog ended the run
  bool watchdog_fired = false;  // the abort came from the watchdog
  std::string diagnostic;       // why, naming the offending net/task + time
  double utilization() const {
    return end_time > 0
               ? static_cast<double>(busy_cycles + overhead_cycles) /
                     static_cast<double>(end_time)
               : 0.0;
  }
};

/// Simulates the network under the generated RTOS until all external events
/// are delivered and the system is quiescent (or `horizon` is reached).
class RtosSimulation {
 public:
  RtosSimulation(const cfsm::Network& network, RtosConfig config);

  /// Registers the software implementation of one instance.
  void set_task(const std::string& instance, ReactFn fn);

  /// Convenience: implement an instance with the reference interpreter and
  /// a fixed reaction cost.
  void set_reference_task(const std::string& instance, long long cycles);

  SimStats run(const std::vector<ExternalEvent>& events,
               long long horizon = 100'000'000);

 private:
  struct TaskState {
    std::string name;
    const cfsm::Instance* instance = nullptr;
    ReactFn react;
    std::map<std::string, std::int64_t> state;
    // Per input port: pending event (presence + value + emission time).
    struct Flag {
      bool present = false;
      std::int64_t value = 0;
      long long emit_time = 0;
      long long stimulus_time = 0;  // originating external stimulus
    };
    std::map<std::string, Flag> flags;     // by port name
    std::map<std::string, Flag> incoming;  // buffered while running
    bool running = false;
    int priority = 100;
    int decl_index = 0;
  };

  bool enabled(const TaskState& t) const;

  const cfsm::Network* network_;
  RtosConfig config_;
  std::vector<TaskState> tasks_;
  std::map<std::string, cfsm::Net> nets_;
};

}  // namespace polis::rtos
