// Environment event-trace generators for RTOS simulations and benchmarks:
// periodic sources (sensors, timers) with optional jitter, and Poisson
// sources (sporadic operator inputs).
#pragma once

#include <string>
#include <vector>

#include "rtos/rtos.hpp"
#include "util/rng.hpp"

namespace polis::rtos {

struct PeriodicSource {
  std::string net;
  long long period = 1000;
  long long phase = 0;
  double jitter_fraction = 0.0;  // uniform in ±jitter*period (needs rng)
  int value_domain = 1;          // >1: random value in [0, domain)
};

std::vector<ExternalEvent> periodic_trace(const PeriodicSource& source,
                                          long long until, Rng* rng = nullptr);

std::vector<ExternalEvent> poisson_trace(const std::string& net,
                                         double mean_gap, long long until,
                                         Rng& rng, int value_domain = 1);

/// Bursty source: every `period` cycles, `burst` events arrive spaced `gap`
/// cycles apart. Back-to-back arrivals (gap smaller than the consumer's
/// reaction time) are the canonical way to provoke the §II-D one-place
/// buffer overwrite, so this is the workhorse stimulus for robustness
/// sweeps and lost-event tests.
std::vector<ExternalEvent> burst_trace(const std::string& net,
                                       long long period, int burst,
                                       long long gap, long long until,
                                       int value_domain = 1,
                                       Rng* rng = nullptr);

/// Merges traces into one time-sorted stream.
std::vector<ExternalEvent> merge_traces(
    std::vector<std::vector<ExternalEvent>> traces);

}  // namespace polis::rtos
