// VCD (Value Change Dump, IEEE 1364) export of an RTOS simulation log, so
// the scheduling and event traffic of a synthesized system can be inspected
// in any waveform viewer (GTKWave etc.):
//
//   * one 1-bit wire per task — high while the task's reaction runs;
//   * one 1-bit event wire per net — pulses at each emission;
//   * one integer register per net — the last emitted value;
//   * a "robustness" scope with 1-bit `fault` / `deadline_miss` wires that
//     pulse at each injected fault and deadline-monitor miss.
//
// Requires a SimStats produced with RtosConfig::collect_log = true.
#pragma once

#include <iosfwd>

#include "cfsm/network.hpp"
#include "rtos/rtos.hpp"

namespace polis::rtos {

/// Writes the log as a VCD document. `timescale` is a free-form VCD
/// timescale string; one simulation cycle maps to one timescale unit.
void write_vcd(const cfsm::Network& network, const SimStats& stats,
               std::ostream& os, const std::string& timescale = "1us");

}  // namespace polis::rtos
