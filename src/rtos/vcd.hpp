// VCD (Value Change Dump, IEEE 1364) export of an RTOS simulation log, so
// the scheduling and event traffic of a synthesized system can be inspected
// in any waveform viewer (GTKWave etc.):
//
//   * one 1-bit wire per task — high while the task's reaction runs;
//   * one 1-bit event wire per net — pulses at each emission;
//   * one integer register per net — the last emitted value;
//   * a "robustness" scope with 1-bit `fault` / `deadline_miss` wires that
//     pulse at each injected fault and deadline-monitor miss.
//
// `VcdWriter` is the streaming form: the header goes out at construction,
// events are ingested one at a time (e.g. live from the simulator via
// `RtosConfig::live_vcd`), and `finish` closes the document — sorting the
// accumulated value changes into time order, dropping any task wire that is
// still high (a reaction cut short by an abort), stamping the final time and
// flushing the stream. The simulator calls `finish` on its abort path too
// (degradation policies, watchdog), so a truncated run still yields a
// loadable waveform instead of one with wires stuck high and no end time.
//
// `write_vcd` is the post-hoc convenience: it replays a recorded
// `SimStats::log` (requires RtosConfig::collect_log = true) through a
// `VcdWriter` and produces byte-identical output to a live writer fed the
// same events.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "cfsm/network.hpp"
#include "rtos/rtos.hpp"

namespace polis::rtos {

class VcdWriter {
 public:
  /// Writes the VCD header (signal declarations + initial $dumpvars) for
  /// `network` immediately. `timescale` is a free-form VCD timescale string;
  /// one simulation cycle maps to one timescale unit. The stream must
  /// outlive the writer.
  VcdWriter(const cfsm::Network& network, std::ostream& os,
            const std::string& timescale = "1us");

  /// Ingests one simulation event. Events need not arrive in time order;
  /// they are sorted at `finish` time (VCD bodies must be monotonic).
  void on_event(const LogEvent& event);

  /// Writes the body: all ingested changes in time order, a 0-drop at
  /// `end_time` for every task wire still high, the final timestamp
  /// (≥ `end_time`), then flushes the stream. Idempotent — only the first
  /// call writes.
  void finish(long long end_time);

  bool finished() const { return finished_; }

 private:
  void push(long long time, std::string text);

  std::ostream* os_;
  std::map<std::string, std::string> task_wire_;  // task -> id
  std::map<std::string, std::string> net_pulse_;  // net -> id
  std::map<std::string, std::string> net_value_;  // net -> id
  std::string fault_wire_;
  std::string miss_wire_;
  std::map<std::string, bool> task_high_;  // wire currently driven high
  struct Change {
    long long time;
    std::string text;
  };
  std::vector<Change> changes_;
  bool finished_ = false;
};

/// Writes the log as a VCD document (replay through a `VcdWriter`).
void write_vcd(const cfsm::Network& network, const SimStats& stats,
               std::ostream& os, const std::string& timescale = "1us");

}  // namespace polis::rtos
