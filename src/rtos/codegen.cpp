#include "rtos/codegen.hpp"

#include <map>
#include <sstream>

#include "util/strings.hpp"

namespace polis::rtos {

namespace {

// Stable ids: nets in lexicographic order, tasks in declaration order.
std::map<std::string, int> net_ids(const cfsm::Network& network) {
  std::map<std::string, int> ids;
  int next = 0;
  for (const auto& [name, net] : network.nets()) {
    (void)net;
    ids[name] = next++;
  }
  return ids;
}

}  // namespace

std::string generate_rt_header(const cfsm::Network& network) {
  std::ostringstream os;
  os << "/* polis_rt.h — generated RTOS interface for network '"
     << network.name() << "'. */\n"
     << "#ifndef POLIS_RT_H\n#define POLIS_RT_H\n\n";
  const std::map<std::string, int> ids = net_ids(network);
  for (const auto& [name, id] : ids)
    os << "#define SIG_" << c_identifier(name) << " " << id << "\n";
  os << "\nlong polis_wrap(long value, long domain);\n"
     << "int  polis_detect(int sig);\n"
     << "void polis_emit(int sig);\n"
     << "void polis_emit_value(int sig, long value);\n"
     << "void polis_consume(void);\n"
     << "long polis_value(int sig);\n"
     << "/* Provided by the environment: called for emissions on nets with\n"
     << " * no software consumer (the system's external outputs). */\n"
     << "void polis_observe(int sig, long value);\n\n"
     << "#endif /* POLIS_RT_H */\n";
  return os.str();
}

std::string generate_rtos_c(const cfsm::Network& network,
                            const RtosConfig& config) {
  std::ostringstream os;
  const std::map<std::string, int> ids = net_ids(network);
  const size_t n_tasks = network.instances().size();
  const size_t n_nets = ids.size();

  os << "/* Generated RTOS for network '" << network.name() << "' (§IV).\n"
     << " * Policy: "
     << (config.policy == RtosConfig::Policy::kRoundRobin ? "round-robin"
                                                          : "static priority")
     << (config.preemptive ? ", preemptive" : ", non-preemptive")
     << "; hw->sw delivery: "
     << (config.delivery == RtosConfig::HwDelivery::kInterrupt ? "interrupt"
                                                               : "polling")
     << ". */\n"
     << "#include \"polis_rt.h\"\n\n"
     << "#define N_TASKS " << n_tasks << "\n"
     << "#define N_NETS  " << n_nets << "\n\n";

  // Task table: entry points (one routine per *instance*), priorities.
  for (const cfsm::Instance& inst : network.instances())
    os << "extern void cfsm_" << c_identifier(inst.name) << "(void);\n";
  os << "\nstatic void (*const task_entry[N_TASKS])(void) = {\n";
  for (const cfsm::Instance& inst : network.instances())
    os << "  cfsm_" << c_identifier(inst.name) << ", /* "
       << inst.machine->name() << " */\n";
  os << "};\n";

  if (config.policy == RtosConfig::Policy::kStaticPriority) {
    os << "static const int task_priority[N_TASKS] = {";
    for (size_t i = 0; i < n_tasks; ++i) {
      const std::string& name = network.instances()[i].name;
      auto it = config.priority.find(name);
      os << (i != 0 ? ", " : " ")
         << (it != config.priority.end() ? it->second : 100);
    }
    os << " };\n";
  }
  os << "\n";

  // Fixed sensitivity: for each net, the list of (task, flag slot) pairs.
  os << "/* Per-task private event flags (1-place buffers, §IV-B), plus a\n"
     << " * pending buffer that freezes the running task's snapshot: events\n"
     << " * arriving (e.g. from an ISR) while a task reads its flags are\n"
     << " * deferred to its next execution (§IV-D). */\n"
     << "static int  flag_present[N_TASKS][N_NETS];\n"
     << "static long flag_value[N_TASKS][N_NETS];\n"
     << "static int  pending_present[N_TASKS][N_NETS];\n"
     << "static long pending_value[N_TASKS][N_NETS];\n"
     << "static int  task_enabled[N_TASKS];\n"
     << "static int  current_task = -1;\n"
     << "static int  current_consumed = 0;\n\n";

  os << "static const int sensitivity[N_NETS][N_TASKS + 1] = {\n";
  for (const auto& [name, id] : ids) {
    (void)id;
    os << "  { ";
    const cfsm::Net net = network.nets().at(name);
    for (const auto& [inst, port] : net.consumers) {
      (void)port;
      for (size_t i = 0; i < n_tasks; ++i)
        if (network.instances()[i].name == inst) os << i << ", ";
    }
    os << "-1 }, /* " << name << " */\n";
  }
  os << "};\n\n";

  os << R"(long polis_wrap(long value, long domain) {
  long m;
  if (domain <= 1) return 0;
  m = value % domain;
  return m < 0 ? m + domain : m;
}

int polis_detect(int sig) { return flag_present[current_task][sig]; }

long polis_value(int sig) { return flag_value[current_task][sig]; }

void polis_consume(void) { current_consumed = 1; }

void polis_emit_value(int sig, long value) {
  const int *t = sensitivity[sig];
  if (*t < 0) { polis_observe(sig, value); return; }  /* external output */
  for (; *t >= 0; ++t) {
    if (*t == current_task) {   /* snapshot frozen: defer (§IV-D) */
      pending_value[*t][sig] = value;
      pending_present[*t][sig] = 1;
    } else {
      flag_value[*t][sig] = value;  /* value before presence (§II-D) */
      flag_present[*t][sig] = 1;
      task_enabled[*t] = 1;
    }
  }
}

void polis_emit(int sig) { polis_emit_value(sig, 0); }

static void run_task(int t) {
  int s;
  current_task = t;
  current_consumed = 0;
  task_enabled[t] = 0;          /* enablement is edge-triggered (§IV-A) */
  task_entry[t]();
  if (current_consumed) {       /* §IV-D: consume only if a rule fired */
    for (s = 0; s < N_NETS; ++s) flag_present[t][s] = 0;
  }
  current_task = -1;
  for (s = 0; s < N_NETS; ++s) {  /* merge the deferred arrivals */
    if (!pending_present[t][s]) continue;
    flag_present[t][s] = 1;       /* overwrites a preserved event */
    flag_value[t][s] = pending_value[t][s];
    pending_present[t][s] = 0;
    task_enabled[t] = 1;
  }
}

)";

  if (config.policy == RtosConfig::Policy::kRoundRobin) {
    os << R"(void polis_scheduler_step(void) {
  static int cursor = 0;
  int k;
  for (k = 0; k < N_TASKS; ++k) {
    int t = (cursor + k) % N_TASKS;
    if (task_enabled[t]) {
      cursor = (t + 1) % N_TASKS;
      run_task(t);
      return;
    }
  }
}
)";
  } else {
    os << R"(void polis_scheduler_step(void) {
  int t, best = -1;
  for (t = 0; t < N_TASKS; ++t) {
    if (!task_enabled[t]) continue;
    if (best < 0 || task_priority[t] < task_priority[best]) best = t;
  }
  if (best >= 0) run_task(best);
}
)";
  }

  if (config.delivery == RtosConfig::HwDelivery::kPolling) {
    os << R"(
/* Polling routine: scheduled every POLIS_POLL_PERIOD; reads the memory-
 * mapped hw-CFSM port bits and turns them into emissions (§IV-C). */
extern unsigned polis_hw_port_read(void);
void polis_poll(void) {
  unsigned bits = polis_hw_port_read();
  int s;
  for (s = 0; s < N_NETS && s < 32; ++s)
    if (bits & (1u << s)) polis_emit(s);
}
)";
  } else {
    os << R"(
/* Interrupt service routine for hw-CFSM events: by default an ISR contains
 * only the emission (§IV-C); critical events may run their consumers inside
 * the ISR via polis_scheduler_step(). */
void polis_isr(int sig) { polis_emit(sig); }
)";
  }
  return os.str();
}

}  // namespace polis::rtos
