#include "rtos/rtos.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace polis::rtos {

namespace {
constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
}

RtosSimulation::RtosSimulation(const cfsm::Network& network, RtosConfig config)
    : network_(&network), config_(std::move(config)), nets_(network.nets()) {
  int decl = 0;
  for (const cfsm::Instance& inst : network.instances()) {
    TaskState t;
    t.name = inst.name;
    t.instance = &inst;
    t.decl_index = decl++;
    auto it = config_.priority.find(inst.name);
    if (it != config_.priority.end()) t.priority = it->second;
    tasks_.push_back(std::move(t));
  }
}

void RtosSimulation::set_task(const std::string& instance, ReactFn fn) {
  for (TaskState& t : tasks_) {
    if (t.name == instance) {
      t.react = std::move(fn);
      return;
    }
  }
  POLIS_CHECK_MSG(false, "no instance named " << instance);
}

void RtosSimulation::set_reference_task(const std::string& instance,
                                        long long cycles) {
  for (TaskState& t : tasks_) {
    if (t.name == instance) {
      const cfsm::Cfsm* m = t.instance->machine.get();
      t.react = [m, cycles](const cfsm::Snapshot& snap,
                            const std::map<std::string, std::int64_t>& st,
                            long long* out_cycles) {
        *out_cycles = cycles;
        return m->react(snap, st);
      };
      return;
    }
  }
  POLIS_CHECK_MSG(false, "no instance named " << instance);
}

bool RtosSimulation::enabled(const TaskState& t) const {
  if (t.running) return false;
  for (const auto& [port, flag] : t.flags)
    if (flag.present) return true;
  return false;
}

// The simulation engine proper lives in run(); tasks, deliveries and the
// preemption stack share its locals through lambdas. Enablement is
// edge-triggered (§IV-A): a task becomes runnable when an event *occurs* at
// its input; executing the task clears runnability even if a non-firing
// reaction preserved the events.
SimStats RtosSimulation::run(const std::vector<ExternalEvent>& events,
                             long long horizon) {
  struct Delivery {
    long long dtime;   // when the flags are actually set
    long long stimulus;  // original environment time (for latency)
    std::string net;
    std::int64_t value;
    bool polled;
  };

  // Initialise task state and runnability.
  for (TaskState& t : tasks_) {
    POLIS_CHECK_MSG(t.react != nullptr,
                    "no implementation registered for task " << t.name);
    t.state = t.instance->machine->initial_state();
    t.flags.clear();
    t.incoming.clear();
    t.running = false;
  }
  std::vector<bool> runnable(tasks_.size(), false);

  // Delivery schedule: interrupts arrive at the event time; polled events
  // are seen at the next polling tick.
  std::vector<Delivery> schedule;
  schedule.reserve(events.size());
  for (const ExternalEvent& e : events) {
    Delivery d;
    d.stimulus = e.time;
    d.net = e.net;
    d.value = e.value;
    d.polled = config_.delivery == RtosConfig::HwDelivery::kPolling;
    d.dtime = d.polled
                  ? ((e.time + config_.polling_period - 1) /
                     config_.polling_period) *
                        config_.polling_period
                  : e.time;
    schedule.push_back(std::move(d));
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Delivery& a, const Delivery& b) {
                     return a.dtime < b.dtime;
                   });

  SimStats stats;
  size_t next_delivery = 0;
  size_t rr_cursor = 0;

  // --- Helpers ---------------------------------------------------------------

  auto log_event = [&](long long time, LogEvent::Kind kind,
                       const std::string& subject, std::int64_t value) {
    if (!config_.collect_log) return;
    stats.log.push_back(LogEvent{time, kind, subject, value});
  };

  // Executes one reaction of a hw-CFSM (§I-A): instantaneous w.r.t. the
  // CPU, `hw_reaction_cycles` of wall-clock latency, emissions cascade.
  std::function<void(size_t, long long)> run_hardware;

  std::function<void(const std::string&, std::int64_t, long long, long long,
                     const std::string&)>
      deliver_to_consumers;
  deliver_to_consumers = [&](const std::string& net, std::int64_t value,
                             long long now, long long stimulus,
                             const std::string& producer) -> void {
    log_event(now, LogEvent::Kind::kEmission, net, value);
    auto net_it = nets_.find(net);
    if (net_it == nets_.end() || net_it->second.consumers.empty()) {
      // External output: observed by the environment.
      stats.outputs.push_back(ObservedEmission{now, net, value, producer});
      stats.input_to_output_latency[net].push_back(now - stimulus);
      return;
    }
    for (const auto& [inst_name, port] : net_it->second.consumers) {
      for (size_t ti = 0; ti < tasks_.size(); ++ti) {
        TaskState& c = tasks_[ti];
        if (c.name != inst_name) continue;
        auto& target = c.running ? c.incoming : c.flags;
        TaskState::Flag& f = target[port];
        if (f.present) stats.lost_events[net]++;  // 1-place buffer overwrite
        f.present = true;
        f.value = value;
        f.emit_time = now;
        f.stimulus_time = stimulus;
        log_event(now, LogEvent::Kind::kDelivery, c.name, value);
        if (config_.hardware_instances.count(c.name) != 0) {
          run_hardware(ti, now);
        } else if (!c.running) {
          runnable[ti] = true;
        }
      }
    }
  };

  run_hardware = [&](size_t ti, long long now) {
    TaskState& t = tasks_[ti];
    cfsm::Snapshot snap;
    long long stimulus = kInf;
    for (auto& [port, flag] : t.flags) {
      if (!flag.present) continue;
      snap.present[port] = true;
      const cfsm::Signal* in = t.instance->machine->find_input(port);
      if (in != nullptr && !in->is_pure()) snap.value[port] = flag.value;
      stimulus = std::min(stimulus, flag.stimulus_time);
    }
    const std::map<std::string, TaskState::Flag> frozen = t.flags;
    t.flags.clear();
    long long unused_cycles = 0;
    const cfsm::Reaction reaction = t.react(snap, t.state, &unused_cycles);
    stats.reactions_run++;
    if (!reaction.fired) {
      stats.empty_reactions++;
      for (const auto& [port, flag] : frozen)
        if (flag.present) t.flags[port] = flag;
    }
    t.state = reaction.next_state;
    const long long done = now + config_.hw_reaction_cycles;
    for (const auto& [port, value] : reaction.emissions)
      deliver_to_consumers(t.instance->net_of(port), value, done,
                           stimulus == kInf ? done : stimulus, t.name);
  };

  // Set when deliver_due hands an ISR-executed event in: the innermost
  // run_task loop services the designated consumers immediately (§IV-C).
  std::vector<int> isr_ready;

  auto deliver_due = [&](long long now) {
    while (next_delivery < schedule.size() &&
           schedule[next_delivery].dtime <= now) {
      const Delivery& d = schedule[next_delivery++];
      stats.overhead_cycles += d.polled ? config_.polling_routine_cycles
                                        : config_.isr_overhead_cycles;
      deliver_to_consumers(d.net, d.value, d.dtime, d.stimulus, "env");
      if (!d.polled && config_.isr_executed_events.count(d.net) != 0) {
        auto net_it = nets_.find(d.net);
        if (net_it == nets_.end()) continue;
        for (const auto& [inst_name, port] : net_it->second.consumers) {
          (void)port;
          for (size_t ti = 0; ti < tasks_.size(); ++ti)
            if (tasks_[ti].name == inst_name && runnable[ti] &&
                enabled(tasks_[ti]))
              isr_ready.push_back(static_cast<int>(ti));
        }
      }
    }
  };

  auto pick_next = [&]() -> int {
    if (config_.policy == RtosConfig::Policy::kRoundRobin) {
      for (size_t k = 0; k < tasks_.size(); ++k) {
        const size_t i = (rr_cursor + k) % tasks_.size();
        if (runnable[i] && enabled(tasks_[i])) {
          rr_cursor = (i + 1) % tasks_.size();
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    int best = -1;
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (!runnable[i] || !enabled(tasks_[i])) continue;
      if (best < 0 ||
          tasks_[i].priority < tasks_[static_cast<size_t>(best)].priority)
        best = static_cast<int>(i);
    }
    return best;
  };

  // Runs one reaction starting at `start`; returns its completion time.
  // With preemption, higher-priority tasks enabled by mid-run deliveries run
  // inside this call, extending the completion time. `dispatch_cycles` is
  // the scheduling overhead charged for this activation (a full context
  // switch normally, the cheap chain link for §IV-A chained executions).
  auto run_task = [&](int idx, long long start, long long dispatch_cycles,
                      auto&& self) -> long long {
    TaskState& t = tasks_[static_cast<size_t>(idx)];
    runnable[static_cast<size_t>(idx)] = false;

    // Freeze the snapshot (§IV-D): flags are read atomically at start; any
    // event arriving during execution goes to the incoming buffer.
    cfsm::Snapshot snap;
    long long stimulus = kInf;
    for (auto& [port, flag] : t.flags) {
      if (!flag.present) continue;
      snap.present[port] = true;
      const cfsm::Signal* in = t.instance->machine->find_input(port);
      if (in != nullptr && !in->is_pure()) snap.value[port] = flag.value;
      stimulus = std::min(stimulus, flag.stimulus_time);
    }
    std::map<std::string, TaskState::Flag> frozen = t.flags;
    t.flags.clear();
    t.running = true;
    log_event(start, LogEvent::Kind::kTaskStart, t.name, 0);

    long long cycles = 0;
    const cfsm::Reaction reaction = t.react(snap, t.state, &cycles);
    stats.reactions_run++;
    if (!reaction.fired) stats.empty_reactions++;
    stats.busy_cycles += cycles;
    stats.overhead_cycles += dispatch_cycles;

    long long now = start;
    long long remaining = cycles + dispatch_cycles;
    while (remaining > 0) {
      const long long next_d = next_delivery < schedule.size()
                                   ? schedule[next_delivery].dtime
                                   : kInf;
      if (next_d >= now + remaining) {
        now += remaining;
        remaining = 0;
        break;
      }
      remaining -= next_d - now;
      now = next_d;
      deliver_due(now);
      while (!isr_ready.empty()) {  // §IV-C immediate attention
        const int h = isr_ready.back();
        isr_ready.pop_back();
        if (runnable[static_cast<size_t>(h)] &&
            enabled(tasks_[static_cast<size_t>(h)]))
          now = self(h, now, config_.context_switch_cycles, self);
      }
      if (config_.preemptive) {
        while (true) {
          int h = pick_next();
          if (h < 0 ||
              tasks_[static_cast<size_t>(h)].priority >= t.priority)
            break;
          now = self(h, now, config_.context_switch_cycles, self);
        }
      }
    }

    // Completion: apply effects atomically (the reaction delay has elapsed).
    t.state = reaction.next_state;
    if (!reaction.fired) {
      // No rule matched: preserve the input events for the next execution
      // (§IV-D). A fresh arrival for the same port (merged below) overwrites
      // the preserved event, counting it as lost.
      for (const auto& [port, flag] : frozen)
        if (flag.present) t.flags[port] = flag;
    }
    // Merge buffered arrivals.
    bool any_incoming = false;
    for (auto& [port, flag] : t.incoming) {
      if (!flag.present) continue;
      any_incoming = true;
      TaskState::Flag& f = t.flags[port];
      if (f.present) stats.lost_events[t.instance->net_of(port)]++;
      f = flag;
    }
    t.incoming.clear();
    t.running = false;
    if (any_incoming) runnable[static_cast<size_t>(idx)] = true;

    log_event(now, LogEvent::Kind::kTaskEnd, t.name, 0);
    // Emissions propagate at completion time.
    for (const auto& [port, value] : reaction.emissions) {
      deliver_to_consumers(t.instance->net_of(port), value, now,
                           stimulus == kInf ? now : stimulus, t.name);
    }

    // §IV-A chaining: run later members of this task's chain that the
    // emissions just enabled, bypassing the scheduler.
    for (const std::vector<std::string>& chain : config_.chains) {
      auto pos = std::find(chain.begin(), chain.end(), t.name);
      if (pos == chain.end()) continue;
      for (auto next_name = pos + 1; next_name != chain.end(); ++next_name) {
        for (size_t ti = 0; ti < tasks_.size(); ++ti) {
          if (tasks_[ti].name != *next_name || !runnable[ti] ||
              !enabled(tasks_[ti]))
            continue;
          now = self(static_cast<int>(ti), now, config_.chain_link_cycles,
                     self);
        }
      }
      break;
    }
    return now;
  };

  // --- Main loop ----------------------------------------------------------------
  long long now = 0;
  while (now <= horizon) {
    deliver_due(now);
    while (!isr_ready.empty()) {  // §IV-C immediate attention (idle CPU)
      const int h = isr_ready.back();
      isr_ready.pop_back();
      if (runnable[static_cast<size_t>(h)] &&
          enabled(tasks_[static_cast<size_t>(h)]))
        now = run_task(h, now, config_.context_switch_cycles, run_task);
    }
    const int idx = pick_next();
    if (idx >= 0) {
      now = run_task(idx, now, config_.context_switch_cycles, run_task);
      continue;
    }
    if (next_delivery < schedule.size()) {
      now = schedule[next_delivery].dtime;
      continue;
    }
    break;
  }
  stats.end_time = now;
  return stats;
}

}  // namespace polis::rtos
