#include "rtos/rtos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/series.hpp"
#include "rtos/vcd.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"
#include "util/rng.hpp"

namespace polis::rtos {

namespace {
constexpr long long kInf = std::numeric_limits<long long>::max() / 4;

struct SimStatIds {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::MetricsRegistry::Id runs = reg.counter("rtos.runs");
  obs::MetricsRegistry::Id reactions = reg.counter("rtos.reactions_run");
  obs::MetricsRegistry::Id empty = reg.counter("rtos.empty_reactions");
  obs::MetricsRegistry::Id busy = reg.counter("rtos.busy_cycles");
  obs::MetricsRegistry::Id overhead = reg.counter("rtos.overhead_cycles");
  obs::MetricsRegistry::Id lost = reg.counter("rtos.lost_events");
  obs::MetricsRegistry::Id misses = reg.counter("rtos.deadline_misses");
  obs::MetricsRegistry::Id aborted = reg.counter("rtos.aborted_runs");
  obs::MetricsRegistry::Id watchdog = reg.counter("rtos.watchdog_fires");
  obs::MetricsRegistry::Id faults = reg.counter("rtos.injected_faults");
  obs::MetricsRegistry::Id span = reg.histogram("rtos.run_cycles");
  obs::MetricsRegistry::Id latency = reg.histogram("rtos.latency_cycles");
};
const SimStatIds& sim_stat_ids() {
  static const SimStatIds ids;
  return ids;
}

// How much of the in-flight SimStats has already been mirrored into the
// registry; the per-epoch publisher drains against this so the end-of-run
// publish never double-counts.
struct PublishedSim {
  long long reactions = 0;
  long long empty = 0;
  long long busy = 0;
  long long overhead = 0;
  long long lost = 0;
  long long misses = 0;
  long long faults = 0;
};

// Mirrors the monotonic pieces of a (possibly mid-run) SimStats into the
// registry as deltas since the last publish. Called per metrics epoch and
// once at run end.
void publish_sim_deltas(const SimStats& stats, PublishedSim& pub) {
  const SimStatIds& ids = sim_stat_ids();
  obs::MetricsRegistry& reg = ids.reg;
  auto drain = [&](obs::MetricsRegistry::Id id, long long now,
                   long long& last) {
    if (now > last) reg.add(id, static_cast<std::uint64_t>(now - last));
    last = now;
  };
  drain(ids.reactions, stats.reactions_run, pub.reactions);
  drain(ids.empty, stats.empty_reactions, pub.empty);
  drain(ids.busy, stats.busy_cycles, pub.busy);
  drain(ids.overhead, stats.overhead_cycles, pub.overhead);
  long long lost = 0;
  for (const auto& [net, n] : stats.lost_events) lost += n;
  drain(ids.lost, lost, pub.lost);
  long long misses = 0;
  for (const auto& [task, n] : stats.deadline_misses) misses += n;
  drain(ids.misses, misses, pub.misses);
  drain(ids.faults, stats.injected.total(), pub.faults);
}

// End-of-run publish: the remaining deltas plus the once-per-run outcomes.
void publish_sim_stats(const SimStats& stats, PublishedSim& pub) {
  const SimStatIds& ids = sim_stat_ids();
  obs::MetricsRegistry& reg = ids.reg;
  publish_sim_deltas(stats, pub);
  reg.add(ids.runs, 1);
  if (stats.aborted) reg.add(ids.aborted, 1);
  if (stats.watchdog_fired) reg.add(ids.watchdog, 1);
  reg.observe(ids.span, static_cast<std::uint64_t>(stats.end_time));
}

// Internal control-flow: a degradation policy or the watchdog terminates
// the run; caught in run(), never escapes to the caller.
struct AbortSim {
  bool watchdog = false;
  std::string diagnostic;
};
}  // namespace

RtosSimulation::RtosSimulation(const cfsm::Network& network, RtosConfig config)
    : network_(&network), config_(std::move(config)), nets_(network.nets()) {
  int decl = 0;
  for (const cfsm::Instance& inst : network.instances()) {
    TaskState t;
    t.name = inst.name;
    t.instance = &inst;
    t.decl_index = decl++;
    auto it = config_.priority.find(inst.name);
    if (it != config_.priority.end()) t.priority = it->second;
    tasks_.push_back(std::move(t));
  }
}

void RtosSimulation::set_task(const std::string& instance, ReactFn fn) {
  for (TaskState& t : tasks_) {
    if (t.name == instance) {
      t.react = std::move(fn);
      return;
    }
  }
  POLIS_CHECK_MSG(false, "no instance named " << instance);
}

void RtosSimulation::set_reference_task(const std::string& instance,
                                        long long cycles) {
  for (TaskState& t : tasks_) {
    if (t.name == instance) {
      const cfsm::Cfsm* m = t.instance->machine.get();
      t.react = [m, cycles](const cfsm::Snapshot& snap,
                            const std::map<std::string, std::int64_t>& st,
                            long long* out_cycles) {
        *out_cycles = cycles;
        return m->react(snap, st);
      };
      return;
    }
  }
  POLIS_CHECK_MSG(false, "no instance named " << instance);
}

bool RtosSimulation::enabled(const TaskState& t) const {
  if (t.running) return false;
  for (const auto& [port, flag] : t.flags)
    if (flag.present) return true;
  return false;
}

// The simulation engine proper lives in run(); tasks, deliveries and the
// preemption stack share its locals through lambdas. Enablement is
// edge-triggered (§IV-A): a task becomes runnable when an event *occurs* at
// its input; executing the task clears runnability even if a non-firing
// reaction preserved the events.
SimStats RtosSimulation::run(const std::vector<ExternalEvent>& events,
                             long long horizon) {
  OBS_SPAN(run_span, "rtos.simulate", "rtos");
  if (run_span.armed()) {
    run_span.arg("network", network_->name());
    run_span.arg("external_events", events.size());
  }

  struct Delivery {
    long long dtime;   // when the flags are actually set
    long long stimulus;  // original environment time (for latency)
    std::string net;
    std::int64_t value;
    bool polled;
    long long spike = 0;  // injected ISR/polling overhead spike
  };

  // Initialise task state and runnability. Priorities are re-read from the
  // config so a kDemote action in a previous run() does not leak.
  for (TaskState& t : tasks_) {
    POLIS_CHECK_MSG(t.react != nullptr,
                    "no implementation registered for task " << t.name);
    t.state = t.instance->machine->initial_state();
    t.flags.clear();
    t.incoming.clear();
    t.running = false;
    auto it = config_.priority.find(t.name);
    t.priority = it != config_.priority.end() ? it->second : 100;
  }
  std::vector<bool> runnable(tasks_.size(), false);

  SimStats stats;

  auto log_event = [&](long long time, LogEvent::Kind kind,
                       const std::string& subject, std::int64_t value) {
    if (!config_.collect_log && config_.live_vcd == nullptr) return;
    const LogEvent e{time, kind, subject, value};
    if (config_.live_vcd != nullptr) config_.live_vcd->on_event(e);
    if (config_.collect_log) stats.log.push_back(e);
  };

  // All fault perturbations are drawn from this one seeded stream in a
  // fixed order (per event below, then per dispatch inside run_task), so a
  // plan replays byte-identically from its seed.
  const FaultPlan& plan = config_.faults;
  const bool faulty = !plan.empty();
  Rng fault_rng(plan.seed);

  // Delivery schedule: interrupts arrive at the event time; polled events
  // are seen at the next polling tick. Event faults (drop/delay/duplicate/
  // overhead spike) are applied here, before polling quantisation.
  std::vector<Delivery> schedule;
  schedule.reserve(events.size());
  auto push_delivery = [&](long long etime, const ExternalEvent& e) {
    Delivery d;
    d.stimulus = e.time;
    d.net = e.net;
    d.value = e.value;
    d.polled = config_.delivery == RtosConfig::HwDelivery::kPolling;
    d.dtime = d.polled
                  ? ((etime + config_.polling_period - 1) /
                     config_.polling_period) *
                        config_.polling_period
                  : etime;
    if (faulty && plan.spike_probability > 0 && plan.spike_cycles > 0 &&
        fault_rng.flip(plan.spike_probability)) {
      d.spike = plan.spike_cycles;
      d.dtime += d.spike;
      stats.injected.spikes++;
      log_event(d.dtime, LogEvent::Kind::kFault, "spike " + e.net, d.spike);
    }
    schedule.push_back(std::move(d));
  };
  for (const ExternalEvent& e : events) {
    long long etime = e.time;
    if (faulty) {
      if (plan.drop_probability > 0 && fault_rng.flip(plan.drop_probability)) {
        stats.injected.drops++;
        log_event(e.time, LogEvent::Kind::kFault, "drop " + e.net, e.value);
        continue;
      }
      if (plan.delay_probability > 0 && plan.max_delay > 0 &&
          fault_rng.flip(plan.delay_probability)) {
        const long long late = fault_rng.uniform(1, plan.max_delay);
        etime += late;
        stats.injected.delays++;
        log_event(etime, LogEvent::Kind::kFault, "delay " + e.net, late);
      }
    }
    push_delivery(etime, e);
    if (faulty && plan.duplicate_probability > 0 &&
        fault_rng.flip(plan.duplicate_probability)) {
      stats.injected.duplicates++;
      log_event(etime, LogEvent::Kind::kFault, "duplicate " + e.net, e.value);
      push_delivery(etime + std::max<long long>(1, plan.duplicate_gap), e);
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Delivery& a, const Delivery& b) {
                     return a.dtime < b.dtime;
                   });

  size_t next_delivery = 0;
  size_t rr_cursor = 0;

  // --- Helpers ---------------------------------------------------------------

  auto overflow_for = [&](const std::string& net) {
    auto it = config_.overflow_by_net.find(net);
    return it != config_.overflow_by_net.end() ? it->second
                                               : config_.overflow_default;
  };

  // Watchdog state: reactions executed since the last external output, and
  // since when each task has been runnable without being dispatched.
  long long reactions_since_output = 0;
  std::vector<long long> runnable_since(tasks_.size(), -1);
  long long watermark = 0;  // latest simulated time (for abort diagnostics)

  auto note_reaction = [&](const std::string& task, long long now) {
    stats.reactions_run++;
    if (config_.watchdog.livelock_reactions > 0 &&
        ++reactions_since_output > config_.watchdog.livelock_reactions) {
      std::ostringstream os;
      os << "watchdog: livelock — " << reactions_since_output
         << " reactions without an external output (last task " << task
         << " at t=" << now << ")";
      throw AbortSim{true, os.str()};
    }
  };

  auto check_starvation = [&](long long now) {
    if (config_.watchdog.starvation_cycles <= 0) return;
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (!runnable[i] || runnable_since[i] < 0) continue;
      const long long waited = now - runnable_since[i];
      if (waited > config_.watchdog.starvation_cycles) {
        std::ostringstream os;
        os << "watchdog: starvation — task " << tasks_[i].name
           << " runnable for " << waited << " cycles (since t="
           << runnable_since[i] << ") without being dispatched";
        throw AbortSim{true, os.str()};
      }
    }
  };

  // Executes one reaction of a hw-CFSM (§I-A): instantaneous w.r.t. the
  // CPU, `hw_reaction_cycles` of wall-clock latency, emissions cascade.
  std::function<void(size_t, long long)> run_hardware;

  std::function<void(const std::string&, std::int64_t, long long, long long,
                     const std::string&)>
      deliver_to_consumers;
  deliver_to_consumers = [&](const std::string& net, std::int64_t value,
                             long long now, long long stimulus,
                             const std::string& producer) -> void {
    log_event(now, LogEvent::Kind::kEmission, net, value);
    stats.emitted_events[net]++;
    watermark = std::max(watermark, now);
    auto net_it = nets_.find(net);
    if (net_it == nets_.end() || net_it->second.consumers.empty()) {
      // External output: observed by the environment.
      stats.outputs.push_back(ObservedEmission{now, net, value, producer});
      stats.input_to_output_latency[net].push_back(now - stimulus);
      if (now >= stimulus)  // lock-free shard path; epoch sketches read this
        sim_stat_ids().reg.observe(
            sim_stat_ids().latency, static_cast<std::uint64_t>(now - stimulus));
      reactions_since_output = 0;
      return;
    }
    for (const auto& [inst_name, port] : net_it->second.consumers) {
      for (size_t ti = 0; ti < tasks_.size(); ++ti) {
        TaskState& c = tasks_[ti];
        if (c.name != inst_name) continue;
        auto& target = c.running ? c.incoming : c.flags;
        TaskState::Flag& f = target[port];
        if (f.present) {
          // 1-place buffer overflow (§II-D): apply the net's policy.
          stats.lost_events[net]++;
          switch (overflow_for(net)) {
            case OverflowPolicy::kOverwrite:
              break;  // paper default: newest wins
            case OverflowPolicy::kDropNew:
              // Oldest wins: the arriving event is discarded.
              log_event(now, LogEvent::Kind::kFault, "dropnew " + net, value);
              continue;
            case OverflowPolicy::kAbortWithDiagnostic: {
              std::ostringstream os;
              os << "buffer overflow on net " << net << " at t=" << now
                 << ": event from " << producer << " found port " << port
                 << " of task " << c.name << " already full";
              throw AbortSim{false, os.str()};
            }
          }
        }
        f.present = true;
        f.value = value;
        f.emit_time = now;
        f.stimulus_time = stimulus;
        log_event(now, LogEvent::Kind::kDelivery, c.name, value);
        if (config_.hardware_instances.count(c.name) != 0) {
          run_hardware(ti, now);
        } else if (!c.running) {
          if (!runnable[ti]) runnable_since[ti] = now;
          runnable[ti] = true;
        }
      }
    }
  };

  run_hardware = [&](size_t ti, long long now) {
    TaskState& t = tasks_[ti];
    cfsm::Snapshot snap;
    long long stimulus = kInf;
    for (auto& [port, flag] : t.flags) {
      if (!flag.present) continue;
      snap.present[port] = true;
      const cfsm::Signal* in = t.instance->machine->find_input(port);
      if (in != nullptr && !in->is_pure()) snap.value[port] = flag.value;
      stimulus = std::min(stimulus, flag.stimulus_time);
    }
    const std::map<std::string, TaskState::Flag> frozen = t.flags;
    t.flags.clear();
    if (config_.on_task_start) config_.on_task_start(t.name, now, snap, t.state);
    long long unused_cycles = 0;
    const cfsm::Reaction reaction = t.react(snap, t.state, &unused_cycles);
    note_reaction(t.name, now);
    if (!reaction.fired) {
      stats.empty_reactions++;
      for (const auto& [port, flag] : frozen)
        if (flag.present) t.flags[port] = flag;
    }
    t.state = reaction.next_state;
    const long long done = now + config_.hw_reaction_cycles;
    if (config_.on_task_end) config_.on_task_end(t.name, done, t.state);
    for (const auto& [port, value] : reaction.emissions)
      deliver_to_consumers(t.instance->net_of(port), value, done,
                           stimulus == kInf ? done : stimulus, t.name);
  };

  // Set when deliver_due hands an ISR-executed event in: the innermost
  // run_task loop services the designated consumers immediately (§IV-C).
  std::vector<int> isr_ready;

  auto deliver_due = [&](long long now) {
    while (next_delivery < schedule.size() &&
           schedule[next_delivery].dtime <= now) {
      const Delivery& d = schedule[next_delivery++];
      stats.overhead_cycles += (d.polled ? config_.polling_routine_cycles
                                         : config_.isr_overhead_cycles) +
                               d.spike;
      deliver_to_consumers(d.net, d.value, d.dtime, d.stimulus, "env");
      if (!d.polled && config_.isr_executed_events.count(d.net) != 0) {
        auto net_it = nets_.find(d.net);
        if (net_it == nets_.end()) continue;
        for (const auto& [inst_name, port] : net_it->second.consumers) {
          (void)port;
          for (size_t ti = 0; ti < tasks_.size(); ++ti)
            if (tasks_[ti].name == inst_name && runnable[ti] &&
                enabled(tasks_[ti]))
              isr_ready.push_back(static_cast<int>(ti));
        }
      }
    }
  };

  auto pick_next = [&]() -> int {
    if (config_.policy == RtosConfig::Policy::kRoundRobin) {
      for (size_t k = 0; k < tasks_.size(); ++k) {
        const size_t i = (rr_cursor + k) % tasks_.size();
        if (runnable[i] && enabled(tasks_[i])) {
          rr_cursor = (i + 1) % tasks_.size();
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    int best = -1;
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (!runnable[i] || !enabled(tasks_[i])) continue;
      if (best < 0 ||
          tasks_[i].priority < tasks_[static_cast<size_t>(best)].priority)
        best = static_cast<int>(i);
    }
    return best;
  };

  // Runs one reaction starting at `start`; returns its completion time.
  // With preemption, higher-priority tasks enabled by mid-run deliveries run
  // inside this call, extending the completion time. `dispatch_cycles` is
  // the scheduling overhead charged for this activation (a full context
  // switch normally, the cheap chain link for §IV-A chained executions).
  auto run_task = [&](int idx, long long start, long long dispatch_cycles,
                      auto&& self) -> long long {
    TaskState& t = tasks_[static_cast<size_t>(idx)];
    runnable[static_cast<size_t>(idx)] = false;
    runnable_since[static_cast<size_t>(idx)] = -1;

    // Dispatch-order fault draws: stall first, then execution jitter.
    if (faulty) {
      auto stall = plan.stalls.find(t.name);
      if (stall != plan.stalls.end() && stall->second.cycles > 0 &&
          fault_rng.flip(stall->second.probability)) {
        dispatch_cycles += stall->second.cycles;
        stats.injected.stalls++;
        log_event(start, LogEvent::Kind::kFault, "stall " + t.name,
                  stall->second.cycles);
      }
    }

    // Freeze the snapshot (§IV-D): flags are read atomically at start; any
    // event arriving during execution goes to the incoming buffer.
    cfsm::Snapshot snap;
    long long stimulus = kInf;
    long long enabled_at = kInf;  // earliest undetected event (deadlines)
    for (auto& [port, flag] : t.flags) {
      if (!flag.present) continue;
      snap.present[port] = true;
      const cfsm::Signal* in = t.instance->machine->find_input(port);
      if (in != nullptr && !in->is_pure()) snap.value[port] = flag.value;
      stimulus = std::min(stimulus, flag.stimulus_time);
      enabled_at = std::min(enabled_at, flag.emit_time);
    }
    std::map<std::string, TaskState::Flag> frozen = t.flags;
    t.flags.clear();
    t.running = true;
    log_event(start, LogEvent::Kind::kTaskStart, t.name, 0);
    if (config_.on_task_start)
      config_.on_task_start(t.name, start, snap, t.state);

    long long cycles = 0;
    const cfsm::Reaction reaction = t.react(snap, t.state, &cycles);
    note_reaction(t.name, start);
    if (!reaction.fired) stats.empty_reactions++;
    if (faulty && plan.exec_jitter > 0) {
      const long long extra = std::llround(static_cast<double>(cycles) *
                                           plan.exec_jitter *
                                           fault_rng.uniform01());
      if (extra > 0) {
        cycles += extra;
        stats.injected.jittered++;
        log_event(start, LogEvent::Kind::kFault, "jitter " + t.name, extra);
      }
    }
    stats.busy_cycles += cycles;
    stats.overhead_cycles += dispatch_cycles;

    long long now = start;
    long long remaining = cycles + dispatch_cycles;
    while (remaining > 0) {
      const long long next_d = next_delivery < schedule.size()
                                   ? schedule[next_delivery].dtime
                                   : kInf;
      if (next_d >= now + remaining) {
        now += remaining;
        remaining = 0;
        break;
      }
      remaining -= next_d - now;
      now = next_d;
      deliver_due(now);
      while (!isr_ready.empty()) {  // §IV-C immediate attention
        const int h = isr_ready.back();
        isr_ready.pop_back();
        if (runnable[static_cast<size_t>(h)] &&
            enabled(tasks_[static_cast<size_t>(h)]))
          now = self(h, now, config_.context_switch_cycles, self);
      }
      if (config_.preemptive) {
        while (true) {
          int h = pick_next();
          if (h < 0 ||
              tasks_[static_cast<size_t>(h)].priority >= t.priority)
            break;
          now = self(h, now, config_.context_switch_cycles, self);
        }
      }
    }
    watermark = std::max(watermark, now);

    // Completion: apply effects atomically (the reaction delay has elapsed).
    t.state = reaction.next_state;
    if (config_.on_task_end) config_.on_task_end(t.name, now, t.state);
    if (!reaction.fired) {
      // No rule matched: preserve the input events for the next execution
      // (§IV-D). A fresh arrival for the same port (merged below) overwrites
      // the preserved event, counting it as lost.
      for (const auto& [port, flag] : frozen)
        if (flag.present) t.flags[port] = flag;
    }
    // Merge buffered arrivals, under the same per-net overflow policy as
    // delivery: a preserved event and a buffered arrival contend for the
    // same 1-place buffer.
    bool any_incoming = false;
    for (auto& [port, flag] : t.incoming) {
      if (!flag.present) continue;
      const std::string& net = t.instance->net_of(port);
      TaskState::Flag& f = t.flags[port];
      if (f.present) {
        stats.lost_events[net]++;
        switch (overflow_for(net)) {
          case OverflowPolicy::kOverwrite:
            break;
          case OverflowPolicy::kDropNew:
            log_event(now, LogEvent::Kind::kFault, "dropnew " + net,
                      flag.value);
            continue;
          case OverflowPolicy::kAbortWithDiagnostic: {
            std::ostringstream os;
            os << "buffer overflow on net " << net << " at t=" << now
               << ": arrival buffered during the reaction of task " << t.name
               << " collided with its preserved event on port " << port;
            throw AbortSim{false, os.str()};
          }
        }
      }
      any_incoming = true;
      f = flag;
    }
    t.incoming.clear();
    t.running = false;
    if (any_incoming) {
      if (!runnable[static_cast<size_t>(idx)])
        runnable_since[static_cast<size_t>(idx)] = now;
      runnable[static_cast<size_t>(idx)] = true;
    }

    // Deadline monitor: response time is measured from the earliest event
    // that enabled this activation to its completion.
    auto monitor = config_.deadline_monitors.find(t.name);
    if (monitor != config_.deadline_monitors.end() &&
        monitor->second.deadline_cycles > 0 && enabled_at != kInf &&
        now - enabled_at > monitor->second.deadline_cycles) {
      stats.deadline_misses[t.name]++;
      log_event(now, LogEvent::Kind::kDeadlineMiss, t.name, now - enabled_at);
      switch (monitor->second.action) {
        case DeadlineMonitor::MissAction::kCount:
          break;
        case DeadlineMonitor::MissAction::kFlushRestart:
          // Shed load: drop every pending input and restart the task.
          t.flags.clear();
          t.incoming.clear();
          t.state = t.instance->machine->initial_state();
          runnable[static_cast<size_t>(idx)] = false;
          runnable_since[static_cast<size_t>(idx)] = -1;
          break;
        case DeadlineMonitor::MissAction::kDemote:
          t.priority += monitor->second.demote_by;
          break;
      }
    }

    log_event(now, LogEvent::Kind::kTaskEnd, t.name, 0);
    // Emissions propagate at completion time.
    for (const auto& [port, value] : reaction.emissions) {
      deliver_to_consumers(t.instance->net_of(port), value, now,
                           stimulus == kInf ? now : stimulus, t.name);
    }

    // §IV-A chaining: run later members of this task's chain that the
    // emissions just enabled, bypassing the scheduler.
    for (const std::vector<std::string>& chain : config_.chains) {
      auto pos = std::find(chain.begin(), chain.end(), t.name);
      if (pos == chain.end()) continue;
      for (auto next_name = pos + 1; next_name != chain.end(); ++next_name) {
        for (size_t ti = 0; ti < tasks_.size(); ++ti) {
          if (tasks_[ti].name != *next_name || !runnable[ti] ||
              !enabled(tasks_[ti]))
            continue;
          now = self(static_cast<int>(ti), now, config_.chain_link_cycles,
                     self);
        }
      }
      break;
    }
    check_starvation(now);
    return now;
  };

  // --- Main loop ----------------------------------------------------------------
  // Streaming epochs: one metrics epoch per metrics_epoch_cycles boundary the
  // simulated clock crosses, driven only by deterministic integer state.
  PublishedSim published;
  const long long epoch_cycles = config_.metrics_epoch_cycles;
  long long next_epoch = epoch_cycles > 0 ? epoch_cycles : kInf;
#ifndef POLIS_OBS_DISABLED
  const bool epochs_on =
      epoch_cycles > 0 && obs::SeriesRecorder::global().enabled();
  // Re-baseline so the sim series starts from this run's state regardless of
  // what earlier pipeline phases did to the registry.
  if (epochs_on) obs::SeriesRecorder::global().begin_series(obs::Timebase::kSim);
#endif
  long long now = 0;
  try {
    while (now <= horizon) {
      while (now >= next_epoch) {
#ifndef POLIS_OBS_DISABLED
        if (epochs_on) {
          publish_sim_deltas(stats, published);
          OBS_TICK_EPOCH(obs::Timebase::kSim, next_epoch);
        }
#endif
        next_epoch += epoch_cycles;
      }
      // Amortized deadline/cancel check: a pathological schedule (dense
      // deliveries, runaway preemption) stays bounded by the ambient
      // governor instead of running to the horizon.
      ResourceGovernor::poll_current();
      deliver_due(now);
      check_starvation(now);
      while (!isr_ready.empty()) {  // §IV-C immediate attention (idle CPU)
        const int h = isr_ready.back();
        isr_ready.pop_back();
        if (runnable[static_cast<size_t>(h)] &&
            enabled(tasks_[static_cast<size_t>(h)]))
          now = run_task(h, now, config_.context_switch_cycles, run_task);
      }
      const int idx = pick_next();
      if (idx >= 0) {
        now = run_task(idx, now, config_.context_switch_cycles, run_task);
        continue;
      }
      if (next_delivery < schedule.size()) {
        now = schedule[next_delivery].dtime;
        continue;
      }
      break;
    }
  } catch (const AbortSim& abort) {
    stats.aborted = true;
    stats.watchdog_fired = abort.watchdog;
    stats.diagnostic = abort.diagnostic;
    if (config_.collect_log && !stats.log.empty()) {
      // Append the tail of the event log as the diagnostic trace.
      std::ostringstream os;
      os << stats.diagnostic << "\n  trace tail:";
      const size_t first = stats.log.size() > 8 ? stats.log.size() - 8 : 0;
      for (size_t i = first; i < stats.log.size(); ++i) {
        const LogEvent& e = stats.log[i];
        static const char* const kind_names[] = {
            "start", "end", "emit", "deliver", "fault", "deadline-miss"};
        os << "\n    t=" << e.time << " "
           << kind_names[static_cast<int>(e.kind)] << " " << e.subject << " "
           << e.value;
      }
      stats.diagnostic = os.str();
    }
  }
  stats.end_time = std::max(now, watermark);
  // Closing the live VCD here — not at any earlier exit — is what keeps a
  // waveform from an aborted run loadable: wires still high are dropped and
  // the final timestamp is stamped even when AbortSim cut the run short.
  if (config_.live_vcd != nullptr) config_.live_vcd->finish(stats.end_time);
  if (run_span.armed()) {
    run_span.arg("end_time", stats.end_time);
    run_span.arg("reactions", stats.reactions_run);
    run_span.arg("aborted", stats.aborted);
  }
  publish_sim_stats(stats, published);
  return stats;
}

}  // namespace polis::rtos
