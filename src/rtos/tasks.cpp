#include "rtos/tasks.hpp"

#include "sgraph/build.hpp"
#include "vm/machine.hpp"

namespace polis::rtos {

ReactFn vm_task(std::shared_ptr<const vm::CompiledReaction> reaction,
                vm::TargetProfile profile,
                std::shared_ptr<const cfsm::Cfsm> machine) {
  return [reaction = std::move(reaction), profile = std::move(profile),
          machine = std::move(machine)](
             const cfsm::Snapshot& snap,
             const std::map<std::string, std::int64_t>& state,
             long long* cycles) {
    return vm::run_reaction(*reaction, profile, *machine, snap, state, cycles);
  };
}

ReactFn sgraph_task(std::shared_ptr<const sgraph::Sgraph> graph,
                    std::shared_ptr<const cfsm::Cfsm> machine,
                    long long fixed_cycles) {
  return [graph = std::move(graph), machine = std::move(machine),
          fixed_cycles](const cfsm::Snapshot& snap,
                        const std::map<std::string, std::int64_t>& state,
                        long long* cycles) {
    *cycles = fixed_cycles;
    return sgraph::run_reaction(*graph, *machine, snap, state);
  };
}

}  // namespace polis::rtos
