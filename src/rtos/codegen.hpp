// C code generation for the RTOS itself (§IV): a runtime header shared with
// the synthesized reaction routines (polis_rt.h) and a scheduler translation
// unit with the task table, event flags, emission/detection primitives and
// the chosen scheduling loop. Because the communication structure is fixed
// at generation time, flags are plain arrays and sensitivity lists are
// constant tables — the efficiency argument of §IV-E.
#pragma once

#include <string>

#include "cfsm/network.hpp"
#include "rtos/rtos.hpp"

namespace polis::rtos {

/// The runtime header every synthesized routine includes.
std::string generate_rt_header(const cfsm::Network& network);

/// The scheduler / event-system translation unit.
std::string generate_rtos_c(const cfsm::Network& network,
                            const RtosConfig& config);

}  // namespace polis::rtos
