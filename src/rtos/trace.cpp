#include "rtos/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace polis::rtos {

std::vector<ExternalEvent> periodic_trace(const PeriodicSource& source,
                                          long long until, Rng* rng) {
  POLIS_CHECK(source.period > 0);
  std::vector<ExternalEvent> out;
  for (long long t = source.phase; t <= until; t += source.period) {
    ExternalEvent e;
    e.time = t;
    if (rng != nullptr && source.jitter_fraction > 0.0) {
      const long long j = static_cast<long long>(
          source.jitter_fraction * static_cast<double>(source.period));
      if (j > 0) e.time = std::max<long long>(0, t + rng->uniform(-j, j));
    }
    e.net = source.net;
    e.value = source.value_domain > 1 && rng != nullptr
                  ? rng->uniform(0, source.value_domain - 1)
                  : 0;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<ExternalEvent> poisson_trace(const std::string& net,
                                         double mean_gap, long long until,
                                         Rng& rng, int value_domain) {
  std::vector<ExternalEvent> out;
  double t = rng.exponential(mean_gap);
  while (static_cast<long long>(t) <= until) {
    ExternalEvent e;
    e.time = static_cast<long long>(t);
    e.net = net;
    e.value = value_domain > 1 ? rng.uniform(0, value_domain - 1) : 0;
    out.push_back(std::move(e));
    t += rng.exponential(mean_gap);
  }
  return out;
}

std::vector<ExternalEvent> burst_trace(const std::string& net,
                                       long long period, int burst,
                                       long long gap, long long until,
                                       int value_domain, Rng* rng) {
  POLIS_CHECK(period > 0);
  POLIS_CHECK(burst > 0);
  POLIS_CHECK(gap >= 0);
  std::vector<ExternalEvent> out;
  for (long long start = 0; start <= until; start += period) {
    for (int k = 0; k < burst; ++k) {
      ExternalEvent e;
      e.time = start + k * gap;
      if (e.time > until) break;
      e.net = net;
      e.value = value_domain > 1 && rng != nullptr
                    ? rng->uniform(0, value_domain - 1)
                    : 0;
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::vector<ExternalEvent> merge_traces(
    std::vector<std::vector<ExternalEvent>> traces) {
  std::vector<ExternalEvent> out;
  for (std::vector<ExternalEvent>& t : traces)
    out.insert(out.end(), t.begin(), t.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const ExternalEvent& a, const ExternalEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

}  // namespace polis::rtos
