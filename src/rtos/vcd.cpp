#include "rtos/vcd.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace polis::rtos {

namespace {

// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(int index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

void write_vcd(const cfsm::Network& network, const SimStats& stats,
               std::ostream& os, const std::string& timescale) {
  // Signal tables.
  std::map<std::string, std::string> task_wire;   // task -> id
  std::map<std::string, std::string> net_pulse;   // net -> id
  std::map<std::string, std::string> net_value;   // net -> id
  int next = 0;
  for (const cfsm::Instance& inst : network.instances())
    task_wire[inst.name] = vcd_id(next++);
  for (const auto& [name, net] : network.nets()) {
    net_pulse[name] = vcd_id(next++);
    if (net.domain > 1) net_value[name] = vcd_id(next++);
  }
  const std::string fault_wire = vcd_id(next++);
  const std::string miss_wire = vcd_id(next++);

  os << "$date polis-repro simulation $end\n"
     << "$version polis-repro rtos simulator $end\n"
     << "$timescale " << timescale << " $end\n";
  os << "$scope module tasks $end\n";
  for (const auto& [task, id] : task_wire)
    os << "$var wire 1 " << id << " " << c_identifier(task) << " $end\n";
  os << "$upscope $end\n$scope module nets $end\n";
  for (const auto& [net, id] : net_pulse)
    os << "$var wire 1 " << id << " " << c_identifier(net) << " $end\n";
  for (const auto& [net, id] : net_value)
    os << "$var integer 32 " << id << " " << c_identifier(net)
       << "_value $end\n";
  os << "$upscope $end\n$scope module robustness $end\n"
     << "$var wire 1 " << fault_wire << " fault $end\n"
     << "$var wire 1 " << miss_wire << " deadline_miss $end\n"
     << "$upscope $end\n$enddefinitions $end\n";

  os << "$dumpvars\n";
  for (const auto& [task, id] : task_wire) os << "0" << id << "\n";
  for (const auto& [net, id] : net_pulse) os << "0" << id << "\n";
  for (const auto& [net, id] : net_value) os << "b0 " << id << "\n";
  os << "0" << fault_wire << "\n0" << miss_wire << "\n";
  os << "$end\n";

  // The log is time-ordered by construction; emission pulses are dropped
  // back to 0 one cycle later via synthetic events.
  struct Change {
    long long time;
    std::string text;
  };
  std::vector<Change> changes;
  for (const LogEvent& e : stats.log) {
    switch (e.kind) {
      case LogEvent::Kind::kTaskStart:
        changes.push_back({e.time, "1" + task_wire.at(e.subject)});
        break;
      case LogEvent::Kind::kTaskEnd:
        changes.push_back({e.time, "0" + task_wire.at(e.subject)});
        break;
      case LogEvent::Kind::kEmission: {
        auto pulse = net_pulse.find(e.subject);
        if (pulse == net_pulse.end()) break;  // net unknown to the network
        changes.push_back({e.time, "1" + pulse->second});
        changes.push_back({e.time + 1, "0" + pulse->second});
        auto value = net_value.find(e.subject);
        if (value != net_value.end()) {
          std::string bits;
          std::uint64_t v = static_cast<std::uint64_t>(e.value);
          do {
            bits.insert(bits.begin(), static_cast<char>('0' + (v & 1)));
            v >>= 1;
          } while (v != 0);
          changes.push_back({e.time, "b" + bits + " " + value->second});
        }
        break;
      }
      case LogEvent::Kind::kDelivery:
        break;  // deliveries mirror emissions; omitted from the waveform
      case LogEvent::Kind::kFault:
        changes.push_back({e.time, "1" + fault_wire});
        changes.push_back({e.time + 1, "0" + fault_wire});
        break;
      case LogEvent::Kind::kDeadlineMiss:
        changes.push_back({e.time, "1" + miss_wire});
        changes.push_back({e.time + 1, "0" + miss_wire});
        break;
    }
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const Change& a, const Change& b) {
                     return a.time < b.time;
                   });

  long long current = -1;
  for (const Change& c : changes) {
    if (c.time != current) {
      os << "#" << c.time << "\n";
      current = c.time;
    }
    os << c.text << "\n";
  }
  os << "#" << std::max(stats.end_time, current + 1) << "\n";
}

}  // namespace polis::rtos
