#include "rtos/vcd.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace polis::rtos {

namespace {

// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(int index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

VcdWriter::VcdWriter(const cfsm::Network& network, std::ostream& os,
                     const std::string& timescale)
    : os_(&os) {
  int next = 0;
  for (const cfsm::Instance& inst : network.instances())
    task_wire_[inst.name] = vcd_id(next++);
  for (const auto& [name, net] : network.nets()) {
    net_pulse_[name] = vcd_id(next++);
    if (net.domain > 1) net_value_[name] = vcd_id(next++);
  }
  fault_wire_ = vcd_id(next++);
  miss_wire_ = vcd_id(next++);

  os << "$date polis-repro simulation $end\n"
     << "$version polis-repro rtos simulator $end\n"
     << "$timescale " << timescale << " $end\n";
  os << "$scope module tasks $end\n";
  for (const auto& [task, id] : task_wire_)
    os << "$var wire 1 " << id << " " << c_identifier(task) << " $end\n";
  os << "$upscope $end\n$scope module nets $end\n";
  for (const auto& [net, id] : net_pulse_)
    os << "$var wire 1 " << id << " " << c_identifier(net) << " $end\n";
  for (const auto& [net, id] : net_value_)
    os << "$var integer 32 " << id << " " << c_identifier(net)
       << "_value $end\n";
  os << "$upscope $end\n$scope module robustness $end\n"
     << "$var wire 1 " << fault_wire_ << " fault $end\n"
     << "$var wire 1 " << miss_wire_ << " deadline_miss $end\n"
     << "$upscope $end\n$enddefinitions $end\n";

  os << "$dumpvars\n";
  for (const auto& [task, id] : task_wire_) os << "0" << id << "\n";
  for (const auto& [net, id] : net_pulse_) os << "0" << id << "\n";
  for (const auto& [net, id] : net_value_) os << "b0 " << id << "\n";
  os << "0" << fault_wire_ << "\n0" << miss_wire_ << "\n";
  os << "$end\n";
}

void VcdWriter::push(long long time, std::string text) {
  changes_.push_back(Change{time, std::move(text)});
}

void VcdWriter::on_event(const LogEvent& e) {
  POLIS_CHECK_MSG(!finished_, "VcdWriter already finished");
  switch (e.kind) {
    case LogEvent::Kind::kTaskStart:
      push(e.time, "1" + task_wire_.at(e.subject));
      task_high_[e.subject] = true;
      break;
    case LogEvent::Kind::kTaskEnd:
      push(e.time, "0" + task_wire_.at(e.subject));
      task_high_[e.subject] = false;
      break;
    case LogEvent::Kind::kEmission: {
      auto pulse = net_pulse_.find(e.subject);
      if (pulse == net_pulse_.end()) break;  // net unknown to the network
      // Emission pulses are dropped back to 0 one cycle later via synthetic
      // changes.
      push(e.time, "1" + pulse->second);
      push(e.time + 1, "0" + pulse->second);
      auto value = net_value_.find(e.subject);
      if (value != net_value_.end()) {
        std::string bits;
        std::uint64_t v = static_cast<std::uint64_t>(e.value);
        do {
          bits.insert(bits.begin(), static_cast<char>('0' + (v & 1)));
          v >>= 1;
        } while (v != 0);
        push(e.time, "b" + bits + " " + value->second);
      }
      break;
    }
    case LogEvent::Kind::kDelivery:
      break;  // deliveries mirror emissions; omitted from the waveform
    case LogEvent::Kind::kFault:
      push(e.time, "1" + fault_wire_);
      push(e.time + 1, "0" + fault_wire_);
      break;
    case LogEvent::Kind::kDeadlineMiss:
      push(e.time, "1" + miss_wire_);
      push(e.time + 1, "0" + miss_wire_);
      break;
  }
}

void VcdWriter::finish(long long end_time) {
  if (finished_) return;
  finished_ = true;

  // A reaction cut short by an abort never logged its kTaskEnd: drop the
  // wire at the end time so the waveform closes cleanly instead of showing
  // the task running forever.
  for (const auto& [task, high] : task_high_)
    if (high) push(end_time, "0" + task_wire_.at(task));

  // The simulator's log is only approximately time-ordered (fault draws and
  // pulse drop-backs interleave); VCD bodies must be monotonic.
  std::stable_sort(changes_.begin(), changes_.end(),
                   [](const Change& a, const Change& b) {
                     return a.time < b.time;
                   });

  long long current = -1;
  for (const Change& c : changes_) {
    if (c.time != current) {
      *os_ << "#" << c.time << "\n";
      current = c.time;
    }
    *os_ << c.text << "\n";
  }
  *os_ << "#" << std::max(end_time, current + 1) << "\n";
  os_->flush();
}

void write_vcd(const cfsm::Network& network, const SimStats& stats,
               std::ostream& os, const std::string& timescale) {
  VcdWriter writer(network, os, timescale);
  for (const LogEvent& e : stats.log) writer.on_event(e);
  writer.finish(stats.end_time);
}

}  // namespace polis::rtos
