#include "rtos/robust.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace polis::rtos {

namespace {

SimStats one_run(const cfsm::Network& network, const RtosConfig& config,
                 const TaskBinder& bind_tasks,
                 const std::vector<ExternalEvent>& events, long long horizon) {
  RtosSimulation sim(network, config);
  bind_tasks(sim);
  return sim.run(events, horizon);
}

void merge_worst(std::map<std::string, long long>* into,
                 const std::map<std::string, std::vector<long long>>& samples) {
  for (const auto& [net, lat] : samples) {
    if (lat.empty()) continue;
    const long long worst = *std::max_element(lat.begin(), lat.end());
    auto [it, inserted] = into->emplace(net, worst);
    if (!inserted) it->second = std::max(it->second, worst);
  }
}

}  // namespace

double RobustnessReport::lost_rate(const std::string& net) const {
  auto e = emitted.find(net);
  if (e == emitted.end() || e->second == 0) return 0.0;
  auto l = lost.find(net);
  return l == lost.end()
             ? 0.0
             : static_cast<double>(l->second) / static_cast<double>(e->second);
}

std::string RobustnessReport::to_string() const {
  std::ostringstream os;
  os << "RobustnessReport{runs=" << fault_runs
     << " injected=" << faults_injected
     << " deadline_misses=" << deadline_misses << " aborted=" << aborted_runs
     << " watchdog=" << watchdog_fires << "\n";
  for (const auto& [net, count] : emitted) {
    os << "  net " << net << ": emitted=" << count;
    auto l = lost.find(net);
    os << " lost=" << (l == lost.end() ? 0 : l->second) << "\n";
  }
  for (const auto& [net, worst] : fault_worst_latency) {
    os << "  latency " << net << ": baseline=";
    auto b = baseline_worst_latency.find(net);
    os << (b == baseline_worst_latency.end() ? -1 : b->second)
       << " faulted=" << worst;
    auto bound = latency_bound.find(net);
    if (bound != latency_bound.end()) os << " bound=" << bound->second;
    os << "\n";
  }
  auto list = [&os](const char* label, const std::vector<std::string>& nets) {
    os << "  " << label << ":";
    for (const std::string& n : nets) os << " " << n;
    os << "\n";
  };
  list("over-bound at baseline", bound_violations_baseline);
  list("pushed over bound by faults", bound_violations_faulted);
  os << "}";
  return os.str();
}

RobustnessReport sweep_faults(const cfsm::Network& network,
                              const RtosConfig& config,
                              const TaskBinder& bind_tasks,
                              const std::vector<ExternalEvent>& events,
                              const FaultSweepOptions& options) {
  POLIS_CHECK(options.runs > 0);
  RobustnessReport report;
  report.fault_runs = options.runs;
  report.latency_bound = options.latency_bounds;

  // Zero-fault baseline: the nominal run the estimator's bound speaks to.
  {
    RtosConfig nominal = config;
    nominal.faults = FaultPlan{};
    const SimStats stats =
        one_run(network, nominal, bind_tasks, events, options.horizon);
    merge_worst(&report.baseline_worst_latency, stats.input_to_output_latency);
  }

  for (int i = 0; i < options.runs; ++i) {
    RtosConfig faulted = config;
    faulted.faults.seed = options.base_seed + static_cast<std::uint64_t>(i);
    const SimStats stats =
        one_run(network, faulted, bind_tasks, events, options.horizon);
    report.faults_injected += stats.injected.total();
    for (const auto& [net, count] : stats.emitted_events)
      report.emitted[net] += count;
    for (const auto& [net, count] : stats.lost_events)
      report.lost[net] += count;
    for (const auto& [task, count] : stats.deadline_misses) {
      (void)task;
      report.deadline_misses += count;
    }
    if (stats.aborted) report.aborted_runs++;
    if (stats.watchdog_fired) report.watchdog_fires++;
    merge_worst(&report.fault_worst_latency, stats.input_to_output_latency);
  }

  for (const auto& [net, bound] : report.latency_bound) {
    auto base = report.baseline_worst_latency.find(net);
    if (base != report.baseline_worst_latency.end() && base->second > bound)
      report.bound_violations_baseline.push_back(net);
    auto faulted = report.fault_worst_latency.find(net);
    const bool base_ok =
        base == report.baseline_worst_latency.end() || base->second <= bound;
    if (base_ok && faulted != report.fault_worst_latency.end() &&
        faulted->second > bound)
      report.bound_violations_faulted.push_back(net);
  }
  return report;
}

double find_breaking_magnitude(const cfsm::Network& network,
                               const RtosConfig& config,
                               const TaskBinder& bind_tasks,
                               const std::vector<ExternalEvent>& events,
                               int steps, long long horizon) {
  POLIS_CHECK(steps > 0);
  for (int s = 1; s <= steps; ++s) {
    const double m = static_cast<double>(s) / static_cast<double>(steps);
    RtosConfig scaled = config;
    scaled.faults = config.faults.scaled(m);
    const SimStats stats =
        one_run(network, scaled, bind_tasks, events, horizon);
    long long misses = 0;
    for (const auto& [task, count] : stats.deadline_misses) {
      (void)task;
      misses += count;
    }
    if (misses > 0 || stats.aborted) return m;
  }
  return -1.0;
}

}  // namespace polis::rtos
