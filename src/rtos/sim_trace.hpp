// Replays an RTOS simulation log onto the trace recorder's simulated-cycle
// lanes (obs::kPidSim): one lane per task carrying a complete ('X') span for
// each reaction, plus an "events" lane with instants for emissions, injected
// faults and deadline misses.
//
// The lanes use the simulator's own clock — one trace tick == one simulated
// cycle == one VCD timescale unit — so a Chrome trace and a VCD waveform of
// the same run line up exactly. Wall-clock pipeline lanes (obs::kPidPipeline)
// live in the same trace file under a different Chrome "process".
//
// Requires a SimStats produced with RtosConfig::collect_log = true; a log
// from an aborted run is fine (reactions cut short by the abort are closed
// at `stats.end_time` and tagged `aborted`).
#pragma once

#include "cfsm/network.hpp"
#include "obs/trace.hpp"
#include "rtos/rtos.hpp"

namespace polis::rtos {

/// Records `stats.log` onto `recorder`'s simulated-cycle lanes. A no-op
/// when the recorder is disabled (same contract as every other producer).
void record_sim_trace(const cfsm::Network& network, const SimStats& stats,
                      obs::TraceRecorder& recorder = obs::TraceRecorder::global());

}  // namespace polis::rtos
