// Adapters turning synthesized artifacts into RTOS tasks:
//   * vm_task     — the compiled VM routine; per-reaction cycle counts are
//                   the actual executed cycles (our "measured" backend);
//   * sgraph_task — the s-graph interpreter with a fixed cycle cost (useful
//                   when only functional behaviour matters).
#pragma once

#include <memory>

#include "rtos/rtos.hpp"
#include "sgraph/sgraph.hpp"
#include "vm/compile.hpp"
#include "vm/isa.hpp"

namespace polis::rtos {

ReactFn vm_task(std::shared_ptr<const vm::CompiledReaction> reaction,
                vm::TargetProfile profile,
                std::shared_ptr<const cfsm::Cfsm> machine);

ReactFn sgraph_task(std::shared_ptr<const sgraph::Sgraph> graph,
                    std::shared_ptr<const cfsm::Cfsm> machine,
                    long long fixed_cycles);

}  // namespace polis::rtos
