#include "bdd/io.hpp"

#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace polis::bdd {

void to_dot(const std::vector<Bdd>& roots,
            const std::vector<std::string>& root_names, std::ostream& os) {
  POLIS_CHECK(roots.size() == root_names.size());
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  t0 [label=\"0\", shape=box];\n  t1 [label=\"1\", shape=box];\n";
  std::unordered_map<std::uint32_t, int> id;
  int next_id = 0;
  auto node_name = [&](const Bdd& f) -> std::string {
    if (f.is_zero()) return "t0";
    if (f.is_one()) return "t1";
    auto it = id.find(f.raw_index());
    POLIS_CHECK(it != id.end());
    return "n" + std::to_string(it->second);
  };
  auto walk = [&](const Bdd& f, auto&& self) -> void {
    if (f.is_constant()) return;
    if (id.count(f.raw_index())) return;
    id.emplace(f.raw_index(), next_id++);
    self(f.low(), self);
    self(f.high(), self);
    BddManager* mgr = f.manager();
    os << "  " << node_name(f) << " [label=\"" << mgr->var_name(f.top_var())
       << "\"];\n";
    os << "  " << node_name(f) << " -> " << node_name(f.low())
       << " [style=dashed];\n";
    os << "  " << node_name(f) << " -> " << node_name(f.high()) << ";\n";
  };
  for (size_t i = 0; i < roots.size(); ++i) {
    walk(roots[i], walk);
    os << "  r" << i << " [label=\"" << root_names[i]
       << "\", shape=plaintext];\n";
    os << "  r" << i << " -> " << node_name(roots[i]) << ";\n";
  }
  os << "}\n";
}

expr::ExprRef to_expr(const Bdd& f,
                      const std::function<expr::ExprRef(int)>& leaf_of_var) {
  POLIS_CHECK(!f.is_null());
  std::unordered_map<std::uint32_t, expr::ExprRef> memo;
  auto walk = [&](const Bdd& g, auto&& self) -> expr::ExprRef {
    if (g.is_zero()) return expr::constant(0);
    if (g.is_one()) return expr::constant(1);
    auto it = memo.find(g.raw_index());
    if (it != memo.end()) return it->second;
    const expr::ExprRef cond = leaf_of_var(g.top_var());
    const expr::ExprRef hi = self(g.high(), self);
    const expr::ExprRef lo = self(g.low(), self);
    expr::ExprRef r;
    // Prefer flat Boolean forms where they read (and cost) better than ITE.
    if (hi->op() == expr::Op::kConst && lo->op() == expr::Op::kConst) {
      r = hi->value() != 0 ? cond : expr::lnot(cond);
    } else if (hi->op() == expr::Op::kConst && hi->value() != 0) {
      r = expr::lor(cond, lo);
    } else if (hi->op() == expr::Op::kConst && hi->value() == 0) {
      r = expr::land(expr::lnot(cond), lo);
    } else if (lo->op() == expr::Op::kConst && lo->value() == 0) {
      r = expr::land(cond, hi);
    } else if (lo->op() == expr::Op::kConst && lo->value() != 0) {
      r = expr::lor(expr::lnot(cond), hi);
    } else {
      r = expr::ite(cond, hi, lo);
    }
    memo.emplace(g.raw_index(), r);
    return r;
  };
  return walk(f, walk);
}

std::string stats(BddManager& mgr, const Bdd& f) {
  std::ostringstream os;
  os << "nodes=" << mgr.node_count(f) << " vars=" << mgr.support(f).size();
  return os.str();
}

}  // namespace polis::bdd
