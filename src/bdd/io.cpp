#include "bdd/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace polis::bdd {

void to_dot(const std::vector<Bdd>& roots,
            const std::vector<std::string>& root_names, std::ostream& os) {
  POLIS_CHECK(roots.size() == root_names.size());
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  t0 [label=\"0\", shape=box];\n  t1 [label=\"1\", shape=box];\n";
  std::unordered_map<std::uint32_t, int> id;
  int next_id = 0;
  auto node_name = [&](const Bdd& f) -> std::string {
    if (f.is_zero()) return "t0";
    if (f.is_one()) return "t1";
    auto it = id.find(f.raw_index());
    POLIS_CHECK(it != id.end());
    return "n" + std::to_string(it->second);
  };
  auto walk = [&](const Bdd& f, auto&& self) -> void {
    if (f.is_constant()) return;
    if (id.count(f.raw_index())) return;
    id.emplace(f.raw_index(), next_id++);
    self(f.low(), self);
    self(f.high(), self);
    BddManager* mgr = f.manager();
    os << "  " << node_name(f) << " [label=\"" << mgr->var_name(f.top_var())
       << "\"];\n";
    os << "  " << node_name(f) << " -> " << node_name(f.low())
       << " [style=dashed];\n";
    os << "  " << node_name(f) << " -> " << node_name(f.high()) << ";\n";
  };
  for (size_t i = 0; i < roots.size(); ++i) {
    walk(roots[i], walk);
    os << "  r" << i << " [label=\"" << root_names[i]
       << "\", shape=plaintext];\n";
    os << "  r" << i << " -> " << node_name(roots[i]) << ";\n";
  }
  os << "}\n";
}

expr::ExprRef to_expr(const Bdd& f,
                      const std::function<expr::ExprRef(int)>& leaf_of_var) {
  POLIS_CHECK(!f.is_null());
  std::unordered_map<std::uint32_t, expr::ExprRef> memo;
  auto walk = [&](const Bdd& g, auto&& self) -> expr::ExprRef {
    if (g.is_zero()) return expr::constant(0);
    if (g.is_one()) return expr::constant(1);
    auto it = memo.find(g.raw_index());
    if (it != memo.end()) return it->second;
    const expr::ExprRef cond = leaf_of_var(g.top_var());
    const expr::ExprRef hi = self(g.high(), self);
    const expr::ExprRef lo = self(g.low(), self);
    expr::ExprRef r;
    // Prefer flat Boolean forms where they read (and cost) better than ITE.
    if (hi->op() == expr::Op::kConst && lo->op() == expr::Op::kConst) {
      r = hi->value() != 0 ? cond : expr::lnot(cond);
    } else if (hi->op() == expr::Op::kConst && hi->value() != 0) {
      r = expr::lor(cond, lo);
    } else if (hi->op() == expr::Op::kConst && hi->value() == 0) {
      r = expr::land(expr::lnot(cond), lo);
    } else if (lo->op() == expr::Op::kConst && lo->value() == 0) {
      r = expr::land(cond, hi);
    } else if (lo->op() == expr::Op::kConst && lo->value() != 0) {
      r = expr::lor(expr::lnot(cond), hi);
    } else {
      r = expr::ite(cond, hi, lo);
    }
    memo.emplace(g.raw_index(), r);
    return r;
  };
  return walk(f, walk);
}

std::string stats(BddManager& mgr, const Bdd& f) {
  std::ostringstream os;
  os << "nodes=" << mgr.node_count(f) << " vars=" << mgr.support(f).size();
  return os.str();
}

// --- Tagged-handle serialization ---------------------------------------------------
//
// Format (line oriented, '#' starts nowhere — no comments, fully machine
// written/read):
//
//   polis-bdd 1
//   vars <n>
//   <name>            (n lines, variable ids 0..n-1 in id order)
//   nodes <m>
//   <var> <lo> <hi>   (m lines; serial ids 1..m, children-first)
//   roots <r>
//   <name> <ref>      (r lines)
//
// Every edge (<lo>, <hi>, <ref>) is a tagged reference `serial << 1 |
// complement` mirroring the in-memory handle encoding; serial 0 is the
// terminal one, so reference 0 is constant true and reference 1 constant
// false. By the kernel's canonical-form invariant the stored then-edge is
// regular, so <hi> always has a clear low bit — the reader checks this.

namespace {

// Serializer state: regular-phase raw handle -> serial id.
struct WriteCtx {
  std::unordered_map<std::uint32_t, std::uint32_t> serial;
  std::ostringstream nodes;
  std::uint32_t next_serial = 1;
};

// Returns the tagged reference for `f`, emitting its node (children first)
// on first visit. `f` may be in either phase; the complement bit transfers
// from the handle to the reference.
std::uint32_t write_walk(const Bdd& f, WriteCtx& ctx) {
  const std::uint32_t comp = f.is_complemented() ? 1u : 0u;
  if (f.is_constant()) return comp;  // terminal serial is 0
  const Bdd reg = comp ? !f : f;
  auto it = ctx.serial.find(reg.raw_index());
  if (it == ctx.serial.end()) {
    // Regular phase: high() is the stored then-edge (regular by canonical
    // form), low() carries the stored else-edge phase.
    const std::uint32_t lo = write_walk(reg.low(), ctx);
    const std::uint32_t hi = write_walk(reg.high(), ctx);
    const std::uint32_t id = ctx.next_serial++;
    it = ctx.serial.emplace(reg.raw_index(), id).first;
    ctx.nodes << reg.top_var() << ' ' << lo << ' ' << hi << '\n';
  }
  return (it->second << 1) | comp;
}

}  // namespace

void write_bdds(const std::vector<Bdd>& roots,
                const std::vector<std::string>& root_names, std::ostream& os) {
  POLIS_CHECK(roots.size() == root_names.size());
  BddManager* mgr = nullptr;
  for (const Bdd& r : roots) {
    POLIS_CHECK_MSG(!r.is_null(), "cannot serialize a null BDD handle");
    POLIS_CHECK_MSG(mgr == nullptr || r.manager() == mgr,
                    "write_bdds roots span multiple managers");
    mgr = r.manager();
  }
  WriteCtx ctx;
  std::ostringstream root_lines;
  for (size_t i = 0; i < roots.size(); ++i) {
    root_lines << root_names[i] << ' ' << write_walk(roots[i], ctx) << '\n';
  }
  const int nvars = mgr != nullptr ? mgr->num_vars() : 0;
  os << "polis-bdd 1\n";
  os << "vars " << nvars << '\n';
  for (int v = 0; v < nvars; ++v) os << mgr->var_name(v) << '\n';
  os << "nodes " << (ctx.next_serial - 1) << '\n';
  os << ctx.nodes.str();
  os << "roots " << roots.size() << '\n';
  os << root_lines.str();
}

std::vector<Bdd> read_bdds(BddManager& mgr, std::istream& is,
                           std::vector<std::string>* root_names) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  POLIS_CHECK_MSG(magic == "polis-bdd" && version == 1,
                  "read_bdds: bad header '" << magic << " " << version << "'");
  std::string section;
  size_t nvars = 0;
  is >> section >> nvars;
  POLIS_CHECK_MSG(section == "vars", "read_bdds: expected 'vars' section");
  is.ignore();  // trailing newline before getline
  // Map file variable ids onto manager ids: reuse a manager variable with
  // the same name, otherwise append a fresh one.
  std::unordered_map<std::string, int> by_name;
  for (int v = 0; v < mgr.num_vars(); ++v) by_name.emplace(mgr.var_name(v), v);
  std::vector<int> var_map(nvars, -1);
  for (size_t v = 0; v < nvars; ++v) {
    std::string name;
    std::getline(is, name);
    POLIS_CHECK_MSG(is.good(), "read_bdds: truncated vars section");
    auto it = by_name.find(name);
    var_map[v] = it != by_name.end() ? it->second : mgr.new_var(name);
  }
  size_t nnodes = 0;
  is >> section >> nnodes;
  POLIS_CHECK_MSG(section == "nodes", "read_bdds: expected 'nodes' section");
  std::vector<Bdd> by_serial;
  by_serial.reserve(nnodes + 1);
  by_serial.push_back(mgr.one());
  auto resolve = [&](std::uint32_t ref) -> Bdd {
    const size_t serial = ref >> 1;
    POLIS_CHECK_MSG(serial < by_serial.size(),
                    "read_bdds: forward reference to serial " << serial);
    const Bdd& f = by_serial[serial];
    return (ref & 1u) != 0 ? !f : f;
  };
  for (size_t i = 0; i < nnodes; ++i) {
    std::uint32_t var = 0, lo = 0, hi = 0;
    is >> var >> lo >> hi;
    POLIS_CHECK_MSG(is.good(), "read_bdds: truncated nodes section");
    POLIS_CHECK_MSG(var < nvars, "read_bdds: node var " << var << " out of range");
    POLIS_CHECK_MSG((hi & 1u) == 0,
                    "read_bdds: complemented then-edge violates canonical form");
    by_serial.push_back(
        mgr.ite(mgr.var(var_map[var]), resolve(hi), resolve(lo)));
  }
  size_t nroots = 0;
  is >> section >> nroots;
  POLIS_CHECK_MSG(section == "roots", "read_bdds: expected 'roots' section");
  std::vector<Bdd> out;
  out.reserve(nroots);
  if (root_names != nullptr) root_names->clear();
  for (size_t i = 0; i < nroots; ++i) {
    std::string name;
    std::uint32_t ref = 0;
    is >> name >> ref;
    POLIS_CHECK_MSG(!is.fail(), "read_bdds: truncated roots section");
    if (root_names != nullptr) root_names->push_back(name);
    out.push_back(resolve(ref));
  }
  return out;
}

}  // namespace polis::bdd
