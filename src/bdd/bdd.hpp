// A from-scratch ROBDD package (Bryant [10]) in the style the paper relies
// on: unique table for canonicity, ITE with a computed cache, cofactors,
// smoothing (existential quantification, §II-C), support computation, and
// order replacement used by the sifting reorderer (Rudell [31]).
//
// The kernel follows Brace–Rudell–Bryant ("Efficient Implementation of a BDD
// Package") and Somenzi's CUDD:
//
//   * The unique table is split into per-variable subtables. Each subtable is
//     an open-addressed bucket array whose collision chains are intrusive
//     `next` indices threaded through the node arena — no separate hash-map
//     nodes, no per-insert allocation. The chains double as the per-variable
//     node enumeration that `swap_adjacent_levels` rewrites.
//   * All operation results go through one fixed-size, power-of-two, lossy
//     computed cache, tagged by operation (ITE, NOT, cofactor, exists,
//     forall, compose, restrict). Collisions simply overwrite (no chains, no
//     allocation); hit/miss/eviction counters feed the bench harnesses and a
//     high-load policy doubles the cache while it keeps earning hits.
//   * Garbage collection is reference-count based: registered handles hold
//     external references, so the distinct live roots are known without
//     scanning the handle set. `prune_dead_nodes` unlinks dead nodes from the
//     subtable chains onto an intrusive free list (slots are recycled by the
//     next allocation); `garbage_collect` compacts the arena in place and
//     rehashes the subtables — no scratch-manager rebuild.
//
// Handles (`Bdd`) are registered with their `BddManager` on an intrusive
// doubly-linked list (registration is O(1) and allocation-free), which lets
// the manager retarget every live handle when the variable order changes or
// when the node arena is compacted. Handles must not outlive their manager;
// if the manager is destroyed first, surviving handles become null.
//
// A manager and its handles are confined to one thread; share-nothing
// parallelism (one manager per CFSM, as in `synthesize_network`) is the
// supported concurrency model.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace polis::bdd {

class BddManager;

/// Reference-style handle to a BDD node; copyable, registered with the
/// manager so that reordering can update it in place.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool is_null() const { return mgr_ == nullptr; }
  bool is_zero() const;
  bool is_one() const;
  bool is_constant() const { return is_zero() || is_one(); }

  BddManager* manager() const { return mgr_; }
  std::uint32_t raw_index() const { return idx_; }

  /// Variable id labelling the top node. Requires a non-constant BDD.
  int top_var() const;

  /// Children of the top node. Requires a non-constant BDD.
  Bdd high() const;
  Bdd low() const;

  // Boolean operations (delegate to the manager).
  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;
  bool operator==(const Bdd& o) const {
    return mgr_ == o.mgr_ && idx_ == o.idx_;
  }
  bool operator!=(const Bdd& o) const { return !(*this == o); }

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, std::uint32_t idx);
  void attach(BddManager* mgr, std::uint32_t idx);
  void detach();

  BddManager* mgr_ = nullptr;
  std::uint32_t idx_ = 0;
  // Intrusive registry links (owned by the manager).
  Bdd* prev_ = nullptr;
  Bdd* next_ = nullptr;
};

/// Kernel counters, snapshotted by `BddManager::stats()`. All counts are
/// cumulative since construction (or the last `reset_stats`).
struct KernelStats {
  // Top-level operation counts.
  std::uint64_t ite_calls = 0;  // public ite()/band/bor/bxor entries
  // Computed cache.
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;  // overwrites of a different live entry
  std::uint64_t cache_resizes = 0;
  std::size_t cache_capacity = 0;  // current entry count (power of two)
  // Unique table.
  std::uint64_t unique_lookups = 0;
  std::uint64_t unique_hits = 0;
  // Arena.
  std::size_t arena_nodes = 0;  // allocated slots (live + garbage + free)
  std::size_t peak_nodes = 0;   // high-water arena size
  std::uint64_t nodes_created = 0;
  std::uint64_t nodes_recycled = 0;  // allocations served from the free list
  // Garbage collection.
  std::uint64_t gc_runs = 0;  // prune or compaction passes that freed nodes
  std::uint64_t nodes_reclaimed = 0;
  // Relational product (and_exists).
  std::uint64_t and_exists_calls = 0;       // top-level invocations
  std::uint64_t and_exists_recursions = 0;  // recursive steps taken
  std::uint64_t and_exists_cache_hits = 0;  // computed-cache hits on kOpAndExists

  double cache_hit_rate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// Owns the node arena, per-variable unique subtables, computed cache and
/// variable order.
class BddManager {
 public:
  BddManager();
  explicit BddManager(int num_vars);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // --- Variables -------------------------------------------------------------

  /// Creates a new variable placed at the bottom of the current order.
  int new_var(std::string name = {});
  int num_vars() const { return static_cast<int>(perm_.size()); }
  const std::string& var_name(int var) const;
  void set_var_name(int var, std::string name);

  /// Level (0 = top) of `var` in the current order.
  int level_of(int var) const { return perm_[static_cast<size_t>(var)]; }
  /// Variable at `level` in the current order.
  int var_at_level(int level) const {
    return invperm_[static_cast<size_t>(level)];
  }
  /// Current order as a top-to-bottom list of variable ids.
  std::vector<int> current_order() const { return invperm_; }

  // --- Construction ----------------------------------------------------------

  Bdd zero() { return make(0); }
  Bdd one() { return make(1); }
  Bdd var(int v);
  Bdd nvar(int v);
  Bdd constant(bool b) { return b ? one() : zero(); }

  // --- Core operations ---------------------------------------------------------

  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  Bdd band(const Bdd& f, const Bdd& g) { return ite(f, g, zero()); }
  Bdd bor(const Bdd& f, const Bdd& g) { return ite(f, one(), g); }
  Bdd bxor(const Bdd& f, const Bdd& g);
  /// Complement, memoized in the computed cache under its own tag (both
  /// directions: ¬f → r and ¬r → f), so repeated negations in
  /// reactive-function construction are O(1) hits instead of ITE recursions.
  Bdd bnot(const Bdd& f);
  Bdd implies(const Bdd& f, const Bdd& g) { return ite(f, g, one()); }

  /// Restriction f|_{var=val} (cofactor, §II-C).
  Bdd cofactor(const Bdd& f, int var, bool val);

  /// Smoothing S_vars(f) = existential quantification of `vars` (§II-C).
  Bdd smooth(const Bdd& f, const std::vector<int>& vars);
  Bdd forall(const Bdd& f, const std::vector<int>& vars);

  /// Relational product ∃vars. f ∧ g — the image-computation workhorse.
  /// Conjoins and quantifies in one recursion (with its own computed-cache
  /// tag) instead of materialising f ∧ g first, so the intermediate
  /// conjunction over the quantified variables is never built.
  Bdd and_exists(const Bdd& f, const Bdd& g, const std::vector<int>& vars);

  /// Substitutes `g` for variable `var` in `f`.
  Bdd compose(const Bdd& f, int var, const Bdd& g);

  /// Coudert–Madre restrict (sibling substitution): a function equal to `f`
  /// wherever `care` holds, heuristically minimised using ¬care as don't
  /// care. Used to exploit false-path information (§III-C) without growing
  /// the result the way f∧care would.
  Bdd restrict(const Bdd& f, const Bdd& care);

  // --- Queries -----------------------------------------------------------------

  /// Variables `f` essentially depends on (§II-C definition of support).
  std::set<int> support(const Bdd& f);

  /// Evaluates under a total assignment.
  bool eval(const Bdd& f, const std::function<bool(int)>& assignment);

  /// Number of minterms over `nvars` variables.
  double sat_count(const Bdd& f, int nvars);

  /// One satisfying assignment as (var, value) pairs over support vars.
  /// Requires a satisfiable f.
  std::vector<std::pair<int, bool>> one_sat(const Bdd& f);

  /// Internal (non-terminal) nodes reachable from `f`. Terminals are
  /// excluded so the count agrees with `var_node_profile` and with the
  /// sifting objective.
  size_t node_count(const Bdd& f);
  /// Internal nodes reachable from any of `roots` (shared nodes counted
  /// once, terminals excluded).
  size_t node_count(const std::vector<Bdd>& roots);
  /// Total node slots in the arena (live + garbage + free).
  size_t arena_size() const { return nodes_.size(); }

  /// Nodes currently threaded on the unique-table chains (live + garbage,
  /// excluding recycled free slots). The gap to `live_node_count` is the
  /// garbage a `prune_dead_nodes` would reclaim — the sifting loop's prune
  /// trigger.
  size_t table_node_count() const {
    size_t total = 0;
    for (const Subtable& st : subtables_) total += st.count;
    return total;
  }

  /// Kernel counter snapshot (cache hit rates, peak nodes, GC work).
  KernelStats stats() const;
  /// Clears the cumulative counters; `peak_nodes` restarts from the current
  /// arena size.
  void reset_stats();

  /// Adds everything counted since the last flush into the process-wide
  /// `obs::MetricsRegistry` under the "bdd.*" names (cache hit counters, GC
  /// work, peak nodes). Incremental and idempotent — flushing twice adds
  /// nothing new — and also run by the destructor, so short-lived managers
  /// (one per CFSM in `synthesize_network`) are never lost from a
  /// `--metrics` snapshot. The local `stats()` view is unaffected.
  void flush_stats_to_obs();

  // --- Reordering / memory -----------------------------------------------------

  /// Replaces the variable order; `order` is a permutation of all var ids,
  /// top to bottom. All registered handles are retargeted.
  void set_order(const std::vector<int>& order);

  /// Rudell's adjacent-level swap: exchanges the variables at `level` and
  /// `level + 1` by rewriting, in place, only the nodes labelled with the
  /// upper variable. Every node index keeps denoting the same Boolean
  /// function, so registered handles, the unique table and the computed
  /// cache all stay valid — no arena rebuild. Children of swapped nodes may
  /// be orphaned (reclaimed by the next `prune_dead_nodes`). Returns the
  /// number of nodes rewritten.
  size_t swap_adjacent_levels(int level);

  /// Internal nodes reachable from the registered handles (terminals
  /// excluded): the sifting objective. O(live) per call via the
  /// reference-counted root set — independent of how many handles alias the
  /// same roots.
  size_t live_node_count();

  /// Compacts the arena in place, keeping only nodes reachable from live
  /// handles: dead slots are squeezed out, live nodes are remapped, and the
  /// subtables are rehashed (no scratch-manager rebuild). Registered handles
  /// are retargeted to the compacted indices.
  void garbage_collect();

  /// Unlinks nodes unreachable from live handles from the subtable chains
  /// and pushes their slots onto the free list for recycling (the arena is
  /// not compacted). O(arena), no handle retargeting — cheap enough for the
  /// sifting hot loop. Returns the number of nodes pruned.
  size_t prune_dead_nodes();

  /// Size (node count) the live handles would have under `order`, without
  /// modifying this manager. Used by the sifting reorderer.
  size_t size_under_order(const std::vector<int>& order);

  /// Distinct node indices of all registered handles (live roots; terminals
  /// excluded).
  std::vector<std::uint32_t> live_roots() const;

  /// Per-variable count of live nodes (reachable from registered handles).
  std::vector<size_t> var_node_profile();

 private:
  friend class Bdd;

  struct Node {
    std::uint32_t var;
    std::uint32_t lo;
    std::uint32_t hi;
    /// Intrusive link: next node in this node's unique-subtable collision
    /// chain, or next slot on the free list once the node is dead.
    std::uint32_t next;
  };

  /// Per-variable unique subtable: bucket heads into the intrusive chains.
  struct Subtable {
    std::vector<std::uint32_t> buckets;  // kNil-terminated chain heads
    std::uint32_t count = 0;             // nodes currently in the chains
  };

  /// One lossy computed-cache entry; `op == kOpNone` marks an empty slot.
  struct CacheEntry {
    std::uint32_t op = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    std::uint32_t result = 0;
  };

  enum CacheOp : std::uint32_t {
    kOpNone = 0,
    kOpIte,
    kOpNot,
    kOpCofactor,  // b = (var << 1) | val
    kOpExists,    // b = positive cube of the quantified vars
    kOpForall,    // b = positive cube of the quantified vars
    kOpCompose,    // b = g, c = var
    kOpRestrict,   // b = care
    kOpAndExists,  // b = second conjunct, c = positive cube of the vars
  };

  static constexpr std::uint32_t kZero = 0;
  static constexpr std::uint32_t kOne = 1;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kTermVar = 0xffffffffu;
  static constexpr std::uint32_t kDeadVar = 0xfffffffeu;
  static constexpr size_t kInitBuckets = 8;         // per-subtable
  static constexpr size_t kMaxChainLoad = 4;        // avg chain length bound
  static constexpr size_t kInitCacheEntries = 1u << 12;
  static constexpr size_t kMaxCacheEntries = 1u << 22;

  Bdd make(std::uint32_t idx) { return Bdd(this, idx); }
  bool is_term(std::uint32_t n) const { return n <= kOne; }
  int level(std::uint32_t n) const {
    return is_term(n) ? kTermLevel : perm_[nodes_[n].var];
  }

  // Unique table.
  std::uint32_t find_or_add(std::uint32_t var, std::uint32_t lo,
                            std::uint32_t hi);
  void subtable_insert(std::uint32_t var, std::uint32_t idx);
  void grow_subtable(Subtable& st);
  static std::uint32_t hash_children(std::uint32_t lo, std::uint32_t hi) {
    std::uint64_t h = (static_cast<std::uint64_t>(lo) << 32) | hi;
    h *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>(h >> 32);
  }

  // Computed cache.
  bool cache_lookup(std::uint32_t op, std::uint32_t a, std::uint32_t b,
                    std::uint32_t c, std::uint32_t* result);
  void cache_insert(std::uint32_t op, std::uint32_t a, std::uint32_t b,
                    std::uint32_t c, std::uint32_t result);
  void cache_clear();
  void resize_cache(size_t new_entries);
  size_t cache_slot(std::uint32_t op, std::uint32_t a, std::uint32_t b,
                    std::uint32_t c) const {
    std::uint64_t h = a * 0x9e3779b97f4a7c15ULL;
    h = (h ^ b) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ c) * 0x94d049bb133111ebULL;
    h ^= op * 0x2545f4914f6cdd1dULL;
    h ^= h >> 29;
    return static_cast<size_t>(h) & cache_mask_;
  }

  // Operations on raw indices.
  std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t bnot_rec(std::uint32_t f);
  std::uint32_t cofactor_rec(std::uint32_t f, int var, bool val);
  std::uint32_t quant_rec(std::uint32_t f, std::uint32_t cube,
                          bool existential);
  std::uint32_t and_exists_rec(std::uint32_t f, std::uint32_t g,
                               std::uint32_t cube);
  std::uint32_t compose_rec(std::uint32_t f, int var, std::uint32_t g);
  std::uint32_t restrict_rec(std::uint32_t f, std::uint32_t care);
  /// Positive cube (ordered conjunction) of `vars`, built bottom-up.
  std::uint32_t make_cube(const std::vector<int>& vars);
  std::uint32_t transfer_from(BddManager& src, std::uint32_t f,
                              std::vector<std::uint32_t>& memo);

  // Handle registry + reference-counted roots.
  void register_handle(Bdd* h);
  void unregister_handle(Bdd* h);
  void add_ref(std::uint32_t idx);
  void deref(std::uint32_t idx);
  /// Drops zero-reference entries from the root list.
  void compact_roots();
  /// Recomputes extref_/roots_ from the registered handles (used after
  /// compaction or order replacement remaps every index).
  void rebuild_refs();

  /// Marks nodes reachable from the live roots with a fresh epoch and
  /// returns the internal-node count. Leaves the epoch in visit_epoch_ for
  /// callers that filter by liveness.
  size_t mark_live();

  void check_var(int v) const;

  static constexpr int kTermLevel = 0x7fffffff;

  std::vector<Node> nodes_;
  std::vector<Subtable> subtables_;   // one per variable
  std::uint32_t free_head_ = kNil;    // intrusive free list through `next`
  std::vector<CacheEntry> cache_;
  size_t cache_mask_ = 0;
  std::vector<int> perm_;     // var -> level
  std::vector<int> invperm_;  // level -> var
  std::vector<std::string> names_;
  Bdd* handle_head_ = nullptr;  // intrusive doubly-linked handle registry
  // External (handle) reference counts and the lazily-compacted list of
  // distinct referenced nodes. in_roots_ keeps roots_ duplicate-free across
  // 1→0→1 refcount churn.
  std::vector<std::uint32_t> extref_;
  std::vector<std::uint8_t> in_roots_;
  std::vector<std::uint32_t> roots_;
  // Epoch-marked visit buffer for allocation-free live traversals.
  std::vector<std::uint64_t> visit_epoch_;
  std::vector<std::uint32_t> visit_stack_;
  std::vector<std::uint32_t> swap_scratch_;
  std::uint64_t epoch_ = 0;
  // Cache resize policy state.
  std::uint64_t cache_lookups_at_resize_ = 0;
  std::uint64_t cache_hits_at_resize_ = 0;
  std::uint64_t cache_inserts_at_resize_ = 0;
  KernelStats stats_;
  KernelStats flushed_stats_;  // high-water mark of flush_stats_to_obs
};

}  // namespace polis::bdd
