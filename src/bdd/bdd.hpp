// A from-scratch ROBDD package (Bryant [10]) in the style the paper relies
// on: unique table for canonicity, ITE with a computed cache, cofactors,
// smoothing (existential quantification, §II-C), support computation, and
// order replacement used by the sifting reorderer (Rudell [31]).
//
// The kernel follows Brace–Rudell–Bryant ("Efficient Implementation of a BDD
// Package") and Somenzi's CUDD:
//
//   * Handles carry a complement edge in their low bit: handle = index << 1 |
//     negated. There is a single terminal node (arena slot 0, the constant
//     one); false is its complement. NOT is a pointer flip — no recursion, no
//     cache traffic, no memo table — and a function and its negation share
//     every node, roughly halving node counts. Canonical form: the then-edge
//     of a stored node is never complemented (`find_or_add` complements both
//     children and returns a negated handle instead), so each Boolean
//     function has exactly one representation.
//   * The unique table is split into per-variable subtables. Each subtable is
//     an open-addressed bucket array whose collision chains are intrusive
//     `next` indices threaded through the node arena — no separate hash-map
//     nodes, no per-insert allocation. The chains double as the per-variable
//     node enumeration that `swap_adjacent_levels` rewrites.
//   * All operation results go through one fixed-size, power-of-two, lossy
//     computed cache, tagged by operation. Dedicated 2-operand AND and XOR
//     apply paths run beside generic ITE (the `&`, `|`, `^` operators route
//     to them; OR is ¬(¬f ∧ ¬g), free under complement edges). Cache keys are
//     normalised under complementation — ITE is stored with regular f and g,
//     XOR with both operands regular — so one entry serves a function and its
//     negation (four functions, for XOR). Collisions simply overwrite;
//     hit/miss/eviction counters feed the bench harnesses and a high-load
//     policy grows the cache while it keeps earning hits over a windowed
//     hit rate — doubling normally, jumping straight to the working size on
//     a strongly-hitting window (the window restarts whenever the cache is
//     cleared, so a resize decision can never be taken on a stale or empty
//     window right after a GC).
//   * Garbage collection roots come straight from the handle registry: the
//     intrusive list of live `Bdd` handles IS the root set, so handle
//     construction/destruction costs a couple of pointer stores and no
//     refcount traffic. `prune_dead_nodes` marks from the registered handles
//     and unlinks dead nodes from the subtable chains onto an intrusive free
//     list (slots are recycled by the next allocation); `garbage_collect`
//     compacts the arena level by level — nodes of one variable end up
//     contiguous, so `swap_adjacent_levels` and the apply loops walk hot
//     cachelines — and rehashes the subtables.
//
// Handles (`Bdd`) are registered with their `BddManager` on an intrusive
// doubly-linked list (registration is O(1) and allocation-free), which lets
// the manager retarget every live handle when the variable order changes or
// when the node arena is compacted. Handles must not outlive their manager;
// if the manager is destroyed first, surviving handles become null.
//
// A manager and its handles are confined to one thread; share-nothing
// parallelism (one manager per CFSM, as in `synthesize_network`) is the
// supported concurrency model.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace polis::bdd {

class BddManager;

/// Reference-style handle to a BDD node; copyable, registered with the
/// manager so that reordering can update it in place.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool is_null() const { return mgr_ == nullptr; }
  bool is_zero() const;
  bool is_one() const;
  bool is_constant() const { return is_zero() || is_one(); }

  BddManager* manager() const { return mgr_; }
  /// Tagged handle: node index << 1 | complement bit. Equal raw indices on
  /// the same manager denote equal functions (and vice versa), so this is a
  /// valid memoisation key; it is NOT an arena subscript.
  std::uint32_t raw_index() const { return idx_; }
  /// True when this handle reaches its node through a complement edge.
  bool is_complemented() const { return (idx_ & 1u) != 0; }

  /// Variable id labelling the top node. Requires a non-constant BDD.
  int top_var() const;

  /// Children of the top node as functions (the parent's complement bit is
  /// pushed into them). Requires a non-constant BDD.
  Bdd high() const;
  Bdd low() const;

  // Boolean operations (delegate to the manager).
  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;
  bool operator==(const Bdd& o) const {
    return mgr_ == o.mgr_ && idx_ == o.idx_;
  }
  bool operator!=(const Bdd& o) const { return !(*this == o); }

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, std::uint32_t idx);
  void attach(BddManager* mgr, std::uint32_t idx);
  void detach();
  /// Takes over `other`'s registry slot (move construction/assignment):
  /// no refcount traffic, just neighbour pointer fixups.
  void splice(Bdd& other) noexcept;

  BddManager* mgr_ = nullptr;
  std::uint32_t idx_ = 0;
  // Intrusive registry links (owned by the manager).
  Bdd* prev_ = nullptr;
  Bdd* next_ = nullptr;
};

/// Kernel counters, snapshotted by `BddManager::stats()`. All counts are
/// cumulative since construction (or the last `reset_stats`).
struct KernelStats {
  // Top-level operation counts.
  std::uint64_t ite_calls = 0;  // public ite()/band/bor/bxor entries
  std::uint64_t and_apply_calls = 0;  // top-level 2-operand AND/OR applies
  std::uint64_t xor_apply_calls = 0;  // top-level 2-operand XOR applies
  // Computed cache.
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;  // overwrites of a different live entry
  std::uint64_t cache_resizes = 0;
  std::size_t cache_capacity = 0;  // current entry count (power of two)
  // Unique table.
  std::uint64_t unique_lookups = 0;
  std::uint64_t unique_hits = 0;
  // Arena.
  std::size_t arena_nodes = 0;  // allocated slots (live + garbage + free)
  std::size_t peak_nodes = 0;   // high-water arena size
  std::uint64_t nodes_created = 0;
  std::uint64_t nodes_recycled = 0;  // allocations served from the free list
  // Garbage collection.
  std::uint64_t gc_runs = 0;  // prune or compaction passes that freed nodes
  std::uint64_t nodes_reclaimed = 0;
  // Relational product (and_exists).
  std::uint64_t and_exists_calls = 0;       // top-level invocations
  std::uint64_t and_exists_recursions = 0;  // recursive steps taken
  std::uint64_t and_exists_cache_hits = 0;  // computed-cache hits on kOpAndExists
  // Simultaneous variable substitution (rename).
  std::uint64_t rename_calls = 0;  // top-level invocations
  // Cross-manager migration (copy_across; counters on the destination).
  std::uint64_t copy_across_calls = 0;     // top-level invocations
  std::uint64_t copy_nodes = 0;            // nodes materialised in this manager
  std::uint64_t copy_cache_hits = 0;       // translation-cache hits
  std::uint64_t copy_cache_resets = 0;     // cache invalidations (epoch/rebind)

  double cache_hit_rate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// Memoised node-translation cache for `BddManager::copy_across`. Maps
/// regular source handles to their images in the destination manager; the
/// values are registered `Bdd` handles, so they both survive and are
/// retargeted by destination-side garbage collection — a warm cache stays
/// valid across destination GCs. Source-side validity is tracked by the
/// source manager's structure epoch: any operation that can reuse or
/// renumber source arena slots (compaction, pruning, reordering) bumps the
/// epoch and the next `copy_across` discards the cache. One cache binds one
/// (source, destination) pair; pass it back to the same pair to reuse
/// translations across calls (the parallel reachability engine keeps one
/// per direction per worker for exactly this).
class CopyCache {
 public:
  CopyCache() = default;
  CopyCache(const CopyCache&) = delete;
  CopyCache& operator=(const CopyCache&) = delete;

  /// Cached translations currently held.
  std::size_t size() const { return map_.size(); }
  /// Drops all translations (the binding is re-established on next use).
  void clear() {
    map_.clear();
    src_ = nullptr;
    dst_ = nullptr;
  }

 private:
  friend class BddManager;
  const BddManager* src_ = nullptr;
  BddManager* dst_ = nullptr;
  std::uint64_t src_epoch_ = 0;
  std::unordered_map<std::uint32_t, Bdd> map_;  // regular src handle -> dst
};

/// Owns the node arena, per-variable unique subtables, computed cache and
/// variable order.
class BddManager {
 public:
  BddManager();
  explicit BddManager(int num_vars);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // --- Variables -------------------------------------------------------------

  /// Creates a new variable placed at the bottom of the current order.
  int new_var(std::string name = {});
  int num_vars() const { return static_cast<int>(perm_.size()); }
  const std::string& var_name(int var) const;
  void set_var_name(int var, std::string name);

  /// Level (0 = top) of `var` in the current order.
  int level_of(int var) const { return perm_[static_cast<size_t>(var)]; }
  /// Variable at `level` in the current order.
  int var_at_level(int level) const {
    return invperm_[static_cast<size_t>(level)];
  }
  /// Current order as a top-to-bottom list of variable ids.
  std::vector<int> current_order() const { return invperm_; }

  // --- Construction ----------------------------------------------------------

  Bdd zero() { return make(kZero); }
  Bdd one() { return make(kOne); }
  Bdd var(int v);
  Bdd nvar(int v);
  Bdd constant(bool b) { return b ? one() : zero(); }

  // --- Core operations ---------------------------------------------------------

  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  /// Dedicated 2-operand apply paths (beside generic ITE): AND recurses on
  /// two operands with a commutatively-normalised cache key; OR is
  /// ¬(¬f ∧ ¬g) (free negations under complement edges); XOR normalises both
  /// operands to regular form so one cache entry serves all four phase
  /// combinations.
  Bdd band(const Bdd& f, const Bdd& g);
  Bdd bor(const Bdd& f, const Bdd& g);
  Bdd bxor(const Bdd& f, const Bdd& g);
  /// Complement: a pointer flip on the handle. Free — no recursion, no
  /// cache traffic, no new nodes — and `bnot(bnot(f))` is handle-identical
  /// to `f`.
  Bdd bnot(const Bdd& f);
  Bdd implies(const Bdd& f, const Bdd& g) { return ite(f, g, one()); }

  /// Restriction f|_{var=val} (cofactor, §II-C).
  Bdd cofactor(const Bdd& f, int var, bool val);

  /// Smoothing S_vars(f) = existential quantification of `vars` (§II-C).
  Bdd smooth(const Bdd& f, const std::vector<int>& vars);
  Bdd forall(const Bdd& f, const std::vector<int>& vars);

  /// Relational product ∃vars. f ∧ g — the image-computation workhorse.
  /// Conjoins and quantifies in one recursion (with its own computed-cache
  /// tag) instead of materialising f ∧ g first, so the intermediate
  /// conjunction over the quantified variables is never built.
  Bdd and_exists(const Bdd& f, const Bdd& g, const std::vector<int>& vars);

  /// Substitutes `g` for variable `var` in `f`.
  Bdd compose(const Bdd& f, int var, const Bdd& g);

  /// Registers a simultaneous variable substitution (every `first` becomes
  /// `second`, all at once) for use with `rename`. Maps are immutable and
  /// live for the manager's lifetime; the returned id is a stable computed
  /// cache key, so renames memoise across calls — in the reachability
  /// fixpoint the next→present relabel of an unchanged image subgraph is a
  /// cache hit on the next iteration.
  int register_rename(const std::vector<std::pair<int, int>>& from_to);

  /// Simultaneous substitution of variables for variables (CUDD's permute).
  /// One memoised pass over `f`; when a target variable sits above both
  /// renamed children — the interleaved present/next encoding guarantees
  /// this for next→present — each step is a single `find_or_add`, making
  /// the relabel O(nodes) instead of one `compose` traversal per variable.
  /// Falls back to ITE per node for arbitrary (support-overlapping) maps.
  Bdd rename(const Bdd& f, int map_id);

  /// Migrates `f` from its own manager into this one, structurally —
  /// memoised `find_or_add` per source node, no text round-trip and no ITE
  /// rebuild. Requires both managers to have the same variables in the same
  /// order. `cache` memoises source-node translations across calls (see
  /// `CopyCache`); it is (re)bound to this (source, destination) pair and
  /// invalidated automatically when the source's structure epoch moves.
  /// Copying preserves the complement-edge canonical form: the image of a
  /// regular handle is regular, so equal functions land on equal handles.
  Bdd copy_across(const Bdd& f, CopyCache& cache);

  /// Monotone counter bumped by every operation that can renumber or
  /// recycle arena slots (`garbage_collect`, `prune_dead_nodes`,
  /// `set_order`, `swap_adjacent_levels`). While it holds still, a raw node
  /// index keeps denoting the same function — the validity contract of
  /// `CopyCache` entries keyed on this manager as source.
  std::uint64_t structure_epoch() const { return structure_epoch_; }

  /// Coudert–Madre restrict (sibling substitution): a function equal to `f`
  /// wherever `care` holds, heuristically minimised using ¬care as don't
  /// care. Used to exploit false-path information (§III-C) without growing
  /// the result the way f∧care would.
  Bdd restrict(const Bdd& f, const Bdd& care);

  // --- Queries -----------------------------------------------------------------

  /// Variables `f` essentially depends on (§II-C definition of support).
  std::set<int> support(const Bdd& f);

  /// Evaluates under a total assignment.
  bool eval(const Bdd& f, const std::function<bool(int)>& assignment);

  /// Number of minterms over `nvars` variables. Scaling uses exact ldexp
  /// 2^k factors (no underflowing per-node fractions), so wide encodings
  /// count exactly up to the 2^53 integer precision of double.
  double sat_count(const Bdd& f, int nvars);

  /// One satisfying assignment as (var, value) pairs over support vars.
  /// Requires a satisfiable f.
  std::vector<std::pair<int, bool>> one_sat(const Bdd& f);

  /// Distinct internal subfunctions reachable from `f` — each (node, phase)
  /// pair counts once, so the number matches the node count of a
  /// non-complement-edge BDD and the sifting objective is unchanged by the
  /// tagged representation. Terminals are excluded so the count agrees with
  /// `var_node_profile`.
  size_t node_count(const Bdd& f);
  /// As above over several roots (shared subfunctions counted once).
  size_t node_count(const std::vector<Bdd>& roots);
  /// Physical nodes reachable from `f` in the shared arena: a function and
  /// its complement count once. This is the complement-edge win over
  /// `node_count`.
  size_t shared_node_count(const Bdd& f);
  /// Total node slots in the arena (live + garbage + free).
  size_t arena_size() const { return nodes_.size(); }

  /// Bytes held by the node arena and computed cache — what the governor's
  /// arena-bytes cap meters.
  size_t arena_bytes() const {
    return nodes_.capacity() * sizeof(Node) +
           cache_.capacity() * sizeof(CacheEntry);
  }

  /// Nodes currently threaded on the unique-table chains (live + garbage,
  /// excluding recycled free slots). The gap to the physically live count is
  /// the garbage a `prune_dead_nodes` would reclaim — the sifting loop's
  /// prune trigger.
  size_t table_node_count() const {
    size_t total = 0;
    for (const Subtable& st : subtables_) total += st.count;
    return total;
  }

  /// Kernel counter snapshot (cache hit rates, peak nodes, GC work).
  KernelStats stats() const;
  /// Clears the cumulative counters; `peak_nodes` restarts from the current
  /// arena size.
  void reset_stats();

  /// Adds everything counted since the last flush into the process-wide
  /// `obs::MetricsRegistry` under the "bdd.*" names (cache hit counters, GC
  /// work, peak nodes). Incremental and idempotent — flushing twice adds
  /// nothing new — and also run by the destructor, so short-lived managers
  /// (one per CFSM in `synthesize_network`) are never lost from a
  /// `--metrics` snapshot. The local `stats()` view is unaffected.
  void flush_stats_to_obs();

  // --- Reordering / memory -----------------------------------------------------

  /// Replaces the variable order; `order` is a permutation of all var ids,
  /// top to bottom. All registered handles are retargeted.
  void set_order(const std::vector<int>& order);

  /// Rudell's adjacent-level swap: exchanges the variables at `level` and
  /// `level + 1` by rewriting, in place, only the nodes labelled with the
  /// upper variable. Every node index keeps denoting the same Boolean
  /// function (the canonical regular-then-edge form is preserved through the
  /// rewrite), so registered handles, the unique table and the computed
  /// cache all stay valid — no arena rebuild. Children of swapped nodes may
  /// be orphaned (reclaimed by the next `prune_dead_nodes`). Returns the
  /// number of nodes rewritten.
  size_t swap_adjacent_levels(int level);

  /// Distinct internal subfunctions reachable from the registered handles
  /// (terminals excluded): the sifting objective, phase-counted like
  /// `node_count`. O(live) per call via the reference-counted root set —
  /// independent of how many handles alias the same roots.
  size_t live_node_count();

  /// Compacts the arena, keeping only nodes reachable from live handles.
  /// Live nodes are renumbered level by level (top level first), so after a
  /// collection the nodes of one variable occupy a contiguous arena run —
  /// the layout `swap_adjacent_levels` and the apply recursions walk.
  /// Registered handles are retargeted to the compacted indices.
  void garbage_collect();

  /// Unlinks nodes unreachable from live handles from the subtable chains
  /// and pushes their slots onto the free list for recycling (the arena is
  /// not compacted). O(arena), no handle retargeting — cheap enough for the
  /// sifting hot loop. Returns the number of nodes pruned.
  size_t prune_dead_nodes();

  /// Size (subfunction count) the live handles would have under `order`,
  /// without modifying this manager. Used by the sifting reorderer.
  size_t size_under_order(const std::vector<int>& order);

  /// Distinct tagged handles of all registered handles (live roots;
  /// terminals excluded).
  std::vector<std::uint32_t> live_roots() const;

  /// Per-variable count of live subfunctions (reachable from registered
  /// handles, phase-counted like `node_count`).
  std::vector<size_t> var_node_profile();

  /// Test/debug hook: checks the complement-edge canonical-form invariant
  /// over the whole arena — no stored node has a complemented then-edge,
  /// every stored node has distinct child handles, and children point at
  /// allocated, non-dead slots. Returns true when the arena is canonical.
  bool check_canonical_form() const;

 private:
  friend class Bdd;

  struct Node {
    std::uint32_t var;
    /// Children as tagged handles. Canonical form: `hi` is always regular
    /// (complement bit clear); `lo` may carry a complement edge.
    std::uint32_t lo;
    std::uint32_t hi;
    /// Intrusive link: next node *index* in this node's unique-subtable
    /// collision chain, or next slot on the free list once the node is dead.
    std::uint32_t next;
  };

  /// Per-variable unique subtable: bucket heads into the intrusive chains.
  struct Subtable {
    std::vector<std::uint32_t> buckets;  // kNil-terminated chain heads
    std::uint32_t count = 0;             // nodes currently in the chains
  };

  /// One lossy computed-cache entry, packed to 16 bytes so a probe touches
  /// exactly one cacheline. `key0` folds the op tag into the top 4 bits of
  /// the first operand — sound because handles stay below 2^28 (the arena
  /// is capped at kMaxArenaNodes). `key0 == 0` marks an empty slot: every
  /// real op is >= 1, so a live entry has key0 >= 1 << kOpShift.
  struct CacheEntry {
    std::uint32_t key0 = 0;  // a | (op << kOpShift)
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    std::uint32_t result = 0;
  };
  static_assert(sizeof(CacheEntry) == 16,
                "cache entries must not straddle cachelines");

  enum CacheOp : std::uint32_t {
    kOpNone = 0,
    kOpIte,        // keys normalised: f and g stored regular
    kOpAnd,        // commutative: a <= b
    kOpXor,        // commutative, both operands stored regular: a <= b
    kOpCofactor,   // b = (var << 1) | val; key stored regular
    kOpExists,     // b = positive cube; key stored regular (¬f flips to ∀)
    kOpForall,     // b = positive cube; key stored regular (¬f flips to ∃)
    kOpCompose,    // b = g, c = var; key stored regular
    kOpRestrict,   // b = care
    kOpAndExists,  // b = second conjunct, c = positive cube of the vars
    kOpRename,     // b = rename map id; key stored regular
  };

  // Tagged-handle encoding: handle = node index << 1 | complement bit. The
  // single terminal (constant one) lives at arena index 0; false is its
  // complement.
  static constexpr std::uint32_t kOne = 0;
  static constexpr std::uint32_t kZero = 1;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kTermVar = 0xffffffffu;
  static constexpr std::uint32_t kDeadVar = 0xfffffffeu;
  static constexpr size_t kInitBuckets = 8;         // per-subtable
  static constexpr size_t kMaxChainLoad = 4;        // avg chain length bound
  // The initial size is a real trade-off: the whole cache is zeroed at
  // construction and on every GC clear, and `synthesize_network` /
  // `sift_by_rebuild` build one manager per CFSM (or per candidate
  // position), so a CUDD-scale initial cache taxes every small manager a
  // megabyte of memset for entries it never probes. Start at 8Ki entries
  // (128 KiB) and let the resize policy jump a strongly-hitting manager
  // straight to `kJumpCacheEntries` (see `maybe_resize_cache`).
  static constexpr size_t kInitCacheEntries = 1u << 13;
  static constexpr size_t kJumpCacheEntries = 1u << 16;
  // The ceiling matters for long symbolic fixpoints: full-dash reachability
  // issues ~10^9 cache lookups over a ~7M-node working set, and capping the
  // cache at 4Mi entries (64 MiB) evicted 455M live entries — raising the
  // cap to 64Mi entries (1 GiB, reached only after the windowed policy has
  // doubled through eleven sustained-hit-rate checkpoints) cut that run
  // from ~260 s to ~55 s. Small managers never get near it; the governor's
  // arena-bytes cap still meters the cache, so budgeted runs stay bounded.
  static constexpr size_t kMaxCacheEntries = 1u << 26;
  /// Arena ceiling (2^27 nodes ≈ 2 GiB of Node storage). Keeps every tagged
  /// handle below 2^28 so cache keys can carry the op tag in their top bits.
  static constexpr size_t kMaxArenaNodes = 1u << 27;
  static constexpr std::uint32_t kOpShift = 28;

  static constexpr std::uint32_t idx_of(std::uint32_t h) { return h >> 1; }
  static constexpr std::uint32_t comp_of(std::uint32_t h) { return h & 1u; }
  static constexpr std::uint32_t negate(std::uint32_t h) { return h ^ 1u; }
  static constexpr std::uint32_t regular(std::uint32_t h) { return h & ~1u; }

  Bdd make(std::uint32_t h) { return Bdd(this, h); }
  /// A handle is terminal iff it points at arena slot 0 (either phase).
  bool is_term(std::uint32_t h) const { return h <= kZero; }
  int level(std::uint32_t h) const {
    return is_term(h) ? kTermLevel : perm_[nodes_[idx_of(h)].var];
  }

  // Unique table. `find_or_add` is the single node constructor and enforces
  // the canonical form: a complemented then-edge complements both children
  // and returns a negated handle.
  std::uint32_t find_or_add(std::uint32_t var, std::uint32_t lo,
                            std::uint32_t hi);
  void subtable_insert(std::uint32_t var, std::uint32_t idx);
  void grow_subtable(Subtable& st);
  static std::uint32_t hash_children(std::uint32_t lo, std::uint32_t hi) {
    std::uint64_t h = (static_cast<std::uint64_t>(lo) << 32) | hi;
    h *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>(h >> 32);
  }

  // Computed cache.
  bool cache_lookup(std::uint32_t op, std::uint32_t a, std::uint32_t b,
                    std::uint32_t c, std::uint32_t* result);
  void cache_insert(std::uint32_t op, std::uint32_t a, std::uint32_t b,
                    std::uint32_t c, std::uint32_t result);
  void cache_clear();
  void resize_cache(size_t new_entries);
  void maybe_resize_cache();
  size_t cache_slot(std::uint32_t key0, std::uint32_t b,
                    std::uint32_t c) const {
    // Two independent multiplies (not a chained mix): the probe address is
    // on the critical path of every operation, so hash latency is ~7 cycles
    // instead of ~15. Quality is ample for a lossy direct-mapped cache.
    const std::uint64_t h =
        key0 * 0x9e3779b97f4a7c15ULL ^
        ((static_cast<std::uint64_t>(b) << 32 | c) * 0xbf58476d1ce4e5b9ULL);
    return static_cast<size_t>(h ^ (h >> 32)) & cache_mask_;
  }

  // Operations on tagged handles.
  std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t and_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t xor_rec(std::uint32_t f, std::uint32_t g);
  std::uint32_t or_of(std::uint32_t f, std::uint32_t g) {
    return negate(and_rec(negate(f), negate(g)));
  }
  std::uint32_t cofactor_rec(std::uint32_t f, int var, bool val);
  std::uint32_t quant_rec(std::uint32_t f, std::uint32_t cube,
                          bool existential);
  std::uint32_t and_exists_rec(std::uint32_t f, std::uint32_t g,
                               std::uint32_t cube);
  std::uint32_t compose_rec(std::uint32_t f, int var, std::uint32_t g);
  std::uint32_t rename_rec(std::uint32_t f, const std::vector<int>& map,
                           std::uint32_t map_id);
  std::uint32_t restrict_rec(std::uint32_t f, std::uint32_t care);
  std::uint32_t copy_rec(const BddManager& src, std::uint32_t f,
                         CopyCache& cache);
  /// Positive cube (ordered conjunction) of `vars`, built bottom-up.
  std::uint32_t make_cube(const std::vector<int>& vars);
  std::uint32_t transfer_from(BddManager& src, std::uint32_t f,
                              std::vector<std::uint32_t>& memo);

  // Handle registry. The intrusive doubly-linked list of registered `Bdd`
  // handles IS the root set: construction/destruction only links/unlinks
  // (no refcount traffic on the hot path), and GC / reordering walk the
  // list when they need the roots.
  void register_handle(Bdd* h);
  void unregister_handle(Bdd* h);

  /// Marks subfunctions reachable from the registered handles with a fresh
  /// epoch (one visit slot per tagged handle) and returns the subfunction
  /// count. Leaves the epoch in visit_epoch_ for callers that filter by
  /// liveness; a *node* is live iff either of its phases is marked.
  size_t mark_live();

  void check_var(int v) const;

  static constexpr int kTermLevel = 0x7fffffff;

  std::vector<Node> nodes_;
  std::vector<Subtable> subtables_;   // one per variable
  std::uint32_t free_head_ = kNil;    // intrusive free list through `next`
  std::vector<CacheEntry> cache_;
  size_t cache_mask_ = 0;
  std::vector<int> perm_;     // var -> level
  std::vector<int> invperm_;  // level -> var
  std::vector<std::string> names_;
  std::vector<std::vector<int>> rename_maps_;  // map id -> var -> new var
  std::uint64_t structure_epoch_ = 0;
  Bdd* handle_head_ = nullptr;  // intrusive doubly-linked handle registry
  // Epoch-marked visit buffer for allocation-free traversals; one slot per
  // tagged handle (2 × arena slots).
  std::vector<std::uint64_t> visit_epoch_;
  std::vector<std::uint32_t> visit_stack_;
  std::vector<std::uint32_t> swap_scratch_;
  std::uint64_t epoch_ = 0;
  // Cache resize policy state: the observation window since the last resize
  // or cache clear.
  std::uint64_t cache_lookups_at_resize_ = 0;
  std::uint64_t cache_hits_at_resize_ = 0;
  std::uint64_t cache_inserts_at_resize_ = 0;
  KernelStats stats_;
  KernelStats flushed_stats_;  // high-water mark of flush_stats_to_obs
  // Nodes/bytes this manager has charged to the ambient ResourceGovernor
  // (refunded on GC compaction and at destruction, so a governor outliving
  // many managers meters live usage, not cumulative traffic).
  std::uint64_t gov_charged_nodes_ = 0;
  std::uint64_t gov_charged_bytes_ = 0;
};

// --- Inline handle lifecycle -----------------------------------------------------
// Handle construction, destruction and moves sit on the hot path of every
// Boolean operation in every consumer TU; keeping the registry splices
// inline makes a temporary handle a handful of pointer stores instead of a
// chain of cross-TU calls.

inline void BddManager::register_handle(Bdd* h) {
  h->prev_ = nullptr;
  h->next_ = handle_head_;
  if (handle_head_ != nullptr) handle_head_->prev_ = h;
  handle_head_ = h;
}

inline void BddManager::unregister_handle(Bdd* h) {
  if (h->prev_ != nullptr) {
    h->prev_->next_ = h->next_;
  } else {
    handle_head_ = h->next_;
  }
  if (h->next_ != nullptr) h->next_->prev_ = h->prev_;
}

inline void Bdd::attach(BddManager* mgr, std::uint32_t idx) {
  mgr_ = mgr;
  idx_ = idx;
  if (mgr_ != nullptr) mgr_->register_handle(this);
}

inline void Bdd::detach() {
  if (mgr_ != nullptr) mgr_->unregister_handle(this);
  mgr_ = nullptr;
  idx_ = 0;
  prev_ = nullptr;
  next_ = nullptr;
}

inline void Bdd::splice(Bdd& other) noexcept {
  // Move = take over `other`'s slot in the manager's handle list: two
  // neighbour pointer fixups, no registry round trip.
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  prev_ = other.prev_;
  next_ = other.next_;
  if (mgr_ != nullptr) {
    if (prev_ != nullptr) {
      prev_->next_ = this;
    } else {
      mgr_->handle_head_ = this;
    }
    if (next_ != nullptr) next_->prev_ = this;
  }
  other.mgr_ = nullptr;
  other.idx_ = 0;
  other.prev_ = nullptr;
  other.next_ = nullptr;
}

inline Bdd::Bdd(BddManager* mgr, std::uint32_t idx) { attach(mgr, idx); }

inline Bdd::Bdd(const Bdd& other) { attach(other.mgr_, other.idx_); }

inline Bdd::Bdd(Bdd&& other) noexcept { splice(other); }

inline Bdd& Bdd::operator=(const Bdd& other) {
  if (this != &other) {
    detach();
    attach(other.mgr_, other.idx_);
  }
  return *this;
}

inline Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this != &other) {
    detach();
    splice(other);
  }
  return *this;
}

inline Bdd::~Bdd() { detach(); }

// Boolean operators forward straight into the manager; inline so the only
// out-of-line call per operation is the apply recursion itself.
inline Bdd Bdd::operator&(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->band(*this, o);
}

inline Bdd Bdd::operator|(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->bor(*this, o);
}

inline Bdd Bdd::operator^(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->bxor(*this, o);
}

inline Bdd Bdd::operator!() const {
  POLIS_CHECK_MSG(!is_null(), "Boolean op on a null BDD handle");
  return mgr_->bnot(*this);
}

}  // namespace polis::bdd
