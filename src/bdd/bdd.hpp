// A from-scratch ROBDD package (Bryant [10]) in the style the paper relies
// on: unique table for canonicity, ITE with a computed cache, cofactors,
// smoothing (existential quantification, §II-C), support computation, and
// order replacement used by the sifting reorderer (Rudell [31]).
//
// Handles (`Bdd`) are registered with their `BddManager`, which lets the
// manager retarget every live handle when the variable order changes or when
// the node arena is compacted. Handles must not outlive their manager; if the
// manager is destroyed first, surviving handles become null.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace polis::bdd {

class BddManager;

/// Reference-style handle to a BDD node; copyable, registered with the
/// manager so that reordering can update it in place.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& other);
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other);
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool is_null() const { return mgr_ == nullptr; }
  bool is_zero() const;
  bool is_one() const;
  bool is_constant() const { return is_zero() || is_one(); }

  BddManager* manager() const { return mgr_; }
  std::uint32_t raw_index() const { return idx_; }

  /// Variable id labelling the top node. Requires a non-constant BDD.
  int top_var() const;

  /// Children of the top node. Requires a non-constant BDD.
  Bdd high() const;
  Bdd low() const;

  // Boolean operations (delegate to the manager).
  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;
  bool operator==(const Bdd& o) const {
    return mgr_ == o.mgr_ && idx_ == o.idx_;
  }
  bool operator!=(const Bdd& o) const { return !(*this == o); }

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, std::uint32_t idx);
  void attach(BddManager* mgr, std::uint32_t idx);
  void detach();

  BddManager* mgr_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Owns the node arena, unique table, computed cache and variable order.
class BddManager {
 public:
  BddManager();
  explicit BddManager(int num_vars);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // --- Variables -------------------------------------------------------------

  /// Creates a new variable placed at the bottom of the current order.
  int new_var(std::string name = {});
  int num_vars() const { return static_cast<int>(perm_.size()); }
  const std::string& var_name(int var) const;
  void set_var_name(int var, std::string name);

  /// Level (0 = top) of `var` in the current order.
  int level_of(int var) const { return perm_[static_cast<size_t>(var)]; }
  /// Variable at `level` in the current order.
  int var_at_level(int level) const {
    return invperm_[static_cast<size_t>(level)];
  }
  /// Current order as a top-to-bottom list of variable ids.
  std::vector<int> current_order() const { return invperm_; }

  // --- Construction ----------------------------------------------------------

  Bdd zero() { return make(0); }
  Bdd one() { return make(1); }
  Bdd var(int v);
  Bdd nvar(int v);
  Bdd constant(bool b) { return b ? one() : zero(); }

  // --- Core operations ---------------------------------------------------------

  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  Bdd band(const Bdd& f, const Bdd& g) { return ite(f, g, zero()); }
  Bdd bor(const Bdd& f, const Bdd& g) { return ite(f, one(), g); }
  Bdd bxor(const Bdd& f, const Bdd& g) { return ite(f, bnot(g), g); }
  Bdd bnot(const Bdd& f) { return ite(f, zero(), one()); }
  Bdd implies(const Bdd& f, const Bdd& g) { return ite(f, g, one()); }

  /// Restriction f|_{var=val} (cofactor, §II-C).
  Bdd cofactor(const Bdd& f, int var, bool val);

  /// Smoothing S_vars(f) = existential quantification of `vars` (§II-C).
  Bdd smooth(const Bdd& f, const std::vector<int>& vars);
  Bdd forall(const Bdd& f, const std::vector<int>& vars);

  /// Substitutes `g` for variable `var` in `f`.
  Bdd compose(const Bdd& f, int var, const Bdd& g);

  /// Coudert–Madre restrict (sibling substitution): a function equal to `f`
  /// wherever `care` holds, heuristically minimised using ¬care as don't
  /// care. Used to exploit false-path information (§III-C) without growing
  /// the result the way f∧care would.
  Bdd restrict(const Bdd& f, const Bdd& care);

  // --- Queries -----------------------------------------------------------------

  /// Variables `f` essentially depends on (§II-C definition of support).
  std::set<int> support(const Bdd& f);

  /// Evaluates under a total assignment.
  bool eval(const Bdd& f, const std::function<bool(int)>& assignment);

  /// Number of minterms over `nvars` variables.
  double sat_count(const Bdd& f, int nvars);

  /// One satisfying assignment as (var, value) pairs over support vars.
  /// Requires a satisfiable f.
  std::vector<std::pair<int, bool>> one_sat(const Bdd& f);

  /// Internal (non-terminal) nodes reachable from `f`. Terminals are
  /// excluded so the count agrees with `var_node_profile` and with the
  /// sifting objective.
  size_t node_count(const Bdd& f);
  /// Internal nodes reachable from any of `roots` (shared nodes counted
  /// once, terminals excluded).
  size_t node_count(const std::vector<Bdd>& roots);
  /// Total nodes in the arena (live + garbage).
  size_t arena_size() const { return nodes_.size(); }

  // --- Reordering / memory -----------------------------------------------------

  /// Replaces the variable order; `order` is a permutation of all var ids,
  /// top to bottom. All registered handles are retargeted.
  void set_order(const std::vector<int>& order);

  /// Rudell's adjacent-level swap: exchanges the variables at `level` and
  /// `level + 1` by rewriting, in place, only the nodes labelled with the
  /// upper variable. Every node index keeps denoting the same Boolean
  /// function, so registered handles, the unique table and the computed
  /// cache all stay valid — no arena rebuild. Children of swapped nodes may
  /// be orphaned (collected by the next `garbage_collect`). Returns the
  /// number of nodes rewritten.
  size_t swap_adjacent_levels(int level);

  /// Internal nodes reachable from the registered handles (terminals
  /// excluded): the sifting objective. O(live) per call, allocation-free
  /// after the first call — much cheaper than `size_under_order`.
  size_t live_node_count();

  /// Compacts the arena, keeping only nodes reachable from live handles.
  void garbage_collect();

  /// Removes nodes unreachable from live handles from the unique table and
  /// the per-variable subtables without rebuilding the arena (their slots
  /// stay allocated until `garbage_collect`). O(arena), no handle
  /// retargeting — cheap enough for the sifting hot loop. Returns the
  /// number of nodes pruned.
  size_t prune_dead_nodes();

  /// Size (node count) the live handles would have under `order`, without
  /// modifying this manager. Used by the sifting reorderer.
  size_t size_under_order(const std::vector<int>& order);

  /// Distinct node indices of all registered handles (live roots).
  std::vector<std::uint32_t> live_roots() const;

  /// Per-variable count of live nodes (reachable from registered handles).
  std::vector<size_t> var_node_profile();

 private:
  friend class Bdd;

  struct Node {
    std::uint32_t var;
    std::uint32_t lo;
    std::uint32_t hi;
  };
  struct UniqueKey {
    std::uint32_t var, lo, hi;
    bool operator==(const UniqueKey& o) const {
      return var == o.var && lo == o.lo && hi == o.hi;
    }
  };
  struct UniqueKeyHash {
    size_t operator()(const UniqueKey& k) const {
      std::uint64_t h = (std::uint64_t)k.var * 0x9e3779b97f4a7c15ULL;
      h ^= (std::uint64_t)k.lo + 0xbf58476d1ce4e5b9ULL + (h << 6);
      h ^= (std::uint64_t)k.hi + 0x94d049bb133111ebULL + (h << 12);
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct IteKey {
    std::uint32_t f, g, h;
    bool operator==(const IteKey& o) const {
      return f == o.f && g == o.g && h == o.h;
    }
  };
  struct IteKeyHash {
    size_t operator()(const IteKey& k) const {
      return UniqueKeyHash()(UniqueKey{k.f, k.g, k.h});
    }
  };

  static constexpr std::uint32_t kZero = 0;
  static constexpr std::uint32_t kOne = 1;
  static constexpr std::uint32_t kTermVar = 0xffffffffu;

  Bdd make(std::uint32_t idx) { return Bdd(this, idx); }
  bool is_term(std::uint32_t n) const { return n <= kOne; }
  int level(std::uint32_t n) const {
    return is_term(n) ? kTermLevel : perm_[nodes_[n].var];
  }
  std::uint32_t find_or_add(std::uint32_t var, std::uint32_t lo,
                            std::uint32_t hi);
  std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t cofactor_rec(std::uint32_t f, int var, bool val,
                             std::unordered_map<std::uint32_t, std::uint32_t>& memo);
  std::uint32_t quant_rec(std::uint32_t f, const std::vector<bool>& in_set,
                          bool existential,
                          std::unordered_map<std::uint32_t, std::uint32_t>& memo);
  std::uint32_t transfer_from(BddManager& src, std::uint32_t f,
                              std::unordered_map<std::uint32_t, std::uint32_t>& memo);
  void register_handle(Bdd* h) { handles_.insert(h); }
  void unregister_handle(Bdd* h) { handles_.erase(h); }
  void check_var(int v) const;

  static constexpr int kTermLevel = 0x7fffffff;

  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, std::uint32_t, UniqueKeyHash> unique_;
  std::unordered_map<IteKey, std::uint32_t, IteKeyHash> ite_cache_;
  std::vector<int> perm_;     // var -> level
  std::vector<int> invperm_;  // level -> var
  std::vector<std::string> names_;
  std::unordered_set<Bdd*> handles_;
  // Per-variable subtables (node indices labelled with each var, live or
  // garbage) so a level swap touches only the affected nodes.
  std::vector<std::vector<std::uint32_t>> var_nodes_;
  // Epoch-marked visit buffer for allocation-free live traversals.
  std::vector<std::uint64_t> visit_epoch_;
  std::vector<std::uint32_t> visit_stack_;
  std::vector<std::uint32_t> swap_scratch_;
  std::uint64_t epoch_ = 0;
};

}  // namespace polis::bdd
