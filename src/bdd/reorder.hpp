// Dynamic variable reordering by sifting (Rudell [31]), with precedence
// constraints.
//
// The paper's default ordering scheme ("outputs after their support",
// §III-B3b) is sifting constrained so that no output variable may move above
// any input in its support. A precedence pair (a, b) means "a must stay
// above b" in the final order.
//
// Each variable is moved, one at a time, through every legal position; it is
// frozen at the position minimising the total live-BDD node count (exactly
// the sift objective). Positions are evaluated by rebuilding the live
// functions under the candidate order, which yields the same final order as
// in-place level swapping, at a cost acceptable for the problem sizes of the
// paper's domain (CFSM reactive functions).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"

namespace polis::bdd {

struct SiftOptions {
  /// Full sweeps over all variables. One pass reproduces the paper's
  /// "single-pass dynamic variable ordering (sift)" (§V-A).
  int passes = 1;
  /// If >0, only the `max_vars` highest-node-count variables are sifted per
  /// pass (CUDD-style economy); 0 sifts all.
  int max_vars = 0;
};

/// Sifts the manager's live functions. `precedence` lists (above, below)
/// variable pairs that must be respected. Returns the final live node count.
size_t sift(BddManager& mgr,
            const std::vector<std::pair<int, int>>& precedence,
            const SiftOptions& options = {});

/// Unconstrained sifting.
size_t sift(BddManager& mgr, const SiftOptions& options = {});

/// True if `order` (top to bottom) satisfies all precedence pairs.
bool order_respects(const std::vector<int>& order,
                    const std::vector<std::pair<int, int>>& precedence);

}  // namespace polis::bdd
