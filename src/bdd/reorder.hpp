// Dynamic variable reordering by sifting (Rudell [31]), with precedence
// constraints.
//
// The paper's default ordering scheme ("outputs after their support",
// §III-B3b) is sifting constrained so that no output variable may move above
// any input in its support. A precedence pair (a, b) means "a must stay
// above b" in the final order.
//
// Each variable is moved, one at a time, through every legal position; it is
// frozen at the position minimising the total live-BDD node count (exactly
// the sift objective). `sift` walks the variable down and then up through
// its legal window with in-place adjacent-level swaps
// (`BddManager::swap_adjacent_levels`), measuring the live size after each
// swap — no arena rebuilds on the hot path. `sift_by_rebuild` is the
// original rebuild-per-candidate implementation, kept as a slow reference
// oracle: both produce identical final orders and sizes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"

namespace polis::bdd {

/// Counters filled in by `sift`, consumable by the bench harness.
struct SiftTelemetry {
  /// Adjacent-level swaps performed (including settle-back moves).
  size_t swaps = 0;
  /// Live-size measurements taken (one per candidate position visited).
  size_t size_evaluations = 0;
  /// Live node count before / after sifting (terminals excluded).
  size_t initial_size = 0;
  size_t final_size = 0;
  /// Largest arena (live + garbage nodes) seen while sifting.
  size_t peak_arena = 0;
  /// Mid-sift garbage collections triggered by arena growth.
  int garbage_collections = 0;
  /// Passes actually executed (≤ SiftOptions::passes; stops when a pass
  /// yields no improvement).
  int passes_run = 0;
  /// Live size at the end of each executed pass.
  std::vector<size_t> pass_sizes;
  /// True when an ambient ResourceGovernor deadline/budget/cancel stopped
  /// the sift before all candidates were visited. The order in the manager
  /// is still the best one found — sifting is an anytime optimization, so a
  /// truncated run is a correct (just less minimized) result.
  bool stopped_early = false;
};

struct SiftOptions {
  /// Full sweeps over all variables. One pass reproduces the paper's
  /// "single-pass dynamic variable ordering (sift)" (§V-A).
  int passes = 1;
  /// If >0, only the `max_vars` highest-node-count variables are sifted per
  /// pass (CUDD-style economy); 0 sifts all.
  int max_vars = 0;
  /// Cross-check every fast-path size measurement against the
  /// `size_under_order` rebuild oracle (slow; meant for tests).
  bool verify_with_oracle = false;
  /// Optional sink for sift telemetry.
  SiftTelemetry* telemetry = nullptr;
};

/// Sifts the manager's live functions with in-place adjacent-level swaps.
/// `precedence` lists (above, below) variable pairs that must be respected;
/// cyclic constraints are rejected with a CheckError. Returns the final
/// live node count (terminals excluded).
size_t sift(BddManager& mgr,
            const std::vector<std::pair<int, int>>& precedence,
            const SiftOptions& options = {});

/// Unconstrained sifting.
size_t sift(BddManager& mgr, const SiftOptions& options = {});

/// Reference implementation: evaluates every candidate position by
/// rebuilding the live functions in a scratch manager (`size_under_order`).
/// O(vars² × rebuild) — kept only so tests and benches can compare the fast
/// path against it.
size_t sift_by_rebuild(BddManager& mgr,
                       const std::vector<std::pair<int, int>>& precedence,
                       const SiftOptions& options = {});

/// True if `order` (top to bottom) satisfies all precedence pairs.
bool order_respects(const std::vector<int>& order,
                    const std::vector<std::pair<int, int>>& precedence);

}  // namespace polis::bdd
