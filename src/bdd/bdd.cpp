#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"

namespace polis::bdd {

// --- Bdd handle ----------------------------------------------------------------
// Lifecycle (ctors/dtor/moves/registry splices) is inline in bdd.hpp — it is
// the hottest code in the kernel's public surface.

bool Bdd::is_zero() const {
  return mgr_ != nullptr && idx_ == BddManager::kZero;
}

bool Bdd::is_one() const {
  return mgr_ != nullptr && idx_ == BddManager::kOne;
}

int Bdd::top_var() const {
  POLIS_CHECK(!is_null() && !is_constant());
  return static_cast<int>(mgr_->nodes_[BddManager::idx_of(idx_)].var);
}

Bdd Bdd::high() const {
  POLIS_CHECK(!is_null() && !is_constant());
  // Push the handle's complement bit into the child so the result is the
  // positive cofactor of the *function*, not of the underlying node.
  return Bdd(mgr_, mgr_->nodes_[BddManager::idx_of(idx_)].hi ^
                       BddManager::comp_of(idx_));
}

Bdd Bdd::low() const {
  POLIS_CHECK(!is_null() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[BddManager::idx_of(idx_)].lo ^
                       BddManager::comp_of(idx_));
}

// --- Manager ---------------------------------------------------------------------

BddManager::BddManager() {
  // The single terminal (constant one) lives at arena index 0; handle kOne
  // is its regular phase, handle kZero its complement.
  nodes_.push_back(Node{kTermVar, kOne, kOne, kNil});
  cache_.resize(kInitCacheEntries);
  cache_mask_ = kInitCacheEntries - 1;
  stats_.peak_nodes = nodes_.size();
}

BddManager::BddManager(int num_vars) : BddManager() {
  for (int i = 0; i < num_vars; ++i) new_var();
}

BddManager::~BddManager() {
  flush_stats_to_obs();
  // Refund everything still charged so a long-lived governor (one per
  // polisc run / polisd request) meters live usage across managers.
  if (gov_charged_nodes_ != 0 || gov_charged_bytes_ != 0)
    ResourceGovernor::charge_arena_current(
        -static_cast<int64_t>(gov_charged_nodes_),
        -static_cast<int64_t>(gov_charged_bytes_));
  // Null out surviving handles so they do not dangle.
  for (Bdd* h = handle_head_; h != nullptr;) {
    Bdd* next = h->next_;
    h->mgr_ = nullptr;
    h->idx_ = 0;
    h->prev_ = nullptr;
    h->next_ = nullptr;
    h = next;
  }
}

int BddManager::new_var(std::string name) {
  const int v = num_vars();
  perm_.push_back(v);
  invperm_.push_back(v);
  if (name.empty()) name = "v" + std::to_string(v);
  names_.push_back(std::move(name));
  subtables_.emplace_back();
  return v;
}

const std::string& BddManager::var_name(int var) const {
  POLIS_CHECK(var >= 0 && var < num_vars());
  return names_[static_cast<size_t>(var)];
}

void BddManager::set_var_name(int var, std::string name) {
  POLIS_CHECK(var >= 0 && var < num_vars());
  names_[static_cast<size_t>(var)] = std::move(name);
}

void BddManager::check_var(int v) const {
  POLIS_CHECK_MSG(v >= 0 && v < num_vars(), "variable " << v << " not in manager");
}

Bdd BddManager::var(int v) {
  check_var(v);
  return make(find_or_add(static_cast<std::uint32_t>(v), kZero, kOne));
}

Bdd BddManager::nvar(int v) {
  check_var(v);
  return make(find_or_add(static_cast<std::uint32_t>(v), kOne, kZero));
}

// --- Unique table ----------------------------------------------------------------

std::uint32_t BddManager::find_or_add(std::uint32_t var, std::uint32_t lo,
                                      std::uint32_t hi) {
  if (lo == hi) return lo;
  // Canonical form: the stored then-edge is never complemented. A request
  // with complemented `hi` stores the complemented node and returns a
  // negated handle instead, so every function has exactly one
  // representation and handle equality is function equality.
  const std::uint32_t out_c = comp_of(hi);
  lo ^= out_c;
  hi ^= out_c;
  Subtable& st = subtables_[var];
  if (st.buckets.empty()) st.buckets.assign(kInitBuckets, kNil);
  ++stats_.unique_lookups;
  const size_t slot = hash_children(lo, hi) & (st.buckets.size() - 1);
  for (std::uint32_t n = st.buckets[slot]; n != kNil; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.lo == lo && nd.hi == hi) {
      ++stats_.unique_hits;
      return (n << 1) | out_c;
    }
  }
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = nodes_[idx].next;
    ++stats_.nodes_recycled;
  } else {
    // Everything that can fail happens before any mutation, so a throw here
    // unwinds with the manager fully consistent (the satisfied lookup path
    // above, live handles, tables and cache are all untouched) — this is the
    // recoverable-unwind boundary the governor relies on.
    if (nodes_.size() >= kMaxArenaNodes)
      throw BudgetExceeded(
          BudgetExceeded::Kind::kNodes,
          "BDD arena exceeds " + std::to_string(kMaxArenaNodes) +
              " nodes (handle space exhausted)");
    ResourceGovernor::draw_alloc_fault_current("bdd.arena");
    // Charge-then-refund-on-failure keeps the governor's counter equal to
    // the nodes that actually exist, so the destructor's refund is exact
    // even across many failed attempts under kDegrade retries.
    ++gov_charged_nodes_;
    gov_charged_bytes_ += sizeof(Node);
    try {
      ResourceGovernor::charge_arena_current(
          1, static_cast<int64_t>(sizeof(Node)));
      nodes_.push_back(Node{});
    } catch (const std::bad_alloc&) {
      --gov_charged_nodes_;
      gov_charged_bytes_ -= sizeof(Node);
      ResourceGovernor::charge_arena_current(
          -1, -static_cast<int64_t>(sizeof(Node)));
      throw BudgetExceeded(BudgetExceeded::Kind::kAllocation,
                           "BDD arena allocation failed");
    } catch (...) {
      --gov_charged_nodes_;
      gov_charged_bytes_ -= sizeof(Node);
      ResourceGovernor::charge_arena_current(
          -1, -static_cast<int64_t>(sizeof(Node)));
      throw;
    }
    idx = static_cast<std::uint32_t>(nodes_.size() - 1);
    stats_.peak_nodes = std::max(stats_.peak_nodes, nodes_.size());
    ++stats_.nodes_created;
  }
  nodes_[idx] = Node{var, lo, hi, st.buckets[slot]};
  st.buckets[slot] = idx;
  if (++st.count > st.buckets.size() * kMaxChainLoad) grow_subtable(st);
  return (idx << 1) | out_c;
}

void BddManager::subtable_insert(std::uint32_t var, std::uint32_t idx) {
  Subtable& st = subtables_[var];
  if (st.buckets.empty()) st.buckets.assign(kInitBuckets, kNil);
  const size_t slot =
      hash_children(nodes_[idx].lo, nodes_[idx].hi) & (st.buckets.size() - 1);
  nodes_[idx].next = st.buckets[slot];
  st.buckets[slot] = idx;
  if (++st.count > st.buckets.size() * kMaxChainLoad) grow_subtable(st);
}

void BddManager::grow_subtable(Subtable& st) {
  // Growth is an optimization (the chains are merely over the target load
  // factor); every failure path leaves the old buckets installed and the
  // chains intact. The new array is fully allocated before anything moves.
  ResourceGovernor::draw_alloc_fault_current("bdd.subtable");
  std::vector<std::uint32_t> grown;
  try {
    grown.assign(st.buckets.size() * 2, kNil);
  } catch (const std::bad_alloc&) {
    throw BudgetExceeded(BudgetExceeded::Kind::kAllocation,
                         "BDD unique-subtable growth failed");
  }
  std::vector<std::uint32_t> old = std::move(st.buckets);
  st.buckets = std::move(grown);
  const size_t mask = st.buckets.size() - 1;
  for (std::uint32_t head : old) {
    while (head != kNil) {
      const std::uint32_t next = nodes_[head].next;
      const size_t slot = hash_children(nodes_[head].lo, nodes_[head].hi) & mask;
      nodes_[head].next = st.buckets[slot];
      st.buckets[slot] = head;
      head = next;
    }
  }
}

bool BddManager::check_canonical_form() const {
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kDeadVar) continue;  // free-list slot
    if (n.var >= static_cast<std::uint32_t>(num_vars())) return false;
    if (comp_of(n.hi) != 0) return false;  // complemented then-edge stored
    if (n.lo == n.hi) return false;        // redundant node stored
    const std::uint32_t li = idx_of(n.lo);
    const std::uint32_t hi = idx_of(n.hi);
    if (li >= nodes_.size() || hi >= nodes_.size()) return false;
    if (nodes_[li].var == kDeadVar || nodes_[hi].var == kDeadVar) return false;
  }
  return true;
}

// --- Computed cache --------------------------------------------------------------

bool BddManager::cache_lookup(std::uint32_t op, std::uint32_t a,
                              std::uint32_t b, std::uint32_t c,
                              std::uint32_t* result) {
  ++stats_.cache_lookups;
  const std::uint32_t key0 = a | (op << kOpShift);
  const CacheEntry& e = cache_[cache_slot(key0, b, c)];
  if (e.key0 == key0 && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    *result = e.result;
    return true;
  }
  return false;
}

void BddManager::cache_insert(std::uint32_t op, std::uint32_t a,
                              std::uint32_t b, std::uint32_t c,
                              std::uint32_t result) {
  // One poll per computed miss bounds every apply/ITE/quantification
  // recursion by the governor's deadline and cancel flag. Throwing here is
  // safe: the result's nodes exist and are reachable only through consistent
  // structures; the entry is simply never written.
  ResourceGovernor::poll_current();
  ++stats_.cache_inserts;
  const std::uint32_t key0 = a | (op << kOpShift);
  CacheEntry& e = cache_[cache_slot(key0, b, c)];
  if (e.key0 != 0 && !(e.key0 == key0 && e.b == b && e.c == c))
    ++stats_.cache_evictions;
  e = CacheEntry{key0, b, c, result};
  maybe_resize_cache();
}

void BddManager::maybe_resize_cache() {
  // Resize policy: once we have inserted half a cache's worth of entries
  // since the last resize (or cache clear), the cache is under pressure;
  // double it while the hit rate over that window shows it is earning its
  // keep. Half-size windows let an apply-heavy run climb from the small
  // initial cache to its working size within a few percent of its
  // operations. The window must still be meaningful: right after a clear
  // the counters restart, so a handful of lookups — or hits carried over
  // from before a GC wiped the entries — can never justify doubling an
  // empty cache.
  if (stats_.cache_inserts - cache_inserts_at_resize_ <= cache_.size() / 2 ||
      cache_.size() >= kMaxCacheEntries) {
    return;
  }
  const std::uint64_t lookups = stats_.cache_lookups - cache_lookups_at_resize_;
  const std::uint64_t hits = stats_.cache_hits - cache_hits_at_resize_;
  if (lookups >= cache_.size() / 8 && hits * 10 >= lookups * 3) {
    // A strongly-hitting window below the jump size goes straight to the
    // working size: every doubling step it would otherwise creep through
    // costs a window's worth of avoidable evictions.
    const bool jump = cache_.size() < kJumpCacheEntries && hits * 10 >= lookups * 6;
    resize_cache(jump ? kJumpCacheEntries : cache_.size() * 2);
  } else {
    // Not earning hits (or window too small to tell): restart the
    // observation window at this size.
    cache_lookups_at_resize_ = stats_.cache_lookups;
    cache_hits_at_resize_ = stats_.cache_hits;
    cache_inserts_at_resize_ = stats_.cache_inserts;
  }
}

void BddManager::cache_clear() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  // An emptied cache starts a fresh observation window: lookups and hits
  // earned against the old entries must not feed the next resize decision.
  cache_lookups_at_resize_ = stats_.cache_lookups;
  cache_hits_at_resize_ = stats_.cache_hits;
  cache_inserts_at_resize_ = stats_.cache_inserts;
}

void BddManager::resize_cache(size_t new_entries) {
  OBS_SPAN(span, "bdd.cache_resize", "bdd");
  if (span.armed()) {
    span.arg("old_entries", cache_.size());
    span.arg("new_entries", new_entries);
  }
  // Allocate the replacement before touching cache_: a growth failure is a
  // recoverable BudgetExceeded with the old cache still fully installed.
  ResourceGovernor::draw_alloc_fault_current("bdd.cache");
  std::vector<CacheEntry> fresh;
  try {
    fresh.assign(new_entries, CacheEntry{});
  } catch (const std::bad_alloc&) {
    throw BudgetExceeded(BudgetExceeded::Kind::kAllocation,
                         "BDD computed-cache growth failed");
  }
  std::vector<CacheEntry> old = std::move(cache_);
  cache_ = std::move(fresh);
  cache_mask_ = new_entries - 1;
  for (const CacheEntry& e : old) {
    if (e.key0 != 0) cache_[cache_slot(e.key0, e.b, e.c)] = e;
  }
  ++stats_.cache_resizes;
  cache_lookups_at_resize_ = stats_.cache_lookups;
  cache_hits_at_resize_ = stats_.cache_hits;
  cache_inserts_at_resize_ = stats_.cache_inserts;
  // Meter the growth (resizes only grow). A byte-budget throw lands after
  // the new cache is fully installed, so unwinding is clean.
  if (new_entries > old.size()) {
    const int64_t delta =
        static_cast<int64_t>(new_entries - old.size()) *
        static_cast<int64_t>(sizeof(CacheEntry));
    gov_charged_bytes_ += static_cast<std::uint64_t>(delta);
    ResourceGovernor::charge_arena_current(0, delta);
  }
}

KernelStats BddManager::stats() const {
  KernelStats out = stats_;
  out.cache_capacity = cache_.size();
  out.arena_nodes = nodes_.size();
  return out;
}

void BddManager::reset_stats() {
  stats_ = KernelStats{};
  flushed_stats_ = KernelStats{};
  stats_.peak_nodes = nodes_.size();
  cache_lookups_at_resize_ = 0;
  cache_hits_at_resize_ = 0;
  cache_inserts_at_resize_ = 0;
}

void BddManager::flush_stats_to_obs() {
  // Ids are registered once per process; updates below are the lock-free
  // per-thread shard path, so flushing from synthesis worker threads is safe.
  struct Ids {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::MetricsRegistry::Id ite_calls = reg.counter("bdd.ite_calls");
    obs::MetricsRegistry::Id apply_calls = reg.counter("bdd.apply_calls");
    obs::MetricsRegistry::Id cache_lookups = reg.counter("bdd.cache_lookups");
    obs::MetricsRegistry::Id cache_hits = reg.counter("bdd.cache_hits");
    obs::MetricsRegistry::Id cache_inserts = reg.counter("bdd.cache_inserts");
    obs::MetricsRegistry::Id cache_evictions =
        reg.counter("bdd.cache_evictions");
    obs::MetricsRegistry::Id cache_resizes = reg.counter("bdd.cache_resizes");
    obs::MetricsRegistry::Id unique_lookups =
        reg.counter("bdd.unique_lookups");
    obs::MetricsRegistry::Id unique_hits = reg.counter("bdd.unique_hits");
    obs::MetricsRegistry::Id nodes_created = reg.counter("bdd.nodes_created");
    obs::MetricsRegistry::Id nodes_recycled =
        reg.counter("bdd.nodes_recycled");
    obs::MetricsRegistry::Id gc_runs = reg.counter("bdd.gc_runs");
    obs::MetricsRegistry::Id nodes_reclaimed =
        reg.counter("bdd.nodes_reclaimed");
    obs::MetricsRegistry::Id peak_nodes = reg.max_gauge("bdd.peak_nodes");
    obs::MetricsRegistry::Id peak_hist = reg.histogram("bdd.manager_peak_nodes");
    obs::MetricsRegistry::Id copy_calls = reg.counter("bdd.copy_across_calls");
    obs::MetricsRegistry::Id copy_nodes = reg.counter("bdd.copy_nodes");
    obs::MetricsRegistry::Id copy_hits = reg.counter("bdd.copy_cache_hits");
  };
  static const Ids ids;
  obs::MetricsRegistry& reg = ids.reg;
  const KernelStats& s = stats_;
  KernelStats& f = flushed_stats_;
  auto drain = [&](obs::MetricsRegistry::Id id, std::uint64_t now,
                   std::uint64_t& last) {
    if (now > last) reg.add(id, now - last);
    last = now;
  };
  drain(ids.ite_calls, s.ite_calls, f.ite_calls);
  drain(ids.apply_calls, s.and_apply_calls, f.and_apply_calls);
  drain(ids.apply_calls, s.xor_apply_calls, f.xor_apply_calls);
  drain(ids.cache_lookups, s.cache_lookups, f.cache_lookups);
  drain(ids.cache_hits, s.cache_hits, f.cache_hits);
  drain(ids.cache_inserts, s.cache_inserts, f.cache_inserts);
  drain(ids.cache_evictions, s.cache_evictions, f.cache_evictions);
  drain(ids.cache_resizes, s.cache_resizes, f.cache_resizes);
  drain(ids.unique_lookups, s.unique_lookups, f.unique_lookups);
  drain(ids.unique_hits, s.unique_hits, f.unique_hits);
  drain(ids.nodes_created, s.nodes_created, f.nodes_created);
  drain(ids.nodes_recycled, s.nodes_recycled, f.nodes_recycled);
  drain(ids.gc_runs, s.gc_runs, f.gc_runs);
  drain(ids.nodes_reclaimed, s.nodes_reclaimed, f.nodes_reclaimed);
  drain(ids.copy_calls, s.copy_across_calls, f.copy_across_calls);
  drain(ids.copy_nodes, s.copy_nodes, f.copy_nodes);
  drain(ids.copy_hits, s.copy_cache_hits, f.copy_cache_hits);
  reg.set(ids.peak_nodes, static_cast<std::int64_t>(s.peak_nodes));
  if (f.peak_nodes != s.peak_nodes) {
    // One histogram sample per manager lifetime peak (sampled at the first
    // flush that observes the final value — later flushes skip duplicates).
    reg.observe(ids.peak_hist, s.peak_nodes);
    f.peak_nodes = s.peak_nodes;
  }
}

// --- Core operations -------------------------------------------------------------

std::uint32_t BddManager::and_rec(std::uint32_t f, std::uint32_t g) {
  // Terminal cases, two branches on the hot path: handles differing only in
  // the complement bit (f ∧ f = f, f ∧ ¬f = 0), then either operand
  // constant (terminal handles are 0 and 1, so `min <= kZero` covers both).
  if ((f ^ g) <= 1u) return f == g ? f : kZero;
  if (std::min(f, g) <= kZero) {
    if (f == kZero || g == kZero) return kZero;
    return f == kOne ? g : f;
  }
  // Commutative: normalise operand order for cache hits.
  if (f > g) std::swap(f, g);

  std::uint32_t r;
  if (cache_lookup(kOpAnd, f, g, 0, &r)) return r;

  const int lf = level(f);
  const int lg = level(g);
  const int top = std::min(lf, lg);
  const std::uint32_t v =
      static_cast<std::uint32_t>(invperm_[static_cast<size_t>(top)]);
  // Cofactors of the *functions*: the parent complement bit flows into the
  // children. Extracted before recursing — the arena may grow below.
  const std::uint32_t fc = comp_of(f);
  const std::uint32_t gc = comp_of(g);
  const Node& fn = nodes_[idx_of(f)];
  const Node& gn = nodes_[idx_of(g)];
  const std::uint32_t f1 = (lf == top) ? fn.hi ^ fc : f;
  const std::uint32_t f0 = (lf == top) ? fn.lo ^ fc : f;
  const std::uint32_t g1 = (lg == top) ? gn.hi ^ gc : g;
  const std::uint32_t g0 = (lg == top) ? gn.lo ^ gc : g;

  const std::uint32_t t = and_rec(f1, g1);
  const std::uint32_t e = and_rec(f0, g0);
  r = find_or_add(v, e, t);
  cache_insert(kOpAnd, f, g, 0, r);
  return r;
}

std::uint32_t BddManager::xor_rec(std::uint32_t f, std::uint32_t g) {
  // Terminal cases (same two-branch structure as and_rec).
  if ((f ^ g) <= 1u) return f == g ? kZero : kOne;
  if (std::min(f, g) <= kZero) {
    if (f <= kZero) return f == kZero ? g : negate(g);
    return g == kZero ? f : negate(f);
  }
  // XOR commutes with complementation on either operand: strip both
  // complement bits into the output, so one cache entry serves all four
  // phase combinations of (f, g).
  const std::uint32_t out_c = comp_of(f) ^ comp_of(g);
  f = regular(f);
  g = regular(g);
  if (f > g) std::swap(f, g);

  std::uint32_t r;
  if (cache_lookup(kOpXor, f, g, 0, &r)) return r ^ out_c;

  const int lf = level(f);
  const int lg = level(g);
  const int top = std::min(lf, lg);
  const std::uint32_t v =
      static_cast<std::uint32_t>(invperm_[static_cast<size_t>(top)]);
  const Node& fn = nodes_[idx_of(f)];
  const Node& gn = nodes_[idx_of(g)];
  const std::uint32_t f1 = (lf == top) ? fn.hi : f;
  const std::uint32_t f0 = (lf == top) ? fn.lo : f;
  const std::uint32_t g1 = (lg == top) ? gn.hi : g;
  const std::uint32_t g0 = (lg == top) ? gn.lo : g;

  const std::uint32_t t = xor_rec(f1, g1);
  const std::uint32_t e = xor_rec(f0, g0);
  r = find_or_add(v, e, t);
  cache_insert(kOpXor, f, g, 0, r);
  return r ^ out_c;
}

std::uint32_t BddManager::ite_rec(std::uint32_t f, std::uint32_t g,
                                  std::uint32_t h) {
  // Terminal cases.
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  // Equal-operand normalisation raises the cache hit rate: ite(f, f, h) =
  // ite(f, 1, h), ite(f, ¬f, h) = ite(f, 0, h), and dually for h.
  if (f == g) g = kOne;
  else if (f == negate(g)) g = kZero;
  if (f == h) h = kZero;
  else if (f == negate(h)) h = kOne;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return negate(f);
  // 2-operand dispatch: every ITE with a constant branch (or complementary
  // branches) is an AND or XOR in disguise — route it to the dedicated
  // apply paths, whose cache keys are shared with the operator entrypoints.
  if (h == kZero) return and_rec(f, g);
  if (g == kZero) return and_rec(negate(f), h);
  if (g == kOne) return negate(and_rec(negate(f), negate(h)));
  if (h == kOne) return negate(and_rec(f, negate(g)));
  if (g == negate(h)) return negate(xor_rec(f, g));  // ite(f,g,¬g) = ¬(f⊕g)

  // Normalise for the cache: a complemented f swaps the branches; a
  // complemented g complements the output. After this, f and g are regular
  // and one entry covers the whole complementation orbit of the call.
  std::uint32_t out_c = 0;
  if (comp_of(f)) {
    f = negate(f);
    std::swap(g, h);
  }
  if (comp_of(g)) {
    out_c = 1;
    g = negate(g);
    h = negate(h);
  }

  std::uint32_t r;
  if (cache_lookup(kOpIte, f, g, h, &r)) return r ^ out_c;

  const int lf = level(f);
  const int lg = level(g);
  const int lh = level(h);
  const int top = std::min(lf, std::min(lg, lh));
  const std::uint32_t v =
      static_cast<std::uint32_t>(invperm_[static_cast<size_t>(top)]);

  const std::uint32_t hc = comp_of(h);
  const Node& fn = nodes_[idx_of(f)];
  const Node& gn = nodes_[idx_of(g)];
  const Node& hn = nodes_[idx_of(h)];
  const std::uint32_t f1 = (lf == top) ? fn.hi : f;
  const std::uint32_t f0 = (lf == top) ? fn.lo : f;
  const std::uint32_t g1 = (lg == top) ? gn.hi : g;
  const std::uint32_t g0 = (lg == top) ? gn.lo : g;
  const std::uint32_t h1 = (lh == top) ? hn.hi ^ hc : h;
  const std::uint32_t h0 = (lh == top) ? hn.lo ^ hc : h;

  const std::uint32_t t = ite_rec(f1, g1, h1);
  const std::uint32_t e = ite_rec(f0, g0, h0);
  r = find_or_add(v, e, t);
  cache_insert(kOpIte, f, g, h, r);
  return r ^ out_c;
}

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this && h.mgr_ == this);
  ++stats_.ite_calls;
  return make(ite_rec(f.idx_, g.idx_, h.idx_));
}

Bdd BddManager::band(const Bdd& f, const Bdd& g) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  ++stats_.and_apply_calls;
  return make(and_rec(f.idx_, g.idx_));
}

Bdd BddManager::bor(const Bdd& f, const Bdd& g) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  ++stats_.and_apply_calls;
  return make(or_of(f.idx_, g.idx_));
}

Bdd BddManager::bxor(const Bdd& f, const Bdd& g) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  ++stats_.xor_apply_calls;
  return make(xor_rec(f.idx_, g.idx_));
}

Bdd BddManager::bnot(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  return make(negate(f.idx_));
}

std::uint32_t BddManager::cofactor_rec(std::uint32_t f, int var, bool val) {
  if (is_term(f)) return f;
  // Cofactor commutes with complementation: recurse on the regular function
  // and restore the phase on the way out, so one cache entry serves both.
  const std::uint32_t fc = comp_of(f);
  f = regular(f);
  const int vlevel = perm_[static_cast<size_t>(var)];
  if (level(f) > vlevel) return f ^ fc;  // var cannot appear below its level
  const Node& n = nodes_[idx_of(f)];
  if (static_cast<int>(n.var) == var) return (val ? n.hi : n.lo) ^ fc;
  std::uint32_t r;
  const std::uint32_t tag =
      (static_cast<std::uint32_t>(var) << 1) | (val ? 1u : 0u);
  if (cache_lookup(kOpCofactor, f, tag, 0, &r)) return r ^ fc;
  // Copies: the recursion below may grow nodes_ and invalidate `n`.
  const std::uint32_t nvar = n.var;
  const std::uint32_t nlo = n.lo;
  const std::uint32_t nhi = n.hi;
  const std::uint32_t lo = cofactor_rec(nlo, var, val);
  const std::uint32_t hi = cofactor_rec(nhi, var, val);
  r = find_or_add(nvar, lo, hi);
  cache_insert(kOpCofactor, f, tag, 0, r);
  return r ^ fc;
}

Bdd BddManager::cofactor(const Bdd& f, int var, bool val) {
  POLIS_CHECK(f.mgr_ == this);
  check_var(var);
  return make(cofactor_rec(f.idx_, var, val));
}

std::uint32_t BddManager::make_cube(const std::vector<int>& vars) {
  // Conjunction of positive literals, built bottom-up in level order so each
  // step is a single unique-table insertion. A positive cube is always a
  // regular handle with regular then-edges, so cube traversals below never
  // need complement-bit fixups.
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
    return perm_[static_cast<size_t>(a)] > perm_[static_cast<size_t>(b)];
  });
  std::uint32_t cube = kOne;
  int prev = -1;
  for (const int v : sorted) {
    if (v == prev) continue;  // duplicate var in the set
    prev = v;
    cube = find_or_add(static_cast<std::uint32_t>(v), kZero, cube);
  }
  return cube;
}

std::uint32_t BddManager::quant_rec(std::uint32_t f, std::uint32_t cube,
                                    bool existential) {
  // Quantified vars above f's top variable cannot appear in f: skip them.
  while (!is_term(cube) && level(cube) < level(f))
    cube = nodes_[idx_of(cube)].hi;
  if (is_term(f) || cube == kOne) return f;
  // ∃x.¬f = ¬∀x.f — strip the operand's complement by flipping the
  // quantifier, so the cache is keyed on the regular function only.
  const std::uint32_t fc = comp_of(f);
  f = regular(f);
  const bool ex = fc ? !existential : existential;
  std::uint32_t r;
  const std::uint32_t op = ex ? kOpExists : kOpForall;
  if (cache_lookup(op, f, cube, 0, &r)) return r ^ fc;
  const Node n = nodes_[idx_of(f)];  // copy: recursion below may grow nodes_
  if (level(f) == level(cube)) {
    const std::uint32_t rest = nodes_[idx_of(cube)].hi;
    const std::uint32_t lo = quant_rec(n.lo, rest, ex);
    const std::uint32_t hi = quant_rec(n.hi, rest, ex);
    r = ex ? or_of(lo, hi) : and_rec(lo, hi);
  } else {
    const std::uint32_t lo = quant_rec(n.lo, cube, ex);
    const std::uint32_t hi = quant_rec(n.hi, cube, ex);
    r = find_or_add(n.var, lo, hi);
  }
  cache_insert(op, f, cube, 0, r);
  return r ^ fc;
}

Bdd BddManager::smooth(const Bdd& f, const std::vector<int>& vars) {
  POLIS_CHECK(f.mgr_ == this);
  if (vars.empty()) return f;
  for (int v : vars) check_var(v);
  const std::uint32_t cube = make_cube(vars);
  return make(quant_rec(f.idx_, cube, /*existential=*/true));
}

Bdd BddManager::forall(const Bdd& f, const std::vector<int>& vars) {
  POLIS_CHECK(f.mgr_ == this);
  if (vars.empty()) return f;
  for (int v : vars) check_var(v);
  const std::uint32_t cube = make_cube(vars);
  return make(quant_rec(f.idx_, cube, /*existential=*/false));
}

std::uint32_t BddManager::and_exists_rec(std::uint32_t f, std::uint32_t g,
                                         std::uint32_t cube) {
  ++stats_.and_exists_recursions;
  // Terminal cases: f∧g collapses, or no quantified vars remain below.
  if (f == kZero || g == kZero || f == negate(g)) return kZero;
  if (f == kOne && g == kOne) return kOne;
  if (f == kOne) return quant_rec(g, cube, /*existential=*/true);
  if (g == kOne || f == g) return quant_rec(f, cube, /*existential=*/true);
  // Commutative: normalise operand order for cache hits.
  if (f > g) std::swap(f, g);

  const int lf = level(f);
  const int lg = level(g);
  const int top = std::min(lf, lg);
  // Quantified vars above both operands cannot appear in either: skip them.
  while (!is_term(cube) && level(cube) < top) cube = nodes_[idx_of(cube)].hi;
  if (cube == kOne) return and_rec(f, g);  // plain conjunction

  std::uint32_t r;
  if (cache_lookup(kOpAndExists, f, g, cube, &r)) {
    ++stats_.and_exists_cache_hits;
    return r;
  }

  const std::uint32_t v =
      static_cast<std::uint32_t>(invperm_[static_cast<size_t>(top)]);
  // Copies: the recursion below may grow nodes_.
  const std::uint32_t fc = comp_of(f);
  const std::uint32_t gc = comp_of(g);
  const Node& fn = nodes_[idx_of(f)];
  const Node& gn = nodes_[idx_of(g)];
  const std::uint32_t f1 = (lf == top) ? fn.hi ^ fc : f;
  const std::uint32_t f0 = (lf == top) ? fn.lo ^ fc : f;
  const std::uint32_t g1 = (lg == top) ? gn.hi ^ gc : g;
  const std::uint32_t g0 = (lg == top) ? gn.lo ^ gc : g;

  if (level(cube) == top) {
    const std::uint32_t rest = nodes_[idx_of(cube)].hi;
    const std::uint32_t hi = and_exists_rec(f1, g1, rest);
    if (hi == kOne) {
      r = kOne;  // ∃v absorbs: the other branch cannot add anything
    } else {
      const std::uint32_t lo = and_exists_rec(f0, g0, rest);
      r = or_of(hi, lo);
    }
  } else {
    const std::uint32_t hi = and_exists_rec(f1, g1, cube);
    const std::uint32_t lo = and_exists_rec(f0, g0, cube);
    r = find_or_add(v, lo, hi);
  }
  cache_insert(kOpAndExists, f, g, cube, r);
  return r;
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g,
                           const std::vector<int>& vars) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  ++stats_.and_exists_calls;
  for (int v : vars) check_var(v);
  const std::uint32_t cube = make_cube(vars);
  return make(and_exists_rec(f.idx_, g.idx_, cube));
}

std::uint32_t BddManager::compose_rec(std::uint32_t f, int var,
                                      std::uint32_t g) {
  if (is_term(f)) return f;
  // Composition commutes with complementation of f: recurse regular.
  const std::uint32_t fc = comp_of(f);
  f = regular(f);
  if (level(f) > perm_[static_cast<size_t>(var)]) return f ^ fc;  // var ∉ support
  std::uint32_t r;
  if (cache_lookup(kOpCompose, f, g, static_cast<std::uint32_t>(var), &r))
    return r ^ fc;
  const Node n = nodes_[idx_of(f)];  // copy: recursion below may grow nodes_
  if (static_cast<int>(n.var) == var) {
    r = ite_rec(g, n.hi, n.lo);
  } else {
    const std::uint32_t lo = compose_rec(n.lo, var, g);
    const std::uint32_t hi = compose_rec(n.hi, var, g);
    // g may depend on variables above n.var, so rebuild with ITE on the
    // branch variable instead of a direct find_or_add.
    const std::uint32_t v = find_or_add(n.var, kZero, kOne);
    r = ite_rec(v, hi, lo);
  }
  cache_insert(kOpCompose, f, g, static_cast<std::uint32_t>(var), r);
  return r ^ fc;
}

Bdd BddManager::compose(const Bdd& f, int var, const Bdd& g) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  check_var(var);
  return make(compose_rec(f.idx_, var, g.idx_));
}

int BddManager::register_rename(
    const std::vector<std::pair<int, int>>& from_to) {
  std::vector<int> map(perm_.size());
  for (size_t v = 0; v < map.size(); ++v) map[v] = static_cast<int>(v);
  for (const auto& [from, to] : from_to) {
    check_var(from);
    check_var(to);
    map[static_cast<size_t>(from)] = to;
  }
  rename_maps_.push_back(std::move(map));
  return static_cast<int>(rename_maps_.size()) - 1;
}

std::uint32_t BddManager::rename_rec(std::uint32_t f,
                                     const std::vector<int>& map,
                                     std::uint32_t map_id) {
  if (is_term(f)) return f;
  // Substitution commutes with complementation: recurse regular so one
  // cache entry serves both phases.
  const std::uint32_t fc = comp_of(f);
  f = regular(f);
  std::uint32_t r;
  if (cache_lookup(kOpRename, f, map_id, 0, &r)) return r ^ fc;
  const Node n = nodes_[idx_of(f)];  // copy: recursion below may grow nodes_
  const std::uint32_t hi = rename_rec(n.hi, map, map_id);
  const std::uint32_t lo = rename_rec(n.lo, map, map_id);
  const int v = map[n.var];
  const int lvl = perm_[static_cast<size_t>(v)];
  if ((is_term(hi) || level(hi) > lvl) && (is_term(lo) || level(lo) > lvl)) {
    // The target variable sits above both renamed children: a pure relabel,
    // one hash-cons per node. This is the hot path for next→present in the
    // interleaved reachability encoding.
    r = find_or_add(static_cast<std::uint32_t>(v), lo, hi);
  } else {
    // General case (the map moves a variable under another): rebuild with
    // ITE on the target variable, as in CUDD's permute.
    r = ite_rec(find_or_add(static_cast<std::uint32_t>(v), kZero, kOne), hi,
                lo);
  }
  cache_insert(kOpRename, f, map_id, 0, r);
  return r ^ fc;
}

Bdd BddManager::rename(const Bdd& f, int map_id) {
  POLIS_CHECK(f.mgr_ == this);
  POLIS_CHECK_MSG(map_id >= 0 &&
                      static_cast<size_t>(map_id) < rename_maps_.size(),
                  "rename: unknown map id");
  ++stats_.rename_calls;
  return make(rename_rec(f.idx_, rename_maps_[static_cast<size_t>(map_id)],
                         static_cast<std::uint32_t>(map_id)));
}

std::uint32_t BddManager::restrict_rec(std::uint32_t g, std::uint32_t c) {
  // Deliberately NOT complement-normalised: restrict is a heuristic (the
  // result depends on the shape of the recursion, not just the functions),
  // and the `c == kZero → kZero` base case would flip meaning under output
  // complementation. Keying the cache on the tagged pair keeps the
  // recursion — and therefore the minimised result — function-for-function
  // identical to a kernel without complement edges.
  if (c == kZero) return kZero;  // entirely don't care: anything goes
  if (c == kOne || is_term(g)) return g;
  std::uint32_t r;
  if (cache_lookup(kOpRestrict, g, c, 0, &r)) return r;

  const int lg = level(g);
  const int lc = level(c);
  if (lc < lg) {
    // The care set constrains a variable above g's top: merge branches.
    const std::uint32_t cc = comp_of(c);
    const std::uint32_t c1 = nodes_[idx_of(c)].hi ^ cc;
    const std::uint32_t c0 = nodes_[idx_of(c)].lo ^ cc;
    r = restrict_rec(g, or_of(c0, c1));  // c|v=0 ∨ c|v=1
  } else {
    const std::uint32_t gc = comp_of(g);
    const Node& gn = nodes_[idx_of(g)];
    const std::uint32_t gvar = gn.var;
    const std::uint32_t g1 = gn.hi ^ gc;
    const std::uint32_t g0 = gn.lo ^ gc;
    const std::uint32_t cc = comp_of(c);
    const std::uint32_t c1 = (lc == lg) ? nodes_[idx_of(c)].hi ^ cc : c;
    const std::uint32_t c0 = (lc == lg) ? nodes_[idx_of(c)].lo ^ cc : c;
    if (c1 == kZero) {
      r = restrict_rec(g0, c0);  // sibling substitution
    } else if (c0 == kZero) {
      r = restrict_rec(g1, c1);
    } else {
      const std::uint32_t lo = restrict_rec(g0, c0);
      const std::uint32_t hi = restrict_rec(g1, c1);
      r = find_or_add(gvar, lo, hi);
    }
  }
  cache_insert(kOpRestrict, g, c, 0, r);
  return r;
}

Bdd BddManager::restrict(const Bdd& f, const Bdd& care) {
  POLIS_CHECK(f.mgr_ == this && care.mgr_ == this);
  return make(restrict_rec(f.idx_, care.idx_));
}

// --- Queries ---------------------------------------------------------------------

std::set<int> BddManager::support(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  std::set<int> out;
  if (visit_epoch_.size() < 2 * nodes_.size())
    visit_epoch_.resize(2 * nodes_.size(), 0);
  ++epoch_;
  visit_stack_.clear();
  // Support ignores phases: traverse physical nodes (mark by arena index).
  visit_stack_.push_back(idx_of(f.idx_));
  while (!visit_stack_.empty()) {
    const std::uint32_t n = visit_stack_.back();
    visit_stack_.pop_back();
    if (n == 0 || visit_epoch_[n] == epoch_) continue;
    visit_epoch_[n] = epoch_;
    out.insert(static_cast<int>(nodes_[n].var));
    visit_stack_.push_back(idx_of(nodes_[n].lo));
    visit_stack_.push_back(idx_of(nodes_[n].hi));
  }
  return out;
}

bool BddManager::eval(const Bdd& f, const std::function<bool(int)>& assignment) {
  POLIS_CHECK(f.mgr_ == this);
  std::uint32_t h = f.idx_;
  while (!is_term(h)) {
    const Node& node = nodes_[idx_of(h)];
    h = (assignment(static_cast<int>(node.var)) ? node.hi : node.lo) ^
        comp_of(h);
  }
  return h == kOne;
}

double BddManager::sat_count(const Bdd& f, int nvars) {
  POLIS_CHECK(f.mgr_ == this);
  const int num_levels = num_vars();
  // Exact minterm count of each regular subfunction over the variables at
  // its own level and below, memoised per node. Scaling between levels is
  // ldexp on integer exponents — every factor is an exact power of two, so
  // (unlike accumulating per-node 0.5 fractions against a 2^nvars scale)
  // nothing underflows and counts are exact up to double's 2^53 integers,
  // for any number of variables.
  std::unordered_map<std::uint32_t, double> memo;
  // count_at(h, l): minterms of the function h over levels l..N-1.
  auto count_at = [&](std::uint32_t h, int l, auto&& self) -> double {
    if (h == kZero) return 0.0;
    if (h == kOne) return std::ldexp(1.0, num_levels - l);
    const std::uint32_t reg = regular(h);
    const int lr = level(reg);
    double cnt;
    auto it = memo.find(reg);
    if (it != memo.end()) {
      cnt = it->second;
    } else {
      const Node& n = nodes_[idx_of(reg)];
      cnt = self(n.lo, lr + 1, self) + self(n.hi, lr + 1, self);
      memo.emplace(reg, cnt);
    }
    const double scaled = std::ldexp(cnt, lr - l);
    return comp_of(h) ? std::ldexp(1.0, num_levels - l) - scaled : scaled;
  };
  return std::ldexp(count_at(f.idx_, 0, count_at), nvars - num_levels);
}

std::vector<std::pair<int, bool>> BddManager::one_sat(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  POLIS_CHECK_MSG(f.idx_ != kZero, "one_sat of unsatisfiable function");
  std::vector<std::pair<int, bool>> cube;
  std::uint32_t h = f.idx_;
  while (!is_term(h)) {
    const Node& node = nodes_[idx_of(h)];
    const std::uint32_t hi = node.hi ^ comp_of(h);
    if (hi != kZero) {
      cube.emplace_back(static_cast<int>(node.var), true);
      h = hi;
    } else {
      cube.emplace_back(static_cast<int>(node.var), false);
      h = node.lo ^ comp_of(h);
    }
  }
  return cube;
}

size_t BddManager::node_count(const Bdd& f) {
  return node_count(std::vector<Bdd>{f});
}

size_t BddManager::node_count(const std::vector<Bdd>& roots) {
  if (visit_epoch_.size() < 2 * nodes_.size())
    visit_epoch_.resize(2 * nodes_.size(), 0);
  ++epoch_;
  visit_stack_.clear();
  for (const Bdd& r : roots) {
    POLIS_CHECK(r.mgr_ == this);
    visit_stack_.push_back(r.idx_);
  }
  // Phase-pair counting: each reachable (node, phase) pair is one distinct
  // subfunction, which matches the node count a kernel without complement
  // edges would report for the same functions.
  size_t count = 0;
  while (!visit_stack_.empty()) {
    const std::uint32_t h = visit_stack_.back();
    visit_stack_.pop_back();
    if (is_term(h) || visit_epoch_[h] == epoch_) continue;
    visit_epoch_[h] = epoch_;
    ++count;
    const Node& n = nodes_[idx_of(h)];
    visit_stack_.push_back(n.lo ^ comp_of(h));
    visit_stack_.push_back(n.hi ^ comp_of(h));
  }
  return count;
}

size_t BddManager::shared_node_count(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  if (visit_epoch_.size() < 2 * nodes_.size())
    visit_epoch_.resize(2 * nodes_.size(), 0);
  ++epoch_;
  visit_stack_.clear();
  visit_stack_.push_back(idx_of(f.idx_));
  size_t count = 0;
  while (!visit_stack_.empty()) {
    const std::uint32_t n = visit_stack_.back();
    visit_stack_.pop_back();
    if (n == 0 || visit_epoch_[n] == epoch_) continue;
    visit_epoch_[n] = epoch_;
    ++count;
    visit_stack_.push_back(idx_of(nodes_[n].lo));
    visit_stack_.push_back(idx_of(nodes_[n].hi));
  }
  return count;
}

size_t BddManager::mark_live() {
  if (visit_epoch_.size() < 2 * nodes_.size())
    visit_epoch_.resize(2 * nodes_.size(), 0);
  ++epoch_;
  visit_stack_.clear();
  // Roots = every registered handle; duplicates collapse on the epoch check.
  for (const Bdd* h = handle_head_; h != nullptr; h = h->next_)
    visit_stack_.push_back(h->idx_);
  size_t count = 0;
  while (!visit_stack_.empty()) {
    const std::uint32_t h = visit_stack_.back();
    visit_stack_.pop_back();
    if (is_term(h) || visit_epoch_[h] == epoch_) continue;
    visit_epoch_[h] = epoch_;
    ++count;
    const Node& n = nodes_[idx_of(h)];
    visit_stack_.push_back(n.lo ^ comp_of(h));
    visit_stack_.push_back(n.hi ^ comp_of(h));
  }
  return count;
}

size_t BddManager::live_node_count() { return mark_live(); }

// --- Reordering / memory ---------------------------------------------------------

size_t BddManager::swap_adjacent_levels(int level) {
  POLIS_CHECK_MSG(level >= 0 && level + 1 < num_vars(),
                  "swap_adjacent_levels: level " << level << " out of range");
  const int x = invperm_[static_cast<size_t>(level)];      // upper var
  const int y = invperm_[static_cast<size_t>(level + 1)];  // lower var
  const std::uint32_t xv = static_cast<std::uint32_t>(x);
  const std::uint32_t yv = static_cast<std::uint32_t>(y);
  // Nodes labelled x are rewritten in place: their indices survive but the
  // order (and for cross-manager consumers, the shape) changes — stale
  // CopyCache translations keyed on this manager must not survive.
  ++structure_epoch_;

  // The swap body is not unwindable once x's chains are stolen, so every
  // throwing path is moved in front of it: reject if the worst case (two
  // fresh nodes per x-node) could hit the hard arena cap, pre-reserve the
  // arena so no reallocation happens mid-swap, and suspend the governor so
  // injected faults and budget trips cannot fire inside the rewrite. The
  // budget is re-checked by the caller between swaps (sift polls after each
  // step), so suspension here delays a trip by at most one swap.
  ResourceGovernor::Suspend suspend;
  const size_t worst_new = 2 * static_cast<size_t>(subtables_[xv].count);
  if (nodes_.size() + worst_new > kMaxArenaNodes)
    throw BudgetExceeded(
        BudgetExceeded::Kind::kNodes,
        "BDD arena would exceed the handle-space cap during a level swap");
  try {
    nodes_.reserve(nodes_.size() + worst_new);
    // Pre-grow both subtables so no insertion during the rewrite can trigger
    // a (potentially throwing) growth: x's table can end up holding its old
    // nodes plus two fresh children per rewritten node (≤ 3× its count), y's
    // gains at most every stolen node.
    Subtable& stx_pre = subtables_[xv];
    Subtable& sty_pre = subtables_[yv];
    if (stx_pre.buckets.empty()) stx_pre.buckets.assign(kInitBuckets, kNil);
    if (sty_pre.buckets.empty()) sty_pre.buckets.assign(kInitBuckets, kNil);
    while (3 * static_cast<size_t>(stx_pre.count) >
           stx_pre.buckets.size() * kMaxChainLoad)
      grow_subtable(stx_pre);
    while (static_cast<size_t>(sty_pre.count) +
               static_cast<size_t>(stx_pre.count) >
           sty_pre.buckets.size() * kMaxChainLoad)
      grow_subtable(sty_pre);
  } catch (const std::bad_alloc&) {
    throw BudgetExceeded(BudgetExceeded::Kind::kAllocation,
                         "BDD arena reservation for a level swap failed");
  }

  // Only nodes labelled x can change: a node x ? f1 : f0 whose cofactors
  // depend on y is relabelled, in place, to
  //   y ? (x ? f11 : f01) : (x ? f10 : f00),
  // preserving its function (and hence its index, all handles and the
  // computed cache). The canonical form survives too: the stored then-edge
  // f1 is regular, so f11 — and with it the rewritten then-edge
  // x ? f11 : f01 — is regular. Nodes labelled x with y-free cofactors just
  // ride to the lower level untouched; all other nodes are unaffected.
  //
  // Steal x's chains wholesale, then reinsert in two passes: y-independent
  // nodes first, so the find_or_add calls of the rewrite pass hash-cons
  // against them (a rewrite's new children are y-free x-nodes, which can
  // never equal a pending rewrite — those still have a y-labelled child).
  Subtable& stx = subtables_[static_cast<size_t>(x)];
  swap_scratch_.clear();
  for (std::uint32_t& head : stx.buckets) {
    for (std::uint32_t n = head; n != kNil; n = nodes_[n].next)
      swap_scratch_.push_back(n);
    head = kNil;
  }
  stx.count = 0;

  size_t deps = 0;
  for (const std::uint32_t n : swap_scratch_) {
    const std::uint32_t f1 = nodes_[n].hi;  // regular by canonical form
    const std::uint32_t f0 = nodes_[n].lo;  // may carry a complement edge
    const bool hi_dep = !is_term(f1) && nodes_[idx_of(f1)].var == yv;
    const bool lo_dep = !is_term(f0) && nodes_[idx_of(f0)].var == yv;
    if (hi_dep || lo_dep) {
      swap_scratch_[deps++] = n;  // rewrite below
    } else {
      subtable_insert(xv, n);  // rides to the lower level untouched
    }
  }
  for (size_t i = 0; i < deps; ++i) {
    const std::uint32_t n = swap_scratch_[i];
    const std::uint32_t f1 = nodes_[n].hi;
    const std::uint32_t f0 = nodes_[n].lo;
    const std::uint32_t f0c = comp_of(f0);
    const bool hi_dep = !is_term(f1) && nodes_[idx_of(f1)].var == yv;
    const bool lo_dep = !is_term(f0) && nodes_[idx_of(f0)].var == yv;
    // Grandchildren as functions: f0's complement bit flows into its
    // children. f11 stays regular (then-edge of a regular then-edge).
    const std::uint32_t f11 = hi_dep ? nodes_[idx_of(f1)].hi : f1;
    const std::uint32_t f10 = hi_dep ? nodes_[idx_of(f1)].lo : f1;
    const std::uint32_t f01 = lo_dep ? nodes_[idx_of(f0)].hi ^ f0c : f0;
    const std::uint32_t f00 = lo_dep ? nodes_[idx_of(f0)].lo ^ f0c : f0;
    // The grandchildren sit strictly below both levels, so these lookups
    // can only hit (or create) y-free x-nodes — never a pending rewrite.
    // new_hi is regular because f11 is, so rewriting the node in place
    // keeps it in canonical form and its function unchanged.
    const std::uint32_t new_hi = find_or_add(xv, f01, f11);
    const std::uint32_t new_lo = find_or_add(xv, f00, f10);
    nodes_[n].var = yv;
    nodes_[n].lo = new_lo;
    nodes_[n].hi = new_hi;
    subtable_insert(yv, n);
  }
  std::swap(invperm_[static_cast<size_t>(level)],
            invperm_[static_cast<size_t>(level + 1)]);
  perm_[static_cast<size_t>(x)] = level + 1;
  perm_[static_cast<size_t>(y)] = level;
  return deps;
}

std::uint32_t BddManager::transfer_from(BddManager& src, std::uint32_t f,
                                        std::vector<std::uint32_t>& memo) {
  if (src.is_term(f)) return f;  // terminal handles agree across managers
  // Memoise the image of the regular function per source node; a
  // complemented caller gets the free complement of the memoised image.
  const std::uint32_t fc = comp_of(f);
  const std::uint32_t fi = idx_of(f);
  if (memo[fi] != kNil) return memo[fi] ^ fc;
  const Node n = src.nodes_[fi];
  const std::uint32_t lo = transfer_from(src, n.lo, memo);
  const std::uint32_t hi = transfer_from(src, n.hi, memo);
  const std::uint32_t v_h =
      find_or_add(n.var, kZero, kOne);  // the variable itself
  const std::uint32_t r = ite_rec(v_h, hi, lo);
  memo[fi] = r;
  return r ^ fc;
}

std::uint32_t BddManager::copy_rec(const BddManager& src, std::uint32_t f,
                                   CopyCache& cache) {
  if (src.is_term(f)) return f;  // terminal handles agree across managers
  // Memoise the image of the regular function per source node; a
  // complemented caller gets the free complement of the cached image.
  const std::uint32_t fc = comp_of(f);
  const std::uint32_t fr = regular(f);
  const auto it = cache.map_.find(fr);
  if (it != cache.map_.end()) {
    ++stats_.copy_cache_hits;
    return it->second.idx_ ^ fc;
  }
  const Node n = src.nodes_[idx_of(f)];
  const std::uint32_t lo = copy_rec(src, n.lo, cache);
  const std::uint32_t hi = copy_rec(src, n.hi, cache);
  // Both managers share the variable order, `hi` is regular by induction
  // (the source stores it regular), and lo != hi in the source implies
  // lo != hi here (injectivity per level, bottom up) — so this is exactly
  // the stored-node constellation and find_or_add never re-normalises. The
  // image of a regular handle is therefore regular: canonical form and
  // function-equality-is-handle-equality carry over verbatim.
  const std::uint32_t r = find_or_add(n.var, lo, hi);
  cache.map_.emplace(fr, Bdd(this, r));
  ++stats_.copy_nodes;
  return r ^ fc;
}

Bdd BddManager::copy_across(const Bdd& f, CopyCache& cache) {
  POLIS_CHECK_MSG(f.mgr_ != nullptr, "copy_across: null source handle");
  const BddManager& src = *f.mgr_;
  if (&src == this) return f;
  POLIS_CHECK_MSG(src.invperm_ == invperm_,
                  "copy_across requires identical variable sets and orders");
  if (cache.src_ != &src || cache.dst_ != this ||
      cache.src_epoch_ != src.structure_epoch_) {
    // First use, rebinding, or the source renumbered/recycled arena slots
    // since the cache was filled: raw source indices are no longer valid
    // keys, start over.
    if (!cache.map_.empty()) ++stats_.copy_cache_resets;
    cache.map_.clear();
    cache.src_ = &src;
    cache.dst_ = this;
    cache.src_epoch_ = src.structure_epoch_;
  }
  ++stats_.copy_across_calls;
  return make(copy_rec(src, f.idx_, cache));
}

std::vector<std::uint32_t> BddManager::live_roots() const {
  // Distinct non-terminal tagged handles over the registered-handle list,
  // first-seen order.
  std::vector<std::uint32_t> out;
  std::unordered_set<std::uint32_t> seen;
  for (const Bdd* h = handle_head_; h != nullptr; h = h->next_) {
    if (h->idx_ > kZero && seen.insert(h->idx_).second) out.push_back(h->idx_);
  }
  return out;
}

std::vector<size_t> BddManager::var_node_profile() {
  std::vector<size_t> profile(static_cast<size_t>(num_vars()), 0);
  mark_live();
  // Every tagged handle marked with the current epoch is a live
  // subfunction; bucket it by the var of its node (phase-pair counting,
  // matching node_count).
  const size_t limit = 2 * nodes_.size();
  for (std::uint32_t h = 2; h < limit; ++h) {
    if (visit_epoch_[h] == epoch_) profile[nodes_[idx_of(h)].var]++;
  }
  return profile;
}

void BddManager::set_order(const std::vector<int>& order) {
  POLIS_CHECK_MSG(static_cast<int>(order.size()) == num_vars(),
                  "order must mention every variable exactly once");
  std::vector<bool> seen(order.size(), false);
  for (int v : order) {
    check_var(v);
    POLIS_CHECK_MSG(!seen[static_cast<size_t>(v)], "duplicate var in order");
    seen[static_cast<size_t>(v)] = true;
  }

  // Like swap_adjacent_levels: the rebuild is a reorganization, not growth
  // (old and new arenas only coexist transiently), so suspend the governor —
  // a budget trip or injected fault mid-transfer would leave nothing for the
  // caller to degrade to. Charges are still recorded; the caller's next
  // governed operation re-checks the budget.
  ResourceGovernor::Suspend suspend;
  BddManager scratch;
  for (int i = 0; i < num_vars(); ++i) scratch.new_var(names_[static_cast<size_t>(i)]);
  scratch.invperm_ = order;
  for (int lvl = 0; lvl < num_vars(); ++lvl)
    scratch.perm_[static_cast<size_t>(order[static_cast<size_t>(lvl)])] = lvl;

  // Retarget every handle to its image in the scratch arena. The old arena
  // stays intact for the whole loop, so handles sharing an index and index
  // coincidences between old and new values are both harmless.
  std::vector<std::uint32_t> memo(nodes_.size(), kNil);
  for (Bdd* h = handle_head_; h != nullptr; h = h->next_) {
    h->idx_ = scratch.transfer_from(*this, h->idx_, memo);
  }

  nodes_ = std::move(scratch.nodes_);
  subtables_ = std::move(scratch.subtables_);
  perm_ = std::move(scratch.perm_);
  invperm_ = std::move(scratch.invperm_);
  free_head_ = kNil;
  ++structure_epoch_;  // every raw index was renumbered
  cache_clear();
  visit_epoch_.assign(2 * nodes_.size(), 0);
  stats_.peak_nodes = std::max(stats_.peak_nodes, nodes_.size());
}

void BddManager::garbage_collect() {
  OBS_SPAN(span, "bdd.gc", "bdd");
  const size_t before = nodes_.size();
  mark_live();
  const auto live = [&](std::uint32_t i) {
    return visit_epoch_[2 * i] == epoch_ || visit_epoch_[2 * i + 1] == epoch_;
  };

  // Compact into a fresh arena ordered level by level (top first): after a
  // collection the nodes of one variable occupy a contiguous run, which is
  // the access pattern of swap_adjacent_levels and of the apply recursions
  // (both touch one level at a time). In-place monotone remapping cannot
  // produce this layout, so the collection builds a new vector.
  std::vector<std::vector<std::uint32_t>> by_level(
      static_cast<size_t>(num_vars()));
  size_t live_count = 0;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kDeadVar) continue;  // free-list slot
    if (live(i)) {
      by_level[static_cast<size_t>(perm_[nodes_[i].var])].push_back(i);
      ++live_count;
    }
  }

  std::vector<std::uint32_t> remap(nodes_.size(), kNil);
  remap[0] = 0;  // the terminal is a fixed point
  std::vector<Node> fresh;
  fresh.reserve(1 + live_count);
  fresh.push_back(nodes_[0]);
  for (const auto& bucket : by_level) {
    for (const std::uint32_t i : bucket) {
      remap[i] = static_cast<std::uint32_t>(fresh.size());
      fresh.push_back(nodes_[i]);
    }
  }
  // Children point strictly downward, so the full remap is ready before any
  // child handle is rewritten (complement bits ride along unchanged).
  for (size_t i = 1; i < fresh.size(); ++i) {
    Node& n = fresh[i];
    n.lo = (remap[idx_of(n.lo)] << 1) | comp_of(n.lo);
    n.hi = remap[idx_of(n.hi)] << 1;  // then-edges are regular
    n.next = kNil;
  }
  nodes_ = std::move(fresh);

  for (Subtable& st : subtables_) {
    std::fill(st.buckets.begin(), st.buckets.end(), kNil);
    st.count = 0;
  }
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    subtable_insert(nodes_[i].var, i);

  for (Bdd* h = handle_head_; h != nullptr; h = h->next_) {
    if (h->idx_ > kZero)
      h->idx_ = (remap[idx_of(h->idx_)] << 1) | comp_of(h->idx_);
  }

  free_head_ = kNil;
  ++structure_epoch_;  // compaction renumbered every surviving index
  cache_clear();
  visit_epoch_.assign(2 * nodes_.size(), 0);
  if (before > nodes_.size()) {
    ++stats_.gc_runs;
    stats_.nodes_reclaimed += before - nodes_.size();
    // Refund the compacted-away nodes so a governor metering several
    // manager lifetimes tracks live usage. Clamped to what was actually
    // charged (a manager created outside any governor scope charges 0).
    const std::uint64_t freed = before - nodes_.size();
    const std::uint64_t node_refund = std::min(freed, gov_charged_nodes_);
    const std::uint64_t byte_refund =
        std::min(freed * sizeof(Node), gov_charged_bytes_);
    if (node_refund != 0 || byte_refund != 0) {
      gov_charged_nodes_ -= node_refund;
      gov_charged_bytes_ -= byte_refund;
      ResourceGovernor::charge_arena_current(
          -static_cast<int64_t>(node_refund),
          -static_cast<int64_t>(byte_refund));
    }
  }
  if (span.armed()) {
    span.arg("arena_before", before);
    span.arg("arena_after", nodes_.size());
  }
}

size_t BddManager::prune_dead_nodes() {
  OBS_SPAN(span, "bdd.prune", "bdd");
  mark_live();  // leaves the liveness epoch in visit_epoch_
  // A node is live iff either of its phases is a live subfunction.
  const auto live = [&](std::uint32_t i) {
    return visit_epoch_[2 * i] == epoch_ || visit_epoch_[2 * i + 1] == epoch_;
  };
  size_t removed = 0;
  for (Subtable& st : subtables_) {
    for (std::uint32_t& head : st.buckets) {
      std::uint32_t* link = &head;
      while (*link != kNil) {
        const std::uint32_t n = *link;
        if (live(n)) {
          link = &nodes_[n].next;
        } else {
          *link = nodes_[n].next;
          nodes_[n].var = kDeadVar;
          nodes_[n].next = free_head_;
          free_head_ = n;
          --st.count;
          ++removed;
        }
      }
    }
  }
  if (removed > 0) {
    // Cached results may reference pruned slots, which the free list will
    // recycle into different functions; drop the cache. Cross-manager
    // translation caches keyed on this manager are stale for the same
    // reason — advance the structure epoch so they self-invalidate.
    cache_clear();
    ++structure_epoch_;
    ++stats_.gc_runs;
    stats_.nodes_reclaimed += removed;
  }
  if (span.armed()) span.arg("pruned", removed);
  return removed;
}

size_t BddManager::size_under_order(const std::vector<int>& order) {
  POLIS_CHECK(static_cast<int>(order.size()) == num_vars());
  BddManager scratch;
  for (int i = 0; i < num_vars(); ++i) scratch.new_var();
  scratch.invperm_ = order;
  for (int lvl = 0; lvl < num_vars(); ++lvl)
    scratch.perm_[static_cast<size_t>(order[static_cast<size_t>(lvl)])] = lvl;

  std::vector<std::uint32_t> memo(nodes_.size(), kNil);
  std::vector<Bdd> roots;
  for (std::uint32_t h : live_roots()) {
    const std::uint32_t r = scratch.transfer_from(*this, h, memo);
    roots.push_back(scratch.make(r));
  }
  return scratch.node_count(roots);
}

}  // namespace polis::bdd
