#include "bdd/bdd.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace polis::bdd {

// --- Bdd handle ----------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, std::uint32_t idx) { attach(mgr, idx); }

Bdd::Bdd(const Bdd& other) { attach(other.mgr_, other.idx_); }

Bdd::Bdd(Bdd&& other) noexcept {
  attach(other.mgr_, other.idx_);
  other.detach();
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this != &other) {
    detach();
    attach(other.mgr_, other.idx_);
  }
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this != &other) {
    detach();
    attach(other.mgr_, other.idx_);
    other.detach();
  }
  return *this;
}

Bdd::~Bdd() { detach(); }

void Bdd::attach(BddManager* mgr, std::uint32_t idx) {
  mgr_ = mgr;
  idx_ = idx;
  if (mgr_ != nullptr) mgr_->register_handle(this);
}

void Bdd::detach() {
  if (mgr_ != nullptr) mgr_->unregister_handle(this);
  mgr_ = nullptr;
  idx_ = 0;
}

bool Bdd::is_zero() const {
  return mgr_ != nullptr && idx_ == BddManager::kZero;
}

bool Bdd::is_one() const {
  return mgr_ != nullptr && idx_ == BddManager::kOne;
}

int Bdd::top_var() const {
  POLIS_CHECK(!is_null() && !is_constant());
  return static_cast<int>(mgr_->nodes_[idx_].var);
}

Bdd Bdd::high() const {
  POLIS_CHECK(!is_null() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[idx_].hi);
}

Bdd Bdd::low() const {
  POLIS_CHECK(!is_null() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[idx_].lo);
}

Bdd Bdd::operator&(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->band(*this, o);
}
Bdd Bdd::operator|(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->bor(*this, o);
}
Bdd Bdd::operator^(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->bxor(*this, o);
}
Bdd Bdd::operator!() const {
  POLIS_CHECK_MSG(!is_null(), "Boolean op on a null BDD handle");
  return mgr_->bnot(*this);
}

// --- Manager ---------------------------------------------------------------------

BddManager::BddManager() {
  nodes_.push_back(Node{kTermVar, kZero, kZero});  // index 0 = false
  nodes_.push_back(Node{kTermVar, kOne, kOne});    // index 1 = true
}

BddManager::BddManager(int num_vars) : BddManager() {
  for (int i = 0; i < num_vars; ++i) new_var();
}

BddManager::~BddManager() {
  // Null out surviving handles so they do not dangle.
  for (Bdd* h : handles_) {
    h->mgr_ = nullptr;
    h->idx_ = 0;
  }
}

int BddManager::new_var(std::string name) {
  const int v = num_vars();
  perm_.push_back(v);
  invperm_.push_back(v);
  if (name.empty()) name = "v" + std::to_string(v);
  names_.push_back(std::move(name));
  var_nodes_.emplace_back();
  return v;
}

const std::string& BddManager::var_name(int var) const {
  POLIS_CHECK(var >= 0 && var < num_vars());
  return names_[static_cast<size_t>(var)];
}

void BddManager::set_var_name(int var, std::string name) {
  POLIS_CHECK(var >= 0 && var < num_vars());
  names_[static_cast<size_t>(var)] = std::move(name);
}

void BddManager::check_var(int v) const {
  POLIS_CHECK_MSG(v >= 0 && v < num_vars(), "variable " << v << " not in manager");
}

Bdd BddManager::var(int v) {
  check_var(v);
  return make(find_or_add(static_cast<std::uint32_t>(v), kZero, kOne));
}

Bdd BddManager::nvar(int v) {
  check_var(v);
  return make(find_or_add(static_cast<std::uint32_t>(v), kOne, kZero));
}

std::uint32_t BddManager::find_or_add(std::uint32_t var, std::uint32_t lo,
                                      std::uint32_t hi) {
  if (lo == hi) return lo;
  const UniqueKey key{var, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const std::uint32_t idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(key, idx);
  var_nodes_[var].push_back(idx);
  return idx;
}

std::uint32_t BddManager::ite_rec(std::uint32_t f, std::uint32_t g,
                                  std::uint32_t h) {
  // Terminal cases.
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;

  const IteKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int lf = level(f);
  const int lg = level(g);
  const int lh = level(h);
  const int top = std::min(lf, std::min(lg, lh));
  const std::uint32_t v =
      static_cast<std::uint32_t>(invperm_[static_cast<size_t>(top)]);

  const std::uint32_t f1 = (lf == top) ? nodes_[f].hi : f;
  const std::uint32_t f0 = (lf == top) ? nodes_[f].lo : f;
  const std::uint32_t g1 = (lg == top) ? nodes_[g].hi : g;
  const std::uint32_t g0 = (lg == top) ? nodes_[g].lo : g;
  const std::uint32_t h1 = (lh == top) ? nodes_[h].hi : h;
  const std::uint32_t h0 = (lh == top) ? nodes_[h].lo : h;

  const std::uint32_t t = ite_rec(f1, g1, h1);
  const std::uint32_t e = ite_rec(f0, g0, h0);
  const std::uint32_t r = find_or_add(v, e, t);
  ite_cache_.emplace(key, r);
  return r;
}

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this && h.mgr_ == this);
  return make(ite_rec(f.idx_, g.idx_, h.idx_));
}

std::uint32_t BddManager::cofactor_rec(
    std::uint32_t f, int var, bool val,
    std::unordered_map<std::uint32_t, std::uint32_t>& memo) {
  if (is_term(f)) return f;
  const int vlevel = perm_[static_cast<size_t>(var)];
  if (level(f) > vlevel) return f;  // var cannot appear below its level
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const Node n = nodes_[f];
  std::uint32_t r;
  if (static_cast<int>(n.var) == var) {
    r = val ? n.hi : n.lo;
  } else {
    const std::uint32_t lo = cofactor_rec(n.lo, var, val, memo);
    const std::uint32_t hi = cofactor_rec(n.hi, var, val, memo);
    r = find_or_add(n.var, lo, hi);
  }
  memo.emplace(f, r);
  return r;
}

Bdd BddManager::cofactor(const Bdd& f, int var, bool val) {
  POLIS_CHECK(f.mgr_ == this);
  check_var(var);
  std::unordered_map<std::uint32_t, std::uint32_t> memo;
  return make(cofactor_rec(f.idx_, var, val, memo));
}

std::uint32_t BddManager::quant_rec(
    std::uint32_t f, const std::vector<bool>& in_set, bool existential,
    std::unordered_map<std::uint32_t, std::uint32_t>& memo) {
  if (is_term(f)) return f;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const Node n = nodes_[f];
  const std::uint32_t lo = quant_rec(n.lo, in_set, existential, memo);
  const std::uint32_t hi = quant_rec(n.hi, in_set, existential, memo);
  std::uint32_t r;
  if (in_set[n.var]) {
    r = existential ? ite_rec(lo, kOne, hi) : ite_rec(lo, hi, kZero);
  } else {
    r = find_or_add(n.var, lo, hi);
  }
  memo.emplace(f, r);
  return r;
}

Bdd BddManager::smooth(const Bdd& f, const std::vector<int>& vars) {
  POLIS_CHECK(f.mgr_ == this);
  if (vars.empty()) return f;
  std::vector<bool> in_set(static_cast<size_t>(num_vars()), false);
  for (int v : vars) {
    check_var(v);
    in_set[static_cast<size_t>(v)] = true;
  }
  std::unordered_map<std::uint32_t, std::uint32_t> memo;
  return make(quant_rec(f.idx_, in_set, /*existential=*/true, memo));
}

Bdd BddManager::forall(const Bdd& f, const std::vector<int>& vars) {
  POLIS_CHECK(f.mgr_ == this);
  if (vars.empty()) return f;
  std::vector<bool> in_set(static_cast<size_t>(num_vars()), false);
  for (int v : vars) {
    check_var(v);
    in_set[static_cast<size_t>(v)] = true;
  }
  std::unordered_map<std::uint32_t, std::uint32_t> memo;
  return make(quant_rec(f.idx_, in_set, /*existential=*/false, memo));
}

Bdd BddManager::compose(const Bdd& f, int var, const Bdd& g) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  const Bdd f1 = cofactor(f, var, true);
  const Bdd f0 = cofactor(f, var, false);
  return ite(g, f1, f0);
}

namespace {
struct PairHash {
  size_t operator()(const std::pair<std::uint32_t, std::uint32_t>& p) const {
    return (static_cast<std::uint64_t>(p.first) << 32 | p.second) *
           0x9e3779b97f4a7c15ULL;
  }
};
}  // namespace

Bdd BddManager::restrict(const Bdd& f, const Bdd& care) {
  POLIS_CHECK(f.mgr_ == this && care.mgr_ == this);
  std::unordered_map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t,
                     PairHash>
      memo;
  auto rec = [&](std::uint32_t g, std::uint32_t c, auto&& self) -> std::uint32_t {
    if (c == kZero) return kZero;  // entirely don't care: anything goes
    if (c == kOne || is_term(g)) return g;
    auto it = memo.find({g, c});
    if (it != memo.end()) return it->second;

    std::uint32_t r;
    const int lg = level(g);
    const int lc = level(c);
    if (lc < lg) {
      // The care set constrains a variable above g's top: merge branches.
      // Copy: recursion below may grow nodes_ and invalidate references.
      const Node cn = nodes_[c];
      r = self(g, ite_rec(cn.lo, kOne, cn.hi), self);  // c|v=0 ∨ c|v=1
    } else {
      const Node gn = nodes_[g];
      const std::uint32_t c1 = (lc == lg) ? nodes_[c].hi : c;
      const std::uint32_t c0 = (lc == lg) ? nodes_[c].lo : c;
      if (c1 == kZero) {
        r = self(gn.lo, c0, self);  // sibling substitution
      } else if (c0 == kZero) {
        r = self(gn.hi, c1, self);
      } else {
        const std::uint32_t lo = self(gn.lo, c0, self);
        const std::uint32_t hi = self(gn.hi, c1, self);
        r = find_or_add(gn.var, lo, hi);
      }
    }
    memo.emplace(std::make_pair(g, c), r);
    return r;
  };
  return make(rec(f.idx_, care.idx_, rec));
}

std::set<int> BddManager::support(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  std::set<int> out;
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack{f.idx_};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (is_term(n) || !seen.insert(n).second) continue;
    out.insert(static_cast<int>(nodes_[n].var));
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  return out;
}

bool BddManager::eval(const Bdd& f, const std::function<bool(int)>& assignment) {
  POLIS_CHECK(f.mgr_ == this);
  std::uint32_t n = f.idx_;
  while (!is_term(n)) {
    const Node& node = nodes_[n];
    n = assignment(static_cast<int>(node.var)) ? node.hi : node.lo;
  }
  return n == kOne;
}

double BddManager::sat_count(const Bdd& f, int nvars) {
  POLIS_CHECK(f.mgr_ == this);
  std::unordered_map<std::uint32_t, double> memo;
  // Fraction of the full space that satisfies f, then scaled by 2^nvars.
  auto frac = [&](std::uint32_t n, auto&& self) -> double {
    if (n == kZero) return 0.0;
    if (n == kOne) return 1.0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const double r =
        0.5 * self(nodes_[n].lo, self) + 0.5 * self(nodes_[n].hi, self);
    memo.emplace(n, r);
    return r;
  };
  double scale = 1.0;
  for (int i = 0; i < nvars; ++i) scale *= 2.0;
  return frac(f.idx_, frac) * scale;
}

std::vector<std::pair<int, bool>> BddManager::one_sat(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  POLIS_CHECK_MSG(f.idx_ != kZero, "one_sat of unsatisfiable function");
  std::vector<std::pair<int, bool>> cube;
  std::uint32_t n = f.idx_;
  while (!is_term(n)) {
    const Node& node = nodes_[n];
    if (node.hi != kZero) {
      cube.emplace_back(static_cast<int>(node.var), true);
      n = node.hi;
    } else {
      cube.emplace_back(static_cast<int>(node.var), false);
      n = node.lo;
    }
  }
  return cube;
}

size_t BddManager::node_count(const Bdd& f) {
  return node_count(std::vector<Bdd>{f});
}

size_t BddManager::node_count(const std::vector<Bdd>& roots) {
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack;
  for (const Bdd& r : roots) {
    POLIS_CHECK(r.mgr_ == this);
    stack.push_back(r.idx_);
  }
  size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (is_term(n) || !seen.insert(n).second) continue;
    ++count;
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  return count;
}

size_t BddManager::live_node_count() {
  if (visit_epoch_.size() < nodes_.size()) visit_epoch_.resize(nodes_.size(), 0);
  ++epoch_;
  visit_stack_.clear();
  for (const Bdd* h : handles_) visit_stack_.push_back(h->idx_);
  size_t count = 0;
  while (!visit_stack_.empty()) {
    const std::uint32_t n = visit_stack_.back();
    visit_stack_.pop_back();
    if (is_term(n) || visit_epoch_[n] == epoch_) continue;
    visit_epoch_[n] = epoch_;
    ++count;
    visit_stack_.push_back(nodes_[n].lo);
    visit_stack_.push_back(nodes_[n].hi);
  }
  return count;
}

size_t BddManager::swap_adjacent_levels(int level) {
  POLIS_CHECK_MSG(level >= 0 && level + 1 < num_vars(),
                  "swap_adjacent_levels: level " << level << " out of range");
  const int x = invperm_[static_cast<size_t>(level)];      // upper var
  const int y = invperm_[static_cast<size_t>(level + 1)];  // lower var
  const std::uint32_t xv = static_cast<std::uint32_t>(x);
  const std::uint32_t yv = static_cast<std::uint32_t>(y);

  // Only nodes labelled x can change: a node x ? f1 : f0 whose cofactors
  // depend on y is relabelled, in place, to
  //   y ? (x ? f11 : f01) : (x ? f10 : f00),
  // preserving its function (and hence its index, all handles and the
  // computed cache). Nodes labelled x with y-free cofactors just ride to
  // the lower level untouched; all other nodes are unaffected.
  auto& x_list = var_nodes_[static_cast<size_t>(x)];
  auto& y_list = var_nodes_[static_cast<size_t>(y)];
  swap_scratch_.assign(x_list.begin(), x_list.end());
  x_list.clear();  // capacity retained: steady-state swaps do not allocate
  size_t rewritten = 0;
  for (const std::uint32_t n : swap_scratch_) {
    const std::uint32_t f1 = nodes_[n].hi;
    const std::uint32_t f0 = nodes_[n].lo;
    const bool hi_dep = !is_term(f1) && nodes_[f1].var == yv;
    const bool lo_dep = !is_term(f0) && nodes_[f0].var == yv;
    if (!hi_dep && !lo_dep) {
      x_list.push_back(n);
      continue;
    }
    const std::uint32_t f11 = hi_dep ? nodes_[f1].hi : f1;
    const std::uint32_t f10 = hi_dep ? nodes_[f1].lo : f1;
    const std::uint32_t f01 = lo_dep ? nodes_[f0].hi : f0;
    const std::uint32_t f00 = lo_dep ? nodes_[f0].lo : f0;
    // The grandchildren sit strictly below both levels, so these lookups
    // can only hit (or create) y-free x-nodes — never a pending rewrite.
    const std::uint32_t new_hi = find_or_add(xv, f01, f11);
    const std::uint32_t new_lo = find_or_add(xv, f00, f10);
    unique_.erase(UniqueKey{xv, f0, f1});
    nodes_[n] = Node{yv, new_lo, new_hi};
    unique_.emplace(UniqueKey{yv, new_lo, new_hi}, n);
    y_list.push_back(n);
    ++rewritten;
  }
  std::swap(invperm_[static_cast<size_t>(level)],
            invperm_[static_cast<size_t>(level + 1)]);
  perm_[static_cast<size_t>(x)] = level + 1;
  perm_[static_cast<size_t>(y)] = level;
  return rewritten;
}

std::uint32_t BddManager::transfer_from(
    BddManager& src, std::uint32_t f,
    std::unordered_map<std::uint32_t, std::uint32_t>& memo) {
  if (src.is_term(f)) return f;  // terminals share indices across managers
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const Node n = src.nodes_[f];
  const std::uint32_t lo = transfer_from(src, n.lo, memo);
  const std::uint32_t hi = transfer_from(src, n.hi, memo);
  const std::uint32_t v_idx =
      find_or_add(n.var, kZero, kOne);  // the variable itself
  const std::uint32_t r = ite_rec(v_idx, hi, lo);
  memo.emplace(f, r);
  return r;
}

std::vector<std::uint32_t> BddManager::live_roots() const {
  std::unordered_set<std::uint32_t> uniq;
  for (const Bdd* h : handles_) uniq.insert(h->idx_);
  return std::vector<std::uint32_t>(uniq.begin(), uniq.end());
}

std::vector<size_t> BddManager::var_node_profile() {
  std::vector<size_t> profile(static_cast<size_t>(num_vars()), 0);
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack = live_roots();
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (is_term(n) || !seen.insert(n).second) continue;
    profile[nodes_[n].var]++;
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  return profile;
}

void BddManager::set_order(const std::vector<int>& order) {
  POLIS_CHECK_MSG(static_cast<int>(order.size()) == num_vars(),
                  "order must mention every variable exactly once");
  std::vector<bool> seen(order.size(), false);
  for (int v : order) {
    check_var(v);
    POLIS_CHECK_MSG(!seen[static_cast<size_t>(v)], "duplicate var in order");
    seen[static_cast<size_t>(v)] = true;
  }

  BddManager scratch;
  for (int i = 0; i < num_vars(); ++i) scratch.new_var(names_[static_cast<size_t>(i)]);
  scratch.invperm_ = order;
  for (int lvl = 0; lvl < num_vars(); ++lvl)
    scratch.perm_[static_cast<size_t>(order[static_cast<size_t>(lvl)])] = lvl;

  std::unordered_map<std::uint32_t, std::uint32_t> memo;
  // Retarget every handle to its image in the scratch arena.
  std::unordered_map<std::uint32_t, std::uint32_t> image;
  for (Bdd* h : handles_) {
    auto it = image.find(h->idx_);
    if (it == image.end()) {
      const std::uint32_t r = scratch.transfer_from(*this, h->idx_, memo);
      it = image.emplace(h->idx_, r).first;
    }
    h->idx_ = it->second;
  }

  nodes_ = std::move(scratch.nodes_);
  unique_ = std::move(scratch.unique_);
  ite_cache_.clear();
  perm_ = std::move(scratch.perm_);
  invperm_ = std::move(scratch.invperm_);
  var_nodes_ = std::move(scratch.var_nodes_);
}

void BddManager::garbage_collect() { set_order(invperm_); }

size_t BddManager::prune_dead_nodes() {
  // Mark live nodes (epoch left in visit_epoch_ for the filter below).
  live_node_count();
  size_t removed = 0;
  for (auto& list : var_nodes_) {
    size_t keep = 0;
    for (const std::uint32_t idx : list) {
      if (visit_epoch_[idx] == epoch_) {
        list[keep++] = idx;
      } else {
        const Node& n = nodes_[idx];
        unique_.erase(UniqueKey{n.var, n.lo, n.hi});
        ++removed;
      }
    }
    list.resize(keep);
  }
  // Cached ITE results may point at pruned nodes; those indices would no
  // longer be re-keyed by future level swaps, so drop the cache.
  if (removed > 0) ite_cache_.clear();
  return removed;
}

size_t BddManager::size_under_order(const std::vector<int>& order) {
  POLIS_CHECK(static_cast<int>(order.size()) == num_vars());
  BddManager scratch;
  for (int i = 0; i < num_vars(); ++i) scratch.new_var();
  scratch.invperm_ = order;
  for (int lvl = 0; lvl < num_vars(); ++lvl)
    scratch.perm_[static_cast<size_t>(order[static_cast<size_t>(lvl)])] = lvl;

  std::unordered_map<std::uint32_t, std::uint32_t> memo;
  std::vector<Bdd> roots;
  for (std::uint32_t idx : live_roots()) {
    const std::uint32_t r = scratch.transfer_from(*this, idx, memo);
    roots.push_back(scratch.make(r));
  }
  return scratch.node_count(roots);
}

}  // namespace polis::bdd
