#include "bdd/bdd.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace polis::bdd {

// --- Bdd handle ----------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, std::uint32_t idx) { attach(mgr, idx); }

Bdd::Bdd(const Bdd& other) { attach(other.mgr_, other.idx_); }

Bdd::Bdd(Bdd&& other) noexcept {
  attach(other.mgr_, other.idx_);
  other.detach();
}

Bdd& Bdd::operator=(const Bdd& other) {
  if (this != &other) {
    detach();
    attach(other.mgr_, other.idx_);
  }
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this != &other) {
    detach();
    attach(other.mgr_, other.idx_);
    other.detach();
  }
  return *this;
}

Bdd::~Bdd() { detach(); }

void Bdd::attach(BddManager* mgr, std::uint32_t idx) {
  mgr_ = mgr;
  idx_ = idx;
  if (mgr_ != nullptr) mgr_->register_handle(this);
}

void Bdd::detach() {
  if (mgr_ != nullptr) mgr_->unregister_handle(this);
  mgr_ = nullptr;
  idx_ = 0;
  prev_ = nullptr;
  next_ = nullptr;
}

bool Bdd::is_zero() const {
  return mgr_ != nullptr && idx_ == BddManager::kZero;
}

bool Bdd::is_one() const {
  return mgr_ != nullptr && idx_ == BddManager::kOne;
}

int Bdd::top_var() const {
  POLIS_CHECK(!is_null() && !is_constant());
  return static_cast<int>(mgr_->nodes_[idx_].var);
}

Bdd Bdd::high() const {
  POLIS_CHECK(!is_null() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[idx_].hi);
}

Bdd Bdd::low() const {
  POLIS_CHECK(!is_null() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[idx_].lo);
}

Bdd Bdd::operator&(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->band(*this, o);
}
Bdd Bdd::operator|(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->bor(*this, o);
}
Bdd Bdd::operator^(const Bdd& o) const {
  POLIS_CHECK_MSG(!is_null() && !o.is_null(), "Boolean op on a null BDD handle");
  return mgr_->bxor(*this, o);
}
Bdd Bdd::operator!() const {
  POLIS_CHECK_MSG(!is_null(), "Boolean op on a null BDD handle");
  return mgr_->bnot(*this);
}

// --- Handle registry + reference-counted roots ---------------------------------

void BddManager::register_handle(Bdd* h) {
  h->prev_ = nullptr;
  h->next_ = handle_head_;
  if (handle_head_ != nullptr) handle_head_->prev_ = h;
  handle_head_ = h;
  add_ref(h->idx_);
}

void BddManager::unregister_handle(Bdd* h) {
  deref(h->idx_);
  if (h->prev_ != nullptr) {
    h->prev_->next_ = h->next_;
  } else {
    handle_head_ = h->next_;
  }
  if (h->next_ != nullptr) h->next_->prev_ = h->prev_;
}

void BddManager::add_ref(std::uint32_t idx) {
  if (idx <= kOne) return;  // terminals are always live
  if (idx >= extref_.size()) {
    extref_.resize(nodes_.size(), 0);
    in_roots_.resize(nodes_.size(), 0);
  }
  if (extref_[idx]++ == 0 && !in_roots_[idx]) {
    in_roots_[idx] = 1;
    roots_.push_back(idx);
  }
}

void BddManager::deref(std::uint32_t idx) {
  if (idx <= kOne) return;
  // The roots_ entry stays until the next compact_roots; re-referencing the
  // node before then must not duplicate it (in_roots_ stays set).
  --extref_[idx];
}

void BddManager::compact_roots() {
  size_t keep = 0;
  for (const std::uint32_t idx : roots_) {
    if (extref_[idx] > 0) {
      roots_[keep++] = idx;
    } else {
      in_roots_[idx] = 0;
    }
  }
  roots_.resize(keep);
}

void BddManager::rebuild_refs() {
  extref_.assign(nodes_.size(), 0);
  in_roots_.assign(nodes_.size(), 0);
  roots_.clear();
  for (Bdd* h = handle_head_; h != nullptr; h = h->next_) add_ref(h->idx_);
}

// --- Manager ---------------------------------------------------------------------

BddManager::BddManager() {
  nodes_.push_back(Node{kTermVar, kZero, kZero, kNil});  // index 0 = false
  nodes_.push_back(Node{kTermVar, kOne, kOne, kNil});    // index 1 = true
  cache_.resize(kInitCacheEntries);
  cache_mask_ = kInitCacheEntries - 1;
  stats_.peak_nodes = nodes_.size();
}

BddManager::BddManager(int num_vars) : BddManager() {
  for (int i = 0; i < num_vars; ++i) new_var();
}

BddManager::~BddManager() {
  flush_stats_to_obs();
  // Null out surviving handles so they do not dangle.
  for (Bdd* h = handle_head_; h != nullptr;) {
    Bdd* next = h->next_;
    h->mgr_ = nullptr;
    h->idx_ = 0;
    h->prev_ = nullptr;
    h->next_ = nullptr;
    h = next;
  }
}

int BddManager::new_var(std::string name) {
  const int v = num_vars();
  perm_.push_back(v);
  invperm_.push_back(v);
  if (name.empty()) name = "v" + std::to_string(v);
  names_.push_back(std::move(name));
  subtables_.emplace_back();
  return v;
}

const std::string& BddManager::var_name(int var) const {
  POLIS_CHECK(var >= 0 && var < num_vars());
  return names_[static_cast<size_t>(var)];
}

void BddManager::set_var_name(int var, std::string name) {
  POLIS_CHECK(var >= 0 && var < num_vars());
  names_[static_cast<size_t>(var)] = std::move(name);
}

void BddManager::check_var(int v) const {
  POLIS_CHECK_MSG(v >= 0 && v < num_vars(), "variable " << v << " not in manager");
}

Bdd BddManager::var(int v) {
  check_var(v);
  return make(find_or_add(static_cast<std::uint32_t>(v), kZero, kOne));
}

Bdd BddManager::nvar(int v) {
  check_var(v);
  return make(find_or_add(static_cast<std::uint32_t>(v), kOne, kZero));
}

// --- Unique table ----------------------------------------------------------------

std::uint32_t BddManager::find_or_add(std::uint32_t var, std::uint32_t lo,
                                      std::uint32_t hi) {
  if (lo == hi) return lo;
  Subtable& st = subtables_[var];
  if (st.buckets.empty()) st.buckets.assign(kInitBuckets, kNil);
  ++stats_.unique_lookups;
  const size_t slot = hash_children(lo, hi) & (st.buckets.size() - 1);
  for (std::uint32_t n = st.buckets[slot]; n != kNil; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.lo == lo && nd.hi == hi) {
      ++stats_.unique_hits;
      return n;
    }
  }
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = nodes_[idx].next;
    ++stats_.nodes_recycled;
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
    stats_.peak_nodes = std::max(stats_.peak_nodes, nodes_.size());
    ++stats_.nodes_created;
  }
  nodes_[idx] = Node{var, lo, hi, st.buckets[slot]};
  st.buckets[slot] = idx;
  if (++st.count > st.buckets.size() * kMaxChainLoad) grow_subtable(st);
  return idx;
}

void BddManager::subtable_insert(std::uint32_t var, std::uint32_t idx) {
  Subtable& st = subtables_[var];
  if (st.buckets.empty()) st.buckets.assign(kInitBuckets, kNil);
  const size_t slot =
      hash_children(nodes_[idx].lo, nodes_[idx].hi) & (st.buckets.size() - 1);
  nodes_[idx].next = st.buckets[slot];
  st.buckets[slot] = idx;
  if (++st.count > st.buckets.size() * kMaxChainLoad) grow_subtable(st);
}

void BddManager::grow_subtable(Subtable& st) {
  std::vector<std::uint32_t> old = std::move(st.buckets);
  st.buckets.assign(old.size() * 2, kNil);
  const size_t mask = st.buckets.size() - 1;
  for (std::uint32_t head : old) {
    while (head != kNil) {
      const std::uint32_t next = nodes_[head].next;
      const size_t slot = hash_children(nodes_[head].lo, nodes_[head].hi) & mask;
      nodes_[head].next = st.buckets[slot];
      st.buckets[slot] = head;
      head = next;
    }
  }
}

// --- Computed cache --------------------------------------------------------------

bool BddManager::cache_lookup(std::uint32_t op, std::uint32_t a,
                              std::uint32_t b, std::uint32_t c,
                              std::uint32_t* result) {
  ++stats_.cache_lookups;
  const CacheEntry& e = cache_[cache_slot(op, a, b, c)];
  if (e.op == op && e.a == a && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    *result = e.result;
    return true;
  }
  return false;
}

void BddManager::cache_insert(std::uint32_t op, std::uint32_t a,
                              std::uint32_t b, std::uint32_t c,
                              std::uint32_t result) {
  ++stats_.cache_inserts;
  CacheEntry& e = cache_[cache_slot(op, a, b, c)];
  if (e.op != kOpNone && !(e.op == op && e.a == a && e.b == b && e.c == c))
    ++stats_.cache_evictions;
  e = CacheEntry{op, a, b, c, result};

  // Resize policy: once we have inserted a full cache's worth of entries
  // since the last resize, the cache is under pressure; double it while the
  // hit rate over that window shows it is earning its keep.
  if (stats_.cache_inserts - cache_inserts_at_resize_ > cache_.size() &&
      cache_.size() < kMaxCacheEntries) {
    const std::uint64_t lookups = stats_.cache_lookups - cache_lookups_at_resize_;
    const std::uint64_t hits = stats_.cache_hits - cache_hits_at_resize_;
    if (lookups > 0 && hits * 10 >= lookups * 3) {
      resize_cache(cache_.size() * 2);
    } else {
      // Not earning hits: restart the observation window at this size.
      cache_lookups_at_resize_ = stats_.cache_lookups;
      cache_hits_at_resize_ = stats_.cache_hits;
      cache_inserts_at_resize_ = stats_.cache_inserts;
    }
  }
}

void BddManager::cache_clear() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
}

void BddManager::resize_cache(size_t new_entries) {
  OBS_SPAN(span, "bdd.cache_resize", "bdd");
  if (span.armed()) {
    span.arg("old_entries", cache_.size());
    span.arg("new_entries", new_entries);
  }
  std::vector<CacheEntry> old = std::move(cache_);
  cache_.assign(new_entries, CacheEntry{});
  cache_mask_ = new_entries - 1;
  for (const CacheEntry& e : old) {
    if (e.op != kOpNone) cache_[cache_slot(e.op, e.a, e.b, e.c)] = e;
  }
  ++stats_.cache_resizes;
  cache_lookups_at_resize_ = stats_.cache_lookups;
  cache_hits_at_resize_ = stats_.cache_hits;
  cache_inserts_at_resize_ = stats_.cache_inserts;
}

KernelStats BddManager::stats() const {
  KernelStats out = stats_;
  out.cache_capacity = cache_.size();
  out.arena_nodes = nodes_.size();
  return out;
}

void BddManager::reset_stats() {
  stats_ = KernelStats{};
  flushed_stats_ = KernelStats{};
  stats_.peak_nodes = nodes_.size();
  cache_lookups_at_resize_ = 0;
  cache_hits_at_resize_ = 0;
  cache_inserts_at_resize_ = 0;
}

void BddManager::flush_stats_to_obs() {
  // Ids are registered once per process; updates below are the lock-free
  // per-thread shard path, so flushing from synthesis worker threads is safe.
  struct Ids {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::MetricsRegistry::Id ite_calls = reg.counter("bdd.ite_calls");
    obs::MetricsRegistry::Id cache_lookups = reg.counter("bdd.cache_lookups");
    obs::MetricsRegistry::Id cache_hits = reg.counter("bdd.cache_hits");
    obs::MetricsRegistry::Id cache_inserts = reg.counter("bdd.cache_inserts");
    obs::MetricsRegistry::Id cache_evictions =
        reg.counter("bdd.cache_evictions");
    obs::MetricsRegistry::Id cache_resizes = reg.counter("bdd.cache_resizes");
    obs::MetricsRegistry::Id unique_lookups =
        reg.counter("bdd.unique_lookups");
    obs::MetricsRegistry::Id unique_hits = reg.counter("bdd.unique_hits");
    obs::MetricsRegistry::Id nodes_created = reg.counter("bdd.nodes_created");
    obs::MetricsRegistry::Id nodes_recycled =
        reg.counter("bdd.nodes_recycled");
    obs::MetricsRegistry::Id gc_runs = reg.counter("bdd.gc_runs");
    obs::MetricsRegistry::Id nodes_reclaimed =
        reg.counter("bdd.nodes_reclaimed");
    obs::MetricsRegistry::Id peak_nodes = reg.max_gauge("bdd.peak_nodes");
    obs::MetricsRegistry::Id peak_hist = reg.histogram("bdd.manager_peak_nodes");
  };
  static const Ids ids;
  obs::MetricsRegistry& reg = ids.reg;
  const KernelStats& s = stats_;
  KernelStats& f = flushed_stats_;
  auto drain = [&](obs::MetricsRegistry::Id id, std::uint64_t now,
                   std::uint64_t& last) {
    if (now > last) reg.add(id, now - last);
    last = now;
  };
  drain(ids.ite_calls, s.ite_calls, f.ite_calls);
  drain(ids.cache_lookups, s.cache_lookups, f.cache_lookups);
  drain(ids.cache_hits, s.cache_hits, f.cache_hits);
  drain(ids.cache_inserts, s.cache_inserts, f.cache_inserts);
  drain(ids.cache_evictions, s.cache_evictions, f.cache_evictions);
  drain(ids.cache_resizes, s.cache_resizes, f.cache_resizes);
  drain(ids.unique_lookups, s.unique_lookups, f.unique_lookups);
  drain(ids.unique_hits, s.unique_hits, f.unique_hits);
  drain(ids.nodes_created, s.nodes_created, f.nodes_created);
  drain(ids.nodes_recycled, s.nodes_recycled, f.nodes_recycled);
  drain(ids.gc_runs, s.gc_runs, f.gc_runs);
  drain(ids.nodes_reclaimed, s.nodes_reclaimed, f.nodes_reclaimed);
  reg.set(ids.peak_nodes, static_cast<std::int64_t>(s.peak_nodes));
  if (f.peak_nodes != s.peak_nodes) {
    // One histogram sample per manager lifetime peak (sampled at the first
    // flush that observes the final value — later flushes skip duplicates).
    reg.observe(ids.peak_hist, s.peak_nodes);
    f.peak_nodes = s.peak_nodes;
  }
}

// --- Core operations -------------------------------------------------------------

std::uint32_t BddManager::ite_rec(std::uint32_t f, std::uint32_t g,
                                  std::uint32_t h) {
  // Terminal cases.
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  // Equal-operand normalisation raises the cache hit rate: ite(f, f, h) =
  // ite(f, 1, h) and ite(f, g, f) = ite(f, g, 0).
  if (f == g) g = kOne;
  if (f == h) h = kZero;
  if (g == kOne && h == kZero) return f;

  std::uint32_t r;
  if (cache_lookup(kOpIte, f, g, h, &r)) return r;

  const int lf = level(f);
  const int lg = level(g);
  const int lh = level(h);
  const int top = std::min(lf, std::min(lg, lh));
  const std::uint32_t v =
      static_cast<std::uint32_t>(invperm_[static_cast<size_t>(top)]);

  const std::uint32_t f1 = (lf == top) ? nodes_[f].hi : f;
  const std::uint32_t f0 = (lf == top) ? nodes_[f].lo : f;
  const std::uint32_t g1 = (lg == top) ? nodes_[g].hi : g;
  const std::uint32_t g0 = (lg == top) ? nodes_[g].lo : g;
  const std::uint32_t h1 = (lh == top) ? nodes_[h].hi : h;
  const std::uint32_t h0 = (lh == top) ? nodes_[h].lo : h;

  const std::uint32_t t = ite_rec(f1, g1, h1);
  const std::uint32_t e = ite_rec(f0, g0, h0);
  r = find_or_add(v, e, t);
  cache_insert(kOpIte, f, g, h, r);
  return r;
}

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this && h.mgr_ == this);
  ++stats_.ite_calls;
  return make(ite_rec(f.idx_, g.idx_, h.idx_));
}

std::uint32_t BddManager::bnot_rec(std::uint32_t f) {
  if (f == kZero) return kOne;
  if (f == kOne) return kZero;
  std::uint32_t r;
  if (cache_lookup(kOpNot, f, 0, 0, &r)) return r;
  const Node n = nodes_[f];  // copy: recursion below may grow nodes_
  const std::uint32_t lo = bnot_rec(n.lo);
  const std::uint32_t hi = bnot_rec(n.hi);
  r = find_or_add(n.var, lo, hi);
  cache_insert(kOpNot, f, 0, 0, r);
  cache_insert(kOpNot, r, 0, 0, f);  // involution: ¬r = f for free
  return r;
}

Bdd BddManager::bnot(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  return make(bnot_rec(f.idx_));
}

Bdd BddManager::bxor(const Bdd& f, const Bdd& g) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  return make(ite_rec(f.idx_, bnot_rec(g.idx_), g.idx_));
}

std::uint32_t BddManager::cofactor_rec(std::uint32_t f, int var, bool val) {
  if (is_term(f)) return f;
  const int vlevel = perm_[static_cast<size_t>(var)];
  if (level(f) > vlevel) return f;  // var cannot appear below its level
  const Node n = nodes_[f];
  if (static_cast<int>(n.var) == var) return val ? n.hi : n.lo;
  std::uint32_t r;
  const std::uint32_t tag =
      (static_cast<std::uint32_t>(var) << 1) | (val ? 1u : 0u);
  if (cache_lookup(kOpCofactor, f, tag, 0, &r)) return r;
  const std::uint32_t lo = cofactor_rec(n.lo, var, val);
  const std::uint32_t hi = cofactor_rec(n.hi, var, val);
  r = find_or_add(n.var, lo, hi);
  cache_insert(kOpCofactor, f, tag, 0, r);
  return r;
}

Bdd BddManager::cofactor(const Bdd& f, int var, bool val) {
  POLIS_CHECK(f.mgr_ == this);
  check_var(var);
  return make(cofactor_rec(f.idx_, var, val));
}

std::uint32_t BddManager::make_cube(const std::vector<int>& vars) {
  // Conjunction of positive literals, built bottom-up in level order so each
  // step is a single unique-table insertion.
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
    return perm_[static_cast<size_t>(a)] > perm_[static_cast<size_t>(b)];
  });
  std::uint32_t cube = kOne;
  int prev = -1;
  for (const int v : sorted) {
    if (v == prev) continue;  // duplicate var in the set
    prev = v;
    cube = find_or_add(static_cast<std::uint32_t>(v), kZero, cube);
  }
  return cube;
}

std::uint32_t BddManager::quant_rec(std::uint32_t f, std::uint32_t cube,
                                    bool existential) {
  // Quantified vars above f's top variable cannot appear in f: skip them.
  while (!is_term(cube) && level(cube) < level(f)) cube = nodes_[cube].hi;
  if (is_term(f) || cube == kOne) return f;
  std::uint32_t r;
  const std::uint32_t op = existential ? kOpExists : kOpForall;
  if (cache_lookup(op, f, cube, 0, &r)) return r;
  const Node n = nodes_[f];  // copy: recursion below may grow nodes_
  if (level(f) == level(cube)) {
    const std::uint32_t rest = nodes_[cube].hi;
    const std::uint32_t lo = quant_rec(n.lo, rest, existential);
    const std::uint32_t hi = quant_rec(n.hi, rest, existential);
    r = existential ? ite_rec(lo, kOne, hi) : ite_rec(lo, hi, kZero);
  } else {
    const std::uint32_t lo = quant_rec(n.lo, cube, existential);
    const std::uint32_t hi = quant_rec(n.hi, cube, existential);
    r = find_or_add(n.var, lo, hi);
  }
  cache_insert(op, f, cube, 0, r);
  return r;
}

Bdd BddManager::smooth(const Bdd& f, const std::vector<int>& vars) {
  POLIS_CHECK(f.mgr_ == this);
  if (vars.empty()) return f;
  for (int v : vars) check_var(v);
  const std::uint32_t cube = make_cube(vars);
  return make(quant_rec(f.idx_, cube, /*existential=*/true));
}

Bdd BddManager::forall(const Bdd& f, const std::vector<int>& vars) {
  POLIS_CHECK(f.mgr_ == this);
  if (vars.empty()) return f;
  for (int v : vars) check_var(v);
  const std::uint32_t cube = make_cube(vars);
  return make(quant_rec(f.idx_, cube, /*existential=*/false));
}

std::uint32_t BddManager::and_exists_rec(std::uint32_t f, std::uint32_t g,
                                         std::uint32_t cube) {
  ++stats_.and_exists_recursions;
  // Terminal cases: f∧g collapses, or no quantified vars remain below.
  if (f == kZero || g == kZero) return kZero;
  if (f == kOne && g == kOne) return kOne;
  if (f == kOne) return quant_rec(g, cube, /*existential=*/true);
  if (g == kOne || f == g) return quant_rec(f, cube, /*existential=*/true);
  // Commutative: normalise operand order for cache hits.
  if (f > g) std::swap(f, g);

  const int lf = level(f);
  const int lg = level(g);
  const int top = std::min(lf, lg);
  // Quantified vars above both operands cannot appear in either: skip them.
  while (!is_term(cube) && level(cube) < top) cube = nodes_[cube].hi;
  if (cube == kOne) return ite_rec(f, g, kZero);  // plain conjunction

  std::uint32_t r;
  if (cache_lookup(kOpAndExists, f, g, cube, &r)) {
    ++stats_.and_exists_cache_hits;
    return r;
  }

  const std::uint32_t v =
      static_cast<std::uint32_t>(invperm_[static_cast<size_t>(top)]);
  // Copies: the recursion below may grow nodes_.
  const std::uint32_t f1 = (lf == top) ? nodes_[f].hi : f;
  const std::uint32_t f0 = (lf == top) ? nodes_[f].lo : f;
  const std::uint32_t g1 = (lg == top) ? nodes_[g].hi : g;
  const std::uint32_t g0 = (lg == top) ? nodes_[g].lo : g;

  if (level(cube) == top) {
    const std::uint32_t rest = nodes_[cube].hi;
    const std::uint32_t hi = and_exists_rec(f1, g1, rest);
    if (hi == kOne) {
      r = kOne;  // ∃v absorbs: the other branch cannot add anything
    } else {
      const std::uint32_t lo = and_exists_rec(f0, g0, rest);
      r = ite_rec(hi, kOne, lo);
    }
  } else {
    const std::uint32_t hi = and_exists_rec(f1, g1, cube);
    const std::uint32_t lo = and_exists_rec(f0, g0, cube);
    r = find_or_add(v, lo, hi);
  }
  cache_insert(kOpAndExists, f, g, cube, r);
  return r;
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g,
                           const std::vector<int>& vars) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  ++stats_.and_exists_calls;
  for (int v : vars) check_var(v);
  const std::uint32_t cube = make_cube(vars);
  return make(and_exists_rec(f.idx_, g.idx_, cube));
}

std::uint32_t BddManager::compose_rec(std::uint32_t f, int var,
                                      std::uint32_t g) {
  if (is_term(f)) return f;
  if (level(f) > perm_[static_cast<size_t>(var)]) return f;  // var ∉ support
  std::uint32_t r;
  if (cache_lookup(kOpCompose, f, g, static_cast<std::uint32_t>(var), &r))
    return r;
  const Node n = nodes_[f];  // copy: recursion below may grow nodes_
  if (static_cast<int>(n.var) == var) {
    r = ite_rec(g, n.hi, n.lo);
  } else {
    const std::uint32_t lo = compose_rec(n.lo, var, g);
    const std::uint32_t hi = compose_rec(n.hi, var, g);
    // g may depend on variables above n.var, so rebuild with ITE on the
    // branch variable instead of a direct find_or_add.
    const std::uint32_t v = find_or_add(n.var, kZero, kOne);
    r = ite_rec(v, hi, lo);
  }
  cache_insert(kOpCompose, f, g, static_cast<std::uint32_t>(var), r);
  return r;
}

Bdd BddManager::compose(const Bdd& f, int var, const Bdd& g) {
  POLIS_CHECK(f.mgr_ == this && g.mgr_ == this);
  check_var(var);
  return make(compose_rec(f.idx_, var, g.idx_));
}

std::uint32_t BddManager::restrict_rec(std::uint32_t g, std::uint32_t c) {
  if (c == kZero) return kZero;  // entirely don't care: anything goes
  if (c == kOne || is_term(g)) return g;
  std::uint32_t r;
  if (cache_lookup(kOpRestrict, g, c, 0, &r)) return r;

  const int lg = level(g);
  const int lc = level(c);
  if (lc < lg) {
    // The care set constrains a variable above g's top: merge branches.
    // Copy: recursion below may grow nodes_ and invalidate references.
    const Node cn = nodes_[c];
    r = restrict_rec(g, ite_rec(cn.lo, kOne, cn.hi));  // c|v=0 ∨ c|v=1
  } else {
    const Node gn = nodes_[g];
    const std::uint32_t c1 = (lc == lg) ? nodes_[c].hi : c;
    const std::uint32_t c0 = (lc == lg) ? nodes_[c].lo : c;
    if (c1 == kZero) {
      r = restrict_rec(gn.lo, c0);  // sibling substitution
    } else if (c0 == kZero) {
      r = restrict_rec(gn.hi, c1);
    } else {
      const std::uint32_t lo = restrict_rec(gn.lo, c0);
      const std::uint32_t hi = restrict_rec(gn.hi, c1);
      r = find_or_add(gn.var, lo, hi);
    }
  }
  cache_insert(kOpRestrict, g, c, 0, r);
  return r;
}

Bdd BddManager::restrict(const Bdd& f, const Bdd& care) {
  POLIS_CHECK(f.mgr_ == this && care.mgr_ == this);
  return make(restrict_rec(f.idx_, care.idx_));
}

// --- Queries ---------------------------------------------------------------------

std::set<int> BddManager::support(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  std::set<int> out;
  if (visit_epoch_.size() < nodes_.size()) visit_epoch_.resize(nodes_.size(), 0);
  ++epoch_;
  visit_stack_.clear();
  visit_stack_.push_back(f.idx_);
  while (!visit_stack_.empty()) {
    const std::uint32_t n = visit_stack_.back();
    visit_stack_.pop_back();
    if (is_term(n) || visit_epoch_[n] == epoch_) continue;
    visit_epoch_[n] = epoch_;
    out.insert(static_cast<int>(nodes_[n].var));
    visit_stack_.push_back(nodes_[n].lo);
    visit_stack_.push_back(nodes_[n].hi);
  }
  return out;
}

bool BddManager::eval(const Bdd& f, const std::function<bool(int)>& assignment) {
  POLIS_CHECK(f.mgr_ == this);
  std::uint32_t n = f.idx_;
  while (!is_term(n)) {
    const Node& node = nodes_[n];
    n = assignment(static_cast<int>(node.var)) ? node.hi : node.lo;
  }
  return n == kOne;
}

double BddManager::sat_count(const Bdd& f, int nvars) {
  POLIS_CHECK(f.mgr_ == this);
  std::unordered_map<std::uint32_t, double> memo;
  // Fraction of the full space that satisfies f, then scaled by 2^nvars.
  auto frac = [&](std::uint32_t n, auto&& self) -> double {
    if (n == kZero) return 0.0;
    if (n == kOne) return 1.0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const double r =
        0.5 * self(nodes_[n].lo, self) + 0.5 * self(nodes_[n].hi, self);
    memo.emplace(n, r);
    return r;
  };
  double scale = 1.0;
  for (int i = 0; i < nvars; ++i) scale *= 2.0;
  return frac(f.idx_, frac) * scale;
}

std::vector<std::pair<int, bool>> BddManager::one_sat(const Bdd& f) {
  POLIS_CHECK(f.mgr_ == this);
  POLIS_CHECK_MSG(f.idx_ != kZero, "one_sat of unsatisfiable function");
  std::vector<std::pair<int, bool>> cube;
  std::uint32_t n = f.idx_;
  while (!is_term(n)) {
    const Node& node = nodes_[n];
    if (node.hi != kZero) {
      cube.emplace_back(static_cast<int>(node.var), true);
      n = node.hi;
    } else {
      cube.emplace_back(static_cast<int>(node.var), false);
      n = node.lo;
    }
  }
  return cube;
}

size_t BddManager::node_count(const Bdd& f) {
  return node_count(std::vector<Bdd>{f});
}

size_t BddManager::node_count(const std::vector<Bdd>& roots) {
  if (visit_epoch_.size() < nodes_.size()) visit_epoch_.resize(nodes_.size(), 0);
  ++epoch_;
  visit_stack_.clear();
  for (const Bdd& r : roots) {
    POLIS_CHECK(r.mgr_ == this);
    visit_stack_.push_back(r.idx_);
  }
  size_t count = 0;
  while (!visit_stack_.empty()) {
    const std::uint32_t n = visit_stack_.back();
    visit_stack_.pop_back();
    if (is_term(n) || visit_epoch_[n] == epoch_) continue;
    visit_epoch_[n] = epoch_;
    ++count;
    visit_stack_.push_back(nodes_[n].lo);
    visit_stack_.push_back(nodes_[n].hi);
  }
  return count;
}

size_t BddManager::mark_live() {
  if (visit_epoch_.size() < nodes_.size()) visit_epoch_.resize(nodes_.size(), 0);
  compact_roots();
  ++epoch_;
  visit_stack_.clear();
  for (const std::uint32_t r : roots_) visit_stack_.push_back(r);
  size_t count = 0;
  while (!visit_stack_.empty()) {
    const std::uint32_t n = visit_stack_.back();
    visit_stack_.pop_back();
    if (is_term(n) || visit_epoch_[n] == epoch_) continue;
    visit_epoch_[n] = epoch_;
    ++count;
    visit_stack_.push_back(nodes_[n].lo);
    visit_stack_.push_back(nodes_[n].hi);
  }
  return count;
}

size_t BddManager::live_node_count() { return mark_live(); }

// --- Reordering / memory ---------------------------------------------------------

size_t BddManager::swap_adjacent_levels(int level) {
  POLIS_CHECK_MSG(level >= 0 && level + 1 < num_vars(),
                  "swap_adjacent_levels: level " << level << " out of range");
  const int x = invperm_[static_cast<size_t>(level)];      // upper var
  const int y = invperm_[static_cast<size_t>(level + 1)];  // lower var
  const std::uint32_t xv = static_cast<std::uint32_t>(x);
  const std::uint32_t yv = static_cast<std::uint32_t>(y);

  // Only nodes labelled x can change: a node x ? f1 : f0 whose cofactors
  // depend on y is relabelled, in place, to
  //   y ? (x ? f11 : f01) : (x ? f10 : f00),
  // preserving its function (and hence its index, all handles and the
  // computed cache). Nodes labelled x with y-free cofactors just ride to
  // the lower level untouched; all other nodes are unaffected.
  //
  // Steal x's chains wholesale, then reinsert in two passes: y-independent
  // nodes first, so the find_or_add calls of the rewrite pass hash-cons
  // against them (a rewrite's new children are y-free x-nodes, which can
  // never equal a pending rewrite — those still have a y-labelled child).
  Subtable& stx = subtables_[static_cast<size_t>(x)];
  swap_scratch_.clear();
  for (std::uint32_t& head : stx.buckets) {
    for (std::uint32_t n = head; n != kNil; n = nodes_[n].next)
      swap_scratch_.push_back(n);
    head = kNil;
  }
  stx.count = 0;

  size_t deps = 0;
  for (const std::uint32_t n : swap_scratch_) {
    const std::uint32_t f1 = nodes_[n].hi;
    const std::uint32_t f0 = nodes_[n].lo;
    const bool hi_dep = !is_term(f1) && nodes_[f1].var == yv;
    const bool lo_dep = !is_term(f0) && nodes_[f0].var == yv;
    if (hi_dep || lo_dep) {
      swap_scratch_[deps++] = n;  // rewrite below
    } else {
      subtable_insert(xv, n);  // rides to the lower level untouched
    }
  }
  for (size_t i = 0; i < deps; ++i) {
    const std::uint32_t n = swap_scratch_[i];
    const std::uint32_t f1 = nodes_[n].hi;
    const std::uint32_t f0 = nodes_[n].lo;
    const bool hi_dep = !is_term(f1) && nodes_[f1].var == yv;
    const bool lo_dep = !is_term(f0) && nodes_[f0].var == yv;
    const std::uint32_t f11 = hi_dep ? nodes_[f1].hi : f1;
    const std::uint32_t f10 = hi_dep ? nodes_[f1].lo : f1;
    const std::uint32_t f01 = lo_dep ? nodes_[f0].hi : f0;
    const std::uint32_t f00 = lo_dep ? nodes_[f0].lo : f0;
    // The grandchildren sit strictly below both levels, so these lookups
    // can only hit (or create) y-free x-nodes — never a pending rewrite.
    const std::uint32_t new_hi = find_or_add(xv, f01, f11);
    const std::uint32_t new_lo = find_or_add(xv, f00, f10);
    nodes_[n].var = yv;
    nodes_[n].lo = new_lo;
    nodes_[n].hi = new_hi;
    subtable_insert(yv, n);
  }
  std::swap(invperm_[static_cast<size_t>(level)],
            invperm_[static_cast<size_t>(level + 1)]);
  perm_[static_cast<size_t>(x)] = level + 1;
  perm_[static_cast<size_t>(y)] = level;
  return deps;
}

std::uint32_t BddManager::transfer_from(BddManager& src, std::uint32_t f,
                                        std::vector<std::uint32_t>& memo) {
  if (src.is_term(f)) return f;  // terminals share indices across managers
  if (memo[f] != kNil) return memo[f];
  const Node n = src.nodes_[f];
  const std::uint32_t lo = transfer_from(src, n.lo, memo);
  const std::uint32_t hi = transfer_from(src, n.hi, memo);
  const std::uint32_t v_idx =
      find_or_add(n.var, kZero, kOne);  // the variable itself
  const std::uint32_t r = ite_rec(v_idx, hi, lo);
  memo[f] = r;
  return r;
}

std::vector<std::uint32_t> BddManager::live_roots() const {
  std::vector<std::uint32_t> out;
  out.reserve(roots_.size());
  for (const std::uint32_t idx : roots_) {
    if (extref_[idx] > 0) out.push_back(idx);
  }
  return out;
}

std::vector<size_t> BddManager::var_node_profile() {
  std::vector<size_t> profile(static_cast<size_t>(num_vars()), 0);
  mark_live();
  // Every node marked with the current epoch is live; bucket it by var.
  for (std::uint32_t n = 2; n < nodes_.size(); ++n) {
    if (visit_epoch_[n] == epoch_) profile[nodes_[n].var]++;
  }
  return profile;
}

void BddManager::set_order(const std::vector<int>& order) {
  POLIS_CHECK_MSG(static_cast<int>(order.size()) == num_vars(),
                  "order must mention every variable exactly once");
  std::vector<bool> seen(order.size(), false);
  for (int v : order) {
    check_var(v);
    POLIS_CHECK_MSG(!seen[static_cast<size_t>(v)], "duplicate var in order");
    seen[static_cast<size_t>(v)] = true;
  }

  BddManager scratch;
  for (int i = 0; i < num_vars(); ++i) scratch.new_var(names_[static_cast<size_t>(i)]);
  scratch.invperm_ = order;
  for (int lvl = 0; lvl < num_vars(); ++lvl)
    scratch.perm_[static_cast<size_t>(order[static_cast<size_t>(lvl)])] = lvl;

  // Retarget every handle to its image in the scratch arena. The old arena
  // stays intact for the whole loop, so handles sharing an index and index
  // coincidences between old and new values are both harmless.
  std::vector<std::uint32_t> memo(nodes_.size(), kNil);
  for (Bdd* h = handle_head_; h != nullptr; h = h->next_) {
    h->idx_ = scratch.transfer_from(*this, h->idx_, memo);
  }

  nodes_ = std::move(scratch.nodes_);
  subtables_ = std::move(scratch.subtables_);
  perm_ = std::move(scratch.perm_);
  invperm_ = std::move(scratch.invperm_);
  free_head_ = kNil;
  cache_clear();
  rebuild_refs();
  visit_epoch_.assign(nodes_.size(), 0);
  stats_.peak_nodes = std::max(stats_.peak_nodes, nodes_.size());
}

void BddManager::garbage_collect() {
  OBS_SPAN(span, "bdd.gc", "bdd");
  const size_t before = nodes_.size();
  mark_live();

  // Compact in place: remap old → new indices (terminals are fixed points),
  // rewrite children through the completed map, then rehash the subtables.
  std::vector<std::uint32_t> remap(nodes_.size(), kNil);
  remap[kZero] = kZero;
  remap[kOne] = kOne;
  std::uint32_t next = 2;
  for (std::uint32_t i = 2; i < nodes_.size(); ++i) {
    if (visit_epoch_[i] == epoch_) remap[i] = next++;
  }
  for (std::uint32_t i = 2; i < nodes_.size(); ++i) {
    if (remap[i] == kNil) continue;
    const Node n = nodes_[i];
    nodes_[remap[i]] = Node{n.var, remap[n.lo], remap[n.hi], kNil};
  }
  nodes_.resize(next);

  for (Subtable& st : subtables_) {
    std::fill(st.buckets.begin(), st.buckets.end(), kNil);
    st.count = 0;
  }
  for (std::uint32_t i = 2; i < next; ++i) subtable_insert(nodes_[i].var, i);

  for (Bdd* h = handle_head_; h != nullptr; h = h->next_) {
    if (h->idx_ > kOne) h->idx_ = remap[h->idx_];
  }

  free_head_ = kNil;
  cache_clear();
  rebuild_refs();
  visit_epoch_.assign(nodes_.size(), 0);
  if (before > nodes_.size()) {
    ++stats_.gc_runs;
    stats_.nodes_reclaimed += before - nodes_.size();
  }
  if (span.armed()) {
    span.arg("arena_before", before);
    span.arg("arena_after", nodes_.size());
  }
}

size_t BddManager::prune_dead_nodes() {
  OBS_SPAN(span, "bdd.prune", "bdd");
  mark_live();  // leaves the liveness epoch in visit_epoch_
  size_t removed = 0;
  for (Subtable& st : subtables_) {
    for (std::uint32_t& head : st.buckets) {
      std::uint32_t* link = &head;
      while (*link != kNil) {
        const std::uint32_t n = *link;
        if (visit_epoch_[n] == epoch_) {
          link = &nodes_[n].next;
        } else {
          *link = nodes_[n].next;
          nodes_[n].var = kDeadVar;
          nodes_[n].next = free_head_;
          free_head_ = n;
          --st.count;
          ++removed;
        }
      }
    }
  }
  if (removed > 0) {
    // Cached results may reference pruned slots, which the free list will
    // recycle into different functions; drop the cache.
    cache_clear();
    ++stats_.gc_runs;
    stats_.nodes_reclaimed += removed;
  }
  if (span.armed()) span.arg("pruned", removed);
  return removed;
}

size_t BddManager::size_under_order(const std::vector<int>& order) {
  POLIS_CHECK(static_cast<int>(order.size()) == num_vars());
  BddManager scratch;
  for (int i = 0; i < num_vars(); ++i) scratch.new_var();
  scratch.invperm_ = order;
  for (int lvl = 0; lvl < num_vars(); ++lvl)
    scratch.perm_[static_cast<size_t>(order[static_cast<size_t>(lvl)])] = lvl;

  std::vector<std::uint32_t> memo(nodes_.size(), kNil);
  std::vector<Bdd> roots;
  for (std::uint32_t idx : live_roots()) {
    const std::uint32_t r = scratch.transfer_from(*this, idx, memo);
    roots.push_back(scratch.make(r));
  }
  return scratch.node_count(roots);
}

}  // namespace polis::bdd
