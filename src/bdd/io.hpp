// BDD export utilities: Graphviz dumps for inspection and conversion of a
// BDD into a nested-ITE expression (the form used for ASSIGN labels when an
// output is ordered before part of its support, §III-B3c).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "expr/expr.hpp"

namespace polis::bdd {

/// Writes a Graphviz dot rendering of `roots` (labelled by manager var names).
void to_dot(const std::vector<Bdd>& roots,
            const std::vector<std::string>& root_names, std::ostream& os);

/// Converts `f` to a nested ITE expression. `leaf_of_var` supplies the
/// expression standing for each BDD variable (e.g. the concrete predicate a
/// test variable abstracts). Shared BDD nodes become shared subexpressions.
expr::ExprRef to_expr(const Bdd& f,
                      const std::function<expr::ExprRef(int)>& leaf_of_var);

/// One-line stats string: "nodes=N vars=V".
std::string stats(BddManager& mgr, const Bdd& f);

}  // namespace polis::bdd
