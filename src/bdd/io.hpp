// BDD export utilities: Graphviz dumps for inspection and conversion of a
// BDD into a nested-ITE expression (the form used for ASSIGN labels when an
// output is ordered before part of its support, §III-B3c).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "expr/expr.hpp"

namespace polis::bdd {

/// Writes a Graphviz dot rendering of `roots` (labelled by manager var names).
void to_dot(const std::vector<Bdd>& roots,
            const std::vector<std::string>& root_names, std::ostream& os);

/// Converts `f` to a nested ITE expression. `leaf_of_var` supplies the
/// expression standing for each BDD variable (e.g. the concrete predicate a
/// test variable abstracts). Shared BDD nodes become shared subexpressions.
expr::ExprRef to_expr(const Bdd& f,
                      const std::function<expr::ExprRef(int)>& leaf_of_var);

/// One-line stats string: "nodes=N vars=V".
std::string stats(BddManager& mgr, const Bdd& f);

/// Serializes `roots` (all on the same manager) to a line-oriented text
/// format that preserves the complement-edge structure: every edge is
/// written as the tagged reference `serial << 1 | complement`, where serial
/// ids number shared internal nodes in children-first order and serial 0 is
/// the terminal one. The format is deterministic — equal functions under the
/// same variable order serialize byte-identically.
void write_bdds(const std::vector<Bdd>& roots,
                const std::vector<std::string>& root_names, std::ostream& os);

/// Reads the `write_bdds` format back, creating any missing variables in
/// `mgr` (matched by name where names agree, appended otherwise). Returns
/// the root functions in file order and fills `root_names` when non-null.
/// Round-trip guarantee: reading into the writing manager yields handles
/// equal to the originals.
std::vector<Bdd> read_bdds(BddManager& mgr, std::istream& is,
                           std::vector<std::string>* root_names = nullptr);

}  // namespace polis::bdd
