#include "bdd/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace polis::bdd {

namespace {

// Legal insertion window [lo, hi] (inclusive, as positions in `order` with
// `var` removed) given the precedence pairs.
std::pair<size_t, size_t> legal_window(
    const std::vector<int>& order_without_var, int var,
    const std::vector<std::pair<int, int>>& precedence) {
  size_t lo = 0;
  size_t hi = order_without_var.size();
  for (const auto& [above, below] : precedence) {
    if (below == var) {
      // `above` must stay above var: insertion position must be after it.
      for (size_t i = 0; i < order_without_var.size(); ++i) {
        if (order_without_var[i] == above) {
          lo = std::max(lo, i + 1);
          break;
        }
      }
    }
    if (above == var) {
      // `below` must stay below var: insertion position must be at/before it.
      for (size_t i = 0; i < order_without_var.size(); ++i) {
        if (order_without_var[i] == below) {
          hi = std::min(hi, i);
          break;
        }
      }
    }
  }
  return {lo, hi};
}

}  // namespace

bool order_respects(const std::vector<int>& order,
                    const std::vector<std::pair<int, int>>& precedence) {
  std::vector<int> pos(order.size());
  for (size_t i = 0; i < order.size(); ++i)
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  for (const auto& [above, below] : precedence) {
    if (pos[static_cast<size_t>(above)] >= pos[static_cast<size_t>(below)])
      return false;
  }
  return true;
}

size_t sift(BddManager& mgr,
            const std::vector<std::pair<int, int>>& precedence,
            const SiftOptions& options) {
  const int n = mgr.num_vars();
  if (n <= 1) return mgr.size_under_order(mgr.current_order());

  POLIS_CHECK_MSG(order_respects(mgr.current_order(), precedence),
                  "initial order violates the precedence constraints");

  size_t best_total = mgr.size_under_order(mgr.current_order());

  for (int pass = 0; pass < options.passes; ++pass) {
    // Sift variables in decreasing order of node contribution, the classic
    // heuristic: the fattest level has the most to gain.
    std::vector<size_t> profile = mgr.var_node_profile();
    std::vector<int> vars(static_cast<size_t>(n));
    std::iota(vars.begin(), vars.end(), 0);
    std::stable_sort(vars.begin(), vars.end(), [&](int a, int b) {
      return profile[static_cast<size_t>(a)] > profile[static_cast<size_t>(b)];
    });
    if (options.max_vars > 0 &&
        static_cast<int>(vars.size()) > options.max_vars)
      vars.resize(static_cast<size_t>(options.max_vars));

    bool improved_this_pass = false;
    for (int v : vars) {
      std::vector<int> order = mgr.current_order();
      std::vector<int> without;
      without.reserve(order.size() - 1);
      size_t cur_pos = 0;
      for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] == v) {
          cur_pos = i;
        } else {
          without.push_back(order[i]);
        }
      }

      const auto [lo, hi] = legal_window(without, v, precedence);
      size_t best_size = best_total;
      size_t best_pos = cur_pos <= hi && cur_pos >= lo ? cur_pos : lo;
      bool have_best = false;
      for (size_t p = lo; p <= hi; ++p) {
        std::vector<int> candidate = without;
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(p), v);
        const size_t sz = mgr.size_under_order(candidate);
        if (!have_best || sz < best_size) {
          best_size = sz;
          best_pos = p;
          have_best = true;
        }
      }

      std::vector<int> final_order = without;
      final_order.insert(final_order.begin() + static_cast<std::ptrdiff_t>(best_pos), v);
      if (final_order != order && best_size < best_total) {
        mgr.set_order(final_order);
        best_total = best_size;
        improved_this_pass = true;
      }
    }
    if (!improved_this_pass) break;
  }
  return best_total;
}

size_t sift(BddManager& mgr, const SiftOptions& options) {
  return sift(mgr, {}, options);
}

}  // namespace polis::bdd
